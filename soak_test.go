package mstsearch

import (
	"math"
	"math/rand"
	"testing"
)

// TestSoakRandomOperations drives a DB through a long random mix of
// operations — adds, live appends, every query type — cross-checking each
// k-MST answer against exact pairwise DISSIM. It is the end-to-end
// integration hammer for the whole stack (facade → search → trees → pager).
func TestSoakRandomOperations(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for _, kind := range IndexKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(2007))
			db := Open(kind)
			nextID := ID(1)
			alive := []ID{}

			newTraj := func() Trajectory {
				n := 10 + rng.Intn(40)
				tr := Trajectory{ID: nextID}
				x, y := rng.Float64()*100, rng.Float64()*100
				for j := 0; j <= n; j++ {
					tr.Samples = append(tr.Samples, Sample{
						X: x, Y: y, T: 10 * float64(j) / float64(n),
					})
					x += rng.NormFloat64() * 1.5
					y += rng.NormFloat64() * 1.5
				}
				nextID++
				return tr
			}
			// Seed with a few objects so queries have answers.
			for i := 0; i < 8; i++ {
				tr := newTraj()
				if err := db.Add(tr); err != nil {
					t.Fatal(err)
				}
				alive = append(alive, tr.ID)
			}

			verifyKMST := func() {
				src := db.Get(alive[rng.Intn(len(alive))])
				q := src.Clone()
				q.ID = 0
				for i := range q.Samples {
					q.Samples[i].X += rng.NormFloat64() * 0.1
					q.Samples[i].Y += rng.NormFloat64() * 0.1
				}
				t1 := rng.Float64() * 4
				t2 := t1 + 2 + rng.Float64()*4
				k := 1 + rng.Intn(3)
				res, _, err := db.KMostSimilar(&q, t1, t2, k)
				if err != nil {
					t.Fatal(err)
				}
				// Oracle: exact pairwise DISSIM over the whole store.
				type pair struct {
					id ID
					d  float64
				}
				var want []pair
				for _, id := range alive {
					if d, ok := Dissimilarity(&q, db.Get(id), t1, t2); ok {
						want = append(want, pair{id, d})
					}
				}
				for i := 1; i < len(want); i++ { // insertion sort, small n
					for j := i; j > 0 && (want[j].d < want[j-1].d ||
						(want[j].d == want[j-1].d && want[j].id < want[j-1].id)); j-- {
						want[j], want[j-1] = want[j-1], want[j]
					}
				}
				if len(want) > k {
					want = want[:k]
				}
				if len(res) != len(want) {
					t.Fatalf("k-MST returned %d results, oracle %d", len(res), len(want))
				}
				for i := range want {
					if res[i].TrajID != want[i].id {
						t.Fatalf("rank %d: got %d (%.6f), oracle %d (%.6f)",
							i, res[i].TrajID, res[i].Dissim, want[i].id, want[i].d)
					}
					if math.Abs(res[i].Dissim-want[i].d) > 1e-6*math.Max(1, want[i].d)+res[i].Err {
						t.Fatalf("rank %d dissim %v±%v vs oracle %v",
							i, res[i].Dissim, res[i].Err, want[i].d)
					}
				}
			}

			for op := 0; op < 120; op++ {
				switch rng.Intn(6) {
				case 0: // add a new trajectory
					tr := newTraj()
					if err := db.Add(tr); err != nil {
						t.Fatal(err)
					}
					alive = append(alive, tr.ID)
				case 1: // live-append a sample to a random trajectory
					id := alive[rng.Intn(len(alive))]
					tr := db.Get(id)
					last := tr.Samples[len(tr.Samples)-1]
					err := db.AppendSample(id, Sample{
						X: last.X + rng.NormFloat64(),
						Y: last.Y + rng.NormFloat64(),
						T: last.T + 0.1 + rng.Float64(),
					})
					if err != nil {
						t.Fatal(err)
					}
				case 2: // range query must match a brute-force count
					minX, minY := rng.Float64()*80, rng.Float64()*80
					t1 := rng.Float64() * 8
					hits, err := db.RangeQuery(minX, minY, minX+20, minY+20, t1, t1+2)
					if err != nil {
						t.Fatal(err)
					}
					count := 0
					for _, id := range alive {
						tr := db.Get(id)
						for s := 0; s < tr.NumSegments(); s++ {
							seg := tr.Segment(s)
							if seg.B.T < t1 || seg.A.T > t1+2 {
								continue
							}
							sMinX := math.Min(seg.A.X, seg.B.X)
							sMaxX := math.Max(seg.A.X, seg.B.X)
							sMinY := math.Min(seg.A.Y, seg.B.Y)
							sMaxY := math.Max(seg.A.Y, seg.B.Y)
							if sMaxX >= minX && sMinX <= minX+20 && sMaxY >= minY && sMinY <= minY+20 {
								count++
							}
						}
					}
					if len(hits) != count {
						t.Fatalf("range query %d hits, oracle %d", len(hits), count)
					}
				case 3: // point NN sanity: reported distance is achievable
					px, py := rng.Float64()*100, rng.Float64()*100
					tt := rng.Float64() * 10
					res, err := db.NearestAt(px, py, tt, 1)
					if err != nil {
						t.Fatal(err)
					}
					if len(res) == 1 {
						p := db.Get(res[0].TrajID).At(tt)
						d := math.Hypot(p.X-px, p.Y-py)
						if math.Abs(d-res[0].Dist) > 1e-9 {
							t.Fatalf("NN distance %v, recomputed %v", res[0].Dist, d)
						}
					}
				case 4: // k-MST vs oracle
					verifyKMST()
				default: // toggle the warm buffer occasionally
					if rng.Intn(2) == 0 {
						db.EnableWarmBuffer()
					}
					verifyKMST()
				}
			}
		})
	}
}
