package mstsearch

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// LevelAccesses counts the index nodes one query touched at one tree
// level (root = level 0).
type LevelAccesses struct {
	Level  int
	Nodes  int
	Leaves int // of Nodes, how many were leaf pages
}

// ExplainReport is the outcome of DB.Explain: the cost model's prediction
// side by side with what the query actually did, plus the full result set
// — the EXPLAIN ANALYZE of the k-MST engine.
type ExplainReport struct {
	// Kind is the index structure the query ran on; Trajectories and
	// Segments size the store it ran against.
	Kind         IndexKind
	K            int
	Interval     Interval
	Trajectories int
	Segments     int

	// Estimate is the selectivity cost model's prediction, priced against
	// the same snapshot the query ran on.
	Estimate QueryCostEstimate

	// Results and Stats are the query's answers and work profile.
	Results []Result
	Stats   SearchStats

	// Trace summarizes every event the traced run emitted; Levels breaks
	// the node accesses down by tree level (root = 0).
	Trace  TraceSummary
	Levels []LevelAccesses

	// Duration is the wall-clock latency of the traced run.
	Duration time.Duration
}

// Explain runs the request with tracing on and reports the cost model's
// prediction against the query's actual behaviour: predicted vs. real
// leaf pages, pruning power, and per-level node accesses. The estimate
// and the query share one read snapshot of the store, so the comparison
// is apples to apples even under concurrent writes. A caller-supplied
// Options.Trace hook still receives every event.
//
// Explain is a measurement tool: the traced run does the query's full
// work, so its latency is representative, but the per-event hook adds
// overhead an untraced Query does not pay.
func (db *DB) Explain(ctx context.Context, req Request) (*ExplainReport, error) {
	start := time.Now()
	rep := &ExplainReport{K: req.K, Interval: req.Interval}
	o := req.Options
	user := o.Trace
	rep.Trace.ByKind = make(map[EventKind]int)
	o.Trace = func(ev TraceEvent) {
		rep.Trace.Events++
		rep.Trace.ByKind[ev.Kind]++
		if ev.Kind == EventNodeVisit {
			for len(rep.Levels) <= ev.Level {
				rep.Levels = append(rep.Levels, LevelAccesses{Level: len(rep.Levels)})
			}
			rep.Levels[ev.Level].Nodes++
			if ev.Leaf {
				rep.Levels[ev.Level].Leaves++
			}
		}
		if user != nil {
			user(ev)
		}
	}
	err := db.explainLocked(ctx, req, o, rep)
	rep.Duration = time.Since(start)
	db.finishQuery("explain", metExplain, start, req, rep.Stats, err)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// explainLocked prices and runs the query under one read snapshot.
func (db *DB) explainLocked(ctx context.Context, req Request, o Options, rep *ExplainReport) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rep.Kind = db.kind
	rep.Trajectories = len(db.trajs)
	rep.Segments = db.numSegments()
	est, err := db.estimateQueryCostLocked(req.Q, req.Interval.T1, req.Interval.T2, req.K)
	if err != nil {
		return err
	}
	rep.Estimate = est
	results, stats, err := db.kMostSimilarOn(ctx, db.queryPager(), req.Q, req.Interval.T1, req.Interval.T2, req.K, req.Metric, req.MetricEps, o)
	if err != nil {
		return err
	}
	rep.Results = results
	rep.Stats = stats
	return nil
}

// String renders the report as a human-readable EXPLAIN transcript.
func (r *ExplainReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN k-MST k=%d over [%g, %g] on %s (%d trajectories, %d segments)\n",
		r.K, r.Interval.T1, r.Interval.T2, r.Kind, r.Trajectories, r.Segments)
	fmt.Fprintf(&b, "cost model:\n")
	fmt.Fprintf(&b, "  corridor radius      %.4f\n", r.Estimate.CorridorRadius)
	fmt.Fprintf(&b, "  expected segments    %.1f\n", r.Estimate.ExpectedSegments)
	fmt.Fprintf(&b, "  expected leaf pages  %.1f\n", r.Estimate.ExpectedLeafPages)
	fmt.Fprintf(&b, "  range selectivity    %.4f\n", r.Estimate.RangeSelectivity)
	fmt.Fprintf(&b, "actuals:\n")
	fmt.Fprintf(&b, "  nodes accessed       %d of %d (pruning power %.1f%%)\n",
		r.Stats.NodesAccessed, r.Stats.TotalNodes, r.Stats.PruningPower*100)
	fmt.Fprintf(&b, "  leaf pages           %d actual vs %.1f predicted\n",
		r.Stats.LeavesAccessed, r.Estimate.ExpectedLeafPages)
	fmt.Fprintf(&b, "  heap enqueued        %d\n", r.Stats.Enqueued)
	fmt.Fprintf(&b, "  trapezoid evals      %d\n", r.Stats.TrapezoidEvals)
	fmt.Fprintf(&b, "  exact refinements    %d\n", r.Stats.ExactRefined)
	fmt.Fprintf(&b, "  page I/O             %d reads, %d buffer hits, %d retries, %d evictions\n",
		r.Stats.PageReads, r.Stats.BufferHits, r.Stats.Retries, r.Stats.Evictions)
	if r.Stats.TerminatedEarly {
		fmt.Fprintf(&b, "  terminated early (Heuristic 2)\n")
	}
	if r.Stats.Degraded {
		fmt.Fprintf(&b, "  DEGRADED: a node/IO budget ran out mid-search\n")
	}
	fmt.Fprintf(&b, "  duration             %s\n", r.Duration)
	fmt.Fprintf(&b, "per-level node accesses (root = level 0):\n")
	for _, lv := range r.Levels {
		if lv.Leaves > 0 {
			fmt.Fprintf(&b, "  level %d: %d nodes (%d leaves)\n", lv.Level, lv.Nodes, lv.Leaves)
		} else {
			fmt.Fprintf(&b, "  level %d: %d nodes\n", lv.Level, lv.Nodes)
		}
	}
	fmt.Fprintf(&b, "trace: %d events", r.Trace.Events)
	sep := " ("
	for k := EventNodeEnqueue; k <= EventReplicaRepair; k++ {
		if n := r.Trace.ByKind[k]; n > 0 {
			fmt.Fprintf(&b, "%s%s %d", sep, k, n)
			sep = ", "
		}
	}
	if sep == ", " {
		b.WriteString(")")
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "results:\n")
	for i, res := range r.Results {
		mark := "exact"
		if res.Err > 0 {
			mark = fmt.Sprintf("±%.4g", res.Err)
		}
		if !res.Certified {
			mark += ", provisional"
		}
		fmt.Fprintf(&b, "  %2d. trajectory %-6d DISSIM = %.6f (%s)\n", i+1, res.TrajID, res.Dissim, mark)
	}
	return b.String()
}
