package mstsearch_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	mstsearch "mstsearch"
	"mstsearch/internal/shard"
	"mstsearch/internal/storage"
	"mstsearch/internal/testutil"
)

// Cluster chaos: one shard's pager injects faults and corruption while
// queries, mutations, and cancellation storms hammer the whole cluster
// concurrently. Every query must end in exactly one of three states —
// a correct merged answer (validated against the brute-force oracle), a
// degraded best-effort answer with Stats.Degraded set, or a typed error —
// with no panics, no goroutine leaks, and no races (the CI concurrency
// matrix runs this suite under -race at GOMAXPROCS 1 and 4).

// typedClusterError reports whether err belongs to the query path's
// documented failure taxonomy.
func typedClusterError(err error) bool {
	return errors.Is(err, mstsearch.ErrInjected) ||
		errors.Is(err, mstsearch.ErrCanceled) ||
		errors.Is(err, mstsearch.ErrPageCorrupt{})
}

func TestClusterChaosConcurrent(t *testing.T) {
	testutil.CheckGoroutines(t)

	rng := rand.New(rand.NewSource(53))
	trajs := mstsearch.FleetForTest(rng, 60, 30)
	c := buildCluster(t, mstsearch.RTree3D, 4, shard.HashPlacement{}, shard.Options{}, trajs)

	// Shard 2 becomes the sick node: every query against it reads through
	// a fresh seeded FaultyPager — transient faults on even seeds, dead
	// pages and bit flips on odd ones. Its siblings stay healthy.
	var pagerNo atomic.Int64
	c.Shard(2).SetPagerWrapper(func(p mstsearch.Pager) mstsearch.Pager {
		n := pagerNo.Add(1)
		return &storage.FaultyPager{
			Inner:         p,
			Seed:          n,
			ReadFaultRate: 0.05,
			Transient:     n%2 == 0,
			BitFlipRate:   0.02,
		}
	})

	const workers = 8
	const itersPerWorker = 40
	var correct, degraded, failed, canceled atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed))
			for i := 0; i < itersPerWorker; i++ {
				src := &trajs[wrng.Intn(len(trajs))]
				t1 := wrng.Float64() * 4
				t2 := t1 + 2 + wrng.Float64()*4
				sl, ok := src.Slice(t1, t2)
				if !ok {
					t.Errorf("worker %d iter %d: window [%g, %g] outside fleet span", seed, i, t1, t2)
					return
				}
				q := sl.Clone()
				q.ID = 0
				req := mstsearch.Request{
					Q: &q, Interval: mstsearch.Interval{T1: t1, T2: t2}, K: 1 + wrng.Intn(4),
					Options: oracleOptions(),
				}

				if i%10 == 0 {
					// Cancellation storm: a pre-canceled context must fail
					// fast with the typed error and leak nothing.
					ctx, cancel := context.WithCancel(context.Background())
					cancel()
					if _, err := c.Query(ctx, req); !errors.Is(err, mstsearch.ErrCanceled) {
						t.Errorf("worker %d iter %d: canceled query returned %v, want ErrCanceled", seed, i, err)
						return
					}
					canceled.Add(1)
					continue
				}

				resp, err := c.Query(context.Background(), req)
				if err != nil {
					if !typedClusterError(err) {
						t.Errorf("worker %d iter %d: untyped error %v", seed, i, err)
						return
					}
					failed.Add(1)
					continue
				}
				if resp.Stats.Degraded {
					degraded.Add(1)
					continue
				}
				want := mstsearch.OracleTopK(trajs, &q, t1, t2, req.K)
				if len(resp.Results) != len(want) {
					t.Errorf("worker %d iter %d: %d results, oracle %d", seed, i, len(resp.Results), len(want))
					return
				}
				for j := range want {
					r := resp.Results[j]
					tol := r.Err + 1e-9*(1+math.Abs(want[j].Dissim))
					if r.TrajID != want[j].ID || math.Abs(r.Dissim-want[j].Dissim) > tol {
						t.Errorf("worker %d iter %d rank %d: got traj %d (%g), oracle %d (%g)",
							seed, i, j, r.TrajID, r.Dissim, want[j].ID, want[j].Dissim)
						return
					}
				}
				correct.Add(1)
			}
		}(int64(w + 1))
	}
	wg.Wait()

	if t.Failed() {
		return
	}
	if correct.Load() == 0 {
		t.Fatal("chaos run produced no correct answers; the healthy path never executed")
	}
	if canceled.Load() == 0 {
		t.Fatal("chaos run exercised no cancellations")
	}
	if failed.Load()+degraded.Load() == 0 {
		t.Fatal("chaos run surfaced no faults from the sick shard; the injection never fired")
	}
	t.Logf("chaos outcomes: %d correct, %d degraded, %d typed failures, %d canceled",
		correct.Load(), degraded.Load(), failed.Load(), canceled.Load())
}

// TestClusterConcurrentMutationsAndQueries races the mutation path (Add /
// AppendSample through the routing table) against scatter-gather queries
// and checkpoint-free reads, with the leak checker armed. Correctness of
// interleaved answers is covered by the metamorphic suite; this test is
// the race/leak gate for the cluster's locking contract.
func TestClusterConcurrentMutationsAndQueries(t *testing.T) {
	testutil.CheckGoroutines(t)

	rng := rand.New(rand.NewSource(59))
	base := mstsearch.FleetForTest(rng, 30, 24)
	extra := mstsearch.FleetForTest(rng, 40, 24)
	for i := range extra {
		extra[i].ID += 500
	}
	c := buildCluster(t, mstsearch.TBTree, 3, shard.HashPlacement{}, shard.Options{}, base)

	var wg sync.WaitGroup
	// Writer: streams the extra fleet in, plus appends to the base fleet.
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(61))
		for i := range extra {
			if err := c.Add(extra[i]); err != nil {
				t.Errorf("add %d: %v", extra[i].ID, err)
				return
			}
			id := base[wrng.Intn(len(base))].ID
			cur := c.Get(id)
			last := cur.Samples[len(cur.Samples)-1]
			if err := c.AppendSample(id, mstsearch.Sample{X: last.X, Y: last.Y, T: last.T + 0.1}); err != nil {
				t.Errorf("append %d: %v", id, err)
				return
			}
		}
	}()
	// Readers: queries and gather-profile reads racing the writer.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed))
			for i := 0; i < 30; i++ {
				src := &base[wrng.Intn(len(base))]
				t1 := wrng.Float64() * 4
				t2 := t1 + 2 + wrng.Float64()*4
				sl, ok := src.Slice(t1, t2)
				if !ok {
					continue
				}
				q := sl.Clone()
				q.ID = 0
				_, qs, err := c.QueryShards(context.Background(), mstsearch.Request{
					Q: &q, Interval: mstsearch.Interval{T1: t1, T2: t2}, K: 3,
					Options: oracleOptions(),
				})
				if err != nil {
					t.Errorf("reader %d iter %d: %v", seed, i, err)
					return
				}
				if qs.Fanout+qs.Pruned != c.NumShards() {
					t.Errorf("reader %d iter %d: fanout %d + pruned %d != %d shards", seed, i, qs.Fanout, qs.Pruned, c.NumShards())
					return
				}
			}
		}(int64(100 + r))
	}
	wg.Wait()

	if t.Failed() {
		return
	}
	if got, want := c.Len(), len(base)+len(extra); got != want {
		t.Fatalf("cluster holds %d trajectories after the race, want %d", got, want)
	}
}
