package mstsearch

import (
	"errors"
	"os"
	"path/filepath"
	"time"
)

// Replication primitives. The replica sets themselves live in
// internal/shard — each shard of a replicated cluster holds R
// independently durable DBs — but the vocabulary they speak (the
// unavailability sentinel, the status view, the re-seed operation) is
// part of the library surface so the serving layer can report replica
// health and map failures onto its envelope taxonomy without importing
// the cluster implementation.

// ErrUnavailable reports an operation that found no healthy replica to
// serve it: every copy of the addressed data is quarantined, or a write
// could not reach its configured ack quorum. Retryable — the anti-entropy
// repair loop re-admits replicas as it re-seeds them.
var ErrUnavailable = errors.New("mstsearch: no healthy replica available")

// ReplicaStatus is the health of one replica of a replicated shard, as
// reported by the cluster layer (and served by GET /healthz).
type ReplicaStatus struct {
	// Shard and Replica locate the replica within the cluster.
	Shard   int
	Replica int
	// State is the health state machine's current state: "healthy",
	// "suspect", or "quarantined".
	State string
	// Trajectories is the replica's stored trajectory count (0 when the
	// replica failed to open and awaits repair).
	Trajectories int
	// LastError is the observation that drove the last state transition,
	// empty for a healthy replica.
	LastError string
	// LastRepair is when the repair loop last re-seeded this replica
	// (zero if never).
	LastRepair time.Time
}

// CloneDurable seeds dir with an atomic snapshot of the database and
// opens a fresh durable DB of the same kind on top of it — the re-seed
// half of replica repair. The snapshot is written as checkpoint epoch 1
// (temp file, fsync, rename, directory fsync), so the clone recovers
// through the ordinary durable state machine: a crash mid-clone leaves
// either no snapshot (the clone never happened) or a complete one plus a
// possibly-torn fresh log. The source DB is snapshotted under its read
// lock and is not otherwise touched.
func (db *DB) CloneDurable(dir string, o DurableOptions) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := db.Save(filepath.Join(dir, snapshotName(1))); err != nil {
		return nil, err
	}
	return OpenDurable(dir, db.Kind(), o)
}
