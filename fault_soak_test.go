package mstsearch

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"mstsearch/internal/storage"
	"mstsearch/internal/testutil"
)

// typedQueryError reports whether err belongs to the documented failure
// taxonomy of the query path.
func typedQueryError(err error) bool {
	return errors.Is(err, ErrInjected) ||
		errors.Is(err, ErrCanceled) ||
		errors.Is(err, ErrPageCorrupt{})
}

// scanHit is one oracle answer.
type scanHit struct {
	id ID
	d  float64
}

// linearTopK is the exact brute-force k-MST oracle over the raw slice.
func linearTopK(trajs []Trajectory, q *Trajectory, t1, t2 float64, k int) []scanHit {
	var out []scanHit
	for i := range trajs {
		if d, ok := Dissimilarity(q, &trajs[i], t1, t2); ok {
			out = append(out, scanHit{trajs[i].ID, d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].d != out[j].d {
			return out[i].d < out[j].d
		}
		return out[i].id < out[j].id
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// TestFaultInjectionSoak is the acceptance soak of the hardening layer:
// 1000 mixed queries against a database whose page reads fail with
// probability 1% and return bit-flipped payloads with probability 1%
// (seeded, reproducible). Every query must end in exactly one of three
// states — a correct result (validated against the exact linear-scan
// oracle), a degraded best-effort result with Stats.Degraded set, or a
// typed error — and the process must never panic.
func TestFaultInjectionSoak(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	trajs := fleet(rng, 80, 40)
	db, err := NewDB(RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}

	var queryNo int64
	db.SetPagerWrapper(func(p Pager) Pager {
		queryNo++
		return &storage.FaultyPager{
			Inner:         p,
			Seed:          queryNo,
			ReadFaultRate: 0.01,
			Transient:     queryNo%2 == 0, // odd queries: faulted pages stay dead
			BitFlipRate:   0.01,
		}
	})

	var correct, degraded, failed, canceled int
	for i := 0; i < 1000; i++ {
		src := &trajs[rng.Intn(len(trajs))]
		t1 := rng.Float64() * 4
		t2 := t1 + 2 + rng.Float64()*4
		sl, ok := src.Slice(t1, t2)
		if !ok {
			t.Fatalf("iter %d: window [%g, %g] outside fleet span", i, t1, t2)
		}
		q := sl.Clone()
		q.ID = 0
		k := 1 + rng.Intn(4)

		switch rng.Intn(10) {
		case 0: // pre-canceled context: must fail fast with the typed error.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, _, err := db.KMostSimilarContext(ctx, &q, t1, t2, k)
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("iter %d: canceled query returned %v, want ErrCanceled", i, err)
			}
			canceled++

		case 1, 2: // tight node budget: degraded, certified ⊆ true top-k.
			res, st, err := db.KMostSimilarOptsContext(context.Background(), &q, t1, t2, k, Options{
				ExactRefine: true, Refine: 1, MaxNodeAccesses: 1 + rng.Intn(4),
			})
			if err != nil {
				if !typedQueryError(err) {
					t.Fatalf("iter %d: untyped error %v", i, err)
				}
				failed++
				break
			}
			want := linearTopK(trajs, &q, t1, t2, k)
			if st.Degraded {
				degraded++
				trueTop := map[ID]bool{}
				for _, w := range want {
					trueTop[w.id] = true
				}
				for _, r := range res {
					if r.Certified && !trueTop[r.TrajID] {
						t.Fatalf("iter %d: certified degraded result %d not in true top-%d", i, r.TrajID, k)
					}
				}
				break
			}
			checkExact(t, i, res, want)
			correct++

		case 3: // range query: typed error or exact against brute force.
			minX, minY := rng.Float64()*80, rng.Float64()*80
			maxX, maxY := minX+5+rng.Float64()*20, minY+5+rng.Float64()*20
			hits, err := db.RangeQuery(minX, minY, maxX, maxY, t1, t2)
			if err != nil {
				if !typedQueryError(err) {
					t.Fatalf("iter %d: untyped error %v", i, err)
				}
				failed++
				break
			}
			got := map[[2]uint64]bool{}
			for _, h := range hits {
				got[[2]uint64{uint64(h.TrajID), uint64(h.SeqNo)}] = true
			}
			nWant := 0
			for ti := range trajs {
				tr := &trajs[ti]
				for s := 0; s+1 < len(tr.Samples); s++ {
					a, b := tr.Samples[s], tr.Samples[s+1]
					if math.Max(a.T, b.T) < t1 || math.Min(a.T, b.T) > t2 {
						continue
					}
					if math.Max(a.X, b.X) < minX || math.Min(a.X, b.X) > maxX {
						continue
					}
					if math.Max(a.Y, b.Y) < minY || math.Min(a.Y, b.Y) > maxY {
						continue
					}
					nWant++
					if !got[[2]uint64{uint64(tr.ID), uint64(s)}] {
						t.Fatalf("iter %d: range query missed segment %d/%d", i, tr.ID, s)
					}
				}
			}
			if nWant != len(hits) {
				t.Fatalf("iter %d: range query returned %d hits, oracle %d", i, len(hits), nWant)
			}
			correct++

		case 4: // point-NN: typed error or exact against brute force.
			x, y := rng.Float64()*100, rng.Float64()*100
			at := t1
			nn, err := db.NearestAt(x, y, at, k)
			if err != nil {
				if !typedQueryError(err) {
					t.Fatalf("iter %d: untyped error %v", i, err)
				}
				failed++
				break
			}
			var want []scanHit
			for ti := range trajs {
				tr := &trajs[ti]
				if !tr.Covers(at, at) {
					continue
				}
				p := tr.At(at)
				want = append(want, scanHit{tr.ID, math.Hypot(p.X-x, p.Y-y)})
			}
			sort.Slice(want, func(i, j int) bool {
				if want[i].d != want[j].d {
					return want[i].d < want[j].d
				}
				return want[i].id < want[j].id
			})
			if len(want) > k {
				want = want[:k]
			}
			if len(nn) != len(want) {
				t.Fatalf("iter %d: NN returned %d, oracle %d", i, len(nn), len(want))
			}
			for j := range want {
				if nn[j].TrajID != want[j].id || math.Abs(nn[j].Dist-want[j].d) > 1e-9 {
					t.Fatalf("iter %d: NN rank %d = %d (%g), oracle %d (%g)",
						i, j, nn[j].TrajID, nn[j].Dist, want[j].id, want[j].d)
				}
			}
			correct++

		default: // plain k-MST: typed error or exact against the oracle.
			res, st, err := db.KMostSimilar(&q, t1, t2, k)
			if err != nil {
				if !typedQueryError(err) {
					t.Fatalf("iter %d: untyped error %v", i, err)
				}
				failed++
				break
			}
			if st.Degraded {
				t.Fatalf("iter %d: unbudgeted query reported Degraded", i)
			}
			checkExact(t, i, res, linearTopK(trajs, &q, t1, t2, k))
			correct++
		}
	}

	t.Logf("soak: %d correct, %d degraded, %d typed failures, %d canceled", correct, degraded, failed, canceled)
	if correct == 0 || degraded == 0 || failed == 0 || canceled == 0 {
		t.Fatalf("soak did not exercise all outcomes: correct=%d degraded=%d failed=%d canceled=%d",
			correct, degraded, failed, canceled)
	}
}

// checkExact compares a complete (non-degraded) k-MST answer against the
// oracle: same members in the same order, every result certified.
func checkExact(t *testing.T, iter int, res []Result, want []scanHit) {
	t.Helper()
	if len(res) != len(want) {
		t.Fatalf("iter %d: got %d results, oracle %d", iter, len(res), len(want))
	}
	for j := range want {
		if res[j].TrajID != want[j].id {
			t.Fatalf("iter %d: rank %d = traj %d (%g), oracle %d (%g)",
				iter, j, res[j].TrajID, res[j].Dissim, want[j].id, want[j].d)
		}
		if !res[j].Certified {
			t.Fatalf("iter %d: complete search left result %d uncertified", iter, res[j].TrajID)
		}
	}
}

// TestRecoverAfterCorruption damages an index page in place, observes the
// typed corruption error, rebuilds with Recover, and verifies queries are
// exact again.
func TestRecoverAfterCorruption(t *testing.T) {
	for _, kind := range IndexKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(83))
			trajs := fleet(rng, 40, 30)
			db, err := NewDB(kind, trajs)
			if err != nil {
				t.Fatal(err)
			}
			q := trajs[2].Clone()
			q.ID = 0
			want := linearTopK(trajs, &q, 2, 8, 3)

			// Sanity: healthy database answers exactly.
			res, _, err := db.KMostSimilar(&q, 2, 8, 3)
			if err != nil {
				t.Fatal(err)
			}
			checkExact(t, 0, res, want)

			// Smash the root page: every query must now fail with the typed
			// corruption error carrying the page id — never a wrong answer.
			root := db.indexMeta().Root
			if err := db.file.CorruptPage(root, 5); err != nil {
				t.Fatal(err)
			}
			_, _, err = db.KMostSimilar(&q, 2, 8, 3)
			var pc ErrPageCorrupt
			if !errors.As(err, &pc) {
				t.Fatalf("corrupted index: got %v, want ErrPageCorrupt", err)
			}
			if pc.Page != root {
				t.Fatalf("ErrPageCorrupt.Page = %d, want root %d", pc.Page, root)
			}

			// Recover rebuilds the index from the trajectory store.
			if err := db.Recover(); err != nil {
				t.Fatal(err)
			}
			res, st, err := db.KMostSimilar(&q, 2, 8, 3)
			if err != nil {
				t.Fatalf("query after Recover: %v", err)
			}
			if st.Degraded {
				t.Fatal("query after Recover reported Degraded")
			}
			checkExact(t, 1, res, want)

			// The rebuilt index is writable even for tree kinds that load
			// read-only from snapshots.
			extra := fleet(rng, 1, 20)[0]
			extra.ID = 9999
			if err := db.Add(extra); err != nil {
				t.Fatalf("Add after Recover: %v", err)
			}
		})
	}
}

// TestWarmStripedPoolSoak re-runs the hardening contract through the PR's
// concurrent engine: ONE fault-injecting pager shared by every query via
// the warm striped buffer, hammered by ~300 mixed serial and batched
// (Parallelism = 4) queries. The contract is unchanged from the per-query
// soak — every query ends correct (oracle-checked) or with a typed error,
// never with silently wrong bytes — but now all of it flows through shared
// shards under concurrency.
func TestWarmStripedPoolSoak(t *testing.T) {
	testutil.CheckGoroutines(t) // shared shards must not strand workers
	rng := rand.New(rand.NewSource(177))
	trajs := fleet(rng, 60, 40)
	db, err := NewDB(TBTree, trajs)
	if err != nil {
		t.Fatal(err)
	}
	faulty := &storage.FaultyPager{
		Seed:          177,
		ReadFaultRate: 0.005,
		Transient:     true,
		BitFlipRate:   0.005,
	}
	db.SetPagerWrapper(func(p Pager) Pager {
		faulty.Inner = p
		return faulty
	})
	db.EnableWarmBuffer()

	newQuery := func() (Trajectory, float64, float64, int) {
		src := &trajs[rng.Intn(len(trajs))]
		t1 := rng.Float64() * 4
		t2 := t1 + 2 + rng.Float64()*4
		sl, ok := src.Slice(t1, t2)
		if !ok {
			t.Fatalf("window [%g, %g] outside fleet span", t1, t2)
		}
		q := sl.Clone()
		q.ID = 0
		return q, t1, t2, 1 + rng.Intn(4)
	}
	check := func(iter int, q *Trajectory, t1, t2 float64, k int, res []Result, err error) (ok, failed bool) {
		if err != nil {
			if !typedQueryError(err) {
				t.Fatalf("iter %d: untyped error %v", iter, err)
			}
			return false, true
		}
		checkExact(t, iter, res, linearTopK(trajs, q, t1, t2, k))
		return true, false
	}

	var correct, failed int
	var retries uint64
	opts := Options{ExactRefine: true, Refine: 1, Parallelism: 4}
	for i := 0; i < 25; i++ {
		// Eight serial queries...
		for j := 0; j < 8; j++ {
			q, t1, t2, k := newQuery()
			res, st, err := db.KMostSimilarOpts(&q, t1, t2, k, opts)
			retries += st.Retries
			c, f := check(i*100+j, &q, t1, t2, k, res, err)
			if c {
				correct++
			}
			if f {
				failed++
			}
		}
		// ...then four more as one batch on four workers.
		batch := make([]BatchQuery, 4)
		qs := make([]Trajectory, 4)
		for j := range batch {
			q, t1, t2, k := newQuery()
			qs[j] = q
			batch[j] = BatchQuery{Q: &qs[j], T1: t1, T2: t2, K: k}
		}
		for j, br := range db.KMostSimilarBatch(context.Background(), batch, opts) {
			c, f := check(i*100+50+j, batch[j].Q, batch[j].T1, batch[j].T2, batch[j].K, br.Results, br.Err)
			if c {
				correct++
			}
			if f {
				failed++
			}
		}
	}
	if correct == 0 {
		t.Fatal("soak never produced a correct result")
	}
	if retries == 0 {
		t.Fatal("fault injection never fired: the soak exercised nothing")
	}
	t.Logf("warm striped soak: %d correct, %d typed failures, %d retries absorbed",
		correct, failed, retries)
}
