package mstsearch

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"mstsearch/internal/obs"
	"mstsearch/internal/storage"
	"mstsearch/internal/testutil"
	"mstsearch/internal/wal"
)

// durableOp is one scripted mutation of the crash workload.
type durableOp struct {
	add bool
	tr  Trajectory // when add
	id  ID         // when !add
	s   Sample     // when !add
}

// crashWorkload builds a deterministic mutation script: a fleet of Adds
// followed by AppendSamples onto already-stored trajectories.
func crashWorkload(rng *rand.Rand, nTrajs, nSamples, nAppends int) []durableOp {
	trajs := fleet(rng, nTrajs, nSamples)
	lastT := map[ID]float64{}
	var ops []durableOp
	for i := range trajs {
		ops = append(ops, durableOp{add: true, tr: trajs[i]})
		lastT[trajs[i].ID] = trajs[i].Samples[nSamples-1].T
	}
	for i := 0; i < nAppends; i++ {
		id := ID(rng.Intn(nTrajs) + 1)
		t := lastT[id] + 1 + rng.Float64()
		lastT[id] = t
		ops = append(ops, durableOp{id: id, s: Sample{X: rng.Float64() * 100, Y: rng.Float64() * 100, T: t}})
	}
	return ops
}

// issueOps runs the script against db until the first error, returning
// how many mutations were acknowledged.
func issueOps(db *DB, ops []durableOp) (int, error) {
	for i, op := range ops {
		var err error
		if op.add {
			err = db.Add(op.tr)
		} else {
			err = db.AppendSample(op.id, op.s)
		}
		if err != nil {
			return i, err
		}
	}
	return len(ops), nil
}

// storeSig summarizes a DB's trajectory store as ID → sample count.
// Every workload op strictly grows the signature, so a signature
// identifies a unique prefix of the script.
func storeSig(db *DB) map[ID]int {
	sig := map[ID]int{}
	for i := range db.trajs {
		sig[db.trajs[i].ID] = len(db.trajs[i].Samples)
	}
	return sig
}

// matchPrefix finds the script prefix whose cumulative effect equals
// sig, or reports failure — i.e. the recovered state is NOT a prefix of
// the issued mutations.
func matchPrefix(ops []durableOp, sig map[ID]int) (int, bool) {
	cur := map[ID]int{}
	if reflect.DeepEqual(cur, sig) {
		return 0, true
	}
	for i, op := range ops {
		if op.add {
			cur[op.tr.ID] = len(op.tr.Samples)
		} else {
			cur[op.id]++
		}
		if reflect.DeepEqual(cur, sig) {
			return i + 1, true
		}
	}
	return 0, false
}

// crashQuery runs the fixed differential query the sweep compares.
func crashQuery(db *DB, q *Trajectory) ([]Result, error) {
	resp, err := db.Query(context.Background(), Request{
		Q: q, Interval: Interval{T1: 2, T2: 8}, K: 4, Options: DefaultOptions(),
	})
	return resp.Results, err
}

// crashSweep is the durability property test: for every byte offset cut
// (stepping by stride) across the workload's WAL write volume, it cuts
// the power mid-write at that offset, crashes under the given model,
// reopens, and requires that
//
//  1. recovery succeeds — a torn tail is never reported as corruption,
//  2. the recovered store is exactly a prefix of the issued mutations,
//  3. under SyncAlways every acknowledged mutation survived, and
//  4. a k-MST query against the recovered DB is bit-identical to the
//     same query against an in-memory oracle holding that prefix.
func crashSweep(t *testing.T, kind IndexKind, mode SyncMode, dropUnsynced bool, ckptBytes int64, stride int64, nTrajs, nSamples, nAppends int) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	ops := crashWorkload(rng, nTrajs, nSamples, nAppends)
	qref := ops[0].tr // the differential query, independent of DB state

	opts := func(b *storage.PowercutBudget) DurableOptions {
		return DurableOptions{
			Sync:            mode,
			SegmentBytes:    512,
			CheckpointBytes: ckptBytes,
			OpenFile:        func(path string) (wal.File, error) { return b.Open(path) },
		}
	}

	// Dry run with an unlimited budget to measure the write volume.
	root := t.TempDir()
	dry := storage.NewPowercutBudget(-1)
	db, err := OpenDurable(filepath.Join(root, "dry"), kind, opts(dry))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := issueOps(db, ops); err != nil {
		t.Fatalf("dry run stopped at op %d: %v", n, err)
	}
	total := dry.Written()
	if total == 0 {
		t.Fatal("dry run wrote nothing through the budget")
	}
	db.Close()

	for cut := int64(0); cut <= total; cut += stride {
		dir := filepath.Join(root, fmt.Sprintf("cut-%d", cut))
		b := storage.NewPowercutBudget(cut)
		acked := 0
		db, err := OpenDurable(dir, kind, opts(b))
		if err == nil {
			acked, err = issueOps(db, ops)
		}
		if err != nil && !errors.Is(err, storage.ErrInjected) {
			t.Fatalf("cut %d: unexpected failure class: %v", cut, err)
		}
		if err == nil && cut < total {
			t.Fatalf("cut %d: workload finished despite a budget below the write volume", cut)
		}
		if err := b.Crash(dropUnsynced); err != nil {
			t.Fatalf("cut %d: crash: %v", cut, err)
		}

		re, rerr := OpenDurable(dir, kind, DurableOptions{})
		if rerr != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, rerr)
		}
		n, ok := matchPrefix(ops, storeSig(re))
		if !ok {
			t.Fatalf("cut %d: recovered state (%d trajs) is not a prefix of the issued mutations", cut, re.Len())
		}
		if mode == SyncAlways && n < acked {
			t.Fatalf("cut %d: recovered only %d of %d fsync-acknowledged mutations", cut, n, acked)
		}
		// Differential: the recovered DB must answer queries exactly like
		// an in-memory oracle holding the same mutation prefix.
		oracle := Open(kind)
		for _, op := range ops[:n] {
			var err error
			if op.add {
				err = oracle.Add(op.tr)
			} else {
				err = oracle.AppendSample(op.id, op.s)
			}
			if err != nil {
				t.Fatalf("cut %d: oracle replay: %v", cut, err)
			}
		}
		got, gerr := crashQuery(re, &qref)
		want, werr := crashQuery(oracle, &qref)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("cut %d: query error mismatch: recovered=%v oracle=%v", cut, gerr, werr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: query differential after %d replayed ops:\nrecovered: %+v\noracle:    %+v", cut, n, got, want)
		}
		if err := re.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		// Keep the sweep's disk footprint bounded: thousands of small
		// directories otherwise accumulate under one TempDir.
		os.RemoveAll(dir)
	}
}

// TestCrashSweepEveryOffset is the exhaustive sweep on the small
// workload: every single byte offset, both crash models.
func TestCrashSweepEveryOffset(t *testing.T) {
	stride := int64(1)
	if testing.Short() {
		stride = 13
	}
	t.Run("drop-unsynced", func(t *testing.T) {
		crashSweep(t, RTree3D, SyncAlways, true, -1, stride, 6, 5, 15)
	})
	t.Run("keep-unsynced", func(t *testing.T) {
		crashSweep(t, RTree3D, SyncAlways, false, -1, stride, 6, 5, 15)
	})
}

// TestCrashSweepVariants samples the offset space under the weaker sync
// policies, with auto-checkpoints firing mid-workload, and on the
// bundled-tree index kinds (whose recovery path rebuilds the tree from
// the store before replay).
func TestCrashSweepVariants(t *testing.T) {
	stride := int64(7)
	if testing.Short() {
		stride = 31
	}
	t.Run("grouped-drop", func(t *testing.T) {
		crashSweep(t, RTree3D, SyncGrouped, true, -1, stride, 6, 5, 15)
	})
	t.Run("off-keep", func(t *testing.T) {
		crashSweep(t, RTree3D, SyncOff, false, -1, stride, 6, 5, 15)
	})
	t.Run("checkpointing-drop", func(t *testing.T) {
		crashSweep(t, RTree3D, SyncAlways, true, 600, stride, 6, 5, 15)
	})
	t.Run("tbtree-checkpointing", func(t *testing.T) {
		crashSweep(t, TBTree, SyncAlways, true, 900, stride+4, 6, 5, 15)
	})
	t.Run("strtree-drop", func(t *testing.T) {
		crashSweep(t, STRTree, SyncAlways, true, -1, stride+6, 6, 5, 15)
	})
}

// TestOpenDurableRoundTrip exercises the plain lifecycle: create, fill,
// close, reopen, verify, mutate further, checkpoint, reopen again.
func TestOpenDurableRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	trajs := fleet(rng, 12, 8)
	for _, kind := range IndexKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			db, err := OpenDurable(dir, kind, DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for i := range trajs {
				if err := db.Add(trajs[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := OpenDurable(dir, kind, DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if re.Len() != len(trajs) {
				t.Fatalf("reopened %d trajectories, want %d", re.Len(), len(trajs))
			}
			got, err := crashQuery(re, &trajs[0])
			if err != nil {
				t.Fatal(err)
			}
			mem, err := NewDB(kind, trajs)
			if err != nil {
				t.Fatal(err)
			}
			want, err := crashQuery(mem, &trajs[0])
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered query differs:\n%+v\n%+v", got, want)
			}

			// Mutations keep working after recovery, across a checkpoint.
			if err := re.AppendSample(trajs[0].ID, Sample{X: 1, Y: 2, T: 1e6}); err != nil {
				t.Fatal(err)
			}
			if err := re.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := re.AppendSample(trajs[0].ID, Sample{X: 2, Y: 3, T: 2e6}); err != nil {
				t.Fatal(err)
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}

			final, err := OpenDurable(dir, kind, DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if tr := final.Get(trajs[0].ID); len(tr.Samples) != len(trajs[0].Samples)+2 {
				t.Fatalf("post-checkpoint samples: %d", len(tr.Samples))
			}
			final.Close()
		})
	}
}

// TestCheckpointTruncatesLog verifies the checkpoint state machine on
// disk: a new snapshot epoch appears, old epochs' segments and snapshots
// disappear, and the auto-trigger fires past CheckpointBytes.
func TestCheckpointTruncatesLog(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	dir := t.TempDir()
	db, err := OpenDurable(dir, RTree3D, DurableOptions{CheckpointBytes: 2000, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	trajs := fleet(rng, 20, 6)
	for i := range trajs {
		if err := db.Add(trajs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if db.epoch == 0 {
		t.Fatal("auto-checkpoint never fired")
	}
	if db.wal.Size() >= 2000 {
		t.Fatalf("log size %d not truncated by checkpoint", db.wal.Size())
	}
	segs, err := wal.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s.Epoch < db.epoch {
			t.Fatalf("stale segment %s survived checkpoint to epoch %d", s.Name, db.epoch)
		}
	}
	epochs, err := snapshotEpochs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 1 || epochs[0] != db.epoch {
		t.Fatalf("snapshots %v, want exactly epoch %d", epochs, db.epoch)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable(dir, RTree3D, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(trajs) {
		t.Fatalf("recovered %d trajectories, want %d", re.Len(), len(trajs))
	}
}

// TestOpenDurableKindMismatch: a directory checkpointed under one index
// kind refuses to open as another.
func TestOpenDurableKindMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dir := t.TempDir()
	db, err := OpenDurable(dir, RTree3D, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	trajs := fleet(rng, 3, 5)
	for i := range trajs {
		if err := db.Add(trajs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, TBTree, DurableOptions{}); !errors.Is(err, ErrSnapshotKind) {
		t.Fatalf("kind mismatch: got %v", err)
	}
}

// TestWALCorruptMidLog: damage before the final frame must surface as
// ErrWALCorrupt, not be silently truncated away.
func TestWALCorruptMidLog(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	dir := t.TempDir()
	db, err := OpenDurable(dir, RTree3D, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	trajs := fleet(rng, 4, 5)
	for i := range trajs {
		if err := db.Add(trajs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := wal.Segments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	path := filepath.Join(dir, segs[0].Name)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the first frame (past the 16-byte segment
	// header and the frame's length+type prefix); later frames in the
	// same segment stay decodable, so this cannot be a torn tail.
	raw[16+5+3] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, RTree3D, DurableOptions{}); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("mid-log damage: got %v, want ErrWALCorrupt", err)
	}
}

// TestDurableMisuse covers the typed-error edges of the durable API.
func TestDurableMisuse(t *testing.T) {
	db := Open(RTree3D)
	if err := db.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("checkpoint on in-memory DB: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close on in-memory DB must be a no-op: %v", err)
	}

	dir := t.TempDir()
	d, err := OpenDurable(dir, RTree3D, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close must be idempotent: %v", err)
	}
}

// TestCheckpointContextAborts: a dead context stops a checkpoint before
// it mutates anything — the WAL keeps its entries, the epoch stays put,
// and a later uncanceled checkpoint still succeeds on the same state.
func TestCheckpointContextAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	dir := t.TempDir()
	db, err := OpenDurable(dir, RTree3D, DurableOptions{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	trajs := fleet(rng, 10, 6)
	for i := range trajs {
		if err := db.Add(trajs[i]); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore, epochBefore := db.wal.Size(), db.epoch

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = db.CheckpointContext(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled checkpoint: got %v, want ErrCanceled", err)
	}
	if db.wal.Size() != sizeBefore || db.epoch != epochBefore {
		t.Fatalf("aborted checkpoint mutated state: size %d→%d epoch %d→%d",
			sizeBefore, db.wal.Size(), epochBefore, db.epoch)
	}

	if err := db.CheckpointContext(context.Background()); err != nil {
		t.Fatalf("checkpoint after aborted attempt: %v", err)
	}
	if db.epoch == epochBefore {
		t.Fatal("successful checkpoint did not advance the epoch")
	}
}

// TestCrashSweepLargeWorkloadSampled is the scaled-up sweep: a workload
// several times the exhaustive one's write volume, sampled at a prime
// stride so successive runs of the suite still cover diverse torn-frame
// positions, with segment rotation and auto-checkpoints in play.
func TestCrashSweepLargeWorkloadSampled(t *testing.T) {
	stride := int64(97)
	if testing.Short() {
		stride = 397
	}
	crashSweep(t, RTree3D, SyncAlways, true, 2500, stride, 18, 10, 50)
}

// TestRecoverDuringLiveQueries runs Recover repeatedly while query
// goroutines hammer the DB — the -race gate for the rebuild path's lock
// discipline. Every query must come back correct or not at all.
func TestRecoverDuringLiveQueries(t *testing.T) {
	testutil.CheckGoroutines(t)
	rng := rand.New(rand.NewSource(16))
	trajs := fleet(rng, 30, 20)
	db, err := NewDB(TBTree, trajs)
	if err != nil {
		t.Fatal(err)
	}
	q := trajs[1].Clone()
	q.ID = 0
	req := Request{Q: &q, Interval: Interval{T1: 2, T2: 8}, K: 3, Options: DefaultOptions()}
	ctx := context.Background()
	want, err := db.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := db.Query(ctx, req)
				if err != nil {
					t.Errorf("query during recover: %v", err)
					return
				}
				if !reflect.DeepEqual(resp.Results, want.Results) {
					t.Errorf("query during recover changed results")
					return
				}
			}
		}()
	}
	for i := 0; i < 25; i++ {
		if err := db.Recover(); err != nil {
			t.Errorf("recover %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// walCounters reads the four WAL metrics from the process registry.
func walCounters() [4]uint64 {
	return [4]uint64{
		obs.Default.Counter("wal.appends").Load(),
		obs.Default.Counter("wal.fsyncs").Load(),
		obs.Default.Counter("wal.replayed").Load(),
		obs.Default.Counter("wal.truncations").Load(),
	}
}

// TestWALMetricsZeroCostWhenOff is the durability analogue of
// TestQueryNoAllocRegression: an in-memory DB's mutation path must never
// touch the WAL subsystem, so none of the wal.* counters may move.
func TestWALMetricsZeroCostWhenOff(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	before := walCounters()
	db, err := NewDB(RTree3D, fleet(rng, 10, 8))
	if err != nil {
		t.Fatal(err)
	}
	for id := ID(1); id <= 10; id++ {
		if err := db.AppendSample(id, Sample{X: 1, Y: 1, T: 100 + float64(id)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if after := walCounters(); after != before {
		t.Fatalf("in-memory mutations moved wal.* counters: %v -> %v", before, after)
	}
}

// TestWALMetricsMoveWhenDurable: the same counters must account for a
// durable DB's journaling, replay, and truncation activity.
func TestWALMetricsMoveWhenDurable(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	dir := t.TempDir()
	before := walCounters()

	db, err := OpenDurable(dir, RTree3D, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	trajs := fleet(rng, 5, 6)
	for i := range trajs {
		if err := db.Add(trajs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	mid := walCounters()
	if mid[0] < before[0]+5 {
		t.Fatalf("wal.appends did not account for 5 journaled Adds: %v -> %v", before, mid)
	}
	if mid[1] <= before[1] {
		t.Fatalf("wal.fsyncs did not move under SyncAlways: %v -> %v", before, mid)
	}

	re, err := OpenDurable(dir, RTree3D, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := walCounters(); got[2] < mid[2]+5 {
		t.Fatalf("wal.replayed did not account for recovery: %v -> %v", mid, got)
	}
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := walCounters(); got[3] <= mid[3] {
		t.Fatalf("wal.truncations did not move on checkpoint: %v -> %v", mid, got)
	}
	re.Close()
}
