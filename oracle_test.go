package mstsearch

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"mstsearch/internal/gstd"
)

// The differential oracle: every index-based k-MST answer — over all three
// index kinds, serial and parallel, single-query and batch — must match a
// brute-force exact-DISSIM scan of the raw trajectory slice. The scan
// (linearTopK) touches no index, no buffer pool, and no concurrency, so an
// agreement here certifies the whole query stack at once.
//
// Tolerances: result membership and ordering must be identical. Distances
// must agree within the result's own certified error band (Lemma 1 gives
// Err = 0 after exact refinement, so in practice this is a floating-point
// epsilon). Serial and parallel runs of the *same* query must be
// bit-identical — same IDs, same float bits, same Certified flags — per
// the Options.Parallelism contract.

// oracleQuery builds a seeded random-walk query trajectory spanning the
// GSTD time domain [0, 1] inside the unit workspace.
func oracleQuery(rng *rand.Rand, samples int) *Trajectory {
	tr := &Trajectory{ID: 0, Samples: make([]Sample, samples)}
	x, y := rng.Float64(), rng.Float64()
	for j := 0; j < samples; j++ {
		tr.Samples[j] = Sample{X: x, Y: y, T: float64(j) / float64(samples-1)}
		x += rng.NormFloat64() * 0.02
		y += rng.NormFloat64() * 0.02
	}
	return tr
}

// oracleWindow draws a random query window [t1, t2] ⊂ [0, 1] wide enough
// to always span at least a few sampling intervals.
func oracleWindow(rng *rand.Rand) (float64, float64) {
	t1 := rng.Float64() * 0.6
	t2 := t1 + 0.1 + rng.Float64()*(1.0-t1-0.1)
	return t1, t2
}

// checkOracle compares an index answer against the linear-scan oracle:
// same members, same order, distances within the certified band.
func checkOracle(t *testing.T, label string, iter int, res []Result, want []scanHit) {
	t.Helper()
	if len(res) != len(want) {
		t.Fatalf("%s iter %d: got %d results, oracle %d", label, iter, len(res), len(want))
	}
	for j := range want {
		if res[j].TrajID != want[j].id {
			t.Fatalf("%s iter %d: rank %d = traj %d (%g), oracle %d (%g)",
				label, iter, j, res[j].TrajID, res[j].Dissim, want[j].id, want[j].d)
		}
		tol := res[j].Err + 1e-9*(1+math.Abs(want[j].d))
		if math.Abs(res[j].Dissim-want[j].d) > tol {
			t.Fatalf("%s iter %d: traj %d dissim %g outside band ±%g of oracle %g",
				label, iter, res[j].TrajID, res[j].Dissim, tol, want[j].d)
		}
		if !res[j].Certified {
			t.Fatalf("%s iter %d: unbudgeted search left result %d uncertified",
				label, iter, res[j].TrajID)
		}
	}
}

// checkBitIdentical asserts two answers to the same query are equal down
// to the float bits — the determinism contract of parallel execution.
func checkBitIdentical(t *testing.T, label string, iter int, serial, parallel []Result) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("%s iter %d: serial %d results, parallel %d", label, iter, len(serial), len(parallel))
	}
	for j := range serial {
		s, p := serial[j], parallel[j]
		if s.TrajID != p.TrajID ||
			math.Float64bits(s.Dissim) != math.Float64bits(p.Dissim) ||
			math.Float64bits(s.Err) != math.Float64bits(p.Err) ||
			s.Certified != p.Certified {
			t.Fatalf("%s iter %d rank %d: serial %+v != parallel %+v", label, iter, j, s, p)
		}
	}
}

// TestDifferentialOracle is the PR's central correctness gate: randomized
// GSTD fleets × every index kind × {serial, Parallelism=4,
// batch(Parallelism=4)} — every answer checked against the brute-force
// oracle, and every parallel answer checked bit-identical to its serial
// twin. Over 1000 index query executions run per full pass.
func TestDifferentialOracle(t *testing.T) {
	fleets := []struct {
		name string
		cfg  gstd.Config
		warm bool
	}{
		{"S0030", gstd.Config{NumObjects: 30, SamplesPerObject: 121, Seed: 1}, false},
		{"S0048", gstd.Config{NumObjects: 48, SamplesPerObject: 81, Seed: 2}, true},
	}
	const queriesPerCombo = 56 // × (serial+parallel+batch) × 3 kinds × 2 fleets = 1008 executions
	executions := 0
	for _, fl := range fleets {
		trajs := gstd.Generate(fl.cfg).Trajs
		for _, kind := range IndexKinds() {
			label := fl.name + "/" + kind.String()
			t.Run(label, func(t *testing.T) {
				db, err := NewDB(kind, trajs)
				if err != nil {
					t.Fatal(err)
				}
				if fl.warm {
					db.EnableWarmBuffer()
				}
				rng := rand.New(rand.NewSource(1000*int64(kind) + fl.cfg.Seed))

				serialOut := make([][]Result, queriesPerCombo)
				batch := make([]BatchQuery, queriesPerCombo)
				for i := 0; i < queriesPerCombo; i++ {
					var q *Trajectory
					if i%3 == 0 {
						// Reuse a stored trajectory as query: its twin must
						// surface at distance ~0.
						c := trajs[rng.Intn(len(trajs))].Clone()
						q = &c
					} else {
						q = oracleQuery(rng, 61)
					}
					t1, t2 := oracleWindow(rng)
					k := 1 + rng.Intn(5)
					want := linearTopK(trajs, q, t1, t2, k)

					// Serial leg through the canonical Query entry point,
					// parallel leg through the deprecated wrapper: the
					// bit-identical check then also certifies that the two
					// entry points are the same search.
					resp, err := db.Query(context.Background(), Request{
						Q: q, Interval: Interval{T1: t1, T2: t2}, K: k,
						Options: Options{ExactRefine: true, Refine: 1, Parallelism: 1},
					})
					if err != nil {
						t.Fatalf("iter %d serial: %v", i, err)
					}
					serial := resp.Results
					checkOracle(t, "serial", i, serial, want)

					par, _, err := db.KMostSimilarOpts(q, t1, t2, k,
						Options{ExactRefine: true, Refine: 1, Parallelism: 4})
					if err != nil {
						t.Fatalf("iter %d parallel: %v", i, err)
					}
					checkOracle(t, "parallel", i, par, want)
					checkBitIdentical(t, "single", i, serial, par)

					serialOut[i] = serial
					batch[i] = BatchQuery{Q: q, T1: t1, T2: t2, K: k}
					executions += 2
				}

				// The whole combo again as one batch on 4 workers: every
				// slot bit-identical to its serial twin.
				for i, br := range db.KMostSimilarBatch(context.Background(), batch,
					Options{ExactRefine: true, Refine: 1, Parallelism: 4}) {
					if br.Err != nil {
						t.Fatalf("batch slot %d: %v", i, br.Err)
					}
					checkBitIdentical(t, "batch", i, serialOut[i], br.Results)
					executions += 1
				}
			})
		}
	}
	if !t.Failed() && executions > 0 && executions < 1000 {
		t.Fatalf("oracle pass ran only %d index query executions, want ≥ 1000", executions)
	}
}

// TestOracleSelfQuery pins the identity case across kinds: querying with a
// stored trajectory over the full window must rank its twin first at
// DISSIM ≈ 0.
func TestOracleSelfQuery(t *testing.T) {
	trajs := gstd.Generate(gstd.Config{NumObjects: 25, SamplesPerObject: 61, Seed: 9}).Trajs
	for _, kind := range IndexKinds() {
		db, err := NewDB(kind, trajs)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range []int{0, 7, 24} {
			q := trajs[id].Clone()
			res, _, err := db.KMostSimilar(&q, 0, 1, 1)
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			if len(res) != 1 || res[0].TrajID != trajs[id].ID {
				t.Fatalf("%s: self-query for traj %d returned %+v", kind, trajs[id].ID, res)
			}
			if res[0].Dissim > 1e-9 {
				t.Fatalf("%s: self-distance %g, want ~0", kind, res[0].Dissim)
			}
		}
	}
}
