package mstsearch

import (
	"math/rand"
	"testing"
)

// Test-only bridge for the sharded differential suites, which live in the
// external mstsearch_test package: internal/shard imports this package, so
// its differential tests cannot be compiled into it, yet they must reuse
// the exact same brute-force oracle and workload generators the single-DB
// suites are certified against — re-implementing them there would let the
// two definitions drift apart.

// OracleHit is one linear-scan oracle answer, with exported fields.
type OracleHit struct {
	ID     ID
	Dissim float64
}

// OracleTopK runs the exact brute-force k-MST oracle over the raw slice.
func OracleTopK(trajs []Trajectory, q *Trajectory, t1, t2 float64, k int) []OracleHit {
	hits := linearTopK(trajs, q, t1, t2, k)
	out := make([]OracleHit, len(hits))
	for i, h := range hits {
		out[i] = OracleHit{ID: h.id, Dissim: h.d}
	}
	return out
}

// OracleQueryTraj re-exports the seeded random-walk query generator the
// differential oracle uses (GSTD unit workspace, time domain [0, 1]).
func OracleQueryTraj(rng *rand.Rand, samples int) *Trajectory {
	return oracleQuery(rng, samples)
}

// OracleQueryWindow re-exports the oracle's query-window generator.
func OracleQueryWindow(rng *rand.Rand) (t1, t2 float64) {
	return oracleWindow(rng)
}

// FleetForTest re-exports the seeded fleet generator (workspace [0, 100]²,
// time domain [0, 10]).
func FleetForTest(rng *rand.Rand, n, samples int) []Trajectory {
	return fleet(rng, n, samples)
}

// CheckBitIdentical re-exports the float-bit equality assertion: same
// IDs, same Dissim/Err bits, same Certified flags.
func CheckBitIdentical(t *testing.T, label string, iter int, a, b []Result) {
	t.Helper()
	checkBitIdentical(t, label, iter, a, b)
}
