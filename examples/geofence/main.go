// Geofence exercises the full query family the paper argues one
// general-purpose spatiotemporal index should serve (§1): range,
// topological, nearest-neighbour and similarity queries — all against the
// same TB-tree, with no dedicated structures.
//
// Scenario: a port authority monitors a restricted harbour zone. From one
// day of vessel traces it asks: which ships' position reports fall inside
// the zone tonight (range)? which ships entered, crossed or only skirted
// it (topological)? which ship was closest to the incident site at 02:30
// (nearest neighbour)? and which ships moved most like the suspicious one
// (k-MST similarity)?
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"mstsearch"
)

func main() {
	rng := rand.New(rand.NewSource(12))

	// 30 vessels over one day (t in [0, 24]), in a 100×100 sea.
	var ships []mstsearch.Trajectory
	for id := 1; id <= 30; id++ {
		tr := mstsearch.Trajectory{ID: mstsearch.ID(id)}
		x, y := rng.Float64()*100, rng.Float64()*100
		hx, hy := rng.NormFloat64(), rng.NormFloat64()
		for t := 0.0; t <= 24; t += 0.25 {
			tr.Samples = append(tr.Samples, mstsearch.Sample{X: x, Y: y, T: t})
			hx += rng.NormFloat64() * 0.3
			hy += rng.NormFloat64() * 0.3
			x += hx * 0.25
			y += hy * 0.25
		}
		ships = append(ships, tr)
	}
	// Ship 31 deliberately crosses the restricted zone overnight.
	intruder := mstsearch.Trajectory{ID: 31}
	for t := 0.0; t <= 24; t += 0.25 {
		intruder.Samples = append(intruder.Samples, mstsearch.Sample{
			X: 10 + t*3, Y: 40 + t*0.5, T: t,
		})
	}
	ships = append(ships, intruder)

	db, err := mstsearch.NewDB(mstsearch.TBTree, ships)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("harbour traffic: %d vessels, %d track segments, one %s index\n\n",
		db.Len(), db.NumSegments(), mstsearch.TBTree)

	// Restricted zone and night window, as typed query values.
	ctx := context.Background()
	zone := mstsearch.Window{MinX: 40, MinY: 40, MaxX: 60, MaxY: 60}
	night := mstsearch.Interval{T1: 0, T2: 8}

	// 1. Range query: raw position reports inside the zone tonight.
	hits, err := db.Range(ctx, zone, night)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range query: %d track segments inside the zone during the night\n", len(hits))

	// Cost estimate before the fact, as an optimizer would.
	est, err := db.EstimateRange(zone, night)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  (histogram estimated %.0f segments before running it)\n\n", est)

	// 2. Topological query: how each vessel relates to the zone.
	rels, err := db.Topology(ctx, zone, night)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("topological query (night window):")
	for _, r := range rels {
		fmt.Printf("  vessel %-3d %-8s inside for %.1f h\n", r.TrajID, r.Relation, r.InsideDuration)
	}

	// 3. Historical NN: who was closest to the incident site at 02:30?
	nn, err := db.Nearest(ctx, 50, 50, 2.5, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nclosest vessels to the incident site (50, 50) at t = 2.5:")
	for i, r := range nn {
		fmt.Printf("  %d. vessel %-3d at distance %.1f\n", i+1, r.TrajID, r.Dist)
	}

	// 4. Similarity: which vessels moved most like the intruder overnight?
	q := intruder.Clone()
	q.ID = 0
	resp, err := db.Query(ctx, mstsearch.Request{
		Q: &q, Interval: night, K: 4, Options: mstsearch.DefaultOptions(),
	})
	if err != nil {
		log.Fatal(err)
	}
	sim, stats := resp.Results, resp.Stats
	fmt.Println("\nvessels moving most like the intruder (k-MST, DISSIM):")
	for i, r := range sim {
		note := ""
		if r.TrajID == 31 {
			note = "   <- the intruder itself"
		}
		fmt.Printf("  %d. vessel %-3d DISSIM = %8.1f%s\n", i+1, r.TrajID, r.Dissim, note)
	}
	fmt.Printf("\nall four query types ran on the same index; the k-MST search pruned %.0f%% of it\n",
		stats.PruningPower*100)
}
