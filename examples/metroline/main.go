// Metroline reproduces the paper's motivating scenario (§1): a city
// extends its metro network with a new line, and transport planners ask
// which existing bus lines run most similarly to it — in space AND time —
// so their timetables can be revised (or the routes retired).
//
// The example builds a synthetic city: a new metro line running diagonally
// across town on a fixed schedule, and 30 bus lines on assorted routes.
// Three of the buses deliberately shadow the metro corridor: one matching
// its schedule, one on the same route but offset in time, and one on the
// same route at rush-hour crawl speed. A k-MST query with the DISSIM
// metric tells the planner which buses genuinely duplicate the new
// service, and the time-offset bus shows why spatial-only similarity would
// mislead.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"mstsearch"
)

const (
	dayStart = 0.0  // 06:00 in abstract units
	dayEnd   = 18.0 // 24:00
)

// route samples a line between two corners with n stops, jittered.
func route(rng *rand.Rand, id int, x0, y0, x1, y1, t0, t1 float64, n int, noise float64) mstsearch.Trajectory {
	tr := mstsearch.Trajectory{ID: mstsearch.ID(id)}
	for j := 0; j <= n; j++ {
		f := float64(j) / float64(n)
		tr.Samples = append(tr.Samples, mstsearch.Sample{
			X: x0 + f*(x1-x0) + rng.NormFloat64()*noise,
			Y: y0 + f*(y1-y0) + rng.NormFloat64()*noise,
			T: t0 + f*(t1-t0),
		})
	}
	return tr
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// The new metro line: SW depot to NE terminus, a full service day.
	metro := route(rng, 999, 10, 10, 90, 90, dayStart, dayEnd, 60, 0)
	metro.ID = 0 // query trajectory

	var buses []mstsearch.Trajectory
	// Bus 1 shadows the metro corridor on the metro's schedule.
	buses = append(buses, route(rng, 1, 11, 9, 91, 89, dayStart, dayEnd, 45, 0.8))
	// Bus 2 drives the same corridor but in the opposite direction.
	buses = append(buses, route(rng, 2, 90, 90, 10, 10, dayStart, dayEnd, 45, 0.8))
	// Bus 3 rides the corridor but spends the morning circling downtown
	// first — same shape later, different timing.
	late := route(rng, 3, 10, 10, 90, 90, dayStart+9, dayEnd, 30, 0.8)
	loop := route(rng, 3, 30, 30, 32, 30, dayStart, dayStart+8.9, 20, 2.5)
	loop.Samples = append(loop.Samples, late.Samples...)
	buses = append(buses, loop)
	// 27 unrelated lines criss-crossing town.
	for id := 4; id <= 30; id++ {
		buses = append(buses, route(rng, id,
			rng.Float64()*100, rng.Float64()*100,
			rng.Float64()*100, rng.Float64()*100,
			dayStart, dayEnd, 30+rng.Intn(30), 1.5))
	}

	db, err := mstsearch.NewDB(mstsearch.RTree3D, buses)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city bus network: %d lines, %d segments, %.2f MB 3D R-tree\n\n",
		db.Len(), db.NumSegments(), db.IndexSizeMB())

	resp, err := db.Query(context.Background(), mstsearch.Request{
		Q: &metro, Interval: mstsearch.Interval{T1: dayStart, T2: dayEnd}, K: 5,
		Options: mstsearch.DefaultOptions(),
	})
	if err != nil {
		log.Fatal(err)
	}
	results, stats := resp.Results, resp.Stats
	fmt.Println("bus lines most similar to the new metro line (full service day):")
	for i, r := range results {
		fmt.Printf("%d. bus line %-3d DISSIM = %8.1f%s\n",
			i+1, r.TrajID, r.Dissim, annotation(r.TrajID))
	}
	fmt.Printf("\npruning power: %.1f%% of %d index nodes never read\n",
		stats.PruningPower*100, stats.TotalNodes)

	// The planner's takeaway, computed rather than asserted: bus 1 is
	// redundant with the metro; bus 3 only looks redundant on a map.
	d1, _ := mstsearch.Dissimilarity(&metro, db.Get(1), dayStart, dayEnd)
	d3, _ := mstsearch.Dissimilarity(&metro, db.Get(3), dayStart, dayEnd)
	fmt.Printf("\nspatially, lines 1 and 3 both follow the corridor, but\n")
	fmt.Printf("DISSIM(metro, bus 1) = %.1f while DISSIM(metro, bus 3) = %.1f:\n", d1, d3)
	fmt.Println("only bus 1 duplicates the metro in space-time and is a candidate for rescheduling.")
}

func annotation(id mstsearch.ID) string {
	switch id {
	case 1:
		return "   <- same corridor, same schedule"
	case 2:
		return "   <- same corridor, opposite direction"
	case 3:
		return "   <- same corridor, morning spent downtown"
	}
	return ""
}
