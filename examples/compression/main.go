// Compression walks through the TD-TR / DISSIM interplay behind the
// paper's Fig. 8 and Fig. 9: compressing a trajectory harder keeps fewer
// vertices, its DISSIM from the original grows smoothly, and the Lemma 1
// trapezoid approximation tracks the exact integral within its certified
// error bound at a fraction of the cost.
package main

import (
	"fmt"
	"time"

	"mstsearch"
	"mstsearch/internal/experiments"
)

func main() {
	data := experiments.TrucksDataset(0.25, 3)
	// Pick the busiest truck, as the paper does for its Fig. 8 example.
	tr := &data.Trajs[0]
	for i := range data.Trajs {
		if len(data.Trajs[i].Samples) > len(tr.Samples) {
			tr = &data.Trajs[i]
		}
	}
	fmt.Printf("example trajectory: truck %d with %d vertices, length %.3f\n\n",
		tr.ID, len(tr.Samples), tr.SpatialLength())

	fmt.Printf("%-8s%10s%14s%22s%12s\n", "p", "vertices", "exact DISSIM", "trapezoid ± bound", "speedup")
	for _, p := range []float64{0.001, 0.01, 0.02, 0.05, 0.10} {
		c := mstsearch.CompressTDTR(tr, p)
		c.ID = 0

		t0 := time.Now()
		exact, _ := mstsearch.Dissimilarity(&c, tr, tr.StartTime(), tr.EndTime())
		exactDur := time.Since(t0)

		t0 = time.Now()
		approx, bound, _ := mstsearch.DissimilarityApprox(&c, tr, tr.StartTime(), tr.EndTime())
		approxDur := time.Since(t0)

		speedup := float64(exactDur) / float64(approxDur)
		fmt.Printf("%-8s%10d%14.6f%14.6f ± %-8.6f%9.1fx\n",
			fmt.Sprintf("%.1f%%", p*100), len(c.Samples), exact, approx, bound, speedup)
		if exact < approx-bound-1e-9 || exact > approx+bound+1e-9 {
			fmt.Println("  !! exact value escaped the certified interval — this is a bug")
		}
	}
	fmt.Println("\nthe sketch of the route survives compression (vertex counts fall,")
	fmt.Println("dissimilarity grows slowly) — exactly the property the Fig. 9 quality")
	fmt.Println("experiment exploits when it uses compressed trajectories as queries.")
}
