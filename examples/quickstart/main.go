// Quickstart: build a trajectory database, run a k-Most-Similar-Trajectory
// query, and inspect the pruning statistics.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"mstsearch"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Forty moving objects wandering a 100×100 area for 10 time units,
	// each sampled at its own rate — DISSIM does not care.
	var fleet []mstsearch.Trajectory
	for id := 1; id <= 40; id++ {
		n := 20 + rng.Intn(80)
		tr := mstsearch.Trajectory{ID: mstsearch.ID(id)}
		x, y := rng.Float64()*100, rng.Float64()*100
		for j := 0; j <= n; j++ {
			tr.Samples = append(tr.Samples, mstsearch.Sample{
				X: x, Y: y, T: 10 * float64(j) / float64(n),
			})
			x += rng.NormFloat64()
			y += rng.NormFloat64()
		}
		fleet = append(fleet, tr)
	}

	// Index the fleet in a TB-tree (use mstsearch.RTree3D for a 3D R-tree).
	db, err := mstsearch.NewDB(mstsearch.TBTree, fleet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d trajectories (%d segments) in a %.2f MB TB-tree\n",
		db.Len(), db.NumSegments(), db.IndexSizeMB())

	// Query: a noisy copy of object 7 — it should come back first.
	q := db.Get(7).Clone()
	q.ID = 0
	for i := range q.Samples {
		q.Samples[i].X += rng.NormFloat64() * 0.2
		q.Samples[i].Y += rng.NormFloat64() * 0.2
	}

	resp, err := db.Query(context.Background(), mstsearch.Request{
		Q: &q, Interval: mstsearch.Interval{T1: 0, T2: 10}, K: 3,
		Options: mstsearch.DefaultOptions(),
	})
	if err != nil {
		log.Fatal(err)
	}
	results, stats := resp.Results, resp.Stats
	fmt.Printf("\n3 most similar trajectories during [0, 10]:\n")
	for i, r := range results {
		fmt.Printf("%d. trajectory %-3d DISSIM = %.3f\n", i+1, r.TrajID, r.Dissim)
	}
	fmt.Printf("\nsearch touched %d of %d index nodes (pruning power %.1f%%)\n",
		stats.NodesAccessed, stats.TotalNodes, stats.PruningPower*100)

	// Pairwise metric access: exact and approximate DISSIM.
	exact, _ := mstsearch.Dissimilarity(&q, db.Get(results[0].TrajID), 0, 10)
	approx, bound, _ := mstsearch.DissimilarityApprox(&q, db.Get(results[0].TrajID), 0, 10)
	fmt.Printf("exact DISSIM %.4f; trapezoid approximation %.4f ± %.4f (|diff| = %.2g)\n",
		exact, approx, bound, math.Abs(exact-approx))
}
