// Timerelaxed demonstrates the Time-Relaxed MST query, the extension the
// paper's conclusions name as future work (§6): find the trajectories that
// moved most like the query *regardless of when each object set out*.
//
// Scenario: a security analyst has the movement pattern of a suspicious
// vehicle recorded on Monday and wants to know which vehicles in the
// archive repeated that pattern at any time during the week. The standard
// (time-anchored) k-MST query only matches Monday drivers; the relaxed
// query also surfaces a vehicle that drove the identical route on
// Thursday.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"mstsearch"
)

const day = 24.0

// drive produces a trajectory following the base course starting at t0,
// with positional noise.
func drive(rng *rand.Rand, id int, t0, speed float64, noise float64) mstsearch.Trajectory {
	tr := mstsearch.Trajectory{ID: mstsearch.ID(id)}
	// A distinctive 8-leg course through the city.
	course := [][2]float64{{5, 5}, {20, 8}, {25, 25}, {40, 28}, {42, 45}, {60, 50}, {64, 70}, {80, 75}, {95, 90}}
	tt := t0
	for leg := 0; leg+1 < len(course); leg++ {
		a, b := course[leg], course[leg+1]
		for s := 0; s < 6; s++ {
			f := float64(s) / 6
			tr.Samples = append(tr.Samples, mstsearch.Sample{
				X: a[0] + f*(b[0]-a[0]) + rng.NormFloat64()*noise,
				Y: a[1] + f*(b[1]-a[1]) + rng.NormFloat64()*noise,
				T: tt,
			})
			tt += 0.2 / speed
		}
	}
	tr.Samples = append(tr.Samples, mstsearch.Sample{X: 95, Y: 90, T: tt})
	return tr
}

// wander produces an unrelated vehicle active all week.
func wander(rng *rand.Rand, id int) mstsearch.Trajectory {
	tr := mstsearch.Trajectory{ID: mstsearch.ID(id)}
	x, y := rng.Float64()*100, rng.Float64()*100
	for t := 0.0; t <= 7*day; t += 0.5 {
		tr.Samples = append(tr.Samples, mstsearch.Sample{X: x, Y: y, T: t})
		x += rng.NormFloat64() * 2
		y += rng.NormFloat64() * 2
	}
	return tr
}

func main() {
	rng := rand.New(rand.NewSource(3))

	var archive []mstsearch.Trajectory
	// Vehicle 1: drives the course on Monday morning (like the query).
	archive = append(archive, pad(drive(rng, 1, 8, 1, 0.4), 7*day))
	// Vehicle 2: drives the same course on THURSDAY morning.
	archive = append(archive, pad(drive(rng, 2, 3*day+8, 1, 0.4), 7*day))
	// Vehicles 3..25: unrelated traffic.
	for id := 3; id <= 25; id++ {
		archive = append(archive, wander(rng, id))
	}

	db, err := mstsearch.NewDB(mstsearch.RTree3D, archive)
	if err != nil {
		log.Fatal(err)
	}

	// The observed pattern: the course driven Monday at 08:00.
	q := drive(rng, 0, 8, 1, 0)
	q.ID = 0

	fmt.Println("time-anchored k-MST (Monday 08:00 window):")
	aresp, err := db.Query(context.Background(), mstsearch.Request{
		Q: &q, Interval: mstsearch.Interval{T1: q.StartTime(), T2: q.EndTime()}, K: 3,
		Options: mstsearch.DefaultOptions(),
	})
	if err != nil {
		log.Fatal(err)
	}
	anchored := aresp.Results
	for i, r := range anchored {
		fmt.Printf("%d. vehicle %-3d DISSIM = %9.2f%s\n", i+1, r.TrajID, r.Dissim, note(r.TrajID))
	}

	fmt.Println("\ntime-relaxed k-MST (best alignment at any start time):")
	relaxed, err := db.Relaxed(context.Background(), &q, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range relaxed {
		fmt.Printf("%d. vehicle %-3d DISSIM = %9.2f at offset %+6.1f h%s\n",
			i+1, r.TrajID, r.Dissim, r.Offset, note(r.TrajID))
	}
	fmt.Println("\nthe Thursday copycat (vehicle 2) is invisible to the anchored query")
	fmt.Println("but surfaces under the relaxed one, with the ~72 h offset recovered.")
}

// pad extends a trajectory to span [0, end] by parking the vehicle at its
// endpoints, so every archive entry covers the whole week.
func pad(tr mstsearch.Trajectory, end float64) mstsearch.Trajectory {
	first, last := tr.Samples[0], tr.Samples[len(tr.Samples)-1]
	var out mstsearch.Trajectory
	out.ID = tr.ID
	if first.T > 0 {
		out.Samples = append(out.Samples, mstsearch.Sample{X: first.X, Y: first.Y, T: 0})
	}
	out.Samples = append(out.Samples, tr.Samples...)
	if last.T < end {
		out.Samples = append(out.Samples, mstsearch.Sample{X: last.X, Y: last.Y, T: end})
	}
	return out
}

func note(id mstsearch.ID) string {
	switch id {
	case 1:
		return "   <- drove the course on Monday"
	case 2:
		return "   <- drove the course on Thursday"
	}
	return ""
}
