// Fleet demonstrates k-MST search over a realistic delivery-truck fleet
// (the Trucks-like dataset of the paper's quality study): given one
// truck's route sketch — a heavily TD-TR-compressed version of its GPS
// trace — find the trucks that actually drove like it, and compare what
// the sample-matching baselines (LCSS, EDR) conclude from the same sketch.
package main

import (
	"context"
	"fmt"
	"log"

	"mstsearch"
	"mstsearch/internal/baselines"
	"mstsearch/internal/experiments"
	"mstsearch/internal/trajectory"
)

func main() {
	// ~68 trucks with heterogeneous sampling rates (scale 0.25).
	data := experiments.TrucksDataset(0.25, 11)
	fmt.Printf("fleet: %d trucks, %d GPS segments\n", data.Len(), data.NumSegments())

	db, err := mstsearch.NewDB(mstsearch.TBTree, data.Trajs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TB-tree index: %.2f MB\n\n", db.IndexSizeMB())

	// The dispatcher sketches truck 17's route: its trace compressed to a
	// handful of waypoints (TD-TR at p = 2 %).
	subject := db.Get(17)
	sketch := mstsearch.CompressTDTR(subject, 0.02)
	sketch.ID = 0
	fmt.Printf("query: truck 17's route sketched with %d of %d waypoints\n\n",
		len(sketch.Samples), len(subject.Samples))

	resp, err := db.Query(context.Background(), mstsearch.Request{
		Q: &sketch, Interval: mstsearch.Interval{T1: subject.StartTime(), T2: subject.EndTime()}, K: 4,
		Options: mstsearch.DefaultOptions(),
	})
	if err != nil {
		log.Fatal(err)
	}
	results, stats := resp.Results, resp.Stats
	fmt.Println("trucks that drove most like the sketch (DISSIM, space-time):")
	for i, r := range results {
		marker := ""
		if r.TrajID == 17 {
			marker = "   <- the sketched truck itself"
		}
		fmt.Printf("%d. truck %-4d DISSIM = %.4f%s\n", i+1, r.TrajID, r.Dissim, marker)
	}
	fmt.Printf("\nindex pruning: %d of %d nodes read (%.1f%% pruned), %d page reads\n\n",
		stats.NodesAccessed, stats.TotalNodes, stats.PruningPower*100, stats.PageReads)

	// The baselines see the same sketch: EDR, which matches samples one by
	// one, is misled by the sketch's low sampling rate (paper §5.2).
	norm := make([]trajectory.Trajectory, data.Len())
	for i := range data.Trajs {
		norm[i] = trajectory.Normalize(&data.Trajs[i])
	}
	eps := baselines.EpsilonForDataset(norm)
	sketchN := trajectory.Normalize(&sketch)

	bestEDR, bestEDRID := 1<<30, mstsearch.ID(0)
	for i := range norm {
		if d := baselines.EDR(&sketchN, &norm[i], eps); d < bestEDR {
			bestEDR, bestEDRID = d, norm[i].ID
		}
	}
	fmt.Printf("EDR's most similar truck for the same sketch: %d", bestEDRID)
	if bestEDRID != 17 {
		fmt.Printf(" (wrong — sample-count mismatch dominates the edit distance)\n")
	} else {
		fmt.Printf("\n")
	}
	bestI, bestIID := 1<<30, mstsearch.ID(0)
	for i := range norm {
		if d := baselines.EDRI(&sketchN, &norm[i], eps); d < bestI {
			bestI, bestIID = d, norm[i].ID
		}
	}
	fmt.Printf("EDR-I (interpolation-improved) answers: %d\n", bestIID)
}
