package mstsearch

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"mstsearch/internal/testutil"
)

// TestConcurrentQueriesAndMutations drives parallel k-MST, range, and NN
// queries against a DB while another goroutine keeps mutating it with Add
// and AppendSample. Run under -race this validates the DB's reader/writer
// locking: no data race, no panic, and every query either succeeds or
// returns a typed error — never a torn read.
func TestConcurrentQueriesAndMutations(t *testing.T) {
	testutil.CheckGoroutines(t)
	for _, kind := range IndexKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(71))
			trajs := fleet(rng, 40, 30)
			db, err := NewDB(kind, trajs)
			if err != nil {
				t.Fatal(err)
			}
			q := trajs[0].Clone()
			q.ID = 0

			const queriers = 4
			const rounds = 30
			var wg sync.WaitGroup
			errc := make(chan error, queriers*rounds+rounds)

			for g := 0; g < queriers; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < rounds; i++ {
						switch rng.Intn(3) {
						case 0:
							if _, _, err := db.KMostSimilar(&q, 2, 8, 3); err != nil {
								errc <- err
							}
						case 1:
							if _, err := db.RangeQuery(0, 0, 100, 100, 2, 8); err != nil {
								errc <- err
							}
						default:
							if _, err := db.NearestAt(50, 50, 5, 3); err != nil {
								errc <- err
							}
						}
					}
				}(int64(100 + g))
			}

			// Mutator: interleave appends to existing trajectories with brand
			// new inserts while the queriers hammer the read side.
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(999))
				nextID := ID(1000)
				for i := 0; i < rounds; i++ {
					if i%2 == 0 {
						id := trajs[rng.Intn(len(trajs))].ID
						cur := db.Get(id)
						last := cur.Samples[len(cur.Samples)-1]
						s := Sample{X: last.X + rng.NormFloat64(), Y: last.Y + rng.NormFloat64(), T: last.T + 0.5}
						if err := db.AppendSample(id, s); err != nil {
							errc <- err
						}
					} else {
						tr := fleet(rng, 1, 20)[0]
						tr.ID = nextID
						nextID++
						if err := db.Add(tr); err != nil {
							errc <- err
						}
					}
				}
			}()

			wg.Wait()
			close(errc)
			for err := range errc {
				t.Errorf("%s: %v", kind, err)
			}
		})
	}
}

// TestConcurrentCancellation cancels contexts while other queries proceed:
// the canceled queries must come back with the typed error and the others
// must be unaffected.
func TestConcurrentCancellation(t *testing.T) {
	testutil.CheckGoroutines(t)
	rng := rand.New(rand.NewSource(73))
	trajs := fleet(rng, 40, 30)
	db, err := NewDB(RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	q := trajs[1].Clone()
	q.ID = 0

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(canceled bool) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ctx := context.Background()
				if canceled {
					c, cancel := context.WithCancel(ctx)
					cancel()
					ctx = c
				}
				_, _, err := db.KMostSimilarContext(ctx, &q, 2, 8, 3)
				if canceled {
					if !errors.Is(err, ErrCanceled) {
						t.Errorf("canceled query: got %v, want ErrCanceled", err)
					}
				} else if err != nil {
					t.Errorf("live query: %v", err)
				}
			}
		}(g%2 == 0)
	}
	wg.Wait()
}
