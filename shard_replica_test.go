package mstsearch_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	mstsearch "mstsearch"
	"mstsearch/internal/shard"
	"mstsearch/internal/storage"
	"mstsearch/internal/testutil"
	"mstsearch/internal/wal"
)

// Replicated-shard differential suites: a cluster whose shards are
// replica sets must answer bit-identically to a single DB holding every
// trajectory while replicas fail mid-scatter, get quarantined, and are
// re-seeded by anti-entropy repair. The consistency invariant under test
// is that every rotation member holds identical content, so a failover
// (or hedge) can never change a merged response.

// killReplica makes every read of the replica fail permanently with
// ErrInjected, as a dead disk would.
func killReplica(db *mstsearch.DB) {
	db.SetPagerWrapper(func(p mstsearch.Pager) mstsearch.Pager {
		return &storage.FaultyPager{Inner: p, FailReadAt: 1, Permanent: true}
	})
}

// TestClusterReplicaFailoverOracle kills one replica of one shard and
// proves failover is invisible: every query answers bit-identically to
// the unreplicated oracle, the dead replica ends quarantined, and an
// explicit repair re-admits it — after which queries need no failovers.
func TestClusterReplicaFailoverOracle(t *testing.T) {
	testutil.CheckGoroutines(t)
	rng := rand.New(rand.NewSource(71))
	trajs := mstsearch.FleetForTest(rng, 40, 24)
	c := buildCluster(t, mstsearch.RTree3D, 3, shard.HashPlacement{}, shard.Options{Replicas: 2}, trajs)
	defer c.Close()
	single, err := mstsearch.NewDB(mstsearch.RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}

	killReplica(c.Replica(1, 0))

	var sawFailoverEvent atomic.Bool
	totalFailovers := 0
	runOne := func(i int) {
		t.Helper()
		src := &trajs[rng.Intn(len(trajs))]
		t1 := rng.Float64() * 4
		t2 := t1 + 2 + rng.Float64()*4
		sl, ok := src.Slice(t1, t2)
		if !ok {
			return
		}
		q := sl.Clone()
		q.ID = 0
		opts := oracleOptions()
		opts.Trace = func(ev mstsearch.TraceEvent) {
			if ev.Kind == mstsearch.EventReplicaFailover {
				sawFailoverEvent.Store(true)
			}
		}
		req := mstsearch.Request{
			Q: &q, Interval: mstsearch.Interval{T1: t1, T2: t2},
			K: 1 + rng.Intn(4), Options: opts,
		}
		got, qs, err := c.QueryShards(context.Background(), req)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		req.Options.Trace = nil
		want, err := single.Query(context.Background(), req)
		if err != nil {
			t.Fatalf("oracle query %d: %v", i, err)
		}
		mstsearch.CheckBitIdentical(t, "replica-failover", i, want.Results, got.Results)
		totalFailovers += qs.Failovers
	}

	for i := 0; i < 12; i++ {
		runOne(i)
	}
	if totalFailovers == 0 || !sawFailoverEvent.Load() {
		t.Fatalf("dead replica triggered no failovers (stats %d, event %v)", totalFailovers, sawFailoverEvent.Load())
	}
	quarantined := false
	for _, st := range c.ReplicaStatuses() {
		if st.Shard == 1 && st.Replica == 0 {
			quarantined = st.State == "quarantined"
		}
	}
	if !quarantined {
		t.Fatalf("dead replica not quarantined after the storm: %+v", c.ReplicaStatuses())
	}
	// Get still serves transparently from the surviving sibling.
	if tr := c.Get(trajs[0].ID); tr == nil {
		t.Fatal("Get through a degraded shard returned nil")
	}

	// Repair re-seeds the quarantined replica from its sibling and
	// re-admits it; queries go back to needing no failovers.
	if repaired, err := c.RepairNow(context.Background()); err != nil || repaired != 1 {
		t.Fatalf("RepairNow = %d, %v; want 1 repair", repaired, err)
	}
	for _, st := range c.ReplicaStatuses() {
		if st.State != "healthy" {
			t.Fatalf("replica %+v not healthy after repair", st)
		}
		if st.Shard == 1 && st.Replica == 0 && st.LastRepair.IsZero() {
			t.Fatal("repaired replica has no LastRepair stamp")
		}
	}
	totalFailovers = 0
	for i := 100; i < 106; i++ {
		runOne(i)
	}
	if totalFailovers != 0 {
		t.Fatalf("queries after repair still failed over %d times", totalFailovers)
	}
}

// TestClusterHedgedReadsOracle pins that hedging is a pure latency
// optimization: with an aggressive hedge threshold every scatter launches
// a duplicate attempt, and the merged answer is still bit-identical to
// the unreplicated oracle.
func TestClusterHedgedReadsOracle(t *testing.T) {
	testutil.CheckGoroutines(t)
	rng := rand.New(rand.NewSource(83))
	trajs := mstsearch.FleetForTest(rng, 30, 24)
	c := buildCluster(t, mstsearch.TBTree, 3, shard.HashPlacement{},
		shard.Options{Replicas: 2, HedgeAfter: time.Nanosecond}, trajs)
	defer c.Close()
	single, err := mstsearch.NewDB(mstsearch.TBTree, trajs)
	if err != nil {
		t.Fatal(err)
	}

	hedges := 0
	for i := 0; i < 8; i++ {
		src := &trajs[rng.Intn(len(trajs))]
		t1 := rng.Float64() * 4
		t2 := t1 + 2 + rng.Float64()*4
		sl, ok := src.Slice(t1, t2)
		if !ok {
			continue
		}
		q := sl.Clone()
		q.ID = 0
		req := mstsearch.Request{
			Q: &q, Interval: mstsearch.Interval{T1: t1, T2: t2}, K: 3,
			Options: oracleOptions(),
		}
		got, qs, err := c.QueryShards(context.Background(), req)
		if err != nil {
			t.Fatalf("hedged query %d: %v", i, err)
		}
		want, err := single.Query(context.Background(), req)
		if err != nil {
			t.Fatalf("oracle query %d: %v", i, err)
		}
		mstsearch.CheckBitIdentical(t, "hedged-read", i, want.Results, got.Results)
		hedges += qs.Hedges
	}
	if hedges == 0 {
		t.Fatal("a nanosecond hedge threshold launched no hedged reads")
	}
}

// TestClusterReplicaChaosRepairSoak is the replica chaos soak: replica 0
// of every shard dies under an 8-worker query storm while the background
// anti-entropy loop runs. Every query must still answer correctly (the
// failover path keeps serving from the sibling), the dead replicas must
// quarantine and be re-seeded, and the cluster must end fully healthy
// with no goroutine leaks. CI runs this under -race at GOMAXPROCS 1 / 4.
func TestClusterReplicaChaosRepairSoak(t *testing.T) {
	testutil.CheckGoroutines(t)
	rng := rand.New(rand.NewSource(73))
	trajs := mstsearch.FleetForTest(rng, 50, 24)
	c := buildCluster(t, mstsearch.TBTree, 4, shard.HashPlacement{},
		shard.Options{Replicas: 2, RepairInterval: 2 * time.Millisecond}, trajs)
	defer c.Close()

	for i := 0; i < c.NumShards(); i++ {
		killReplica(c.Replica(i, 0))
	}

	const workers = 8
	const itersPerWorker = 30
	var failovers atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed))
			for i := 0; i < itersPerWorker; i++ {
				if i%7 == 0 {
					// Health introspection races the storm too.
					_ = c.ReplicaStatuses()
					if tr := c.Get(trajs[wrng.Intn(len(trajs))].ID); tr == nil {
						t.Errorf("worker %d iter %d: Get lost a trajectory mid-chaos", seed, i)
						return
					}
					continue
				}
				src := &trajs[wrng.Intn(len(trajs))]
				t1 := wrng.Float64() * 4
				t2 := t1 + 2 + wrng.Float64()*4
				sl, ok := src.Slice(t1, t2)
				if !ok {
					continue
				}
				q := sl.Clone()
				q.ID = 0
				resp, qs, err := c.QueryShards(context.Background(), mstsearch.Request{
					Q: &q, Interval: mstsearch.Interval{T1: t1, T2: t2},
					K: 1 + wrng.Intn(4), Options: oracleOptions(),
				})
				if err != nil {
					t.Errorf("worker %d iter %d: %v", seed, i, err)
					return
				}
				failovers.Add(int64(qs.Failovers))
				oracle := mstsearch.OracleTopK(trajs, &q, t1, t2, len(resp.Results))
				checkShardOracle(t, fmt.Sprintf("replica-chaos w%d", seed), i, resp.Results, oracle)
			}
		}(int64(w + 1))
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// The repair loop must re-admit every killed replica: poll health
	// until all replicas are healthy and replica 0s carry repair stamps.
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy, repaired := true, true
		for _, st := range c.ReplicaStatuses() {
			if st.State != "healthy" {
				healthy = false
			}
			if st.Replica == 0 && st.LastRepair.IsZero() {
				repaired = false
			}
		}
		if healthy && repaired {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("repair loop never re-admitted every replica: %+v", c.ReplicaStatuses())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if failovers.Load() == 0 {
		t.Fatal("the storm observed no failovers; the killed replicas never served")
	}

	// Post-repair, the re-seeded replicas serve correct answers again.
	src := &trajs[0]
	sl, ok := src.Slice(1, 6)
	if !ok {
		t.Fatal("fleet trajectory does not cover [1, 6]")
	}
	q := sl.Clone()
	q.ID = 0
	resp, err := c.Query(context.Background(), mstsearch.Request{
		Q: &q, Interval: mstsearch.Interval{T1: 1, T2: 6}, K: 3, Options: oracleOptions(),
	})
	if err != nil {
		t.Fatalf("post-repair query: %v", err)
	}
	oracle := mstsearch.OracleTopK(trajs, &q, 1, 6, 3)
	checkShardOracle(t, "post-repair", 0, resp.Results, oracle)
}

// TestClusterReplicaCrashDuringRepair is the replica crash sweep: one
// replica per shard is wiped, re-seeded by repair, and then loses power —
// at every byte offset of its write volume, budgeted across the fresh WAL
// a re-seed opens and the frames of post-repair mutations. At every cut:
//
//  1. the sibling replica (never cut) stays authoritative and keeps every
//     acknowledged mutation,
//  2. the re-seeded replica recovers to a prefix of its stream (or stays
//     quarantined awaiting another repair),
//  3. merged queries over the recovered cluster are bit-identical to a
//     single DB holding exactly the recovered trajectories, and
//  4. a post-recovery repair converges the set back to full health.
func TestClusterReplicaCrashDuringRepair(t *testing.T) {
	const (
		nShards = 2
		kind    = mstsearch.RTree3D
	)
	place := shard.HashPlacement{}
	rng := rand.New(rand.NewSource(79))
	ops := clusterCrashWorkload(rng, 10, 10, 20)
	split := len(ops) * 2 / 3
	initial, post := ops[:split], ops[split:]

	// Per-shard full streams for the prefix checks.
	streams := make([][]clusterOp, nShards)
	owners := make(map[mstsearch.ID]int)
	for _, op := range ops {
		o := opOwner(op, place, owners, nShards)
		streams[o] = append(streams[o], op)
	}

	qref := ops[0].tr
	query := func(eng interface {
		Query(context.Context, mstsearch.Request) (mstsearch.Response, error)
	}) ([]mstsearch.Result, error) {
		q := qref.Clone()
		q.ID = 0
		resp, err := eng.Query(context.Background(), mstsearch.Request{
			Q: &q, Interval: mstsearch.Interval{T1: 2, T2: 8}, K: 4,
			Options: mstsearch.DefaultOptions(),
		})
		return resp.Results, err
	}

	// build ingests the initial stream unbudgeted, then wipes replica 1
	// of every shard so the reopen quarantines it for repair.
	build := func(dir string) {
		t.Helper()
		c, err := shard.Open(dir, kind, nShards, place, shard.Options{Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		if n, err := issueClusterOps(c, initial); err != nil {
			t.Fatalf("initial ingest stopped at op %d: %v", n, err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nShards; i++ {
			if err := os.RemoveAll(filepath.Join(dir, fmt.Sprintf("shard-%03d", i), "replica-1")); err != nil {
				t.Fatal(err)
			}
		}
	}

	// budgetOpts aims the powercut at replica 1 of every shard: the WAL
	// its reopen creates, the fresh WAL the repair re-seed opens, and
	// every post-repair frame all draw on one cumulative budget.
	budgetOpts := func(b *storage.PowercutBudget) shard.Options {
		return shard.Options{
			Replicas: 2,
			ReplicaDurable: func(shardIdx, replica int) mstsearch.DurableOptions {
				if replica != 1 {
					return mstsearch.DurableOptions{}
				}
				return mstsearch.DurableOptions{
					SegmentBytes:    512,
					CheckpointBytes: -1,
					OpenFile:        func(path string) (wal.File, error) { return b.Open(path) },
				}
			},
		}
	}

	// runLeg reopens with the budget, repairs, and applies the post
	// stream, reporting how many post ops were fully acknowledged.
	runLeg := func(dir string, b *storage.PowercutBudget) (acked int) {
		t.Helper()
		c, err := shard.Open(dir, kind, nShards, place, budgetOpts(b))
		if err != nil {
			t.Fatalf("budgeted reopen: %v", err)
		}
		// Repair errors (the budget tripping mid-re-seed) leave replicas
		// quarantined for a later sweep — exactly what we are testing.
		_, _ = c.RepairNow(context.Background())
		acked, err = issueClusterOps(c, post)
		if err != nil && !errors.Is(err, storage.ErrInjected) && !errors.Is(err, mstsearch.ErrUnavailable) {
			t.Fatalf("post ops: unexpected failure class: %v", err)
		}
		_ = c.Close() // tripped replicas may error; recovery below decides
		return acked
	}

	// Dry run with an unlimited budget to size the sweep.
	root := t.TempDir()
	dryDir := filepath.Join(root, "dry")
	build(dryDir)
	dry := storage.NewPowercutBudget(-1)
	if acked := runLeg(dryDir, dry); acked != len(post) {
		t.Fatalf("dry run acked %d of %d post ops", acked, len(post))
	}
	total := dry.Written()
	if total == 0 {
		t.Fatal("dry run wrote nothing through the replica budget")
	}

	stride := total/16 + 1
	for cut := int64(0); cut <= total; cut += stride {
		dir := filepath.Join(root, fmt.Sprintf("cut-%d", cut))
		build(dir)
		b := storage.NewPowercutBudget(cut)
		ackedPost := runLeg(dir, b)
		if err := b.Crash(true); err != nil {
			t.Fatalf("cut %d: crash: %v", cut, err)
		}

		re, err := shard.Open(dir, kind, nShards, place, shard.Options{Replicas: 2})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}

		// Acked ops per shard (initial stream + acked post prefix).
		seen := make(map[mstsearch.ID]int)
		ackedPerShard := make([]int, nShards)
		for _, op := range ops[:split+ackedPost] {
			ackedPerShard[opOwner(op, place, seen, nShards)]++
		}
		for i := 0; i < nShards; i++ {
			// The sibling (replica 0) never lost power: the shard's
			// serving state holds at least every acknowledged op, and is
			// a prefix of the stream (one extra partially-acked op may
			// have landed on the sibling before the quorum miss).
			j, ok := matchShardPrefix(streams[i], shardSig(re.Shard(i)))
			if !ok {
				t.Fatalf("cut %d: shard %d serving state is not a stream prefix", cut, i)
			}
			if j < ackedPerShard[i] {
				t.Fatalf("cut %d: shard %d recovered %d of %d acknowledged ops", cut, i, j, ackedPerShard[i])
			}
			// The cut replica recovered to some prefix of the stream (it
			// may be stale-quarantined; it must never hold invented or
			// reordered state).
			if db := re.Replica(i, 1); db != nil {
				if _, ok := matchShardPrefix(streams[i], shardSig(db)); !ok {
					t.Fatalf("cut %d: shard %d replica 1 state is not a stream prefix", cut, i)
				}
			}
		}

		// Differential: merged queries over the recovered cluster match
		// a single DB holding exactly the recovered trajectories.
		oracle := mstsearch.Open(kind)
		for i := 0; i < nShards; i++ {
			sdb := re.Shard(i)
			for _, id := range sdb.IDs() {
				if err := oracle.Add(sdb.Get(id).Clone()); err != nil {
					t.Fatalf("cut %d: oracle replay: %v", cut, err)
				}
			}
		}
		got, gerr := query(re)
		want, werr := query(oracle)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("cut %d: query error mismatch: recovered=%v oracle=%v", cut, gerr, werr)
		}
		if gerr == nil {
			mstsearch.CheckBitIdentical(t, "repair-crash-vs-oracle", int(cut), want, got)
		}

		// A post-recovery repair converges the set: both replicas end
		// healthy with identical signatures.
		if _, err := re.RepairNow(context.Background()); err != nil {
			t.Fatalf("cut %d: post-recovery repair: %v", cut, err)
		}
		for _, st := range re.ReplicaStatuses() {
			if st.State != "healthy" {
				t.Fatalf("cut %d: replica %+v not healthy after post-recovery repair", cut, st)
			}
		}
		for i := 0; i < nShards; i++ {
			a := shardSig(re.Replica(i, 0))
			bsig := shardSig(re.Replica(i, 1))
			if len(a) != len(bsig) {
				t.Fatalf("cut %d: shard %d replicas diverge after repair: %d vs %d trajectories", cut, i, len(a), len(bsig))
			}
			for id, n := range a {
				if bsig[id] != n {
					t.Fatalf("cut %d: shard %d trajectory %d has %d vs %d samples across replicas", cut, i, id, n, bsig[id])
				}
			}
		}
		if err := re.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		os.RemoveAll(dir) // bound the sweep's disk footprint
	}
}
