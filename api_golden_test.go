package mstsearch

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestAPIGolden is the API-compatibility gate: the package's exported
// surface — every exported type, function, method, constant and variable
// signature, doc comments stripped, bodies stripped — must match
// testdata/api.golden byte for byte. An unannounced change to the public
// API (a removed method, a changed signature, a renamed field) fails CI
// here before any caller notices.
//
// After an intentional API change, regenerate the golden file and commit
// it alongside the change:
//
//	UPDATE_API=1 go test -run TestAPIGolden .
func TestAPIGolden(t *testing.T) {
	got := exportedSurface(t, ".")
	path := filepath.Join("testdata", "api.golden")
	if os.Getenv("UPDATE_API") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run UPDATE_API=1 go test -run TestAPIGolden .): %v", err)
	}
	if got != string(want) {
		t.Errorf("exported API surface drifted from %s.\n"+
			"If the change is intentional, regenerate with UPDATE_API=1 go test -run TestAPIGolden .\n%s",
			path, surfaceDiff(string(want), got))
	}
}

// exportedSurface renders the deterministic exported-declaration dump of
// the package in dir: files in sorted order, unexported declarations and
// function bodies pruned, comments dropped.
func exportedSurface(t *testing.T, dir string) string {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces | printer.TabIndent, Tabwidth: 8}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		if !ast.FileExports(f) {
			continue // file declares nothing exported
		}
		fmt.Fprintf(&buf, "== %s\n", name)
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				d.Body = nil
				d.Doc = nil
			case *ast.GenDecl:
				if d.Tok == token.IMPORT {
					continue
				}
				d.Doc = nil
				pruneComments(d)
			}
			if err := cfg.Fprint(&buf, fset, decl); err != nil {
				t.Fatal(err)
			}
			buf.WriteString("\n")
		}
		buf.WriteString("\n")
	}
	return buf.String()
}

// pruneComments strips doc and line comments inside a declaration so the
// golden file only changes when the API itself does.
func pruneComments(d *ast.GenDecl) {
	ast.Inspect(d, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.TypeSpec:
			v.Doc, v.Comment = nil, nil
		case *ast.ValueSpec:
			v.Doc, v.Comment = nil, nil
		case *ast.Field:
			v.Doc, v.Comment = nil, nil
		}
		return true
	})
}

// surfaceDiff renders a minimal line diff between the golden and current
// surfaces.
func surfaceDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	max := len(wl)
	if len(gl) > max {
		max = len(gl)
	}
	shown := 0
	for i := 0; i < max && shown < 40; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			fmt.Fprintf(&b, "line %d:\n  golden:  %s\n  current: %s\n", i+1, w, g)
			shown++
		}
	}
	if shown == 40 {
		b.WriteString("  ... (diff truncated)\n")
	}
	return b.String()
}
