package mstsearch

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"mstsearch/internal/debugassert"
)

// obsFleet builds the fixed workload the observability tests and the
// allocation guard share: 40 random-walk trajectories over [0, 50].
func obsFleet(seed int64) []Trajectory {
	rng := rand.New(rand.NewSource(seed))
	trajs := make([]Trajectory, 40)
	for i := range trajs {
		tr := Trajectory{ID: ID(i + 1)}
		x, y := rng.Float64()*100, rng.Float64()*100
		for j := 0; j < 51; j++ {
			tr.Samples = append(tr.Samples, Sample{X: x, Y: y, T: float64(j)})
			x += rng.NormFloat64() * 2
			y += rng.NormFloat64() * 2
		}
		trajs[i] = tr
	}
	return trajs
}

// TestQueryTraceSummaryReconciles checks the public trace contract: the
// summary DB.Query builds over the hook agrees with the events actually
// delivered AND with the SearchStats of the same run.
func TestQueryTraceSummaryReconciles(t *testing.T) {
	db, err := NewDB(RTree3D, obsFleet(42))
	if err != nil {
		t.Fatal(err)
	}
	q := obsFleet(43)[0]
	q.ID = 0

	delivered := 0
	perKind := map[EventKind]int{}
	o := DefaultOptions()
	o.Trace = func(ev TraceEvent) {
		delivered++
		perKind[ev.Kind]++
	}
	resp, err := db.Query(context.Background(), Request{
		Q: &q, Interval: Interval{T1: 5, T2: 45}, K: 3, Options: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("traced query returned nil Trace summary")
	}
	if resp.Trace.Events != delivered {
		t.Errorf("summary counts %d events, hook received %d", resp.Trace.Events, delivered)
	}
	for k, n := range perKind {
		if resp.Trace.ByKind[k] != n {
			t.Errorf("summary counts %d %s events, hook received %d", resp.Trace.ByKind[k], k, n)
		}
	}
	st := resp.Stats
	if got := resp.Trace.ByKind[EventNodeVisit]; got != st.NodesAccessed {
		t.Errorf("node-visit events %d != NodesAccessed %d", got, st.NodesAccessed)
	}
	if got := resp.Trace.ByKind[EventNodeEnqueue]; got != st.Enqueued {
		t.Errorf("node-enqueue events %d != Enqueued %d", got, st.Enqueued)
	}
	if got := resp.Trace.ByKind[EventRefined]; got != st.ExactRefined {
		t.Errorf("refined events %d != ExactRefined %d", got, st.ExactRefined)
	}
	if st.NodesAccessed == 0 || st.Enqueued == 0 {
		t.Errorf("degenerate run: stats %+v", st)
	}

	// Untraced query: no summary, same answers.
	plain, err := db.Query(context.Background(), Request{
		Q: &q, Interval: Interval{T1: 5, T2: 45}, K: 3, Options: DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Error("untraced query returned a Trace summary")
	}
	if len(plain.Results) != len(resp.Results) {
		t.Fatalf("tracing changed the result count: %d vs %d", len(resp.Results), len(plain.Results))
	}
	for i := range plain.Results {
		if plain.Results[i] != resp.Results[i] {
			t.Errorf("rank %d: traced %+v != untraced %+v", i, resp.Results[i], plain.Results[i])
		}
	}
}

// TestQueryNoAllocRegression is the zero-overhead guard for the disabled
// observability path: a warm-buffer query with tracing off must not
// allocate more than the pre-observability baseline of this exact
// workload (1290 allocations/query, measured before the tracing and
// metrics hooks existed).
func TestQueryNoAllocRegression(t *testing.T) {
	if debugassert.Enabled {
		t.Skip("sanitizer assertions allocate; the baseline holds for release builds only")
	}
	db, err := NewDB(RTree3D, obsFleet(42))
	if err != nil {
		t.Fatal(err)
	}
	db.EnableWarmBuffer()
	q := obsFleet(43)[0]
	q.ID = 0
	req := Request{Q: &q, Interval: Interval{T1: 5, T2: 45}, K: 3, Options: DefaultOptions()}
	ctx := context.Background()

	// Warm the shared pool and the lazily built dataset cache first.
	if _, err := db.Query(ctx, req); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := db.Query(ctx, req); err != nil {
			t.Fatal(err)
		}
	})
	const ceiling = 1290 // pre-observability baseline on this workload
	if allocs > ceiling {
		t.Errorf("untraced query allocates %.0f times/run, pre-observability ceiling %d", allocs, ceiling)
	}
}

// TestMetricsSnapshot verifies queries feed the process-wide registry:
// search-loop counters, per-kind latency, and pool I/O all move.
func TestMetricsSnapshot(t *testing.T) {
	db, err := NewDB(RTree3D, obsFleet(44))
	if err != nil {
		t.Fatal(err)
	}
	q := obsFleet(45)[0]
	q.ID = 0

	before := db.Metrics()
	if _, err := db.Query(context.Background(), Request{
		Q: &q, Interval: Interval{T1: 5, T2: 45}, K: 3, Options: DefaultOptions(),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Range(context.Background(), Window{MinX: 0, MinY: 0, MaxX: 50, MaxY: 50}, Interval{T1: 0, T2: 50}); err != nil {
		t.Fatal(err)
	}
	after := db.Metrics()

	for _, name := range []string{
		"mst.searches",
		"mst.nodes_visited",
		"mst.heap_pushes",
		"db.query.kmst.total",
		"db.query.range.total",
		"storage.pool.buffer.misses",
	} {
		if after.Counters[name] <= before.Counters[name] {
			t.Errorf("counter %q did not advance: %d -> %d", name, before.Counters[name], after.Counters[name])
		}
	}
	h, ok := after.Histograms["db.query.kmst.seconds"]
	if !ok {
		t.Fatal("latency histogram db.query.kmst.seconds missing from snapshot")
	}
	if h.Count <= before.Histograms["db.query.kmst.seconds"].Count {
		t.Errorf("latency histogram did not record the query")
	}
	if _, ok := after.Histograms["mst.nodes_per_query"]; !ok {
		t.Error("mst.nodes_per_query histogram missing from snapshot")
	}
	if s := MetricsVar().String(); !strings.Contains(s, "db.query.kmst.total") {
		t.Errorf("expvar rendering lacks db.query.kmst.total: %.120s", s)
	}
}

// TestSlowQueryLog exercises the bounded slow-query ring: disarmed by
// default, records over-threshold queries newest first, bounded at the
// ring capacity.
func TestSlowQueryLog(t *testing.T) {
	db, err := NewDB(RTree3D, obsFleet(46))
	if err != nil {
		t.Fatal(err)
	}
	q := obsFleet(47)[0]
	q.ID = 0
	req := Request{Q: &q, Interval: Interval{T1: 5, T2: 45}, K: 2, Options: DefaultOptions()}
	ctx := context.Background()

	if _, err := db.Query(ctx, req); err != nil {
		t.Fatal(err)
	}
	if got := db.SlowQueries(); len(got) != 0 {
		t.Fatalf("disarmed log recorded %d queries", len(got))
	}

	db.SetSlowQueryThreshold(time.Nanosecond) // every query is "slow"
	for i := 0; i < slowLogCapacity+10; i++ {
		if _, err := db.Query(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	got := db.SlowQueries()
	if len(got) != slowLogCapacity {
		t.Fatalf("log holds %d entries, want the ring capacity %d", len(got), slowLogCapacity)
	}
	for i, e := range got {
		if e.Kind != "kmst" {
			t.Errorf("entry %d kind %q, want kmst", i, e.Kind)
		}
		if e.K != 2 || e.Interval != (Interval{T1: 5, T2: 45}) {
			t.Errorf("entry %d lost the request shape: %+v", i, e)
		}
		if e.Duration <= 0 || e.Stats.NodesAccessed == 0 {
			t.Errorf("entry %d lacks latency/stats: %+v", i, e)
		}
		if i > 0 && got[i-1].When.Before(e.When) {
			t.Errorf("entries not newest-first at %d", i)
		}
	}

	db.SetSlowQueryThreshold(0) // disarm again
	n := len(db.SlowQueries())
	if _, err := db.Query(ctx, req); err != nil {
		t.Fatal(err)
	}
	if len(db.SlowQueries()) != n {
		t.Error("disarmed log kept recording")
	}
}

// TestWindowIntervalValidate pins the typed-value validation the redesign
// introduced.
func TestWindowIntervalValidate(t *testing.T) {
	db, err := NewDB(RTree3D, obsFleet(48))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := db.Range(ctx, Window{MinX: 10, MinY: 0, MaxX: 0, MaxY: 10}, Interval{T1: 0, T2: 1}); !errors.Is(err, ErrBadWindow) {
		t.Errorf("inverted window: err = %v, want ErrBadWindow", err)
	}
	if _, err := db.Topology(ctx, Window{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, Interval{T1: 5, T2: 1}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("reversed interval: err = %v, want ErrBadQuery", err)
	}
	if _, err := db.EstimateRange(Window{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, Interval{T1: 5, T2: 1}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("EstimateRange reversed interval: err = %v, want ErrBadQuery", err)
	}
	// Degenerate-but-valid values: a point window at one instant.
	if _, err := db.Range(ctx, Window{MinX: 5, MinY: 5, MaxX: 5, MaxY: 5}, Interval{T1: 2, T2: 2}); err != nil {
		t.Errorf("degenerate window/interval should be valid: %v", err)
	}

	w := Window{MinX: 1, MinY: 2, MaxX: 3, MaxY: 4}
	box := w.MBB(Interval{T1: 5, T2: 6})
	if box.MinX != 1 || box.MinY != 2 || box.MinT != 5 || box.MaxX != 3 || box.MaxY != 4 || box.MaxT != 6 {
		t.Errorf("Window.MBB misassembled: %+v", box)
	}
}

// TestSegmentHitAccessors checks the typed endpoint accessors agree with
// the flat fields.
func TestSegmentHitAccessors(t *testing.T) {
	h := SegmentHit{X1: 1, Y1: 2, T1: 3, X2: 4, Y2: 5, T2: 6}
	if h.Start() != (STPoint{X: 1, Y: 2, T: 3}) {
		t.Errorf("Start() = %+v", h.Start())
	}
	if h.End() != (STPoint{X: 4, Y: 5, T: 6}) {
		t.Errorf("End() = %+v", h.End())
	}
}

// TestExplainReconciles runs EXPLAIN and cross-checks its three views of
// the same query: cost estimate, stats, and trace.
func TestExplainReconciles(t *testing.T) {
	db, err := NewDB(RTree3D, obsFleet(49))
	if err != nil {
		t.Fatal(err)
	}
	q := obsFleet(50)[0]
	q.ID = 0
	rep, err := db.Explain(context.Background(), Request{
		Q: &q, Interval: Interval{T1: 5, T2: 45}, K: 3, Options: DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.ByKind[EventNodeVisit] != rep.Stats.NodesAccessed {
		t.Errorf("trace node visits %d != stats %d",
			rep.Trace.ByKind[EventNodeVisit], rep.Stats.NodesAccessed)
	}
	nodes, leaves := 0, 0
	for _, lv := range rep.Levels {
		nodes += lv.Nodes
		leaves += lv.Leaves
	}
	if nodes != rep.Stats.NodesAccessed || leaves != rep.Stats.LeavesAccessed {
		t.Errorf("per-level sums %d/%d != stats %d/%d",
			nodes, leaves, rep.Stats.NodesAccessed, rep.Stats.LeavesAccessed)
	}
	if rep.Estimate.ExpectedLeafPages <= 0 {
		t.Errorf("estimate missing: %+v", rep.Estimate)
	}
	if rep.Trajectories != db.Len() {
		t.Errorf("report sized against %d trajectories, store has %d", rep.Trajectories, db.Len())
	}
	s := rep.String()
	for _, want := range []string{"EXPLAIN k-MST", "cost model:", "actuals:", "per-level node accesses", "results:"} {
		if !strings.Contains(s, want) {
			t.Errorf("transcript lacks %q:\n%s", want, s)
		}
	}

	// A caller hook still sees every event under Explain.
	seen := 0
	o := DefaultOptions()
	o.Trace = func(TraceEvent) { seen++ }
	rep2, err := db.Explain(context.Background(), Request{
		Q: &q, Interval: Interval{T1: 5, T2: 45}, K: 3, Options: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != rep2.Trace.Events {
		t.Errorf("caller hook saw %d events, report counts %d", seen, rep2.Trace.Events)
	}
}

// TestQueryAutoSnapshotAndStats pins the redesigned QueryAuto: stats come
// back (the old entry point dropped them), and the plan choice agrees with
// the cost model's prediction on an obviously selective query.
func TestQueryAutoSnapshotAndStats(t *testing.T) {
	db, err := NewDB(RTree3D, obsFleet(51))
	if err != nil {
		t.Fatal(err)
	}
	q := obsFleet(52)[0]
	q.ID = 0
	resp, usedIndex, err := db.QueryAuto(context.Background(), Request{
		Q: &q, Interval: Interval{T1: 5, T2: 45}, K: 3, Options: DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if usedIndex && resp.Stats.NodesAccessed == 0 {
		t.Error("index plan returned no node-access stats")
	}
	want, err := db.Query(context.Background(), Request{
		Q: &q, Interval: Interval{T1: 5, T2: 45}, K: 3, Options: DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(want.Results) {
		t.Fatalf("auto plan returned %d results, direct query %d", len(resp.Results), len(want.Results))
	}
	for i := range want.Results {
		if resp.Results[i].TrajID != want.Results[i].TrajID {
			t.Errorf("rank %d: auto %d, direct %d", i, resp.Results[i].TrajID, want.Results[i].TrajID)
		}
	}
}

// BenchmarkQueryTraceOff and BenchmarkQueryTraceOn measure the cost of
// the observability layer around one warm-buffer query; compare
// allocs/op between the two to see the disabled path stays free.
func BenchmarkQueryTraceOff(b *testing.B) {
	benchmarkQuery(b, false)
}

func BenchmarkQueryTraceOn(b *testing.B) {
	benchmarkQuery(b, true)
}

func benchmarkQuery(b *testing.B, traced bool) {
	db, err := NewDB(RTree3D, obsFleet(42))
	if err != nil {
		b.Fatal(err)
	}
	db.EnableWarmBuffer()
	q := obsFleet(43)[0]
	q.ID = 0
	o := DefaultOptions()
	if traced {
		o.Trace = func(TraceEvent) {}
	}
	req := Request{Q: &q, Interval: Interval{T1: 5, T2: 45}, K: 3, Options: o}
	ctx := context.Background()
	if _, err := db.Query(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}
