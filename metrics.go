package mstsearch

import (
	"errors"
	"expvar"
	"time"

	"mstsearch/internal/obs"
)

// queryMetrics is one query kind's instrument set in the process-wide
// registry: an outcome-partitioned counter family plus a latency
// histogram. Handles resolve once at init; recording an observation is a
// handful of atomic adds and never allocates.
type queryMetrics struct {
	total, errors, canceled, degraded *obs.Counter
	latency                           *obs.Histogram
}

func newQueryMetrics(kind string) *queryMetrics {
	p := "db.query." + kind + "."
	return &queryMetrics{
		total:    obs.Default.Counter(p + "total"),
		errors:   obs.Default.Counter(p + "errors"),
		canceled: obs.Default.Counter(p + "canceled"),
		degraded: obs.Default.Counter(p + "degraded"),
		latency:  obs.Default.Histogram(p+"seconds", obs.LatencyBounds),
	}
}

// One instrument set per query kind, matching the DB entry points:
// "kmst" covers Query/QueryAuto and the deprecated KMostSimilar family,
// "batch" the batch executor, "explain" the EXPLAIN runner.
var (
	metKMST     = newQueryMetrics("kmst")
	metRange    = newQueryMetrics("range")
	metNN       = newQueryMetrics("nn")
	metTopology = newQueryMetrics("topology")
	metRelaxed  = newQueryMetrics("relaxed")
	metBatch    = newQueryMetrics("batch")
	metExplain  = newQueryMetrics("explain")
)

// record closes out one observation: latency into the histogram, outcome
// into exactly one of the counters (canceled and errors are disjoint;
// degraded only counts successful-but-budget-exhausted queries).
func (m *queryMetrics) record(start time.Time, degraded bool, err error) time.Duration {
	d := time.Since(start)
	m.total.Inc()
	m.latency.Observe(d.Seconds())
	switch {
	case err != nil && errors.Is(err, ErrCanceled):
		m.canceled.Inc()
	case err != nil:
		m.errors.Inc()
	case degraded:
		m.degraded.Inc()
	}
	return d
}

// finishQuery records a finished k-MST query: registry metrics plus the
// slow-query log when the latency threshold is armed and crossed.
func (db *DB) finishQuery(kind string, m *queryMetrics, start time.Time, req Request, stats SearchStats, err error) {
	d := m.record(start, stats.Degraded, err)
	db.slow.observe(kind, d, req.K, req.Interval, stats, err)
}

// finishAux records a finished non-k-MST query (range, nn, topology,
// relaxed): same instruments, no Request detail for the slow log.
func (db *DB) finishAux(kind string, m *queryMetrics, start time.Time, err error) {
	d := m.record(start, false, err)
	db.slow.observe(kind, d, 0, Interval{}, SearchStats{}, err)
}

// MetricsSnapshot is a point-in-time copy of the process-wide metrics
// registry, keyed by metric name. Counters are monotonic totals since
// process start; histograms carry bucket counts plus derived mean and
// quantiles.
type MetricsSnapshot = obs.Snapshot

// HistogramSnapshot is one histogram's state inside a MetricsSnapshot.
type HistogramSnapshot = obs.HistogramSnapshot

// Metrics snapshots the process-wide metrics registry: storage pool
// hits/misses/retries/evictions per pool kind, search-loop work counters
// (nodes visited, heap traffic, per-heuristic prune counts, trapezoid vs.
// exact DISSIM evaluations), and per-query-kind latency and outcome
// counters. The registry is process-global — shared by every DB in the
// process — and the method is defined on DB so the handle callers already
// hold is the one that exposes it.
func (db *DB) Metrics() MetricsSnapshot { return obs.Default.Snapshot() }

// MetricsVar adapts the process-wide registry to the standard expvar
// protocol. Publish it once, e.g.:
//
//	expvar.Publish("mstsearch", mstsearch.MetricsVar())
//
// and the full snapshot renders as JSON under /debug/vars alongside the
// runtime's own variables.
func MetricsVar() expvar.Var { return obs.Default.Expvar() }
