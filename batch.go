package mstsearch

import (
	"context"
	"runtime"
	"sync"
	"time"

	"mstsearch/internal/storage"
)

// BatchQuery is one query of a KMostSimilarBatch call: the k most similar
// stored trajectories to Q over [T1, T2].
type BatchQuery struct {
	Q      *Trajectory
	T1, T2 float64
	K      int

	// Metric and MetricEps select this slot's distance function, as in
	// Request: the zero value is DISSIM, the baseline metrics require a
	// metric index kind.
	Metric    Metric
	MetricEps float64

	// Ctx, when non-nil, governs this slot alone: the slot aborts when
	// either Ctx or the batch-level context is done, so a serving layer
	// can coalesce requests with different deadlines onto one batch
	// without the shortest deadline canceling its neighbours. Nil means
	// the batch-level context alone.
	Ctx context.Context

	// Opts, when non-nil, overrides the batch-level Options for this slot
	// (per-tenant budgets under a shared executor). Parallelism is still
	// taken from the batch-level Options — it sizes the worker pool, a
	// batch-wide property. Nil means the batch-level Options.
	Opts *Options
}

// BatchResult is one query's outcome within a batch. Failures are
// isolated per query: Err is set for this slot only and the rest of the
// batch still executes (and Results/Stats are valid whenever Err is nil).
type BatchResult struct {
	Results []Result
	Stats   SearchStats
	Err     error
}

// KMostSimilarBatch answers many k-MST queries as one unit of work on a
// bounded worker pool — the serving-path executor for query-heavy
// workloads. Results come back in input order.
//
// Concurrency: opts.Parallelism caps the worker goroutines (<= 0 means
// GOMAXPROCS; the cap never exceeds the batch size). Every query of the
// batch reads through one shared warm buffer — the DB's warm pool when
// EnableWarmBuffer is on, otherwise a batch-local striped pool with the
// paper's capacity policy — so repeated page accesses across the batch hit
// cache instead of re-paying physical reads. Results are bit-identical to
// running each query serially with the same Options: workers never share
// mutable search state, and intra-query parallel refinement is
// admission-deterministic.
//
// Snapshot semantics: the batch holds the DB's read lock for its whole
// duration, so mutations (Add, AppendSample, Recover) wait for the batch
// and every query in it sees the same index version.
//
// Cancellation: ctx aborts queries between node visits; already-finished
// slots keep their results and canceled slots report an error wrapping
// ErrCanceled.
func (db *DB) KMostSimilarBatch(ctx context.Context, queries []BatchQuery, opts Options) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	db.mu.RLock()
	defer db.mu.RUnlock()

	bp := db.queryPager()
	if db.warm == nil {
		// queryPager built a plain per-query pool; a batch wants one warm
		// shared pool across its workers instead.
		bp = storage.NewSharedPaperPool(db.wrappedFile())
	}

	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}

	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				bq := queries[i]
				slotCtx, slotOpts, stop := slotContext(ctx, bq, opts)
				start := time.Now()
				res, st, err := db.kMostSimilarOn(slotCtx, bp, bq.Q, bq.T1, bq.T2, bq.K, bq.Metric, bq.MetricEps, slotOpts)
				stop()
				out[i] = BatchResult{Results: res, Stats: st, Err: err}
				d := metBatch.record(start, st.Degraded, err)
				db.slow.observe("batch", d, bq.K, Interval{bq.T1, bq.T2}, st, err)
			}
		}()
	}
	for i := range queries {
		work <- i
	}
	close(work)
	wg.Wait()
	return out
}

// slotContext resolves one batch slot's effective context and options:
// the slot's own Ctx (linked to the batch context, so either aborts it)
// and Opts when set, the batch-level values otherwise. stop releases the
// linkage resources and must be called when the slot finishes.
func slotContext(batchCtx context.Context, bq BatchQuery, batchOpts Options) (context.Context, Options, context.CancelFunc) {
	opts := batchOpts
	if bq.Opts != nil {
		opts = *bq.Opts
		opts.Parallelism = batchOpts.Parallelism // pool sizing stays batch-wide
	}
	if bq.Ctx == nil {
		return batchCtx, opts, func() {}
	}
	ctx, stop := mergeCancel(bq.Ctx, batchCtx)
	return ctx, opts, stop
}

// mergeCancel derives a context from primary that is additionally
// canceled when secondary is done. The primary carries the values and
// deadline; secondary contributes only its cancellation signal.
func mergeCancel(primary, secondary context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(primary)
	unlink := context.AfterFunc(secondary, cancel)
	return ctx, func() {
		unlink()
		cancel()
	}
}
