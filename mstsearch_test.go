package mstsearch

import (
	"math"
	"math/rand"
	"testing"
)

func fleet(rng *rand.Rand, n, samples int) []Trajectory {
	trajs := make([]Trajectory, n)
	for i := range trajs {
		tr := Trajectory{ID: ID(i + 1), Samples: make([]Sample, samples)}
		x, y := rng.Float64()*100, rng.Float64()*100
		for j := 0; j < samples; j++ {
			tr.Samples[j] = Sample{X: x, Y: y, T: 10 * float64(j) / float64(samples-1)}
			x += rng.NormFloat64()
			y += rng.NormFloat64()
		}
		trajs[i] = tr
	}
	return trajs
}

func TestDBRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trajs := fleet(rng, 30, 40)
	for _, kind := range IndexKinds() {
		db, err := NewDB(kind, trajs)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if db.Len() != 30 || db.NumSegments() != 30*39 {
			t.Fatalf("%s: len=%d segs=%d", kind, db.Len(), db.NumSegments())
		}
		if db.IndexSizeMB() <= 0 {
			t.Fatalf("%s: zero index size", kind)
		}
		if got := db.Get(7); got == nil || got.ID != 7 {
			t.Fatalf("%s: Get(7) = %v", kind, got)
		}
		if db.Get(999) != nil {
			t.Fatalf("%s: Get(999) should be nil", kind)
		}
	}
}

func TestDBRejectsBadInput(t *testing.T) {
	db := Open(RTree3D)
	if err := db.Add(Trajectory{ID: 1}); err == nil {
		t.Fatal("empty trajectory must be rejected")
	}
	good := Trajectory{ID: 1, Samples: []Sample{{X: 0, Y: 0, T: 0}, {X: 1, Y: 1, T: 1}}}
	if err := db.Add(good); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(good); err == nil {
		t.Fatal("duplicate ID must be rejected")
	}
}

func TestKMostSimilarFindsPlantedTwin(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	trajs := fleet(rng, 40, 50)
	for _, kind := range IndexKinds() {
		db, err := NewDB(kind, trajs)
		if err != nil {
			t.Fatal(err)
		}
		// Query: trajectory 11 with small noise → 11 must rank first.
		q := trajs[10].Clone()
		q.ID = 0
		for i := range q.Samples {
			q.Samples[i].X += rng.NormFloat64() * 0.05
			q.Samples[i].Y += rng.NormFloat64() * 0.05
		}
		res, stats, err := db.KMostSimilar(&q, 0, 10, 3)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(res) != 3 {
			t.Fatalf("%s: %d results", kind, len(res))
		}
		if res[0].TrajID != 11 {
			t.Fatalf("%s: top = %d, want 11", kind, res[0].TrajID)
		}
		if res[0].Dissim > res[1].Dissim || res[1].Dissim > res[2].Dissim {
			t.Fatalf("%s: results unsorted: %+v", kind, res)
		}
		if stats.TotalNodes == 0 || stats.PruningPower < 0 {
			t.Fatalf("%s: bad stats %+v", kind, stats)
		}
	}
}

func TestKMostSimilarMatchesPairwiseDissimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trajs := fleet(rng, 15, 30)
	db, err := NewDB(TBTree, trajs)
	if err != nil {
		t.Fatal(err)
	}
	q := trajs[4].Clone()
	q.ID = 0
	res, _, err := db.KMostSimilar(&q, 2, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		want, ok := Dissimilarity(&q, db.Get(r.TrajID), 2, 8)
		if !ok {
			t.Fatalf("result %d does not cover window", r.TrajID)
		}
		if math.Abs(want-r.Dissim) > 1e-6*math.Max(1, want)+r.Err {
			t.Fatalf("result %d: %v±%v, pairwise %v", r.TrajID, r.Dissim, r.Err, want)
		}
	}
}

func TestDissimilarityApproxBrackets(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	trajs := fleet(rng, 2, 60)
	exact, ok := Dissimilarity(&trajs[0], &trajs[1], 0, 10)
	if !ok {
		t.Fatal("coverage expected")
	}
	v, e, ok := DissimilarityApprox(&trajs[0], &trajs[1], 0, 10)
	if !ok {
		t.Fatal("coverage expected")
	}
	if exact < v-e-1e-9 || exact > v+e+1e-9 {
		t.Fatalf("exact %v outside %v±%v", exact, v, e)
	}
	// Uncovered window.
	if _, ok := Dissimilarity(&trajs[0], &trajs[1], -5, 10); ok {
		t.Fatal("uncovered window must fail")
	}
}

func TestBaselineHelpers(t *testing.T) {
	a := Trajectory{ID: 1, Samples: []Sample{{X: 0, Y: 0, T: 0}, {X: 1, Y: 0, T: 1}, {X: 2, Y: 0, T: 2}}}
	b := a.Clone()
	b.ID = 2
	if got := LCSSSimilarity(&a, &b, 0.1, -1); got != 1 {
		t.Fatalf("LCSS = %v", got)
	}
	if got := EDRDistance(&a, &b, 0.1); got != 0 {
		t.Fatalf("EDR = %v", got)
	}
	if got := DTWDistance(&a, &b); got != 0 {
		t.Fatalf("DTW = %v", got)
	}
}

func TestCompressTDTR(t *testing.T) {
	var tr Trajectory
	tr.ID = 1
	for i := 0; i < 100; i++ {
		tr.Samples = append(tr.Samples, Sample{X: float64(i), Y: math.Sin(float64(i) / 5), T: float64(i)})
	}
	c := CompressTDTR(&tr, 0.02)
	if len(c.Samples) >= len(tr.Samples) || len(c.Samples) < 2 {
		t.Fatalf("compressed to %d samples", len(c.Samples))
	}
	// Compressed version still finds the original as most similar.
	db, err := NewDB(RTree3D, []Trajectory{tr})
	if err != nil {
		t.Fatal(err)
	}
	c.ID = 0
	res, _, err := db.KMostSimilar(&c, 0, 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].TrajID != 1 {
		t.Fatalf("compressed query result: %+v", res)
	}
}

func TestSearchOptionsAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	trajs := fleet(rng, 25, 40)
	db, err := NewDB(RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	q := trajs[0].Clone()
	q.ID = 0
	base, _, err := db.KMostSimilar(&q, 0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	noH, _, err := db.KMostSimilarOpts(&q, 0, 10, 2, Options{
		ExactRefine: true, DisableHeuristic1: true, DisableHeuristic2: true, Refine: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if base[i].TrajID != noH[i].TrajID {
			t.Fatalf("heuristics changed results: %+v vs %+v", base, noH)
		}
	}
}

func TestAppendSample(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	trajs := fleet(rng, 10, 20)
	for _, kind := range IndexKinds() {
		db, err := NewDB(kind, trajs)
		if err != nil {
			t.Fatal(err)
		}
		before := db.NumSegments()
		last := db.Get(3).Samples[len(db.Get(3).Samples)-1]
		if err := db.AppendSample(3, Sample{X: last.X + 1, Y: last.Y, T: last.T + 1}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if db.NumSegments() != before+1 {
			t.Fatalf("%s: segment not recorded", kind)
		}
		// The new segment is immediately searchable: query the appended tail.
		q := Trajectory{ID: 0, Samples: []Sample{
			{X: last.X, Y: last.Y, T: last.T},
			{X: last.X + 1, Y: last.Y, T: last.T + 1},
		}}
		res, _, err := db.KMostSimilar(&q, last.T, last.T+1, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(res) != 1 || res[0].TrajID != 3 {
			t.Fatalf("%s: appended tail not found: %+v", kind, res)
		}
		// Out-of-order and unknown-id appends are rejected.
		if err := db.AppendSample(3, Sample{T: last.T}); err == nil {
			t.Fatalf("%s: stale timestamp must be rejected", kind)
		}
		if err := db.AppendSample(999, Sample{T: 1e9}); err == nil {
			t.Fatalf("%s: unknown id must be rejected", kind)
		}
	}
}

func TestKMostSimilarTo(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	trajs := fleet(rng, 20, 30)
	db, err := NewDB(RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := db.KMostSimilarTo(5, 0, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		if r.TrajID == 5 {
			t.Fatal("the query trajectory itself must be excluded")
		}
	}
	// Ground truth: pairwise DISSIM of the winner must be minimal among
	// the others.
	best := res[0]
	q := db.Get(5)
	for id := ID(1); id <= 20; id++ {
		if id == 5 {
			continue
		}
		d, ok := Dissimilarity(q, db.Get(id), 0, 10)
		if !ok {
			continue
		}
		if d < best.Dissim-1e-6 {
			t.Fatalf("trajectory %d (%v) beats reported winner %d (%v)",
				id, d, best.TrajID, best.Dissim)
		}
	}
	if _, _, err := db.KMostSimilarTo(999, 0, 10, 1); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestKMostSimilarAutoAgreesWithIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	trajs := fleet(rng, 30, 40)
	db, err := NewDB(RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	// Narrow query → index plan.
	q := trajs[2].Clone()
	q.ID = 0
	auto, _, usedIndex, err := db.KMostSimilarAuto(&q, 2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := db.KMostSimilar(&q, 2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(auto) != len(want) {
		t.Fatalf("auto plan returned %d results, want %d", len(auto), len(want))
	}
	for i := range want {
		if auto[i].TrajID != want[i].TrajID {
			t.Fatalf("auto plan rank %d differs (usedIndex=%v)", i, usedIndex)
		}
	}
}

func TestGeoImportFacade(t *testing.T) {
	p, err := NewGeoProjection(37.97, 23.72)
	if err != nil {
		t.Fatal(err)
	}
	fixes := []GeoSample{
		{Lat: 37.97, Lon: 23.72, T: 0},
		{Lat: 37.975, Lon: 23.725, T: 30},
		{Lat: 37.98, Lon: 23.73, T: 60},
	}
	tr, err := FromLatLon(p, 1, fixes)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDB(TBTree, []Trajectory{tr})
	if err != nil {
		t.Fatal(err)
	}
	q := tr.Clone()
	q.ID = 0
	res, _, err := db.KMostSimilar(&q, 0, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].TrajID != 1 || res[0].Dissim > 1e-6 {
		t.Fatalf("GPS-imported self query: %+v", res)
	}
}
