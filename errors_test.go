package mstsearch

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestDeadlineVersusCancelTaxonomy pins the split between the two ways a
// context kills a query. Both must keep satisfying errors.Is(err,
// ErrCanceled) — existing callers switch on that — but only an expired
// deadline additionally satisfies ErrDeadlineExceeded, so servers can
// answer 504 for timeouts and 499 for walk-aways without string-matching.
func TestDeadlineVersusCancelTaxonomy(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	trajs := fleet(rng, 30, 30)
	db, err := NewDB(RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Q: &trajs[0], Interval: Interval{T1: trajs[0].Samples[0].T, T2: trajs[0].Samples[len(trajs[0].Samples)-1].T}, K: 3}

	t.Run("deadline", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		_, err := db.Query(ctx, req)
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("expired deadline: got %v, want ErrDeadlineExceeded", err)
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("ErrDeadlineExceeded must still satisfy ErrCanceled, got %v", err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("deadline error must preserve context.DeadlineExceeded, got %v", err)
		}
	})

	t.Run("cancel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := db.Query(ctx, req)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("canceled query: got %v, want ErrCanceled", err)
		}
		if errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("plain cancellation must not read as a deadline: %v", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel error must preserve context.Canceled, got %v", err)
		}
	})

	t.Run("checkpoint-context", func(t *testing.T) {
		// CheckpointContext on a non-durable DB types the precondition
		// failure before looking at the context.
		if err := db.CheckpointContext(context.Background()); !errors.Is(err, ErrNotDurable) {
			t.Fatalf("non-durable checkpoint: got %v, want ErrNotDurable", err)
		}
	})
}
