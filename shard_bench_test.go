package mstsearch_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	mstsearch "mstsearch"
	"mstsearch/internal/experiments"
	"mstsearch/internal/shard"
	"mstsearch/internal/storage"
)

// BenchmarkClusterQuery measures scatter-gather k-MST throughput across
// shard counts and placement policies on a Fig. 10 Q1-shaped workload
// (5% windows, k = 1). The extra metrics report the coordinator's gather
// profile: avgFanout shards actually searched and avgPruned skipped on
// their root bound per query. On a single-CPU container the multi-shard
// legs measure coordination overhead rather than speedup; the pruning
// ratio is the hardware-independent number.
func BenchmarkClusterQuery(b *testing.B) {
	data := experiments.SyntheticDataset(50, 201, 1)
	rng := rand.New(rand.NewSource(7))
	const nq = 16
	type workItem struct {
		q      mstsearch.Trajectory
		t1, t2 float64
	}
	work := make([]workItem, nq)
	for i := range work {
		src := &data.Trajs[rng.Intn(len(data.Trajs))]
		t1 := rng.Float64() * 0.9
		t2 := t1 + 0.05
		sl, ok := src.Slice(t1, t2)
		if !ok {
			b.Fatalf("query window [%g, %g] outside dataset span", t1, t2)
		}
		work[i].q = sl.Clone()
		work[i].q.ID = 0
		work[i].t1, work[i].t2 = t1, t2
	}

	for _, n := range []int{1, 2, 4, 8} {
		for _, place := range []shard.Placement{shard.HashPlacement{}, shard.SpatialPlacement{}} {
			b.Run(fmt.Sprintf("shards=%d/placement=%s", n, place.Name()), func(b *testing.B) {
				c, err := shard.New(mstsearch.RTree3D, n, place, shard.Options{})
				if err != nil {
					b.Fatal(err)
				}
				for i := range data.Trajs {
					if err := c.Add(data.Trajs[i]); err != nil {
						b.Fatal(err)
					}
				}
				c.EnableWarmBuffer()
				opts := mstsearch.Options{ExactRefine: true, Refine: 1}
				var fanout, pruned int
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					for _, w := range work {
						_, qs, err := c.QueryShards(context.Background(), mstsearch.Request{
							Q: &w.q, Interval: mstsearch.Interval{T1: w.t1, T2: w.t2}, K: 1,
							Options: opts,
						})
						if err != nil {
							b.Fatal(err)
						}
						fanout += qs.Fanout
						pruned += qs.Pruned
					}
				}
				elapsed := time.Since(start).Seconds()
				queries := float64(b.N) * nq
				if elapsed > 0 {
					b.ReportMetric(queries/elapsed, "queries/s")
				}
				b.ReportMetric(float64(fanout)/queries, "avgFanout")
				b.ReportMetric(float64(pruned)/queries, "avgPruned")
			})
		}
	}
}

// BenchmarkReplicaQuery prices replication on the same Q1-shaped
// workload: `steady` is a healthy 2-replica cluster (the rent replication
// charges when nothing is wrong — one extra journal target per write,
// zero extra read work); `failover-window` re-lives the worst interval on
// every iteration — the preferred replica of every shard dies, queries
// fail over mid-scatter until the health machine quarantines it, and
// anti-entropy re-seeds it between iterations (repair runs off the
// clock). avgFailovers counts the per-query hand-offs actually taken
// inside the window.
func BenchmarkReplicaQuery(b *testing.B) {
	data := experiments.SyntheticDataset(50, 201, 1)
	rng := rand.New(rand.NewSource(7))
	const nq = 16
	type workItem struct {
		q      mstsearch.Trajectory
		t1, t2 float64
	}
	work := make([]workItem, nq)
	for i := range work {
		src := &data.Trajs[rng.Intn(len(data.Trajs))]
		t1 := rng.Float64() * 0.9
		t2 := t1 + 0.05
		sl, ok := src.Slice(t1, t2)
		if !ok {
			b.Fatalf("query window [%g, %g] outside dataset span", t1, t2)
		}
		work[i].q = sl.Clone()
		work[i].q.ID = 0
		work[i].t1, work[i].t2 = t1, t2
	}

	const nShards = 4
	kill := func(c *shard.Cluster) {
		for i := 0; i < nShards; i++ {
			c.Replica(i, 0).SetPagerWrapper(func(p mstsearch.Pager) mstsearch.Pager {
				return &storage.FaultyPager{Inner: p, FailReadAt: 1, Permanent: true}
			})
		}
	}

	for _, mode := range []string{"steady", "failover-window"} {
		b.Run("mode="+mode, func(b *testing.B) {
			c, err := shard.New(mstsearch.RTree3D, nShards, shard.HashPlacement{}, shard.Options{Replicas: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			for i := range data.Trajs {
				if err := c.Add(data.Trajs[i]); err != nil {
					b.Fatal(err)
				}
			}
			c.EnableWarmBuffer()
			if mode == "failover-window" {
				kill(c)
			}
			opts := mstsearch.Options{ExactRefine: true, Refine: 1}
			var failovers int
			var elapsed time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				for _, w := range work {
					_, qs, err := c.QueryShards(context.Background(), mstsearch.Request{
						Q: &w.q, Interval: mstsearch.Interval{T1: w.t1, T2: w.t2}, K: 1,
						Options: opts,
					})
					if err != nil {
						b.Fatal(err)
					}
					failovers += qs.Failovers
				}
				elapsed += time.Since(start)
				if mode == "failover-window" {
					// Reset the window off the clock: repair re-seeds the
					// quarantined replicas, then the fresh copies die again.
					b.StopTimer()
					if _, err := c.RepairNow(context.Background()); err != nil {
						b.Fatal(err)
					}
					kill(c)
					b.StartTimer()
				}
			}
			queries := float64(b.N) * nq
			if s := elapsed.Seconds(); s > 0 {
				b.ReportMetric(queries/s, "queries/s")
			}
			b.ReportMetric(float64(failovers)/queries, "avgFailovers")
		})
	}
}
