package mstsearch

import (
	"math"
	"math/rand"
	"testing"

	"mstsearch/internal/gstd"
)

// Metamorphic properties of k-MST: relations that must hold between the
// answers to *related* queries, checkable without any ground truth.

// TestMetamorphicKPrefix: shrinking k can only truncate the answer. For
// every k' < k, results(k') must be bit-identical to results(k)[:k'] —
// best-first search with exact refinement admits ranks independently of
// how many are requested beyond them.
func TestMetamorphicKPrefix(t *testing.T) {
	trajs := gstd.Generate(gstd.Config{NumObjects: 40, SamplesPerObject: 81, Seed: 11}).Trajs
	for _, kind := range IndexKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			db, err := NewDB(kind, trajs)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(21))
			for iter := 0; iter < 12; iter++ {
				q := oracleQuery(rng, 61)
				t1, t2 := oracleWindow(rng)
				const kMax = 8
				full, _, err := db.KMostSimilar(q, t1, t2, kMax)
				if err != nil {
					t.Fatal(err)
				}
				for _, kSmall := range []int{1, 3, kMax - 1} {
					pre, _, err := db.KMostSimilar(q, t1, t2, kSmall)
					if err != nil {
						t.Fatal(err)
					}
					want := full
					if len(want) > kSmall {
						want = want[:kSmall]
					}
					checkBitIdentical(t, "k-prefix", iter, want, pre)
				}
			}
		})
	}
}

// TestMetamorphicDuplicate: indexing an exact copy of a stored trajectory
// under a fresh ID must make the copy show up alongside the original with
// the same DISSIM to any query — the metric cannot tell identical curves
// apart.
func TestMetamorphicDuplicate(t *testing.T) {
	trajs := gstd.Generate(gstd.Config{NumObjects: 30, SamplesPerObject: 61, Seed: 31}).Trajs
	const victim = 4
	dup := trajs[victim].Clone()
	dup.ID = ID(len(trajs) + 100)
	withDup := append(append([]Trajectory{}, trajs...), dup)

	for _, kind := range IndexKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			db, err := NewDB(kind, withDup)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(32))
			for iter := 0; iter < 10; iter++ {
				// Query near the victim so original and copy land in the
				// top-k; k covers the whole fleet to make presence certain.
				q := trajs[victim].Clone()
				for j := range q.Samples {
					q.Samples[j].X += rng.NormFloat64() * 0.01
					q.Samples[j].Y += rng.NormFloat64() * 0.01
				}
				res, _, err := db.KMostSimilar(&q, 0, 1, len(withDup))
				if err != nil {
					t.Fatal(err)
				}
				var dOrig, dCopy float64
				foundOrig, foundCopy := false, false
				for _, r := range res {
					switch r.TrajID {
					case trajs[victim].ID:
						dOrig, foundOrig = r.Dissim, true
					case dup.ID:
						dCopy, foundCopy = r.Dissim, true
					}
				}
				if !foundOrig || !foundCopy {
					t.Fatalf("iter %d: original present=%v, duplicate present=%v", iter, foundOrig, foundCopy)
				}
				if math.Abs(dOrig-dCopy) > 1e-9*(1+math.Abs(dOrig)) {
					t.Fatalf("iter %d: original DISSIM %g != duplicate DISSIM %g", iter, dOrig, dCopy)
				}
			}
		})
	}
}

// TestMetamorphicWindowShrink: DISSIM is the integral of a non-negative
// distance function over the query window (Definition 3), so shrinking the
// window to a sub-interval can only remove area under the curve — for any
// trajectory defined on both windows, DISSIM over the sub-window is ≤ its
// DISSIM over the full window. (This is the monotonicity direction the
// integral actually gives; the per-trajectory value never *increases* as
// the window shrinks.) Checked both on the raw metric and through the
// index for every result surviving in both answers.
func TestMetamorphicWindowShrink(t *testing.T) {
	trajs := gstd.Generate(gstd.Config{NumObjects: 35, SamplesPerObject: 81, Seed: 41}).Trajs
	for _, kind := range IndexKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			db, err := NewDB(kind, trajs)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			for iter := 0; iter < 12; iter++ {
				q := oracleQuery(rng, 81)
				t1, t2 := 0.1+rng.Float64()*0.1, 0.8+rng.Float64()*0.1
				// A strict sub-window.
				s1 := t1 + 0.05 + rng.Float64()*0.1
				s2 := t2 - 0.05 - rng.Float64()*0.1

				// Raw metric, every trajectory.
				for i := range trajs {
					dFull, ok1 := Dissimilarity(q, &trajs[i], t1, t2)
					dSub, ok2 := Dissimilarity(q, &trajs[i], s1, s2)
					if !ok1 || !ok2 {
						continue
					}
					if dSub > dFull+1e-9*(1+dFull) {
						t.Fatalf("iter %d traj %d: sub-window DISSIM %g > full-window %g",
							iter, trajs[i].ID, dSub, dFull)
					}
				}

				// Through the index: the same inequality for results
				// surviving in both top-k answers.
				const k = 10
				full, _, err := db.KMostSimilar(q, t1, t2, k)
				if err != nil {
					t.Fatal(err)
				}
				sub, _, err := db.KMostSimilar(q, s1, s2, k)
				if err != nil {
					t.Fatal(err)
				}
				fullBy := make(map[ID]float64, len(full))
				for _, r := range full {
					fullBy[r.TrajID] = r.Dissim
				}
				survived := 0
				for _, r := range sub {
					dFull, ok := fullBy[r.TrajID]
					if !ok {
						continue
					}
					survived++
					if r.Dissim > dFull+1e-9*(1+dFull) {
						t.Fatalf("iter %d traj %d: index sub-window DISSIM %g > full-window %g",
							iter, r.TrajID, r.Dissim, dFull)
					}
				}
				if survived == 0 {
					t.Fatalf("iter %d: no result survived the window shrink; property never exercised", iter)
				}
			}
		})
	}
}
