package mstsearch

import (
	"sync"
	"sync/atomic"
	"time"
)

// slowLogCapacity bounds the slow-query log: a ring of the most recent
// entries, so a pathological workload can't grow the log without bound.
const slowLogCapacity = 64

// SlowQuery is one entry of the slow-query log: what ran, how long it
// took, and the work profile it left behind.
type SlowQuery struct {
	// Kind names the entry point: "kmst", "range", "nn", "topology",
	// "relaxed", "batch" or "explain".
	Kind string
	// Duration is the query's wall-clock latency.
	Duration time.Duration
	// When is the query's completion time.
	When time.Time
	// K and Interval echo the request for k-MST queries (zero otherwise).
	K        int
	Interval Interval
	// Stats is the query's work profile (zero for non-k-MST kinds).
	Stats SearchStats
	// Err is the error text, "" on success.
	Err string
}

// slowLog is a bounded, latch-protected ring of the most recent slow
// queries. The threshold is atomic so the fast path — every query checks
// it once — never takes the lock; 0 means disarmed.
type slowLog struct {
	threshold atomic.Int64 // nanoseconds; 0 disables

	mu      sync.Mutex  // lockrank: 60 — leaf: nothing is acquired under it
	entries []SlowQuery // ring buffer, allocated on first slow query
	next    int         // ring cursor
	total   int         // entries ever logged (caps the readable count)
}

// observe appends the query to the ring when the log is armed and the
// query crossed the threshold. The disarmed path is one atomic load.
func (l *slowLog) observe(kind string, d time.Duration, k int, iv Interval, stats SearchStats, err error) {
	thr := l.threshold.Load()
	if thr <= 0 || int64(d) < thr {
		return
	}
	e := SlowQuery{
		Kind: kind, Duration: d, When: time.Now(),
		K: k, Interval: iv, Stats: stats,
	}
	if err != nil {
		e.Err = err.Error()
	}
	l.mu.Lock()
	if l.entries == nil {
		l.entries = make([]SlowQuery, slowLogCapacity)
	}
	l.entries[l.next] = e
	l.next = (l.next + 1) % slowLogCapacity
	l.total++
	l.mu.Unlock()
}

// snapshot returns the logged queries, newest first.
func (l *slowLog) snapshot() []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.total
	if n > slowLogCapacity {
		n = slowLogCapacity
	}
	out := make([]SlowQuery, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.entries[(l.next-i+slowLogCapacity)%slowLogCapacity])
	}
	return out
}

// SetSlowQueryThreshold arms the DB's slow-query log: every query whose
// wall-clock latency reaches d is recorded in a bounded ring (the most
// recent 64). d <= 0 disarms the log; entries already recorded remain
// readable. The check costs one atomic load per query, so leaving the log
// disarmed is free.
func (db *DB) SetSlowQueryThreshold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	db.slow.threshold.Store(int64(d))
}

// SlowQueries returns the slow-query log, newest first. The slice is a
// private copy.
func (db *DB) SlowQueries() []SlowQuery { return db.slow.snapshot() }
