package mstsearch

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"mstsearch/internal/testutil"
)

func batchFixture(t *testing.T, kind IndexKind, seed int64) (*DB, []Trajectory) {
	t.Helper()
	testutil.CheckGoroutines(t) // the batch worker pool must not outlive its call
	rng := rand.New(rand.NewSource(seed))
	trajs := fleet(rng, 40, 30)
	db, err := NewDB(kind, trajs)
	if err != nil {
		t.Fatal(err)
	}
	return db, trajs
}

// TestBatchMatchesSerialLoop: a batch call must return, slot for slot,
// exactly what a serial loop of KMostSimilarOpts returns — across kinds
// and worker counts.
func TestBatchMatchesSerialLoop(t *testing.T) {
	for _, kind := range IndexKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			db, trajs := batchFixture(t, kind, 51)
			rng := rand.New(rand.NewSource(52))
			var queries []BatchQuery
			for i := 0; i < 16; i++ {
				c := trajs[rng.Intn(len(trajs))].Clone()
				for j := range c.Samples {
					c.Samples[j].X += rng.NormFloat64()
					c.Samples[j].Y += rng.NormFloat64()
				}
				t1 := rng.Float64() * 4
				queries = append(queries, BatchQuery{Q: &c, T1: t1, T2: t1 + 2 + rng.Float64()*4, K: 1 + rng.Intn(4)})
			}
			opts := Options{ExactRefine: true, Refine: 1}
			serial := make([][]Result, len(queries))
			for i, bq := range queries {
				res, _, err := db.KMostSimilarOpts(bq.Q, bq.T1, bq.T2, bq.K, opts)
				if err != nil {
					t.Fatalf("serial %d: %v", i, err)
				}
				serial[i] = res
			}
			for _, par := range []int{1, 4} {
				o := opts
				o.Parallelism = par
				for i, br := range db.KMostSimilarBatch(context.Background(), queries, o) {
					if br.Err != nil {
						t.Fatalf("parallelism %d slot %d: %v", par, i, br.Err)
					}
					checkBitIdentical(t, "batch-vs-serial", i, serial[i], br.Results)
				}
			}
		})
	}
}

// TestBatchErrorIsolation: one malformed query must fail only its own
// slot; every other slot still gets its full answer.
func TestBatchErrorIsolation(t *testing.T) {
	db, trajs := batchFixture(t, RTree3D, 61)
	q0 := trajs[0].Clone()
	q1 := trajs[1].Clone()
	q2 := trajs[2].Clone()
	queries := []BatchQuery{
		{Q: &q0, T1: 0, T2: 10, K: 2},
		{Q: &q1, T1: 8, T2: 2, K: 2}, // inverted period: ErrBadQuery
		{Q: &q2, T1: 0, T2: 10, K: 2},
	}
	out := db.KMostSimilarBatch(context.Background(), queries, Options{ExactRefine: true, Refine: 1, Parallelism: 2})
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("healthy slots failed: %v / %v", out[0].Err, out[2].Err)
	}
	if !errors.Is(out[1].Err, ErrBadQuery) {
		t.Fatalf("bad slot: err %v, want ErrBadQuery", out[1].Err)
	}
	if len(out[0].Results) != 2 || len(out[2].Results) != 2 {
		t.Fatalf("healthy slots returned %d/%d results, want 2/2", len(out[0].Results), len(out[2].Results))
	}
	if out[1].Results != nil {
		t.Fatalf("failed slot carries results: %+v", out[1].Results)
	}
}

// TestBatchCancellation: a pre-canceled context fails every slot with an
// error wrapping ErrCanceled — no partial panic, no hung workers.
func TestBatchCancellation(t *testing.T) {
	db, trajs := batchFixture(t, TBTree, 71)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var queries []BatchQuery
	for i := 0; i < 8; i++ {
		c := trajs[i].Clone()
		queries = append(queries, BatchQuery{Q: &c, T1: 0, T2: 10, K: 3})
	}
	for i, br := range db.KMostSimilarBatch(ctx, queries, Options{ExactRefine: true, Refine: 1, Parallelism: 4}) {
		if !errors.Is(br.Err, ErrCanceled) {
			t.Fatalf("slot %d: err %v, want ErrCanceled", i, br.Err)
		}
	}
}

// TestBatchEmpty: a zero-length batch is a no-op, whatever the options.
func TestBatchEmpty(t *testing.T) {
	db, _ := batchFixture(t, STRTree, 81)
	if out := db.KMostSimilarBatch(context.Background(), nil, Options{Parallelism: 4}); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
}

// TestBatchSharedPoolWarmth: queries of one batch read through a shared
// buffer, so a repeated query later in the batch finds most of its pages
// already cached. Run single-worker so the per-slot stats deltas are
// exact. (Exactly zero re-reads is not guaranteed: the pool's LRU is
// per-shard, so two hot pages hashing to the same small shard can evict
// each other — the contract is strictly cheaper, mostly-hit service.)
func TestBatchSharedPoolWarmth(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	trajs := fleet(rng, 400, 30)
	db, err := NewDB(RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	q := trajs[5].Clone()
	queries := []BatchQuery{
		{Q: &q, T1: 4, T2: 6, K: 2},
		{Q: &q, T1: 4, T2: 6, K: 2}, // identical twin: pages still warm
	}
	out := db.KMostSimilarBatch(context.Background(), queries, Options{ExactRefine: true, Refine: 1, Parallelism: 1})
	for i, br := range out {
		if br.Err != nil {
			t.Fatalf("slot %d: %v", i, br.Err)
		}
	}
	s0, s1 := out[0].Stats, out[1].Stats
	if s0.PageReads == 0 {
		t.Fatal("first query of a cold batch should pay physical reads")
	}
	if s1.PageReads >= s0.PageReads {
		t.Fatalf("repeated query paid %d physical reads, cold twin paid %d — shared pool never warmed",
			s1.PageReads, s0.PageReads)
	}
	if s1.BufferHits <= s0.BufferHits {
		t.Fatalf("repeated query got %d buffer hits, cold twin %d — expected mostly-hit service",
			s1.BufferHits, s0.BufferHits)
	}
	checkBitIdentical(t, "warm-twin", 1, out[0].Results, out[1].Results)
}
