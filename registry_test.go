package mstsearch

import (
	"errors"
	"testing"
)

// TestIndexKindRegistryRoundTrip pins the registry contract every layer
// relies on: String and ParseIndexKind are inverses, every alias
// resolves, and unknown spellings or numeric values produce the one
// typed error.
func TestIndexKindRegistryRoundTrip(t *testing.T) {
	kinds := IndexKinds()
	if len(kinds) != 4 {
		t.Fatalf("registry lists %d kinds, want 4", len(kinds))
	}
	for _, k := range kinds {
		if !k.Valid() {
			t.Fatalf("%s: Valid() = false for a registered kind", k)
		}
		got, err := ParseIndexKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseIndexKind(%q) = %v, %v, want %v", k.String(), got, err, k)
		}
	}
	for in, want := range map[string]IndexKind{
		"rtree": RTree3D, "r": RTree3D, "3d": RTree3D,
		"tb": TBTree, "tbtree": TBTree, "TB-Tree": TBTree,
		"str": STRTree, "strtree": STRTree, "str-tree": STRTree,
		"ntree": NTree, "n": NTree, "metric": NTree, " N-Tree ": NTree,
	} {
		got, err := ParseIndexKind(in)
		if err != nil || got != want {
			t.Fatalf("ParseIndexKind(%q) = %v, %v, want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "quadtree", "rtre", "5"} {
		if _, err := ParseIndexKind(in); !errors.Is(err, ErrUnknownIndexKind) {
			t.Fatalf("ParseIndexKind(%q) = %v, want ErrUnknownIndexKind", in, err)
		}
	}
	if IndexKind(99).Valid() {
		t.Fatal("IndexKind(99).Valid() = true")
	}
	if s := IndexKind(99).String(); s != "IndexKind(99)" {
		t.Fatalf("IndexKind(99).String() = %q", s)
	}
	for _, k := range kinds {
		if got, want := k.Metric(), k == NTree; got != want {
			t.Fatalf("%s.Metric() = %v, want %v", k, got, want)
		}
	}
}
