package mstsearch_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	mstsearch "mstsearch"
	"mstsearch/internal/gstd"
	"mstsearch/internal/shard"
)

// The sharded differential oracle: a Cluster's scatter-gather answer must
// be bit-identical — same members, same order, same Dissim/Err bits, same
// Certified flags — to the same Request on a single DB holding every
// trajectory, and both must match the brute-force linear-scan oracle.
// Shard pruning and gather short-circuiting are pure optimizations; these
// suites are the proof.

// oracleOptions is the options set every differential leg shares (exact
// refinement on, Lemma 1 bounds, serial — the bit-identity baseline).
func oracleOptions() mstsearch.Options {
	return mstsearch.Options{ExactRefine: true, Refine: 1, Parallelism: 1}
}

// buildCluster scatters trajs into a fresh in-memory cluster.
func buildCluster(t *testing.T, kind mstsearch.IndexKind, n int, place shard.Placement, opts shard.Options, trajs []mstsearch.Trajectory) *shard.Cluster {
	t.Helper()
	c, err := shard.New(kind, n, place, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trajs {
		if err := c.Add(trajs[i]); err != nil {
			t.Fatalf("add trajectory %d: %v", trajs[i].ID, err)
		}
	}
	return c
}

// checkShardOracle compares a cluster answer against the linear-scan
// oracle: same members, same order, distances within the certified band.
func checkShardOracle(t *testing.T, label string, iter int, res []mstsearch.Result, want []mstsearch.OracleHit) {
	t.Helper()
	if len(res) != len(want) {
		t.Fatalf("%s iter %d: got %d results, oracle %d", label, iter, len(res), len(want))
	}
	for j := range want {
		if res[j].TrajID != want[j].ID {
			t.Fatalf("%s iter %d: rank %d = traj %d (%g), oracle %d (%g)",
				label, iter, j, res[j].TrajID, res[j].Dissim, want[j].ID, want[j].Dissim)
		}
		tol := res[j].Err + 1e-9*(1+math.Abs(want[j].Dissim))
		if math.Abs(res[j].Dissim-want[j].Dissim) > tol {
			t.Fatalf("%s iter %d: traj %d dissim %g outside band ±%g of oracle %g",
				label, iter, res[j].TrajID, res[j].Dissim, tol, want[j].Dissim)
		}
		if !res[j].Certified {
			t.Fatalf("%s iter %d: unbudgeted search left result %d uncertified",
				label, iter, res[j].TrajID)
		}
	}
}

// TestShardedDifferentialOracle replays the oracle workload through
// clusters of every shard count N ∈ {1, 2, 4, 7} × both placement
// policies × every index kind, checking each answer against the
// brute-force oracle and bit-identical against a single DB holding the
// whole fleet.
func TestShardedDifferentialOracle(t *testing.T) {
	trajs := gstd.Generate(gstd.Config{NumObjects: 36, SamplesPerObject: 81, Seed: 3}).Trajs
	const queriesPerCombo = 10
	for _, kind := range mstsearch.IndexKinds() {
		single, err := mstsearch.NewDB(kind, trajs)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 2, 4, 7} {
			for _, place := range []shard.Placement{shard.HashPlacement{}, shard.SpatialPlacement{}} {
				t.Run(fmt.Sprintf("%s/N%d/%s", kind, n, place.Name()), func(t *testing.T) {
					c := buildCluster(t, kind, n, place, shard.Options{}, trajs)
					if got := c.Len(); got != len(trajs) {
						t.Fatalf("cluster holds %d trajectories, want %d", got, len(trajs))
					}
					rng := rand.New(rand.NewSource(1000*int64(kind) + 10*int64(n) + int64(len(place.Name()))))
					for i := 0; i < queriesPerCombo; i++ {
						var q *mstsearch.Trajectory
						if i%3 == 0 {
							cp := trajs[rng.Intn(len(trajs))].Clone()
							q = &cp
						} else {
							q = mstsearch.OracleQueryTraj(rng, 61)
						}
						t1, t2 := mstsearch.OracleQueryWindow(rng)
						k := 1 + rng.Intn(5)
						req := mstsearch.Request{
							Q: q, Interval: mstsearch.Interval{T1: t1, T2: t2}, K: k,
							Options: oracleOptions(),
						}
						want := mstsearch.OracleTopK(trajs, q, t1, t2, k)

						sresp, err := single.Query(context.Background(), req)
						if err != nil {
							t.Fatalf("iter %d single: %v", i, err)
						}
						cresp, err := c.Query(context.Background(), req)
						if err != nil {
							t.Fatalf("iter %d cluster: %v", i, err)
						}
						checkShardOracle(t, "cluster", i, cresp.Results, want)
						mstsearch.CheckBitIdentical(t, "cluster-vs-single", i, sresp.Results, cresp.Results)
					}
				})
			}
		}
	}
}

// TestShardedBatchOracle certifies the cluster's batch executor: every
// slot of a KMostSimilarBatch over the cluster is bit-identical to its
// serial single-DB twin (the same contract DB.KMostSimilarBatch holds).
func TestShardedBatchOracle(t *testing.T) {
	trajs := gstd.Generate(gstd.Config{NumObjects: 30, SamplesPerObject: 61, Seed: 5}).Trajs
	single, err := mstsearch.NewDB(mstsearch.RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	c := buildCluster(t, mstsearch.RTree3D, 4, shard.HashPlacement{}, shard.Options{}, trajs)
	rng := rand.New(rand.NewSource(11))

	const slots = 24
	batch := make([]mstsearch.BatchQuery, slots)
	serial := make([][]mstsearch.Result, slots)
	for i := range batch {
		q := mstsearch.OracleQueryTraj(rng, 41)
		t1, t2 := mstsearch.OracleQueryWindow(rng)
		k := 1 + rng.Intn(4)
		batch[i] = mstsearch.BatchQuery{Q: q, T1: t1, T2: t2, K: k}
		resp, err := single.Query(context.Background(), mstsearch.Request{
			Q: q, Interval: mstsearch.Interval{T1: t1, T2: t2}, K: k, Options: oracleOptions(),
		})
		if err != nil {
			t.Fatalf("slot %d single: %v", i, err)
		}
		serial[i] = resp.Results
	}
	opts := oracleOptions()
	opts.Parallelism = 4
	for i, br := range c.KMostSimilarBatch(context.Background(), batch, opts) {
		if br.Err != nil {
			t.Fatalf("batch slot %d: %v", i, br.Err)
		}
		mstsearch.CheckBitIdentical(t, "cluster-batch", i, serial[i], br.Results)
	}
}

// TestShardPruning pins the coordinator's whole-shard pruning: spatially
// partitioned fleets whose regions are far apart let a query confined to
// one region skip every other shard — and skipping them must not change
// one bit of the answer.
func TestShardPruning(t *testing.T) {
	// Four spatially separated clumps of trajectories over x ∈ [0, 1):
	// clump s wiggles around x ≈ (s+0.5)/4, so SpatialPlacement{} sends
	// each clump to its own shard.
	rng := rand.New(rand.NewSource(21))
	var trajs []mstsearch.Trajectory
	const clumps, perClump, samples = 4, 8, 41
	for s := 0; s < clumps; s++ {
		cx := (float64(s) + 0.5) / clumps
		for j := 0; j < perClump; j++ {
			tr := mstsearch.Trajectory{ID: mstsearch.ID(s*perClump + j + 1), Samples: make([]mstsearch.Sample, samples)}
			x, y := cx+rng.NormFloat64()*0.01, rng.Float64()
			for i := 0; i < samples; i++ {
				tr.Samples[i] = mstsearch.Sample{X: x, Y: y, T: float64(i) / float64(samples-1)}
				x += rng.NormFloat64() * 0.005
				y += rng.NormFloat64() * 0.01
			}
			trajs = append(trajs, tr)
		}
	}
	single, err := mstsearch.NewDB(mstsearch.RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	c := buildCluster(t, mstsearch.RTree3D, clumps, shard.SpatialPlacement{}, shard.Options{Workers: 1}, trajs)

	// Query inside clump 0: its shard holds every close answer, so the
	// coordinator must prune at least one far shard once k results are in.
	q := trajs[2].Clone()
	q.ID = 0
	req := mstsearch.Request{
		Q: &q, Interval: mstsearch.Interval{T1: 0.1, T2: 0.9}, K: 3,
		Options: oracleOptions(),
	}
	sresp, err := single.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	cresp, qs, err := c.QueryShards(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Pruned == 0 {
		t.Fatalf("expected >0 shards pruned for a clump-local query, stats %+v bounds %v", qs, qs.Bounds)
	}
	if qs.Fanout+qs.Pruned != clumps {
		t.Fatalf("fanout %d + pruned %d != %d shards", qs.Fanout, qs.Pruned, clumps)
	}
	mstsearch.CheckBitIdentical(t, "pruned-cluster-vs-single", 0, sresp.Results, cresp.Results)

	// The trace must carry the cluster-level scatter/prune events, and
	// their counts must agree with the gather profile.
	treq := req
	var scatter, prune int
	treq.Options.Trace = func(ev mstsearch.TraceEvent) {
		switch ev.Kind {
		case mstsearch.EventShardScatter:
			scatter++
		case mstsearch.EventShardPrune:
			prune++
		}
	}
	tresp, err := c.Query(context.Background(), treq)
	if err != nil {
		t.Fatal(err)
	}
	if scatter != qs.Fanout || prune != qs.Pruned {
		t.Fatalf("trace saw %d scatters / %d prunes, stats say %d / %d", scatter, prune, qs.Fanout, qs.Pruned)
	}
	if tresp.Trace == nil ||
		tresp.Trace.ByKind[mstsearch.EventShardScatter] != qs.Fanout ||
		tresp.Trace.ByKind[mstsearch.EventShardPrune] != qs.Pruned {
		t.Fatalf("trace summary %+v does not carry the cluster events (want %d scatter, %d prune)",
			tresp.Trace, qs.Fanout, qs.Pruned)
	}
	mstsearch.CheckBitIdentical(t, "traced-vs-untraced", 0, cresp.Results, tresp.Results)
}

// TestShardedAppendParity exercises the online maintenance path: samples
// appended through the cluster land on the owning shard and subsequent
// queries stay bit-identical to a single DB receiving the same appends.
func TestShardedAppendParity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	trajs := gstd.Generate(gstd.Config{NumObjects: 20, SamplesPerObject: 41, Seed: 7}).Trajs
	single, err := mstsearch.NewDB(mstsearch.TBTree, trajs)
	if err != nil {
		t.Fatal(err)
	}
	c := buildCluster(t, mstsearch.TBTree, 3, shard.HashPlacement{}, shard.Options{}, trajs)

	for round := 0; round < 4; round++ {
		// Extend a few random trajectories beyond their current end.
		for j := 0; j < 5; j++ {
			tr := trajs[rng.Intn(len(trajs))]
			cur := c.Get(tr.ID)
			last := cur.Samples[len(cur.Samples)-1]
			s := mstsearch.Sample{
				X: last.X + rng.NormFloat64()*0.01,
				Y: last.Y + rng.NormFloat64()*0.01,
				T: last.T + 0.01,
			}
			if err := c.AppendSample(tr.ID, s); err != nil {
				t.Fatalf("round %d: cluster append: %v", round, err)
			}
			if err := single.AppendSample(tr.ID, s); err != nil {
				t.Fatalf("round %d: single append: %v", round, err)
			}
		}
		q := mstsearch.OracleQueryTraj(rng, 41)
		t1, t2 := mstsearch.OracleQueryWindow(rng)
		req := mstsearch.Request{
			Q: q, Interval: mstsearch.Interval{T1: t1, T2: t2}, K: 4,
			Options: oracleOptions(),
		}
		sresp, err := single.Query(context.Background(), req)
		if err != nil {
			t.Fatalf("round %d single: %v", round, err)
		}
		cresp, err := c.Query(context.Background(), req)
		if err != nil {
			t.Fatalf("round %d cluster: %v", round, err)
		}
		mstsearch.CheckBitIdentical(t, "after-append", round, sresp.Results, cresp.Results)
	}
	if single.NumSegments() != c.NumSegments() {
		t.Fatalf("segment counts diverged: single %d, cluster %d", single.NumSegments(), c.NumSegments())
	}
}

// TestShardedMetricOracle replays an exact-DTW kNN workload through
// N-tree clusters of every shard count × both placements: each gathered
// answer must be bit-identical to the same Request on a single DB and
// must match a brute-force scan of MetricDistance over the raw fleet —
// the sharded leg of the metric differential oracle. Because the answer
// is checked against the same single-DB reference under every shape,
// this doubles as the metric resharding-invariance proof.
func TestShardedMetricOracle(t *testing.T) {
	trajs := gstd.Generate(gstd.Config{NumObjects: 30, SamplesPerObject: 61, Seed: 8}).Trajs
	single, err := mstsearch.NewDB(mstsearch.NTree, trajs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	type work struct {
		q      *mstsearch.Trajectory
		t1, t2 float64
		k      int
	}
	const queries = 8
	workload := make([]work, queries)
	for i := range workload {
		var q *mstsearch.Trajectory
		if i%3 == 0 {
			c := trajs[rng.Intn(len(trajs))].Clone()
			c.ID = 0
			q = &c
		} else {
			q = mstsearch.OracleQueryTraj(rng, 41)
		}
		t1, t2 := mstsearch.OracleQueryWindow(rng)
		workload[i] = work{q: q, t1: t1, t2: t2, k: 1 + rng.Intn(5)}
	}
	for _, n := range []int{1, 2, 4} {
		for _, place := range []shard.Placement{shard.HashPlacement{}, shard.SpatialPlacement{}} {
			t.Run(fmt.Sprintf("N%d/%s", n, place.Name()), func(t *testing.T) {
				c := buildCluster(t, mstsearch.NTree, n, place, shard.Options{}, trajs)
				for i, w := range workload {
					req := mstsearch.Request{
						Q: w.q, Interval: mstsearch.Interval{T1: w.t1, T2: w.t2}, K: w.k,
						Metric: mstsearch.MetricDTW, Options: oracleOptions(),
					}
					sresp, err := single.Query(context.Background(), req)
					if err != nil {
						t.Fatalf("iter %d single: %v", i, err)
					}
					cresp, err := c.Query(context.Background(), req)
					if err != nil {
						t.Fatalf("iter %d cluster: %v", i, err)
					}
					mstsearch.CheckBitIdentical(t, "metric-cluster", i, sresp.Results, cresp.Results)

					// Brute-force ground truth through the same public
					// evaluator the engine refines with.
					type hit struct {
						id mstsearch.ID
						d  float64
					}
					var all []hit
					for j := range trajs {
						if d, ok := mstsearch.MetricDistance(mstsearch.MetricDTW, 0, w.q, &trajs[j], w.t1, w.t2); ok {
							all = append(all, hit{trajs[j].ID, d})
						}
					}
					sort.Slice(all, func(a, b int) bool {
						if all[a].d != all[b].d {
							return all[a].d < all[b].d
						}
						return all[a].id < all[b].id
					})
					if len(all) > w.k {
						all = all[:w.k]
					}
					if len(cresp.Results) != len(all) {
						t.Fatalf("iter %d: cluster %d results, oracle %d", i, len(cresp.Results), len(all))
					}
					for j, r := range cresp.Results {
						if r.TrajID != all[j].id || math.Float64bits(r.Dissim) != math.Float64bits(all[j].d) {
							t.Fatalf("iter %d rank %d: cluster (%d, %g) vs oracle (%d, %g)",
								i, j, r.TrajID, r.Dissim, all[j].id, all[j].d)
						}
					}
				}
			})
		}
	}
}
