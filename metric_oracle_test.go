package mstsearch

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"mstsearch/internal/gstd"
)

// The metric differential oracle: every exact-metric kNN answer the
// N-tree produces — serial, parallel, and batch — must match a
// brute-force scan that evaluates the same EvalMetric code path against
// every stored trajectory. The scan touches no index, so agreement
// certifies the metric search stack (pivot descent, triangle-bound
// pruning, leaf refinement) end to end. Distances must be bit-identical:
// the tree's exact refinement and the oracle call the same function on
// the same operands.

// metricLinearTopK is the brute-force exact-metric oracle.
func metricLinearTopK(trajs []Trajectory, q *Trajectory, t1, t2 float64, k int, m Metric, eps float64) []scanHit {
	var hits []scanHit
	for i := range trajs {
		d, ok := MetricDistance(m, eps, q, &trajs[i], t1, t2)
		if !ok {
			continue
		}
		hits = append(hits, scanHit{id: trajs[i].ID, d: d})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].d != hits[j].d {
			return hits[i].d < hits[j].d
		}
		return hits[i].id < hits[j].id
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// checkMetricOracle compares an index answer against the metric oracle:
// same members, same order, bit-identical distances.
func checkMetricOracle(t *testing.T, label string, iter int, res []Result, want []scanHit) {
	t.Helper()
	if len(res) != len(want) {
		t.Fatalf("%s iter %d: got %d results, oracle %d", label, iter, len(res), len(want))
	}
	for j := range want {
		if res[j].TrajID != want[j].id {
			t.Fatalf("%s iter %d: rank %d = traj %d (%g), oracle %d (%g)",
				label, iter, j, res[j].TrajID, res[j].Dissim, want[j].id, want[j].d)
		}
		if math.Float64bits(res[j].Dissim) != math.Float64bits(want[j].d) {
			t.Fatalf("%s iter %d: traj %d distance %g not bit-identical to oracle %g",
				label, iter, res[j].TrajID, res[j].Dissim, want[j].d)
		}
		if !res[j].Certified {
			t.Fatalf("%s iter %d: unbudgeted metric search left result %d uncertified",
				label, iter, res[j].TrajID)
		}
	}
}

// TestMetricDifferentialOracle runs randomized GSTD fleets × all four
// metrics (DISSIM through the metric engine, plus DTW/LCSS/EDR) ×
// {serial, Parallelism=4, batch} on the N-tree, each answer checked
// against the brute-force oracle and each parallel answer bit-identical
// to its serial twin.
func TestMetricDifferentialOracle(t *testing.T) {
	trajs := gstd.Generate(gstd.Config{NumObjects: 32, SamplesPerObject: 81, Seed: 5}).Trajs
	db, err := NewDB(NTree, trajs)
	if err != nil {
		t.Fatal(err)
	}
	metrics := []struct {
		m   Metric
		eps float64
	}{
		{MetricDISSIM, 0},
		{MetricDTW, 0},
		{MetricLCSS, 0.05},
		{MetricEDR, 0.05},
	}
	const queriesPerMetric = 24
	for _, mc := range metrics {
		t.Run(mc.m.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(100 * int64(mc.m)))
			serialOut := make([][]Result, queriesPerMetric)
			batch := make([]BatchQuery, queriesPerMetric)
			for i := 0; i < queriesPerMetric; i++ {
				var q *Trajectory
				if i%3 == 0 {
					c := trajs[rng.Intn(len(trajs))].Clone()
					q = &c
				} else {
					q = oracleQuery(rng, 61)
				}
				t1, t2 := oracleWindow(rng)
				k := 1 + rng.Intn(5)
				want := metricLinearTopK(trajs, q, t1, t2, k, mc.m, mc.eps)

				req := Request{
					Q: q, Interval: Interval{T1: t1, T2: t2}, K: k,
					Metric: mc.m, MetricEps: mc.eps,
					Options: Options{ExactRefine: true, Refine: 1, Parallelism: 1},
				}
				resp, err := db.Query(context.Background(), req)
				if err != nil {
					t.Fatalf("iter %d serial: %v", i, err)
				}
				checkMetricOracle(t, "serial", i, resp.Results, want)

				preq := req
				preq.Options.Parallelism = 4
				presp, err := db.Query(context.Background(), preq)
				if err != nil {
					t.Fatalf("iter %d parallel: %v", i, err)
				}
				checkMetricOracle(t, "parallel", i, presp.Results, want)
				checkBitIdentical(t, "metric-single", i, resp.Results, presp.Results)

				serialOut[i] = resp.Results
				batch[i] = BatchQuery{Q: q, T1: t1, T2: t2, K: k, Metric: mc.m, MetricEps: mc.eps}
			}
			for i, br := range db.KMostSimilarBatch(context.Background(), batch,
				Options{ExactRefine: true, Refine: 1, Parallelism: 4}) {
				if br.Err != nil {
					t.Fatalf("batch slot %d: %v", i, br.Err)
				}
				checkBitIdentical(t, "metric-batch", i, serialOut[i], br.Results)
			}
		})
	}
}

// TestMetricDegradedBudgetParity pins the degradation contract on the
// metric engine: under a tight node budget the search must report
// Degraded, stay bit-identical between serial and parallel runs, and
// every result it still marks Certified must hold its oracle rank.
func TestMetricDegradedBudgetParity(t *testing.T) {
	// Enough objects to force a multi-level tree (a 4 KiB page holds ~63
	// metric leaf entries), so a tight budget actually runs out mid-walk.
	trajs := gstd.Generate(gstd.Config{NumObjects: 220, SamplesPerObject: 21, Seed: 6}).Trajs
	db, err := NewDB(NTree, trajs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	degraded := 0
	const iters = 40
	for i := 0; i < iters; i++ {
		q := oracleQuery(rng, 61)
		t1, t2 := oracleWindow(rng)
		k := 1 + rng.Intn(4)
		opts := Options{
			ExactRefine: true, Refine: 1, Parallelism: 1,
			MaxNodeAccesses: 1 + rng.Intn(3), // tight: most searches degrade
		}
		req := Request{
			Q: q, Interval: Interval{T1: t1, T2: t2}, K: k,
			Metric: MetricDTW, Options: opts,
		}
		resp, err := db.Query(context.Background(), req)
		if err != nil {
			t.Fatalf("iter %d serial: %v", i, err)
		}
		preq := req
		preq.Options.Parallelism = 4
		presp, err := db.Query(context.Background(), preq)
		if err != nil {
			t.Fatalf("iter %d parallel: %v", i, err)
		}
		checkBitIdentical(t, "degraded", i, resp.Results, presp.Results)
		if resp.Stats.Degraded {
			degraded++
		}
		want := metricLinearTopK(trajs, q, t1, t2, k, MetricDTW, 0)
		for j, r := range resp.Results {
			if !r.Certified {
				continue
			}
			if j >= len(want) || want[j].id != r.TrajID ||
				math.Float64bits(want[j].d) != math.Float64bits(r.Dissim) {
				t.Fatalf("iter %d: certified rank %d (traj %d, %g) does not hold against the oracle",
					i, j, r.TrajID, r.Dissim)
			}
		}
	}
	if degraded == 0 {
		t.Fatalf("no search degraded under 1-3 node budgets across %d iterations", iters)
	}
}

// TestMetricUnsupportedKind: the MBB kinds must reject non-DISSIM
// metrics with ErrBadQuery — their geometry cannot lower-bound DTW — and
// ParseMetric must reject unknown names with ErrUnknownMetric.
func TestMetricUnsupportedKind(t *testing.T) {
	trajs := gstd.Generate(gstd.Config{NumObjects: 8, SamplesPerObject: 21, Seed: 7}).Trajs
	q := trajs[0].Clone()
	q.ID = 0
	for _, kind := range IndexKinds() {
		if kind.Metric() {
			continue
		}
		db, err := NewDB(kind, trajs)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []Metric{MetricDTW, MetricLCSS, MetricEDR} {
			_, err := db.Query(context.Background(), Request{
				Q: &q, Interval: Interval{T1: 0, T2: 1}, K: 1, Metric: m, MetricEps: 0.1,
			})
			if !errors.Is(err, ErrBadQuery) {
				t.Fatalf("%s: %s query returned %v, want ErrBadQuery", kind, m, err)
			}
			if _, err := db.Explain(context.Background(), Request{
				Q: &q, Interval: Interval{T1: 0, T2: 1}, K: 1, Metric: m, MetricEps: 0.1,
			}); !errors.Is(err, ErrBadQuery) {
				t.Fatalf("%s: %s explain returned %v, want ErrBadQuery", kind, m, err)
			}
		}
	}
	for _, name := range []string{"cosine", "frechet", "x"} {
		if _, err := ParseMetric(name); !errors.Is(err, ErrUnknownMetric) {
			t.Fatalf("ParseMetric(%q) = %v, want ErrUnknownMetric", name, err)
		}
	}
	for name, want := range map[string]Metric{
		"": MetricDISSIM, "dissim": MetricDISSIM, "dtw": MetricDTW,
		"lcss": MetricLCSS, "edr": MetricEDR, "DTW": MetricDTW,
	} {
		m, err := ParseMetric(name)
		if err != nil || m != want {
			t.Fatalf("ParseMetric(%q) = %v, %v, want %v", name, m, err, want)
		}
	}
}
