package mstsearch

import (
	"fmt"
	"os"
	"path/filepath"

	"mstsearch/internal/wal"
)

// Offline scrubbing: the manual counterpart to the replica repair loop.
// ScrubStore walks one durable store directory — every snapshot and every
// live WAL frame — re-checking the same CRCs recovery would, without
// opening, truncating, or repairing anything. `mststore verify` wraps it
// into a findings report with a non-zero exit on damage, so an operator
// can audit a directory (or a whole cluster of replica directories)
// before trusting it, exactly as the anti-entropy loop does online.

// ScrubFinding is one piece of damage the scrubber located.
type ScrubFinding struct {
	// File is the damaged file's name within the scrubbed directory.
	File string `json:"file"`
	// Problem describes the damage (CRC mismatch, bad header, …).
	Problem string `json:"problem"`
}

// ScrubReport summarizes one store directory's scrub.
type ScrubReport struct {
	// Dir is the scrubbed directory.
	Dir string `json:"dir"`
	// Snapshots counts the checkpoint snapshots verified (every epoch
	// still on disk, not just the newest).
	Snapshots int `json:"snapshots"`
	// WALSegments and WALFrames count the live epoch's verified segment
	// files and decodable records. Segments of superseded epochs are
	// garbage awaiting collection and are listed in StaleSegments but
	// not verified.
	WALSegments int `json:"wal_segments"`
	WALFrames   int `json:"wal_frames"`
	// StaleSegments counts segment files of epochs older than the newest
	// snapshot; recovery ignores them and the next open deletes them.
	StaleSegments int `json:"stale_segments,omitempty"`
	// TornTail reports a final frame cut short mid-append. Recovery
	// truncates it away, so a torn tail is recoverable, not damage.
	TornTail bool `json:"torn_tail,omitempty"`
	// Findings is the damage located; empty means the directory would
	// recover every acknowledged mutation.
	Findings []ScrubFinding `json:"findings"`
}

// Damaged reports whether the scrub located any damage.
func (r *ScrubReport) Damaged() bool { return len(r.Findings) > 0 }

// ScrubStore verifies one durable store directory offline: every
// snapshot's trailing CRC and structure (by decoding it in full, pages
// included) and every live WAL frame's checksum, classifying a torn tail
// apart from mid-log damage exactly as recovery does. The directory is
// never modified. The error return is for I/O failures walking the
// directory; damage comes back in the report.
func ScrubStore(dir string) (*ScrubReport, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, err
	}
	rep := &ScrubReport{Dir: dir, Findings: []ScrubFinding{}}

	// Snapshots: Load re-checks the trailing CRC over the whole file and
	// decodes header, pages, and trajectory store — a full-page walk.
	epochs, err := snapshotEpochs(dir)
	if err != nil {
		return nil, err
	}
	for _, ep := range epochs {
		name := snapshotName(ep)
		if _, err := Load(filepath.Join(dir, name)); err != nil {
			rep.Findings = append(rep.Findings, ScrubFinding{File: name, Problem: err.Error()})
		} else {
			rep.Snapshots++
		}
	}

	// WAL: only the live epoch — the one recovery would replay on top of
	// the newest snapshot — holds acknowledged mutations. A torn tail is
	// tolerated on the final live segment only.
	var live uint32
	if len(epochs) > 0 {
		live = epochs[0]
	}
	segs, err := wal.Segments(dir)
	if err != nil {
		return nil, err
	}
	var liveSegs []wal.SegmentInfo
	for _, s := range segs {
		if s.Epoch == live {
			liveSegs = append(liveSegs, s)
		} else {
			rep.StaleSegments++
		}
	}
	for i, s := range liveSegs {
		last := i == len(liveSegs)-1
		frames, torn, err := wal.VerifySegment(filepath.Join(dir, s.Name), s.Epoch, s.Seq, last)
		rep.WALFrames += frames
		if err != nil {
			rep.Findings = append(rep.Findings, ScrubFinding{File: s.Name, Problem: err.Error()})
			continue
		}
		rep.WALSegments++
		if torn {
			rep.TornTail = true
		}
	}
	if len(epochs) == 0 && len(liveSegs) == 0 && rep.StaleSegments == 0 {
		// Nothing recognizable: refuse to bless an arbitrary directory.
		return nil, fmt.Errorf("mstsearch: scrub: %s holds no snapshots or WAL segments", dir)
	}
	return rep, nil
}
