package mstsearch

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"mstsearch/internal/index"
	"mstsearch/internal/wal"
)

// Durable mode: OpenDurable binds a DB to a directory holding a
// checkpoint snapshot plus a write-ahead log, journaling every mutation
// before applying it.
//
// # Directory layout & recovery state machine
//
//	snapshot-<epoch>.mstdb    checkpoint snapshot (Save format)
//	wal-<epoch>-<seq>.log     WAL segments (see package wal)
//
// The epoch counts checkpoints. A fresh database starts at epoch 0 with
// no snapshot and an empty epoch-0 log. Checkpoint E → E+1 runs:
//
//	1. write snapshot-<E+1> atomically (temp file, fsync, rename,
//	   directory fsync) — it captures every mutation of epochs ≤ E;
//	2. open a fresh epoch-<E+1> log (its first segment is created and
//	   the directory fsynced before any new mutation is acknowledged);
//	3. delete the now-redundant epoch-≤E segments and older snapshots.
//
// A crash between any two steps is safe: recovery picks the
// highest-epoch loadable snapshot, replays only WAL records of that
// same epoch, and garbage-collects every older file. Each step only
// removes data that the previous step made redundant, so at every
// crash point exactly one consistent (snapshot, log-suffix) pair
// exists on disk.
//
// Replay tolerates a torn tail — the process died mid-append — by
// stopping cleanly at the first damaged frame of the final segment and
// truncating it. Damage anywhere earlier surfaces as ErrWALCorrupt:
// recovering past it would silently drop acknowledged mutations.

// ErrWALCorrupt reports mid-log damage discovered during durable
// recovery: a WAL frame failed its checksum at a position that cannot
// be a torn tail. The snapshot (if any) is intact; the caller decides
// whether to re-ingest from an upstream source or accept the snapshot
// state by deleting the damaged segments.
var ErrWALCorrupt = wal.ErrWALCorrupt

// ErrSnapshotKind reports a durable directory whose snapshot was built
// with a different index kind than OpenDurable was asked for.
var ErrSnapshotKind = errors.New("mstsearch: snapshot index kind mismatch")

// SyncMode selects when journaled mutations reach stable storage.
type SyncMode int

const (
	// SyncAlways fsyncs the log on every mutation before acknowledging
	// it: a nil return from Add/AppendSample is a durability guarantee.
	// The default.
	SyncAlways SyncMode = iota
	// SyncGrouped fsyncs every GroupEvery-th mutation: group commit.
	// A crash can lose the last unsynced group, but never reorders —
	// what survives is always a prefix of the acknowledged mutations.
	SyncGrouped
	// SyncOff never fsyncs the log; the OS flushes when it pleases.
	// Fastest, weakest: a crash loses an unbounded unsynced suffix
	// (still always a prefix of what was written).
	SyncOff
)

// String names the mode.
func (m SyncMode) String() string { return m.policy().String() }

// policy maps the public mode onto the wal package's fsync policy.
func (m SyncMode) policy() wal.Policy {
	switch m {
	case SyncGrouped:
		return wal.PolicyGrouped
	case SyncOff:
		return wal.PolicyNever
	default:
		return wal.PolicyAlways
	}
}

// DurableOptions tunes a durable DB; the zero value is a safe default
// (fsync every mutation, 1 MiB WAL segments, auto-checkpoint at 4 MiB
// of log).
type DurableOptions struct {
	// Sync is the fsync policy for journaled mutations (default
	// SyncAlways).
	Sync SyncMode
	// GroupEvery is the SyncGrouped commit interval in mutations
	// (default 8; ignored by the other modes).
	GroupEvery int
	// SegmentBytes caps one WAL segment file (default 1 MiB).
	SegmentBytes int64
	// CheckpointBytes auto-triggers Checkpoint once the log exceeds
	// this many bytes (default 4 MiB; negative disables the trigger —
	// the log then grows until a manual Checkpoint).
	CheckpointBytes int64

	// OpenFile, when non-nil, replaces WAL segment-file creation — the
	// crash-injection seam the powercut tests use (storage.PowercutBudget
	// satisfies it). Exported so the cluster layer (internal/shard) can
	// aim faults at a single shard's log through Options.ShardDurable.
	OpenFile func(path string) (wal.File, error)
}

const defaultCheckpointBytes = 4 << 20

// walOptions translates the public options into the wal package's.
func (o DurableOptions) walOptions() wal.Options {
	return wal.Options{
		Policy:       o.Sync.policy(),
		GroupEvery:   o.GroupEvery,
		SegmentBytes: o.SegmentBytes,
		OpenFile:     o.OpenFile,
	}
}

// WAL record types and payload encodings (little endian):
//
//	recAdd:    id u32, numSamples u32, then numSamples × (x, y, t) f64
//	recAppend: id u32, x f64, y f64, t f64
const (
	recAdd    uint8 = 1
	recAppend uint8 = 2
	// recKind pins the store's index kind inside the log itself (payload:
	// kind u8). It is journaled first thing after every open and epoch
	// switch, so even a young store with no snapshot yet refuses to replay
	// into the wrong index structure instead of silently rebuilding its
	// data under a different tree.
	recKind uint8 = 3
)

// encodeAddRecord serializes a full trajectory for the journal.
func encodeAddRecord(tr *Trajectory) []byte {
	buf := make([]byte, 8+24*len(tr.Samples))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(tr.ID))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(tr.Samples)))
	off := 8
	for _, s := range tr.Samples {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(s.X))
		binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(s.Y))
		binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(s.T))
		off += 24
	}
	return buf
}

// decodeAddRecord parses a recAdd payload; a malformed payload (the
// frame CRC passed, so this means a codec bug or targeted corruption)
// comes back as ErrWALCorrupt.
func decodeAddRecord(p []byte) (Trajectory, error) {
	if len(p) < 8 {
		return Trajectory{}, fmt.Errorf("%w: add record of %d bytes", ErrWALCorrupt, len(p))
	}
	n := binary.LittleEndian.Uint32(p[4:8])
	if len(p) != 8+24*int(n) {
		return Trajectory{}, fmt.Errorf("%w: add record length %d for %d samples", ErrWALCorrupt, len(p), n)
	}
	tr := Trajectory{ID: ID(binary.LittleEndian.Uint32(p[0:4])), Samples: make([]Sample, n)}
	off := 8
	for i := range tr.Samples {
		tr.Samples[i] = Sample{
			X: math.Float64frombits(binary.LittleEndian.Uint64(p[off:])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(p[off+8:])),
			T: math.Float64frombits(binary.LittleEndian.Uint64(p[off+16:])),
		}
		off += 24
	}
	return tr, nil
}

// encodeAppendRecord serializes one appended sample for the journal.
func encodeAppendRecord(id ID, s Sample) []byte {
	var buf [28]byte
	binary.LittleEndian.PutUint32(buf[0:4], uint32(id))
	binary.LittleEndian.PutUint64(buf[4:12], math.Float64bits(s.X))
	binary.LittleEndian.PutUint64(buf[12:20], math.Float64bits(s.Y))
	binary.LittleEndian.PutUint64(buf[20:28], math.Float64bits(s.T))
	return buf[:]
}

// decodeAppendRecord parses a recAppend payload.
func decodeAppendRecord(p []byte) (ID, Sample, error) {
	if len(p) != 28 {
		return 0, Sample{}, fmt.Errorf("%w: append record of %d bytes", ErrWALCorrupt, len(p))
	}
	return ID(binary.LittleEndian.Uint32(p[0:4])), Sample{
		X: math.Float64frombits(binary.LittleEndian.Uint64(p[4:12])),
		Y: math.Float64frombits(binary.LittleEndian.Uint64(p[12:20])),
		T: math.Float64frombits(binary.LittleEndian.Uint64(p[20:28])),
	}, nil
}

// snapshotName returns the checkpoint snapshot file name for an epoch.
func snapshotName(epoch uint32) string {
	return fmt.Sprintf("snapshot-%08d.mstdb", epoch)
}

// snapshotEpochs lists the epochs with a snapshot file in dir,
// descending (newest first).
func snapshotEpochs(dir string) ([]uint32, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var epochs []uint32
	for _, e := range ents {
		var ep uint32
		if _, err := fmt.Sscanf(e.Name(), "snapshot-%d.mstdb", &ep); err == nil {
			epochs = append(epochs, ep)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] > epochs[j] })
	return epochs, nil
}

// OpenDurable opens (or creates) a durable database in dir: every
// mutation is journaled to a write-ahead log before it is applied, a
// checkpoint (manual via DB.Checkpoint or automatic past
// CheckpointBytes of log) folds the log into a snapshot, and reopening
// recovers by loading the newest snapshot and replaying the log —
// tolerating a torn tail from a crash mid-write, and surfacing
// ErrWALCorrupt for damage anywhere earlier in the log.
//
// kind selects the index structure, as in Open. TB-trees and STR-trees
// loaded from a snapshot are rebuilt from the trajectory store on open
// (their bundled leaves carry build-time state a snapshot does not
// preserve), so a durable DB of any kind accepts further mutations.
//
// The returned DB serves queries like any other; call Close when done
// to flush and release the log.
func OpenDurable(dir string, kind IndexKind, o DurableOptions) (*DB, error) {
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = defaultCheckpointBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	// Recovery: the newest snapshot decides the epoch. The checkpoint
	// protocol never leaves a torn file under a snapshot name (content
	// is fsynced before the rename), so a newest snapshot that fails to
	// load is genuine on-disk corruption — refuse rather than fall back
	// to an older epoch whose log may already have been truncated,
	// which would silently drop acknowledged mutations.
	epochs, err := snapshotEpochs(dir)
	if err != nil {
		return nil, err
	}
	var (
		db    *DB
		epoch uint32
	)
	if len(epochs) > 0 {
		epoch = epochs[0]
		db, err = Load(filepath.Join(dir, snapshotName(epoch)))
		if err != nil {
			return nil, fmt.Errorf("mstsearch: durable recovery, %s: %w", snapshotName(epoch), err)
		}
		if db.kind != kind {
			return nil, fmt.Errorf("%w: directory holds %s, requested %s", ErrSnapshotKind, db.kind, kind)
		}
	} else {
		db = Open(kind)
	}

	log, records, err := wal.Open(dir, epoch, o.walOptions())
	if err != nil {
		return nil, err
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	// Snapshot-loaded TB/STR-trees are read-only; durable DBs must
	// accept mutations, so rebuild them writable before replaying.
	if epoch > 0 && kind != RTree3D {
		if err := db.recoverLocked(); err != nil {
			log.Close()
			return nil, err
		}
	}
	for i, rec := range records {
		if err := db.replayLocked(rec); err != nil {
			log.Close()
			return nil, fmt.Errorf("mstsearch: wal replay, record %d of %d: %w", i+1, len(records), err)
		}
	}
	db.wal = log
	db.dir = dir
	db.epoch = epoch
	db.dopt = o
	if err := log.Append(recKind, []byte{uint8(kind)}); err != nil {
		log.Close()
		return nil, fmt.Errorf("mstsearch: journal kind: %w", err)
	}

	// Garbage-collect files an interrupted checkpoint left behind:
	// everything below the recovered epoch is covered by its snapshot.
	if err := wal.RemoveEpochsBelow(dir, epoch); err != nil {
		log.Close()
		return nil, err
	}
	if err := removeSnapshotsBelow(dir, epoch); err != nil {
		log.Close()
		return nil, err
	}
	return db, nil
}

// replayLocked applies one journaled record. Callers must hold db.mu
// (write side).
func (db *DB) replayLocked(rec wal.Record) error {
	switch rec.Type {
	case recAdd:
		tr, err := decodeAddRecord(rec.Payload)
		if err != nil {
			return err
		}
		if _, dup := db.byID[tr.ID]; dup {
			return fmt.Errorf("%w: replayed duplicate trajectory %d", ErrWALCorrupt, tr.ID)
		}
		return db.applyAddLocked(tr)
	case recAppend:
		id, s, err := decodeAppendRecord(rec.Payload)
		if err != nil {
			return err
		}
		i, ok := db.byID[id]
		if !ok {
			return fmt.Errorf("%w: replayed sample for unknown trajectory %d", ErrWALCorrupt, id)
		}
		tr := &db.trajs[i]
		if last := tr.Samples[len(tr.Samples)-1]; s.T <= last.T {
			return fmt.Errorf("%w: replayed sample at t=%g not after trajectory end t=%g", ErrWALCorrupt, s.T, last.T)
		}
		return db.applyAppendLocked(i, s)
	case recKind:
		if len(rec.Payload) != 1 {
			return fmt.Errorf("%w: kind record of %d bytes", ErrWALCorrupt, len(rec.Payload))
		}
		if got := IndexKind(rec.Payload[0]); got != db.kind {
			return fmt.Errorf("%w: log holds %s, requested %s", ErrSnapshotKind, got, db.kind)
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown record type %d", ErrWALCorrupt, rec.Type)
	}
}

// Checkpoint folds the write-ahead log into a fresh snapshot and
// truncates it: the snapshot is written atomically and durably, a new
// log epoch starts, and the old epoch's segments are deleted. After a
// successful Checkpoint the recovery path reads the new snapshot and an
// empty log. Checkpoint takes the write lock, so it serializes against
// mutations; queries run again as soon as it returns. It is a no-op
// (with a typed error) on a non-durable DB.
func (db *DB) Checkpoint() error {
	return db.CheckpointContext(context.Background())
}

// CheckpointContext is Checkpoint under a context, so a caller (an admin
// endpoint, a maintenance cron) can put a deadline on the fold. The
// context is checked at the state-machine's step boundaries — an expired
// or canceled context aborts with an error wrapping ErrCanceled (and
// ErrDeadlineExceeded when a deadline fired) before the next step starts.
// Every prefix of the checkpoint protocol is crash-safe, so an aborted
// checkpoint leaves a recoverable directory: whatever step completed
// stands, the next checkpoint or open finishes the garbage collection.
func (db *DB) CheckpointContext(ctx context.Context) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return errNotDurable
	}
	return db.checkpointLocked(ctx)
}

// errNotDurable reports a durability operation on an in-memory DB.
var errNotDurable = errors.New("mstsearch: not a durable database (use OpenDurable)")

// ErrNotDurable reports Checkpoint on a DB that was not opened with
// OpenDurable.
var ErrNotDurable = errNotDurable

// checkpointLocked runs the checkpoint state machine, honoring ctx at
// step boundaries. Callers must hold db.mu (write side) and have
// verified db.wal != nil.
func (db *DB) checkpointLocked(ctx context.Context) error {
	next := db.epoch + 1
	if err := index.Canceled(ctx); err != nil {
		return fmt.Errorf("mstsearch: checkpoint: %w", err)
	}
	// 1. Snapshot, atomically and durably. If this fails the old
	//    snapshot + log still recover everything.
	if err := db.saveLocked(filepath.Join(db.dir, snapshotName(next))); err != nil {
		return err
	}
	if err := index.Canceled(ctx); err != nil {
		// The snapshot stands but the epoch has not switched: recovery
		// prefers snapshot-<next> with the old epoch's full log — every
		// mutation is still covered exactly once.
		return fmt.Errorf("mstsearch: checkpoint: %w", err)
	}
	// 2. Fresh log epoch. From here, recovery prefers snapshot-<next>
	//    and replays only epoch-<next> records.
	newLog, _, err := wal.Open(db.dir, next, db.dopt.walOptions())
	if err != nil {
		return err
	}
	if err := db.wal.Close(); err != nil {
		newLog.Close()
		return err
	}
	db.wal = newLog
	db.epoch = next
	if err := newLog.Append(recKind, []byte{uint8(db.kind)}); err != nil {
		// The checkpoint itself succeeded (snapshot written, new epoch
		// active); the snapshot pins the kind, so recovery stays safe.
		return fmt.Errorf("mstsearch: journal kind: %w", err)
	}
	// 3. Truncate: the old epoch's segments and snapshots are garbage.
	//    A failure here leaves stale files that the next open or
	//    checkpoint garbage-collects — never an inconsistency.
	if err := wal.RemoveEpochsBelow(db.dir, next); err != nil {
		return err
	}
	return removeSnapshotsBelow(db.dir, next)
}

// maybeCheckpointLocked runs the auto-checkpoint trigger after a
// journaled mutation. Callers must hold db.mu (write side).
func (db *DB) maybeCheckpointLocked() error {
	if db.wal == nil || db.dopt.CheckpointBytes <= 0 || db.wal.Size() < db.dopt.CheckpointBytes {
		return nil
	}
	return db.checkpointLocked(context.Background())
}

// removeSnapshotsBelow deletes snapshots of epochs earlier than keep.
func removeSnapshotsBelow(dir string, keep uint32) error {
	epochs, err := snapshotEpochs(dir)
	if err != nil {
		return err
	}
	removed := false
	for _, ep := range epochs {
		if ep < keep {
			if err := os.Remove(filepath.Join(dir, snapshotName(ep))); err != nil {
				return err
			}
			removed = true
		}
	}
	if removed {
		return wal.SyncDir(dir)
	}
	return nil
}

// Close flushes and releases the write-ahead log. Further mutations
// fail; queries keep working against the in-memory state. On a
// non-durable DB Close is a no-op. Close is idempotent.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return nil
	}
	err := db.wal.Close()
	db.wal = nil
	return err
}
