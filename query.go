package mstsearch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"mstsearch/internal/baselines"
	"mstsearch/internal/geom"
	"mstsearch/internal/index"
	"mstsearch/internal/mst"
	"mstsearch/internal/topology"
)

// ErrBadWindow reports a malformed spatial window: a NaN coordinate or a
// minimum exceeding its maximum.
var ErrBadWindow = errors.New("mstsearch: malformed window")

// Window is a spatial query extent [MinX, MaxX] × [MinY, MaxY] — the typed
// replacement for the four positional floats of the legacy range and
// topology entry points.
type Window struct {
	MinX, MinY, MaxX, MaxY float64
}

// Validate reports whether the window is well-formed: no NaN coordinates
// and each minimum not exceeding its maximum. Degenerate (zero-area)
// windows are valid — a line or point query is meaningful against segment
// data.
func (w Window) Validate() error {
	for _, v := range [...]float64{w.MinX, w.MinY, w.MaxX, w.MaxY} {
		if math.IsNaN(v) {
			return fmt.Errorf("%w: NaN coordinate", ErrBadWindow)
		}
	}
	if w.MinX > w.MaxX || w.MinY > w.MaxY {
		return fmt.Errorf("%w: min exceeds max", ErrBadWindow)
	}
	return nil
}

// Interval is a closed time period [T1, T2] — the typed replacement for
// the positional (t1, t2) float pairs of the legacy entry points.
type Interval struct {
	T1, T2 float64
}

// Validate reports whether the interval is well-formed: no NaN endpoint
// and T1 <= T2. An instantaneous interval (T1 == T2) is valid for range
// and topology queries; k-MST additionally requires a positive duration,
// which the search itself enforces as ErrBadQuery.
func (iv Interval) Validate() error {
	if math.IsNaN(iv.T1) || math.IsNaN(iv.T2) {
		return fmt.Errorf("%w: NaN endpoint", ErrBadQuery)
	}
	if iv.T1 > iv.T2 {
		return fmt.Errorf("%w: interval [%g, %g] reversed", ErrBadQuery, iv.T1, iv.T2)
	}
	return nil
}

// Duration returns T2 - T1.
func (iv Interval) Duration() float64 { return iv.T2 - iv.T1 }

// MBB combines the window with a time interval into the 3D bounding box
// the index layer searches with.
func (w Window) MBB(iv Interval) MBB {
	return MBB{
		MinX: w.MinX, MinY: w.MinY, MinT: iv.T1,
		MaxX: w.MaxX, MaxY: w.MaxY, MaxT: iv.T2,
	}
}

// rect is the window as a purely spatial region (topology predicates).
func (w Window) rect() geom.Rect {
	return geom.Rect{MinX: w.MinX, MinY: w.MinY, MaxX: w.MaxX, MaxY: w.MaxY}
}

// DefaultOptions returns the recommended search options: exact §4.4
// post-refinement on, the paper's Lemma 1 trapezoid bound (Refine = 1),
// both pruning heuristics enabled, no budgets. These are exactly the
// settings the legacy KMostSimilar entry point always used.
func DefaultOptions() Options {
	return Options{ExactRefine: true, Refine: 1}
}

// Request is a k-MST query: the k stored trajectories with the smallest
// DISSIM from Q over Interval. Both Q and the answers must be defined
// throughout the period.
type Request struct {
	// Q is the query trajectory.
	Q *Trajectory
	// Interval is the query period; the search requires a positive
	// duration.
	Interval Interval
	// K is how many answers to return.
	K int
	// Metric selects the distance function. The zero value is the paper's
	// DISSIM — every index kind serves it; the baseline metrics
	// (DTW/LCSS/EDR) need distance-based pruning and are served exactly by
	// the metric (NTree) kind only. A metric the backing kind cannot serve
	// is rejected as an error wrapping ErrBadQuery.
	Metric Metric
	// MetricEps is the per-axis matching tolerance MetricLCSS and
	// MetricEDR require (must be positive for those metrics; ignored by
	// the others).
	MetricEps float64
	// Options tunes the search; use DefaultOptions() as the baseline. The
	// zero value is also valid (no exact refinement, Lemma 1 bound).
	Options Options
}

// Response carries everything one query produced.
type Response struct {
	// Results are the answers, most similar first.
	Results []Result
	// Stats is the query's work profile.
	Stats SearchStats
	// Trace summarizes the events delivered to Options.Trace; nil when the
	// query ran untraced.
	Trace *TraceSummary
}

// TraceSummary aggregates the trace events one query emitted. It is built
// by DB.Query on top of the caller's Options.Trace hook, so the caller
// sees every event and still gets the totals for free.
type TraceSummary struct {
	// Events is the total number of events delivered.
	Events int
	// ByKind counts events per kind.
	ByKind map[EventKind]int
}

// wrapTrace interposes a summary-building hook in front of the user's
// trace hook. It returns nil (and leaves o untouched) when the query runs
// untraced, so the untraced path allocates nothing.
func wrapTrace(o *Options) *TraceSummary {
	user := o.Trace
	if user == nil {
		return nil
	}
	sum := &TraceSummary{ByKind: make(map[EventKind]int)}
	o.Trace = func(ev TraceEvent) {
		sum.Events++
		sum.ByKind[ev.Kind]++
		user(ev)
	}
	return sum
}

// Query is the canonical k-MST entry point: context-first, one Request
// in, one Response out. It subsumes the legacy KMostSimilar family — a
// canceled or expired context aborts the search between node visits with
// an error wrapping ErrCanceled, Options carries every tuning knob, and
// the Response bundles results, stats, and the optional trace summary.
func (db *DB) Query(ctx context.Context, req Request) (Response, error) {
	start := time.Now()
	o := req.Options
	sum := wrapTrace(&o)
	db.mu.RLock()
	results, stats, err := db.kMostSimilarOn(ctx, db.queryPager(), req.Q, req.Interval.T1, req.Interval.T2, req.K, req.Metric, req.MetricEps, o)
	db.mu.RUnlock()
	db.finishQuery("kmst", metKMST, start, req, stats, err)
	return Response{Results: results, Stats: stats, Trace: sum}, err
}

// QueryLowerBound returns a certified lower bound on req.Metric between
// req.Q and EVERY stored trajectory over req.Interval, from a single
// root-page read — for the default DISSIM, MINDIST(q, root MBB) ·
// duration, the speed-independent OPTDISSIM bound applied to the index
// root; for the baseline metrics on a metric index, the corresponding
// root-aggregate bound. +Inf means the database provably holds no
// trajectory covering the period. A scatter-gather coordinator
// (internal/shard) calls this per shard to prune shards whose bound
// already exceeds the global k-th pessimistic bound; req.K and
// req.Options are ignored.
func (db *DB) QueryLowerBound(ctx context.Context, req Request) (float64, error) {
	if err := index.Canceled(ctx); err != nil {
		return 0, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	switch tree := db.indexOn(db.queryPager()).(type) {
	case index.MetricTree:
		return mst.MetricLowerBound(tree, req.Q, req.Interval.T1, req.Interval.T2, req.Metric, req.MetricEps)
	case index.Tree:
		if req.Metric != MetricDISSIM {
			return 0, fmt.Errorf("%w: metric %s is not supported by the %s index (use an %s database)",
				ErrBadQuery, req.Metric, db.kind, NTree)
		}
		return mst.LowerBound(tree, req.Q, req.Interval.T1, req.Interval.T2)
	default:
		return 0, fmt.Errorf("mstsearch: index kind %s exposes no searchable view", db.kind)
	}
}

// QueryAuto answers the request through whichever execution plan the
// selectivity cost model predicts is cheaper: the index-backed best-first
// search when the predicted result corridor is selective, a linear scan of
// the trajectory store when the corridor spans most of the segment mass
// (the index can no longer prune, but still pays traversal overhead). The
// bool reports whether the index was used.
//
// The plan decision, the store statistics it depends on, and the query
// itself all run under one read snapshot of the store, so a concurrent
// Add/AppendSample can never make the estimator price one version of the
// data and the search run against another.
func (db *DB) QueryAuto(ctx context.Context, req Request) (Response, bool, error) {
	start := time.Now()
	o := req.Options
	sum := wrapTrace(&o)
	resp, usedIndex, err := db.queryAutoLocked(ctx, req, o)
	resp.Trace = sum
	db.finishQuery("kmst", metKMST, start, req, resp.Stats, err)
	return resp, usedIndex, err
}

// queryAutoLocked holds the read lock across plan choice and execution.
func (db *DB) queryAutoLocked(ctx context.Context, req Request, o Options) (Response, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	est, err := db.estimateQueryCostLocked(req.Q, req.Interval.T1, req.Interval.T2, req.K)
	if err != nil {
		return Response{}, false, err
	}
	// The linear-scan plan evaluates DISSIM only; a baseline-metric query
	// always runs through the index (which validates kind support).
	if req.Metric != MetricDISSIM || est.ExpectedSegments < 0.5*float64(db.numSegments()) {
		results, stats, err := db.kMostSimilarOn(ctx, db.queryPager(), req.Q, req.Interval.T1, req.Interval.T2, req.K, req.Metric, req.MetricEps, o)
		return Response{Results: results, Stats: stats}, true, err
	}
	ds, err := db.dataset()
	if err != nil {
		return Response{}, false, err
	}
	scan := baselines.LinearScanMST(ds, req.Q, req.Interval.T1, req.Interval.T2, req.K)
	out := make([]Result, len(scan))
	for i, r := range scan {
		out[i] = Result{TrajID: r.TrajID, Dissim: r.Dissim, Certified: true}
	}
	return Response{Results: out}, false, nil
}

// Range returns every stored segment intersecting the window during the
// interval — the canonical, context-first form of the legacy RangeQuery
// pair.
func (db *DB) Range(ctx context.Context, w Window, iv Interval) ([]SegmentHit, error) {
	start := time.Now()
	hits, err := db.rangeLocked(ctx, w, iv)
	db.finishAux("range", metRange, start, err)
	return hits, err
}

func (db *DB) rangeLocked(ctx context.Context, w Window, iv Interval) ([]SegmentHit, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := iv.Validate(); err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	entries, err := db.segmentsInBox(ctx, w.MBB(iv))
	if err != nil {
		return nil, err
	}
	out := make([]SegmentHit, len(entries))
	for i, e := range entries {
		out[i] = SegmentHit{
			TrajID: e.TrajID, SeqNo: e.SeqNo,
			X1: e.Seg.A.X, Y1: e.Seg.A.Y, T1: e.Seg.A.T,
			X2: e.Seg.B.X, Y2: e.Seg.B.Y, T2: e.Seg.B.T,
		}
	}
	return out, nil
}

// Nearest returns the k moving objects closest to point (x, y) at time
// instant t — the canonical, context-first form of the legacy NearestAt
// pair.
func (db *DB) Nearest(ctx context.Context, x, y, t float64, k int) ([]Neighbor, error) {
	start := time.Now()
	res, err := db.nearestLocked(ctx, x, y, t, k)
	db.finishAux("nn", metNN, start, err)
	return res, err
}

func (db *DB) nearestLocked(ctx context.Context, x, y, t float64, k int) ([]Neighbor, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	p := geom.Point{X: x, Y: y}
	var (
		res []index.NNResult
		err error
	)
	view, _ := db.view()
	if tree, ok := view.(index.Tree); ok {
		res, err = index.NearestAtContext(ctx, tree, p, t, k)
	} else {
		res, err = db.scanNearest(ctx, p, t, k)
	}
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(res))
	for i, r := range res {
		out[i] = Neighbor{TrajID: r.TrajID, Dist: r.Dist}
	}
	return out, nil
}

// scanNearest answers the historical point-NN query from the store — the
// fallback for index kinds whose pages hold no segment geometry (the
// metric N-tree). The semantics mirror index.NearestAtContext exactly:
// each object is reported once at its interpolated position's distance,
// results ordered by (distance, id). Callers must hold db.mu (either
// side): it scans the trajectory store.
func (db *DB) scanNearest(ctx context.Context, p geom.Point, t float64, k int) ([]index.NNResult, error) {
	if k < 1 {
		k = 1
	}
	best := map[ID]float64{}
	for i := range db.trajs {
		if err := index.Canceled(ctx); err != nil {
			return nil, err
		}
		tr := &db.trajs[i]
		for s := 0; s < tr.NumSegments(); s++ {
			seg := tr.Segment(s)
			if t < seg.A.T || t > seg.B.T {
				continue
			}
			d := seg.At(t).Spatial().Dist(p)
			if cur, ok := best[tr.ID]; !ok || d < cur {
				best[tr.ID] = d
			}
		}
	}
	out := make([]index.NNResult, 0, len(best))
	for id, d := range best {
		out = append(out, index.NNResult{TrajID: id, Dist: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].TrajID < out[j].TrajID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// segmentsInBox returns every stored segment whose bound intersects box:
// through the index for segment-carrying kinds, by store scan for the
// metric kind. Callers must hold db.mu.
func (db *DB) segmentsInBox(ctx context.Context, box MBB) ([]index.LeafEntry, error) {
	view, _ := db.view()
	if tree, ok := view.(index.Tree); ok {
		return index.RangeSearchContext(ctx, tree, box)
	}
	var out []index.LeafEntry
	for i := range db.trajs {
		if err := index.Canceled(ctx); err != nil {
			return nil, err
		}
		tr := &db.trajs[i]
		for s := 0; s < tr.NumSegments(); s++ {
			e := index.LeafEntry{TrajID: tr.ID, SeqNo: uint32(s), Seg: tr.Segment(s)}
			if e.MBB().Intersects(box) {
				out = append(out, e)
			}
		}
	}
	return out, nil
}

// Topology classifies every stored trajectory that touches the window
// during the interval by its topological relation (enter/leave/cross/…) —
// the canonical, context-first form of the legacy TopologyQuery pair.
func (db *DB) Topology(ctx context.Context, w Window, iv Interval) ([]TopologyResult, error) {
	start := time.Now()
	res, err := db.topologyLocked(ctx, w, iv)
	db.finishAux("topology", metTopology, start, err)
	return res, err
}

func (db *DB) topologyLocked(ctx context.Context, w Window, iv Interval) ([]TopologyResult, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := iv.Validate(); err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	entries, err := db.segmentsInBox(ctx, w.MBB(iv))
	if err != nil {
		return nil, err
	}
	seen := map[ID]bool{}
	region := w.rect()
	var out []TopologyResult
	for _, e := range entries {
		if seen[e.TrajID] {
			continue
		}
		if err := index.Canceled(ctx); err != nil {
			return nil, err
		}
		seen[e.TrajID] = true
		tr := db.get(e.TrajID)
		if tr == nil {
			continue
		}
		rel, eps, ok := topology.Classify(tr, region, iv.T1, iv.T2)
		if !ok || rel == topology.Disjoint {
			continue
		}
		out = append(out, TopologyResult{
			TrajID:         e.TrajID,
			Relation:       rel.String(),
			InsideDuration: topology.InsideDuration(eps),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TrajID < out[j].TrajID })
	return out, nil
}

// Relaxed answers the Time-Relaxed MST query (the paper's §6 research
// direction): the k trajectories minimizing DISSIM over every feasible
// time shift of the query — similarity of motion regardless of when each
// object set out. Evaluated by an optimizing scan (grid + golden-section
// per candidate); trajectories shorter than the query are skipped.
// Cancellation is checked between candidate optimizations and surfaces as
// an error wrapping ErrCanceled.
func (db *DB) Relaxed(ctx context.Context, q *Trajectory, k int) ([]RelaxedResult, error) {
	start := time.Now()
	res, err := db.relaxedLocked(ctx, q, k)
	db.finishAux("relaxed", metRelaxed, start, err)
	return res, err
}

func (db *DB) relaxedLocked(ctx context.Context, q *Trajectory, k int) ([]RelaxedResult, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ds, err := db.dataset()
	if err != nil {
		return nil, err
	}
	res, err := mst.RelaxedScanContext(ctx, ds, q, k, mst.RelaxedOptions{})
	if err != nil {
		return nil, err
	}
	out := make([]RelaxedResult, len(res))
	for i, r := range res {
		out[i] = RelaxedResult{TrajID: r.TrajID, Dissim: r.Dissim, Offset: r.Offset}
	}
	return out, nil
}

// EstimateRange predicts how many segments a Range query over the window
// and interval would return, from the selectivity histogram.
func (db *DB) EstimateRange(w Window, iv Interval) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if err := iv.Validate(); err != nil {
		return 0, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	h, err := db.histogram()
	if err != nil {
		return 0, err
	}
	return h.EstimateRange(w.MBB(iv)), nil
}
