package trajectory

import (
	"fmt"
	"math"
)

// Geographic import helpers. The DISSIM metric and the index geometry are
// Euclidean; GPS data arrives in degrees. FromLatLon applies a local
// equirectangular projection — exact enough for city/metro-scale
// trajectory workloads (distance error well under 1 % within a few tens
// of kilometres of the reference point; it grows with latitude spread) —
// so imported datasets can use metres throughout.

// EarthRadiusMeters is the mean Earth radius of the projection.
const EarthRadiusMeters = 6371008.8

// GeoSample is a recorded GPS position.
type GeoSample struct {
	Lat, Lon float64 // degrees
	T        float64 // seconds (any epoch)
}

// GeoProjection fixes the reference point of a local equirectangular
// projection. All trajectories of one dataset must share a projection for
// their coordinates to be comparable.
type GeoProjection struct {
	Lat0, Lon0 float64
	cosLat0    float64
}

// NewGeoProjection creates a projection centred at (lat0, lon0) degrees.
func NewGeoProjection(lat0, lon0 float64) (*GeoProjection, error) {
	if lat0 < -90 || lat0 > 90 || lon0 < -180 || lon0 > 180 {
		return nil, fmt.Errorf("trajectory: bad reference point (%g, %g)", lat0, lon0)
	}
	return &GeoProjection{Lat0: lat0, Lon0: lon0, cosLat0: math.Cos(lat0 * math.Pi / 180)}, nil
}

// Project converts degrees to local metres (x east, y north).
func (p *GeoProjection) Project(lat, lon float64) (x, y float64) {
	x = (lon - p.Lon0) * math.Pi / 180 * EarthRadiusMeters * p.cosLat0
	y = (lat - p.Lat0) * math.Pi / 180 * EarthRadiusMeters
	return x, y
}

// Unproject converts local metres back to degrees.
func (p *GeoProjection) Unproject(x, y float64) (lat, lon float64) {
	lat = p.Lat0 + y/EarthRadiusMeters*180/math.Pi
	lon = p.Lon0 + x/(EarthRadiusMeters*p.cosLat0)*180/math.Pi
	return lat, lon
}

// FromLatLon builds a trajectory (metres, seconds) from GPS samples using
// the projection. Samples must be in strictly increasing time order; the
// result is validated.
func FromLatLon(p *GeoProjection, id ID, samples []GeoSample) (Trajectory, error) {
	tr := Trajectory{ID: id, Samples: make([]Sample, len(samples))}
	for i, g := range samples {
		x, y := p.Project(g.Lat, g.Lon)
		tr.Samples[i] = Sample{X: x, Y: y, T: g.T}
	}
	if err := tr.Validate(); err != nil {
		return Trajectory{}, err
	}
	return tr, nil
}

// HaversineMeters returns the great-circle distance between two points in
// degrees — the reference the projection is tested against.
func HaversineMeters(lat1, lon1, lat2, lon2 float64) float64 {
	const d = math.Pi / 180
	phi1, phi2 := lat1*d, lat2*d
	dphi := (lat2 - lat1) * d
	dlmb := (lon2 - lon1) * d
	a := math.Sin(dphi/2)*math.Sin(dphi/2) +
		math.Cos(phi1)*math.Cos(phi2)*math.Sin(dlmb/2)*math.Sin(dlmb/2)
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(a)))
}
