package trajectory

import (
	"bytes"
	"testing"
)

// FuzzReadCSV feeds arbitrary text to the CSV importer: it must return
// trajectories or an error, never panic, and anything it accepts must be
// valid and survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,0,0,0\n1,1,1,1\n")
	f.Add("1,0,0,0\n1,1,1,1\n2,5,5,0\n2,6,6,3\n")
	f.Add("x\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		trajs, err := ReadCSV(bytes.NewBufferString(s))
		if err != nil {
			return
		}
		for i := range trajs {
			if verr := trajs[i].Validate(); verr != nil {
				t.Fatalf("ReadCSV accepted invalid trajectory: %v", verr)
			}
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, trajs); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round-trip read failed: %v", err)
		}
		if len(again) != len(trajs) {
			t.Fatalf("round trip changed trajectory count: %d vs %d", len(again), len(trajs))
		}
	})
}
