package trajectory

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mstsearch/internal/geom"
)

func lineTraj(id ID, ts ...float64) Trajectory {
	tr := Trajectory{ID: id}
	for _, t := range ts {
		tr.Samples = append(tr.Samples, Sample{X: t, Y: 2 * t, T: t})
	}
	return tr
}

func randTraj(rng *rand.Rand, id ID, n int) Trajectory {
	tr := Trajectory{ID: id, Samples: make([]Sample, n)}
	t := rng.Float64() * 10
	x, y := rng.Float64()*100, rng.Float64()*100
	for i := 0; i < n; i++ {
		tr.Samples[i] = Sample{x, y, t}
		t += 0.1 + rng.Float64()
		x += rng.NormFloat64() * 3
		y += rng.NormFloat64() * 3
	}
	return tr
}

func TestValidate(t *testing.T) {
	good := lineTraj(1, 0, 1, 2, 3)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trajectory rejected: %v", err)
	}
	short := Trajectory{Samples: []Sample{{0, 0, 0}}}
	if err := short.Validate(); err == nil {
		t.Fatal("single-sample trajectory must be invalid")
	}
	dup := lineTraj(1, 0, 1, 1)
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate timestamps must be invalid")
	}
	bad := Trajectory{Samples: []Sample{{0, 0, 0}, {math.NaN(), 0, 1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("NaN sample must be invalid")
	}
}

func TestAtInterpolation(t *testing.T) {
	tr := lineTraj(1, 0, 10)
	p := tr.At(5)
	if p.X != 5 || p.Y != 10 || p.T != 5 {
		t.Fatalf("At(5) = %+v", p)
	}
	// Constant extrapolation outside lifespan.
	p = tr.At(-3)
	if p.X != 0 || p.T != -3 {
		t.Fatalf("At(-3) = %+v", p)
	}
	p = tr.At(20)
	if p.X != 10 || p.T != 20 {
		t.Fatalf("At(20) = %+v", p)
	}
	// At exactly a sample.
	tr = lineTraj(1, 0, 1, 2, 5)
	p = tr.At(2)
	if p.X != 2 {
		t.Fatalf("At(sample) = %+v", p)
	}
}

func TestSlice(t *testing.T) {
	tr := lineTraj(7, 0, 1, 2, 3, 4)
	s, ok := tr.Slice(0.5, 2.5)
	if !ok {
		t.Fatal("slice must succeed")
	}
	if s.StartTime() != 0.5 || s.EndTime() != 2.5 {
		t.Fatalf("slice bounds [%v,%v]", s.StartTime(), s.EndTime())
	}
	if len(s.Samples) != 4 { // 0.5, 1, 2, 2.5
		t.Fatalf("slice has %d samples: %+v", len(s.Samples), s.Samples)
	}
	if s.ID != 7 {
		t.Fatal("slice must keep ID")
	}
	if _, ok := tr.Slice(9, 10); ok {
		t.Fatal("slice outside lifespan must fail")
	}
	if _, ok := tr.Slice(2, 2); ok {
		t.Fatal("empty window must fail")
	}
	// Window larger than lifespan clips to it.
	s, ok = tr.Slice(-5, 50)
	if !ok || s.StartTime() != 0 || s.EndTime() != 4 {
		t.Fatalf("clipped slice [%v,%v] ok=%v", s.StartTime(), s.EndTime(), ok)
	}
}

func TestBoundsAndLength(t *testing.T) {
	tr := lineTraj(1, 0, 1, 2)
	b := tr.Bounds()
	if b.MinX != 0 || b.MaxX != 2 || b.MinY != 0 || b.MaxY != 4 || b.MinT != 0 || b.MaxT != 2 {
		t.Fatalf("bounds = %+v", b)
	}
	want := 2 * math.Hypot(1, 2)
	if got := tr.SpatialLength(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("length = %v want %v", got, want)
	}
	if v := tr.MaxSpeed(); math.Abs(v-math.Hypot(1, 2)) > 1e-12 {
		t.Fatalf("max speed = %v", v)
	}
	if v := tr.MeanSpeed(); math.Abs(v-math.Hypot(1, 2)) > 1e-12 {
		t.Fatalf("mean speed = %v", v)
	}
}

func TestCovers(t *testing.T) {
	tr := lineTraj(1, 2, 8)
	if !tr.Covers(2, 8) || !tr.Covers(3, 4) {
		t.Fatal("Covers inside lifespan")
	}
	if tr.Covers(1, 4) || tr.Covers(5, 9) {
		t.Fatal("Covers outside lifespan")
	}
}

func TestResample(t *testing.T) {
	tr := lineTraj(3, 0, 10)
	rs := tr.Resample([]float64{0, 2.5, 5, 10})
	if len(rs.Samples) != 4 || rs.Samples[1].X != 2.5 || rs.Samples[2].Y != 10 {
		t.Fatalf("resample = %+v", rs.Samples)
	}
	if rs.ID != 3 {
		t.Fatal("resample must keep ID")
	}
}

func TestForEachAlignedMergesTimestamps(t *testing.T) {
	q := lineTraj(1, 0, 4, 8)
	s := lineTraj(2, 0, 1, 2, 3, 4, 5, 6, 7, 8)
	var intervals [][2]float64
	ForEachAligned(&q, &s, 0, 8, func(qs, ts geom.Segment) bool {
		if qs.A.T != ts.A.T || qs.B.T != ts.B.T {
			t.Fatalf("segments not aligned: %+v vs %+v", qs, ts)
		}
		intervals = append(intervals, [2]float64{qs.A.T, qs.B.T})
		return true
	})
	if len(intervals) != 8 {
		t.Fatalf("want 8 merged intervals, got %d: %v", len(intervals), intervals)
	}
	// Intervals must tile [0,8] contiguously.
	if intervals[0][0] != 0 || intervals[len(intervals)-1][1] != 8 {
		t.Fatalf("intervals do not span window: %v", intervals)
	}
	for i := 1; i < len(intervals); i++ {
		if intervals[i][0] != intervals[i-1][1] {
			t.Fatalf("gap between intervals: %v", intervals)
		}
	}
}

func TestForEachAlignedRespectsWindowAndLifespans(t *testing.T) {
	q := lineTraj(1, 0, 10)
	s := lineTraj(2, 4, 20)
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	ForEachAligned(&q, &s, 2, 30, func(qs, ts geom.Segment) bool {
		lo = math.Min(lo, qs.A.T)
		hi = math.Max(hi, qs.B.T)
		return true
	})
	if lo != 4 || hi != 10 {
		t.Fatalf("aligned window [%v,%v], want [4,10]", lo, hi)
	}
	// Disjoint lifespans: callback never fires.
	u := lineTraj(3, 50, 60)
	fired := false
	ForEachAligned(&q, &u, 0, 100, func(_, _ geom.Segment) bool { fired = true; return true })
	if fired {
		t.Fatal("disjoint lifespans must not produce intervals")
	}
}

func TestForEachAlignedEarlyStop(t *testing.T) {
	q := lineTraj(1, 0, 1, 2, 3, 4)
	s := lineTraj(2, 0, 1, 2, 3, 4)
	count := 0
	ForEachAligned(&q, &s, 0, 4, func(_, _ geom.Segment) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop after 2, got %d", count)
	}
}

// Property: positions produced by alignment equal direct interpolation.
func TestForEachAlignedMatchesAt(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 100; iter++ {
		q := randTraj(rng, 1, 2+rng.Intn(30))
		s := randTraj(rng, 2, 2+rng.Intn(30))
		ForEachAligned(&q, &s, math.Inf(-1), math.Inf(1), func(qs, ts geom.Segment) bool {
			for _, tt := range []float64{qs.A.T, qs.B.T} {
				if d := qs.At(tt).Spatial().Dist(q.At(tt).Spatial()); d > 1e-9 {
					t.Fatalf("q aligned position off by %v at t=%v", d, tt)
				}
				if d := ts.At(tt).Spatial().Dist(s.At(tt).Spatial()); d > 1e-9 {
					t.Fatalf("s aligned position off by %v at t=%v", d, tt)
				}
			}
			return true
		})
	}
}

func TestDataset(t *testing.T) {
	a, b := lineTraj(1, 0, 1), lineTraj(2, 0, 2)
	d, err := NewDataset([]Trajectory{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.NumSegments() != 2 {
		t.Fatalf("len=%d segs=%d", d.Len(), d.NumSegments())
	}
	if d.Get(2) == nil || d.Get(2).ID != 2 {
		t.Fatal("Get(2) failed")
	}
	if d.Get(99) != nil {
		t.Fatal("Get(99) must be nil")
	}
	if _, err := NewDataset([]Trajectory{a, a}); err == nil {
		t.Fatal("duplicate IDs must be rejected")
	}
	if v := d.MaxSpeed(); math.Abs(v-math.Hypot(1, 2)) > 1e-12 {
		t.Fatalf("dataset max speed = %v", v)
	}
	if bb := d.Bounds(); bb.MaxT != 2 {
		t.Fatalf("dataset bounds = %+v", bb)
	}
}

func TestNormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := randTraj(rng, 5, 100)
	n := Normalize(&tr)
	st := ComputeStats(&n)
	if math.Abs(st.MeanX) > 1e-9 || math.Abs(st.MeanY) > 1e-9 {
		t.Fatalf("normalized mean = (%v,%v)", st.MeanX, st.MeanY)
	}
	if math.Abs(st.StdX-1) > 1e-9 || math.Abs(st.StdY-1) > 1e-9 {
		t.Fatalf("normalized std = (%v,%v)", st.StdX, st.StdY)
	}
	// Degenerate: constant axis is only shifted, not scaled.
	c := Trajectory{ID: 1, Samples: []Sample{{5, 1, 0}, {5, 2, 1}, {5, 3, 2}}}
	nc := Normalize(&c)
	for _, s := range nc.Samples {
		if s.X != 0 {
			t.Fatalf("constant axis should normalize to 0, got %v", s.X)
		}
	}
}

func TestMaxStdOfDataset(t *testing.T) {
	a := Trajectory{ID: 1, Samples: []Sample{{0, 0, 0}, {0, 0, 1}}}
	b := Trajectory{ID: 2, Samples: []Sample{{-10, 0, 0}, {10, 0, 1}}}
	got := MaxStdOfDataset([]Trajectory{a, b})
	if got != 10 {
		t.Fatalf("max std = %v, want 10", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var trajs []Trajectory
	for i := 0; i < 5; i++ {
		trajs = append(trajs, randTraj(rng, ID(i+1), 3+rng.Intn(20)))
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, trajs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trajs) {
		t.Fatalf("round trip lost trajectories: %d vs %d", len(got), len(trajs))
	}
	for i := range trajs {
		if got[i].ID != trajs[i].ID || len(got[i].Samples) != len(trajs[i].Samples) {
			t.Fatalf("trajectory %d mismatch", i)
		}
		for j := range trajs[i].Samples {
			if got[i].Samples[j] != trajs[i].Samples[j] {
				t.Fatalf("sample %d/%d mismatch: %+v vs %+v",
					i, j, got[i].Samples[j], trajs[i].Samples[j])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"x,1,2,3\n",
		"1,x,2,3\n",
		"1,1,x,3\n",
		"1,1,2,x\n",
		"1,1,2\n",
		"1,1,2,3\n", // single sample → Validate fails
	}
	for _, c := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("input %q must fail", c)
		}
	}
}

// Property: Slice never widens the window and keeps interpolated motion
// identical to the original within it.
func TestSliceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64, a, b float64) bool {
		frac := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0.5
			}
			return math.Abs(math.Mod(v, 1))
		}
		a, b = frac(a), frac(b)
		r := rand.New(rand.NewSource(seed))
		tr := randTraj(r, 1, 2+r.Intn(40))
		lo := tr.StartTime() + a*tr.Duration()
		hi := lo + b*(tr.EndTime()-lo)
		s, ok := tr.Slice(lo, hi)
		if !ok {
			return hi-lo < 1e-9 // only near-empty windows may fail here
		}
		if s.StartTime() < lo-1e-9 || s.EndTime() > hi+1e-9 {
			return false
		}
		for i := 0; i < 20; i++ {
			tt := lo + rng.Float64()*(hi-lo)
			if s.At(tt).Spatial().Dist(tr.At(tt).Spatial()) > 1e-9 {
				return false
			}
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
