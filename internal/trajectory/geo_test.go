package trajectory

import (
	"math"
	"math/rand"
	"testing"
)

func TestGeoProjectionRoundTrip(t *testing.T) {
	p, err := NewGeoProjection(37.97, 23.72) // Athens — the Trucks home town
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		lat := 37.97 + rng.NormFloat64()*0.3
		lon := 23.72 + rng.NormFloat64()*0.3
		x, y := p.Project(lat, lon)
		lat2, lon2 := p.Unproject(x, y)
		if math.Abs(lat-lat2) > 1e-9 || math.Abs(lon-lon2) > 1e-9 {
			t.Fatalf("round trip drifted: (%v,%v) -> (%v,%v)", lat, lon, lat2, lon2)
		}
	}
}

func TestGeoProjectionDistanceAccuracy(t *testing.T) {
	// Metro-area extent (±~25 km), the scale the projection is meant for.
	p, _ := NewGeoProjection(37.97, 23.72)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		lat1 := 37.97 + rng.NormFloat64()*0.2
		lon1 := 23.72 + rng.NormFloat64()*0.2
		lat2 := 37.97 + rng.NormFloat64()*0.2
		lon2 := 23.72 + rng.NormFloat64()*0.2
		x1, y1 := p.Project(lat1, lon1)
		x2, y2 := p.Project(lat2, lon2)
		planar := math.Hypot(x2-x1, y2-y1)
		truth := HaversineMeters(lat1, lon1, lat2, lon2)
		if truth < 100 {
			continue
		}
		if rel := math.Abs(planar-truth) / truth; rel > 0.01 {
			t.Fatalf("projection error %.3f%% at ~%.0f m", rel*100, truth)
		}
	}
}

func TestGeoProjectionValidation(t *testing.T) {
	if _, err := NewGeoProjection(95, 0); err == nil {
		t.Fatal("latitude out of range must fail")
	}
	if _, err := NewGeoProjection(0, 200); err == nil {
		t.Fatal("longitude out of range must fail")
	}
}

func TestFromLatLon(t *testing.T) {
	p, _ := NewGeoProjection(37.97, 23.72)
	samples := []GeoSample{
		{Lat: 37.97, Lon: 23.72, T: 0},
		{Lat: 37.98, Lon: 23.73, T: 60},
		{Lat: 37.99, Lon: 23.74, T: 120},
	}
	tr, err := FromLatLon(p, 7, samples)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ID != 7 || len(tr.Samples) != 3 {
		t.Fatalf("trajectory = %+v", tr)
	}
	// First sample projects to the origin.
	if tr.Samples[0].X != 0 || tr.Samples[0].Y != 0 {
		t.Fatalf("reference sample not at origin: %+v", tr.Samples[0])
	}
	// ~0.01° latitude ≈ 1.11 km north.
	if math.Abs(tr.Samples[1].Y-1112) > 10 {
		t.Fatalf("northward step = %v m, want ≈1112", tr.Samples[1].Y)
	}
	// Out-of-order times rejected via Validate.
	bad := []GeoSample{{Lat: 37.97, Lon: 23.72, T: 10}, {Lat: 37.98, Lon: 23.73, T: 5}}
	if _, err := FromLatLon(p, 8, bad); err == nil {
		t.Fatal("unsorted GPS fixes must be rejected")
	}
}

func TestHaversine(t *testing.T) {
	// Athens → Thessaloniki ≈ 300 km.
	d := HaversineMeters(37.98, 23.73, 40.64, 22.94)
	if d < 290e3 || d > 310e3 {
		t.Fatalf("Athens-Thessaloniki = %v m", d)
	}
	if HaversineMeters(10, 20, 10, 20) != 0 {
		t.Fatal("zero distance expected")
	}
}
