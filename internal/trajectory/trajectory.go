// Package trajectory defines the moving-object trajectory model used
// throughout the library: a trajectory is a time-ordered sequence of
// (x, y, t) samples with linear interpolation between consecutive samples,
// exactly as assumed by the DISSIM metric and the R-tree-like indexes.
//
// The package also provides the temporal alignment machinery (merging two
// trajectories' timelines into co-temporal segment pairs) on which the
// exact and approximate DISSIM computations are built.
package trajectory

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mstsearch/internal/geom"
)

// ID identifies a moving object / its trajectory.
type ID uint32

// Sample is one recorded position of a moving object.
type Sample struct {
	X, Y, T float64
}

// STPoint converts the sample to a geometry point.
func (s Sample) STPoint() geom.STPoint { return geom.STPoint{X: s.X, Y: s.Y, T: s.T} }

// Trajectory is a moving object's recorded history: samples strictly
// increasing in time, with linear interpolation in between. The zero value
// is an empty trajectory.
type Trajectory struct {
	ID      ID
	Samples []Sample
}

// Errors returned by Validate.
var (
	ErrTooFewSamples = errors.New("trajectory: needs at least two samples")
	ErrUnsortedTime  = errors.New("trajectory: timestamps must be strictly increasing")
	ErrNonFinite     = errors.New("trajectory: sample contains NaN or Inf")
)

// Validate checks the trajectory invariants: at least two samples,
// strictly increasing timestamps and finite coordinates.
func (tr *Trajectory) Validate() error {
	if len(tr.Samples) < 2 {
		return ErrTooFewSamples
	}
	for i, s := range tr.Samples {
		if !finite(s.X) || !finite(s.Y) || !finite(s.T) {
			return fmt.Errorf("%w: sample %d = %+v", ErrNonFinite, i, s)
		}
		if i > 0 && s.T <= tr.Samples[i-1].T {
			return fmt.Errorf("%w: sample %d (t=%g) after t=%g",
				ErrUnsortedTime, i, s.T, tr.Samples[i-1].T)
		}
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// NumSegments returns the number of linear motion segments.
func (tr *Trajectory) NumSegments() int {
	if len(tr.Samples) < 2 {
		return 0
	}
	return len(tr.Samples) - 1
}

// Segment returns the i-th motion segment (0 ≤ i < NumSegments).
func (tr *Trajectory) Segment(i int) geom.Segment {
	return geom.Segment{A: tr.Samples[i].STPoint(), B: tr.Samples[i+1].STPoint()}
}

// StartTime returns the first sample's timestamp.
func (tr *Trajectory) StartTime() float64 { return tr.Samples[0].T }

// EndTime returns the last sample's timestamp.
func (tr *Trajectory) EndTime() float64 { return tr.Samples[len(tr.Samples)-1].T }

// Duration returns EndTime − StartTime.
func (tr *Trajectory) Duration() float64 { return tr.EndTime() - tr.StartTime() }

// Covers reports whether the trajectory's lifespan contains [t1, t2].
func (tr *Trajectory) Covers(t1, t2 float64) bool {
	return len(tr.Samples) >= 2 && tr.StartTime() <= t1 && tr.EndTime() >= t2
}

// At returns the interpolated position at time t. Outside the lifespan the
// first/last position is returned (constant extrapolation), which callers
// avoid by checking Covers first.
func (tr *Trajectory) At(t float64) geom.STPoint {
	n := len(tr.Samples)
	if n == 0 {
		return geom.STPoint{T: t}
	}
	if t <= tr.Samples[0].T {
		p := tr.Samples[0].STPoint()
		p.T = t
		return p
	}
	if t >= tr.Samples[n-1].T {
		p := tr.Samples[n-1].STPoint()
		p.T = t
		return p
	}
	// Find the first sample with T > t.
	i := sort.Search(n, func(i int) bool { return tr.Samples[i].T > t })
	return geom.Lerp(tr.Samples[i-1].STPoint(), tr.Samples[i].STPoint(), t)
}

// Slice returns a new trajectory restricted to [t1, t2], interpolating the
// boundary positions. ok is false when the trajectory does not cover any
// positive part of the interval.
func (tr *Trajectory) Slice(t1, t2 float64) (Trajectory, bool) {
	if len(tr.Samples) < 2 {
		return Trajectory{ID: tr.ID}, false
	}
	lo := math.Max(t1, tr.StartTime())
	hi := math.Min(t2, tr.EndTime())
	if !(lo < hi) { // also rejects NaN windows
		return Trajectory{ID: tr.ID}, false
	}
	out := Trajectory{ID: tr.ID, Samples: make([]Sample, 0, 8)}
	p := tr.At(lo)
	out.Samples = append(out.Samples, Sample{p.X, p.Y, p.T})
	for _, s := range tr.Samples {
		if s.T > lo && s.T < hi {
			out.Samples = append(out.Samples, s)
		}
	}
	p = tr.At(hi)
	out.Samples = append(out.Samples, Sample{p.X, p.Y, p.T})
	return out, true
}

// Bounds returns the 3D minimum bounding box of the trajectory.
func (tr *Trajectory) Bounds() geom.MBB {
	b := geom.EmptyMBB()
	for i := 0; i < tr.NumSegments(); i++ {
		b = b.Expand(geom.MBBOfSegment(tr.Segment(i)))
	}
	return b
}

// SpatialLength returns the total travelled distance.
func (tr *Trajectory) SpatialLength() float64 {
	var sum float64
	for i := 1; i < len(tr.Samples); i++ {
		a, b := tr.Samples[i-1], tr.Samples[i]
		sum += math.Hypot(b.X-a.X, b.Y-a.Y)
	}
	return sum
}

// MaxSpeed returns the maximum per-segment speed (zero for degenerate
// trajectories). This feeds the Vmax of the speed-dependent pruning
// metrics.
func (tr *Trajectory) MaxSpeed() float64 {
	var v float64
	for i := 0; i < tr.NumSegments(); i++ {
		v = math.Max(v, tr.Segment(i).Speed())
	}
	return v
}

// MeanSpeed returns total distance over total duration.
func (tr *Trajectory) MeanSpeed() float64 {
	d := tr.Duration()
	if d <= 0 {
		return 0
	}
	return tr.SpatialLength() / d
}

// Resample returns a trajectory with samples at exactly the given strictly
// increasing timestamps (interpolated / constant-extrapolated), keeping the
// same ID. Used by the LCSS-I / EDR-I improved baselines.
func (tr *Trajectory) Resample(times []float64) Trajectory {
	out := Trajectory{ID: tr.ID, Samples: make([]Sample, len(times))}
	for i, t := range times {
		p := tr.At(t)
		out.Samples[i] = Sample{p.X, p.Y, p.T}
	}
	return out
}

// Timestamps returns the sample timestamps.
func (tr *Trajectory) Timestamps() []float64 {
	ts := make([]float64, len(tr.Samples))
	for i, s := range tr.Samples {
		ts[i] = s.T
	}
	return ts
}

// Clone returns a deep copy.
func (tr *Trajectory) Clone() Trajectory {
	out := Trajectory{ID: tr.ID, Samples: make([]Sample, len(tr.Samples))}
	copy(out.Samples, tr.Samples)
	return out
}

// ForEachAligned merges the timelines of q and t over the window [t1, t2]
// and invokes fn once per elementary interval with the two co-temporal
// sub-segments (identical start/end times). Intervals are emitted in
// temporal order; fn returning false stops the iteration. The window is
// intersected with both lifespans, so the callback only sees intervals
// where both objects exist.
//
// This is the alignment step that lets DISSIM handle trajectories with
// entirely different sampling rates (paper Fig. 1): every pair of
// consecutive merged timestamps yields one distance trinomial.
func ForEachAligned(q, t *Trajectory, t1, t2 float64, fn func(qs, ts geom.Segment) bool) {
	lo := math.Max(t1, math.Max(q.StartTime(), t.StartTime()))
	hi := math.Min(t2, math.Min(q.EndTime(), t.EndTime()))
	if lo >= hi {
		return
	}
	qi := sort.Search(len(q.Samples), func(i int) bool { return q.Samples[i].T > lo })
	ti := sort.Search(len(t.Samples), func(i int) bool { return t.Samples[i].T > lo })
	cur := lo
	qp, tp := q.At(lo), t.At(lo)
	for cur < hi {
		next := hi
		if qi < len(q.Samples) && q.Samples[qi].T < next {
			next = q.Samples[qi].T
		}
		if ti < len(t.Samples) && t.Samples[ti].T < next {
			next = t.Samples[ti].T
		}
		var qn, tn geom.STPoint
		if qi < len(q.Samples) && q.Samples[qi].T == next {
			qn = q.Samples[qi].STPoint()
			qi++
		} else {
			qn = q.At(next)
		}
		if ti < len(t.Samples) && t.Samples[ti].T == next {
			tn = t.Samples[ti].STPoint()
			ti++
		} else {
			tn = t.At(next)
		}
		if next > cur {
			if !fn(geom.Segment{A: qp, B: qn}, geom.Segment{A: tp, B: tn}) {
				return
			}
		}
		cur, qp, tp = next, qn, tn
	}
}

// Dataset is an in-memory collection of trajectories keyed by ID.
type Dataset struct {
	Trajs []Trajectory
	byID  map[ID]int
}

// NewDataset builds a dataset from trajectories, indexing them by ID.
// Duplicate IDs are rejected.
func NewDataset(trajs []Trajectory) (*Dataset, error) {
	d := &Dataset{Trajs: trajs, byID: make(map[ID]int, len(trajs))}
	for i := range trajs {
		if _, dup := d.byID[trajs[i].ID]; dup {
			return nil, fmt.Errorf("trajectory: duplicate id %d", trajs[i].ID)
		}
		d.byID[trajs[i].ID] = i
	}
	return d, nil
}

// Get returns the trajectory with the given ID, or nil.
func (d *Dataset) Get(id ID) *Trajectory {
	i, ok := d.byID[id]
	if !ok {
		return nil
	}
	return &d.Trajs[i]
}

// Len returns the number of trajectories.
func (d *Dataset) Len() int { return len(d.Trajs) }

// NumSegments returns the total segment count across the dataset.
func (d *Dataset) NumSegments() int {
	var n int
	for i := range d.Trajs {
		n += d.Trajs[i].NumSegments()
	}
	return n
}

// MaxSpeed returns the maximum segment speed across the dataset — the
// indexed-object half of the Vmax used by OPTDISSIM/PESDISSIM.
func (d *Dataset) MaxSpeed() float64 {
	var v float64
	for i := range d.Trajs {
		v = math.Max(v, d.Trajs[i].MaxSpeed())
	}
	return v
}

// Bounds returns the MBB of the whole dataset.
func (d *Dataset) Bounds() geom.MBB {
	b := geom.EmptyMBB()
	for i := range d.Trajs {
		b = b.Expand(d.Trajs[i].Bounds())
	}
	return b
}
