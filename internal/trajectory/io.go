package trajectory

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes trajectories as "id,x,y,t" rows (one row per sample,
// samples grouped by trajectory in temporal order).
func WriteCSV(w io.Writer, trajs []Trajectory) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	for i := range trajs {
		id := strconv.FormatUint(uint64(trajs[i].ID), 10)
		for _, s := range trajs[i].Samples {
			rec := []string{
				id,
				strconv.FormatFloat(s.X, 'g', -1, 64),
				strconv.FormatFloat(s.Y, 'g', -1, 64),
				strconv.FormatFloat(s.T, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses trajectories from "id,x,y,t" rows. Rows sharing an id are
// appended to the same trajectory in input order; each trajectory is
// validated before being returned.
func ReadCSV(r io.Reader) ([]Trajectory, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = 4
	var (
		trajs []Trajectory
		byID  = map[ID]int{}
	)
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		id64, err := strconv.ParseUint(rec[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trajectory: line %d: bad id %q: %w", line, rec[0], err)
		}
		var s Sample
		if s.X, err = strconv.ParseFloat(rec[1], 64); err != nil {
			return nil, fmt.Errorf("trajectory: line %d: bad x: %w", line, err)
		}
		if s.Y, err = strconv.ParseFloat(rec[2], 64); err != nil {
			return nil, fmt.Errorf("trajectory: line %d: bad y: %w", line, err)
		}
		if s.T, err = strconv.ParseFloat(rec[3], 64); err != nil {
			return nil, fmt.Errorf("trajectory: line %d: bad t: %w", line, err)
		}
		id := ID(id64)
		idx, ok := byID[id]
		if !ok {
			idx = len(trajs)
			byID[id] = idx
			trajs = append(trajs, Trajectory{ID: id})
		}
		trajs[idx].Samples = append(trajs[idx].Samples, s)
	}
	for i := range trajs {
		if err := trajs[i].Validate(); err != nil {
			return nil, fmt.Errorf("trajectory %d: %w", trajs[i].ID, err)
		}
	}
	return trajs, nil
}
