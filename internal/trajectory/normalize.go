package trajectory

import "math"

// Stats holds per-axis mean and standard deviation of a trajectory's
// sampled positions.
type Stats struct {
	MeanX, MeanY, StdX, StdY float64
}

// ComputeStats returns the spatial statistics of the trajectory.
func ComputeStats(tr *Trajectory) Stats {
	n := float64(len(tr.Samples))
	if n == 0 {
		return Stats{}
	}
	var st Stats
	for _, s := range tr.Samples {
		st.MeanX += s.X
		st.MeanY += s.Y
	}
	st.MeanX /= n
	st.MeanY /= n
	for _, s := range tr.Samples {
		st.StdX += (s.X - st.MeanX) * (s.X - st.MeanX)
		st.StdY += (s.Y - st.MeanY) * (s.Y - st.MeanY)
	}
	st.StdX = math.Sqrt(st.StdX / n)
	st.StdY = math.Sqrt(st.StdY / n)
	return st
}

// MaxStd returns the larger of the two per-axis standard deviations.
func (s Stats) MaxStd() float64 { return math.Max(s.StdX, s.StdY) }

// Normalize returns a copy of tr with each axis shifted to zero mean and
// scaled to unit standard deviation, the normalization Chen et al. apply
// before computing LCSS/EDR (paper §5.2). Axes with zero deviation are
// only shifted.
func Normalize(tr *Trajectory) Trajectory {
	st := ComputeStats(tr)
	sx, sy := st.StdX, st.StdY
	if sx == 0 {
		sx = 1
	}
	if sy == 0 {
		sy = 1
	}
	out := Trajectory{ID: tr.ID, Samples: make([]Sample, len(tr.Samples))}
	for i, s := range tr.Samples {
		out.Samples[i] = Sample{(s.X - st.MeanX) / sx, (s.Y - st.MeanY) / sy, s.T}
	}
	return out
}

// MaxStdOfDataset returns the maximum per-trajectory standard deviation
// across a dataset; a quarter of this value is the ε the paper uses for
// LCSS and EDR ("a quarter of the maximum standard deviation of
// trajectories", §5.2).
func MaxStdOfDataset(trajs []Trajectory) float64 {
	var m float64
	for i := range trajs {
		m = math.Max(m, ComputeStats(&trajs[i]).MaxStd())
	}
	return m
}
