package strtree

import (
	"math/rand"
	"testing"

	"mstsearch/internal/geom"
	"mstsearch/internal/index"
	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

func randTraj(rng *rand.Rand, id trajectory.ID, n int) trajectory.Trajectory {
	tr := trajectory.Trajectory{ID: id, Samples: make([]trajectory.Sample, n)}
	t := rng.Float64() * 10
	x, y := rng.Float64()*100, rng.Float64()*100
	for i := 0; i < n; i++ {
		tr.Samples[i] = trajectory.Sample{X: x, Y: y, T: t}
		t += 0.1 + rng.Float64()
		x += rng.NormFloat64() * 2
		y += rng.NormFloat64() * 2
	}
	return tr
}

func collectAll(t *testing.T, tr *Tree) []index.LeafEntry {
	t.Helper()
	if tr.Root() == storage.NilPage {
		return nil
	}
	var out []index.LeafEntry
	stack := []storage.PageID{tr.Root()}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := tr.ReadNode(id)
		if err != nil {
			t.Fatal(err)
		}
		if n.Leaf {
			out = append(out, n.Leaves...)
			continue
		}
		for _, c := range n.Children {
			stack = append(stack, c.Page)
		}
	}
	return out
}

func TestInsertPreservesAllEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := storage.NewFile(1024)
	tr := New(f)
	want := map[[2]uint32]bool{}
	const trajs, segs = 20, 60
	for i := 0; i < trajs; i++ {
		traj := randTraj(rng, trajectory.ID(i+1), segs+1)
		if err := tr.InsertTrajectory(&traj); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < segs; s++ {
			want[[2]uint32{uint32(traj.ID), uint32(s)}] = true
		}
	}
	cnt, err := tr.CheckInvariants()
	if err != nil {
		t.Fatal(err)
	}
	if cnt != trajs*segs {
		t.Fatalf("entries = %d, want %d", cnt, trajs*segs)
	}
	for _, e := range collectAll(t, tr) {
		key := [2]uint32{uint32(e.TrajID), e.SeqNo}
		if !want[key] {
			t.Fatalf("unexpected or duplicate entry %+v", e)
		}
		delete(want, key)
	}
	if len(want) != 0 {
		t.Fatalf("%d entries missing", len(want))
	}
}

func TestInterleavedInsertion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := storage.NewFile(1024)
	tr := New(f)
	trajs := make([]trajectory.Trajectory, 12)
	for i := range trajs {
		trajs[i] = randTraj(rng, trajectory.ID(i+1), 50)
	}
	for s := 0; s < 49; s++ {
		for i := range trajs {
			e := index.LeafEntry{TrajID: trajs[i].ID, SeqNo: uint32(s), Seg: trajs[i].Segment(s)}
			if err := tr.Insert(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	cnt, err := tr.CheckInvariants()
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 12*49 {
		t.Fatalf("entries = %d", cnt)
	}
}

// Trajectory preservation: consecutive segments of one trajectory should
// mostly share leaves, so the number of distinct (trajectory, leaf) pairs
// stays far below the segment count.
func TestTrajectoryClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := storage.NewFile(1024)
	tr := New(f)
	const n = 10
	for i := 0; i < n; i++ {
		traj := randTraj(rng, trajectory.ID(i+1), 101)
		if err := tr.InsertTrajectory(&traj); err != nil {
			t.Fatal(err)
		}
	}
	// Count leaf changes per trajectory along seq order.
	type key struct {
		id trajectory.ID
		pg storage.PageID
	}
	pairs := map[key]bool{}
	stack := []storage.PageID{tr.Root()}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node, err := tr.ReadNode(id)
		if err != nil {
			t.Fatal(err)
		}
		if node.Leaf {
			for _, e := range node.Leaves {
				pairs[key{e.TrajID, node.Page}] = true
			}
			continue
		}
		for _, c := range node.Children {
			stack = append(stack, c.Page)
		}
	}
	segsPerTraj := 100
	leafCap := index.MaxLeafEntries(1024) // 18
	minLeavesPerTraj := segsPerTraj / leafCap
	// Perfect bundling would give ~6 leaves/trajectory; allow 3× slack but
	// fail if segments scatter across tens of leaves (R-tree behaviour).
	if len(pairs) > n*minLeavesPerTraj*3 {
		t.Fatalf("poor trajectory clustering: %d (trajectory, leaf) pairs for %d trajectories",
			len(pairs), n)
	}
}

func TestOpenReadOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := storage.NewFile(1024)
	tr := New(f)
	traj := randTraj(rng, 1, 60)
	if err := tr.InsertTrajectory(&traj); err != nil {
		t.Fatal(err)
	}
	view := Open(storage.NewBufferPool(f, 4), tr.Meta())
	if _, err := view.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := view.Insert(index.LeafEntry{}); err != ErrReadOnly {
		t.Fatalf("insert into reopened tree = %v", err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(storage.NewFile(1024))
	if cnt, err := tr.CheckInvariants(); err != nil || cnt != 0 {
		t.Fatalf("empty: %d, %v", cnt, err)
	}
	if !tr.RootMBB().IsEmpty() {
		t.Fatal("empty tree must report empty MBB")
	}
}

func TestQuadraticSplitMinFill(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 100; iter++ {
		n := 10 + rng.Intn(40)
		minFill := 1 + rng.Intn(n/3)
		boxes := make([]geom.MBB, n)
		for i := range boxes {
			x, y, tt := rng.Float64()*100, rng.Float64()*100, rng.Float64()*100
			boxes[i] = geom.MBB{MinX: x, MinY: y, MinT: tt, MaxX: x + 1, MaxY: y + 1, MaxT: tt + 1}
		}
		ga, gb := quadraticSplit(boxes, minFill)
		if len(ga)+len(gb) != n || len(ga) < minFill || len(gb) < minFill {
			t.Fatalf("bad split: %d/%d of %d (min %d)", len(ga), len(gb), n, minFill)
		}
	}
}

func TestGenericRangeSearchOnSTRTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := storage.NewFile(1024)
	tr := New(f)
	var all []index.LeafEntry
	for i := 0; i < 25; i++ {
		traj := randTraj(rng, trajectory.ID(i+1), 60)
		for s := 0; s < traj.NumSegments(); s++ {
			all = append(all, index.LeafEntry{TrajID: traj.ID, SeqNo: uint32(s), Seg: traj.Segment(s)})
		}
		if err := tr.InsertTrajectory(&traj); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 30; q++ {
		box := geom.MBB{MinX: rng.Float64() * 90, MinY: rng.Float64() * 90, MinT: rng.Float64() * 30}
		box.MaxX = box.MinX + rng.Float64()*30
		box.MaxY = box.MinY + rng.Float64()*30
		box.MaxT = box.MinT + rng.Float64()*20
		got, err := index.RangeSearch(tr, box)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, e := range all {
			if e.MBB().Intersects(box) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("query %d: got %d, want %d", q, len(got), want)
		}
	}
}
