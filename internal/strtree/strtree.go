// Package strtree implements the STR-tree (Spatio-Temporal R-tree) of
// Pfoser, Jensen and Theodoridis [13] — the third structure the paper
// names among the R-tree family members its search algorithm runs on
// (§4.5). The STR-tree is a compromise between the 3D R-tree's pure
// spatial discrimination and the TB-tree's pure trajectory bundling:
//
//   - insertion first tries to place a segment in the leaf holding its
//     predecessor (trajectory preservation), falling back to Guttman's
//     least-enlargement descent when the predecessor's leaf is full or
//     unknown;
//   - leaf splits are time-oriented: entries are ordered by start time
//     and cut at the median, keeping trajectory runs together, while
//     internal splits use the quadratic algorithm.
//
// Leaves may therefore mix trajectories (unlike the TB-tree) but keep
// consecutive segments of one trajectory clustered (unlike the plain 3D
// R-tree).
package strtree

import (
	"errors"
	"fmt"
	"sort"

	"mstsearch/internal/geom"
	"mstsearch/internal/index"
	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

// Meta is the persistent root information needed to reopen a tree.
type Meta struct {
	Root   storage.PageID
	Height int
	Nodes  int
}

// Tree is an STR-tree bound to a pager. The per-trajectory tail table is
// build-time state; a reopened tree is read-only.
type Tree struct {
	pager    storage.Pager
	root     storage.PageID
	height   int
	nodes    int
	maxLeaf  int
	maxChild int

	tail     map[trajectory.ID]storage.PageID
	tailSeq  map[trajectory.ID]uint32
	parent   map[storage.PageID]storage.PageID // build-time parent pointers
	readOnly bool
}

// New creates an empty STR-tree on the pager.
func New(pager storage.Pager) *Tree {
	return &Tree{
		pager:    pager,
		root:     storage.NilPage,
		maxLeaf:  index.MaxLeafEntries(pager.PageSize()),
		maxChild: index.MaxChildEntries(pager.PageSize()),
		tail:     make(map[trajectory.ID]storage.PageID),
		tailSeq:  make(map[trajectory.ID]uint32),
		parent:   make(map[storage.PageID]storage.PageID),
	}
}

// Open reattaches a built tree to a pager for reading.
func Open(pager storage.Pager, m Meta) *Tree {
	t := New(pager)
	t.root, t.height, t.nodes = m.Root, m.Height, m.Nodes
	t.readOnly = true
	return t
}

// Meta returns the tree's reopen information.
func (t *Tree) Meta() Meta { return Meta{Root: t.root, Height: t.height, Nodes: t.nodes} }

// Root implements index.Tree.
func (t *Tree) Root() storage.PageID { return t.root }

// Height implements index.Tree.
func (t *Tree) Height() int { return t.height }

// NumNodes implements index.Tree.
func (t *Tree) NumNodes() int { return t.nodes }

// ReadNode implements index.Tree.
func (t *Tree) ReadNode(id storage.PageID) (*index.Node, error) {
	return index.ReadNode(t.pager, id)
}

// RootMBB implements index.Tree.
func (t *Tree) RootMBB() geom.MBB {
	if t.root == storage.NilPage {
		return geom.EmptyMBB()
	}
	n, err := t.ReadNode(t.root)
	if err != nil {
		return geom.EmptyMBB()
	}
	return n.MBB()
}

// ErrReadOnly is returned when inserting into a reopened tree.
var ErrReadOnly = errors.New("strtree: tree opened read-only")

func (t *Tree) allocNode(leaf bool) (*index.Node, error) {
	id, err := t.pager.Alloc()
	if err != nil {
		return nil, err
	}
	t.nodes++
	return &index.Node{
		Page:     id,
		Leaf:     leaf,
		PrevLeaf: storage.NilPage,
		NextLeaf: storage.NilPage,
	}, nil
}

func (t *Tree) write(n *index.Node) error { return index.WriteNode(t.pager, n) }

// Insert adds one segment, preferring the predecessor's leaf.
func (t *Tree) Insert(e index.LeafEntry) error {
	if t.readOnly {
		return ErrReadOnly
	}
	if t.root == storage.NilPage {
		root, err := t.allocNode(true)
		if err != nil {
			return err
		}
		root.Leaves = append(root.Leaves, e)
		t.root = root.Page
		t.height = 1
		t.setTail(e.TrajID, e.SeqNo, root.Page)
		return t.write(root)
	}

	// Trajectory-preservation fast path: append to the predecessor's leaf
	// when it has room.
	if tailID, ok := t.tail[e.TrajID]; ok {
		path, idxs, leafNode, err := t.findLeafPath(tailID)
		if err != nil {
			return err
		}
		if leafNode != nil && len(leafNode.Leaves) < t.maxLeaf {
			leafNode.Leaves = append(leafNode.Leaves, e)
			if err := t.write(leafNode); err != nil {
				return err
			}
			t.setTail(e.TrajID, e.SeqNo, leafNode.Page)
			return t.widenPath(path, idxs, e.MBB())
		}
	}

	// Spatial fallback: Guttman descent with time-oriented leaf split.
	return t.spatialInsert(e)
}

// InsertTrajectory appends every segment of tr.
func (t *Tree) InsertTrajectory(tr *trajectory.Trajectory) error {
	for i := 0; i < tr.NumSegments(); i++ {
		if err := t.Insert(index.LeafEntry{TrajID: tr.ID, SeqNo: uint32(i), Seg: tr.Segment(i)}); err != nil {
			return err
		}
	}
	return nil
}

// spatialInsert is the standard R-tree insertion used when trajectory
// preservation is impossible.
func (t *Tree) spatialInsert(e index.LeafEntry) error {
	var (
		path    []*index.Node
		pathIdx []int
	)
	cur, err := t.ReadNode(t.root)
	if err != nil {
		return err
	}
	for !cur.Leaf {
		ci := chooseSubtree(cur.Children, e.MBB())
		path = append(path, cur)
		pathIdx = append(pathIdx, ci)
		cur, err = t.ReadNode(cur.Children[ci].Page)
		if err != nil {
			return err
		}
	}

	cur.Leaves = append(cur.Leaves, e)
	var split *index.Node
	if len(cur.Leaves) > t.maxLeaf {
		split, err = t.splitLeafByTime(cur)
		if err != nil {
			return err
		}
	} else {
		if err := t.write(cur); err != nil {
			return err
		}
		t.setTail(e.TrajID, e.SeqNo, cur.Page)
	}

	for i := len(path) - 1; i >= 0; i-- {
		parent := path[i]
		parent.Children[pathIdx[i]].MBB = cur.MBB()
		if split != nil {
			parent.Children = append(parent.Children,
				index.ChildEntry{MBB: split.MBB(), Page: split.Page})
			t.parent[split.Page] = parent.Page
			split = nil
		}
		if len(parent.Children) > t.maxChild {
			split, err = t.splitInternal(parent)
			if err != nil {
				return err
			}
		} else if err := t.write(parent); err != nil {
			return err
		}
		cur = parent
	}

	if split != nil {
		newRoot, err := t.allocNode(false)
		if err != nil {
			return err
		}
		newRoot.Children = []index.ChildEntry{
			{MBB: cur.MBB(), Page: cur.Page},
			{MBB: split.MBB(), Page: split.Page},
		}
		t.parent[cur.Page] = newRoot.Page
		t.parent[split.Page] = newRoot.Page
		t.root = newRoot.Page
		t.height++
		return t.write(newRoot)
	}
	return nil
}

// splitLeafByTime performs the STR-tree's time-oriented leaf split: order
// entries by (start time, trajectory, seq) and cut at the median so the
// newest runs move to the fresh node together. The tail table is refreshed
// for every trajectory whose newest segment moved.
func (t *Tree) splitLeafByTime(n *index.Node) (*index.Node, error) {
	sort.Slice(n.Leaves, func(i, j int) bool {
		a, b := n.Leaves[i], n.Leaves[j]
		if a.Seg.A.T != b.Seg.A.T {
			return a.Seg.A.T < b.Seg.A.T
		}
		if a.TrajID != b.TrajID {
			return a.TrajID < b.TrajID
		}
		return a.SeqNo < b.SeqNo
	})
	mid := len(n.Leaves) / 2
	sib, err := t.allocNode(true)
	if err != nil {
		return nil, err
	}
	sib.Leaves = append(sib.Leaves, n.Leaves[mid:]...)
	n.Leaves = n.Leaves[:mid]
	if err := t.write(n); err != nil {
		return nil, err
	}
	if err := t.write(sib); err != nil {
		return nil, err
	}
	t.refreshTails(n)
	t.refreshTails(sib)
	return sib, nil
}

// refreshTails re-points a trajectory's tail at this leaf only when the
// leaf holds that trajectory's globally newest segment — a split of an old
// leaf must not steal the tail from the leaf actually holding the head of
// the trajectory.
func (t *Tree) refreshTails(n *index.Node) {
	for _, e := range n.Leaves {
		if e.SeqNo >= t.tailSeq[e.TrajID] {
			t.setTail(e.TrajID, e.SeqNo, n.Page)
		}
	}
}

// setTail records the leaf holding the trajectory's newest segment.
func (t *Tree) setTail(id trajectory.ID, seq uint32, page storage.PageID) {
	t.tail[id] = page
	if seq >= t.tailSeq[id] {
		t.tailSeq[id] = seq
	}
}

// splitInternal uses the quadratic split on child bounds.
func (t *Tree) splitInternal(n *index.Node) (*index.Node, error) {
	boxes := make([]geom.MBB, len(n.Children))
	for i, c := range n.Children {
		boxes[i] = c.MBB
	}
	ga, gb := quadraticSplit(boxes, max(1, t.maxChild*2/5))
	sib, err := t.allocNode(false)
	if err != nil {
		return nil, err
	}
	old := n.Children
	n.Children = pick(old, ga)
	sib.Children = pick(old, gb)
	for _, c := range sib.Children {
		t.parent[c.Page] = sib.Page // the moved subtrees change parents
	}
	if err := t.write(n); err != nil {
		return nil, err
	}
	if err := t.write(sib); err != nil {
		return nil, err
	}
	return sib, nil
}

func pick(src []index.ChildEntry, idx []int) []index.ChildEntry {
	out := make([]index.ChildEntry, len(idx))
	for i, j := range idx {
		out[i] = src[j]
	}
	return out
}

// findLeafPath locates the internal path from root to the given leaf by
// walking the build-time parent map upward and resolving each child index,
// costing O(height · fan-out) instead of a tree-wide search. Returns nil
// leafNode if the leaf is not reachable (stale pointer).
func (t *Tree) findLeafPath(leafID storage.PageID) ([]*index.Node, []int, *index.Node, error) {
	if t.root == storage.NilPage {
		return nil, nil, nil, nil
	}
	leaf, err := t.ReadNode(leafID)
	if err != nil {
		return nil, nil, nil, err
	}
	if leafID == t.root {
		return []*index.Node{}, []int{}, leaf, nil
	}
	var (
		revNodes []*index.Node
		revIdx   []int
	)
	cur := leafID
	for cur != t.root {
		p, ok := t.parent[cur]
		if !ok {
			return nil, nil, nil, nil
		}
		pn, err := t.ReadNode(p)
		if err != nil {
			return nil, nil, nil, err
		}
		ci := -1
		for i, c := range pn.Children {
			if c.Page == cur {
				ci = i
				break
			}
		}
		if ci < 0 {
			return nil, nil, nil, nil // stale parent pointer
		}
		revNodes = append(revNodes, pn)
		revIdx = append(revIdx, ci)
		cur = p
	}
	// Reverse to root-first order.
	nodes := make([]*index.Node, len(revNodes))
	idxs := make([]int, len(revIdx))
	for i := range revNodes {
		nodes[len(nodes)-1-i] = revNodes[i]
		idxs[len(idxs)-1-i] = revIdx[i]
	}
	return nodes, idxs, leaf, nil
}

// widenPath expands the MBB entries along a path to cover the grown box.
func (t *Tree) widenPath(path []*index.Node, idxs []int, grown geom.MBB) error {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		cur := n.Children[idxs[i]].MBB
		widened := cur.Expand(grown)
		if widened == cur {
			return nil
		}
		n.Children[idxs[i]].MBB = widened
		if err := t.write(n); err != nil {
			return err
		}
	}
	return nil
}

// chooseSubtree picks the least-enlargement child (ties: smaller volume).
func chooseSubtree(children []index.ChildEntry, b geom.MBB) int {
	best := 0
	bestEnl := -1.0
	bestVol := -1.0
	for i, c := range children {
		enl := c.MBB.Enlargement(b)
		vol := c.MBB.Volume()
		if bestEnl < 0 || enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = i, enl, vol
		}
	}
	return best
}

// CheckInvariants verifies containment, occupancy, uniform leaf depth and
// the node counter, returning the total entry count.
func (t *Tree) CheckInvariants() (int, error) {
	if t.root == storage.NilPage {
		if t.height != 0 || t.nodes != 0 {
			return 0, fmt.Errorf("strtree: empty tree with height %d nodes %d", t.height, t.nodes)
		}
		return 0, nil
	}
	entries, visited := 0, 0
	var walk func(id storage.PageID, depth int, bound geom.MBB) error
	walk = func(id storage.PageID, depth int, bound geom.MBB) error {
		n, err := t.ReadNode(id)
		if err != nil {
			return err
		}
		visited++
		if !bound.IsEmpty() && !bound.Contains(n.MBB()) {
			return fmt.Errorf("strtree: node %d not contained in parent entry", id)
		}
		if n.Leaf {
			if depth != t.height {
				return fmt.Errorf("strtree: leaf %d at depth %d, height %d", id, depth, t.height)
			}
			if len(n.Leaves) == 0 || len(n.Leaves) > t.maxLeaf {
				return fmt.Errorf("strtree: leaf %d occupancy %d", id, len(n.Leaves))
			}
			entries += len(n.Leaves)
			return nil
		}
		if len(n.Children) == 0 || len(n.Children) > t.maxChild {
			return fmt.Errorf("strtree: node %d occupancy %d", id, len(n.Children))
		}
		for _, c := range n.Children {
			if err := walk(c.Page, depth+1, c.MBB); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, geom.EmptyMBB()); err != nil {
		return 0, err
	}
	if visited != t.nodes {
		return 0, fmt.Errorf("strtree: visited %d nodes, counter says %d", visited, t.nodes)
	}
	return entries, nil
}

// quadraticSplit partitions boxes into two groups (Guttman quadratic, as
// in package rtree; duplicated locally to keep packages self-contained).
func quadraticSplit(boxes []geom.MBB, minFill int) (groupA, groupB []int) {
	n := len(boxes)
	sa, sb := 0, 1
	worst := -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := boxes[i].Expand(boxes[j]).Volume() - boxes[i].Volume() - boxes[j].Volume()
			if d > worst {
				worst, sa, sb = d, i, j
			}
		}
	}
	groupA = append(groupA, sa)
	groupB = append(groupB, sb)
	mbbA, mbbB := boxes[sa], boxes[sb]
	for i := 0; i < n; i++ {
		if i == sa || i == sb {
			continue
		}
		dA := mbbA.Enlargement(boxes[i])
		dB := mbbB.Enlargement(boxes[i])
		if dA < dB || (dA == dB && len(groupA) <= len(groupB)) {
			groupA = append(groupA, i)
			mbbA = mbbA.Expand(boxes[i])
		} else {
			groupB = append(groupB, i)
			mbbB = mbbB.Expand(boxes[i])
		}
	}
	// Rebalance to satisfy min fill (move last-assigned entries).
	for len(groupA) < minFill && len(groupB) > minFill {
		groupA = append(groupA, groupB[len(groupB)-1])
		groupB = groupB[:len(groupB)-1]
	}
	for len(groupB) < minFill && len(groupA) > minFill {
		groupB = append(groupB, groupA[len(groupA)-1])
		groupA = groupA[:len(groupA)-1]
	}
	return groupA, groupB
}

var _ index.Tree = (*Tree)(nil)
