package tbtree

import (
	"math/rand"
	"testing"

	"mstsearch/internal/geom"
	"mstsearch/internal/index"
	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

func randTraj(rng *rand.Rand, id trajectory.ID, n int) trajectory.Trajectory {
	tr := trajectory.Trajectory{ID: id, Samples: make([]trajectory.Sample, n)}
	t := rng.Float64() * 10
	x, y := rng.Float64()*100, rng.Float64()*100
	for i := 0; i < n; i++ {
		tr.Samples[i] = trajectory.Sample{X: x, Y: y, T: t}
		t += 0.1 + rng.Float64()
		x += rng.NormFloat64() * 2
		y += rng.NormFloat64() * 2
	}
	return tr
}

func collectAll(t *testing.T, tr *Tree) []index.LeafEntry {
	t.Helper()
	if tr.Root() == storage.NilPage {
		return nil
	}
	var out []index.LeafEntry
	stack := []storage.PageID{tr.Root()}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := tr.ReadNode(id)
		if err != nil {
			t.Fatal(err)
		}
		if n.Leaf {
			out = append(out, n.Leaves...)
			continue
		}
		for _, c := range n.Children {
			stack = append(stack, c.Page)
		}
	}
	return out
}

func TestInsertSingleTrajectory(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := storage.NewFile(1024) // leaf fanout (1024-12)/56 = 18
	tr := New(f)
	traj := randTraj(rng, 7, 100)
	if err := tr.InsertTrajectory(&traj); err != nil {
		t.Fatal(err)
	}
	cnt, err := tr.CheckInvariants()
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 99 {
		t.Fatalf("entries = %d, want 99", cnt)
	}
	// Chain reconstruction returns all segments in order.
	tail, ok := tr.TailLeaf(7)
	if !ok {
		t.Fatal("tail leaf missing")
	}
	chain, err := tr.WalkChain(tail)
	if err != nil {
		t.Fatal(err)
	}
	var seq []uint32
	for _, id := range chain {
		n, err := tr.ReadNode(id)
		if err != nil {
			t.Fatal(err)
		}
		if !n.Leaf {
			t.Fatal("chain must contain only leaves")
		}
		for _, e := range n.Leaves {
			seq = append(seq, e.SeqNo)
		}
	}
	if len(seq) != 99 {
		t.Fatalf("chain yields %d segments", len(seq))
	}
	for i, s := range seq {
		if s != uint32(i) {
			t.Fatalf("chain out of order at %d: %d", i, s)
		}
	}
}

func TestInterleavedTrajectories(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := storage.NewFile(1024)
	tr := New(f)
	trajs := make([]trajectory.Trajectory, 10)
	for i := range trajs {
		trajs[i] = randTraj(rng, trajectory.ID(i+1), 80)
	}
	// Interleave insertion round-robin, as positions would arrive live.
	for s := 0; s < 79; s++ {
		for i := range trajs {
			e := index.LeafEntry{TrajID: trajs[i].ID, SeqNo: uint32(s), Seg: trajs[i].Segment(s)}
			if err := tr.Insert(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	cnt, err := tr.CheckInvariants()
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 790 {
		t.Fatalf("entries = %d, want 790", cnt)
	}
	// Every chain must reconstruct its trajectory completely and in order.
	for i := range trajs {
		tail, ok := tr.TailLeaf(trajs[i].ID)
		if !ok {
			t.Fatalf("trajectory %d has no tail", trajs[i].ID)
		}
		chain, err := tr.WalkChain(tail)
		if err != nil {
			t.Fatal(err)
		}
		var n int
		for _, id := range chain {
			node, err := tr.ReadNode(id)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range node.Leaves {
				if e.TrajID != trajs[i].ID {
					t.Fatalf("chain of %d contains segment of %d", trajs[i].ID, e.TrajID)
				}
				if e.SeqNo != uint32(n) {
					t.Fatalf("chain of %d out of order: %d at %d", trajs[i].ID, e.SeqNo, n)
				}
				n++
			}
		}
		if n != 79 {
			t.Fatalf("chain of %d yields %d segments", trajs[i].ID, n)
		}
	}
}

func TestLeavesAreSingleTrajectory(t *testing.T) {
	// Implicitly covered by CheckInvariants; verify explicitly on a larger
	// interleaved build with tiny pages.
	rng := rand.New(rand.NewSource(3))
	f := storage.NewFile(512)
	tr := New(f)
	for i := 0; i < 30; i++ {
		traj := randTraj(rng, trajectory.ID(i+1), 40)
		if err := tr.InsertTrajectory(&traj); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	all := collectAll(t, tr)
	if len(all) != 30*39 {
		t.Fatalf("total entries = %d", len(all))
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := storage.NewFile(1024)
	tr := New(f)
	var all []index.LeafEntry
	for i := 0; i < 25; i++ {
		traj := randTraj(rng, trajectory.ID(i+1), 60)
		for s := 0; s < traj.NumSegments(); s++ {
			all = append(all, index.LeafEntry{TrajID: traj.ID, SeqNo: uint32(s), Seg: traj.Segment(s)})
		}
		if err := tr.InsertTrajectory(&traj); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 30; q++ {
		box := geom.MBB{MinX: rng.Float64() * 90, MinY: rng.Float64() * 90, MinT: rng.Float64() * 30}
		box.MaxX = box.MinX + rng.Float64()*30
		box.MaxY = box.MinY + rng.Float64()*30
		box.MaxT = box.MinT + rng.Float64()*20
		got, err := tr.RangeSearch(box)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, e := range all {
			if e.MBB().Intersects(box) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("query %d: got %d, want %d", q, len(got), want)
		}
	}
}

func TestOpenReadOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := storage.NewFile(1024)
	tr := New(f)
	traj := randTraj(rng, 1, 50)
	if err := tr.InsertTrajectory(&traj); err != nil {
		t.Fatal(err)
	}
	bp := storage.NewBufferPool(f, 4)
	view := Open(bp, tr.Meta())
	if _, err := view.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := view.Insert(index.LeafEntry{}); err != ErrReadOnly {
		t.Fatalf("insert into reopened tree = %v, want ErrReadOnly", err)
	}
	if view.RootMBB().IsEmpty() {
		t.Fatal("reopened tree must expose the root MBB")
	}
}

func TestTBTreeDenserThanRTreeFill(t *testing.T) {
	// Append-only bundling should pack leaves essentially full for long
	// trajectories: node count ≈ segments / leaf fanout (+ internals).
	rng := rand.New(rand.NewSource(6))
	f := storage.NewFile(1024)
	tr := New(f)
	const trajLen = 200
	for i := 0; i < 10; i++ {
		traj := randTraj(rng, trajectory.ID(i+1), trajLen+1)
		if err := tr.InsertTrajectory(&traj); err != nil {
			t.Fatal(err)
		}
	}
	leafCap := index.MaxLeafEntries(1024)
	minLeaves := 10 * trajLen / leafCap
	if tr.NumNodes() > minLeaves+minLeaves/2+10 {
		t.Fatalf("TB-tree too sparse: %d nodes for ≥%d full leaves", tr.NumNodes(), minLeaves)
	}
}

func TestEmptyTree(t *testing.T) {
	f := storage.NewFile(1024)
	tr := New(f)
	if cnt, err := tr.CheckInvariants(); err != nil || cnt != 0 {
		t.Fatalf("empty invariants: %d, %v", cnt, err)
	}
	got, err := tr.RangeSearch(geom.MBB{MaxX: 1, MaxY: 1, MaxT: 1})
	if err != nil || got != nil {
		t.Fatalf("empty range search: %v, %v", got, err)
	}
	if !tr.RootMBB().IsEmpty() {
		t.Fatal("empty tree must have empty MBB")
	}
}

func BenchmarkInsertTrajectory(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	f := storage.NewFile(4096)
	tr := New(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traj := randTraj(rng, trajectory.ID(i+1), 100)
		if err := tr.InsertTrajectory(&traj); err != nil {
			b.Fatal(err)
		}
	}
}
