// Package tbtree implements the TB-tree (Trajectory-Bundle tree) of Pfoser,
// Jensen and Theodoridis [13], the second index structure of the paper's
// experimental study. It is an R-tree-like structure with two defining
// properties:
//
//   - a leaf node contains line segments of exactly one trajectory, so
//     leaves "bundle" trajectory pieces, trading spatial discrimination
//     for trajectory preservation;
//   - all leaves of one trajectory are connected in a doubly-linked list
//     (PrevLeaf/NextLeaf), making trajectory reconstruction a chain walk.
//
// Insertion appends a segment to the trajectory's newest leaf when it has
// room; otherwise a fresh leaf is started, linked into the trajectory's
// chain, and attached to the tree along the rightmost path — segments
// arrive in temporal order, so the tree grows to the "right" like a
// B⁺-tree bulk append and leaves end up fully packed (the reason TB-tree
// index sizes in Table 2 are roughly half the 3D R-tree's).
package tbtree

import (
	"errors"
	"fmt"

	"mstsearch/internal/geom"
	"mstsearch/internal/index"
	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

// Meta is the persistent root information needed to reopen a tree over a
// different pager.
type Meta struct {
	Root   storage.PageID
	Height int
	Nodes  int
}

// Tree is a TB-tree bound to a pager. The per-trajectory tail-leaf table
// and the rightmost path cache are build-time state; a reopened tree is
// read-only.
type Tree struct {
	pager    storage.Pager
	root     storage.PageID
	height   int
	nodes    int
	maxLeaf  int
	maxChild int

	// Build state.
	tail     map[trajectory.ID]storage.PageID  // newest leaf per trajectory
	parent   map[storage.PageID]storage.PageID // parent pointers for O(height) path lookup
	readOnly bool
}

// New creates an empty TB-tree on the pager.
func New(pager storage.Pager) *Tree {
	return &Tree{
		pager:    pager,
		root:     storage.NilPage,
		maxLeaf:  index.MaxLeafEntries(pager.PageSize()),
		maxChild: index.MaxChildEntries(pager.PageSize()),
		tail:     make(map[trajectory.ID]storage.PageID),
		parent:   make(map[storage.PageID]storage.PageID),
	}
}

// Open reattaches a built tree to a pager for reading.
func Open(pager storage.Pager, m Meta) *Tree {
	t := New(pager)
	t.root, t.height, t.nodes = m.Root, m.Height, m.Nodes
	t.readOnly = true
	return t
}

// Meta returns the tree's reopen information.
func (t *Tree) Meta() Meta { return Meta{Root: t.root, Height: t.height, Nodes: t.nodes} }

// Root implements index.Tree.
func (t *Tree) Root() storage.PageID { return t.root }

// Height implements index.Tree.
func (t *Tree) Height() int { return t.height }

// NumNodes implements index.Tree.
func (t *Tree) NumNodes() int { return t.nodes }

// ReadNode implements index.Tree.
func (t *Tree) ReadNode(id storage.PageID) (*index.Node, error) {
	return index.ReadNode(t.pager, id)
}

// RootMBB implements index.Tree.
func (t *Tree) RootMBB() geom.MBB {
	if t.root == storage.NilPage {
		return geom.EmptyMBB()
	}
	n, err := t.ReadNode(t.root)
	if err != nil {
		return geom.EmptyMBB()
	}
	return n.MBB()
}

// ErrReadOnly is returned when inserting into a reopened tree.
var ErrReadOnly = errors.New("tbtree: tree opened read-only")

func (t *Tree) allocNode(leaf bool) (*index.Node, error) {
	id, err := t.pager.Alloc()
	if err != nil {
		return nil, err
	}
	t.nodes++
	return &index.Node{
		Page:     id,
		Leaf:     leaf,
		PrevLeaf: storage.NilPage,
		NextLeaf: storage.NilPage,
	}, nil
}

func (t *Tree) write(n *index.Node) error { return index.WriteNode(t.pager, n) }

// Insert appends one segment. Segments of each trajectory must arrive in
// temporal order (their natural order); interleaving different
// trajectories is fine.
func (t *Tree) Insert(e index.LeafEntry) error {
	if t.readOnly {
		return ErrReadOnly
	}
	// Fast path: the trajectory's tail leaf has room.
	if tailID, ok := t.tail[e.TrajID]; ok {
		leafNode, err := t.ReadNode(tailID)
		if err != nil {
			return err
		}
		if len(leafNode.Leaves) < t.maxLeaf {
			leafNode.Leaves = append(leafNode.Leaves, e)
			if err := t.write(leafNode); err != nil {
				return err
			}
			return t.adjustRightPathOrRefind(tailID, e.MBB())
		}
		// Tail full: start a new leaf chained after it.
		newLeaf, err := t.allocNode(true)
		if err != nil {
			return err
		}
		newLeaf.Leaves = append(newLeaf.Leaves, e)
		newLeaf.PrevLeaf = tailID
		leafNode.NextLeaf = newLeaf.Page
		if err := t.write(leafNode); err != nil {
			return err
		}
		if err := t.write(newLeaf); err != nil {
			return err
		}
		t.tail[e.TrajID] = newLeaf.Page
		return t.attachLeaf(newLeaf)
	}
	// First segment of this trajectory.
	newLeaf, err := t.allocNode(true)
	if err != nil {
		return err
	}
	newLeaf.Leaves = append(newLeaf.Leaves, e)
	if err := t.write(newLeaf); err != nil {
		return err
	}
	t.tail[e.TrajID] = newLeaf.Page
	return t.attachLeaf(newLeaf)
}

// attachLeaf hooks a fresh leaf into the tree along the rightmost path.
func (t *Tree) attachLeaf(leaf *index.Node) error {
	if t.root == storage.NilPage {
		t.root = leaf.Page
		t.height = 1
		return nil
	}
	if t.height == 1 {
		// Root is a leaf: grow an internal root above both.
		oldRoot, err := t.ReadNode(t.root)
		if err != nil {
			return err
		}
		newRoot, err := t.allocNode(false)
		if err != nil {
			return err
		}
		newRoot.Children = []index.ChildEntry{
			{MBB: oldRoot.MBB(), Page: oldRoot.Page},
			{MBB: leaf.MBB(), Page: leaf.Page},
		}
		t.parent[oldRoot.Page] = newRoot.Page
		t.parent[leaf.Page] = newRoot.Page
		t.root = newRoot.Page
		t.height = 2
		return t.write(newRoot)
	}

	// Descend the rightmost path to the lowest internal level.
	path, err := t.rightmostPath()
	if err != nil {
		return err
	}
	entry := index.ChildEntry{MBB: leaf.MBB(), Page: leaf.Page}
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if len(n.Children) < t.maxChild {
			n.Children = append(n.Children, entry)
			t.parent[entry.Page] = n.Page
			if err := t.write(n); err != nil {
				return err
			}
			// Refresh ancestor MBBs for the grown subtree.
			return t.refreshPathMBBs(path[:i+1])
		}
		// Node full: start a sibling holding the carried entry and carry
		// the sibling upward.
		sib, err := t.allocNode(false)
		if err != nil {
			return err
		}
		sib.Children = []index.ChildEntry{entry}
		t.parent[entry.Page] = sib.Page
		if err := t.write(sib); err != nil {
			return err
		}
		entry = index.ChildEntry{MBB: sib.MBB(), Page: sib.Page}
	}
	// The root itself was full: grow a new root.
	newRoot, err := t.allocNode(false)
	if err != nil {
		return err
	}
	oldRootMBB := path[0].MBB()
	newRoot.Children = []index.ChildEntry{
		{MBB: oldRootMBB, Page: path[0].Page},
		entry,
	}
	t.parent[path[0].Page] = newRoot.Page
	t.parent[entry.Page] = newRoot.Page
	t.root = newRoot.Page
	t.height++
	return t.write(newRoot)
}

// rightmostPath reads the internal nodes along the rightmost spine, from
// root down to the lowest internal level.
func (t *Tree) rightmostPath() ([]*index.Node, error) {
	var path []*index.Node
	cur, err := t.ReadNode(t.root)
	if err != nil {
		return nil, err
	}
	for !cur.Leaf {
		path = append(path, cur)
		last := cur.Children[len(cur.Children)-1]
		next, err := t.ReadNode(last.Page)
		if err != nil {
			return nil, err
		}
		if next.Leaf {
			break
		}
		cur = next
	}
	return path, nil
}

// refreshPathMBBs recomputes the child-entry MBB for each step of the
// given rightmost path (bottom-up), after the bottom node changed.
func (t *Tree) refreshPathMBBs(path []*index.Node) error {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		li := len(n.Children) - 1
		child, err := t.ReadNode(n.Children[li].Page)
		if err != nil {
			return err
		}
		n.Children[li].MBB = child.MBB()
		if err := t.write(n); err != nil {
			return err
		}
	}
	return nil
}

// adjustRightPathOrRefind widens ancestor MBBs after appending to the
// trajectory's tail leaf. The tail leaf is almost always on (or near) the
// rightmost path; when it is not, locate it by search and widen that path
// instead.
func (t *Tree) adjustRightPathOrRefind(leafID storage.PageID, grown geom.MBB) error {
	path, idxs, err := t.findLeafPath(leafID)
	if err != nil {
		return err
	}
	if path == nil {
		return fmt.Errorf("tbtree: leaf %d not reachable from root", leafID)
	}
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		cur := n.Children[idxs[i]].MBB
		widened := cur.Expand(grown)
		if widened == cur {
			return nil // ancestors already cover the new entry
		}
		n.Children[idxs[i]].MBB = widened
		if err := t.write(n); err != nil {
			return err
		}
	}
	return nil
}

// findLeafPath locates the internal path from root to the given leaf by
// walking the build-time parent map upward (O(height · fan-out)), so tail
// appends stay cheap even when many trajectories interleave and tails
// scatter away from the rightmost spine. Returns parallel slices of nodes
// and child indexes.
func (t *Tree) findLeafPath(leafID storage.PageID) ([]*index.Node, []int, error) {
	if t.root == storage.NilPage {
		return nil, nil, nil
	}
	if leafID == t.root {
		return []*index.Node{}, []int{}, nil
	}
	var (
		revNodes []*index.Node
		revIdx   []int
	)
	cur := leafID
	for cur != t.root {
		p, ok := t.parent[cur]
		if !ok {
			return nil, nil, nil
		}
		pn, err := t.ReadNode(p)
		if err != nil {
			return nil, nil, err
		}
		ci := -1
		for i, c := range pn.Children {
			if c.Page == cur {
				ci = i
				break
			}
		}
		if ci < 0 {
			return nil, nil, nil // stale parent pointer
		}
		revNodes = append(revNodes, pn)
		revIdx = append(revIdx, ci)
		cur = p
	}
	nodes := make([]*index.Node, len(revNodes))
	idxs := make([]int, len(revIdx))
	for i := range revNodes {
		nodes[len(nodes)-1-i] = revNodes[i]
		idxs[len(idxs)-1-i] = revIdx[i]
	}
	return nodes, idxs, nil
}

// InsertTrajectory appends every segment of tr.
func (t *Tree) InsertTrajectory(tr *trajectory.Trajectory) error {
	for i := 0; i < tr.NumSegments(); i++ {
		if err := t.Insert(index.LeafEntry{TrajID: tr.ID, SeqNo: uint32(i), Seg: tr.Segment(i)}); err != nil {
			return err
		}
	}
	return nil
}

// RangeSearch returns all leaf entries whose MBB intersects box.
func (t *Tree) RangeSearch(box geom.MBB) ([]index.LeafEntry, error) {
	if t.root == storage.NilPage {
		return nil, nil
	}
	var out []index.LeafEntry
	stack := []storage.PageID{t.root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := t.ReadNode(id)
		if err != nil {
			return nil, err
		}
		if n.Leaf {
			for _, e := range n.Leaves {
				if e.MBB().Intersects(box) {
					out = append(out, e)
				}
			}
			continue
		}
		for _, c := range n.Children {
			if c.MBB.Intersects(box) {
				stack = append(stack, c.Page)
			}
		}
	}
	return out, nil
}

// WalkChain follows the leaf chain of the trajectory whose newest leaf is
// the given page, returning leaf pages oldest-first. Used for trajectory
// reconstruction and by tests.
func (t *Tree) WalkChain(tailID storage.PageID) ([]storage.PageID, error) {
	var rev []storage.PageID
	for id := tailID; id != storage.NilPage; {
		rev = append(rev, id)
		n, err := t.ReadNode(id)
		if err != nil {
			return nil, err
		}
		id = n.PrevLeaf
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// TailLeaf returns the newest leaf of a trajectory (build-time only).
func (t *Tree) TailLeaf(id trajectory.ID) (storage.PageID, bool) {
	p, ok := t.tail[id]
	return p, ok
}

// CheckInvariants verifies the TB-tree structural invariants: parent
// entries bound their subtrees, every leaf holds segments of exactly one
// trajectory in seq order, all leaves are at the same depth, occupancy
// limits hold, and the node counter matches. Returns total leaf entries.
func (t *Tree) CheckInvariants() (int, error) {
	if t.root == storage.NilPage {
		if t.height != 0 || t.nodes != 0 {
			return 0, fmt.Errorf("tbtree: empty tree with height %d nodes %d", t.height, t.nodes)
		}
		return 0, nil
	}
	entries, visited := 0, 0
	var walk func(id storage.PageID, depth int, bound geom.MBB) error
	walk = func(id storage.PageID, depth int, bound geom.MBB) error {
		n, err := t.ReadNode(id)
		if err != nil {
			return err
		}
		visited++
		if !bound.IsEmpty() && !bound.Contains(n.MBB()) {
			return fmt.Errorf("tbtree: node %d not contained in parent entry", id)
		}
		if n.Leaf {
			if depth != t.height {
				return fmt.Errorf("tbtree: leaf %d at depth %d, height %d", id, depth, t.height)
			}
			if len(n.Leaves) == 0 || len(n.Leaves) > t.maxLeaf {
				return fmt.Errorf("tbtree: leaf %d occupancy %d", id, len(n.Leaves))
			}
			first := n.Leaves[0]
			for i, e := range n.Leaves {
				if e.TrajID != first.TrajID {
					return fmt.Errorf("tbtree: leaf %d mixes trajectories %d and %d",
						id, first.TrajID, e.TrajID)
				}
				if i > 0 && e.SeqNo != n.Leaves[i-1].SeqNo+1 {
					return fmt.Errorf("tbtree: leaf %d has non-consecutive seq", id)
				}
			}
			entries += len(n.Leaves)
			return nil
		}
		if len(n.Children) == 0 || len(n.Children) > t.maxChild {
			return fmt.Errorf("tbtree: node %d occupancy %d", id, len(n.Children))
		}
		for _, c := range n.Children {
			if err := walk(c.Page, depth+1, c.MBB); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, geom.EmptyMBB()); err != nil {
		return 0, err
	}
	if visited != t.nodes {
		return 0, fmt.Errorf("tbtree: visited %d nodes, counter says %d", visited, t.nodes)
	}
	return entries, nil
}

var _ index.Tree = (*Tree)(nil)
