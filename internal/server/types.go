package server

// Wire types of the JSON API. Every request that runs a query carries an
// optional per-request deadline in milliseconds; the server clamps it to
// its configured maximum and falls back to its default when absent, so
// every piece of work the server admits has a bounded lifetime.

// TrajectoryJSON is a trajectory on the wire: an id plus [x, y, t]
// samples with strictly increasing t.
type TrajectoryJSON struct {
	ID      uint32       `json:"id"`
	Samples [][3]float64 `json:"samples"`
}

// QueryRequest asks for the K stored trajectories most similar to Query
// over [T1, T2].
type QueryRequest struct {
	Query TrajectoryJSON `json:"query"`
	T1    float64        `json:"t1"`
	T2    float64        `json:"t2"`
	K     int            `json:"k"`
	// Metric selects the distance function: "" or "dissim" (the default),
	// or "dtw"/"lcss"/"edr" on a metric index kind. MetricEps is the
	// match threshold the LCSS and EDR metrics need.
	Metric    string  `json:"metric,omitempty"`
	MetricEps float64 `json:"metric_eps,omitempty"`
	// DeadlineMS bounds the request's lifetime in milliseconds (0 = the
	// server default; clamped to the server maximum).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// ResultJSON is one k-MST answer.
type ResultJSON struct {
	ID     uint32  `json:"id"`
	Dissim float64 `json:"dissim"`
	// Err is the certified error bound (0 for exact post-refined values).
	Err float64 `json:"err,omitempty"`
	// Certified reports whether the answer is provably in the true top-k;
	// false marks the provisional tail of a degraded response.
	Certified bool `json:"certified"`
}

// QueryStatsJSON is the per-query work profile surfaced to clients.
type QueryStatsJSON struct {
	NodesAccessed int     `json:"nodes_accessed"`
	PageReads     uint64  `json:"page_reads"`
	BufferHits    uint64  `json:"buffer_hits"`
	PruningPower  float64 `json:"pruning_power"`
}

// QueryResponse carries one k-MST query's results. Degraded reports that
// a node/IO budget ran out mid-search: the results are the best effort
// found in budget, with per-result Certified flags separating proven
// answers from provisional ones.
type QueryResponse struct {
	Results  []ResultJSON   `json:"results"`
	Degraded bool           `json:"degraded"`
	Stats    QueryStatsJSON `json:"stats"`
}

// BatchRequest answers many k-MST queries as one admission unit.
type BatchRequest struct {
	Queries []QueryRequest `json:"queries"`
	// DeadlineMS bounds the whole batch (0 = server default). Individual
	// queries may carry tighter deadlines of their own.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// BatchResponse holds one slot per submitted query, in input order.
// Failures are isolated per slot: Error is set for that slot only.
type BatchResponse struct {
	Results []BatchSlotJSON `json:"results"`
}

// BatchSlotJSON is one batch slot: a response or a typed error.
type BatchSlotJSON struct {
	Response *QueryResponse `json:"response,omitempty"`
	Error    *ErrorBody     `json:"error,omitempty"`
}

// WindowJSON is a spatial extent [MinX, MaxX] × [MinY, MaxY].
type WindowJSON struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

// RangeRequest asks for every stored segment intersecting the window
// during [T1, T2].
type RangeRequest struct {
	Window     WindowJSON `json:"window"`
	T1         float64    `json:"t1"`
	T2         float64    `json:"t2"`
	DeadlineMS int64      `json:"deadline_ms,omitempty"`
}

// SegmentJSON is one range answer: a trajectory's motion segment.
type SegmentJSON struct {
	ID    uint32     `json:"id"`
	SeqNo uint32     `json:"seq_no"`
	A     [3]float64 `json:"a"` // x, y, t
	B     [3]float64 `json:"b"`
}

// RangeResponse lists the matching segments.
type RangeResponse struct {
	Segments []SegmentJSON `json:"segments"`
}

// NearestRequest asks for the K moving objects closest to (X, Y) at
// instant T.
type NearestRequest struct {
	X          float64 `json:"x"`
	Y          float64 `json:"y"`
	T          float64 `json:"t"`
	K          int     `json:"k"`
	DeadlineMS int64   `json:"deadline_ms,omitempty"`
}

// NeighborJSON is one nearest-neighbour answer.
type NeighborJSON struct {
	ID   uint32  `json:"id"`
	Dist float64 `json:"dist"`
}

// NearestResponse lists the k nearest objects.
type NearestResponse struct {
	Neighbors []NeighborJSON `json:"neighbors"`
}

// TopologyRequest classifies every trajectory touching the window during
// [T1, T2] by its topological relation.
type TopologyRequest struct {
	Window     WindowJSON `json:"window"`
	T1         float64    `json:"t1"`
	T2         float64    `json:"t2"`
	DeadlineMS int64      `json:"deadline_ms,omitempty"`
}

// TopologyEntryJSON is one topology answer.
type TopologyEntryJSON struct {
	ID             uint32  `json:"id"`
	Relation       string  `json:"relation"`
	InsideDuration float64 `json:"inside_duration"`
}

// TopologyResponse lists the classified trajectories.
type TopologyResponse struct {
	Entries []TopologyEntryJSON `json:"entries"`
}

// IngestRequest stores one new trajectory. Ingest is not idempotent by
// itself — retrying a lost response would race a duplicate-id rejection —
// so retried ingests must carry an Idempotency-Key header, which the
// server uses to replay the original outcome instead of re-applying the
// mutation.
type IngestRequest struct {
	Trajectory TrajectoryJSON `json:"trajectory"`
	DeadlineMS int64          `json:"deadline_ms,omitempty"`
}

// IngestResponse acknowledges a stored trajectory.
type IngestResponse struct {
	ID       uint32 `json:"id"`
	Segments int    `json:"segments"`
	// Replayed reports that an Idempotency-Key matched an earlier ingest
	// and the stored outcome was returned without re-applying.
	Replayed bool `json:"replayed,omitempty"`
}

// AppendRequest extends a stored trajectory with one newer sample — the
// live-fleet location-update path.
type AppendRequest struct {
	ID         uint32     `json:"id"`
	Sample     [3]float64 `json:"sample"` // x, y, t
	DeadlineMS int64      `json:"deadline_ms,omitempty"`
}

// AppendResponse acknowledges an appended sample.
type AppendResponse struct {
	ID      uint32 `json:"id"`
	Samples int    `json:"samples"`
}

// ExplainResponse carries the EXPLAIN transcript plus the headline
// prediction-vs-actual numbers.
type ExplainResponse struct {
	Transcript        string  `json:"transcript"`
	PredictedLeafIO   float64 `json:"predicted_leaf_io"`
	ActualLeafIO      int     `json:"actual_leaf_io"`
	NodesAccessed     int     `json:"nodes_accessed"`
	PruningPower      float64 `json:"pruning_power"`
	DurationMicros    int64   `json:"duration_us"`
	Degraded          bool    `json:"degraded"`
	ResultCount       int     `json:"result_count"`
	TraceEventCount   int     `json:"trace_event_count"`
	EstimatedSegments float64 `json:"estimated_segments"`
}

// CheckpointResponse acknowledges a folded checkpoint.
type CheckpointResponse struct {
	Status string `json:"status"`
}

// HealthResponse is the /healthz body. On a replicated cluster Status
// reflects the worst replica ("ok" → every replica healthy, "degraded"
// → some replica suspect or quarantined but every shard still answers)
// and Replicas breaks the verdict down; on a single store both extras
// are absent. `?quick=1` suppresses the breakdown for probes that only
// want the bare liveness contract.
type HealthResponse struct {
	Status       string          `json:"status"`
	Trajectories int             `json:"trajectories"`
	Segments     int             `json:"segments"`
	Shards       int             `json:"shards,omitempty"`
	Replicas     []ReplicaHealth `json:"replicas,omitempty"`
}

// ReplicaHealth is one replica's row in the /healthz breakdown.
type ReplicaHealth struct {
	Shard        int    `json:"shard"`
	Replica      int    `json:"replica"`
	State        string `json:"state"`
	Trajectories int    `json:"trajectories"`
	LastError    string `json:"last_error,omitempty"`
	// LastRepair is the RFC 3339 time anti-entropy last re-seeded this
	// replica; empty if never repaired since open.
	LastRepair string `json:"last_repair,omitempty"`
}
