package server

import (
	"context"

	mstsearch "mstsearch"
)

// Engine is the storage-and-search surface the server serves. Both
// *mstsearch.DB (one node) and *shard.Cluster (a horizontally sharded
// store) satisfy it, so the same HTTP layer — admission ladder, deadline
// propagation, coalescing, envelopes — fronts either; the handlers never
// know whether a query fanned out.
type Engine interface {
	Query(ctx context.Context, req mstsearch.Request) (mstsearch.Response, error)
	KMostSimilarBatch(ctx context.Context, queries []mstsearch.BatchQuery, opts mstsearch.Options) []mstsearch.BatchResult
	Range(ctx context.Context, w mstsearch.Window, iv mstsearch.Interval) ([]mstsearch.SegmentHit, error)
	Nearest(ctx context.Context, x, y, t float64, k int) ([]mstsearch.Neighbor, error)
	Topology(ctx context.Context, w mstsearch.Window, iv mstsearch.Interval) ([]mstsearch.TopologyResult, error)
	Explain(ctx context.Context, req mstsearch.Request) (*mstsearch.ExplainReport, error)
	Add(tr mstsearch.Trajectory) error
	AppendSample(id mstsearch.ID, s mstsearch.Sample) error
	Get(id mstsearch.ID) *mstsearch.Trajectory
	Len() int
	NumSegments() int
	CheckpointContext(ctx context.Context) error
}

// Compile-time check: the single-node DB satisfies the serving surface.
var _ Engine = (*mstsearch.DB)(nil)
