package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	mstsearch "mstsearch"
	"mstsearch/internal/gstd"
	"mstsearch/internal/storage"
	"mstsearch/internal/testutil"
)

// TestChaosSoak is the serving layer's acceptance soak: a saturating mix
// of clients — normal queries, deadline storms, mid-request hang-ups,
// keyed ingest retries — against a server whose storage injects
// transient read faults and whose handlers are randomly slowed. The
// server must come out clean:
//
//   - never deadlocks (the soak completes; requests don't wedge)
//   - never leaks goroutines (testutil.CheckGoroutines)
//   - /healthz answers throughout, even at full saturation
//   - every failure is a typed, documented envelope — no bare 500 prose
//
// Run normally it soaks ~2s; under -race in CI it is the server's
// concurrency gauntlet.
func TestChaosSoak(t *testing.T) {
	testutil.CheckGoroutines(t)

	data := gstd.Generate(gstd.Config{NumObjects: 60, SamplesPerObject: 40, Seed: 11})
	db, err := mstsearch.NewDB(mstsearch.RTree3D, data.Trajs)
	if err != nil {
		t.Fatal(err)
	}
	var pagerSeq atomic.Int64
	db.SetPagerWrapper(func(p mstsearch.Pager) mstsearch.Pager {
		return &storage.FaultyPager{
			Inner:         p,
			Seed:          pagerSeq.Add(1),
			ReadFaultRate: 0.02,
			Transient:     true,
		}
	})
	db.EnableWarmBuffer()

	cfg := DefaultConfig()
	cfg.MaxConcurrent = 4
	cfg.QueueDepth = 4
	cfg.QueueWait = 20 * time.Millisecond
	cfg.DefaultDeadline = 250 * time.Millisecond
	cfg.CoalesceWindow = 2 * time.Millisecond
	cfg.Budgets = Budget{MaxNodeAccesses: 500}
	srv := New(db, cfg)

	// Chaos seam: some requests stall inside the handler, long enough to
	// saturate the limiter and overrun short deadlines.
	var hookSeq atomic.Int64
	srv.testHookPreHandle = func(route string) {
		n := hookSeq.Add(1)
		if n%7 == 0 {
			time.Sleep(time.Duration(n%4) * 10 * time.Millisecond)
		}
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	const (
		soakDuration = 2 * time.Second
		clients      = 12
	)
	ctx, cancel := context.WithTimeout(context.Background(), soakDuration)
	defer cancel()

	var (
		mu        sync.Mutex
		outcomes  = map[string]int{}
		anomalies []string
	)
	record := func(outcome string) {
		mu.Lock()
		outcomes[outcome]++
		mu.Unlock()
	}
	anomaly := func(format string, args ...any) {
		mu.Lock()
		if len(anomalies) < 20 {
			anomalies = append(anomalies, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}

	// knownCodes is the documented taxonomy; anything else is a bug.
	knownCodes := map[string]bool{
		CodeBadRequest: true, CodeNotFound: true, CodeConflict: true,
		CodeRateLimited: true, CodeOverloaded: true, CodeDeadlineExceeded: true,
		CodeCanceled: true, CodeCorrupt: true, CodeUnavailable: true,
		CodeNotDurable: true, CodeInternal: true,
	}

	// checkResponse enforces the envelope contract on one response.
	checkResponse := func(kind string, res *http.Response) {
		defer func() {
			_, _ = io.Copy(io.Discard, res.Body)
			_ = res.Body.Close()
		}()
		body, err := io.ReadAll(res.Body)
		if err != nil {
			record(kind + ".readerr") // client-side disconnects cut bodies short
			return
		}
		if res.StatusCode < 400 {
			record(kind + ".ok")
			return
		}
		var env ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
			anomaly("%s: status %d with non-envelope body %q", kind, res.StatusCode, truncate(body))
			return
		}
		if !knownCodes[env.Error.Code] {
			anomaly("%s: undocumented error code %q", kind, env.Error.Code)
			return
		}
		if env.Error.Code == CodeInternal {
			anomaly("%s: internal error leaked: %s", kind, env.Error.Message)
			return
		}
		record(kind + "." + env.Error.Code)
	}

	post := func(ctx context.Context, path string, v any, headers map[string]string) (*http.Response, error) {
		buf, _ := json.Marshal(v)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+path, bytes.NewReader(buf))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		for k, val := range headers {
			req.Header.Set(k, val)
		}
		return http.DefaultClient.Do(req)
	}

	var wg sync.WaitGroup

	// Client population 1: steady queriers, generous deadlines.
	for c := 0; c < clients/2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for ctx.Err() == nil {
				req := chaosQuery(rng, 3)
				res, err := post(ctx, "/v1/query", req, map[string]string{"X-Tenant": fmt.Sprintf("steady-%d", c)})
				if err != nil {
					record("query.transport")
					continue
				}
				checkResponse("query", res)
			}
		}(c)
	}

	// Client population 2: the deadline storm — 1 ms deadlines that will
	// mostly time out; must come back as typed 504s, never wedge.
	for c := 0; c < clients/4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + c)))
			for ctx.Err() == nil {
				req := chaosQuery(rng, 5)
				req.DeadlineMS = 1
				res, err := post(ctx, "/v1/query", req, nil)
				if err != nil {
					record("storm.transport")
					continue
				}
				checkResponse("storm", res)
			}
		}(c)
	}

	// Client population 3: hanger-uppers — cancel mid-request. The server
	// must absorb the disconnects without leaking the abandoned work.
	for c := 0; c < clients/4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + c)))
			for ctx.Err() == nil {
				reqCtx, reqCancel := context.WithTimeout(ctx, time.Duration(1+rng.Intn(10))*time.Millisecond)
				req := chaosQuery(rng, 3)
				res, err := post(reqCtx, "/v1/query", req, nil)
				if err == nil {
					checkResponse("hangup", res)
				} else {
					record("hangup.aborted")
				}
				reqCancel()
			}
		}(c)
	}

	// Client population 4: keyed ingest retries against the faulty store.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := &Client{BaseURL: ts.URL, Tenant: "writer", MaxAttempts: 3, BaseBackoff: time.Millisecond}
		id := uint32(50_000)
		for ctx.Err() == nil {
			id++
			tr := TrajectoryJSON{ID: id, Samples: [][3]float64{{0.1, 0.1, 0}, {0.2, 0.2, 0.5}, {0.3, 0.3, 1}}}
			_, err := cl.Ingest(ctx, IngestRequest{Trajectory: tr}, fmt.Sprintf("soak-%d", id))
			switch {
			case err == nil:
				record("ingest.ok")
			case ctx.Err() != nil:
				// soak over
			default:
				var apiErr *APIError
				if !errors.As(err, &apiErr) && !errors.Is(err, context.DeadlineExceeded) {
					anomaly("ingest: untyped failure: %v", err)
				} else {
					record("ingest.err")
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// The liveness probe: /healthz polled hard for the whole soak. It
	// bypasses admission, so saturation is no excuse.
	healthFailures := make(chan string, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			probeCtx, probeCancel := context.WithTimeout(context.Background(), time.Second)
			req, _ := http.NewRequestWithContext(probeCtx, http.MethodGet, ts.URL+"/healthz", nil)
			res, err := http.DefaultClient.Do(req)
			if err != nil {
				select {
				case healthFailures <- fmt.Sprintf("healthz unreachable: %v", err):
				default:
				}
			} else {
				if res.StatusCode != http.StatusOK {
					select {
					case healthFailures <- fmt.Sprintf("healthz status %d", res.StatusCode):
					default:
					}
				}
				_, _ = io.Copy(io.Discard, res.Body)
				_ = res.Body.Close()
			}
			probeCancel()
			record("health.probe")
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// The deadlock guard: if the soak wedges, fail loudly instead of
	// hanging the suite.
	doneCh := make(chan struct{})
	go func() {
		wg.Wait()
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(soakDuration + 30*time.Second):
		t.Fatal("chaos soak deadlocked: clients did not finish after the run window")
	}

	select {
	case msg := <-healthFailures:
		t.Errorf("liveness violated: %s", msg)
	default:
	}
	mu.Lock()
	defer mu.Unlock()
	for _, a := range anomalies {
		t.Errorf("anomaly: %s", a)
	}
	if outcomes["query.ok"] == 0 {
		t.Errorf("no steady query ever succeeded: %v", outcomes)
	}
	if outcomes["health.probe"] == 0 {
		t.Errorf("health prober never ran")
	}
	t.Logf("chaos outcomes: %v", outcomes)
}

// truncate clips a body for an anomaly message.
func truncate(b []byte) string {
	if len(b) > 120 {
		b = b[:120]
	}
	return string(b)
}

// chaosQuery builds a random valid query inside the GSTD unit workspace.
func chaosQuery(rng *rand.Rand, k int) QueryRequest {
	const samples = 6
	x, y := rng.Float64(), rng.Float64()
	t1 := rng.Float64() * 0.4
	span := 0.3 + rng.Float64()*0.3
	q := TrajectoryJSON{Samples: make([][3]float64, samples)}
	for i := 0; i < samples; i++ {
		x += (rng.Float64() - 0.5) * 0.05
		y += (rng.Float64() - 0.5) * 0.05
		q.Samples[i] = [3]float64{x, y, t1 + span*float64(i)/(samples-1)}
	}
	// Anchor the interval on the sample times themselves; recomputing
	// t1+span can land an ulp past the last sample and flip the query
	// into a coverage rejection.
	return QueryRequest{Query: q, T1: q.Samples[0][2], T2: q.Samples[samples-1][2], K: k}
}
