package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Client is the retrying HTTP client for the serving API. It speaks the
// error-envelope contract: typed codes become *APIError values, the
// Retry-After hint becomes the backoff floor, and jittered exponential
// backoff absorbs 429/503 storms without synchronizing clients into
// retry waves. Idempotent reads retry freely; ingest retries only when
// the caller supplies an idempotency key, because replaying an
// unacknowledged mutation without one could double-apply or trip a
// spurious duplicate-id conflict.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client
	// Tenant, when set, rides every request as the X-Tenant header.
	Tenant string
	// MaxAttempts caps tries per call, first included (default 4).
	MaxAttempts int
	// BaseBackoff seeds the exponential schedule (default 25 ms); each
	// retry waits base·2^attempt, half-jittered, floored at Retry-After.
	BaseBackoff time.Duration

	mu  sync.Mutex // lockrank: 52 — guards only the jitter source
	rng *rand.Rand // jitter source; seeded lazily
}

// APIError is a typed failure from the server: the envelope body plus
// the HTTP status it arrived under.
type APIError struct {
	Status int
	Body   ErrorBody
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s (http %d): %s", e.Body.Code, e.Status, e.Body.Message)
}

// Retryable reports whether the server marked this failure retryable.
func (e *APIError) Retryable() bool { return e.Body.Retryable }

// Query runs one k-MST query.
func (c *Client) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	var resp QueryResponse
	if err := c.call(ctx, "/v1/query", req, &resp, true, ""); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Batch runs many k-MST queries as one request.
func (c *Client) Batch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	var resp BatchResponse
	if err := c.call(ctx, "/v1/batch", req, &resp, true, ""); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Range runs a window/interval range query.
func (c *Client) Range(ctx context.Context, req RangeRequest) (*RangeResponse, error) {
	var resp RangeResponse
	if err := c.call(ctx, "/v1/range", req, &resp, true, ""); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Nearest runs a historical point-NN query.
func (c *Client) Nearest(ctx context.Context, req NearestRequest) (*NearestResponse, error) {
	var resp NearestResponse
	if err := c.call(ctx, "/v1/nearest", req, &resp, true, ""); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Topology runs a topological classification query.
func (c *Client) Topology(ctx context.Context, req TopologyRequest) (*TopologyResponse, error) {
	var resp TopologyResponse
	if err := c.call(ctx, "/v1/topology", req, &resp, true, ""); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Explain runs a query with tracing and returns the cost transcript.
func (c *Client) Explain(ctx context.Context, req QueryRequest) (*ExplainResponse, error) {
	var resp ExplainResponse
	if err := c.call(ctx, "/v1/explain", req, &resp, true, ""); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Ingest stores a new trajectory. idemKey makes retries safe: with a
// nonempty key the server replays the first outcome instead of
// re-applying, so the client retries transient failures; with an empty
// key the call never retries (a lost response would be unresolvable).
func (c *Client) Ingest(ctx context.Context, req IngestRequest, idemKey string) (*IngestResponse, error) {
	var resp IngestResponse
	if err := c.call(ctx, "/v1/ingest", req, &resp, idemKey != "", idemKey); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Append extends a stored trajectory with one sample. Append is not
// idempotent (re-appending duplicates the sample or trips the
// monotonic-time check), so it never retries.
func (c *Client) Append(ctx context.Context, req AppendRequest) (*AppendResponse, error) {
	var resp AppendResponse
	if err := c.call(ctx, "/v1/append", req, &resp, false, ""); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health fetches /healthz (no retries — health checks must report the
// truth of the moment, not of the third attempt).
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	var resp HealthResponse
	if _, err := c.roundTrip(httpReq, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// call POSTs one JSON request with the retry policy applied.
func (c *Client) call(ctx context.Context, path string, req, resp any, idempotent bool, idemKey string) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("client: encode request: %w", err)
	}
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 4
	}
	if !idempotent {
		attempts = 1
	}

	var last error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.backoff(attempt, last)); err != nil {
				return err
			}
		}
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		httpReq.Header.Set("Content-Type", "application/json")
		if c.Tenant != "" {
			httpReq.Header.Set("X-Tenant", c.Tenant)
		}
		if idemKey != "" {
			httpReq.Header.Set("Idempotency-Key", idemKey)
		}
		retryable, err := c.roundTrip(httpReq, resp)
		if err == nil {
			return nil
		}
		last = err
		if !retryable {
			return err
		}
	}
	return fmt.Errorf("client: gave up after %d attempts: %w", attempts, last)
}

// roundTrip performs one attempt, decoding success into resp and
// failure into an *APIError. The boolean reports whether a retry could
// help (transport errors and retryable envelopes).
func (c *Client) roundTrip(req *http.Request, resp any) (retryable bool, err error) {
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	res, err := hc.Do(req)
	if err != nil {
		if req.Context().Err() != nil {
			return false, req.Context().Err() // caller's deadline, not server trouble
		}
		return true, err // connection refused/reset: retryable
	}
	defer func() {
		_, _ = io.Copy(io.Discard, res.Body)
		_ = res.Body.Close()
	}()

	if res.StatusCode >= 400 {
		return c.decodeError(res, &APIError{Status: res.StatusCode})
	}
	if resp == nil {
		return false, nil
	}
	if err := json.NewDecoder(res.Body).Decode(resp); err != nil {
		return false, fmt.Errorf("client: decode response: %w", err)
	}
	return false, nil
}

// decodeError reads a failure envelope, folding the Retry-After header
// into the body's hint when the body lacks one.
func (c *Client) decodeError(res *http.Response, apiErr *APIError) (bool, error) {
	var env ErrorEnvelope
	if err := json.NewDecoder(res.Body).Decode(&env); err != nil {
		// Not our envelope (proxy in the way, truncated body): synthesize.
		env.Error = ErrorBody{
			Code:      CodeInternal,
			Message:   fmt.Sprintf("http %d with undecodable body", res.StatusCode),
			Retryable: res.StatusCode == 429 || res.StatusCode >= 500,
		}
	}
	if env.Error.RetryAfterMS == 0 {
		if ra := res.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.ParseInt(ra, 10, 64); err == nil {
				env.Error.RetryAfterMS = secs * 1000
			}
		}
	}
	// A 429 or 503 is retryable by definition — the status is the
	// server (or a proxy) saying "back off and try again". Trusting
	// only the body's verdict turned any 503 whose JSON decoded but
	// wasn't our envelope (a load balancer's `{}`) into a permanent
	// client-side failure.
	if res.StatusCode == http.StatusTooManyRequests || res.StatusCode == http.StatusServiceUnavailable {
		env.Error.Retryable = true
	}
	apiErr.Body = env.Error
	return env.Error.Retryable, apiErr
}

// backoff computes the wait before the given retry attempt: exponential
// from BaseBackoff, half-jittered, never below the server's Retry-After
// hint.
func (c *Client) backoff(attempt int, last error) time.Duration {
	base := c.BaseBackoff
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	d := base << (attempt - 1)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	// Half-jitter: [d/2, d). Full determinism would synchronize every
	// shed client into retrying at the same instant — the exact storm
	// the shedding was meant to break up.
	c.mu.Lock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.mu.Unlock()

	var apiErr *APIError
	if errors.As(last, &apiErr) && apiErr.Body.RetryAfterMS > 0 {
		if hint := time.Duration(apiErr.Body.RetryAfterMS) * time.Millisecond; d < hint {
			d = hint
		}
	}
	return d
}

// sleep waits d or until ctx dies.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
