// Package server is the serving layer of the trajectory store: a
// stdlib-only net/http JSON API over the canonical DB.Query surface,
// engineered to survive overload and faults rather than to win
// benchmarks. Every request walks the same ladder:
//
//	admission (tenant token bucket → global concurrency limiter with a
//	bounded wait queue; full queue ⇒ shed with 429 + Retry-After)
//	→ deadline (per-request or server default, clamped, propagated as a
//	  context so the engine's ErrCanceled/ErrDeadlineExceeded machinery
//	  fires mid-search)
//	→ budget (per-tenant node/IO budgets; exhaustion degrades the
//	  response — partial results, degraded: true — instead of failing)
//	→ execution (single k-MST queries coalesce onto the batch executor
//	  and its shared warm striped pool).
//
// Failures always surface as one documented JSON envelope with a typed
// code; see envelope.go for the taxonomy.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	mstsearch "mstsearch"
)

// Config sizes the server. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	// DefaultDeadline bounds requests that carry no deadline_ms field;
	// MaxDeadline clamps the ones that do.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration

	// MaxConcurrent is the global in-flight request cap; QueueDepth
	// bounds how many requests may wait for a slot, and QueueWait how
	// long any one of them waits before being shed.
	MaxConcurrent int
	QueueDepth    int
	QueueWait     time.Duration

	// TenantRPS / TenantBurst shape each tenant's token bucket
	// (requests per second and burst size; TenantRPS <= 0 disables
	// per-tenant rate limiting). Tenants are named by the X-Tenant
	// header; requests without one share the "anonymous" bucket.
	TenantRPS   float64
	TenantBurst float64

	// Budgets caps the index work any single query may do, per tenant
	// (the engine's MaxNodeAccesses/MaxIOReads graceful-degradation
	// machinery): a query over budget returns its best-effort top-k with
	// degraded: true instead of running unboundedly. TenantBudgets
	// overrides the default for named tenants, so one heavy tenant can
	// be boxed in without squeezing everyone.
	Budgets       Budget
	TenantBudgets map[string]Budget

	// CoalesceWindow/CoalesceMax tune single-query coalescing onto the
	// batch executor: queries arriving within the window (up to the max)
	// share one index snapshot and warm striped pool. A zero window
	// disables coalescing — each query runs by itself.
	CoalesceWindow time.Duration
	CoalesceMax    int

	// Parallelism is handed to the query engine (batch worker pool and
	// §4.4 refinement workers). <= 0 means GOMAXPROCS.
	Parallelism int

	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
}

// Budget is a per-query work cap (0 fields = unlimited).
type Budget struct {
	MaxNodeAccesses int
	MaxIOReads      uint64
}

// DefaultConfig returns serving defaults sized for a small host: 2 s
// default / 30 s max deadlines, 2×GOMAXPROCS concurrent requests with a
// queue of the same size, 1 ms coalescing window.
func DefaultConfig() Config {
	n := runtime.GOMAXPROCS(0)
	return Config{
		DefaultDeadline: 2 * time.Second,
		MaxDeadline:     30 * time.Second,
		MaxConcurrent:   2 * n,
		QueueDepth:      2 * n,
		QueueWait:       500 * time.Millisecond,
		TenantRPS:       0, // rate limiting off unless configured
		TenantBurst:     10,
		CoalesceWindow:  time.Millisecond,
		CoalesceMax:     16,
		MaxBodyBytes:    8 << 20,
	}
}

// Server serves the trajectory-search API over an Engine — a single DB
// (New) or any other implementation such as a shard.Cluster (NewEngine).
// Mount as an http.Handler, Close on shutdown.
type Server struct {
	db   Engine
	cfg  Config
	adm  *admission
	coal *coalescer // nil when coalescing is disabled
	mux  *http.ServeMux
	idem idemCache // ingest idempotency (Idempotency-Key replays)

	base     context.Context // done ⇒ server closing; parents all work
	cancel   context.CancelFunc
	inflight sync.WaitGroup

	closeOnce sync.Once

	// testHookPreHandle, when set, runs at the top of every admitted
	// request — the chaos tests' slow-handler injection seam.
	testHookPreHandle func(route string)
}

// New builds a Server over a single DB. The DB keeps working as a library
// alongside the server; EnableWarmBuffer is recommended before serving
// so queries share a warm pool.
func New(db *mstsearch.DB, cfg Config) *Server {
	return NewEngine(db, cfg)
}

// NewEngine builds a Server over any Engine — the entry point for serving
// a shard.Cluster (or a test double) behind the same admission ladder,
// deadline propagation, and coalescing a single DB gets.
func NewEngine(db Engine, cfg Config) *Server {
	def := DefaultConfig()
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = def.DefaultDeadline
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = def.MaxDeadline
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = def.MaxConcurrent
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = def.QueueWait
	}
	if cfg.CoalesceMax <= 0 {
		cfg.CoalesceMax = def.CoalesceMax
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = def.MaxBodyBytes
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = def.TenantBurst
	}

	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		db:     db,
		cfg:    cfg,
		adm:    newAdmission(cfg),
		base:   base,
		cancel: cancel,
	}
	if cfg.CoalesceWindow > 0 {
		o := mstsearch.DefaultOptions()
		o.Parallelism = cfg.Parallelism
		s.coal = newCoalescer(db, base, o, cfg.CoalesceWindow, cfg.CoalesceMax)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.admitted(metQuery, "query", s.handleQuery))
	mux.HandleFunc("POST /v1/batch", s.admitted(metBatch, "batch", s.handleBatch))
	mux.HandleFunc("POST /v1/range", s.admitted(metRange, "range", s.handleRange))
	mux.HandleFunc("POST /v1/nearest", s.admitted(metNearest, "nearest", s.handleNearest))
	mux.HandleFunc("POST /v1/topology", s.admitted(metTopology, "topology", s.handleTopology))
	mux.HandleFunc("POST /v1/ingest", s.admitted(metIngest, "ingest", s.handleIngest))
	mux.HandleFunc("POST /v1/append", s.admitted(metAppend, "append", s.handleAppend))
	mux.HandleFunc("POST /v1/explain", s.admitted(metExplain, "explain", s.handleExplain))
	mux.HandleFunc("POST /admin/checkpoint", s.admitted(metCheckpoint, "checkpoint", s.handleCheckpoint))
	// Health and metrics bypass admission: they must answer precisely
	// when the server is too busy to do anything else.
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	select {
	case <-s.base.Done():
		writeShaped(w, http.StatusServiceUnavailable, ErrorBody{
			Code: CodeUnavailable, Message: "server shutting down", Retryable: true, RetryAfterMS: 1000,
		})
		return
	default:
	}
	s.mux.ServeHTTP(w, r)
}

// Close stops the server: new requests are refused, in-flight requests
// are canceled through the base context and waited for, and the
// coalescer drains. Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.cancel()
		if s.coal != nil {
			s.coal.close()
		}
		s.inflight.Wait()
	})
}

// handler is an admitted route's body: runs with the request-scoped
// (deadline-bearing) context and returns either a (status, payload)
// success or an error the envelope layer types.
type handler func(ctx context.Context, tenant string, r *http.Request) (int, any, error)

// admitted wraps a handler with the full serving ladder: metrics,
// admission, deadline derivation, typed error envelopes, and inflight
// accounting for Close.
func (s *Server) admitted(m *routeMetrics, route string, h handler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.inflight.Add(1)
		defer s.inflight.Done()

		tenant := r.Header.Get("X-Tenant")
		if tenant == "" {
			tenant = "anonymous"
		}

		release, shed := s.adm.admit(r.Context(), tenant)
		if shed != nil {
			writeShaped(w, shed.status, shed.body)
			m.finish(start, shed.status, shed)
			return
		}
		defer release()

		if hook := s.testHookPreHandle; hook != nil {
			hook(route)
		}

		// Deadlines bound the request's lifetime from arrival, not from
		// wherever in the handler the context happens to be derived —
		// time spent queued or parsing counts against the budget.
		r = r.WithContext(context.WithValue(r.Context(), arrivalKey{}, start))
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		status, payload, err := h(r.Context(), tenant, r)
		if err != nil {
			status, _ := writeError(w, err)
			m.finish(start, status, err)
			return
		}
		writeJSON(w, status, payload)
		m.finish(start, status, nil)
	}
}

// arrivalKey carries the request's arrival instant through its context,
// so deadlines anchor at arrival rather than at context derivation.
type arrivalKey struct{}

// deadlineCtx derives the request's bounded context: requested deadline
// (clamped to MaxDeadline) or the server default, anchored at the
// request's arrival and layered over both the HTTP request context
// (client disconnect) and the server's base context (shutdown). The
// returned cancel must be called when the request ends.
func (s *Server) deadlineCtx(reqCtx context.Context, deadlineMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
		if d > s.cfg.MaxDeadline {
			d = s.cfg.MaxDeadline
		}
	}
	anchor, ok := reqCtx.Value(arrivalKey{}).(time.Time)
	if !ok {
		anchor = time.Now()
	}
	ctx, cancel := context.WithDeadline(reqCtx, anchor.Add(d))
	unlink := context.AfterFunc(s.base, cancel)
	return ctx, func() {
		unlink()
		cancel()
	}
}

// budgetFor resolves the tenant's per-query budget.
func (s *Server) budgetFor(tenant string) Budget {
	if b, ok := s.cfg.TenantBudgets[tenant]; ok {
		return b
	}
	return s.cfg.Budgets
}

// optionsFor builds the engine options for one request of a tenant:
// the recommended defaults plus the tenant's budget caps.
func (s *Server) optionsFor(tenant string) mstsearch.Options {
	o := mstsearch.DefaultOptions()
	b := s.budgetFor(tenant)
	o.MaxNodeAccesses = b.MaxNodeAccesses
	o.MaxIOReads = b.MaxIOReads
	o.Parallelism = s.cfg.Parallelism
	return o
}

// decode parses a JSON body into v, typing failures as bad_request.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return badRequestf("request body over %d bytes", maxErr.Limit)
		}
		return badRequestf("malformed JSON body: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return badRequestf("trailing data after JSON body")
	}
	return nil
}

// toTrajectory converts a wire trajectory, validating shape only (the
// DB re-validates semantics).
func toTrajectory(tj TrajectoryJSON) (mstsearch.Trajectory, error) {
	if len(tj.Samples) < 2 {
		return mstsearch.Trajectory{}, badRequestf("trajectory %d: need at least 2 samples, got %d", tj.ID, len(tj.Samples))
	}
	tr := mstsearch.Trajectory{ID: mstsearch.ID(tj.ID), Samples: make([]mstsearch.Sample, len(tj.Samples))}
	for i, s := range tj.Samples {
		tr.Samples[i] = mstsearch.Sample{X: s[0], Y: s[1], T: s[2]}
	}
	return tr, nil
}

// parseMetric resolves a wire metric name ("" = DISSIM) to the engine's
// typed selector, mapping unknown names to a 400.
func parseMetric(name string) (mstsearch.Metric, error) {
	m, err := mstsearch.ParseMetric(name)
	if err != nil {
		return 0, badRequestf("unknown metric %q (want dissim, dtw, lcss, or edr)", name)
	}
	return m, nil
}

// --- route handlers -----------------------------------------------------

// handleQuery answers one k-MST query, through the coalescer when it is
// enabled.
func (s *Server) handleQuery(_ context.Context, tenant string, r *http.Request) (int, any, error) {
	var req QueryRequest
	if err := decode(r, &req); err != nil {
		return 0, nil, err
	}
	if req.K <= 0 {
		return 0, nil, badRequestf("k must be positive, got %d", req.K)
	}
	q, err := toTrajectory(req.Query)
	if err != nil {
		return 0, nil, err
	}
	metric, err := parseMetric(req.Metric)
	if err != nil {
		return 0, nil, err
	}
	ctx, cancel := s.deadlineCtx(r.Context(), req.DeadlineMS)
	defer cancel()

	opts := s.optionsFor(tenant)
	var (
		results []mstsearch.Result
		stats   mstsearch.SearchStats
	)
	if s.coal != nil {
		res, err := s.coal.do(ctx, mstsearch.BatchQuery{
			Q: &q, T1: req.T1, T2: req.T2, K: req.K,
			Metric: metric, MetricEps: req.MetricEps, Opts: &opts,
		})
		if err == nil {
			err = res.Err
		}
		if err != nil {
			return 0, nil, err
		}
		results, stats = res.Results, res.Stats
	} else {
		resp, err := s.db.Query(ctx, mstsearch.Request{
			Q: &q, Interval: mstsearch.Interval{T1: req.T1, T2: req.T2}, K: req.K,
			Metric: metric, MetricEps: req.MetricEps, Options: opts,
		})
		if err != nil {
			return 0, nil, err
		}
		results, stats = resp.Results, resp.Stats
	}
	return http.StatusOK, queryResponse(results, stats), nil
}

// queryResponse shapes engine results for the wire.
func queryResponse(results []mstsearch.Result, stats mstsearch.SearchStats) *QueryResponse {
	out := &QueryResponse{
		Results:  make([]ResultJSON, len(results)),
		Degraded: stats.Degraded,
		Stats: QueryStatsJSON{
			NodesAccessed: stats.NodesAccessed,
			PageReads:     stats.PageReads,
			BufferHits:    stats.BufferHits,
			PruningPower:  stats.PruningPower,
		},
	}
	for i, res := range results {
		out.Results[i] = ResultJSON{
			ID: uint32(res.TrajID), Dissim: res.Dissim, Err: res.Err, Certified: res.Certified,
		}
	}
	return out
}

// handleBatch answers many k-MST queries as one admission unit on the
// batch executor, with per-slot deadlines and isolated failures.
func (s *Server) handleBatch(_ context.Context, tenant string, r *http.Request) (int, any, error) {
	var req BatchRequest
	if err := decode(r, &req); err != nil {
		return 0, nil, err
	}
	if len(req.Queries) == 0 {
		return 0, nil, badRequestf("batch with no queries")
	}
	batchCtx, cancel := s.deadlineCtx(r.Context(), req.DeadlineMS)
	defer cancel()
	opts := s.optionsFor(tenant)

	queries := make([]mstsearch.BatchQuery, len(req.Queries))
	cancels := make([]context.CancelFunc, 0, len(req.Queries))
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	for i, qr := range req.Queries {
		if qr.K <= 0 {
			return 0, nil, badRequestf("query %d: k must be positive, got %d", i, qr.K)
		}
		q, err := toTrajectory(qr.Query)
		if err != nil {
			return 0, nil, err
		}
		metric, err := parseMetric(qr.Metric)
		if err != nil {
			return 0, nil, err
		}
		queries[i] = mstsearch.BatchQuery{
			Q: &q, T1: qr.T1, T2: qr.T2, K: qr.K,
			Metric: metric, MetricEps: qr.MetricEps,
		}
		if qr.DeadlineMS > 0 {
			slotCtx, slotCancel := s.deadlineCtx(r.Context(), qr.DeadlineMS)
			cancels = append(cancels, slotCancel)
			queries[i].Ctx = slotCtx
		}
	}
	results := s.db.KMostSimilarBatch(batchCtx, queries, opts)
	resp := &BatchResponse{Results: make([]BatchSlotJSON, len(results))}
	for i, res := range results {
		if res.Err != nil {
			_, body := envelopeFor(res.Err)
			resp.Results[i] = BatchSlotJSON{Error: &body}
			continue
		}
		resp.Results[i] = BatchSlotJSON{Response: queryResponse(res.Results, res.Stats)}
	}
	return http.StatusOK, resp, nil
}

// handleRange answers a window/interval range query.
func (s *Server) handleRange(_ context.Context, _ string, r *http.Request) (int, any, error) {
	var req RangeRequest
	if err := decode(r, &req); err != nil {
		return 0, nil, err
	}
	ctx, cancel := s.deadlineCtx(r.Context(), req.DeadlineMS)
	defer cancel()
	hits, err := s.db.Range(ctx,
		mstsearch.Window{MinX: req.Window.MinX, MinY: req.Window.MinY, MaxX: req.Window.MaxX, MaxY: req.Window.MaxY},
		mstsearch.Interval{T1: req.T1, T2: req.T2})
	if err != nil {
		return 0, nil, err
	}
	resp := &RangeResponse{Segments: make([]SegmentJSON, len(hits))}
	for i, h := range hits {
		resp.Segments[i] = SegmentJSON{
			ID: uint32(h.TrajID), SeqNo: h.SeqNo,
			A: [3]float64{h.X1, h.Y1, h.T1},
			B: [3]float64{h.X2, h.Y2, h.T2},
		}
	}
	return http.StatusOK, resp, nil
}

// handleNearest answers a historical point-NN query.
func (s *Server) handleNearest(_ context.Context, _ string, r *http.Request) (int, any, error) {
	var req NearestRequest
	if err := decode(r, &req); err != nil {
		return 0, nil, err
	}
	if req.K <= 0 {
		return 0, nil, badRequestf("k must be positive, got %d", req.K)
	}
	ctx, cancel := s.deadlineCtx(r.Context(), req.DeadlineMS)
	defer cancel()
	res, err := s.db.Nearest(ctx, req.X, req.Y, req.T, req.K)
	if err != nil {
		return 0, nil, err
	}
	resp := &NearestResponse{Neighbors: make([]NeighborJSON, len(res))}
	for i, n := range res {
		resp.Neighbors[i] = NeighborJSON{ID: uint32(n.TrajID), Dist: n.Dist}
	}
	return http.StatusOK, resp, nil
}

// handleTopology answers a topological classification query.
func (s *Server) handleTopology(_ context.Context, _ string, r *http.Request) (int, any, error) {
	var req TopologyRequest
	if err := decode(r, &req); err != nil {
		return 0, nil, err
	}
	ctx, cancel := s.deadlineCtx(r.Context(), req.DeadlineMS)
	defer cancel()
	res, err := s.db.Topology(ctx,
		mstsearch.Window{MinX: req.Window.MinX, MinY: req.Window.MinY, MaxX: req.Window.MaxX, MaxY: req.Window.MaxY},
		mstsearch.Interval{T1: req.T1, T2: req.T2})
	if err != nil {
		return 0, nil, err
	}
	resp := &TopologyResponse{Entries: make([]TopologyEntryJSON, len(res))}
	for i, e := range res {
		resp.Entries[i] = TopologyEntryJSON{ID: uint32(e.TrajID), Relation: e.Relation, InsideDuration: e.InsideDuration}
	}
	return http.StatusOK, resp, nil
}

// handleIngest stores one new trajectory through the durable write path
// (journaled + fsynced on a durable DB). Retries must carry an
// Idempotency-Key header; the server replays the recorded outcome for a
// key it has seen, so a retried ingest whose first attempt actually
// committed does not fail with conflict.
func (s *Server) handleIngest(_ context.Context, _ string, r *http.Request) (int, any, error) {
	var req IngestRequest
	if err := decode(r, &req); err != nil {
		return 0, nil, err
	}
	tr, err := toTrajectory(req.Trajectory)
	if err != nil {
		return 0, nil, err
	}

	key := r.Header.Get("Idempotency-Key")
	if key != "" {
		if resp, ok := s.idem.lookup(key); ok {
			replay := *resp
			replay.Replayed = true
			return http.StatusOK, &replay, nil
		}
	}
	// The mutation path has no context seam (it must not be torn
	// mid-apply), so the deadline governs only the admission above.
	if err := s.db.Add(tr); err != nil {
		return 0, nil, err
	}
	resp := &IngestResponse{ID: req.Trajectory.ID, Segments: tr.NumSegments()}
	if key != "" {
		s.idem.store(key, resp)
	}
	return http.StatusOK, resp, nil
}

// handleAppend extends a stored trajectory with one sample.
func (s *Server) handleAppend(_ context.Context, _ string, r *http.Request) (int, any, error) {
	var req AppendRequest
	if err := decode(r, &req); err != nil {
		return 0, nil, err
	}
	id := mstsearch.ID(req.ID)
	err := s.db.AppendSample(id, mstsearch.Sample{X: req.Sample[0], Y: req.Sample[1], T: req.Sample[2]})
	if err != nil {
		if s.db.Get(id) == nil {
			return 0, nil, notFoundf("unknown trajectory %d", req.ID)
		}
		return 0, nil, badRequestf("%v", err)
	}
	tr := s.db.Get(id)
	n := 0
	if tr != nil {
		n = len(tr.Samples)
	}
	return http.StatusOK, &AppendResponse{ID: req.ID, Samples: n}, nil
}

// handleExplain runs the request with tracing on and returns the cost
// model's prediction against actuals.
func (s *Server) handleExplain(_ context.Context, tenant string, r *http.Request) (int, any, error) {
	var req QueryRequest
	if err := decode(r, &req); err != nil {
		return 0, nil, err
	}
	if req.K <= 0 {
		return 0, nil, badRequestf("k must be positive, got %d", req.K)
	}
	q, err := toTrajectory(req.Query)
	if err != nil {
		return 0, nil, err
	}
	metric, err := parseMetric(req.Metric)
	if err != nil {
		return 0, nil, err
	}
	ctx, cancel := s.deadlineCtx(r.Context(), req.DeadlineMS)
	defer cancel()
	rep, err := s.db.Explain(ctx, mstsearch.Request{
		Q: &q, Interval: mstsearch.Interval{T1: req.T1, T2: req.T2}, K: req.K,
		Metric: metric, MetricEps: req.MetricEps,
		Options: s.optionsFor(tenant),
	})
	if err != nil {
		return 0, nil, err
	}
	return http.StatusOK, &ExplainResponse{
		Transcript:        rep.String(),
		PredictedLeafIO:   rep.Estimate.ExpectedLeafPages,
		ActualLeafIO:      rep.Stats.LeavesAccessed,
		NodesAccessed:     rep.Stats.NodesAccessed,
		PruningPower:      rep.Stats.PruningPower,
		DurationMicros:    rep.Duration.Microseconds(),
		Degraded:          rep.Stats.Degraded,
		ResultCount:       len(rep.Results),
		TraceEventCount:   rep.Trace.Events,
		EstimatedSegments: rep.Estimate.ExpectedSegments,
	}, nil
}

// handleCheckpoint folds the WAL into a snapshot under the request's
// deadline (CheckpointContext aborts between state-machine steps).
func (s *Server) handleCheckpoint(_ context.Context, _ string, r *http.Request) (int, any, error) {
	deadlineMS := int64(0)
	if v := r.URL.Query().Get("deadline_ms"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &deadlineMS); err != nil {
			return 0, nil, badRequestf("bad deadline_ms %q", v)
		}
	}
	ctx, cancel := s.deadlineCtx(r.Context(), deadlineMS)
	defer cancel()
	if err := s.db.CheckpointContext(ctx); err != nil {
		return 0, nil, err
	}
	return http.StatusOK, &CheckpointResponse{Status: "ok"}, nil
}

// replicaReporter is the optional Engine facet a replicated cluster
// implements; /healthz discovers it structurally so the server never
// has to know which engine it fronts.
type replicaReporter interface {
	NumShards() int
	ReplicaStatuses() []mstsearch.ReplicaStatus
}

// handleHealth answers liveness without touching the admission ladder or
// the index: it must stay responsive precisely when the server is
// saturated. On an engine that reports replica health, the body carries
// the per-shard/per-replica breakdown and Status degrades to "degraded"
// when any replica is suspect or quarantined; `?quick=1` keeps the bare
// three-field contract for probes that poll tightly.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := &HealthResponse{
		Status:       "ok",
		Trajectories: s.db.Len(),
		Segments:     s.db.NumSegments(),
	}
	if rr, ok := s.db.(replicaReporter); ok && r.URL.Query().Get("quick") == "" {
		resp.Shards = rr.NumShards()
		for _, st := range rr.ReplicaStatuses() {
			rh := ReplicaHealth{
				Shard:        st.Shard,
				Replica:      st.Replica,
				State:        st.State,
				Trajectories: st.Trajectories,
				LastError:    st.LastError,
			}
			if !st.LastRepair.IsZero() {
				rh.LastRepair = st.LastRepair.UTC().Format(time.RFC3339)
			}
			resp.Replicas = append(resp.Replicas, rh)
			if st.State != "healthy" {
				resp.Status = "degraded"
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
	metHealth.total.Inc()
}

// handleMetrics renders the process-wide metrics registry (the same
// snapshot the expvar export publishes) as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	v := mstsearch.MetricsVar()
	w.Header().Set("Content-Type", "application/json")
	_, _ = io.WriteString(w, v.String())
}

// idem is the bounded idempotency cache (ingest replays).
type idemCache struct {
	mu    sync.Mutex // lockrank: 51 — leaf: held only for map bookkeeping
	seen  map[string]*IngestResponse
	order []string
	cap   int
}

// lookup returns the stored outcome for key.
func (c *idemCache) lookup(key string) (*IngestResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.seen[key]
	return r, ok
}

// store records an outcome, evicting the oldest past capacity.
func (c *idemCache) store(key string, r *IngestResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen == nil {
		c.seen = make(map[string]*IngestResponse)
		c.cap = 4096
	}
	if _, dup := c.seen[key]; dup {
		return
	}
	c.seen[key] = r
	c.order = append(c.order, key)
	for len(c.order) > c.cap {
		delete(c.seen, c.order[0])
		c.order = c.order[1:]
	}
}
