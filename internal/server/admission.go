package server

import (
	"context"
	"sync"
	"time"
)

// The admission ladder: every request first pays a token from its
// tenant's bucket (per-tenant fairness — one chatty tenant throttles
// itself, not its neighbours), then takes a slot from the global
// concurrency limiter (the server never runs more queries than it is
// sized for). When every slot is busy the request waits in a bounded
// queue; when the queue is full — or the wait outlives its bound — the
// request is shed with 429 + Retry-After instead of queueing without
// limit. Shedding is the design: under overload a bounded queue keeps
// latency for admitted requests flat and pushes backpressure to clients,
// where the retrying client turns it into jittered backoff.

// admission implements the ladder. All methods are safe for concurrent
// use.
type admission struct {
	// Global concurrency limiter: a semaphore of cfg.MaxConcurrent slots
	// plus a bounded count of waiters.
	sem chan struct{}

	mu      sync.Mutex // lockrank: 50 — leaf of the serving layer
	waiters int        // requests queued for a slot (≤ queueDepth)
	buckets map[string]*bucket

	queueDepth int
	queueWait  time.Duration
	rate       float64 // tokens per second per tenant
	burst      float64

	now func() time.Time // injectable clock (tests)
}

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// newAdmission sizes the ladder from the server config.
func newAdmission(cfg Config) *admission {
	return &admission{
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		buckets:    make(map[string]*bucket),
		queueDepth: cfg.QueueDepth,
		queueWait:  cfg.QueueWait,
		rate:       cfg.TenantRPS,
		burst:      cfg.TenantBurst,
		now:        time.Now,
	}
}

// shedError is an admission rejection: usually a 429 whose body says
// which rung of the ladder shed the request, or a 499 when the client
// disconnected while queued.
type shedError struct {
	status int
	body   ErrorBody
}

func (e *shedError) Error() string { return e.body.Message }

// admit walks the ladder for one request. On success it returns a
// release function the caller must invoke when the request finishes; on
// rejection it returns a *shedError carrying the 429 body. ctx aborts
// the queue wait (a client that hangs up while queued never occupies a
// slot).
func (a *admission) admit(ctx context.Context, tenant string) (release func(), err *shedError) {
	if wait, ok := a.takeToken(tenant); !ok {
		return nil, &shedError{status: 429, body: ErrorBody{
			Code:         CodeRateLimited,
			Message:      "tenant " + tenant + " over its request rate",
			Retryable:    true,
			RetryAfterMS: retryAfterMS(wait),
		}}
	}

	// Fast path: a free slot, no queueing.
	select {
	case a.sem <- struct{}{}:
		return func() { <-a.sem }, nil
	default:
	}

	// Queue, boundedly.
	a.mu.Lock()
	if a.waiters >= a.queueDepth {
		a.mu.Unlock()
		return nil, &shedError{status: 429, body: ErrorBody{
			Code:         CodeOverloaded,
			Message:      "server at capacity: wait queue full",
			Retryable:    true,
			RetryAfterMS: retryAfterMS(a.queueWait),
		}}
	}
	a.waiters++
	gaugeQueueDepth.Set(int64(a.waiters))
	a.mu.Unlock()

	timer := time.NewTimer(a.queueWait)
	defer timer.Stop()
	defer func() {
		a.mu.Lock()
		a.waiters--
		gaugeQueueDepth.Set(int64(a.waiters))
		a.mu.Unlock()
	}()

	select {
	case a.sem <- struct{}{}:
		return func() { <-a.sem }, nil
	case <-timer.C:
		return nil, &shedError{status: 429, body: ErrorBody{
			Code:         CodeOverloaded,
			Message:      "server at capacity: queued past the wait bound",
			Retryable:    true,
			RetryAfterMS: retryAfterMS(a.queueWait),
		}}
	case <-ctx.Done():
		// The client gave up while queued; nothing to send, but the
		// caller still writes the typed envelope for the access log.
		return nil, &shedError{status: StatusClientClosedRequest, body: ErrorBody{
			Code:      CodeCanceled,
			Message:   "client went away while queued",
			Retryable: false,
		}}
	}
}

// takeToken debits one token from the tenant's bucket, reporting success
// or the wait until the next token accrues.
func (a *admission) takeToken(tenant string) (wait time.Duration, ok bool) {
	if a.rate <= 0 {
		return 0, true // rate limiting disabled
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b, found := a.buckets[tenant]
	now := a.now()
	if !found {
		b = &bucket{tokens: a.burst, last: now}
		a.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * a.rate
	if b.tokens > a.burst {
		b.tokens = a.burst
	}
	b.last = now
	if b.tokens < 1 {
		deficit := 1 - b.tokens
		return time.Duration(deficit / a.rate * float64(time.Second)), false
	}
	b.tokens--
	return 0, true
}
