package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	mstsearch "mstsearch"
	"mstsearch/internal/gstd"
	"mstsearch/internal/testutil"
)

// newTestDB builds an in-memory fleet DB with a warm buffer, the way
// mstserve serves it.
func newTestDB(t testing.TB, objects int) *mstsearch.DB {
	t.Helper()
	data := gstd.Generate(gstd.Config{NumObjects: objects, SamplesPerObject: 48, Seed: 7})
	db, err := mstsearch.NewDB(mstsearch.RTree3D, data.Trajs)
	if err != nil {
		t.Fatalf("NewDB: %v", err)
	}
	db.EnableWarmBuffer()
	return db
}

// newTestServer wires a DB into a Server plus an httptest listener; both
// are torn down with the test, leak-checked.
func newTestServer(t testing.TB, db *mstsearch.DB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	testutil.CheckGoroutines(t)
	srv := New(db, cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// queryBody builds a valid query request against the synthetic fleet's
// unit workspace.
func queryBody(k int, deadlineMS int64) QueryRequest {
	rng := rand.New(rand.NewSource(42))
	samples := make([][3]float64, 8)
	x, y := 0.5, 0.5
	for i := range samples {
		x += (rng.Float64() - 0.5) * 0.05
		y += (rng.Float64() - 0.5) * 0.05
		samples[i] = [3]float64{x, y, 0.1 + float64(i)*0.1}
	}
	return QueryRequest{
		Query: TrajectoryJSON{ID: 0, Samples: samples},
		T1:    0.1, T2: 0.8, K: k, DeadlineMS: deadlineMS,
	}
}

// postJSON POSTs a value and decodes the response body.
func postJSON(t testing.TB, url string, req any, resp any, headers map[string]string) (int, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	httpReq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		httpReq.Header.Set(k, v)
	}
	res, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	defer res.Body.Close()
	if resp != nil {
		if err := json.NewDecoder(res.Body).Decode(resp); err != nil {
			t.Fatalf("decode %s (status %d): %v", url, res.StatusCode, err)
		}
	}
	return res.StatusCode, res.Header
}

func TestQueryEndpoint(t *testing.T) {
	db := newTestDB(t, 60)
	_, ts := newTestServer(t, db, DefaultConfig())

	var resp QueryResponse
	status, _ := postJSON(t, ts.URL+"/v1/query", queryBody(5, 0), &resp, nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if len(resp.Results) != 5 {
		t.Fatalf("got %d results, want 5", len(resp.Results))
	}
	if resp.Degraded {
		t.Fatalf("unbudgeted query reported degraded")
	}
	for i := 1; i < len(resp.Results); i++ {
		if resp.Results[i].Dissim < resp.Results[i-1].Dissim {
			t.Fatalf("results not sorted by dissimilarity")
		}
	}
	// The answers must match the library running the same query directly.
	q := queryBody(5, 0)
	tr := mstsearch.Trajectory{ID: 0}
	for _, s := range q.Query.Samples {
		tr.Samples = append(tr.Samples, mstsearch.Sample{X: s[0], Y: s[1], T: s[2]})
	}
	want, err := db.Query(context.Background(), mstsearch.Request{
		Q: &tr, Interval: mstsearch.Interval{T1: q.T1, T2: q.T2}, K: q.K,
	})
	if err != nil {
		t.Fatalf("library query: %v", err)
	}
	for i, r := range want.Results {
		if resp.Results[i].ID != uint32(r.TrajID) {
			t.Fatalf("result %d: server id %d, library id %d", i, resp.Results[i].ID, r.TrajID)
		}
	}
}

func TestQueryBudgetDegrades(t *testing.T) {
	db := newTestDB(t, 80)
	cfg := DefaultConfig()
	cfg.Budgets = Budget{MaxNodeAccesses: 2} // starve it
	_, ts := newTestServer(t, db, cfg)

	var resp QueryResponse
	status, _ := postJSON(t, ts.URL+"/v1/query", queryBody(5, 0), &resp, nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (budget exhaustion degrades, not fails)", status)
	}
	if !resp.Degraded {
		t.Fatalf("2-node budget did not degrade the response")
	}
	for _, r := range resp.Results {
		if r.Certified {
			t.Fatalf("degraded response certified result %d", r.ID)
		}
	}
}

func TestTenantBudgetOverride(t *testing.T) {
	db := newTestDB(t, 80)
	cfg := DefaultConfig()
	cfg.TenantBudgets = map[string]Budget{"starved": {MaxNodeAccesses: 2}}
	_, ts := newTestServer(t, db, cfg)

	var starved, free QueryResponse
	postJSON(t, ts.URL+"/v1/query", queryBody(5, 0), &starved, map[string]string{"X-Tenant": "starved"})
	postJSON(t, ts.URL+"/v1/query", queryBody(5, 0), &free, map[string]string{"X-Tenant": "other"})
	if !starved.Degraded {
		t.Fatalf("starved tenant not degraded")
	}
	if free.Degraded {
		t.Fatalf("unbudgeted tenant degraded")
	}
}

func TestQueryDeadlineExceeded(t *testing.T) {
	db := newTestDB(t, 200)
	cfg := DefaultConfig()
	cfg.CoalesceWindow = 0 // direct path; deadline must still propagate
	srv, ts := newTestServer(t, db, cfg)
	// Stall inside the handler so even a fast query overruns a 1 ms
	// deadline deterministically.
	srv.testHookPreHandle = func(route string) { time.Sleep(20 * time.Millisecond) }

	var env ErrorEnvelope
	status, _ := postJSON(t, ts.URL+"/v1/query", queryBody(5, 1), &env, nil)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", status)
	}
	if env.Error.Code != CodeDeadlineExceeded {
		t.Fatalf("code = %q, want %q", env.Error.Code, CodeDeadlineExceeded)
	}
	if !env.Error.Retryable {
		t.Fatalf("deadline_exceeded must be retryable")
	}
}

func TestQueryCoalescing(t *testing.T) {
	db := newTestDB(t, 60)
	cfg := DefaultConfig()
	cfg.CoalesceWindow = 5 * time.Millisecond
	cfg.CoalesceMax = 8
	cfg.MaxConcurrent = 32
	cfg.QueueDepth = 32
	_, ts := newTestServer(t, db, cfg)

	before := ctrCoalesceBatch.Load()
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp QueryResponse
			status, _ := postJSON(t, ts.URL+"/v1/query", queryBody(3, 0), &resp, nil)
			if status != http.StatusOK {
				t.Errorf("status = %d", status)
			}
		}()
	}
	wg.Wait()
	batches := ctrCoalesceBatch.Load() - before
	if batches == 0 {
		t.Fatalf("no coalesced batches ran")
	}
	if batches >= n {
		t.Fatalf("no coalescing happened: %d batches for %d queries", batches, n)
	}
}

func TestBatchEndpointSlotIsolation(t *testing.T) {
	db := newTestDB(t, 60)
	_, ts := newTestServer(t, db, DefaultConfig())

	good := queryBody(3, 0)
	bad := queryBody(3, 0)
	bad.T1, bad.T2 = 0.8, 0.1 // inverted interval: ErrBadQuery for this slot only
	var resp BatchResponse
	status, _ := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Queries: []QueryRequest{good, bad, good}}, &resp, nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d slots, want 3", len(resp.Results))
	}
	if resp.Results[0].Error != nil || resp.Results[2].Error != nil {
		t.Fatalf("good slots failed: %+v", resp.Results)
	}
	if resp.Results[1].Error == nil || resp.Results[1].Error.Code != CodeBadRequest {
		t.Fatalf("bad slot not isolated: %+v", resp.Results[1])
	}
}

func TestRangeNearestTopology(t *testing.T) {
	db := newTestDB(t, 40)
	_, ts := newTestServer(t, db, DefaultConfig())

	w := WindowJSON{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8}
	var rresp RangeResponse
	if status, _ := postJSON(t, ts.URL+"/v1/range", RangeRequest{Window: w, T1: 0, T2: 1}, &rresp, nil); status != 200 {
		t.Fatalf("range status = %d", status)
	}
	if len(rresp.Segments) == 0 {
		t.Fatalf("range over most of the workspace found nothing")
	}

	var nresp NearestResponse
	if status, _ := postJSON(t, ts.URL+"/v1/nearest", NearestRequest{X: 0.5, Y: 0.5, T: 0.5, K: 3}, &nresp, nil); status != 200 {
		t.Fatalf("nearest status = %d", status)
	}
	if len(nresp.Neighbors) != 3 {
		t.Fatalf("nearest got %d, want 3", len(nresp.Neighbors))
	}

	var tresp TopologyResponse
	if status, _ := postJSON(t, ts.URL+"/v1/topology", TopologyRequest{Window: w, T1: 0, T2: 1}, &tresp, nil); status != 200 {
		t.Fatalf("topology status = %d", status)
	}
	if len(tresp.Entries) == 0 {
		t.Fatalf("topology found nothing")
	}
}

func TestIngestAppendAndIdempotency(t *testing.T) {
	db := newTestDB(t, 10)
	_, ts := newTestServer(t, db, DefaultConfig())

	tr := TrajectoryJSON{ID: 9001, Samples: [][3]float64{{0.1, 0.1, 0}, {0.2, 0.2, 0.5}, {0.3, 0.3, 1}}}
	key := map[string]string{"Idempotency-Key": "ing-1"}

	var first IngestResponse
	if status, _ := postJSON(t, ts.URL+"/v1/ingest", IngestRequest{Trajectory: tr}, &first, key); status != 200 {
		t.Fatalf("ingest status = %d", status)
	}
	if first.Replayed {
		t.Fatalf("first ingest claims replayed")
	}

	// A retry with the same key replays instead of failing with conflict.
	var second IngestResponse
	if status, _ := postJSON(t, ts.URL+"/v1/ingest", IngestRequest{Trajectory: tr}, &second, key); status != 200 {
		t.Fatalf("retried ingest status = %d, want 200 replay", status)
	}
	if !second.Replayed || second.ID != first.ID {
		t.Fatalf("retry not replayed: %+v", second)
	}

	// The same body without a key is a genuine duplicate: 409.
	var env ErrorEnvelope
	if status, _ := postJSON(t, ts.URL+"/v1/ingest", IngestRequest{Trajectory: tr}, &env, nil); status != http.StatusConflict {
		t.Fatalf("duplicate ingest status = %d, want 409", status)
	}
	if env.Error.Code != CodeConflict {
		t.Fatalf("duplicate code = %q", env.Error.Code)
	}

	var app AppendResponse
	if status, _ := postJSON(t, ts.URL+"/v1/append", AppendRequest{ID: 9001, Sample: [3]float64{0.4, 0.4, 1.5}}, &app, nil); status != 200 {
		t.Fatalf("append status = %d", status)
	}
	if app.Samples != 4 {
		t.Fatalf("append samples = %d, want 4", app.Samples)
	}
	var env2 ErrorEnvelope
	if status, _ := postJSON(t, ts.URL+"/v1/append", AppendRequest{ID: 40404, Sample: [3]float64{0, 0, 9}}, &env2, nil); status != http.StatusNotFound {
		t.Fatalf("append to unknown id status = %d, want 404", status)
	}
}

func TestShedWhenSaturated(t *testing.T) {
	db := newTestDB(t, 40)
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 1
	cfg.QueueDepth = 1
	cfg.QueueWait = 50 * time.Millisecond
	srv, ts := newTestServer(t, db, cfg)

	// Pin the single slot with a stalled request.
	block := make(chan struct{})
	var once sync.Once
	srv.testHookPreHandle = func(string) { once.Do(func() { <-block }) }
	defer close(block)

	go func() {
		var resp QueryResponse
		postJSON(t, ts.URL+"/v1/query", queryBody(3, 0), &resp, nil)
	}()
	// Wait until the blocker owns the slot.
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.adm.sem) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("blocker never took the slot")
		}
		time.Sleep(time.Millisecond)
	}

	// One request fills the queue; more must shed with 429 + Retry-After.
	statuses := make(chan int, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var env ErrorEnvelope
			status, hdr := postJSON(t, ts.URL+"/v1/query", queryBody(3, 0), &env, nil)
			statuses <- status
			if status == 429 {
				if env.Error.Code != CodeOverloaded {
					t.Errorf("shed code = %q, want %q", env.Error.Code, CodeOverloaded)
				}
				if hdr.Get("Retry-After") == "" {
					t.Errorf("shed response missing Retry-After")
				}
				if !env.Error.Retryable {
					t.Errorf("shed response not retryable")
				}
			}
		}()
	}
	wg.Wait()
	close(statuses)
	sheds := 0
	for s := range statuses {
		if s == 429 {
			sheds++
		}
	}
	if sheds < 7 { // 8 requests, ≤1 queue slot ⇒ at least 7 shed
		t.Fatalf("only %d/8 requests shed with one slot and queue depth 1", sheds)
	}
}

func TestTenantRateLimit(t *testing.T) {
	db := newTestDB(t, 20)
	cfg := DefaultConfig()
	cfg.TenantRPS = 1
	cfg.TenantBurst = 2
	_, ts := newTestServer(t, db, cfg)

	hdr := map[string]string{"X-Tenant": "chatty"}
	codes := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		var raw json.RawMessage
		status, _ := postJSON(t, ts.URL+"/v1/query", queryBody(2, 0), &raw, hdr)
		codes = append(codes, status)
	}
	limited := 0
	for _, c := range codes {
		if c == 429 {
			limited++
		}
	}
	if limited == 0 {
		t.Fatalf("burst-2 bucket never limited 4 back-to-back requests: %v", codes)
	}
	// A different tenant is unaffected.
	var resp QueryResponse
	if status, _ := postJSON(t, ts.URL+"/v1/query", queryBody(2, 0), &resp, map[string]string{"X-Tenant": "quiet"}); status != 200 {
		t.Fatalf("other tenant limited too: %d", status)
	}
}

func TestBadRequestsAreTyped(t *testing.T) {
	db := newTestDB(t, 10)
	_, ts := newTestServer(t, db, DefaultConfig())

	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{"query":`},
		{"unknown field", `{"qwery": {}}`},
		{"k missing", `{"query":{"id":0,"samples":[[0,0,0],[1,1,1]]},"t1":0,"t2":1}`},
		{"one sample", `{"query":{"id":0,"samples":[[0,0,0]]},"t1":0,"t2":1,"k":1}`},
		{"inverted interval", `{"query":{"id":0,"samples":[[0,0,0],[1,1,1]]},"t1":1,"t2":0,"k":1}`},
	}
	for _, tc := range cases {
		res, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var env ErrorEnvelope
		if err := json.NewDecoder(res.Body).Decode(&env); err != nil {
			t.Fatalf("%s: undecodable error body: %v", tc.name, err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, res.StatusCode)
		}
		if env.Error.Code != CodeBadRequest {
			t.Errorf("%s: code = %q, want %q", tc.name, env.Error.Code, CodeBadRequest)
		}
	}
}

func TestHealthAndMetrics(t *testing.T) {
	db := newTestDB(t, 20)
	_, ts := newTestServer(t, db, DefaultConfig())

	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var h HealthResponse
	if err := json.NewDecoder(res.Body).Decode(&h); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	res.Body.Close()
	if h.Status != "ok" || h.Trajectories != 20 {
		t.Fatalf("healthz = %+v", h)
	}

	// Run one query, then confirm the route counters show up in /metrics.
	var qr QueryResponse
	postJSON(t, ts.URL+"/v1/query", queryBody(2, 0), &qr, nil)
	res, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var snap map[string]any
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	res.Body.Close()
	found := false
	for k := range snap {
		if strings.Contains(k, "server.requests.query") || k == "counters" || k == "Counters" {
			found = true
		}
	}
	if !found {
		// The expvar shape nests; just require the body mention the family.
		buf, _ := json.Marshal(snap)
		if !bytes.Contains(buf, []byte("server.requests.query.total")) {
			t.Fatalf("metrics body lacks server.requests.query.total: %s", buf[:min(len(buf), 400)])
		}
	}
}

func TestExplainEndpoint(t *testing.T) {
	db := newTestDB(t, 30)
	_, ts := newTestServer(t, db, DefaultConfig())

	var resp ExplainResponse
	status, _ := postJSON(t, ts.URL+"/v1/explain", queryBody(3, 0), &resp, nil)
	if status != 200 {
		t.Fatalf("explain status = %d", status)
	}
	if !strings.Contains(resp.Transcript, "EXPLAIN") && len(resp.Transcript) == 0 {
		t.Fatalf("empty explain transcript")
	}
	if resp.ResultCount != 3 {
		t.Fatalf("explain result count = %d, want 3", resp.ResultCount)
	}
}

func TestServerCloseRefusesNewWork(t *testing.T) {
	db := newTestDB(t, 20)
	testutil.CheckGoroutines(t)
	srv := New(db, DefaultConfig())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	srv.Close()
	var env ErrorEnvelope
	status, _ := postJSON(t, ts.URL+"/v1/query", queryBody(2, 0), &env, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("post-Close status = %d, want 503", status)
	}
	if env.Error.Code != CodeUnavailable {
		t.Fatalf("post-Close code = %q", env.Error.Code)
	}
	srv.Close() // idempotent
}
