package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mstsearch/internal/testutil"
)

// flakyHandler fails the first n attempts with the given envelope, then
// succeeds.
type flakyHandler struct {
	failures int32
	status   int
	body     ErrorBody
	hits     atomic.Int32
	keys     chan string // observed Idempotency-Key headers
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.keys != nil {
		select {
		case h.keys <- r.Header.Get("Idempotency-Key"):
		default:
		}
	}
	n := h.hits.Add(1)
	if n <= h.failures {
		writeShaped(w, h.status, h.body)
		return
	}
	writeJSON(w, http.StatusOK, &QueryResponse{Results: []ResultJSON{{ID: 1}}})
}

func TestClientRetriesRetryableFailures(t *testing.T) {
	testutil.CheckGoroutines(t)
	h := &flakyHandler{
		failures: 2, status: 429,
		body: ErrorBody{Code: CodeOverloaded, Message: "full", Retryable: true, RetryAfterMS: 1},
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	cl := &Client{BaseURL: ts.URL, MaxAttempts: 4, BaseBackoff: time.Millisecond}
	resp, err := cl.Query(context.Background(), QueryRequest{K: 1})
	if err != nil {
		t.Fatalf("query after retries: %v", err)
	}
	if len(resp.Results) != 1 || h.hits.Load() != 3 {
		t.Fatalf("resp %+v after %d hits, want success on 3rd", resp, h.hits.Load())
	}
}

func TestClientStopsOnNonRetryable(t *testing.T) {
	testutil.CheckGoroutines(t)
	h := &flakyHandler{
		failures: 99, status: http.StatusBadRequest,
		body: ErrorBody{Code: CodeBadRequest, Message: "bad k", Retryable: false},
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	cl := &Client{BaseURL: ts.URL, MaxAttempts: 4, BaseBackoff: time.Millisecond}
	_, err := cl.Query(context.Background(), QueryRequest{K: -1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Body.Code != CodeBadRequest || apiErr.Retryable() {
		t.Fatalf("envelope = %+v", apiErr)
	}
	if h.hits.Load() != 1 {
		t.Fatalf("non-retryable error tried %d times, want 1", h.hits.Load())
	}
}

func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	testutil.CheckGoroutines(t)
	h := &flakyHandler{
		failures: 99, status: 429,
		body: ErrorBody{Code: CodeOverloaded, Message: "full", Retryable: true, RetryAfterMS: 1},
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	cl := &Client{BaseURL: ts.URL, MaxAttempts: 3, BaseBackoff: time.Millisecond}
	_, err := cl.Query(context.Background(), QueryRequest{K: 1})
	if err == nil {
		t.Fatalf("want failure after exhausted attempts")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 429 {
		t.Fatalf("err = %v, want wrapped 429 APIError", err)
	}
	if h.hits.Load() != 3 {
		t.Fatalf("tried %d times, want exactly MaxAttempts=3", h.hits.Load())
	}
}

func TestClientNeverRetriesUnkeyedIngest(t *testing.T) {
	testutil.CheckGoroutines(t)
	h := &flakyHandler{
		failures: 99, status: http.StatusServiceUnavailable,
		body: ErrorBody{Code: CodeUnavailable, Message: "fault", Retryable: true, RetryAfterMS: 1},
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	cl := &Client{BaseURL: ts.URL, MaxAttempts: 5, BaseBackoff: time.Millisecond}
	req := IngestRequest{Trajectory: TrajectoryJSON{ID: 1, Samples: [][3]float64{{0, 0, 0}, {1, 1, 1}}}}

	// No idempotency key: one attempt only, even though the failure says
	// retryable — replaying an unacknowledged mutation is not safe.
	if _, err := cl.Ingest(context.Background(), req, ""); err == nil {
		t.Fatalf("want error")
	}
	if h.hits.Load() != 1 {
		t.Fatalf("unkeyed ingest tried %d times, want 1", h.hits.Load())
	}

	// With a key, retries are safe and the key rides every attempt.
	h.hits.Store(0)
	h.keys = make(chan string, 8)
	if _, err := cl.Ingest(context.Background(), req, "key-7"); err == nil {
		t.Fatalf("want error (handler always fails)")
	}
	if h.hits.Load() != 5 {
		t.Fatalf("keyed ingest tried %d times, want MaxAttempts=5", h.hits.Load())
	}
	close(h.keys)
	for k := range h.keys {
		if k != "key-7" {
			t.Fatalf("attempt missing idempotency key: %q", k)
		}
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	testutil.CheckGoroutines(t)
	h := &flakyHandler{
		failures: 1, status: 429,
		body: ErrorBody{Code: CodeRateLimited, Message: "slow down", Retryable: true, RetryAfterMS: 150},
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	cl := &Client{BaseURL: ts.URL, MaxAttempts: 2, BaseBackoff: time.Millisecond}
	start := time.Now()
	if _, err := cl.Query(context.Background(), QueryRequest{K: 1}); err != nil {
		t.Fatalf("query: %v", err)
	}
	if wait := time.Since(start); wait < 150*time.Millisecond {
		t.Fatalf("retried after %v, before the 150ms Retry-After hint", wait)
	}
}

func TestClientRespectsContext(t *testing.T) {
	testutil.CheckGoroutines(t)
	h := &flakyHandler{
		failures: 99, status: 429,
		body: ErrorBody{Code: CodeOverloaded, Message: "full", Retryable: true, RetryAfterMS: 60_000},
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	cl := &Client{BaseURL: ts.URL, MaxAttempts: 10, BaseBackoff: time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.Query(ctx, QueryRequest{K: 1})
	if err == nil {
		t.Fatalf("want context error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("client slept through its context: %v", time.Since(start))
	}
}

func TestClientSynthesizesEnvelopeForForeignErrors(t *testing.T) {
	testutil.CheckGoroutines(t)
	// A proxy-style failure: 502 with an HTML body, no envelope.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
		_, _ = w.Write([]byte("<html>bad gateway</html>"))
	}))
	defer ts.Close()

	cl := &Client{BaseURL: ts.URL, MaxAttempts: 2, BaseBackoff: time.Millisecond}
	_, err := cl.Query(context.Background(), QueryRequest{K: 1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Body.Code != CodeInternal || !apiErr.Body.Retryable {
		t.Fatalf("synthesized envelope = %+v, want retryable internal", apiErr.Body)
	}
}

// TestClientAgainstRealServer closes the loop: the retrying client
// against a saturated real server eventually lands every request.
func TestClientAgainstRealServer(t *testing.T) {
	db := newTestDB(t, 40)
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 2
	cfg.QueueDepth = 2
	cfg.QueueWait = 20 * time.Millisecond
	_, ts := newTestServer(t, db, cfg)

	cl := &Client{BaseURL: ts.URL, MaxAttempts: 8, BaseBackoff: 5 * time.Millisecond}
	done := make(chan error, 12)
	for i := 0; i < 12; i++ {
		go func() {
			_, err := cl.Query(context.Background(), queryBody(3, 0))
			done <- err
		}()
	}
	for i := 0; i < 12; i++ {
		if err := <-done; err != nil {
			t.Fatalf("request %d never landed: %v", i, err)
		}
	}
}

// Guard: ErrorBody must round-trip JSON so client and server agree.
func TestErrorEnvelopeRoundTrip(t *testing.T) {
	in := ErrorEnvelope{Error: ErrorBody{Code: CodeOverloaded, Message: "m", Retryable: true, RetryAfterMS: 12}}
	buf, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out ErrorEnvelope
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip changed envelope: %+v != %+v", out, in)
	}
}

// Regression: a 503 whose body is not the server's envelope (a proxy or
// load balancer answering for a down backend with `{}`) must still be
// treated as retryable — the status code is the contract, not the body.
// The client used to trust only the body's Retryable flag and gave up on
// the first such 503.
func TestClientRetriesBare503(t *testing.T) {
	testutil.CheckGoroutines(t)
	var hits atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("{}"))
			return
		}
		writeJSON(w, http.StatusOK, &QueryResponse{Results: []ResultJSON{{ID: 1}}})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cl := &Client{BaseURL: ts.URL, MaxAttempts: 4, BaseBackoff: time.Millisecond}
	resp, err := cl.Query(context.Background(), QueryRequest{K: 1})
	if err != nil {
		t.Fatalf("query after bare 503s: %v", err)
	}
	if len(resp.Results) != 1 || hits.Load() != 3 {
		t.Fatalf("resp %+v after %d hits, want success on the 3rd", resp, hits.Load())
	}
}
