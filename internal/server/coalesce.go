package server

import (
	"context"
	"time"

	mstsearch "mstsearch"
)

// Request coalescing: many HTTP clients asking k-MST questions at once
// is exactly the workload DB.KMostSimilarBatch was built for — one read
// snapshot, one warm striped pool, a bounded worker pool — so the server
// funnels concurrent single queries into micro-batches instead of
// running each on its own cold pool. A collector goroutine gathers
// requests that arrive within a short window (or until the batch is
// full) and executes them as one batch; per-slot contexts keep each
// request's own deadline and disconnect authoritative, so coalescing
// never lets one slow client's deadline cancel its neighbours.

// coalescer is the collector. One per server.
type coalescer struct {
	db     Engine
	opts   mstsearch.Options // batch-level options (Parallelism etc.)
	window time.Duration     // how long the collector waits to fill a batch
	max    int               // max queries per batch

	in   chan *pendingQuery
	base context.Context // server lifetime; cancels in-flight batches on Close
	done chan struct{}   // collector exited
}

// pendingQuery is one enqueued query and its reply channel.
type pendingQuery struct {
	bq    mstsearch.BatchQuery
	reply chan mstsearch.BatchResult
}

// newCoalescer starts the collector goroutine.
func newCoalescer(db Engine, base context.Context, opts mstsearch.Options, window time.Duration, max int) *coalescer {
	c := &coalescer{
		db:     db,
		opts:   opts,
		window: window,
		max:    max,
		in:     make(chan *pendingQuery),
		base:   base,
		done:   make(chan struct{}),
	}
	go c.collect()
	return c
}

// do submits one query and waits for its slot's result. ctx is the
// request's own (deadline-bearing) context: it rides into the batch as
// the slot context, and if it dies before the batch even starts, the
// wait below returns early while the slot later reports ErrCanceled to
// nobody.
func (c *coalescer) do(ctx context.Context, bq mstsearch.BatchQuery) (mstsearch.BatchResult, error) {
	p := &pendingQuery{bq: bq, reply: make(chan mstsearch.BatchResult, 1)}
	p.bq.Ctx = ctx
	select {
	case c.in <- p:
	case <-ctx.Done():
		return mstsearch.BatchResult{}, context.Cause(ctx)
	case <-c.base.Done():
		return mstsearch.BatchResult{}, context.Cause(c.base)
	}
	select {
	case res := <-p.reply:
		return res, nil
	case <-ctx.Done():
		// The slot still runs (its context is this one, so it aborts on
		// its own); the reply channel is buffered, so the batch worker
		// never blocks on an abandoned slot.
		return mstsearch.BatchResult{}, context.Cause(ctx)
	}
}

// collect is the collector loop: batch up, hand off, repeat. Each batch
// executes on its own goroutine so a slow batch never stalls collection
// of the next one.
func (c *coalescer) collect() {
	defer close(c.done)
	for {
		// Block for the batch's first member.
		var first *pendingQuery
		select {
		case first = <-c.in:
		case <-c.base.Done():
			return
		}
		batch := []*pendingQuery{first}

		// Gather followers until the window closes or the batch fills.
		timer := time.NewTimer(c.window)
	gather:
		for len(batch) < c.max {
			select {
			case p := <-c.in:
				batch = append(batch, p)
			case <-timer.C:
				break gather
			case <-c.base.Done():
				timer.Stop()
				c.run(batch) // serve what we already accepted
				return
			}
		}
		timer.Stop()
		go c.run(batch)
	}
}

// run executes one gathered batch and distributes results to the
// waiting handlers.
func (c *coalescer) run(batch []*pendingQuery) {
	queries := make([]mstsearch.BatchQuery, len(batch))
	for i, p := range batch {
		queries[i] = p.bq
	}
	ctrCoalesceBatch.Inc()
	ctrCoalesceQuery.Add(uint64(len(batch)))
	results := c.db.KMostSimilarBatch(c.base, queries, c.opts)
	for i, p := range batch {
		p.reply <- results[i] // buffered; never blocks
	}
}

// close stops the collector and waits for it to exit. In-flight batches
// are canceled through the base context by the server's Close.
func (c *coalescer) close() {
	<-c.done
}
