package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	mstsearch "mstsearch"
	"mstsearch/internal/index"
	"mstsearch/internal/storage"
)

// Every non-2xx response the server emits is an ErrorEnvelope — one
// documented JSON shape, one machine-readable code per failure class, an
// explicit retryable verdict — so clients never have to parse prose to
// decide what to do next. The codes form the HTTP projection of the
// library's typed error taxonomy (ErrBadQuery, ErrDeadlineExceeded,
// ErrCanceled, ErrPageCorrupt, ErrInjected, …) plus the serving layer's
// own overload outcomes.

// ErrorEnvelope is the uniform error response body.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody is the typed error payload.
type ErrorBody struct {
	// Code is the machine-readable failure class (see the Code* constants).
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
	// Retryable reports whether retrying the same request can succeed.
	Retryable bool `json:"retryable"`
	// RetryAfterMS, when nonzero, is the server's backoff hint — the same
	// value the Retry-After header carries, in milliseconds.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// The error codes of the serving layer. Clients switch on these; the
// set only grows.
const (
	// CodeBadRequest: malformed JSON, invalid window/interval/k, a query
	// trajectory not covering its period. Not retryable.
	CodeBadRequest = "bad_request"
	// CodeNotFound: an unknown trajectory id. Not retryable.
	CodeNotFound = "not_found"
	// CodeConflict: a duplicate trajectory id on ingest. Not retryable
	// (use an Idempotency-Key to make retries safe).
	CodeConflict = "conflict"
	// CodeRateLimited: the tenant's token bucket is empty. Retryable
	// after the Retry-After hint.
	CodeRateLimited = "rate_limited"
	// CodeOverloaded: the global concurrency limiter's wait queue is
	// full, or the wait timed out — the server is shedding load.
	// Retryable after the Retry-After hint.
	CodeOverloaded = "overloaded"
	// CodeDeadlineExceeded: the request's deadline expired mid-query.
	// Retryable (ideally with a looser deadline).
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeCanceled: the client went away mid-query. Reported for
	// completeness; the client rarely sees it.
	CodeCanceled = "canceled"
	// CodeCorrupt: an index page failed checksum verification. Not
	// retryable until an operator runs recovery.
	CodeCorrupt = "corrupt"
	// CodeUnavailable: a transient storage fault surfaced. Retryable.
	CodeUnavailable = "unavailable"
	// CodeNotDurable: a durability operation (checkpoint) on a DB not
	// opened with OpenDurable. Not retryable.
	CodeNotDurable = "not_durable"
	// CodeInternal: anything not in the taxonomy — a bug to report.
	CodeInternal = "internal"
)

// StatusClientClosedRequest is the (nginx-convention) status for a
// request aborted because its client disconnected; no standard code
// exists and the client is gone, but the access log should still tell
// load-shed apart from walk-away.
const StatusClientClosedRequest = 499

// envelopeFor maps an error from the query/mutation path onto its HTTP
// status and typed body. The deadline check runs before the cancel check:
// ErrDeadlineExceeded wraps ErrCanceled, so the order is what splits
// "timed out" from "client went away".
func envelopeFor(err error) (int, ErrorBody) {
	switch {
	case errors.Is(err, mstsearch.ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, ErrorBody{
			Code: CodeDeadlineExceeded, Message: err.Error(), Retryable: true,
		}
	case errors.Is(err, mstsearch.ErrCanceled) || errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, ErrorBody{
			Code: CodeCanceled, Message: err.Error(), Retryable: false,
		}
	case errors.Is(err, mstsearch.ErrDuplicateID):
		return http.StatusConflict, ErrorBody{
			Code: CodeConflict, Message: err.Error(), Retryable: false,
		}
	case errors.Is(err, mstsearch.ErrNotDurable):
		return http.StatusBadRequest, ErrorBody{
			Code: CodeNotDurable, Message: err.Error(), Retryable: false,
		}
	case errors.Is(err, mstsearch.ErrBadQuery) || errors.Is(err, mstsearch.ErrBadWindow) ||
		errors.Is(err, mstsearch.ErrUnknownMetric):
		return http.StatusBadRequest, ErrorBody{
			Code: CodeBadRequest, Message: err.Error(), Retryable: false,
		}
	case errors.Is(err, mstsearch.ErrPageCorrupt{}):
		return http.StatusInternalServerError, ErrorBody{
			Code: CodeCorrupt, Message: err.Error(), Retryable: false,
		}
	case errors.Is(err, mstsearch.ErrInjected):
		return http.StatusServiceUnavailable, ErrorBody{
			Code: CodeUnavailable, Message: err.Error(), Retryable: true,
			RetryAfterMS: 50,
		}
	case errors.Is(err, mstsearch.ErrUnavailable):
		// Every replica of some shard is quarantined, or a quorum write
		// could not gather enough acks. Anti-entropy repair re-admits
		// replicas in the background, so a retry after a beat can win.
		return http.StatusServiceUnavailable, ErrorBody{
			Code: CodeUnavailable, Message: err.Error(), Retryable: true,
			RetryAfterMS: 250,
		}
	case errors.Is(err, mstsearch.ErrWALCorrupt) || errors.Is(err, mstsearch.ErrBadSnapshot) ||
		errors.Is(err, mstsearch.ErrSnapshotCRC) || errors.Is(err, mstsearch.ErrSnapshotVersion) ||
		errors.Is(err, mstsearch.ErrSnapshotKind) || errors.Is(err, mstsearch.ErrUnknownIndexKind) ||
		errors.Is(err, index.ErrCorruptNode) || errors.Is(err, storage.ErrBadDiskFile):
		// Durable-state damage discovered on open, replay or traversal:
		// like a checksum failure, nothing a client retry can fix.
		return http.StatusInternalServerError, ErrorBody{
			Code: CodeCorrupt, Message: err.Error(), Retryable: false,
		}
	case errors.Is(err, storage.ErrPageOutOfRange) || errors.Is(err, storage.ErrBadPageSize) ||
		errors.Is(err, storage.ErrPageTooSmall) || errors.Is(err, storage.ErrFileFull):
		// Pager misuse or exhaustion escaping the library is a bug in the
		// serving path, not a client problem.
		return http.StatusInternalServerError, ErrorBody{
			Code: CodeInternal, Message: err.Error(), Retryable: false,
		}
	case errors.As(err, new(*notFoundError)):
		return http.StatusNotFound, ErrorBody{
			Code: CodeNotFound, Message: err.Error(), Retryable: false,
		}
	case errors.As(err, new(*badRequestError)):
		return http.StatusBadRequest, ErrorBody{
			Code: CodeBadRequest, Message: err.Error(), Retryable: false,
		}
	default:
		return http.StatusInternalServerError, ErrorBody{
			Code: CodeInternal, Message: err.Error(), Retryable: false,
		}
	}
}

// badRequestError marks a request the handler rejected before touching
// the DB (malformed JSON, missing fields).
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

// badRequestf builds a typed bad-request error.
func badRequestf(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// notFoundError marks a reference to a trajectory the store does not
// hold.
type notFoundError struct{ msg string }

func (e *notFoundError) Error() string { return e.msg }

// notFoundf builds a typed not-found error.
func notFoundf(format string, args ...any) error {
	return &notFoundError{msg: fmt.Sprintf(format, args...)}
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past WriteHeader are connection failures the
	// client observes directly; nothing useful remains to do here.
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the typed envelope for err, setting Retry-After when
// the body carries a backoff hint.
func writeError(w http.ResponseWriter, err error) (status int, body ErrorBody) {
	status, body = envelopeFor(err)
	writeShaped(w, status, body)
	return status, body
}

// writeShaped writes an explicit (status, body) pair — the path the
// admission layer uses for its load-shed envelopes.
func writeShaped(w http.ResponseWriter, status int, body ErrorBody) {
	if body.RetryAfterMS > 0 {
		// Retry-After is whole seconds; round up so the hint is never
		// shorter than the body's millisecond value.
		secs := (body.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, ErrorEnvelope{Error: body})
}

// retryAfterMS renders a duration as a milliseconds hint, at least 1.
func retryAfterMS(d time.Duration) int64 {
	ms := d.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}
