package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	mstsearch "mstsearch"
	"mstsearch/internal/gstd"
	"mstsearch/internal/shard"
	"mstsearch/internal/storage"
	"mstsearch/internal/testutil"
)

// Health surface over a replicated engine: /healthz must expose the
// per-shard/per-replica breakdown, degrade its status the moment a
// replica leaves the rotation, report repair stamps once anti-entropy
// re-seeds it, and keep the bare three-field contract under ?quick=1.

// newReplicatedCluster builds a 2-shard, 2-replica in-memory cluster
// over the synthetic fleet.
func newReplicatedCluster(t testing.TB, objects int) *shard.Cluster {
	t.Helper()
	data := gstd.Generate(gstd.Config{NumObjects: objects, SamplesPerObject: 48, Seed: 7})
	c, err := shard.New(mstsearch.RTree3D, 2, shard.HashPlacement{}, shard.Options{Replicas: 2})
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	for i := range data.Trajs {
		if err := c.Add(data.Trajs[i]); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// newHTTPServer fronts an already-built Server with an httptest
// listener, torn down (with the cluster) at test end.
func newHTTPServer(t testing.TB, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

func getHealth(t *testing.T, url string) (int, HealthResponse) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer res.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(res.Body).Decode(&h); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	return res.StatusCode, h
}

func TestHealthReportsReplicaBreakdown(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := newReplicatedCluster(t, 20)
	srv := NewEngine(c, DefaultConfig())
	ts := newHTTPServer(t, srv)

	status, h := getHealth(t, ts.URL+"/healthz")
	if status != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthy cluster: status %d body %+v", status, h)
	}
	if h.Shards != 2 || len(h.Replicas) != 4 {
		t.Fatalf("breakdown = %d shards, %d replicas; want 2 and 4: %+v", h.Shards, len(h.Replicas), h)
	}
	total := 0
	for _, rh := range h.Replicas {
		if rh.State != "healthy" {
			t.Fatalf("replica %+v not healthy at rest", rh)
		}
		if rh.Replica == 0 {
			total += rh.Trajectories
		}
	}
	if total != h.Trajectories {
		t.Fatalf("replica trajectory counts sum to %d, cluster reports %d", total, h.Trajectories)
	}

	// The quick probe keeps the bare contract: no breakdown, even on a
	// replicated engine.
	status, quick := getHealth(t, ts.URL+"/healthz?quick=1")
	if status != http.StatusOK || quick.Status != "ok" {
		t.Fatalf("quick probe: status %d body %+v", status, quick)
	}
	if quick.Shards != 0 || quick.Replicas != nil {
		t.Fatalf("quick probe leaked the breakdown: %+v", quick)
	}
}

func TestHealthDegradesAndRecoversWithReplicas(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := newReplicatedCluster(t, 20)
	srv := NewEngine(c, DefaultConfig())
	ts := newHTTPServer(t, srv)

	// Kill replica 0 of shard 1 and drive reads until the health state
	// machine quarantines it.
	c.Replica(1, 0).SetPagerWrapper(func(p mstsearch.Pager) mstsearch.Pager {
		return &storage.FaultyPager{Inner: p, FailReadAt: 1, Permanent: true}
	})
	for i := 0; i < 8; i++ {
		if _, err := c.Nearest(context.Background(), 0.5, 0.5, 0.5, 2); err != nil {
			t.Fatalf("read %d through degraded cluster: %v", i, err)
		}
	}

	_, h := getHealth(t, ts.URL+"/healthz")
	if h.Status != "degraded" {
		t.Fatalf("status %q with a quarantined replica, want degraded: %+v", h.Status, h)
	}
	sawQuarantine := false
	for _, rh := range h.Replicas {
		if rh.Shard == 1 && rh.Replica == 0 {
			sawQuarantine = rh.State == "quarantined" && rh.LastError != ""
		}
	}
	if !sawQuarantine {
		t.Fatalf("breakdown does not show the quarantined replica: %+v", h.Replicas)
	}

	// Repair re-admits it; health recovers and carries the repair stamp.
	if _, err := c.RepairNow(context.Background()); err != nil {
		t.Fatalf("RepairNow: %v", err)
	}
	_, h = getHealth(t, ts.URL+"/healthz")
	if h.Status != "ok" {
		t.Fatalf("status %q after repair, want ok: %+v", h.Status, h)
	}
	for _, rh := range h.Replicas {
		if rh.Shard == 1 && rh.Replica == 0 && rh.LastRepair == "" {
			t.Fatalf("repaired replica carries no LastRepair stamp: %+v", rh)
		}
	}
}

// TestUnavailableEnvelope pins the HTTP mapping of ErrUnavailable: a
// shard with its whole rotation quarantined (or a quorum miss) is a
// retryable 503 with backoff advice — repair may re-admit replicas a
// beat later — never a 500.
func TestUnavailableEnvelope(t *testing.T) {
	status, body := envelopeFor(fmt.Errorf("shard 1: %w", mstsearch.ErrUnavailable))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", status)
	}
	if body.Code != CodeUnavailable || !body.Retryable || body.RetryAfterMS <= 0 {
		t.Fatalf("body %+v, want retryable unavailable with backoff advice", body)
	}
}
