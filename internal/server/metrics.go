package server

import (
	"errors"
	"time"

	mstsearch "mstsearch"
	"mstsearch/internal/obs"
)

// Server metric families, in the process-wide obs registry (so they ride
// the existing expvar export next to the db.query.* and storage.pool.*
// families):
//
//	server.requests.<route>.total     requests that reached the route
//	server.requests.<route>.errors    non-shed failures (typed envelopes)
//	server.requests.<route>.shed      admission rejections (429s)
//	server.requests.<route>.timeout   deadline-exceeded outcomes
//	server.requests.<route>.seconds   latency histogram
//	server.queue.depth                concurrency-limiter wait-queue depth
//	server.coalesce.batches           coalesced batches executed
//	server.coalesce.queries           k-MST queries answered via coalescing
//
// Handles resolve once at package init; recording is atomic adds on the
// hot path.

// routeMetrics is one route's instrument set.
type routeMetrics struct {
	total, errors, shed, timeout *obs.Counter
	seconds                      *obs.Histogram
}

func newRouteMetrics(route string) *routeMetrics {
	p := "server.requests." + route + "."
	return &routeMetrics{
		total:   obs.Default.Counter(p + "total"),
		errors:  obs.Default.Counter(p + "errors"),
		shed:    obs.Default.Counter(p + "shed"),
		timeout: obs.Default.Counter(p + "timeout"),
		seconds: obs.Default.Histogram(p+"seconds", obs.LatencyBounds),
	}
}

// The served routes, one instrument set each.
var (
	metQuery      = newRouteMetrics("query")
	metRange      = newRouteMetrics("range")
	metNearest    = newRouteMetrics("nearest")
	metTopology   = newRouteMetrics("topology")
	metBatch      = newRouteMetrics("batch")
	metIngest     = newRouteMetrics("ingest")
	metAppend     = newRouteMetrics("append")
	metExplain    = newRouteMetrics("explain")
	metCheckpoint = newRouteMetrics("checkpoint")
	metHealth     = newRouteMetrics("healthz")
)

// Queue and coalescing instruments.
var (
	gaugeQueueDepth  = obs.Default.Gauge("server.queue.depth")
	ctrCoalesceBatch = obs.Default.Counter("server.coalesce.batches")
	ctrCoalesceQuery = obs.Default.Counter("server.coalesce.queries")
)

// finish records one request outcome: latency always, then exactly one
// of shed / timeout / errors when the request did not succeed.
func (m *routeMetrics) finish(start time.Time, status int, err error) {
	m.total.Inc()
	m.seconds.Observe(time.Since(start).Seconds())
	switch {
	case status == 429:
		m.shed.Inc()
	case err != nil && errors.Is(err, mstsearch.ErrDeadlineExceeded):
		m.timeout.Inc()
	case err != nil || status >= 400:
		m.errors.Inc()
	}
}
