package wal

import "mstsearch/internal/obs"

// Process-wide WAL metrics in the obs registry. Handles resolve once at
// init; each log operation costs at most one atomic add, and a database
// without a WAL (the in-memory mode) never touches them at all.
var (
	metAppends     = obs.Default.Counter("wal.appends")
	metFsyncs      = obs.Default.Counter("wal.fsyncs")
	metReplayed    = obs.Default.Counter("wal.replayed")
	metTruncations = obs.Default.Counter("wal.truncations")
)
