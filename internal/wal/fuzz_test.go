package wal

import (
	"bytes"
	"testing"
)

// FuzzWALFrame drives the frame decoder with arbitrary bytes: it must
// never panic, never claim to consume more bytes than it was given, and
// every frame it accepts must re-encode to exactly the bytes it decoded
// — the decoder cannot invent or lose payload. Seeds cover the empty
// frame, a normal frame, and adversarial prefixes.
func FuzzWALFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFrame(nil, 1, []byte("add record payload")))
	f.Add(EncodeFrame(nil, 2, nil))
	f.Add(append(EncodeFrame(nil, 1, []byte("first")), EncodeFrame(nil, 2, []byte("second"))...))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decoded frame consumed %d of %d bytes", n, len(data))
		}
		reenc := EncodeFrame(nil, rec.Type, rec.Payload)
		if !bytes.Equal(reenc, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", reenc, data[:n])
		}
	})
}
