package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// appendN appends n records with recognizable payloads and returns them.
func appendN(t *testing.T, l *Log, start, n int) []Record {
	t.Helper()
	var recs []Record
	for i := start; i < start+n; i++ {
		typ := uint8(1 + i%2)
		payload := []byte(fmt.Sprintf("record-%04d", i))
		if err := l.Append(typ, payload); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		recs = append(recs, Record{Type: typ, Payload: payload})
	}
	return recs
}

func sameRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d: got (%d, %q), want (%d, %q)",
				i, got[i].Type, got[i].Payload, want[i].Type, want[i].Payload)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	for _, policy := range []Policy{PolicyAlways, PolicyGrouped, PolicyNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, recs, err := Open(dir, 0, Options{Policy: policy, GroupEvery: 3})
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 0 {
				t.Fatalf("fresh log replayed %d records", len(recs))
			}
			want := appendN(t, l, 0, 25)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			l2, got, err := Open(dir, 0, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			sameRecords(t, got, want)
		})
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 0, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 0, 40) // ~20 B frames: many rotations
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 4 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	for _, s := range segs {
		if s.Epoch != 0 {
			t.Fatalf("unexpected epoch %d", s.Epoch)
		}
	}
	_, got, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got, want)
}

// TestTornTailEveryCut truncates the final segment at every byte offset:
// replay must always succeed, yielding a prefix of the appended records,
// and a subsequent append/replay cycle must stay consistent.
func TestTornTailEveryCut(t *testing.T) {
	build := func(dir string) []Record {
		l, _, err := Open(dir, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		recs := appendN(t, l, 0, 8)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return recs
	}

	refDir := t.TempDir()
	want := build(refDir)
	segs, err := Segments(refDir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment: %v, %v", segs, err)
	}
	raw, err := os.ReadFile(filepath.Join(refDir, segs[0].Name))
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(raw); cut++ {
		dir := t.TempDir()
		path := filepath.Join(dir, segs[0].Name)
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, got, err := Open(dir, 0, Options{})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if len(got) > len(want) {
			t.Fatalf("cut %d: more records out than in", cut)
		}
		sameRecords(t, got, want[:len(got)])
		// The log must accept appends after tail truncation and replay
		// the combined sequence next time.
		if err := l.Append(9, []byte("after-crash")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		_, got2, err := Open(dir, 0, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		sameRecords(t, got2, append(append([]Record{}, want[:len(got)]...), Record{Type: 9, Payload: []byte("after-crash")}))
	}
}

// TestMidLogDamageIsCorruption flips a byte inside an early frame — with
// valid frames after it — and in a non-final segment: both must surface
// ErrWALCorrupt rather than silently dropping committed records.
func TestMidLogDamageIsCorruption(t *testing.T) {
	t.Run("damaged frame before valid ones", func(t *testing.T) {
		dir := t.TempDir()
		l, _, err := Open(dir, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 0, 6)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _ := Segments(dir)
		path := filepath.Join(dir, segs[0].Name)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[headerSize+8] ^= 0xFF // inside the first frame's payload
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, 0, Options{}); !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("mid-log damage: got %v, want ErrWALCorrupt", err)
		}
	})

	t.Run("damage in non-final segment", func(t *testing.T) {
		dir := t.TempDir()
		l, _, err := Open(dir, 0, Options{SegmentBytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 0, 12)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _ := Segments(dir)
		if len(segs) < 2 {
			t.Fatalf("need several segments, got %d", len(segs))
		}
		path := filepath.Join(dir, segs[0].Name)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Truncating a non-final segment is damage even at the tail.
		if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, 0, Options{}); !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("non-final segment damage: got %v, want ErrWALCorrupt", err)
		}
	})
}

func TestEpochIsolationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	l0, _, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l0, 0, 5)
	if err := l0.Close(); err != nil {
		t.Fatal(err)
	}

	// A new epoch ignores epoch-0 records.
	l1, recs, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("epoch 1 replayed %d epoch-0 records", len(recs))
	}
	want := appendN(t, l1, 100, 3)
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}

	if err := RemoveEpochsBelow(dir, 1); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s.Epoch < 1 {
			t.Fatalf("epoch-0 segment %s survived truncation", s.Name)
		}
	}
	_, got, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got, want)
}

func TestSizeTracksAppends(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := l.Size()
	if err := l.Append(1, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if grow := l.Size() - before; grow != 100+frameOverhead {
		t.Fatalf("size grew %d, want %d", grow, 100+frameOverhead)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Size survives reopen (same epoch accumulates).
	l2, _, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Size() < 100+frameOverhead {
		t.Fatalf("reopened size %d lost the appended record", l2.Size())
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, []byte("x")); err == nil {
		t.Fatal("append after close must fail")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync after close must fail")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close must be a no-op: %v", err)
	}
}

func TestFrameCodecEdgeCases(t *testing.T) {
	// Empty payload round-trips.
	b := EncodeFrame(nil, 7, nil)
	rec, n, err := DecodeFrame(b)
	if err != nil || n != len(b) || rec.Type != 7 || len(rec.Payload) != 0 {
		t.Fatalf("empty payload: %v %d %+v", err, n, rec)
	}
	// A frame claiming an absurd length fails cleanly.
	bad := make([]byte, 32)
	binary.LittleEndian.PutUint32(bad, 1<<30)
	if _, _, err := DecodeFrame(bad); !errors.Is(err, errFrameBad) {
		t.Fatalf("absurd length: %v", err)
	}
	// Truncation anywhere inside a frame reads as torn.
	full := EncodeFrame(nil, 3, []byte("payload"))
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeFrame(full[:cut]); err == nil {
			t.Fatalf("cut %d decoded", cut)
		}
	}
}
