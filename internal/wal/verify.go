package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// VerifySegment re-reads one segment file, checking the header and every
// frame CRC without repairing or truncating anything — the read-only
// counterpart of the replay path that the offline scrubber (`mststore
// verify`) walks the log with. frames counts the decodable records; torn
// reports a tail cut short mid-append, which recovery tolerates if and
// only if this is the log's final segment (pass last accordingly); err
// is ErrWALCorrupt-wrapped damage that replay would refuse to cross.
func VerifySegment(path string, epoch, seq uint32, last bool) (frames int, torn bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, false, err
	}
	if len(raw) < headerSize || [8]byte(raw[:8]) != segmentMagic ||
		binary.LittleEndian.Uint32(raw[8:12]) != epoch ||
		binary.LittleEndian.Uint32(raw[12:16]) != seq {
		// Same classification as replay: a bad or short header on the
		// final segment is a torn segment creation unless decodable
		// frames follow it.
		if last && !decodableFrameAfter(raw, 0) {
			return 0, true, nil
		}
		return 0, false, fmt.Errorf("%w: %s: bad segment header", ErrWALCorrupt, filepath.Base(path))
	}
	off := headerSize
	for off < len(raw) {
		_, n, derr := DecodeFrame(raw[off:])
		if derr != nil {
			if !last {
				return frames, false, fmt.Errorf("%w: %s at offset %d: %v", ErrWALCorrupt, filepath.Base(path), off, derr)
			}
			if errors.Is(derr, errFrameBad) && decodableFrameAfter(raw, off) {
				return frames, false, fmt.Errorf("%w: %s at offset %d: damaged frame before valid records", ErrWALCorrupt, filepath.Base(path), off)
			}
			return frames, true, nil
		}
		frames++
		off += n
	}
	return frames, false, nil
}
