// Package wal is the write-ahead log underneath the durable database
// mode: an append-only journal of mutations, written and fsynced before
// each mutation is applied, so that everything acknowledged to a caller
// survives a crash and is replayed on the next open.
//
// # On-disk format
//
// A log is a directory of segment files named wal-<epoch>-<seq>.log.
// The epoch counts checkpoints: a checkpoint writes a snapshot covering
// every record of epoch E and starts a fresh epoch E+1, after which the
// epoch-E segments are garbage. The seq numbers segments within an epoch;
// a segment is rotated out when it exceeds Options.SegmentBytes.
//
// Each segment starts with a 16-byte header:
//
//	magic "MSTWAL1\x00"   8 B
//	epoch                 u32 (little endian)
//	seq                   u32
//
// followed by length-prefixed, CRC32-framed records:
//
//	payload length        u32 (little endian)
//	record type           u8
//	payload               length bytes
//	crc32 (IEEE)          u32, over type byte + payload
//
// The CRC seals each frame individually, so a torn tail — the process
// died mid-append — damages only the final frame. Replay stops cleanly at
// the first bad frame of the *last* segment (the torn tail is truncated
// away on the next Open); a bad frame anywhere else, or a bad frame in
// the last segment that is followed by a decodable one, is mid-log damage
// and surfaces as ErrWALCorrupt — committed records may be missing, so
// the caller must not silently serve a hole.
//
// # Durability policies
//
// PolicyAlways fsyncs after every append: a nil return from Append means
// the record is on stable storage. PolicyGrouped fsyncs every
// GroupEvery-th append (and on Sync/Close): cheaper, but the last
// unsynced group can vanish in a crash. PolicyNever leaves flushing to
// the OS entirely. Under every policy the log is append-ordered, so
// whatever survives a crash is a strict prefix of what was appended.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// ErrWALCorrupt reports mid-log damage: a frame that fails its checksum
// (or length sanity) at a position replay cannot attribute to a torn
// tail. Recovering past it would silently drop committed records, so
// Open surfaces the error instead.
var ErrWALCorrupt = errors.New("wal: log corrupt before tail")

// Policy selects when appends reach stable storage.
type Policy int

const (
	// PolicyAlways fsyncs every append before returning: an
	// acknowledged record is durable.
	PolicyAlways Policy = iota
	// PolicyGrouped fsyncs every GroupEvery-th append, trading the last
	// unsynced group for fewer fsyncs.
	PolicyGrouped
	// PolicyNever never fsyncs; the OS flushes when it pleases.
	PolicyNever
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyGrouped:
		return "grouped"
	case PolicyNever:
		return "never"
	default:
		return "always"
	}
}

// File is the slice of *os.File the log writes through, narrowed so
// tests can interpose fault injection (see storage.PowercutFile).
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options tunes a log; the zero value is a safe default (fsync every
// append, 1 MiB segments).
type Options struct {
	// Policy is the fsync policy (default PolicyAlways).
	Policy Policy
	// GroupEvery is the PolicyGrouped fsync interval in appends
	// (default 8; ignored by the other policies).
	GroupEvery int
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes (default 1 MiB).
	SegmentBytes int64
	// OpenFile, when non-nil, replaces os.OpenFile for segment creation —
	// the fault-injection seam crash tests hang a powercut wrapper on.
	// It must create (or truncate) the file at path for appending.
	OpenFile func(path string) (File, error)
}

func (o *Options) fill() {
	if o.GroupEvery <= 0 {
		o.GroupEvery = 8
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.OpenFile == nil {
		o.OpenFile = func(path string) (File, error) {
			return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		}
	}
}

// Record is one journaled operation: an opaque payload discriminated by
// a caller-defined type byte.
type Record struct {
	Type    uint8
	Payload []byte
}

const (
	headerSize    = 16
	frameOverhead = 4 + 1 + 4 // length + type + crc
	// maxPayload bounds a frame's claimed payload so a corrupt length
	// prefix fails cleanly instead of provoking a huge allocation.
	maxPayload = 1 << 28
)

var segmentMagic = [8]byte{'M', 'S', 'T', 'W', 'A', 'L', '1', 0}

// EncodeFrame appends one framed record to dst and returns the extended
// slice: length prefix, type byte, payload, CRC32 over type+payload.
func EncodeFrame(dst []byte, typ uint8, payload []byte) []byte {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:5])
	crc.Write(payload)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	return append(dst, sum[:]...)
}

// Frame-decoding outcomes below the error level: a frame either decodes,
// is cut short by the end of input (torn tail candidate), or is present
// but damaged.
var (
	// errFrameTorn reports input ending mid-frame.
	errFrameTorn = errors.New("wal: truncated frame")
	// errFrameBad reports a complete frame failing its checksum or
	// length sanity check.
	errFrameBad = errors.New("wal: bad frame")
)

// DecodeFrame decodes the first frame of b, returning the record and the
// number of bytes consumed. It never panics on arbitrary input: a frame
// cut short by len(b) returns errFrameTorn; an implausible length or a
// checksum mismatch returns errFrameBad.
func DecodeFrame(b []byte) (Record, int, error) {
	if len(b) < frameOverhead {
		return Record{}, 0, errFrameTorn
	}
	n := binary.LittleEndian.Uint32(b[:4])
	if n > maxPayload {
		return Record{}, 0, errFrameBad
	}
	total := frameOverhead + int(n)
	if len(b) < total {
		return Record{}, 0, errFrameTorn
	}
	crc := crc32.NewIEEE()
	crc.Write(b[4 : 5+n])
	if crc.Sum32() != binary.LittleEndian.Uint32(b[5+n:total]) {
		return Record{}, 0, errFrameBad
	}
	return Record{Type: b[4], Payload: b[5 : 5+n : 5+n]}, total, nil
}

// SegmentName returns the file name of segment (epoch, seq).
func SegmentName(epoch, seq uint32) string {
	return fmt.Sprintf("wal-%08d-%08d.log", epoch, seq)
}

// SegmentInfo identifies one on-disk segment file.
type SegmentInfo struct {
	Epoch, Seq uint32
	Name       string
}

// Segments lists the log's segment files in (epoch, seq) order.
func Segments(dir string) ([]SegmentInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []SegmentInfo
	for _, e := range ents {
		var epoch, seq uint32
		if _, err := fmt.Sscanf(e.Name(), "wal-%d-%d.log", &epoch, &seq); err == nil {
			segs = append(segs, SegmentInfo{Epoch: epoch, Seq: seq, Name: e.Name()})
		}
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].Epoch != segs[j].Epoch {
			return segs[i].Epoch < segs[j].Epoch
		}
		return segs[i].Seq < segs[j].Seq
	})
	return segs, nil
}

// RemoveEpochsBelow deletes every segment of an epoch earlier than keep —
// the truncation half of a checkpoint — and fsyncs the directory so the
// deletions are durable.
func RemoveEpochsBelow(dir string, keep uint32) error {
	segs, err := Segments(dir)
	if err != nil {
		return err
	}
	removed := false
	for _, s := range segs {
		if s.Epoch < keep {
			if err := os.Remove(filepath.Join(dir, s.Name)); err != nil {
				return err
			}
			removed = true
		}
	}
	if removed {
		metTruncations.Inc()
		return SyncDir(dir)
	}
	return nil
}

// SyncDir fsyncs a directory, making renames and removals within it
// durable. On filesystems that refuse directory fsync the error is
// reported as is; callers on mainstream Linux filesystems get real
// durability.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Log is an open write-ahead log for one epoch. It is not safe for
// concurrent use; the durable DB serializes appends under its write lock.
type Log struct {
	dir   string
	epoch uint32
	o     Options

	f        File   // active segment
	seq      uint32 // active segment's seq
	segSize  int64  // bytes written to the active segment
	size     int64  // bytes across every epoch segment, headers included
	unsynced int    // appends since the last fsync (PolicyGrouped)
	buf      []byte // frame scratch, reused across appends
}

// Open opens the log for epoch in dir, replaying every decodable record
// of that epoch in order. A torn tail — a damaged or truncated final
// frame at the end of the last segment — is tolerated: replay stops
// before it, the tail is truncated away, and appending resumes there.
// Damage anywhere else returns ErrWALCorrupt. Records of earlier epochs
// are ignored (they are covered by the checkpoint snapshot that started
// this epoch).
func Open(dir string, epoch uint32, o Options) (*Log, []Record, error) {
	o.fill()
	segs, err := Segments(dir)
	if err != nil {
		return nil, nil, err
	}
	var cur []SegmentInfo
	for _, s := range segs {
		if s.Epoch == epoch {
			cur = append(cur, s)
		}
	}
	l := &Log{dir: dir, epoch: epoch, o: o}
	var records []Record
	for i, s := range cur {
		recs, valid, err := readSegment(filepath.Join(dir, s.Name), s.Epoch, s.Seq, i == len(cur)-1)
		if err != nil {
			return nil, nil, err
		}
		records = append(records, recs...)
		l.size += valid
		l.seq = s.Seq
		l.segSize = valid
	}
	metReplayed.Add(uint64(len(records)))
	// Appends continue in a fresh segment: reopening the torn-tail file
	// for append through the OpenFile seam would force every injected
	// file to support reopen semantics, and a rotation boundary is
	// exactly as durable.
	if len(cur) > 0 {
		l.seq++
	}
	if err := l.rotate(); err != nil {
		return nil, nil, err
	}
	return l, records, nil
}

// readSegment decodes one segment file. last marks the log's final
// segment, whose torn tail is tolerated and truncated; valid is the
// byte length of the well-formed prefix (header included).
func readSegment(path string, epoch, seq uint32, last bool) (records []Record, valid int64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(raw) < headerSize || [8]byte(raw[:8]) != segmentMagic ||
		binary.LittleEndian.Uint32(raw[8:12]) != epoch ||
		binary.LittleEndian.Uint32(raw[12:16]) != seq {
		// A bad or short header on the final segment is a torn segment
		// creation — unless decodable frames follow, in which case
		// records were committed here and the header damage is real
		// corruption, not a torn write.
		if last && !decodableFrameAfter(raw, 0) {
			return nil, 0, os.Remove(path)
		}
		return nil, 0, fmt.Errorf("%w: %s: bad segment header", ErrWALCorrupt, filepath.Base(path))
	}
	off := headerSize
	for off < len(raw) {
		rec, n, derr := DecodeFrame(raw[off:])
		if derr != nil {
			if !last {
				return nil, 0, fmt.Errorf("%w: %s at offset %d: %v", ErrWALCorrupt, filepath.Base(path), off, derr)
			}
			// Torn tail vs mid-log damage in the final segment: a frame
			// cut short by EOF is a torn append. A complete frame that
			// fails its CRC is only tolerable if nothing decodable
			// follows it — if a later frame decodes, records before it
			// were committed and this is real damage.
			if errors.Is(derr, errFrameBad) && decodableFrameAfter(raw, off) {
				return nil, 0, fmt.Errorf("%w: %s at offset %d: damaged frame before valid records", ErrWALCorrupt, filepath.Base(path), off)
			}
			if err := os.Truncate(path, int64(off)); err != nil {
				return nil, 0, err
			}
			return records, int64(off), nil
		}
		records = append(records, rec)
		off += n
	}
	return records, int64(off), nil
}

// decodableFrameAfter reports whether any byte position after the bad
// frame at off starts a decodable frame — evidence that the damage sits
// mid-log rather than at the torn tail.
func decodableFrameAfter(raw []byte, off int) bool {
	// Skip the damaged frame by its claimed length when plausible,
	// otherwise scan byte-by-byte; either way a surviving later frame
	// is found if one exists.
	start := off + 1
	if off+4 > len(raw) {
		return false
	}
	if n := binary.LittleEndian.Uint32(raw[off : off+4]); n <= maxPayload {
		if skip := off + frameOverhead + int(n); skip < len(raw) {
			if _, _, err := DecodeFrame(raw[skip:]); err == nil {
				return true
			}
		}
	}
	for i := start; i+frameOverhead <= len(raw); i++ {
		if _, _, err := DecodeFrame(raw[i:]); err == nil {
			return true
		}
	}
	return false
}

// rotate closes the active segment (if any) and starts the next one.
func (l *Log) rotate() error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.seq++
	}
	name := SegmentName(l.epoch, l.seq)
	f, err := l.o.OpenFile(filepath.Join(l.dir, name))
	if err != nil {
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[:], segmentMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], l.epoch)
	binary.LittleEndian.PutUint32(hdr[12:16], l.seq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	// The segment must exist durably before records in it are
	// acknowledged; syncing the directory now covers the creation.
	if err := SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segSize = headerSize
	l.size += headerSize
	l.unsynced = 0
	return nil
}

// Append journals one record and applies the fsync policy. When Append
// returns nil under PolicyAlways, the record is on stable storage.
func (l *Log) Append(typ uint8, payload []byte) error {
	if l.f == nil {
		return os.ErrClosed
	}
	l.buf = EncodeFrame(l.buf[:0], typ, payload)
	if _, err := l.f.Write(l.buf); err != nil {
		return err
	}
	n := int64(len(l.buf))
	l.segSize += n
	l.size += n
	metAppends.Inc()
	switch l.o.Policy {
	case PolicyAlways:
		if err := l.sync(); err != nil {
			return err
		}
	case PolicyGrouped:
		l.unsynced++
		if l.unsynced >= l.o.GroupEvery {
			if err := l.sync(); err != nil {
				return err
			}
		}
	}
	if l.segSize >= l.o.SegmentBytes {
		return l.rotate()
	}
	return nil
}

// sync fsyncs the active segment.
func (l *Log) sync() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	metFsyncs.Inc()
	l.unsynced = 0
	return nil
}

// Sync flushes every appended record to stable storage regardless of
// policy.
func (l *Log) Sync() error {
	if l.f == nil {
		return os.ErrClosed
	}
	return l.sync()
}

// Size returns the log's total on-disk byte size for this epoch —
// the checkpoint auto-trigger's input.
func (l *Log) Size() int64 { return l.size }

// Epoch returns the epoch the log is appending to.
func (l *Log) Epoch() uint32 { return l.epoch }

// Close syncs and closes the active segment. The log cannot be used
// afterwards.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if err == nil {
		metFsyncs.Inc()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
