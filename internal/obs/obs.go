// Package obs is the process-wide observability substrate of the query
// stack: a metrics registry of atomic counters and fixed-boundary
// histograms, fed by the storage pools (hits/misses/retries/evictions per
// pool kind), the k-MST search loop (nodes visited, heap traffic, prune
// decisions, DISSIM evaluations), and the DB entry points (per-query-kind
// latency and outcomes).
//
// The package is stdlib-only and dependency-free within the repository —
// every other layer may import it without cycles. Metric handles are
// resolved once (typically into package-level vars) and updated with
// plain atomic adds, so the instrumented hot paths stay allocation-free;
// Snapshot and the expvar adapter are the read side.
package obs

import (
	"expvar"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous level — a queue depth, an in-flight request
// count — that moves both ways, unlike the monotonic Counter. Updates are
// single atomic adds, safe for concurrent use and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-boundary histogram: values are counted into the
// bucket of the first boundary they do not exceed, with one implicit
// overflow bucket past the last boundary. Boundaries are fixed at
// construction, so Observe is a binary search plus one atomic add —
// allocation-free and safe for concurrent use.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; immutable after construction
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // math.Float64bits-encoded running sum (CAS loop)
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{
		bounds:  bs,
		buckets: make([]atomic.Uint64, len(bs)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot returns a point-in-time copy of the histogram. Buckets are read
// one atomic load at a time, so a snapshot taken under concurrent
// observation is approximate across buckets but never torn within one.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is the read-side view of a Histogram.
type HistogramSnapshot struct {
	// Bounds are the ascending bucket upper bounds; Counts has one more
	// entry than Bounds (the overflow bucket).
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the boundary of the bucket holding the q-th observation (+Inf when it
// falls in the overflow bucket, 0 when the histogram is empty).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// LatencyBounds are the default latency histogram boundaries in seconds:
// 10 µs … 10 s, roughly quarter-decade spaced.
var LatencyBounds = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1, 1, 2.5, 5, 10,
}

// IOBounds are the default boundaries for per-query I/O counts (pages,
// node accesses): powers of two up to 64 K.
var IOBounds = []float64{
	0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
	1024, 2048, 4096, 8192, 16384, 32768, 65536,
}

// FanoutBounds are the default boundaries for small per-query counts —
// shards queried, shards pruned, results merged per scatter-gather query.
var FanoutBounds = []float64{
	0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64,
}

// Registry is a named collection of metrics. The zero value is not usable;
// use New. Handle resolution (Counter, Histogram) is mutex-guarded and
// intended for init time; the handles themselves are lock-free.
type Registry struct {
	mu     sync.Mutex // lockrank: 70 — registration only; handles are lock-free
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Default is the process-wide registry every instrumented layer feeds.
var Default = New()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// boundaries on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counts)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counts {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Snapshot is a point-in-time copy of a registry's metrics, keyed by
// metric name.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Expvar adapts the registry to the standard expvar protocol: publish it
// with expvar.Publish("mstsearch", registry.Expvar()) and the full
// snapshot renders as JSON under /debug/vars.
func (r *Registry) Expvar() expvar.Func {
	return expvar.Func(func() any {
		snap := r.Snapshot()
		out := make(map[string]any, len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms))
		for name, v := range snap.Counters {
			out[name] = v
		}
		for name, v := range snap.Gauges {
			out[name] = v
		}
		for name, h := range snap.Histograms {
			out[name] = map[string]any{
				"count": h.Count,
				"sum":   h.Sum,
				"mean":  h.Mean(),
				"p50":   finite(h.Quantile(0.50)),
				"p99":   finite(h.Quantile(0.99)),
			}
		}
		return out
	})
}

// finite maps ±Inf (overflow-bucket quantiles) onto -1 so the expvar JSON
// stays valid.
func finite(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return -1
	}
	return v
}
