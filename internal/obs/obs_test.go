package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"

	"mstsearch/internal/testutil"
)

func TestCounter(t *testing.T) {
	r := New()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Fatal("same name must resolve to the same counter")
	}
	if r.Counter("b") == c {
		t.Fatal("distinct names must resolve to distinct counters")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// 0.5 and 1 fall at or under bound 1; 5 under 10; 50 under 100; 500
	// overflows.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-556.5) > 1e-9 {
		t.Fatalf("sum = %g, want 556.5", s.Sum)
	}
	if math.Abs(s.Mean()-556.5/5) > 1e-9 {
		t.Fatalf("mean = %g", s.Mean())
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("q", []float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1, 2] bucket
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 2 {
		t.Fatalf("p50 = %g, want bucket bound 2", got)
	}
	h.Observe(1e9)
	if got := h.Snapshot().Quantile(1); !math.IsInf(got, 1) {
		t.Fatalf("p100 with overflow observation = %g, want +Inf", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
}

func TestConcurrentObserve(t *testing.T) {
	testutil.CheckGoroutines(t)
	r := New()
	c := r.Counter("n")
	h := r.Histogram("v", []float64{10})
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != workers*each {
		t.Fatalf("counter = %d, want %d", c.Load(), workers*each)
	}
	s := h.Snapshot()
	if s.Count != workers*each || s.Sum != workers*each {
		t.Fatalf("histogram count %d sum %g, want %d", s.Count, s.Sum, workers*each)
	}
}

func TestExpvarRendersJSON(t *testing.T) {
	r := New()
	r.Counter("hits").Add(3)
	r.Histogram("lat", LatencyBounds).Observe(0.002)
	out := r.Expvar().String() // expvar renders Func values via String()
	var m map[string]any
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if m["hits"] != float64(3) {
		t.Fatalf("hits = %v, want 3", m["hits"])
	}
	lat, ok := m["lat"].(map[string]any)
	if !ok || lat["count"] != float64(1) {
		t.Fatalf("lat = %v, want histogram summary with count 1", m["lat"])
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := New()
	c := r.Counter("x")
	c.Inc()
	s := r.Snapshot()
	c.Inc()
	if s.Counters["x"] != 1 {
		t.Fatalf("snapshot must not track later increments: %d", s.Counters["x"])
	}
}
