package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"mstsearch/internal/geom"
	"mstsearch/internal/index"
	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

func randEntry(rng *rand.Rand, id int) index.LeafEntry {
	t0 := rng.Float64() * 1000
	x, y := rng.Float64()*100, rng.Float64()*100
	return index.LeafEntry{
		TrajID: trajectory.ID(id / 100),
		SeqNo:  uint32(id % 100),
		Seg: geom.Segment{
			A: geom.STPoint{X: x, Y: y, T: t0},
			B: geom.STPoint{X: x + rng.NormFloat64(), Y: y + rng.NormFloat64(), T: t0 + rng.Float64()},
		},
	}
}

func entryKey(e index.LeafEntry) [2]uint32 { return [2]uint32{uint32(e.TrajID), e.SeqNo} }

// collectAll traverses the tree and returns every leaf entry.
func collectAll(t *testing.T, tr *Tree) []index.LeafEntry {
	t.Helper()
	if tr.Root() == storage.NilPage {
		return nil
	}
	var out []index.LeafEntry
	stack := []storage.PageID{tr.Root()}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := tr.ReadNode(id)
		if err != nil {
			t.Fatal(err)
		}
		if n.Leaf {
			out = append(out, n.Leaves...)
			continue
		}
		for _, c := range n.Children {
			stack = append(stack, c.Page)
		}
	}
	return out
}

func TestInsertSmall(t *testing.T) {
	f := storage.NewFile(4096)
	tr := New(f)
	if tr.Root() != storage.NilPage || tr.Height() != 0 {
		t.Fatal("fresh tree must be empty")
	}
	rng := rand.New(rand.NewSource(1))
	e := randEntry(rng, 0)
	if err := tr.Insert(e); err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 1 || tr.NumNodes() != 1 {
		t.Fatalf("height=%d nodes=%d", tr.Height(), tr.NumNodes())
	}
	got := collectAll(t, tr)
	if len(got) != 1 || got[0] != e {
		t.Fatalf("contents = %+v", got)
	}
	if _, err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertManyPreservesAllEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := storage.NewFile(1024) // small pages force deep trees
	tr := New(f)
	const n = 3000
	want := map[[2]uint32]bool{}
	for i := 0; i < n; i++ {
		e := randEntry(rng, i)
		if err := tr.Insert(e); err != nil {
			t.Fatal(err)
		}
		want[entryKey(e)] = true
	}
	cnt, err := tr.CheckInvariants()
	if err != nil {
		t.Fatal(err)
	}
	if cnt != n {
		t.Fatalf("invariant count = %d, want %d", cnt, n)
	}
	got := collectAll(t, tr)
	if len(got) != n {
		t.Fatalf("traversal found %d entries, want %d", len(got), n)
	}
	for _, e := range got {
		if !want[entryKey(e)] {
			t.Fatalf("unexpected entry %+v", e)
		}
		delete(want, entryKey(e))
	}
	if len(want) != 0 {
		t.Fatalf("%d entries missing", len(want))
	}
	if tr.Height() < 3 {
		t.Fatalf("expected a deep tree with 1KB pages, height = %d", tr.Height())
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := storage.NewFile(1024)
	tr := New(f)
	var all []index.LeafEntry
	for i := 0; i < 1500; i++ {
		e := randEntry(rng, i)
		all = append(all, e)
		if err := tr.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 50; q++ {
		box := geom.MBB{
			MinX: rng.Float64() * 90, MinY: rng.Float64() * 90, MinT: rng.Float64() * 900,
		}
		box.MaxX = box.MinX + rng.Float64()*30
		box.MaxY = box.MinY + rng.Float64()*30
		box.MaxT = box.MinT + rng.Float64()*300
		got, err := tr.RangeSearch(box)
		if err != nil {
			t.Fatal(err)
		}
		var want []index.LeafEntry
		for _, e := range all {
			if e.MBB().Intersects(box) {
				want = append(want, e)
			}
		}
		sortEntries(got)
		sortEntries(want)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d entries, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: entry %d mismatch", q, i)
			}
		}
	}
}

func sortEntries(es []index.LeafEntry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].TrajID != es[j].TrajID {
			return es[i].TrajID < es[j].TrajID
		}
		return es[i].SeqNo < es[j].SeqNo
	})
}

func TestBulkLoadEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var all []index.LeafEntry
	for i := 0; i < 2000; i++ {
		all = append(all, randEntry(rng, i))
	}
	f := storage.NewFile(1024)
	entries := make([]index.LeafEntry, len(all))
	copy(entries, all)
	tr, err := BulkLoad(f, entries)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := tr.CheckInvariants()
	if err != nil {
		t.Fatal(err)
	}
	if cnt != len(all) {
		t.Fatalf("bulk tree has %d entries, want %d", cnt, len(all))
	}
	// Range query equivalence against brute force.
	for q := 0; q < 20; q++ {
		box := geom.MBB{MinX: rng.Float64() * 80, MinY: rng.Float64() * 80, MinT: rng.Float64() * 800}
		box.MaxX = box.MinX + 20
		box.MaxY = box.MinY + 20
		box.MaxT = box.MinT + 200
		got, err := tr.RangeSearch(box)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, e := range all {
			if e.MBB().Intersects(box) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("bulk range query %d: %d vs %d", q, len(got), want)
		}
	}
	// Bulk-loaded trees are denser than dynamically built ones.
	f2 := storage.NewFile(1024)
	dyn := New(f2)
	for _, e := range all {
		if err := dyn.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if tr.NumNodes() >= dyn.NumNodes() {
		t.Fatalf("bulk tree (%d nodes) should be denser than dynamic (%d nodes)",
			tr.NumNodes(), dyn.NumNodes())
	}
}

func TestBulkLoadEmptyAndTiny(t *testing.T) {
	f := storage.NewFile(1024)
	tr, err := BulkLoad(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root() != storage.NilPage || tr.NumNodes() != 0 {
		t.Fatal("empty bulk load must produce empty tree")
	}
	rng := rand.New(rand.NewSource(5))
	tr2, err := BulkLoad(storage.NewFile(1024), []index.LeafEntry{randEntry(rng, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Height() != 1 || tr2.NumNodes() != 1 {
		t.Fatalf("single-entry bulk tree: height=%d nodes=%d", tr2.Height(), tr2.NumNodes())
	}
	if _, err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenWithBufferPool(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := storage.NewFile(1024)
	tr := New(f)
	for i := 0; i < 500; i++ {
		if err := tr.Insert(randEntry(rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	bp := storage.NewBufferPool(f, 8)
	view := Open(bp, tr.Meta())
	if view.Height() != tr.Height() || view.NumNodes() != tr.NumNodes() {
		t.Fatal("reopened metadata mismatch")
	}
	cnt, err := view.CheckInvariants()
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 500 {
		t.Fatalf("reopened view sees %d entries", cnt)
	}
	if s := bp.Stats(); s.Misses == 0 {
		t.Fatalf("buffered traversal should miss on first touch: %+v", s)
	}
	// A repeated root read must be served from the buffer.
	_ = view.RootMBB()
	_ = view.RootMBB()
	if s := bp.Stats(); s.Hits == 0 {
		t.Fatalf("repeated root read should hit the buffer: %+v", s)
	}
}

func TestRootMBBCoversEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := storage.NewFile(1024)
	tr := New(f)
	want := geom.EmptyMBB()
	for i := 0; i < 800; i++ {
		e := randEntry(rng, i)
		want = want.Expand(e.MBB())
		if err := tr.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.RootMBB()
	if !got.Contains(want) || !want.Contains(got) {
		t.Fatalf("root MBB %+v, want %+v", got, want)
	}
}

func TestQuadraticSplitProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 200; iter++ {
		n := 10 + rng.Intn(60)
		minFill := 1 + rng.Intn(n/3)
		boxes := make([]geom.MBB, n)
		for i := range boxes {
			x, y, tt := rng.Float64()*100, rng.Float64()*100, rng.Float64()*100
			boxes[i] = geom.MBB{MinX: x, MinY: y, MinT: tt, MaxX: x + 1, MaxY: y + 1, MaxT: tt + 1}
		}
		ga, gb := quadraticSplit(boxes, minFill)
		if len(ga)+len(gb) != n {
			t.Fatalf("split lost entries: %d + %d != %d", len(ga), len(gb), n)
		}
		if len(ga) < minFill || len(gb) < minFill {
			t.Fatalf("split violates min fill %d: %d/%d", minFill, len(ga), len(gb))
		}
		seen := map[int]bool{}
		for _, i := range append(append([]int{}, ga...), gb...) {
			if seen[i] {
				t.Fatalf("index %d assigned twice", i)
			}
			seen[i] = true
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	f := storage.NewFile(4096)
	tr := New(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(randEntry(rng, i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkLoad10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	entries := make([]index.LeafEntry, 10000)
	for i := range entries {
		entries[i] = randEntry(rng, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := make([]index.LeafEntry, len(entries))
		copy(cp, entries)
		if _, err := BulkLoad(storage.NewFile(4096), cp); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRStarSplitProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 200; iter++ {
		n := 10 + rng.Intn(60)
		minFill := 1 + rng.Intn(n/3)
		boxes := make([]geom.MBB, n)
		for i := range boxes {
			x, y, tt := rng.Float64()*100, rng.Float64()*100, rng.Float64()*100
			boxes[i] = geom.MBB{MinX: x, MinY: y, MinT: tt, MaxX: x + 1, MaxY: y + 1, MaxT: tt + 1}
		}
		ga, gb := rstarSplit(boxes, minFill)
		if len(ga)+len(gb) != n {
			t.Fatalf("split lost entries: %d + %d != %d", len(ga), len(gb), n)
		}
		if len(ga) < minFill || len(gb) < minFill {
			t.Fatalf("split violates min fill %d: %d/%d", minFill, len(ga), len(gb))
		}
		seen := map[int]bool{}
		for _, i := range append(append([]int{}, ga...), gb...) {
			if seen[i] {
				t.Fatalf("index %d assigned twice", i)
			}
			seen[i] = true
		}
	}
}

func TestRStarTreeInvariantsAndEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	var all []index.LeafEntry
	for i := 0; i < 2000; i++ {
		all = append(all, randEntry(rng, i))
	}
	rstar := New(storage.NewFile(1024))
	rstar.SetSplitAlgorithm(RStar)
	quad := New(storage.NewFile(1024))
	for _, e := range all {
		if err := rstar.Insert(e); err != nil {
			t.Fatal(err)
		}
		if err := quad.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	cnt, err := rstar.CheckInvariants()
	if err != nil {
		t.Fatal(err)
	}
	if cnt != len(all) {
		t.Fatalf("R* tree holds %d entries, want %d", cnt, len(all))
	}
	// Identical range-query answers.
	for q := 0; q < 25; q++ {
		box := geom.MBB{MinX: rng.Float64() * 80, MinY: rng.Float64() * 80, MinT: rng.Float64() * 800}
		box.MaxX = box.MinX + 25
		box.MaxY = box.MinY + 25
		box.MaxT = box.MinT + 250
		a, err := rstar.RangeSearch(box)
		if err != nil {
			t.Fatal(err)
		}
		b, err := quad.RangeSearch(box)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: R* returned %d, quadratic %d", q, len(a), len(b))
		}
	}
}
