package rtree

import (
	"math"
	"sort"

	"mstsearch/internal/geom"
)

// SplitAlgorithm selects how overflowing nodes are split.
type SplitAlgorithm int

// The supported split algorithms. Quadratic is Guttman's original (the
// default); RStar is the axis/margin-driven split of the R*-tree —
// "any member of the R-tree family" can host the paper's search (§1), and
// the two splits let the ablation benches quantify how much node quality
// affects k-MST pruning.
const (
	Quadratic SplitAlgorithm = iota
	RStar
)

// SetSplitAlgorithm switches the split used by subsequent Inserts.
func (t *Tree) SetSplitAlgorithm(a SplitAlgorithm) { t.split = a }

// rstarSplit implements the R*-tree split on 3D boxes: pick the axis with
// the smallest total margin over all distributions, then the distribution
// on that axis with the least overlap (ties: least combined volume).
// Returns the two index groups; both respect minFill.
func rstarSplit(boxes []geom.MBB, minFill int) (groupA, groupB []int) {
	n := len(boxes)
	if minFill < 1 {
		minFill = 1
	}
	maxFill := n - minFill

	type axisKey struct {
		lower func(b geom.MBB) float64
		upper func(b geom.MBB) float64
	}
	axes := []axisKey{
		{func(b geom.MBB) float64 { return b.MinX }, func(b geom.MBB) float64 { return b.MaxX }},
		{func(b geom.MBB) float64 { return b.MinY }, func(b geom.MBB) float64 { return b.MaxY }},
		{func(b geom.MBB) float64 { return b.MinT }, func(b geom.MBB) float64 { return b.MaxT }},
	}

	bestAxis, bestMargin := -1, math.Inf(1)
	type dist struct {
		order []int
		split int // group A = order[:split]
	}
	perAxis := make([][]dist, len(axes))

	for ai, ax := range axes {
		// Two sort orders per axis: by lower and by upper value.
		orders := make([][]int, 2)
		for oi, key := range []func(geom.MBB) float64{ax.lower, ax.upper} {
			ord := make([]int, n)
			for i := range ord {
				ord[i] = i
			}
			sort.Slice(ord, func(i, j int) bool { return key(boxes[ord[i]]) < key(boxes[ord[j]]) })
			orders[oi] = ord
		}
		var margin float64
		var dists []dist
		for _, ord := range orders {
			for split := minFill; split <= maxFill; split++ {
				a := coverAll(boxes, ord[:split])
				b := coverAll(boxes, ord[split:])
				margin += a.Margin() + b.Margin()
				dists = append(dists, dist{order: ord, split: split})
			}
		}
		perAxis[ai] = dists
		if margin < bestMargin {
			bestMargin, bestAxis = margin, ai
		}
	}

	// Choose the minimum-overlap distribution on the winning axis.
	bestOverlap, bestVolume := math.Inf(1), math.Inf(1)
	var chosen dist
	for _, d := range perAxis[bestAxis] {
		a := coverAll(boxes, d.order[:d.split])
		b := coverAll(boxes, d.order[d.split:])
		ov := overlapVolume(a, b)
		vol := a.Volume() + b.Volume()
		if ov < bestOverlap || (ov == bestOverlap && vol < bestVolume) {
			bestOverlap, bestVolume, chosen = ov, vol, d
		}
	}
	groupA = append(groupA, chosen.order[:chosen.split]...)
	groupB = append(groupB, chosen.order[chosen.split:]...)
	return groupA, groupB
}

func coverAll(boxes []geom.MBB, idx []int) geom.MBB {
	b := geom.EmptyMBB()
	for _, i := range idx {
		b = b.Expand(boxes[i])
	}
	return b
}

func overlapVolume(a, b geom.MBB) float64 {
	dx := math.Min(a.MaxX, b.MaxX) - math.Max(a.MinX, b.MinX)
	dy := math.Min(a.MaxY, b.MaxY) - math.Max(a.MinY, b.MinY)
	dt := math.Min(a.MaxT, b.MaxT) - math.Max(a.MinT, b.MinT)
	if dx <= 0 || dy <= 0 || dt <= 0 {
		return 0
	}
	return dx * dy * dt
}
