package rtree

import (
	"math"
	"sort"

	"mstsearch/internal/index"
	"mstsearch/internal/storage"
)

// BulkLoad builds a tree from all entries at once using Sort-Tile-Recursive
// packing on the 3D box centers (x slabs → y runs → t order). Leaves are
// filled near-uniformly so every node respects the minimum occupancy, and
// upper levels are packed from the spatially ordered child sequence. The
// entries slice is reordered in place.
func BulkLoad(pager storage.Pager, entries []index.LeafEntry) (*Tree, error) {
	t := New(pager)
	if len(entries) == 0 {
		return t, nil
	}
	strSort(entries, t.maxLeaf)

	// Pack leaves.
	level := make([]index.ChildEntry, 0, len(entries)/t.maxLeaf+1)
	for _, chunk := range evenChunks(len(entries), t.maxLeaf) {
		n, err := t.allocNode(true)
		if err != nil {
			return nil, err
		}
		n.Leaves = append(n.Leaves, entries[chunk[0]:chunk[1]]...)
		if err := t.write(n); err != nil {
			return nil, err
		}
		level = append(level, index.ChildEntry{MBB: n.MBB(), Page: n.Page})
	}
	t.height = 1

	// Pack upper levels until a single node remains.
	for len(level) > 1 {
		next := make([]index.ChildEntry, 0, len(level)/t.maxChild+1)
		for _, chunk := range evenChunks(len(level), t.maxChild) {
			n, err := t.allocNode(false)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, level[chunk[0]:chunk[1]]...)
			if err := t.write(n); err != nil {
				return nil, err
			}
			next = append(next, index.ChildEntry{MBB: n.MBB(), Page: n.Page})
		}
		level = next
		t.height++
	}
	t.root = level[0].Page
	return t, nil
}

// strSort orders entries by STR tiling: slabs along x, runs along y, then
// time order within each run, so consecutive chunks of size capacity form
// compact leaves.
func strSort(entries []index.LeafEntry, capacity int) {
	n := len(entries)
	leaves := (n + capacity - 1) / capacity
	sx := int(math.Ceil(math.Cbrt(float64(leaves))))
	perX := sx * sx * capacity // entries per x-slab (≈)
	cx := func(e index.LeafEntry) float64 { b := e.MBB(); return (b.MinX + b.MaxX) / 2 }
	cy := func(e index.LeafEntry) float64 { b := e.MBB(); return (b.MinY + b.MaxY) / 2 }
	ct := func(e index.LeafEntry) float64 { b := e.MBB(); return (b.MinT + b.MaxT) / 2 }

	sort.Slice(entries, func(i, j int) bool { return cx(entries[i]) < cx(entries[j]) })
	for lo := 0; lo < n; lo += perX {
		hi := lo + perX
		if hi > n {
			hi = n
		}
		slab := entries[lo:hi]
		sort.Slice(slab, func(i, j int) bool { return cy(slab[i]) < cy(slab[j]) })
		perY := sx * capacity
		for l2 := 0; l2 < len(slab); l2 += perY {
			h2 := l2 + perY
			if h2 > len(slab) {
				h2 = len(slab)
			}
			run := slab[l2:h2]
			sort.Slice(run, func(i, j int) bool { return ct(run[i]) < ct(run[j]) })
		}
	}
}

// evenChunks splits n items into ceil(n/capacity) nearly equal runs, returning
// [start, end) pairs. Even sizing keeps every chunk at ≥ floor(n/k) items,
// which satisfies the 40 % minimum fill whenever more than one chunk is
// needed.
func evenChunks(n, capacity int) [][2]int {
	k := (n + capacity - 1) / capacity
	out := make([][2]int, 0, k)
	base := n / k
	rem := n % k
	start := 0
	for i := 0; i < k; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, [2]int{start, start + size})
		start += size
	}
	return out
}
