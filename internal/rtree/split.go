package rtree

import (
	"math"

	"mstsearch/internal/geom"
)

// quadraticSplit partitions the boxes (by index) into two groups using
// Guttman's quadratic algorithm: seed with the pair wasting the most dead
// volume, then repeatedly assign the entry whose group preference is
// strongest, force-assigning the tail when a group must take everything
// left to reach the minimum fill.
func quadraticSplit(boxes []geom.MBB, minFill int) (groupA, groupB []int) {
	n := len(boxes)
	seedA, seedB := pickSeeds(boxes)
	groupA = append(groupA, seedA)
	groupB = append(groupB, seedB)
	mbbA, mbbB := boxes[seedA], boxes[seedB]

	remaining := make([]int, 0, n-2)
	for i := 0; i < n; i++ {
		if i != seedA && i != seedB {
			remaining = append(remaining, i)
		}
	}

	for len(remaining) > 0 {
		// Force assignment when one group needs all the rest for min fill.
		if len(groupA)+len(remaining) == minFill {
			for _, i := range remaining {
				groupA = append(groupA, i)
			}
			return groupA, groupB
		}
		if len(groupB)+len(remaining) == minFill {
			for _, i := range remaining {
				groupB = append(groupB, i)
			}
			return groupA, groupB
		}

		// PickNext: entry with the greatest preference difference.
		bestIdx, bestPos := -1, -1
		bestDiff := -1.0
		var bestDA, bestDB float64
		for pos, i := range remaining {
			dA := mbbA.Enlargement(boxes[i])
			dB := mbbB.Enlargement(boxes[i])
			diff := math.Abs(dA - dB)
			if diff > bestDiff {
				bestDiff, bestIdx, bestPos, bestDA, bestDB = diff, i, pos, dA, dB
			}
		}
		remaining[bestPos] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]

		toA := bestDA < bestDB
		if bestDA == bestDB {
			// Ties: smaller volume, then fewer entries.
			switch {
			case mbbA.Volume() != mbbB.Volume():
				toA = mbbA.Volume() < mbbB.Volume()
			default:
				toA = len(groupA) <= len(groupB)
			}
		}
		if toA {
			groupA = append(groupA, bestIdx)
			mbbA = mbbA.Expand(boxes[bestIdx])
		} else {
			groupB = append(groupB, bestIdx)
			mbbB = mbbB.Expand(boxes[bestIdx])
		}
	}
	return groupA, groupB
}

// pickSeeds returns the pair of boxes with the largest dead volume when
// combined — the most wasteful pair to keep together.
func pickSeeds(boxes []geom.MBB) (int, int) {
	sa, sb := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(boxes); i++ {
		for j := i + 1; j < len(boxes); j++ {
			d := boxes[i].Expand(boxes[j]).Volume() - boxes[i].Volume() - boxes[j].Volume()
			if d > worst {
				worst, sa, sb = d, i, j
			}
		}
	}
	return sa, sb
}
