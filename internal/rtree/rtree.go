// Package rtree implements a paged 3D R-tree over trajectory line segments
// — the "3D R-tree" of the paper's experimental study [19]: a classic
// Guttman R-tree whose keys are (x, y, t) minimum bounding boxes. It
// supports dynamic insertion with quadratic splitting and an STR bulk
// loader, and exposes the index.Tree read interface consumed by the k-MST
// search.
package rtree

import (
	"errors"
	"fmt"
	"math"

	"mstsearch/internal/geom"
	"mstsearch/internal/index"
	"mstsearch/internal/storage"
)

// MinFillRatio is the Guttman minimum node occupancy enforced on splits.
const MinFillRatio = 0.4

// Meta is the persistent root information needed to reopen a tree over a
// different pager (e.g. a buffer pool wrapped around the same file).
type Meta struct {
	Root   storage.PageID
	Height int
	Nodes  int
}

// Tree is a 3D R-tree bound to a pager.
type Tree struct {
	pager    storage.Pager
	root     storage.PageID
	height   int
	nodes    int
	maxLeaf  int
	maxChild int
	minLeaf  int
	minChild int
	split    SplitAlgorithm
}

// New creates an empty tree on the pager.
func New(pager storage.Pager) *Tree {
	t := &Tree{pager: pager, root: storage.NilPage}
	t.initFanout()
	return t
}

// Open reattaches a previously built tree (identified by its Meta) to a
// pager over the same underlying pages.
func Open(pager storage.Pager, m Meta) *Tree {
	t := &Tree{pager: pager, root: m.Root, height: m.Height, nodes: m.Nodes}
	t.initFanout()
	return t
}

func (t *Tree) initFanout() {
	ps := t.pager.PageSize()
	t.maxLeaf = index.MaxLeafEntries(ps)
	t.maxChild = index.MaxChildEntries(ps)
	t.minLeaf = int(math.Max(1, math.Floor(MinFillRatio*float64(t.maxLeaf))))
	t.minChild = int(math.Max(1, math.Floor(MinFillRatio*float64(t.maxChild))))
}

// Meta returns the tree's reopen information.
func (t *Tree) Meta() Meta { return Meta{Root: t.root, Height: t.height, Nodes: t.nodes} }

// Root implements index.Tree.
func (t *Tree) Root() storage.PageID { return t.root }

// Height implements index.Tree.
func (t *Tree) Height() int { return t.height }

// NumNodes implements index.Tree.
func (t *Tree) NumNodes() int { return t.nodes }

// ReadNode implements index.Tree.
func (t *Tree) ReadNode(id storage.PageID) (*index.Node, error) {
	return index.ReadNode(t.pager, id)
}

// RootMBB implements index.Tree.
func (t *Tree) RootMBB() geom.MBB {
	if t.root == storage.NilPage {
		return geom.EmptyMBB()
	}
	n, err := t.ReadNode(t.root)
	if err != nil {
		return geom.EmptyMBB()
	}
	return n.MBB()
}

// ErrEmptyTree is returned by operations requiring a non-empty tree.
var ErrEmptyTree = errors.New("rtree: empty tree")

func (t *Tree) allocNode(leaf bool) (*index.Node, error) {
	id, err := t.pager.Alloc()
	if err != nil {
		return nil, err
	}
	t.nodes++
	return &index.Node{
		Page:     id,
		Leaf:     leaf,
		PrevLeaf: storage.NilPage,
		NextLeaf: storage.NilPage,
	}, nil
}

func (t *Tree) write(n *index.Node) error { return index.WriteNode(t.pager, n) }

// Insert adds one trajectory segment using Guttman's algorithm: ChooseLeaf
// by least volume enlargement, quadratic split on overflow, and MBB
// adjustment up the insertion path.
func (t *Tree) Insert(e index.LeafEntry) error {
	if t.root == storage.NilPage {
		root, err := t.allocNode(true)
		if err != nil {
			return err
		}
		root.Leaves = append(root.Leaves, e)
		t.root = root.Page
		t.height = 1
		return t.write(root)
	}

	// Descend, remembering the path.
	var (
		path    []*index.Node
		pathIdx []int
	)
	cur, err := t.ReadNode(t.root)
	if err != nil {
		return err
	}
	for !cur.Leaf {
		ci := chooseSubtree(cur.Children, e.MBB())
		path = append(path, cur)
		pathIdx = append(pathIdx, ci)
		cur, err = t.ReadNode(cur.Children[ci].Page)
		if err != nil {
			return err
		}
	}

	cur.Leaves = append(cur.Leaves, e)
	var split *index.Node
	if len(cur.Leaves) > t.maxLeaf {
		split, err = t.splitLeaf(cur)
		if err != nil {
			return err
		}
	} else if err := t.write(cur); err != nil {
		return err
	}

	// Adjust MBBs upward, installing splits as they propagate.
	for i := len(path) - 1; i >= 0; i-- {
		parent := path[i]
		parent.Children[pathIdx[i]].MBB = cur.MBB()
		if split != nil {
			parent.Children = append(parent.Children,
				index.ChildEntry{MBB: split.MBB(), Page: split.Page})
			split = nil
		}
		if len(parent.Children) > t.maxChild {
			split, err = t.splitInternal(parent)
			if err != nil {
				return err
			}
		} else if err := t.write(parent); err != nil {
			return err
		}
		cur = parent
	}

	if split != nil {
		// Root split: grow the tree.
		newRoot, err := t.allocNode(false)
		if err != nil {
			return err
		}
		newRoot.Children = []index.ChildEntry{
			{MBB: cur.MBB(), Page: cur.Page},
			{MBB: split.MBB(), Page: split.Page},
		}
		t.root = newRoot.Page
		t.height++
		return t.write(newRoot)
	}
	return nil
}

// chooseSubtree picks the child needing least volume enlargement to cover
// b, breaking ties by smaller volume then lower index.
func chooseSubtree(children []index.ChildEntry, b geom.MBB) int {
	best := 0
	bestEnl := math.Inf(1)
	bestVol := math.Inf(1)
	for i, c := range children {
		enl := c.MBB.Enlargement(b)
		vol := c.MBB.Volume()
		if enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = i, enl, vol
		}
	}
	return best
}

func (t *Tree) splitLeaf(n *index.Node) (*index.Node, error) {
	boxes := make([]geom.MBB, len(n.Leaves))
	for i, e := range n.Leaves {
		boxes[i] = e.MBB()
	}
	ga, gb := t.splitGroups(boxes, t.minLeaf)
	sib, err := t.allocNode(true)
	if err != nil {
		return nil, err
	}
	oldEntries := n.Leaves
	n.Leaves = pickLeaves(oldEntries, ga)
	sib.Leaves = pickLeaves(oldEntries, gb)
	if err := t.write(n); err != nil {
		return nil, err
	}
	if err := t.write(sib); err != nil {
		return nil, err
	}
	return sib, nil
}

func (t *Tree) splitInternal(n *index.Node) (*index.Node, error) {
	boxes := make([]geom.MBB, len(n.Children))
	for i, c := range n.Children {
		boxes[i] = c.MBB
	}
	ga, gb := t.splitGroups(boxes, t.minChild)
	sib, err := t.allocNode(false)
	if err != nil {
		return nil, err
	}
	oldEntries := n.Children
	n.Children = pickChildren(oldEntries, ga)
	sib.Children = pickChildren(oldEntries, gb)
	if err := t.write(n); err != nil {
		return nil, err
	}
	if err := t.write(sib); err != nil {
		return nil, err
	}
	return sib, nil
}

// splitGroups dispatches to the configured split algorithm.
func (t *Tree) splitGroups(boxes []geom.MBB, minFill int) ([]int, []int) {
	if t.split == RStar {
		return rstarSplit(boxes, minFill)
	}
	return quadraticSplit(boxes, minFill)
}

func pickLeaves(src []index.LeafEntry, idx []int) []index.LeafEntry {
	out := make([]index.LeafEntry, len(idx))
	for i, j := range idx {
		out[i] = src[j]
	}
	return out
}

func pickChildren(src []index.ChildEntry, idx []int) []index.ChildEntry {
	out := make([]index.ChildEntry, len(idx))
	for i, j := range idx {
		out[i] = src[j]
	}
	return out
}

// RangeSearch returns all leaf entries whose MBB intersects box — the
// classic R-tree window query, used by tests and the range-query examples.
func (t *Tree) RangeSearch(box geom.MBB) ([]index.LeafEntry, error) {
	if t.root == storage.NilPage {
		return nil, nil
	}
	var out []index.LeafEntry
	stack := []storage.PageID{t.root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := t.ReadNode(id)
		if err != nil {
			return nil, err
		}
		if n.Leaf {
			for _, e := range n.Leaves {
				if e.MBB().Intersects(box) {
					out = append(out, e)
				}
			}
			continue
		}
		for _, c := range n.Children {
			if c.MBB.Intersects(box) {
				stack = append(stack, c.Page)
			}
		}
	}
	return out, nil
}

// CheckInvariants walks the whole tree verifying structural invariants:
// parent entries bound their subtrees, node occupancy respects the fan-out
// limits, every leaf sits at the same depth, and the entry/node counters
// match. It returns the total number of leaf entries.
func (t *Tree) CheckInvariants() (int, error) {
	if t.root == storage.NilPage {
		if t.height != 0 || t.nodes != 0 {
			return 0, fmt.Errorf("rtree: empty tree with height %d nodes %d", t.height, t.nodes)
		}
		return 0, nil
	}
	entries := 0
	visited := 0
	var walk func(id storage.PageID, depth int, bound geom.MBB, isRoot bool) error
	walk = func(id storage.PageID, depth int, bound geom.MBB, isRoot bool) error {
		n, err := t.ReadNode(id)
		if err != nil {
			return err
		}
		visited++
		if !bound.IsEmpty() && !bound.Contains(n.MBB()) {
			return fmt.Errorf("rtree: node %d not contained in parent entry", id)
		}
		if n.Leaf {
			if depth != t.height {
				return fmt.Errorf("rtree: leaf %d at depth %d, height %d", id, depth, t.height)
			}
			if len(n.Leaves) > t.maxLeaf {
				return fmt.Errorf("rtree: leaf %d overflow: %d", id, len(n.Leaves))
			}
			if !isRoot && len(n.Leaves) < t.minLeaf {
				return fmt.Errorf("rtree: leaf %d underflow: %d", id, len(n.Leaves))
			}
			entries += len(n.Leaves)
			return nil
		}
		if len(n.Children) > t.maxChild {
			return fmt.Errorf("rtree: node %d overflow: %d", id, len(n.Children))
		}
		if !isRoot && len(n.Children) < t.minChild {
			return fmt.Errorf("rtree: node %d underflow: %d", id, len(n.Children))
		}
		if isRoot && len(n.Children) < 2 {
			return fmt.Errorf("rtree: internal root with %d children", len(n.Children))
		}
		for _, c := range n.Children {
			if err := walk(c.Page, depth+1, c.MBB, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, geom.EmptyMBB(), true); err != nil {
		return 0, err
	}
	if visited != t.nodes {
		return 0, fmt.Errorf("rtree: visited %d nodes, counter says %d", visited, t.nodes)
	}
	return entries, nil
}

var _ index.Tree = (*Tree)(nil)
