package storage

import "errors"

// ErrInjected is the error produced by a FaultyPager's triggered faults.
var ErrInjected = errors.New("storage: injected fault")

// FaultyPager wraps a Pager and fails the N-th read and/or write — a test
// helper for exercising error propagation through the index structures and
// the search algorithm. A threshold of 0 disables that fault.
type FaultyPager struct {
	Inner Pager
	// FailReadAt / FailWriteAt: fail the operation when the 1-based
	// operation counter reaches this value (0 = never).
	FailReadAt  uint64
	FailWriteAt uint64

	reads  uint64
	writes uint64
}

// PageSize implements Pager.
func (f *FaultyPager) PageSize() int { return f.Inner.PageSize() }

// NumPages implements Pager.
func (f *FaultyPager) NumPages() int { return f.Inner.NumPages() }

// Alloc implements Pager.
func (f *FaultyPager) Alloc() (PageID, error) { return f.Inner.Alloc() }

// Read implements Pager, failing at the configured operation index.
func (f *FaultyPager) Read(id PageID) ([]byte, error) {
	f.reads++
	if f.FailReadAt != 0 && f.reads >= f.FailReadAt {
		return nil, ErrInjected
	}
	return f.Inner.Read(id)
}

// Write implements Pager, failing at the configured operation index.
func (f *FaultyPager) Write(id PageID, data []byte) error {
	f.writes++
	if f.FailWriteAt != 0 && f.writes >= f.FailWriteAt {
		return ErrInjected
	}
	return f.Inner.Write(id, data)
}
