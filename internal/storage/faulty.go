package storage

import (
	"fmt"
	"math/rand"
	"sync"
)

// ErrInjected is the error produced by a FaultyPager's triggered faults.
var ErrInjected = fmt.Errorf("storage: injected fault")

// ErrTransient marks an injected fault as transient: retrying the same
// operation may succeed. It wraps ErrInjected, so errors.Is against either
// sentinel works. The BufferPool's bounded-retry logic only retries
// transient faults (and checksum mismatches, which may be in-transit bit
// flips).
var ErrTransient = fmt.Errorf("%w (transient)", ErrInjected)

// FaultyPager wraps a Pager and injects read/write faults — a test helper
// for exercising error propagation and recovery through the index
// structures, the buffer pool, and the search algorithm.
//
// Two fault models are available, combinable:
//
// Deterministic ("fail the N-th operation"): FailReadAt / FailWriteAt fail
// the operation whose 1-based counter reaches the threshold (0 = never).
// By default only that single operation fails and later ones succeed; with
// Permanent set, every operation from the N-th onward fails — the
// historical behaviour, useful for simulating a device that dies and stays
// dead.
//
// Probabilistic (seeded, reproducible): each Read independently fails with
// probability ReadFaultRate, and independently returns a bit-flipped copy
// of the page with probability BitFlipRate (the underlying page is not
// modified — the flip models corruption in transit, which checksum
// verification upstream must catch). With Transient set, probabilistic
// read faults return ErrTransient and a retry re-rolls the dice; without
// it, the first fault on a page kills that page permanently (subsequent
// reads of it keep failing with ErrInjected).
//
// A FaultyPager is safe for concurrent use: the fault stream and the
// dead-page set sit behind an internal mutex, so one instance may serve a
// shared (striped) pool hammered by parallel queries. The interleaving of
// concurrent operations onto the seeded fault stream is scheduling-
// dependent; for operation-exact reproducibility keep the pager
// single-goroutine (e.g. one instance per query, as SetPagerWrapper
// builds them).
type FaultyPager struct {
	Inner Pager

	// FailReadAt / FailWriteAt: fail the operation when the 1-based
	// operation counter reaches this value (0 = never). Permanent extends
	// the failure to every subsequent operation.
	FailReadAt  uint64
	FailWriteAt uint64
	Permanent   bool

	// Seed seeds the probabilistic fault stream (same seed → same faults).
	Seed int64
	// ReadFaultRate is the per-read probability of an injected fault.
	ReadFaultRate float64
	// Transient makes probabilistic read faults transient (ErrTransient,
	// retry re-rolls); otherwise a faulted page stays dead.
	Transient bool
	// BitFlipRate is the per-read probability that the returned payload has
	// one random bit flipped (in a copy; the stored page is untouched).
	BitFlipRate float64

	// mu serializes the fault stream state below.
	mu     sync.Mutex // lockrank: 45 — held across inner pager calls by design
	rng    *rand.Rand
	dead   map[PageID]bool
	reads  uint64
	writes uint64
}

// PageSize implements Pager.
func (f *FaultyPager) PageSize() int { return f.Inner.PageSize() }

// NumPages implements Pager.
func (f *FaultyPager) NumPages() int { return f.Inner.NumPages() }

// Alloc implements Pager.
func (f *FaultyPager) Alloc() (PageID, error) { return f.Inner.Alloc() }

// PageChecksum forwards the inner pager's authoritative checksum (if any),
// letting a BufferPool above detect this pager's bit flips.
func (f *FaultyPager) PageChecksum(id PageID) (uint32, bool) {
	if ck, ok := f.Inner.(Checksummer); ok {
		return ck.PageChecksum(id)
	}
	return 0, false
}

// random returns the seeded fault stream. Callers must hold f.mu.
func (f *FaultyPager) random() *rand.Rand {
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(f.Seed))
	}
	return f.rng
}

// Read implements Pager, injecting the configured faults.
func (f *FaultyPager) Read(id PageID) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reads++
	if f.FailReadAt != 0 && (f.reads == f.FailReadAt || (f.Permanent && f.reads > f.FailReadAt)) {
		return nil, ErrInjected
	}
	if f.dead[id] {
		return nil, ErrInjected
	}
	if f.ReadFaultRate > 0 && f.random().Float64() < f.ReadFaultRate {
		if f.Transient {
			return nil, ErrTransient
		}
		if f.dead == nil {
			f.dead = make(map[PageID]bool)
		}
		f.dead[id] = true
		return nil, ErrInjected
	}
	data, err := f.Inner.Read(id)
	if err != nil {
		return nil, err
	}
	if f.BitFlipRate > 0 && f.random().Float64() < f.BitFlipRate {
		flipped := make([]byte, len(data))
		copy(flipped, data)
		bit := f.random().Intn(len(flipped) * 8)
		flipped[bit/8] ^= 1 << (bit % 8)
		return flipped, nil
	}
	return data, nil
}

// Write implements Pager, failing at the configured operation index.
func (f *FaultyPager) Write(id PageID, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	if f.FailWriteAt != 0 && (f.writes == f.FailWriteAt || (f.Permanent && f.writes > f.FailWriteAt)) {
		return ErrInjected
	}
	return f.Inner.Write(id, data)
}

// Stats forwards the inner pager's I/O counters (zero Stats when the
// inner pager does not expose any).
func (f *FaultyPager) Stats() Stats {
	if sp, ok := f.Inner.(interface{ Stats() Stats }); ok {
		return sp.Stats()
	}
	return Stats{}
}

var (
	_ Pager       = (*FaultyPager)(nil)
	_ Checksummer = (*FaultyPager)(nil)
)
