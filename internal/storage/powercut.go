package storage

import (
	"fmt"
	"os"
	"sync"
)

// ErrPowercut is the error every file operation returns once a
// PowercutBudget has tripped: the simulated machine is off.
var ErrPowercut = fmt.Errorf("%w: power cut", ErrInjected)

// PowercutBudget coordinates a simulated power loss across every file of
// a write path: after Limit bytes have been written through its files —
// cumulatively, in write order — the write in flight stops mid-way and
// every subsequent operation on every attached file fails with
// ErrPowercut. It is the crash-point injector for the WAL property
// tests: sweeping Limit across [0, total bytes] visits every possible
// torn-write state, including cuts inside a record frame.
//
// Crash finalizes the simulation by materializing what stable storage
// would hold after the power loss. Data written before the cut survives
// in full in the optimistic model (the OS got it to disk); with
// dropUnsynced, a file's writes since its last successful Sync are
// discarded too — the pessimistic model where only fsync-acknowledged
// bytes survive. Real crashes land between the two, so a write path
// correct under both extremes is correct everywhere in between (each
// file's surviving content is always some prefix of its writes, which is
// exactly the state an append-only log must tolerate).
//
// A PowercutBudget is safe for concurrent use.
type PowercutBudget struct {
	mu        sync.Mutex // lockrank: 47 — taken under PowercutFile.mu on the write path
	remaining int64
	unlimited bool
	tripped   bool
	written   int64
	files     []*PowercutFile
}

// NewPowercutBudget creates a budget that cuts power after limit bytes
// (limit < 0 = never trips on its own; Trip can still force it).
func NewPowercutBudget(limit int64) *PowercutBudget {
	return &PowercutBudget{remaining: limit, unlimited: limit < 0}
}

// Trip cuts the power immediately: every subsequent operation on every
// attached file fails.
func (b *PowercutBudget) Trip() {
	b.mu.Lock()
	b.tripped = true
	b.mu.Unlock()
}

// Tripped reports whether the power is out.
func (b *PowercutBudget) Tripped() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tripped
}

// take consumes up to n bytes of budget, returning how many may still be
// written; the budget trips when it cannot cover the full write.
func (b *PowercutBudget) take(n int) (allowed int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tripped {
		return 0
	}
	if b.unlimited {
		b.written += int64(n)
		return n
	}
	if int64(n) <= b.remaining {
		b.remaining -= int64(n)
		b.written += int64(n)
		return n
	}
	allowed = int(b.remaining)
	b.remaining = 0
	b.written += int64(allowed)
	b.tripped = true
	return allowed
}

// Written reports the cumulative bytes written through the budget's
// files — a dry run with an unlimited budget uses it to size the
// crash-offset sweep.
func (b *PowercutBudget) Written() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.written
}

// Open wraps the file at path (created, truncated) in a PowercutFile
// attached to this budget. The signature matches the wal package's
// OpenFile seam.
func (b *PowercutBudget) Open(path string) (*PowercutFile, error) {
	b.mu.Lock()
	tripped := b.tripped
	b.mu.Unlock()
	if tripped {
		return nil, ErrPowercut
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	pf := &PowercutFile{f: f, path: path, b: b}
	b.mu.Lock()
	b.files = append(b.files, pf)
	b.mu.Unlock()
	return pf, nil
}

// Crash finalizes the simulation: it closes every attached file and,
// when dropUnsynced is set, truncates each to the length it had at its
// last successful Sync — modelling a kernel that never flushed the
// un-fsynced tail. The files on disk afterwards are exactly what a
// process starting after the power loss would find.
func (b *PowercutBudget) Crash(dropUnsynced bool) error {
	b.mu.Lock()
	b.tripped = true
	files := append([]*PowercutFile(nil), b.files...)
	b.mu.Unlock()
	for _, pf := range files {
		if err := pf.crash(dropUnsynced); err != nil {
			return err
		}
	}
	return nil
}

// PowercutFile is an append-only file whose writes draw on a shared
// PowercutBudget. It implements the wal package's File seam (io.Writer,
// Sync, Close).
type PowercutFile struct {
	mu      sync.Mutex // lockrank: 46 — above the shared budget lock
	f       *os.File
	path    string
	b       *PowercutBudget
	written int64 // bytes physically written
	synced  int64 // written at the last successful Sync
	closed  bool
}

// Write writes as many bytes as the budget allows. A write the budget
// cannot fully cover is written partially — the torn write — and fails
// with ErrPowercut.
func (p *PowercutFile) Write(data []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, os.ErrClosed
	}
	allowed := p.b.take(len(data))
	n := 0
	if allowed > 0 {
		var err error
		n, err = p.f.Write(data[:allowed])
		p.written += int64(n)
		if err != nil {
			return n, err
		}
	}
	if allowed < len(data) {
		return n, ErrPowercut
	}
	return n, nil
}

// Sync flushes to stable storage; after a power cut it fails and the
// unsynced tail stays at risk.
func (p *PowercutFile) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return os.ErrClosed
	}
	if p.b.Tripped() {
		return ErrPowercut
	}
	if err := p.f.Sync(); err != nil {
		return err
	}
	p.synced = p.written
	return nil
}

// Close closes the underlying file (the budget keeps the path for
// Crash-time truncation).
func (p *PowercutFile) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closeLocked()
}

// closeLocked closes the underlying file. Callers must hold p.mu.
func (p *PowercutFile) closeLocked() error {
	if p.closed {
		return nil
	}
	p.closed = true
	return p.f.Close()
}

// crash closes the file and optionally discards its unsynced tail.
func (p *PowercutFile) crash(dropUnsynced bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.closeLocked(); err != nil {
		return err
	}
	if dropUnsynced && p.synced < p.written {
		// The path may be gone by crash time — a repair re-seed wipes a
		// replica directory wholesale — and a deleted file has no
		// unsynced tail left to drop.
		if err := os.Truncate(p.path, p.synced); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}
