package storage

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestDiskFileCreateReadWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	d, err := CreateDiskFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	if d.PageSize() != 128 || d.NumPages() != 0 {
		t.Fatalf("fresh disk file: ps=%d np=%d", d.PageSize(), d.NumPages())
	}
	a, err := d.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := d.Alloc()
	if a != 0 || b != 1 || d.NumPages() != 2 {
		t.Fatalf("alloc ids %d,%d np=%d", a, b, d.NumPages())
	}
	want := fill(128, 0xCD)
	if err := d.Write(a, want); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(a)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read back: %v", err)
	}
	// Fresh page zeroed.
	got, _ = d.Read(b)
	if !bytes.Equal(got, make([]byte, 128)) {
		t.Fatal("fresh page not zeroed")
	}
	if s := d.Stats(); s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("stats %+v", s)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskFileReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	d, err := CreateDiskFile(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		id, _ := d.Alloc()
		if err := d.Write(id, fill(64, byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.PageSize() != 64 || re.NumPages() != 5 {
		t.Fatalf("reopened: ps=%d np=%d", re.PageSize(), re.NumPages())
	}
	for i := 0; i < 5; i++ {
		got, err := re.Read(PageID(i))
		if err != nil || !bytes.Equal(got, fill(64, byte(i+1))) {
			t.Fatalf("page %d content lost: %v", i, err)
		}
	}
	// Reopened file keeps allocating after the existing pages.
	id, err := re.Alloc()
	if err != nil || id != 5 {
		t.Fatalf("alloc after reopen: %d, %v", id, err)
	}
}

func TestDiskFileErrors(t *testing.T) {
	dir := t.TempDir()
	d, err := CreateDiskFile(filepath.Join(dir, "p.db"), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Read(0); err == nil {
		t.Fatal("read of unallocated page must fail")
	}
	if err := d.Write(0, make([]byte, 64)); err == nil {
		t.Fatal("write of unallocated page must fail")
	}
	id, _ := d.Alloc()
	if err := d.Write(id, make([]byte, 3)); err == nil {
		t.Fatal("short write must fail")
	}
	// Tiny page size rejected.
	if _, err := CreateDiskFile(filepath.Join(dir, "tiny.db"), 4); err == nil {
		t.Fatal("page size below header must fail")
	}
	// Junk file rejected on open.
	junk := filepath.Join(dir, "junk.db")
	if err := os.WriteFile(junk, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskFile(junk); err == nil {
		t.Fatal("junk file must fail to open")
	}
	if _, err := OpenDiskFile(filepath.Join(dir, "missing.db")); err == nil {
		t.Fatal("missing file must fail")
	}
}

// A tree built directly on disk behaves identically to one in memory.
func TestDiskFileBacksRandomWorkload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	d, err := CreateDiskFile(path, 96)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewFile(96)
	rng := rand.New(rand.NewSource(8))
	var ids []PageID
	for i := 0; i < 500; i++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(ids) == 0:
			a, err := d.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			b, _ := mem.Alloc()
			if a != b {
				t.Fatalf("alloc diverged: %d vs %d", a, b)
			}
			ids = append(ids, a)
		case op == 1:
			id := ids[rng.Intn(len(ids))]
			data := fill(96, byte(rng.Intn(256)))
			if err := d.Write(id, data); err != nil {
				t.Fatal(err)
			}
			if err := mem.Write(id, data); err != nil {
				t.Fatal(err)
			}
		default:
			id := ids[rng.Intn(len(ids))]
			a, err := d.Read(id)
			if err != nil {
				t.Fatal(err)
			}
			b, _ := mem.Read(id)
			if !bytes.Equal(a, b) {
				t.Fatalf("page %d diverged from memory twin", id)
			}
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
