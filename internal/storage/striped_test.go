package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"mstsearch/internal/testutil"
)

func TestStripedPoolShape(t *testing.T) {
	f := NewFile(32)
	for i := 0; i < 100; i++ {
		_, _ = f.Alloc()
	}
	cases := []struct {
		capacity, stripes int
		wantCap           int
		wantStripes       int
	}{
		{20, 0, 20, 16},      // default stripes
		{20, 4, 20, 4},       // explicit power of two
		{20, 6, 20, 4},       // rounded down to power of two
		{3, 0, 3, 2},         // stripes clamped to capacity
		{1, 8, 1, 1},         // degenerate single-frame pool
		{0, 0, 1, 1},         // capacity clamped to 1
		{100, 1000, 100, 64}, // stripes clamped then rounded
	}
	for _, c := range cases {
		p := NewStripedPool(f, c.capacity, c.stripes)
		if p.Capacity() != c.wantCap || p.Stripes() != c.wantStripes {
			t.Errorf("NewStripedPool(cap=%d, stripes=%d): capacity %d stripes %d, want %d/%d",
				c.capacity, c.stripes, p.Capacity(), p.Stripes(), c.wantCap, c.wantStripes)
		}
		// Per-shard segments must sum exactly to the total capacity.
		sum := 0
		for i := range p.shards {
			if p.shards[i].capacity < 1 {
				t.Errorf("shard %d has capacity %d < 1", i, p.shards[i].capacity)
			}
			sum += p.shards[i].capacity
		}
		if sum != p.Capacity() {
			t.Errorf("shard capacities sum to %d, want %d", sum, p.Capacity())
		}
	}
}

func TestSharedPaperPoolIsStriped(t *testing.T) {
	f := NewFile(DefaultPageSize)
	for i := 0; i < 2000; i++ {
		_, _ = f.Alloc()
	}
	sp := NewSharedPaperPool(f)
	if sp.Capacity() != 200 {
		t.Fatalf("paper capacity = %d, want 200 (10%% of 2000)", sp.Capacity())
	}
	if sp.Stripes() < 2 {
		t.Fatalf("paper pool has %d stripes; the default shared pager must be striped", sp.Stripes())
	}
}

// TestStripedPoolConcurrentMixed hammers a striped pool with concurrent
// Read/Write/Alloc/Flush across all shards under -race. The content
// invariant — page p always holds fill(byte(p)) or, transiently for fresh
// allocations, zeros — makes every interleaving's reads checkable.
func TestStripedPoolConcurrentMixed(t *testing.T) {
	testutil.CheckGoroutines(t)
	const initial = 96
	f := NewFile(48)
	for i := 0; i < initial; i++ {
		id, _ := f.Alloc()
		_ = f.Write(id, fill(48, byte(id)))
	}
	p := NewStripedPool(f, 24, 8)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Readers: random pages from the stable prefix; content must be the
	// page's pattern (writers rewrite the same pattern, so there is never
	// a second legal value).
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 800; i++ {
				id := PageID(rng.Intn(initial))
				got, err := p.Read(id)
				if err != nil {
					report(err)
					return
				}
				if !bytes.Equal(got, fill(48, byte(id))) {
					report(fmt.Errorf("page %d content diverged under concurrency", id))
					return
				}
			}
		}(int64(g + 1))
	}

	// Writers: keep rewriting the invariant pattern (dirty frames +
	// eviction write-back under contention).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < 400; i++ {
				id := PageID(rng.Intn(initial))
				if err := p.Write(id, fill(48, byte(id))); err != nil {
					report(err)
					return
				}
			}
		}(int64(g))
	}

	// Allocator: grows the file while readers and writers are in flight,
	// immediately writing the new page's pattern and reading it back.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			id, err := p.Alloc()
			if err != nil {
				report(err)
				return
			}
			if err := p.Write(id, fill(48, byte(id))); err != nil {
				report(err)
				return
			}
			got, err := p.Read(id)
			if err != nil {
				report(err)
				return
			}
			if !bytes.Equal(got, fill(48, byte(id))) {
				report(fmt.Errorf("fresh page %d content diverged", id))
				return
			}
		}
	}()

	// Flusher: forces write-back concurrently with everything else.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := p.Flush(); err != nil {
				report(err)
				return
			}
		}
	}()

	// Eviction under contention: the resident-frame count must never
	// exceed the pool capacity, sampled while the workload runs.
	capViolations := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if n := p.Cached(); n > p.Capacity() {
				select {
				case capViolations <- n:
				default:
				}
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	select {
	case n := <-capViolations:
		t.Fatalf("pool held %d frames, capacity %d", n, p.Capacity())
	default:
	}

	// Quiesced: flush and verify every page directly in the file.
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < p.NumPages(); id++ {
		raw, err := f.Read(PageID(id))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, fill(48, byte(id))) && !bytes.Equal(raw, make([]byte, 48)) {
			t.Fatalf("post-stress page %d corrupted", id)
		}
	}
	s := p.Stats()
	if s.Misses == 0 || s.Hits == 0 {
		t.Fatalf("stress did not exercise both hit and miss paths: %+v", s)
	}
	if p.Cached() > p.Capacity() {
		t.Fatalf("resident frames %d exceed capacity %d", p.Cached(), p.Capacity())
	}
}

// TestStripedPoolStatsAtomic validates the atomic counters: Stats and
// ResetStats run concurrently with readers under -race, and with no reset
// in flight the final counters account for every operation exactly.
func TestStripedPoolStatsAtomic(t *testing.T) {
	testutil.CheckGoroutines(t)
	const pages = 64
	f := NewFile(32)
	for i := 0; i < pages; i++ {
		id, _ := f.Alloc()
		_ = f.Write(id, fill(32, byte(id)))
	}
	p := NewStripedPool(f, 16, 4)

	const readers = 4
	const reads = 300
	var readerWG sync.WaitGroup
	pollerDone := make(chan struct{})

	// Concurrent Stats poller — must be race-free against the in-flight
	// readers (this is the PR's SharedPool.Stats fix). A fixed iteration
	// count terminates it regardless of scheduling, so no stop-channel
	// coordination can deadlock or starve on a single CPU.
	go func() {
		defer close(pollerDone)
		for i := 0; i < 200; i++ {
			s := p.Stats()
			if s.Hits+s.Misses > readers*reads {
				t.Errorf("counters overshot: %+v", s)
				return
			}
		}
	}()

	for g := 0; g < readers; g++ {
		readerWG.Add(1)
		go func(seed int64) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < reads; i++ {
				if _, err := p.Read(PageID(rng.Intn(pages))); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(g + 7))
	}
	readerWG.Wait()
	<-pollerDone

	// No reset ran, so the counters must account for every operation
	// exactly — atomics may not drop increments.
	s := p.Stats()
	if s.Hits+s.Misses != readers*reads {
		t.Fatalf("hits %d + misses %d != %d operations", s.Hits, s.Misses, readers*reads)
	}

	// Second phase: ResetStats racing the readers — must be race-clean
	// and leave counters no larger than the operations issued after the
	// last reset.
	var phase2 sync.WaitGroup
	for g := 0; g < readers; g++ {
		phase2.Add(1)
		go func(seed int64) {
			defer phase2.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < reads; i++ {
				if _, err := p.Read(PageID(rng.Intn(pages))); err != nil {
					t.Error(err)
					return
				}
				if i%64 == 0 {
					p.ResetStats()
				}
			}
		}(int64(g + 70))
	}
	phase2.Wait()
	if s := p.Stats(); s.Hits+s.Misses > readers*reads {
		t.Fatalf("post-reset counters exceed issued operations: %+v", s)
	}
	p.ResetStats()
	if got := p.Stats(); got.Hits != 0 || got.Misses != 0 || got.Retries != 0 {
		t.Fatalf("reset failed: %+v", got)
	}
}

// TestStripedPoolFaultInjection re-runs the hardening contract through the
// striped pool: transient faults and bit flips injected underneath it must
// be retried away or surface as typed errors — never as wrong bytes —
// while many goroutines share the pool.
func TestStripedPoolFaultInjection(t *testing.T) {
	testutil.CheckGoroutines(t)
	const pages = 48
	f := NewFile(64)
	for i := 0; i < pages; i++ {
		id, _ := f.Alloc()
		_ = f.Write(id, fill(64, byte(id)))
	}
	fp := &FaultyPager{
		Inner:         f,
		Seed:          1234,
		ReadFaultRate: 0.10,
		Transient:     true,
		BitFlipRate:   0.05,
	}
	p := NewStripedPool(fp, 12, 4)

	var wg sync.WaitGroup
	var succeeded, typedFailed atomic.Uint64
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				id := PageID(rng.Intn(pages))
				got, err := p.Read(id)
				if err != nil {
					if !errors.Is(err, ErrInjected) && !errors.Is(err, ErrPageCorrupt{}) {
						t.Errorf("untyped error %v", err)
						return
					}
					typedFailed.Add(1)
					continue
				}
				if !bytes.Equal(got, fill(64, byte(id))) {
					t.Errorf("page %d served corrupt bytes through striped pool", id)
					return
				}
				succeeded.Add(1)
			}
		}(int64(g + 3))
	}
	wg.Wait()
	if succeeded.Load() == 0 {
		t.Fatal("no read ever succeeded under fault injection")
	}
	if p.Stats().Retries == 0 {
		t.Fatal("transient faults at 10% never triggered a retry")
	}
	t.Logf("fault injection through striped pool: %d ok, %d typed failures, %d retries",
		succeeded.Load(), typedFailed.Load(), p.Stats().Retries)
}

// TestStripedPoolEvictionWritesBackDirty pins the write-back contract on
// the striped layout: a dirty frame evicted from any shard must land in
// the file.
func TestStripedPoolEvictionWritesBackDirty(t *testing.T) {
	f := NewFile(32)
	var ids []PageID
	for i := 0; i < 8; i++ {
		id, _ := f.Alloc()
		ids = append(ids, id)
	}
	// 2 shards × 1 frame: the second access to a shard evicts its first.
	p := NewStripedPool(f, 2, 2)
	if err := p.Write(ids[0], fill(32, 0xA1)); err != nil { // shard 0
		t.Fatal(err)
	}
	if _, err := p.Read(ids[2]); err != nil { // shard 0 again → evicts dirty ids[0]
		t.Fatal(err)
	}
	raw, _ := f.Read(ids[0])
	if !bytes.Equal(raw, fill(32, 0xA1)) {
		t.Fatal("eviction must write back dirty page")
	}
	// The other shard's frame is untouched by shard 0's eviction.
	if err := p.Write(ids[1], fill(32, 0xB2)); err != nil { // shard 1
		t.Fatal(err)
	}
	if _, err := p.Read(ids[4]); err != nil { // shard 0; must not evict shard 1's frame
		t.Fatal(err)
	}
	raw, _ = f.Read(ids[1])
	if bytes.Equal(raw, fill(32, 0xB2)) {
		t.Fatal("cross-shard access must not flush another shard's dirty frame")
	}
}
