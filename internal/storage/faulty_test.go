package storage

import (
	"bytes"
	"errors"
	"hash/crc32"
	"testing"
)

// fillFile builds a File with n distinct pages.
func fillFile(t *testing.T, n, pageSize int) *File {
	t.Helper()
	f := NewFile(pageSize)
	page := make([]byte, pageSize)
	for i := 0; i < n; i++ {
		id, err := f.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		for j := range page {
			page[j] = byte(i + j)
		}
		if err := f.Write(id, page); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// Deterministic faults default to failing exactly once: the N-th read
// fails, every other read succeeds.
func TestFaultyPagerFailsOnce(t *testing.T) {
	f := fillFile(t, 4, 128)
	fp := &FaultyPager{Inner: f, FailReadAt: 2}

	if _, err := fp.Read(0); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	if _, err := fp.Read(0); !errors.Is(err, ErrInjected) {
		t.Fatalf("read 2: got %v, want ErrInjected", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := fp.Read(PageID(i % 4)); err != nil {
			t.Fatalf("read after fault: %v", err)
		}
	}
}

// With Permanent set, every read from the N-th onward fails.
func TestFaultyPagerPermanent(t *testing.T) {
	f := fillFile(t, 4, 128)
	fp := &FaultyPager{Inner: f, FailReadAt: 3, Permanent: true}

	for i := 0; i < 2; i++ {
		if _, err := fp.Read(0); err != nil {
			t.Fatalf("read %d: %v", i+1, err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := fp.Read(0); !errors.Is(err, ErrInjected) {
			t.Fatalf("read %d: got %v, want ErrInjected", i+3, err)
		}
	}
}

// The probabilistic fault stream is a pure function of the seed.
func TestFaultyPagerSeededDeterminism(t *testing.T) {
	outcomes := func(seed int64) []bool {
		f := fillFile(t, 8, 128)
		fp := &FaultyPager{Inner: f, Seed: seed, ReadFaultRate: 0.3, Transient: true}
		var out []bool
		for i := 0; i < 200; i++ {
			_, err := fp.Read(PageID(i % 8))
			out = append(out, err != nil)
		}
		return out
	}
	a, b := outcomes(7), outcomes(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("read %d: same seed diverged", i)
		}
	}
	c := outcomes(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault streams")
	}
}

// Transient probabilistic faults wrap both sentinels and heal on retry;
// non-transient faults kill the page permanently.
func TestFaultyPagerTransientVsDead(t *testing.T) {
	f := fillFile(t, 2, 128)
	fp := &FaultyPager{Inner: f, Seed: 1, ReadFaultRate: 0.5, Transient: true}
	sawFault, sawHeal := false, false
	for i := 0; i < 100; i++ {
		_, err := fp.Read(0)
		if err == nil {
			if sawFault {
				sawHeal = true
			}
			continue
		}
		if !errors.Is(err, ErrTransient) || !errors.Is(err, ErrInjected) {
			t.Fatalf("transient fault %v must wrap ErrTransient and ErrInjected", err)
		}
		sawFault = true
	}
	if !sawFault || !sawHeal {
		t.Fatalf("expected both faults and recoveries at rate 0.5 (fault=%v heal=%v)", sawFault, sawHeal)
	}

	fp = &FaultyPager{Inner: f, Seed: 1, ReadFaultRate: 0.5}
	var deadPage = PageID(NilPage)
	for i := 0; i < 100 && deadPage == NilPage; i++ {
		if _, err := fp.Read(0); err != nil {
			deadPage = 0
		}
	}
	if deadPage == NilPage {
		t.Fatal("no fault in 100 reads at rate 0.5")
	}
	for i := 0; i < 10; i++ {
		if _, err := fp.Read(deadPage); !errors.Is(err, ErrInjected) {
			t.Fatalf("dead page read %d: got %v, want ErrInjected", i, err)
		}
	}
}

// Bit flips corrupt the returned copy, never the stored page, and the
// inner pager's checksum (forwarded through the FaultyPager) exposes them.
func TestFaultyPagerBitFlip(t *testing.T) {
	f := fillFile(t, 1, 128)
	want, err := f.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	orig := append([]byte(nil), want...)

	fp := &FaultyPager{Inner: f, Seed: 3, BitFlipRate: 1}
	got, err := fp.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, orig) {
		t.Fatal("BitFlipRate=1 returned an unmodified page")
	}
	diff := 0
	for i := range got {
		diff += popcount8(got[i] ^ orig[i])
	}
	if diff != 1 {
		t.Fatalf("expected exactly one flipped bit, found %d", diff)
	}

	// The stored page is untouched.
	again, err := f.Read(0)
	if err != nil {
		t.Fatalf("underlying page damaged: %v", err)
	}
	if !bytes.Equal(again, orig) {
		t.Fatal("bit flip leaked into the stored page")
	}

	// The forwarded authoritative checksum catches the flip.
	ck, ok := Checksummer(fp).PageChecksum(0)
	if !ok {
		t.Fatal("FaultyPager over File must forward PageChecksum")
	}
	if crc32.ChecksumIEEE(got) == ck {
		t.Fatal("flipped payload passed checksum verification")
	}
	if crc32.ChecksumIEEE(orig) != ck {
		t.Fatal("clean payload failed checksum verification")
	}
}

// A BufferPool above a transient FaultyPager heals faults via bounded
// retry; the retry count is reported in Stats.
func TestBufferPoolRetriesTransientFaults(t *testing.T) {
	f := fillFile(t, 8, 128)
	fp := &FaultyPager{Inner: f, Seed: 11, ReadFaultRate: 0.3, Transient: true}
	bp := NewBufferPool(fp, 2)

	healed := 0
	for i := 0; i < 200; i++ {
		id := PageID(i % 8)
		got, err := bp.Read(id)
		if err != nil {
			// All retry attempts can fault (p ≈ 0.3⁴ per read); the failure
			// must then be the typed transient error, never a wrong payload.
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("read %d: got %v, want ErrTransient", i, err)
			}
			continue
		}
		healed++
		want, _ := f.Read(id)
		if !bytes.Equal(got, want) {
			t.Fatalf("read %d: wrong payload", i)
		}
	}
	if healed < 150 {
		t.Fatalf("only %d/200 reads healed; retry is not working", healed)
	}
	if bp.Stats().Retries == 0 {
		t.Fatal("expected retries at 30% transient fault rate")
	}
}

// A BufferPool above a bit-flipping pager detects every flip via the
// authoritative checksum and re-reads until it gets a clean copy.
func TestBufferPoolHealsBitFlips(t *testing.T) {
	f := fillFile(t, 8, 128)
	fp := &FaultyPager{Inner: f, Seed: 13, BitFlipRate: 0.3}
	bp := NewBufferPool(fp, 2)

	for i := 0; i < 200; i++ {
		id := PageID(i % 8)
		got, err := bp.Read(id)
		if err != nil {
			// At a 30% flip rate, four consecutive flips of one read are
			// possible but the error must be typed, never a wrong payload.
			var pc ErrPageCorrupt
			if !errors.As(err, &pc) || pc.Page != id {
				t.Fatalf("read %d: got %v, want ErrPageCorrupt{%d}", i, err, id)
			}
			continue
		}
		want, _ := f.Read(id)
		if !bytes.Equal(got, want) {
			t.Fatalf("read %d: corrupted payload served as clean", i)
		}
	}
}

// CorruptPage damages the stored page in place; Read must detect it.
func TestFileCorruptPageDetected(t *testing.T) {
	f := fillFile(t, 3, 128)
	if err := f.CorruptPage(1, 17); err != nil {
		t.Fatal(err)
	}

	if _, err := f.Read(0); err != nil {
		t.Fatalf("undamaged page: %v", err)
	}
	_, err := f.Read(1)
	var pc ErrPageCorrupt
	if !errors.As(err, &pc) {
		t.Fatalf("got %v, want ErrPageCorrupt", err)
	}
	if pc.Page != 1 {
		t.Fatalf("ErrPageCorrupt.Page = %d, want 1", pc.Page)
	}
	if !errors.Is(err, ErrPageCorrupt{}) {
		t.Fatal("errors.Is against the zero ErrPageCorrupt must match any instance")
	}

	// In-place corruption is permanent: the buffer pool's retries cannot
	// heal it and must give up with the typed error.
	bp := NewBufferPool(f, 2)
	if _, err := bp.Read(1); !errors.Is(err, ErrPageCorrupt{}) {
		t.Fatalf("buffer pool: got %v, want ErrPageCorrupt", err)
	}
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}
