package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mstsearch/internal/testutil"
)

func fill(size int, b byte) []byte {
	d := make([]byte, size)
	for i := range d {
		d[i] = b
	}
	return d
}

func TestFileAllocReadWrite(t *testing.T) {
	f := NewFile(64)
	if f.PageSize() != 64 {
		t.Fatalf("page size = %d", f.PageSize())
	}
	id, err := f.Alloc()
	if err != nil || id != 0 {
		t.Fatalf("first alloc = %d, %v", id, err)
	}
	id2, _ := f.Alloc()
	if id2 != 1 || f.NumPages() != 2 {
		t.Fatalf("second alloc = %d, pages = %d", id2, f.NumPages())
	}
	if err := f.Write(id, fill(64, 0xAB)); err != nil {
		t.Fatal(err)
	}
	got, err := f.Read(id)
	if err != nil || !bytes.Equal(got, fill(64, 0xAB)) {
		t.Fatalf("read back mismatch: %v", err)
	}
	// Fresh page is zeroed.
	got, _ = f.Read(id2)
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Fatal("fresh page not zeroed")
	}
	if f.SizeBytes() != 128 {
		t.Fatalf("size = %d", f.SizeBytes())
	}
}

func TestFileErrors(t *testing.T) {
	f := NewFile(0)
	if f.PageSize() != DefaultPageSize {
		t.Fatalf("default page size = %d", f.PageSize())
	}
	if _, err := f.Read(0); err == nil {
		t.Fatal("read of unallocated page must fail")
	}
	if err := f.Write(0, make([]byte, DefaultPageSize)); err == nil {
		t.Fatal("write of unallocated page must fail")
	}
	id, _ := f.Alloc()
	if err := f.Write(id, make([]byte, 3)); err == nil {
		t.Fatal("short write must fail")
	}
}

func TestFileStats(t *testing.T) {
	f := NewFile(32)
	id, _ := f.Alloc()
	_ = f.Write(id, fill(32, 1))
	_, _ = f.Read(id)
	_, _ = f.Read(id)
	s := f.Stats()
	if s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	f.ResetStats()
	if f.Stats() != (Stats{}) {
		t.Fatal("reset failed")
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	f := NewFile(32)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, _ := f.Alloc()
		_ = f.Write(id, fill(32, byte(i)))
		ids = append(ids, id)
	}
	f.ResetStats()
	bp := NewBufferPool(f, 2)
	// First read: miss + physical read.
	if _, err := bp.Read(ids[0]); err != nil {
		t.Fatal(err)
	}
	// Second read of same page: hit, no physical read.
	if _, err := bp.Read(ids[0]); err != nil {
		t.Fatal(err)
	}
	s := bp.Stats()
	if s.Misses != 1 || s.Hits != 1 || s.Reads != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// Touch two more pages: evicts ids[0] (capacity 2).
	_, _ = bp.Read(ids[1])
	_, _ = bp.Read(ids[2])
	_, _ = bp.Read(ids[0])
	s = bp.Stats()
	if s.Misses != 4 {
		t.Fatalf("expected re-read after eviction to miss: %+v", s)
	}
}

func TestBufferPoolLRUOrder(t *testing.T) {
	f := NewFile(32)
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, _ := f.Alloc()
		_ = f.Write(id, fill(32, byte(i)))
		ids = append(ids, id)
	}
	bp := NewBufferPool(f, 2)
	_, _ = bp.Read(ids[0])
	_, _ = bp.Read(ids[1])
	_, _ = bp.Read(ids[0]) // promote ids[0]
	_, _ = bp.Read(ids[2]) // must evict ids[1], not ids[0]
	before := bp.Stats().Misses
	_, _ = bp.Read(ids[0])
	if bp.Stats().Misses != before {
		t.Fatal("ids[0] should still be cached (LRU promoted)")
	}
	_, _ = bp.Read(ids[1])
	if bp.Stats().Misses != before+1 {
		t.Fatal("ids[1] should have been evicted")
	}
}

func TestBufferPoolWriteBack(t *testing.T) {
	f := NewFile(32)
	id, _ := f.Alloc()
	bp := NewBufferPool(f, 1)
	if err := bp.Write(id, fill(32, 0x7)); err != nil {
		t.Fatal(err)
	}
	// Dirty page lives only in cache until eviction or flush.
	raw, _ := f.Read(id)
	if bytes.Equal(raw, fill(32, 0x7)) {
		t.Fatal("write must not hit the file before eviction/flush")
	}
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	raw, _ = f.Read(id)
	if !bytes.Equal(raw, fill(32, 0x7)) {
		t.Fatal("flush must persist dirty page")
	}
	// Flushing again must not re-write clean frames.
	w := f.Stats().Writes
	_ = bp.Flush()
	if f.Stats().Writes != w {
		t.Fatal("second flush re-wrote clean pages")
	}
}

func TestBufferPoolEvictionWritesBackDirty(t *testing.T) {
	f := NewFile(32)
	a, _ := f.Alloc()
	bb, _ := f.Alloc()
	bp := NewBufferPool(f, 1)
	_ = bp.Write(a, fill(32, 0x1))
	_, _ = bp.Read(bb) // evicts dirty a
	raw, _ := f.Read(a)
	if !bytes.Equal(raw, fill(32, 0x1)) {
		t.Fatal("eviction must write back dirty page")
	}
}

func TestBufferPoolAllocCached(t *testing.T) {
	f := NewFile(32)
	bp := NewBufferPool(f, 4)
	id, err := bp.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	f.ResetStats()
	bp.ResetStats()
	if _, err := bp.Read(id); err != nil {
		t.Fatal(err)
	}
	s := bp.Stats()
	if s.Hits != 1 || s.Reads != 0 {
		t.Fatalf("fresh page should be served from cache: %+v", s)
	}
}

func TestBufferPoolErrors(t *testing.T) {
	f := NewFile(32)
	bp := NewBufferPool(f, 2)
	if _, err := bp.Read(9); err == nil {
		t.Fatal("read of unallocated page must fail")
	}
	if err := bp.Write(9, make([]byte, 32)); err == nil {
		t.Fatal("write of unallocated page must fail")
	}
	id, _ := bp.Alloc()
	if err := bp.Write(id, make([]byte, 5)); err == nil {
		t.Fatal("short write must fail")
	}
}

func TestNewPaperBuffer(t *testing.T) {
	f := NewFile(DefaultPageSize)
	for i := 0; i < 50; i++ {
		_, _ = f.Alloc()
	}
	if c := NewPaperBuffer(f).Capacity(); c != 5 {
		t.Fatalf("10%% of 50 pages = %d, want 5", c)
	}
	f2 := NewFile(DefaultPageSize)
	for i := 0; i < 20000; i++ {
		_, _ = f2.Alloc()
	}
	if c := NewPaperBuffer(f2).Capacity(); c != 1000 {
		t.Fatalf("cap at 1000 pages, got %d", c)
	}
	f3 := NewFile(DefaultPageSize)
	if c := NewPaperBuffer(f3).Capacity(); c != 1 {
		t.Fatalf("minimum capacity 1, got %d", c)
	}
}

// Property-style stress: a random workload through the pool must be
// indistinguishable (content-wise) from direct file access.
func TestBufferPoolConsistencyStress(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := NewFile(16)
	bp := NewBufferPool(f, 3)
	shadow := map[PageID][]byte{}
	var ids []PageID
	for i := 0; i < 2000; i++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(ids) == 0:
			id, err := bp.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			shadow[id] = make([]byte, 16)
		case op == 1:
			id := ids[rng.Intn(len(ids))]
			data := fill(16, byte(rng.Intn(256)))
			if err := bp.Write(id, data); err != nil {
				t.Fatal(err)
			}
			shadow[id] = data
		default:
			id := ids[rng.Intn(len(ids))]
			got, err := bp.Read(id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, shadow[id]) {
				t.Fatalf("iter %d: page %d content diverged", i, id)
			}
		}
	}
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	for id, want := range shadow {
		got, _ := f.Read(id)
		if !bytes.Equal(got, want) {
			t.Fatalf("post-flush page %d diverged", id)
		}
	}
}

func TestSharedPoolBasics(t *testing.T) {
	f := NewFile(32)
	var ids []PageID
	for i := 0; i < 6; i++ {
		id, _ := f.Alloc()
		_ = f.Write(id, fill(32, byte(i)))
		ids = append(ids, id)
	}
	f.ResetStats()
	sp := NewSharedPool(f, 3)
	if sp.PageSize() != 32 || sp.NumPages() != 6 || sp.Capacity() != 3 {
		t.Fatalf("shared pool shape: %d %d %d", sp.PageSize(), sp.NumPages(), sp.Capacity())
	}
	got, err := sp.Read(ids[2])
	if err != nil || !bytes.Equal(got, fill(32, 2)) {
		t.Fatalf("read: %v", err)
	}
	// The returned slice is a private copy: mutating it must not poison
	// the cache.
	got[0] = 0xFF
	again, _ := sp.Read(ids[2])
	if again[0] == 0xFF {
		t.Fatal("shared pool returned aliased frame")
	}
	if s := sp.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats: %+v", s)
	}
	// Write-through + flush.
	if err := sp.Write(ids[0], fill(32, 0xAB)); err != nil {
		t.Fatal(err)
	}
	if err := sp.Flush(); err != nil {
		t.Fatal(err)
	}
	raw, _ := f.Read(ids[0])
	if !bytes.Equal(raw, fill(32, 0xAB)) {
		t.Fatal("flush must persist")
	}
	sp.ResetStats()
	if s := sp.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("reset failed: %+v", s)
	}
	if id, err := sp.Alloc(); err != nil || int(id) != 6 {
		t.Fatalf("alloc through pool: %d %v", id, err)
	}
}

func TestSharedPoolConcurrentReaders(t *testing.T) {
	testutil.CheckGoroutines(t)
	f := NewFile(64)
	var ids []PageID
	for i := 0; i < 40; i++ {
		id, _ := f.Alloc()
		_ = f.Write(id, fill(64, byte(i)))
		ids = append(ids, id)
	}
	sp := NewSharedPool(f, 8)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				j := rng.Intn(len(ids))
				got, err := sp.Read(ids[j])
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, fill(64, byte(j))) {
					errs <- fmt.Errorf("page %d corrupted under concurrency", j)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
