package storage

import "mstsearch/internal/obs"

// Process-wide pool metrics, one set per pool kind: "buffer" is the
// per-query BufferPool, "striped" the shared StripedPool. Handles resolve
// once at init and each pool operation costs at most one extra atomic add
// per counter touched — the hot paths stay allocation-free.
type poolMetrics struct {
	hits, misses, retries, evictions *obs.Counter
}

func newPoolMetrics(kind string) poolMetrics {
	return poolMetrics{
		hits:      obs.Default.Counter("storage.pool." + kind + ".hits"),
		misses:    obs.Default.Counter("storage.pool." + kind + ".misses"),
		retries:   obs.Default.Counter("storage.pool." + kind + ".retries"),
		evictions: obs.Default.Counter("storage.pool." + kind + ".evictions"),
	}
}

var (
	metBuffer  = newPoolMetrics("buffer")
	metStriped = newPoolMetrics("striped")
)
