package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestPowercutStopsWritesAtBudget(t *testing.T) {
	dir := t.TempDir()
	b := NewPowercutBudget(10)
	f, err := b.Open(filepath.Join(dir, "log"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write([]byte("123456")); n != 6 || err != nil {
		t.Fatalf("first write: %d, %v", n, err)
	}
	// 4 bytes of budget left: the 6-byte write tears after 4.
	n, err := f.Write([]byte("abcdef"))
	if n != 4 || !errors.Is(err, ErrPowercut) || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	if !b.Tripped() {
		t.Fatal("budget must trip on exhaustion")
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrPowercut) {
		t.Fatalf("post-cut write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrPowercut) {
		t.Fatalf("post-cut sync: %v", err)
	}
	if _, err := b.Open(filepath.Join(dir, "log2")); !errors.Is(err, ErrPowercut) {
		t.Fatalf("post-cut open: %v", err)
	}
	if err := b.Crash(false); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "log"))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "123456abcd" {
		t.Fatalf("surviving content %q, want the 10-byte prefix", raw)
	}
}

func TestPowercutDropUnsynced(t *testing.T) {
	dir := t.TempDir()
	b := NewPowercutBudget(-1)
	path := filepath.Join(dir, "log")
	f, err := b.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-volatile")); err != nil {
		t.Fatal(err)
	}
	b.Trip()
	if err := b.Crash(true); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "durable" {
		t.Fatalf("after drop-unsynced crash got %q, want only the synced prefix", raw)
	}

	// The optimistic model keeps everything written before the cut.
	b2 := NewPowercutBudget(-1)
	f2, err := b2.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f2.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Write([]byte("-volatile")); err != nil {
		t.Fatal(err)
	}
	if err := b2.Crash(false); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "durable-volatile" {
		t.Fatalf("after keep-unsynced crash got %q", raw)
	}
}

func TestPowercutBudgetSpansFiles(t *testing.T) {
	dir := t.TempDir()
	b := NewPowercutBudget(8)
	f1, err := b.Open(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := b.Open(filepath.Join(dir, "b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Write([]byte("12345")); err != nil {
		t.Fatal(err)
	}
	// 3 bytes left, consumed from the second file.
	if n, err := f2.Write([]byte("abcde")); n != 3 || !errors.Is(err, ErrPowercut) {
		t.Fatalf("cross-file budget: n=%d err=%v", n, err)
	}
	if _, err := f1.Write([]byte("x")); !errors.Is(err, ErrPowercut) {
		t.Fatalf("sibling file must see the cut: %v", err)
	}
	if err := b.Crash(false); err != nil {
		t.Fatal(err)
	}
}

func TestPowercutZeroBudget(t *testing.T) {
	dir := t.TempDir()
	b := NewPowercutBudget(0)
	f, err := b.Open(filepath.Join(dir, "log"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write([]byte("x")); n != 0 || !errors.Is(err, ErrPowercut) {
		t.Fatalf("zero budget write: n=%d err=%v", n, err)
	}
	if err := b.Crash(true); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 0 {
		t.Fatalf("zero budget surviving bytes: %q", raw)
	}
}
