// Package storage provides the paged storage substrate underneath the
// R-tree-like indexes: a page file addressed by page id, and an LRU buffer
// pool with write-back caching, I/O accounting, bounded retry for
// transient faults, and checksum verification of page payloads.
//
// The paper's experimental setup (§5) uses a 4 KB page size and a buffer
// sized at 10 % of the index with a 1000-page cap; NewPaperBuffer encodes
// that policy. The page file here is memory-backed — the experiments care
// about page access counts and buffer behaviour, not physical disks — but
// the interface is what a disk-backed implementation would expose.
//
// # Integrity model
//
// Every pager that owns page payloads (File, DiskFile) maintains a CRC32
// per page, updated on Write and verified on Read. A failed verification
// surfaces as ErrPageCorrupt carrying the damaged page's id — never as a
// silently wrong payload. The BufferPool additionally re-verifies data it
// pulls through intermediate wrappers (see Checksummer), so corruption
// injected *between* the pool and the backing file — a bit flip in transit
// — is also caught.
package storage

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync/atomic"
)

// PageID addresses a page in a file. NilPage is the null reference.
type PageID uint32

// NilPage is the sentinel "no page" value.
const NilPage PageID = ^PageID(0)

// DefaultPageSize matches the paper's 4 KB pages.
const DefaultPageSize = 4096

// Errors returned by pagers.
var (
	ErrPageOutOfRange = errors.New("storage: page id out of range")
	ErrBadPageSize    = errors.New("storage: payload size != page size")
	ErrFileFull       = errors.New("storage: page file full")
)

// ErrPageCorrupt reports a page whose payload failed checksum
// verification: a torn write, a bit flip, or any other corruption of the
// stored bytes. errors.Is(err, ErrPageCorrupt{}) matches regardless of the
// page id; errors.As recovers the damaged page.
type ErrPageCorrupt struct {
	Page PageID
}

// Error implements error.
func (e ErrPageCorrupt) Error() string {
	return fmt.Sprintf("storage: page %d corrupt (checksum mismatch)", e.Page)
}

// Is matches any ErrPageCorrupt, so errors.Is(err, ErrPageCorrupt{}) tests
// for the corruption class without knowing the page.
func (e ErrPageCorrupt) Is(target error) bool {
	_, ok := target.(ErrPageCorrupt)
	return ok
}

// Checksummer is implemented by pagers that maintain an authoritative
// per-page checksum. The BufferPool uses it to verify data read through
// intermediate wrappers (fault injectors, instrumentation) against the
// owner's checksum, catching in-transit corruption.
type Checksummer interface {
	// PageChecksum returns the CRC32 (IEEE) of the page's current payload
	// and true, or false when no checksum is known for the page.
	PageChecksum(id PageID) (uint32, bool)
}

// Pager is the abstraction trees are written against: fixed-size pages,
// allocation, and whole-page read/write.
type Pager interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// Alloc reserves a new zeroed page and returns its id.
	Alloc() (PageID, error)
	// Read returns the content of page id. The returned slice must not be
	// modified by the caller; it is valid until the next pager call.
	Read(id PageID) ([]byte, error)
	// Write replaces the content of page id. len(data) must equal PageSize.
	Write(id PageID, data []byte) error
	// NumPages returns the number of allocated pages.
	NumPages() int
}

// Stats counts page-level I/O. For a File they are physical accesses; a
// BufferPool layers hit/miss accounting on top and forwards misses.
type Stats struct {
	Reads     uint64 // physical page reads
	Writes    uint64 // physical page writes
	Hits      uint64 // buffer hits (pools only)
	Misses    uint64 // buffer misses (pools only)
	Retries   uint64 // read retries after transient faults (pools only)
	Evictions uint64 // frames evicted to make room (pools only)
}

// Reset zeroes the counters.
func (s *Stats) Reset() { *s = Stats{} }

// File is an in-memory page file. Reads of distinct pages may happen
// concurrently (e.g. parallel queries through separate buffer pools); the
// I/O counters are atomic so accounting stays race-free. Alloc/Write must
// not race with readers.
//
// Each page carries a CRC32 maintained on Write and verified on Read, so
// in-place memory corruption (or a test's deliberate CorruptPage) surfaces
// as ErrPageCorrupt instead of a silently wrong payload.
type File struct {
	pageSize int
	pages    [][]byte
	crcs     []uint32
	reads    atomic.Uint64
	writes   atomic.Uint64
}

// NewFile creates a page file with the given page size (DefaultPageSize if
// non-positive).
func NewFile(pageSize int) *File {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &File{pageSize: pageSize}
}

// PageSize implements Pager.
func (f *File) PageSize() int { return f.pageSize }

// NumPages implements Pager.
func (f *File) NumPages() int { return len(f.pages) }

// SizeBytes returns the total size of the file.
func (f *File) SizeBytes() int64 { return int64(len(f.pages)) * int64(f.pageSize) }

// Alloc implements Pager.
func (f *File) Alloc() (PageID, error) {
	if len(f.pages) >= int(NilPage) {
		return NilPage, ErrFileFull
	}
	page := make([]byte, f.pageSize)
	f.pages = append(f.pages, page)
	f.crcs = append(f.crcs, crc32.ChecksumIEEE(page))
	return PageID(len(f.pages) - 1), nil
}

// Read implements Pager, verifying the page's checksum before returning
// it.
func (f *File) Read(id PageID) ([]byte, error) {
	if int(id) >= len(f.pages) {
		return nil, fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, len(f.pages))
	}
	f.reads.Add(1)
	if crc32.ChecksumIEEE(f.pages[id]) != f.crcs[id] {
		return nil, ErrPageCorrupt{Page: id}
	}
	return f.pages[id], nil
}

// Write implements Pager.
func (f *File) Write(id PageID, data []byte) error {
	if int(id) >= len(f.pages) {
		return fmt.Errorf("%w: write %d of %d", ErrPageOutOfRange, id, len(f.pages))
	}
	if len(data) != f.pageSize {
		return fmt.Errorf("%w: %d vs %d", ErrBadPageSize, len(data), f.pageSize)
	}
	f.writes.Add(1)
	copy(f.pages[id], data)
	f.crcs[id] = crc32.ChecksumIEEE(f.pages[id])
	return nil
}

// PageChecksum implements Checksummer.
func (f *File) PageChecksum(id PageID) (uint32, bool) {
	if int(id) >= len(f.crcs) {
		return 0, false
	}
	return f.crcs[id], true
}

// CorruptPage flips one byte of the page's stored payload without updating
// its checksum — simulated bit rot for fault-injection tests. The next
// Read of the page returns ErrPageCorrupt.
func (f *File) CorruptPage(id PageID, offset int) error {
	if int(id) >= len(f.pages) {
		return fmt.Errorf("%w: corrupt %d of %d", ErrPageOutOfRange, id, len(f.pages))
	}
	f.pages[id][offset%f.pageSize] ^= 0xFF
	return nil
}

// Stats returns a snapshot of the physical I/O counters.
func (f *File) Stats() Stats {
	return Stats{Reads: f.reads.Load(), Writes: f.writes.Load()}
}

// ResetStats zeroes the physical I/O counters.
func (f *File) ResetStats() {
	f.reads.Store(0)
	f.writes.Store(0)
}
