package storage

import "sync"

// SharedPool is a latch-protected BufferPool: a single warm page cache
// safely usable by concurrent readers (queries), the way a database keeps
// one buffer pool across its whole workload rather than a cold cache per
// query. Reads copy the frame out under the latch, so callers may hold the
// returned slice across further pool calls.
type SharedPool struct {
	mu   sync.Mutex
	pool *BufferPool
}

// NewSharedPool wraps a fresh BufferPool of the given capacity over any
// pager.
func NewSharedPool(inner Pager, capacity int) *SharedPool {
	return &SharedPool{pool: NewBufferPool(inner, capacity)}
}

// NewSharedPaperPool applies the paper's buffer policy (10 %, ≤1000
// pages).
func NewSharedPaperPool(inner Pager) *SharedPool {
	return &SharedPool{pool: NewPaperBuffer(inner)}
}

// PageSize implements Pager.
func (s *SharedPool) PageSize() int {
	//lint:ignore lockguard pool is assigned once at construction and the page size never changes; latch-free by design
	return s.pool.PageSize()
}

// NumPages implements Pager.
func (s *SharedPool) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.NumPages()
}

// Capacity returns the page capacity.
func (s *SharedPool) Capacity() int {
	//lint:ignore lockguard pool is assigned once at construction and the capacity never changes; latch-free by design
	return s.pool.Capacity()
}

// Alloc implements Pager.
func (s *SharedPool) Alloc() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.Alloc()
}

// Read implements Pager. Unlike BufferPool.Read, the returned slice is a
// private copy and remains valid indefinitely.
func (s *SharedPool) Read(id PageID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := s.pool.Read(id)
	if err != nil {
		return nil, err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Write implements Pager.
func (s *SharedPool) Write(id PageID, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.Write(id, data)
}

// Flush persists dirty frames.
func (s *SharedPool) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.Flush()
}

// Stats snapshots the hit/miss and physical counters.
func (s *SharedPool) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.Stats()
}

// ResetStats zeroes the counters.
func (s *SharedPool) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool.ResetStats()
}

var _ Pager = (*SharedPool)(nil)
