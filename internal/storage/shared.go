package storage

// SharedPool is the shared pager queries run through: a single warm page
// cache safely usable by concurrent readers, the way a database keeps one
// buffer pool across its whole workload rather than a cold cache per
// query. It is the striped pool — N independent lock shards keyed by
// PageID with per-shard LRU segments — so concurrent readers of pages in
// distinct shards never contend on a latch (the original SharedPool
// funnelled every page access through one global mutex). Reads copy the
// frame out under the shard latch, so callers may hold the returned slice
// across further pool calls.
type SharedPool = StripedPool

// NewSharedPool wraps a striped pool of the given total capacity over any
// pager, with the default shard policy.
func NewSharedPool(inner Pager, capacity int) *SharedPool {
	return NewStripedPool(inner, capacity, 0)
}

// NewSharedPaperPool applies the paper's buffer policy (10 %, ≤1000
// pages) across the default shard layout.
func NewSharedPaperPool(inner Pager) *SharedPool {
	return NewStripedPool(inner, paperCapacity(inner.NumPages()), 0)
}
