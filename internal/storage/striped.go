package storage

import (
	"container/list"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"mstsearch/internal/debugassert"
)

// DefaultStripes is the default shard-count ceiling of a StripedPool. The
// effective shard count is the largest power of two not exceeding
// min(DefaultStripes, capacity), so small pools never fragment their
// capacity below one page per shard.
const DefaultStripes = 16

// StripedPool is a latch-striped shared buffer pool: one warm page cache
// safely usable by every concurrent query, partitioned into independent
// lock shards keyed by PageID. Each shard owns a private LRU segment and
// its slice of the total capacity (the per-shard capacities sum to the
// requested capacity, e.g. the paper's 10 % rule), so concurrent readers
// of pages in distinct shards never touch the same latch — the read-mostly
// fast path a serving workload needs. Because a page id maps to exactly
// one shard, all inner-pager I/O for a given page is serialized by that
// shard's latch; different shards only ever access distinct pages
// concurrently, which File and DiskFile support.
//
// I/O counters are atomics, so Stats and ResetStats are exact and never
// race with in-flight readers. Reads copy the frame out under the shard
// latch: the returned slice is private to the caller and remains valid
// indefinitely.
type StripedPool struct {
	inner    Pager
	pageSize int
	capacity int
	mask     uint32 // len(shards) - 1; len(shards) is a power of two

	hits      atomic.Uint64
	misses    atomic.Uint64
	retries   atomic.Uint64
	evictions atomic.Uint64

	shards []poolShard

	// structMu serializes structural growth of the inner pager: Alloc may
	// reallocate the page table underneath concurrent readers, so it takes
	// the write side while every other operation holds the read side.
	// Declared last: it guards the *inner pager's* structure, not the
	// fields above (which are either immutable after construction, atomic,
	// or latched per shard).
	structMu sync.RWMutex // lockrank: 30 — above every shard lock
}

// poolShard is one lock stripe: a mutex plus the LRU segment of the pages
// whose ids hash to it.
type poolShard struct {
	mu       sync.Mutex // lockrank: 40 — taken under structMu, one shard at a time
	lru      *list.List // front = most recently used; values are *frame
	frames   map[PageID]*list.Element
	capacity int
}

// NewStripedPool creates a striped pool over inner with the given total
// page capacity (minimum 1) split across stripes lock shards. stripes <= 0
// selects the default policy; any value is clamped to a power of two no
// larger than the capacity, so every shard holds at least one page.
func NewStripedPool(inner Pager, capacity, stripes int) *StripedPool {
	if capacity < 1 {
		capacity = 1
	}
	if stripes <= 0 {
		stripes = DefaultStripes
	}
	if stripes > capacity {
		stripes = capacity
	}
	// Round down to a power of two for cheap masking.
	n := 1
	for n*2 <= stripes {
		n *= 2
	}
	p := &StripedPool{
		inner:    inner,
		pageSize: inner.PageSize(),
		capacity: capacity,
		mask:     uint32(n - 1),
		shards:   make([]poolShard, n),
	}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.capacity = capacity / n
		if i < capacity%n {
			sh.capacity++
		}
		sh.lru = list.New()
		sh.frames = make(map[PageID]*list.Element, sh.capacity)
	}
	return p
}

// shardFor returns the lock stripe owning the page.
func (p *StripedPool) shardFor(id PageID) *poolShard {
	return &p.shards[uint32(id)&p.mask]
}

// PageSize implements Pager. The page size is fixed at construction, so
// the accessor is latch-free.
func (p *StripedPool) PageSize() int { return p.pageSize }

// Capacity returns the total page capacity (the sum of the per-shard LRU
// segments); immutable after construction.
func (p *StripedPool) Capacity() int { return p.capacity }

// Stripes returns the number of lock shards.
func (p *StripedPool) Stripes() int { return len(p.shards) }

// NumPages implements Pager.
func (p *StripedPool) NumPages() int {
	p.structMu.RLock()
	defer p.structMu.RUnlock()
	return p.inner.NumPages()
}

// Cached returns the number of currently resident frames across all
// shards — by construction never more than Capacity.
func (p *StripedPool) Cached() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// Read implements Pager. The returned slice is a private copy and remains
// valid indefinitely. Concurrent reads of pages in distinct shards
// proceed fully in parallel.
func (p *StripedPool) Read(id PageID) ([]byte, error) {
	p.structMu.RLock()
	defer p.structMu.RUnlock()
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.frames[id]; ok {
		p.hits.Add(1)
		metStriped.hits.Inc()
		sh.lru.MoveToFront(el)
		return cloneBytes(el.Value.(*frame).data), nil
	}
	p.misses.Add(1)
	metStriped.misses.Inc()
	src, err := readVerified(p.inner, id, func() {
		p.retries.Add(1)
		metStriped.retries.Inc()
	})
	if err != nil {
		return nil, err
	}
	data := cloneBytes(src)
	if err := sh.insert(p, id, data, false); err != nil {
		return nil, err
	}
	return cloneBytes(data), nil
}

// Write implements Pager: the page is updated in the owning shard's cache
// and flushed lazily (write-back), exactly like BufferPool.
func (p *StripedPool) Write(id PageID, data []byte) error {
	p.structMu.RLock()
	defer p.structMu.RUnlock()
	if len(data) != p.pageSize {
		return ErrBadPageSize
	}
	if int(id) >= p.inner.NumPages() {
		return ErrPageOutOfRange
	}
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.frames[id]; ok {
		p.hits.Add(1)
		metStriped.hits.Inc()
		fr := el.Value.(*frame)
		copy(fr.data, data)
		fr.dirty = true
		sh.lru.MoveToFront(el)
		return nil
	}
	p.misses.Add(1)
	metStriped.misses.Inc()
	return sh.insert(p, id, cloneBytes(data), true)
}

// Alloc implements Pager. Growth of the inner page table is exclusive:
// Alloc drains all in-flight shard operations (structMu write side) before
// appending, then seeds the new page into its shard's cache dirty so
// short-lived pages may never touch the file.
func (p *StripedPool) Alloc() (PageID, error) {
	p.structMu.Lock()
	defer p.structMu.Unlock()
	id, err := p.inner.Alloc()
	if err != nil {
		return NilPage, err
	}
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.insert(p, id, make([]byte, p.pageSize), true); err != nil {
		return NilPage, err
	}
	return id, nil
}

// Flush persists every dirty frame, shard by shard, keeping frames cached.
func (p *StripedPool) Flush() error {
	p.structMu.RLock()
	defer p.structMu.RUnlock()
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		err := sh.flush(p.inner)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats snapshots the pool's counters — atomics, so the snapshot is exact
// and never races with in-flight readers — combined with the inner pager's
// physical counters when it exposes them (File's are atomic too).
func (p *StripedPool) Stats() Stats {
	s := Stats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Retries:   p.retries.Load(),
		Evictions: p.evictions.Load(),
	}
	if sp, ok := p.inner.(statsProvider); ok {
		fs := sp.Stats()
		s.Reads = fs.Reads
		s.Writes = fs.Writes
	}
	return s
}

// ResetStats zeroes the counters, and the inner pager's when it supports
// resetting.
func (p *StripedPool) ResetStats() {
	p.hits.Store(0)
	p.misses.Store(0)
	p.retries.Store(0)
	p.evictions.Store(0)
	if rs, ok := p.inner.(interface{ ResetStats() }); ok {
		rs.ResetStats()
	}
}

// insert caches data (which must be a private copy) under id, evicting the
// shard's LRU tail first if the segment is full. Callers must hold sh.mu.
func (sh *poolShard) insert(p *StripedPool, id PageID, data []byte, dirty bool) error {
	if err := sh.evictIfFull(p); err != nil {
		return err
	}
	sh.frames[id] = sh.lru.PushFront(&frame{id: id, data: data, dirty: dirty})
	return nil
}

// evictIfFull makes room in the shard, writing dirty victims back through
// inner. Callers must hold sh.mu; the shard owns its pages, so the
// write-back cannot race inner I/O for the same page from other shards.
func (sh *poolShard) evictIfFull(p *StripedPool) error {
	inner := p.inner
	for sh.lru.Len() >= sh.capacity {
		el := sh.lru.Back()
		fr := el.Value.(*frame)
		if fr.dirty {
			if err := inner.Write(fr.id, fr.data); err != nil {
				return err
			}
		} else if debugassert.Enabled {
			// Sanitizer check (same contract as BufferPool): a clean frame
			// leaving the pool must still match the inner pager's
			// authoritative checksum.
			if ck, ok := inner.(Checksummer); ok {
				if want, known := ck.PageChecksum(fr.id); known {
					got := crc32.ChecksumIEEE(fr.data)
					debugassert.Assertf(got == want,
						"evicting clean frame for page %d with CRC %08x; inner pager has %08x",
						fr.id, got, want)
				}
			}
		}
		sh.lru.Remove(el)
		delete(sh.frames, fr.id)
		p.evictions.Add(1)
		metStriped.evictions.Inc()
	}
	return nil
}

// flush writes the shard's dirty frames back. Callers must hold sh.mu.
func (sh *poolShard) flush(inner Pager) error {
	for el := sh.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if fr.dirty {
			if err := inner.Write(fr.id, fr.data); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// cloneBytes returns a private copy of b.
func cloneBytes(b []byte) []byte {
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp
}

var _ Pager = (*StripedPool)(nil)
