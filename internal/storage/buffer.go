package storage

import "container/list"

// BufferPool is an LRU write-back page cache layered over a File. It
// implements Pager, so index structures can be built against either the
// raw file or the buffered view without code changes.
type BufferPool struct {
	file     *File
	capacity int
	stats    Stats

	lru    *list.List // front = most recently used; values are *frame
	frames map[PageID]*list.Element
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
}

// NewBufferPool creates a pool holding at most capacity pages (minimum 1).
func NewBufferPool(file *File, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		file:     file,
		capacity: capacity,
		lru:      list.New(),
		frames:   make(map[PageID]*list.Element, capacity),
	}
}

// NewPaperBuffer applies the paper's buffering policy to an existing file:
// capacity = 10 % of the file's current page count, capped at 1000 pages
// (and at least one page).
func NewPaperBuffer(file *File) *BufferPool {
	c := file.NumPages() / 10
	if c > 1000 {
		c = 1000
	}
	return NewBufferPool(file, c)
}

// PageSize implements Pager.
func (b *BufferPool) PageSize() int { return b.file.PageSize() }

// NumPages implements Pager.
func (b *BufferPool) NumPages() int { return b.file.NumPages() }

// Capacity returns the pool's page capacity.
func (b *BufferPool) Capacity() int { return b.capacity }

// Alloc implements Pager. Newly allocated pages enter the cache dirty so
// short-lived pages may never touch the file.
func (b *BufferPool) Alloc() (PageID, error) {
	id, err := b.file.Alloc()
	if err != nil {
		return NilPage, err
	}
	if err := b.insert(id, make([]byte, b.file.PageSize()), true); err != nil {
		return NilPage, err
	}
	return id, nil
}

// Read implements Pager. The returned slice aliases the cached frame and
// is only valid until the next pool call.
func (b *BufferPool) Read(id PageID) ([]byte, error) {
	if el, ok := b.frames[id]; ok {
		b.stats.Hits++
		b.lru.MoveToFront(el)
		return el.Value.(*frame).data, nil
	}
	b.stats.Misses++
	src, err := b.file.Read(id)
	if err != nil {
		return nil, err
	}
	data := make([]byte, len(src))
	copy(data, src)
	if err := b.insert(id, data, false); err != nil {
		return nil, err
	}
	return data, nil
}

// Write implements Pager: the page is updated in cache and flushed lazily.
func (b *BufferPool) Write(id PageID, data []byte) error {
	if len(data) != b.file.PageSize() {
		return ErrBadPageSize
	}
	if int(id) >= b.file.NumPages() {
		return ErrPageOutOfRange
	}
	if el, ok := b.frames[id]; ok {
		b.stats.Hits++
		fr := el.Value.(*frame)
		copy(fr.data, data)
		fr.dirty = true
		b.lru.MoveToFront(el)
		return nil
	}
	b.stats.Misses++
	cp := make([]byte, len(data))
	copy(cp, data)
	return b.insert(id, cp, true)
}

func (b *BufferPool) insert(id PageID, data []byte, dirty bool) error {
	if err := b.evictIfFull(); err != nil {
		return err
	}
	el := b.lru.PushFront(&frame{id: id, data: data, dirty: dirty})
	b.frames[id] = el
	return nil
}

func (b *BufferPool) evictIfFull() error {
	for b.lru.Len() >= b.capacity {
		el := b.lru.Back()
		fr := el.Value.(*frame)
		if fr.dirty {
			if err := b.file.Write(fr.id, fr.data); err != nil {
				return err
			}
		}
		b.lru.Remove(el)
		delete(b.frames, fr.id)
	}
	return nil
}

// Flush writes every dirty frame back to the file, keeping them cached.
func (b *BufferPool) Flush() error {
	for el := b.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if fr.dirty {
			if err := b.file.Write(fr.id, fr.data); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// Stats returns the pool's hit/miss counters combined with the underlying
// file's physical counters.
func (b *BufferPool) Stats() Stats {
	s := b.stats
	fs := b.file.Stats()
	s.Reads = fs.Reads
	s.Writes = fs.Writes
	return s
}

// ResetStats zeroes both the pool's and the file's counters.
func (b *BufferPool) ResetStats() {
	b.stats.Reset()
	b.file.ResetStats()
}
