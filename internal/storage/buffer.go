package storage

import (
	"container/list"
	"errors"
	"hash/crc32"
	"time"

	"mstsearch/internal/debugassert"
)

// BufferPool is an LRU write-back page cache layered over any Pager. It
// implements Pager itself, so index structures can be built against either
// the raw file or the buffered view without code changes.
//
// The pool is the hardening point of the read path: a miss that comes back
// with a transient fault (ErrTransient) or a checksum mismatch — possibly
// a bit flip between the pool and the page's owner — is retried a bounded
// number of times with a short backoff before the error is surfaced.
// Permanent faults and out-of-range reads are never retried.
type BufferPool struct {
	inner    Pager
	capacity int
	stats    Stats

	lru    *list.List // front = most recently used; values are *frame
	frames map[PageID]*list.Element
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
}

// maxReadRetries bounds how many times a miss is re-read after a
// retryable fault; retryBackoff is the base delay, doubled per attempt
// (50µs, 100µs, 200µs — long enough to step over a transient glitch,
// short enough to keep fault-injection tests fast).
const (
	maxReadRetries = 3
	retryBackoff   = 50 * time.Microsecond
)

// NewBufferPool creates a pool holding at most capacity pages (minimum 1).
func NewBufferPool(inner Pager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		inner:    inner,
		capacity: capacity,
		lru:      list.New(),
		frames:   make(map[PageID]*list.Element, capacity),
	}
}

// paperCapacity is the paper's buffer policy (§5): 10 % of the index's
// page count, capped at 1000 pages and at least one page.
func paperCapacity(numPages int) int {
	c := numPages / 10
	if c > 1000 {
		c = 1000
	}
	if c < 1 {
		c = 1
	}
	return c
}

// NewPaperBuffer applies the paper's buffering policy to an existing
// pager: capacity = 10 % of its current page count, capped at 1000 pages
// (and at least one page).
func NewPaperBuffer(inner Pager) *BufferPool {
	return NewBufferPool(inner, paperCapacity(inner.NumPages()))
}

// PageSize implements Pager.
func (b *BufferPool) PageSize() int { return b.inner.PageSize() }

// NumPages implements Pager.
func (b *BufferPool) NumPages() int { return b.inner.NumPages() }

// Capacity returns the pool's page capacity.
func (b *BufferPool) Capacity() int { return b.capacity }

// Alloc implements Pager. Newly allocated pages enter the cache dirty so
// short-lived pages may never touch the file.
func (b *BufferPool) Alloc() (PageID, error) {
	id, err := b.inner.Alloc()
	if err != nil {
		return NilPage, err
	}
	if err := b.insert(id, make([]byte, b.inner.PageSize()), true); err != nil {
		return NilPage, err
	}
	return id, nil
}

// retryable reports whether a read error may resolve on re-read: injected
// transient faults, and checksum mismatches (an in-transit bit flip reads
// clean the second time; truly rotten pages keep failing and the error
// stands after the retry budget).
func retryable(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrPageCorrupt{})
}

// readVerified pulls a page from a pager with verification and bounded
// retry — the shared miss path of BufferPool and StripedPool. When the
// inner chain exposes an authoritative checksum (Checksummer), the payload
// is verified against it, catching corruption introduced between the pool
// and the page's owner. onRetry is invoked once per retried attempt so the
// caller can account for it.
func readVerified(inner Pager, id PageID, onRetry func()) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		src, err := inner.Read(id)
		if err == nil {
			if ck, ok := inner.(Checksummer); ok {
				if want, known := ck.PageChecksum(id); known && crc32.ChecksumIEEE(src) != want {
					err = ErrPageCorrupt{Page: id}
				}
			}
			if err == nil {
				return src, nil
			}
		}
		if attempt >= maxReadRetries || !retryable(err) {
			return nil, err
		}
		onRetry()
		time.Sleep(retryBackoff << attempt)
	}
}

// readInner pulls a page from the wrapped pager with verification and
// bounded retry.
func (b *BufferPool) readInner(id PageID) ([]byte, error) {
	return readVerified(b.inner, id, func() {
		b.stats.Retries++
		metBuffer.retries.Inc()
	})
}

// Read implements Pager. The returned slice aliases the cached frame and
// is only valid until the next pool call.
func (b *BufferPool) Read(id PageID) ([]byte, error) {
	if el, ok := b.frames[id]; ok {
		b.stats.Hits++
		metBuffer.hits.Inc()
		b.lru.MoveToFront(el)
		return el.Value.(*frame).data, nil
	}
	b.stats.Misses++
	metBuffer.misses.Inc()
	src, err := b.readInner(id)
	if err != nil {
		return nil, err
	}
	data := make([]byte, len(src))
	copy(data, src)
	if err := b.insert(id, data, false); err != nil {
		return nil, err
	}
	return data, nil
}

// Write implements Pager: the page is updated in cache and flushed lazily.
func (b *BufferPool) Write(id PageID, data []byte) error {
	if len(data) != b.inner.PageSize() {
		return ErrBadPageSize
	}
	if int(id) >= b.inner.NumPages() {
		return ErrPageOutOfRange
	}
	if el, ok := b.frames[id]; ok {
		b.stats.Hits++
		metBuffer.hits.Inc()
		fr := el.Value.(*frame)
		copy(fr.data, data)
		fr.dirty = true
		b.lru.MoveToFront(el)
		return nil
	}
	b.stats.Misses++
	metBuffer.misses.Inc()
	cp := make([]byte, len(data))
	copy(cp, data)
	return b.insert(id, cp, true)
}

func (b *BufferPool) insert(id PageID, data []byte, dirty bool) error {
	if err := b.evictIfFull(); err != nil {
		return err
	}
	el := b.lru.PushFront(&frame{id: id, data: data, dirty: dirty})
	b.frames[id] = el
	return nil
}

func (b *BufferPool) evictIfFull() error {
	for b.lru.Len() >= b.capacity {
		el := b.lru.Back()
		fr := el.Value.(*frame)
		if fr.dirty {
			if err := b.inner.Write(fr.id, fr.data); err != nil {
				return err
			}
		} else if debugassert.Enabled {
			// Sanitizer check: a clean frame leaving the pool must still
			// match the inner pager's authoritative checksum — anything
			// else is in-memory corruption of the cached copy or a lost
			// dirty bit, both of which would vanish silently with the
			// eviction. Pagers without an authoritative CRC (e.g. fault
			// injectors) are skipped.
			if ck, ok := b.inner.(Checksummer); ok {
				if want, known := ck.PageChecksum(fr.id); known {
					got := crc32.ChecksumIEEE(fr.data)
					debugassert.Assertf(got == want,
						"evicting clean frame for page %d with CRC %08x; inner pager has %08x",
						fr.id, got, want)
				}
			}
		}
		b.lru.Remove(el)
		delete(b.frames, fr.id)
		b.stats.Evictions++
		metBuffer.evictions.Inc()
	}
	return nil
}

// Flush writes every dirty frame back to the file, keeping them cached.
func (b *BufferPool) Flush() error {
	for el := b.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if fr.dirty {
			if err := b.inner.Write(fr.id, fr.data); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// statsProvider is any pager exposing I/O counters.
type statsProvider interface{ Stats() Stats }

// Stats returns the pool's hit/miss/retry counters combined with the
// wrapped pager's physical counters (when it exposes them).
func (b *BufferPool) Stats() Stats {
	s := b.stats
	if sp, ok := b.inner.(statsProvider); ok {
		fs := sp.Stats()
		s.Reads = fs.Reads
		s.Writes = fs.Writes
	}
	return s
}

// ResetStats zeroes the pool's counters, and the wrapped pager's when it
// supports resetting.
func (b *BufferPool) ResetStats() {
	b.stats.Reset()
	if rs, ok := b.inner.(interface{ ResetStats() }); ok {
		rs.ResetStats()
	}
}
