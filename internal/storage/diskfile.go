package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"
)

// DiskFile is an os.File-backed Pager with the same semantics as the
// in-memory File: fixed-size pages addressed by PageID. The first pageSize
// bytes of the physical file are a header slot; data page i lives at
// offset pageSize + i·(pageSize+4) — each on-disk slot is the page payload
// followed by its CRC32 (IEEE, little endian). The header records the page
// size and the allocated page count, so a DiskFile can be reopened.
//
// The per-slot CRC is written together with the payload in one contiguous
// write and verified on every Read: a torn write (payload and checksum out
// of sync) or on-disk bit rot surfaces as ErrPageCorrupt carrying the
// damaged page's id, never as a silently wrong payload.
//
// Like File, concurrent Reads are safe; Alloc/Write must not race with
// readers. Index structures run on any Pager, DiskFile included.
type DiskFile struct {
	f        *os.File
	pageSize int
	numPages int
	buf      []byte // read buffer (payload + crc), reused across Read calls
	wbuf     []byte // write buffer (payload + crc)
	reads    atomic.Uint64
	writes   atomic.Uint64
}

const (
	diskMagic      = "MSTPAGE2"
	diskHeaderSize = len(diskMagic) + 8 // magic + u32 pageSize + u32 numPages
	diskCRCSize    = 4                  // per-slot trailing CRC32
)

// ErrBadDiskFile reports an unrecognizable page file.
var ErrBadDiskFile = errors.New("storage: not a page file")

// ErrPageTooSmall reports a configured page size too small to hold the
// on-disk slot header.
var ErrPageTooSmall = errors.New("storage: page size below header size")

// CreateDiskFile creates (truncating) a page file at path.
func CreateDiskFile(path string, pageSize int) (*DiskFile, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < diskHeaderSize {
		return nil, fmt.Errorf("page size %d: %w", pageSize, ErrPageTooSmall)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	d := &DiskFile{
		f:        f,
		pageSize: pageSize,
		buf:      make([]byte, pageSize+diskCRCSize),
		wbuf:     make([]byte, pageSize+diskCRCSize),
	}
	if err := d.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// OpenDiskFile opens an existing page file.
func OpenDiskFile(path string) (*DiskFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, diskHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %v", ErrBadDiskFile, err)
	}
	if string(hdr[:len(diskMagic)]) != diskMagic {
		f.Close()
		return nil, ErrBadDiskFile
	}
	ps := int(binary.LittleEndian.Uint32(hdr[len(diskMagic):]))
	np := int(binary.LittleEndian.Uint32(hdr[len(diskMagic)+4:]))
	if ps < diskHeaderSize || ps > 1<<24 || np < 0 {
		f.Close()
		return nil, fmt.Errorf("%w: header pageSize=%d numPages=%d", ErrBadDiskFile, ps, np)
	}
	return &DiskFile{
		f:        f,
		pageSize: ps,
		numPages: np,
		buf:      make([]byte, ps+diskCRCSize),
		wbuf:     make([]byte, ps+diskCRCSize),
	}, nil
}

func (d *DiskFile) writeHeader() error {
	hdr := make([]byte, diskHeaderSize)
	copy(hdr, diskMagic)
	binary.LittleEndian.PutUint32(hdr[len(diskMagic):], uint32(d.pageSize))
	binary.LittleEndian.PutUint32(hdr[len(diskMagic)+4:], uint32(d.numPages))
	_, err := d.f.WriteAt(hdr, 0)
	return err
}

// PageSize implements Pager.
func (d *DiskFile) PageSize() int { return d.pageSize }

// NumPages implements Pager.
func (d *DiskFile) NumPages() int { return d.numPages }

// SizeBytes returns the data size (excluding the header slot and the
// per-slot checksums).
func (d *DiskFile) SizeBytes() int64 { return int64(d.numPages) * int64(d.pageSize) }

func (d *DiskFile) offset(id PageID) int64 {
	return int64(d.pageSize) + int64(id)*int64(d.pageSize+diskCRCSize)
}

// Alloc implements Pager: extends the file by one zeroed page.
func (d *DiskFile) Alloc() (PageID, error) {
	id := PageID(d.numPages)
	zero := make([]byte, d.pageSize+diskCRCSize)
	binary.LittleEndian.PutUint32(zero[d.pageSize:], crc32.ChecksumIEEE(zero[:d.pageSize]))
	if _, err := d.f.WriteAt(zero, d.offset(id)); err != nil {
		return NilPage, err
	}
	d.numPages++
	return id, d.writeHeader()
}

// Read implements Pager, verifying the slot checksum. The returned slice
// is valid until the next Read.
func (d *DiskFile) Read(id PageID) ([]byte, error) {
	if int(id) >= d.numPages {
		return nil, fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, d.numPages)
	}
	d.reads.Add(1)
	if _, err := d.f.ReadAt(d.buf, d.offset(id)); err != nil {
		return nil, err
	}
	want := binary.LittleEndian.Uint32(d.buf[d.pageSize:])
	if crc32.ChecksumIEEE(d.buf[:d.pageSize]) != want {
		return nil, ErrPageCorrupt{Page: id}
	}
	return d.buf[:d.pageSize], nil
}

// Write implements Pager, storing the payload and its checksum in one
// contiguous write.
func (d *DiskFile) Write(id PageID, data []byte) error {
	if int(id) >= d.numPages {
		return fmt.Errorf("%w: write %d of %d", ErrPageOutOfRange, id, d.numPages)
	}
	if len(data) != d.pageSize {
		return fmt.Errorf("%w: %d vs %d", ErrBadPageSize, len(data), d.pageSize)
	}
	d.writes.Add(1)
	copy(d.wbuf, data)
	binary.LittleEndian.PutUint32(d.wbuf[d.pageSize:], crc32.ChecksumIEEE(data))
	_, err := d.f.WriteAt(d.wbuf, d.offset(id))
	return err
}

// Stats returns the physical I/O counters.
func (d *DiskFile) Stats() Stats {
	return Stats{Reads: d.reads.Load(), Writes: d.writes.Load()}
}

// Sync flushes the file to stable storage.
func (d *DiskFile) Sync() error { return d.f.Sync() }

// Close syncs the header and closes the file.
func (d *DiskFile) Close() error {
	if err := d.writeHeader(); err != nil {
		d.f.Close()
		return err
	}
	if err := d.f.Sync(); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Close()
}
