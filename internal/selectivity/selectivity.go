// Package selectivity implements spatiotemporal selectivity estimation for
// query optimization — the second research direction the paper's
// conclusions call for (§6, building on Tao, Sun and Papadias's analysis
// of predictive spatiotemporal queries [18]).
//
// The estimator is a 3D (x, y, t) equi-width histogram over the indexed
// segments. It answers two questions a query optimizer asks:
//
//   - EstimateRange: how many segments does a window query select? —
//     used to decide between an index scan and a sequential scan;
//   - EstimateKMST: how large is the spatial corridor a k-MST query must
//     inspect, and roughly how many leaf pages does that cost? — used to
//     price a similarity query before running it.
//
// Both estimates assume per-bucket uniformity, the standard histogram
// assumption.
package selectivity

import (
	"fmt"
	"math"

	"mstsearch/internal/geom"
	"mstsearch/internal/trajectory"
)

// Histogram is a 3D equi-width histogram of segment density. Segment mass
// is distributed over the buckets its bounding box overlaps,
// proportionally to overlap volume, so long segments do not double-count.
type Histogram struct {
	bounds     geom.MBB
	nx, ny, nt int
	// mass[i] is the expected number of segments "resident" in bucket i;
	// objMass[i] estimates distinct objects passing through the bucket.
	mass    []float64
	objMass []float64
	total   float64
	objects int
}

// Build constructs a histogram with the given resolution (buckets per
// axis; minimum 1 each) over the dataset.
func Build(data *trajectory.Dataset, nx, ny, nt int) (*Histogram, error) {
	if nx < 1 || ny < 1 || nt < 1 {
		return nil, fmt.Errorf("selectivity: bad resolution %dx%dx%d", nx, ny, nt)
	}
	bounds := data.Bounds()
	if bounds.IsEmpty() {
		return nil, fmt.Errorf("selectivity: empty dataset")
	}
	h := &Histogram{
		bounds: bounds, nx: nx, ny: ny, nt: nt,
		mass:    make([]float64, nx*ny*nt),
		objMass: make([]float64, nx*ny*nt),
		objects: data.Len(),
	}
	seenObj := make(map[int]trajectory.ID, 64)
	for i := range data.Trajs {
		tr := &data.Trajs[i]
		for s := 0; s < tr.NumSegments(); s++ {
			box := geom.MBBOfSegment(tr.Segment(s))
			h.splat(box, 1, h.mass)
			h.total++
			// Object presence: count each object at most once per bucket.
			h.forEachBucket(box, func(idx int, _ float64) {
				if seenObj[idx] != tr.ID {
					seenObj[idx] = tr.ID
					h.objMass[idx]++
				}
			})
		}
	}
	return h, nil
}

// dims returns bucket extents (guarding degenerate axes).
func (h *Histogram) dims() (dx, dy, dt float64) {
	dx = (h.bounds.MaxX - h.bounds.MinX) / float64(h.nx)
	dy = (h.bounds.MaxY - h.bounds.MinY) / float64(h.ny)
	dt = (h.bounds.MaxT - h.bounds.MinT) / float64(h.nt)
	if dx <= 0 {
		dx = 1
	}
	if dy <= 0 {
		dy = 1
	}
	if dt <= 0 {
		dt = 1
	}
	return
}

// bucketRange returns the inclusive bucket index range overlapping [lo,
// hi] on an axis with n buckets starting at min with width w.
func bucketRange(lo, hi, min, w float64, n int) (int, int) {
	a := int(math.Floor((lo - min) / w))
	b := int(math.Floor((hi - min) / w))
	if a < 0 {
		a = 0
	}
	if b >= n {
		b = n - 1
	}
	return a, b
}

// forEachBucket visits every bucket overlapping box with the overlap
// fraction of the box's volume (degenerate extents treated as points).
func (h *Histogram) forEachBucket(box geom.MBB, fn func(idx int, frac float64)) {
	dx, dy, dt := h.dims()
	x0, x1 := bucketRange(box.MinX, box.MaxX, h.bounds.MinX, dx, h.nx)
	y0, y1 := bucketRange(box.MinY, box.MaxY, h.bounds.MinY, dy, h.ny)
	t0, t1 := bucketRange(box.MinT, box.MaxT, h.bounds.MinT, dt, h.nt)
	overlap1 := func(lo, hi, bmin, w float64, i int) float64 {
		blo := bmin + float64(i)*w
		bhi := blo + w
		if hi <= lo {
			// Point extent: fully inside exactly one bucket.
			if lo >= blo && lo <= bhi {
				return 1
			}
			return 0
		}
		ov := math.Min(hi, bhi) - math.Max(lo, blo)
		if ov <= 0 {
			return 0
		}
		return ov / (hi - lo)
	}
	for xi := x0; xi <= x1; xi++ {
		fx := overlap1(box.MinX, box.MaxX, h.bounds.MinX, dx, xi)
		if fx == 0 {
			continue
		}
		for yi := y0; yi <= y1; yi++ {
			fy := overlap1(box.MinY, box.MaxY, h.bounds.MinY, dy, yi)
			if fy == 0 {
				continue
			}
			for ti := t0; ti <= t1; ti++ {
				ft := overlap1(box.MinT, box.MaxT, h.bounds.MinT, dt, ti)
				if ft == 0 {
					continue
				}
				fn((xi*h.ny+yi)*h.nt+ti, fx*fy*ft)
			}
		}
	}
}

// splat distributes mass over the buckets a box overlaps.
func (h *Histogram) splat(box geom.MBB, mass float64, into []float64) {
	h.forEachBucket(box, func(idx int, frac float64) {
		into[idx] += mass * frac
	})
}

// Total returns the number of segments summarized.
func (h *Histogram) Total() float64 { return h.total }

// EstimateRange estimates how many segments a window query over box
// selects: per bucket, the resident mass scaled by the query's coverage of
// the bucket, with a dilation term for segments straddling the boundary
// (captured implicitly by the proportional splatting at build time).
func (h *Histogram) EstimateRange(box geom.MBB) float64 {
	if !box.Intersects(h.bounds) {
		return 0
	}
	dx, dy, dt := h.dims()
	x0, x1 := bucketRange(box.MinX, box.MaxX, h.bounds.MinX, dx, h.nx)
	y0, y1 := bucketRange(box.MinY, box.MaxY, h.bounds.MinY, dy, h.ny)
	t0, t1 := bucketRange(box.MinT, box.MaxT, h.bounds.MinT, dt, h.nt)
	cover1 := func(qlo, qhi, bmin, w float64, i int) float64 {
		blo := bmin + float64(i)*w
		bhi := blo + w
		ov := math.Min(qhi, bhi) - math.Max(qlo, blo)
		if ov <= 0 {
			return 0
		}
		return ov / w
	}
	var est float64
	for xi := x0; xi <= x1; xi++ {
		cx := cover1(box.MinX, box.MaxX, h.bounds.MinX, dx, xi)
		for yi := y0; yi <= y1; yi++ {
			cy := cover1(box.MinY, box.MaxY, h.bounds.MinY, dy, yi)
			for ti := t0; ti <= t1; ti++ {
				ct := cover1(box.MinT, box.MaxT, h.bounds.MinT, dt, ti)
				est += h.mass[(xi*h.ny+yi)*h.nt+ti] * cx * cy * ct
			}
		}
	}
	return est
}

// Selectivity returns EstimateRange as a fraction of all segments.
func (h *Histogram) Selectivity(box geom.MBB) float64 {
	if h.total == 0 {
		return 0
	}
	return h.EstimateRange(box) / h.total
}

// KMSTEstimate is the optimizer-facing cost estimate of a k-MST query.
type KMSTEstimate struct {
	// Radius is the estimated spatial corridor radius within which the k
	// most similar trajectories travel.
	Radius float64
	// Segments is the expected number of segments inside the corridor —
	// the leaf-entry workload of the search.
	Segments float64
	// LeafPages approximates Segments / leaf fan-out.
	LeafPages float64
}

// EstimateKMST prices a k-MST query for query trajectory q over [t1, t2]:
// it grows a corridor around the query's course until the histogram
// predicts ≥ k distinct objects inside it, then reports the segment mass
// of that corridor. leafFanout converts segments to leaf pages (the
// dominant I/O term of BFMSTSearch).
func (h *Histogram) EstimateKMST(q *trajectory.Trajectory, t1, t2 float64, k, leafFanout int) KMSTEstimate {
	if k < 1 {
		k = 1
	}
	if leafFanout < 1 {
		leafFanout = 1
	}
	dx, dy, _ := h.dims()
	base := math.Max(dx, dy) / 2
	radius := base
	maxR := math.Max(h.bounds.MaxX-h.bounds.MinX, h.bounds.MaxY-h.bounds.MinY)
	var objs, segs float64
	for {
		objs, segs = h.corridorMass(q, t1, t2, radius)
		if objs >= float64(k) || radius > maxR {
			break
		}
		radius *= 1.5
	}
	return KMSTEstimate{
		Radius:    radius,
		Segments:  segs,
		LeafPages: math.Ceil(segs / float64(leafFanout)),
	}
}

// corridorMass sums the segment mass of the buckets within radius of the
// query's course during [t1, t2] and derives the expected number of
// distinct objects living in the corridor: corridor segments divided by
// the average number of segments one object contributes during the query
// period (total/objects scaled by the period's share of the time domain).
func (h *Histogram) corridorMass(q *trajectory.Trajectory, t1, t2 float64, radius float64) (objs, segs float64) {
	seen := make(map[int]bool)
	for i := 0; i < q.NumSegments(); i++ {
		seg := q.Segment(i)
		c, ok := seg.ClipTime(t1, t2)
		if !ok || c.Duration() <= 0 {
			continue
		}
		box := geom.MBBOfSegment(c)
		box.MinX -= radius
		box.MinY -= radius
		box.MaxX += radius
		box.MaxY += radius
		h.forEachBucket(box, func(idx int, _ float64) {
			if !seen[idx] {
				seen[idx] = true
				segs += h.mass[idx]
			}
		})
	}
	if h.objects > 0 && h.total > 0 {
		span := h.bounds.MaxT - h.bounds.MinT
		frac := 1.0
		if span > 0 {
			frac = math.Min(1, math.Max(1e-9, (t2-t1)/span))
		}
		segsPerObj := h.total / float64(h.objects) * frac
		if segsPerObj > 0 {
			objs = segs / segsPerObj
		}
	}
	return objs, segs
}

// EstimateDistinctObjects coarsely bounds the number of distinct objects
// intersecting box: the sum of per-bucket object presences (an
// overestimate for objects spanning buckets) clamped by the dataset
// cardinality.
func (h *Histogram) EstimateDistinctObjects(box geom.MBB) float64 {
	var sum float64
	h.forEachBucket(box, func(idx int, _ float64) {
		sum += h.objMass[idx]
	})
	return math.Min(sum, float64(h.objects))
}
