package selectivity

import (
	"math"
	"testing"

	"mstsearch/internal/geom"
	"mstsearch/internal/gstd"
	"mstsearch/internal/index"
	"mstsearch/internal/trajectory"
)

func dataset(seed int64) *trajectory.Dataset {
	return gstd.Generate(gstd.Config{NumObjects: 40, SamplesPerObject: 301, Seed: seed})
}

// trueRangeCount is the brute-force ground truth: segments whose MBB
// intersects the box.
func trueRangeCount(d *trajectory.Dataset, box geom.MBB) int {
	n := 0
	for i := range d.Trajs {
		tr := &d.Trajs[i]
		for s := 0; s < tr.NumSegments(); s++ {
			if geom.MBBOfSegment(tr.Segment(s)).Intersects(box) {
				n++
			}
		}
	}
	return n
}

func TestBuildValidation(t *testing.T) {
	d := dataset(1)
	if _, err := Build(d, 0, 4, 4); err == nil {
		t.Fatal("zero resolution must fail")
	}
	empty, _ := trajectory.NewDataset(nil)
	if _, err := Build(empty, 4, 4, 4); err == nil {
		t.Fatal("empty dataset must fail")
	}
	h, err := Build(d, 8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Total()-float64(d.NumSegments())) > 1e-6 {
		t.Fatalf("total mass %v, want %d", h.Total(), d.NumSegments())
	}
}

func TestMassConservation(t *testing.T) {
	d := dataset(2)
	h, err := Build(d, 6, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, m := range h.mass {
		sum += m
	}
	if math.Abs(sum-float64(d.NumSegments())) > 1e-6*float64(d.NumSegments()) {
		t.Fatalf("splatted mass %v, want %d", sum, d.NumSegments())
	}
}

func TestEstimateRangeWholeDomain(t *testing.T) {
	d := dataset(3)
	h, err := Build(d, 8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	all := d.Bounds()
	est := h.EstimateRange(all)
	if math.Abs(est-float64(d.NumSegments())) > 0.01*float64(d.NumSegments()) {
		t.Fatalf("whole-domain estimate %v, want %d", est, d.NumSegments())
	}
	if s := h.Selectivity(all); math.Abs(s-1) > 0.01 {
		t.Fatalf("whole-domain selectivity %v", s)
	}
	// Disjoint box.
	far := geom.MBB{MinX: 100, MinY: 100, MinT: 100, MaxX: 101, MaxY: 101, MaxT: 101}
	if est := h.EstimateRange(far); est != 0 {
		t.Fatalf("disjoint estimate %v", est)
	}
}

// Calibration: on GSTD data the histogram estimate should land within a
// small factor of the true count for mid-size windows.
func TestEstimateRangeCalibration(t *testing.T) {
	d := dataset(4)
	h, err := Build(d, 12, 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	cases := []geom.MBB{
		{MinX: 0.2, MinY: 0.2, MinT: 0.2, MaxX: 0.6, MaxY: 0.6, MaxT: 0.5},
		{MinX: 0.0, MinY: 0.0, MinT: 0.0, MaxX: 0.5, MaxY: 0.5, MaxT: 1.0},
		{MinX: 0.4, MinY: 0.1, MinT: 0.5, MaxX: 0.9, MaxY: 0.5, MaxT: 0.8},
		{MinX: 0.1, MinY: 0.6, MinT: 0.0, MaxX: 0.4, MaxY: 0.95, MaxT: 0.4},
	}
	for i, box := range cases {
		est := h.EstimateRange(box)
		truth := float64(trueRangeCount(d, box))
		if truth < 50 {
			continue // too small for a meaningful ratio
		}
		ratio := est / truth
		if ratio < 0.4 || ratio > 2.5 {
			t.Fatalf("case %d: estimate %v vs truth %v (ratio %.2f)", i, est, truth, ratio)
		}
	}
}

// Monotonicity: growing the window never shrinks the estimate.
func TestEstimateRangeMonotone(t *testing.T) {
	d := dataset(5)
	h, err := Build(d, 10, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, half := range []float64{0.05, 0.1, 0.2, 0.3, 0.5} {
		box := geom.MBB{
			MinX: 0.5 - half, MinY: 0.5 - half, MinT: 0.5 - half,
			MaxX: 0.5 + half, MaxY: 0.5 + half, MaxT: 0.5 + half,
		}
		est := h.EstimateRange(box)
		if est < prev-1e-9 {
			t.Fatalf("estimate shrank when window grew: %v after %v", est, prev)
		}
		prev = est
	}
}

func TestEstimateKMST(t *testing.T) {
	d := dataset(6)
	h, err := Build(d, 10, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := d.Trajs[0].Slice(0.3, 0.5)
	if !ok {
		t.Fatal("slice failed")
	}
	fanout := index.MaxLeafEntries(4096)
	e1 := h.EstimateKMST(&q, 0.3, 0.5, 1, fanout)
	e10 := h.EstimateKMST(&q, 0.3, 0.5, 10, fanout)
	if e1.Radius <= 0 || e1.Segments <= 0 || e1.LeafPages < 1 {
		t.Fatalf("degenerate estimate %+v", e1)
	}
	if e10.Radius < e1.Radius {
		t.Fatalf("k=10 corridor (%v) smaller than k=1 (%v)", e10.Radius, e1.Radius)
	}
	if e10.Segments < e1.Segments {
		t.Fatalf("k=10 workload smaller than k=1: %+v vs %+v", e10, e1)
	}
	// The corridor can never predict more segments than exist.
	if e10.Segments > float64(d.NumSegments())+1e-6 {
		t.Fatalf("estimate exceeds dataset: %+v", e10)
	}
}

func TestEstimateDistinctObjects(t *testing.T) {
	d := dataset(7)
	h, err := Build(d, 8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	all := h.EstimateDistinctObjects(d.Bounds())
	if all > float64(d.Len())+1e-9 {
		t.Fatalf("object bound %v exceeds cardinality %d", all, d.Len())
	}
	if all < float64(d.Len())*0.9 {
		t.Fatalf("whole-domain object estimate %v too small for %d objects", all, d.Len())
	}
}
