// Package testutil holds shared test infrastructure. Its first resident
// is the goroutine-leak checker the concurrency-heavy suites (batch
// executor, striped-pool soak, the serving layer) arm at the top of each
// test: a leaked worker is a deadlock or an unbounded-resource bug
// waiting for production traffic to find it, so the tests fail on it
// first.
package testutil

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// CheckGoroutines arms a goroutine-leak check for the test: it snapshots
// the live goroutines now and, when the test finishes, fails the test if
// goroutines born during the test are still alive after a grace period.
// The grace period (bounded retries) absorbs goroutines that are mid-exit
// — a worker that has left its loop but not yet returned — without
// masking genuine leaks, and the failure message carries the stack of
// every leaked goroutine so the culprit is named, not guessed at.
//
// Call it before starting any servers or pools so their goroutines count
// as born during the test.
func CheckGoroutines(t testing.TB) {
	t.Helper()
	base := goroutineStacks()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			leaked := leakedSince(base)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				var b strings.Builder
				for _, stack := range leaked {
					b.WriteString(stack)
					b.WriteString("\n\n")
				}
				t.Errorf("goroutine leak: %d goroutines born during the test are still running:\n%s",
					len(leaked), b.String())
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// goroutineStacks captures every live goroutine's stack, keyed by
// goroutine id.
func goroutineStacks() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[string]string)
	for _, block := range strings.Split(string(buf), "\n\n") {
		if id := goroutineID(block); id != "" {
			out[id] = block
		}
	}
	return out
}

// goroutineID extracts the id from a "goroutine N [state]:" stack header
// ("" for a malformed block).
func goroutineID(block string) string {
	if !strings.HasPrefix(block, "goroutine ") {
		return ""
	}
	rest := block[len("goroutine "):]
	if i := strings.IndexByte(rest, ' '); i > 0 {
		return rest[:i]
	}
	return ""
}

// leakedSince returns the stacks of goroutines alive now that were not in
// the baseline snapshot, excluding runtime-owned housekeeping goroutines
// the test did not create and cannot join.
func leakedSince(base map[string]string) []string {
	var leaked []string
	for id, stack := range goroutineStacks() {
		if _, existed := base[id]; existed {
			continue
		}
		if benignGoroutine(stack) {
			continue
		}
		leaked = append(leaked, stack)
	}
	return leaked
}

// benignGoroutine reports whether a stack belongs to infrastructure the
// test has no handle on: runtime housekeeping (GC workers, the scavenger,
// finalizers), the testing framework's own plumbing, or os/signal's
// watcher. Everything else — pools, servers, HTTP connections — is the
// test's to shut down.
func benignGoroutine(stack string) bool {
	header, _, _ := strings.Cut(stack, "\n")
	for _, state := range []string{"GC worker", "GC scavenge", "force gc", "finalizer wait", "GC sweep"} {
		if strings.Contains(header, state) {
			return true
		}
	}
	for _, frame := range []string{
		"testing.(*T).Run",
		"testing.(*F).Fuzz",
		"testing.runFuzzing",
		"testing.tRunner.func",
		"os/signal.signal_recv",
		"os/signal.loop",
		"runtime.ReadTrace",
	} {
		if strings.Contains(stack, frame) {
			return true
		}
	}
	return false
}
