package testutil

import (
	"strings"
	"testing"
	"time"
)

// recordingTB captures failures instead of failing, so the checker's
// own verdicts can be asserted.
type recordingTB struct {
	testing.TB // panics on unimplemented methods — none are reached
	cleanups   []func()
	failures   []string
}

func (r *recordingTB) Helper() {}
func (r *recordingTB) Cleanup(f func()) {
	r.cleanups = append(r.cleanups, f)
}
func (r *recordingTB) Errorf(format string, args ...any) {
	r.failures = append(r.failures, format)
}
func (r *recordingTB) runCleanups() {
	for i := len(r.cleanups) - 1; i >= 0; i-- {
		r.cleanups[i]()
	}
}

func TestCheckGoroutinesPassesWhenClean(t *testing.T) {
	rec := &recordingTB{}
	CheckGoroutines(rec)

	// Spawn and join a goroutine: born during the "test", gone before
	// cleanup — no leak.
	done := make(chan struct{})
	go func() { close(done) }()
	<-done

	rec.runCleanups()
	if len(rec.failures) != 0 {
		t.Fatalf("clean test flagged as leaking: %v", rec.failures)
	}
}

func TestCheckGoroutinesCatchesLeak(t *testing.T) {
	rec := &recordingTB{}
	CheckGoroutines(rec)

	// A deliberately stranded goroutine. Release it after the check so
	// it does not pollute later tests in the package.
	leak := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-leak
	}()
	<-started
	defer close(leak)

	// Shrink the grace period's cost by running cleanup in a goroutine we
	// time-bound; the checker polls for 5s before declaring the leak.
	doneCh := make(chan struct{})
	go func() {
		rec.runCleanups()
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(30 * time.Second):
		t.Fatal("leak checker never returned")
	}
	if len(rec.failures) == 0 {
		t.Fatal("stranded goroutine not reported")
	}
	if !strings.Contains(rec.failures[0], "goroutine leak") {
		t.Fatalf("unexpected failure message: %q", rec.failures[0])
	}
}

func TestBenignGoroutineFilters(t *testing.T) {
	cases := []struct {
		stack string
		want  bool
	}{
		{"goroutine 5 [GC worker (idle)]:\nruntime.gcBgMarkWorker()", true},
		{"goroutine 9 [chan receive]:\ntesting.(*T).Run(...)", true},
		{"goroutine 12 [syscall]:\nos/signal.signal_recv()", true},
		{"goroutine 33 [chan receive]:\nmain.worker()\n\tmain.go:10", false},
	}
	for _, tc := range cases {
		if got := benignGoroutine(tc.stack); got != tc.want {
			t.Errorf("benignGoroutine(%q) = %v, want %v", tc.stack, got, tc.want)
		}
	}
}
