package tdtr

import (
	"math"

	"mstsearch/internal/trajectory"
)

// This file provides the simpler compression baselines Meratnia and de By
// [12] compare TD-TR against, so the library can quantify what the
// time-synchronized error measure buys (see BenchmarkCompressionQuality).

// UniformSample keeps every k-th sample (and always the first and last).
// k ≤ 1 returns an unmodified copy. This is the naive rate reduction that
// ignores geometry entirely.
func UniformSample(tr *trajectory.Trajectory, k int) trajectory.Trajectory {
	if k <= 1 || len(tr.Samples) <= 2 {
		return tr.Clone()
	}
	out := trajectory.Trajectory{ID: tr.ID}
	last := len(tr.Samples) - 1
	for i := 0; i <= last; i += k {
		out.Samples = append(out.Samples, tr.Samples[i])
	}
	if out.Samples[len(out.Samples)-1] != tr.Samples[last] {
		out.Samples = append(out.Samples, tr.Samples[last])
	}
	return out
}

// DeadReckoning keeps a sample whenever the position predicted by the last
// kept sample's velocity drifts more than tolerance from the recorded
// position — the classic online (one-pass) location-update policy. The
// first and last samples are always kept.
func DeadReckoning(tr *trajectory.Trajectory, tolerance float64) trajectory.Trajectory {
	n := len(tr.Samples)
	if tolerance <= 0 || n <= 2 {
		return tr.Clone()
	}
	out := trajectory.Trajectory{ID: tr.ID, Samples: make([]trajectory.Sample, 0, n/4+2)}
	anchor := tr.Samples[0]
	out.Samples = append(out.Samples, anchor)
	// Velocity estimated from the anchor to its successor.
	vx, vy := velocityAt(tr, 0)
	for i := 1; i < n-1; i++ {
		s := tr.Samples[i]
		dt := s.T - anchor.T
		px := anchor.X + vx*dt
		py := anchor.Y + vy*dt
		if math.Hypot(s.X-px, s.Y-py) > tolerance {
			out.Samples = append(out.Samples, s)
			anchor = s
			vx, vy = velocityAt(tr, i)
		}
	}
	out.Samples = append(out.Samples, tr.Samples[n-1])
	return out
}

func velocityAt(tr *trajectory.Trajectory, i int) (float64, float64) {
	if i+1 >= len(tr.Samples) {
		return 0, 0
	}
	a, b := tr.Samples[i], tr.Samples[i+1]
	dt := b.T - a.T
	if dt == 0 {
		return 0, 0
	}
	return (b.X - a.X) / dt, (b.Y - a.Y) / dt
}

// MeanSED returns the average synchronized deviation of the original from
// the compressed version, sampled at the original's timestamps — the
// quality counterpart of MaxSED used when comparing compression methods at
// equal output sizes.
func MeanSED(orig, comp *trajectory.Trajectory) float64 {
	if len(orig.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range orig.Samples {
		p := comp.At(s.T)
		sum += math.Hypot(s.X-p.X, s.Y-p.Y)
	}
	return sum / float64(len(orig.Samples))
}
