package tdtr

import (
	"math"
	"math/rand"
	"testing"

	"mstsearch/internal/trajectory"
)

func zigzag(n int) trajectory.Trajectory {
	tr := trajectory.Trajectory{ID: 1, Samples: make([]trajectory.Sample, n)}
	for i := 0; i < n; i++ {
		y := 0.0
		if i%2 == 1 {
			y = 1
		}
		tr.Samples[i] = trajectory.Sample{X: float64(i), Y: y, T: float64(i)}
	}
	return tr
}

func randTraj(rng *rand.Rand, n int) trajectory.Trajectory {
	tr := trajectory.Trajectory{ID: 1, Samples: make([]trajectory.Sample, n)}
	x, y := 0.0, 0.0
	for i := 0; i < n; i++ {
		tr.Samples[i] = trajectory.Sample{X: x, Y: y, T: float64(i)}
		x += 1 + rng.Float64()
		y += rng.NormFloat64()
	}
	return tr
}

func TestSED(t *testing.T) {
	s := trajectory.Sample{X: 0, Y: 0, T: 0}
	e := trajectory.Sample{X: 10, Y: 0, T: 10}
	// On-course point: zero deviation.
	if d := SED(s, e, trajectory.Sample{X: 5, Y: 0, T: 5}); d != 0 {
		t.Fatalf("on-course SED = %v", d)
	}
	// Spatially on the segment but temporally early: synchronized position
	// at t=2 is x=2, so deviation is 3.
	if d := SED(s, e, trajectory.Sample{X: 5, Y: 0, T: 2}); math.Abs(d-3) > 1e-12 {
		t.Fatalf("time-skewed SED = %v, want 3", d)
	}
	// Perpendicular deviation.
	if d := SED(s, e, trajectory.Sample{X: 5, Y: 4, T: 5}); math.Abs(d-4) > 1e-12 {
		t.Fatalf("perpendicular SED = %v, want 4", d)
	}
	// Degenerate zero-duration anchor.
	if d := SED(s, trajectory.Sample{X: 0, Y: 0, T: 0}, trajectory.Sample{X: 3, Y: 4, T: 0}); d != 5 {
		t.Fatalf("degenerate SED = %v", d)
	}
}

func TestCompressStraightLineToTwoPoints(t *testing.T) {
	tr := trajectory.Trajectory{ID: 1}
	for i := 0; i < 100; i++ {
		tr.Samples = append(tr.Samples, trajectory.Sample{X: float64(i), Y: 2 * float64(i), T: float64(i)})
	}
	c := Compress(&tr, 1e-9)
	if len(c.Samples) != 2 {
		t.Fatalf("straight line compressed to %d points", len(c.Samples))
	}
	if c.Samples[0] != tr.Samples[0] || c.Samples[1] != tr.Samples[99] {
		t.Fatal("endpoints must be preserved")
	}
}

func TestCompressKeepsEndpointsAndOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := randTraj(rng, 300)
	c := Compress(&tr, 2)
	if c.Samples[0] != tr.Samples[0] || c.Samples[len(c.Samples)-1] != tr.Samples[len(tr.Samples)-1] {
		t.Fatal("endpoints must be preserved")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("compressed trajectory invalid: %v", err)
	}
	if c.ID != tr.ID {
		t.Fatal("ID must be preserved")
	}
}

// The algorithm's defining guarantee: every original sample deviates from
// the compressed trajectory (synchronized in time) by at most the
// tolerance.
func TestCompressBoundsSED(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 50; iter++ {
		tr := randTraj(rng, 50+rng.Intn(300))
		tol := 0.5 + rng.Float64()*5
		c := Compress(&tr, tol)
		if got := MaxSED(&tr, &c); got > tol+1e-9 {
			t.Fatalf("iter %d: max SED %v exceeds tolerance %v", iter, got, tol)
		}
	}
}

func TestCompressMonotoneInTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := randTraj(rng, 500)
	prev := len(tr.Samples) + 1
	for _, tol := range []float64{0.01, 0.1, 0.5, 2, 10} {
		c := Compress(&tr, tol)
		if len(c.Samples) > prev {
			t.Fatalf("tolerance %v kept more points (%d) than a smaller one (%d)",
				tol, len(c.Samples), prev)
		}
		prev = len(c.Samples)
	}
}

func TestCompressZigzagNeedsAllPoints(t *testing.T) {
	tr := zigzag(20)
	c := Compress(&tr, 0.1)
	if len(c.Samples) != 20 {
		t.Fatalf("zigzag below tolerance lost points: %d of 20", len(c.Samples))
	}
	// Large tolerance flattens it.
	c = Compress(&tr, 5)
	if len(c.Samples) != 2 {
		t.Fatalf("zigzag above tolerance kept %d points", len(c.Samples))
	}
}

func TestCompressDegenerate(t *testing.T) {
	two := trajectory.Trajectory{ID: 1, Samples: []trajectory.Sample{
		{X: 0, Y: 0, T: 0}, {X: 1, Y: 1, T: 1},
	}}
	c := Compress(&two, 0.5)
	if len(c.Samples) != 2 {
		t.Fatal("two-point trajectory must be unchanged")
	}
	// Non-positive tolerance returns a copy.
	tr := zigzag(10)
	c = Compress(&tr, 0)
	if len(c.Samples) != 10 {
		t.Fatal("zero tolerance must copy")
	}
	// Mutating the copy must not touch the original.
	c.Samples[0].X = 999
	if tr.Samples[0].X == 999 {
		t.Fatal("Compress must return an independent copy")
	}
}

// Fig. 8 of the paper: vertex count decreases sharply with p while the
// sketch (endpoints, overall course) is retained.
func TestCompressRatioVertexDecay(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := randTraj(rng, 168) // the paper's example trajectory has 168 vertices
	var counts []int
	for _, p := range []float64{0, 0.001, 0.01, 0.02} {
		c := CompressRatio(&tr, p)
		counts = append(counts, len(c.Samples))
	}
	if counts[0] != 168 {
		t.Fatalf("p=0 must keep all vertices, got %d", counts[0])
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("vertex counts must be non-increasing: %v", counts)
		}
	}
	if counts[len(counts)-1] >= counts[0]/2 {
		t.Fatalf("p=2%% should drop most vertices: %v", counts)
	}
}

func BenchmarkCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := randTraj(rng, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(&tr, 1)
	}
}

func TestUniformSample(t *testing.T) {
	tr := zigzag(11)
	u := UniformSample(&tr, 3)
	// Keeps 0,3,6,9 plus last (10).
	if len(u.Samples) != 5 {
		t.Fatalf("uniform kept %d samples: %+v", len(u.Samples), u.Samples)
	}
	if u.Samples[0] != tr.Samples[0] || u.Samples[len(u.Samples)-1] != tr.Samples[10] {
		t.Fatal("endpoints must be kept")
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	// k ≤ 1 copies.
	if c := UniformSample(&tr, 1); len(c.Samples) != 11 {
		t.Fatal("k=1 must copy")
	}
	// Exact multiple: last point not duplicated.
	tr2 := zigzag(10)
	u2 := UniformSample(&tr2, 3) // 0,3,6,9 — 9 is last
	if len(u2.Samples) != 4 {
		t.Fatalf("uniform kept %d samples", len(u2.Samples))
	}
}

func TestDeadReckoning(t *testing.T) {
	// Constant-velocity motion: prediction is perfect, only endpoints kept.
	var line trajectory.Trajectory
	line.ID = 1
	for i := 0; i < 50; i++ {
		line.Samples = append(line.Samples, trajectory.Sample{X: float64(i) * 2, Y: 0, T: float64(i)})
	}
	d := DeadReckoning(&line, 0.5)
	if len(d.Samples) != 2 {
		t.Fatalf("constant velocity kept %d samples", len(d.Samples))
	}
	// A sharp turn forces an update.
	turn := line.Clone()
	for i := 25; i < 50; i++ {
		turn.Samples[i].Y = float64(i-24) * 2
	}
	d = DeadReckoning(&turn, 0.5)
	if len(d.Samples) < 3 {
		t.Fatalf("turn kept only %d samples", len(d.Samples))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Zero tolerance copies.
	if c := DeadReckoning(&turn, 0); len(c.Samples) != 50 {
		t.Fatal("zero tolerance must copy")
	}
}

// At equal output size, TD-TR's time-aware split should never be much
// worse than uniform sampling on synchronized error — and is usually far
// better on curvy trajectories.
func TestTDTRBeatsUniformAtEqualSize(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	better, worse := 0, 0
	for iter := 0; iter < 30; iter++ {
		tr := randTraj(rng, 200+rng.Intn(200))
		td := CompressRatio(&tr, 0.01)
		k := len(tr.Samples) / len(td.Samples)
		if k < 2 {
			continue
		}
		un := UniformSample(&tr, k)
		if MeanSED(&tr, &td) <= MeanSED(&tr, &un)*1.05 {
			better++
		} else {
			worse++
		}
	}
	if worse > better {
		t.Fatalf("TD-TR lost to uniform sampling %d/%d times", worse, better+worse)
	}
}

func TestMeanSED(t *testing.T) {
	tr := zigzag(9)
	if got := MeanSED(&tr, &tr); got != 0 {
		t.Fatalf("self MeanSED = %v", got)
	}
	two := Compress(&tr, 10) // flattened to endpoints
	if got := MeanSED(&tr, &two); got <= 0 {
		t.Fatalf("flattened MeanSED = %v", got)
	}
}
