// Package tdtr implements the TD-TR trajectory compression algorithm of
// Meratnia and de By [12] used in the paper's quality experiment (§5.2):
// a top-down Douglas–Peucker split driven by the Synchronized Euclidean
// Distance (SED), the error measure appropriate for spatiotemporal data —
// the deviation of each dropped point from where the simplified trajectory
// says the object would have been *at that point's timestamp*.
package tdtr

import (
	"math"

	"mstsearch/internal/trajectory"
)

// SED returns the Synchronized Euclidean Distance of sample p with respect
// to the anchor segment (s, e): the distance between p and the position
// linearly interpolated between s and e at time p.T.
func SED(s, e, p trajectory.Sample) float64 {
	dt := e.T - s.T
	var f float64
	if dt != 0 {
		f = (p.T - s.T) / dt
	}
	sx := s.X + f*(e.X-s.X)
	sy := s.Y + f*(e.Y-s.Y)
	return math.Hypot(p.X-sx, p.Y-sy)
}

// Compress simplifies tr top-down: the first and last samples are always
// kept, and a dropped range is recursively split at its maximum-SED sample
// while that maximum exceeds tolerance (in the trajectory's spatial
// units). tolerance ≤ 0 returns an unmodified copy.
func Compress(tr *trajectory.Trajectory, tolerance float64) trajectory.Trajectory {
	if tolerance <= 0 || len(tr.Samples) <= 2 {
		return tr.Clone()
	}
	n := len(tr.Samples)
	keep := make([]bool, n)
	keep[0], keep[n-1] = true, true
	var split func(lo, hi int)
	split = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		s, e := tr.Samples[lo], tr.Samples[hi]
		worst, at := -1.0, -1
		for i := lo + 1; i < hi; i++ {
			if d := SED(s, e, tr.Samples[i]); d > worst {
				worst, at = d, i
			}
		}
		if worst > tolerance {
			keep[at] = true
			split(lo, at)
			split(at, hi)
		}
	}
	split(0, n-1)
	out := trajectory.Trajectory{ID: tr.ID, Samples: make([]trajectory.Sample, 0, n/4+2)}
	for i, k := range keep {
		if k {
			out.Samples = append(out.Samples, tr.Samples[i])
		}
	}
	return out
}

// CompressRatio runs Compress with the paper's parameterization: the
// tolerance is p (e.g. 0.01 for "1 %") times the trajectory's total
// spatial length, so larger p keeps fewer vertices and yields greater
// dissimilarity from the original (Fig. 8).
func CompressRatio(tr *trajectory.Trajectory, p float64) trajectory.Trajectory {
	return Compress(tr, p*tr.SpatialLength())
}

// MaxSED returns the maximum synchronized deviation of the original
// trajectory from its compressed version — the quantity Compress bounds by
// the tolerance.
func MaxSED(orig, comp *trajectory.Trajectory) float64 {
	var worst float64
	for _, s := range orig.Samples {
		p := comp.At(s.T)
		d := math.Hypot(s.X-p.X, s.Y-p.Y)
		if d > worst {
			worst = d
		}
	}
	return worst
}
