// Package trucks generates a stand-in for the real "Trucks" dataset the
// paper uses in its quality experiment (§5.1): 273 trajectories of a
// delivery-truck fleet with 112 203 line segments, originally published at
// rtreeportal.org and not redistributable here. The substitution (see
// DESIGN.md) preserves the properties the experiment depends on:
//
//   - network-constrained movement: trucks drive piecewise-straight legs
//     between depots/customer hubs rather than wandering randomly, so
//     trajectories have the long straight stretches and sharp turns that
//     TD-TR compression exploits;
//   - heterogeneous sampling rates across vehicles (the paper's Fig. 1
//     motivation);
//   - lognormal speeds, stops at hubs, and 273 × ~411 samples matching the
//     published cardinalities (Table 2).
package trucks

import (
	"math"
	"math/rand"

	"mstsearch/internal/trajectory"
)

// Config parameterizes the fleet generator.
type Config struct {
	// NumTrucks is the fleet size (paper: 273).
	NumTrucks int
	// TargetSegments is the approximate total segment count
	// (paper: 112 203); per-truck sample counts are drawn around
	// TargetSegments/NumTrucks with ±25 % spread.
	TargetSegments int
	// NumHubs is the number of depot/customer sites of the road network.
	NumHubs int
	// SpeedSigma is the lognormal σ of driving speeds.
	SpeedSigma float64
	// StopProb is the probability of pausing at each visited hub.
	StopProb float64
	// Seed makes generation deterministic.
	Seed int64
}

// Defaults fills zero fields with the paper-matching values.
func (c Config) Defaults() Config {
	if c.NumTrucks == 0 {
		c.NumTrucks = 273
	}
	if c.TargetSegments == 0 {
		c.TargetSegments = 112203
	}
	if c.NumHubs == 0 {
		c.NumHubs = 40
	}
	if c.SpeedSigma == 0 {
		c.SpeedSigma = 0.6
	}
	if c.StopProb == 0 {
		c.StopProb = 0.3
	}
	return c
}

// Generate produces the fleet dataset. Every trajectory spans [0, 1] in a
// unit-square city; truck i has ID i+1 and its own sampling rate.
func Generate(c Config) *trajectory.Dataset {
	c = c.Defaults()
	rng := rand.New(rand.NewSource(c.Seed))

	// Hub sites, with a depot cluster near the centre.
	hubs := make([][2]float64, c.NumHubs)
	for i := range hubs {
		if i < c.NumHubs/4 {
			hubs[i] = [2]float64{0.5 + rng.NormFloat64()*0.1, 0.5 + rng.NormFloat64()*0.1}
		} else {
			hubs[i] = [2]float64{rng.Float64(), rng.Float64()}
		}
		hubs[i][0] = clamp01(hubs[i][0])
		hubs[i][1] = clamp01(hubs[i][1])
	}

	meanSamples := float64(c.TargetSegments)/float64(c.NumTrucks) + 1
	trajs := make([]trajectory.Trajectory, c.NumTrucks)
	for i := range trajs {
		spread := 0.75 + rng.Float64()*0.5 // ±25 % heterogeneity
		samples := int(meanSamples * spread)
		if samples < 10 {
			samples = 10
		}
		trajs[i] = genTruck(rng, trajectory.ID(i+1), hubs, samples, c)
	}
	d, err := trajectory.NewDataset(trajs)
	if err != nil {
		panic("trucks: impossible duplicate id: " + err.Error())
	}
	return d
}

// genTruck drives one truck along a hub route and samples it n times
// uniformly in [0, 1].
func genTruck(rng *rand.Rand, id trajectory.ID, hubs [][2]float64, n int, c Config) trajectory.Trajectory {
	// Build the route as waypoints with associated arrival "progress"
	// weights: legs take time proportional to distance/speed, stops add
	// dwell time at zero distance.
	type waypoint struct {
		x, y float64
		w    float64 // time weight of the leg ending here
	}
	cur := rng.Intn(len(hubs))
	x, y := hubs[cur][0], hubs[cur][1]
	route := []waypoint{{x, y, 0}}
	legs := 6 + rng.Intn(10)
	for l := 0; l < legs; l++ {
		next := nearbyHub(rng, hubs, cur)
		nx, ny := hubs[next][0], hubs[next][1]
		d := math.Hypot(nx-x, ny-y)
		speed := math.Exp(rng.NormFloat64() * c.SpeedSigma) // relative speed
		route = append(route, waypoint{nx, ny, d / speed})
		if rng.Float64() < c.StopProb {
			route = append(route, waypoint{nx, ny, 0.05 + rng.Float64()*0.15})
		}
		cur, x, y = next, nx, ny
	}
	// Normalize cumulative weights onto [0, 1].
	total := 0.0
	for _, w := range route {
		total += w.w
	}
	if total == 0 {
		total = 1
	}
	cum := make([]float64, len(route))
	acc := 0.0
	for i, w := range route {
		acc += w.w / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1

	tr := trajectory.Trajectory{ID: id, Samples: make([]trajectory.Sample, n)}
	seg := 0
	for j := 0; j < n; j++ {
		t := float64(j) / float64(n-1)
		for seg < len(route)-1 && cum[seg+1] < t {
			seg++
		}
		// Interpolate within the active leg.
		lo, hi := cum[seg], 1.0
		if seg+1 < len(route) {
			hi = cum[seg+1]
		}
		f := 0.0
		if hi > lo {
			f = (t - lo) / (hi - lo)
		}
		a := route[seg]
		b := a
		if seg+1 < len(route) {
			b = route[seg+1]
		}
		// Small GPS-style noise keeps samples off the exact road line.
		tr.Samples[j] = trajectory.Sample{
			X: a.x + f*(b.x-a.x) + rng.NormFloat64()*2e-4,
			Y: a.y + f*(b.y-a.y) + rng.NormFloat64()*2e-4,
			T: t,
		}
	}
	return tr
}

// nearbyHub picks the next hub, preferring close ones (roads connect
// neighbouring sites).
func nearbyHub(rng *rand.Rand, hubs [][2]float64, cur int) int {
	best, bestScore := cur, math.Inf(1)
	x, y := hubs[cur][0], hubs[cur][1]
	for probe := 0; probe < 6; probe++ {
		i := rng.Intn(len(hubs))
		if i == cur {
			continue
		}
		d := math.Hypot(hubs[i][0]-x, hubs[i][1]-y)
		score := d * (0.5 + rng.Float64())
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	if best == cur {
		best = (cur + 1) % len(hubs)
	}
	return best
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
