package trucks

import (
	"math"
	"testing"

	"mstsearch/internal/tdtr"
)

func TestGenerateMatchesPaperCardinalities(t *testing.T) {
	d := Generate(Config{Seed: 1})
	if d.Len() != 273 {
		t.Fatalf("trucks = %d, want 273", d.Len())
	}
	segs := d.NumSegments()
	// Within 10 % of the published 112 203 line segments.
	if math.Abs(float64(segs)-112203) > 0.1*112203 {
		t.Fatalf("segments = %d, want ≈112203", segs)
	}
	for i := range d.Trajs {
		if err := d.Trajs[i].Validate(); err != nil {
			t.Fatalf("truck %d invalid: %v", d.Trajs[i].ID, err)
		}
	}
}

func TestGenerateDeterministicAndSeedSensitive(t *testing.T) {
	a := Generate(Config{NumTrucks: 5, TargetSegments: 500, Seed: 2})
	b := Generate(Config{NumTrucks: 5, TargetSegments: 500, Seed: 2})
	for i := range a.Trajs {
		for j := range a.Trajs[i].Samples {
			if a.Trajs[i].Samples[j] != b.Trajs[i].Samples[j] {
				t.Fatal("same seed must reproduce")
			}
		}
	}
	c := Generate(Config{NumTrucks: 5, TargetSegments: 500, Seed: 3})
	if a.Trajs[0].Samples[10] == c.Trajs[0].Samples[10] {
		t.Fatal("different seeds should differ")
	}
}

func TestHeterogeneousSamplingRates(t *testing.T) {
	d := Generate(Config{Seed: 4})
	minN, maxN := math.MaxInt32, 0
	for i := range d.Trajs {
		n := len(d.Trajs[i].Samples)
		if n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
	}
	if maxN-minN < 50 {
		t.Fatalf("sampling rates too uniform: min %d max %d", minN, maxN)
	}
}

func TestTrucksCompressWell(t *testing.T) {
	// Network-constrained movement must compress far better than noise:
	// at p = 1 % most vertices should vanish (Fig. 8 behaviour).
	d := Generate(Config{NumTrucks: 10, TargetSegments: 4000, Seed: 5})
	for i := range d.Trajs {
		tr := &d.Trajs[i]
		c := tdtr.CompressRatio(tr, 0.01)
		if len(c.Samples) > len(tr.Samples)/3 {
			t.Fatalf("truck %d barely compresses: %d of %d vertices kept",
				tr.ID, len(c.Samples), len(tr.Samples))
		}
	}
}

func TestTrucksStayInCity(t *testing.T) {
	d := Generate(Config{NumTrucks: 20, TargetSegments: 8000, Seed: 6})
	for i := range d.Trajs {
		for _, s := range d.Trajs[i].Samples {
			if s.X < -0.01 || s.X > 1.01 || s.Y < -0.01 || s.Y > 1.01 {
				t.Fatalf("truck %d leaves the city: %+v", d.Trajs[i].ID, s)
			}
		}
	}
}
