package dissim

import (
	"math"
	"testing"
	"testing/quick"
)

// sanitize maps an arbitrary float into a bounded positive range.
func sanitize(v, scale float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return scale / 2
	}
	return math.Abs(math.Mod(v, scale))
}

// Property: LDD equals the numeric integral of max(0, d + v·t) over
// [0, dt] — Definition 2 states exactly that area.
func TestLDDMatchesNumericIntegralQuick(t *testing.T) {
	f := func(dRaw, vRaw, dtRaw float64) bool {
		d := sanitize(dRaw, 100)
		v := sanitize(vRaw, 20) - 10 // in [-10, 10]
		dt := sanitize(dtRaw, 50)
		got := LDD(d, v, dt)
		const n = 20000
		var ref float64
		h := dt / n
		for i := 0; i < n; i++ {
			tm := (float64(i) + 0.5) * h
			ref += math.Max(0, d+v*tm) * h
		}
		return math.Abs(got-ref) <= 1e-3*math.Max(1, ref)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: LDD is monotone in the initial distance and in the relative
// speed, and non-negative.
func TestLDDMonotoneQuick(t *testing.T) {
	f := func(dRaw, vRaw, dtRaw, bumpRaw float64) bool {
		d := sanitize(dRaw, 100)
		v := sanitize(vRaw, 20) - 10
		dt := sanitize(dtRaw, 50)
		bump := sanitize(bumpRaw, 10)
		base := LDD(d, v, dt)
		if base < 0 {
			return false
		}
		if LDD(d+bump, v, dt) < base-1e-12 {
			return false // larger start distance → no smaller area
		}
		if LDD(d, v+bump, dt) < base-1e-12 {
			return false // faster divergence → no smaller area
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: a Partial fed every interval of a tiling reports Complete and
// both bounds collapse onto the known value (no gaps to bound).
func TestPartialFullTilingCollapsesQuick(t *testing.T) {
	f := func(seedRaw float64, parts uint8) bool {
		n := int(parts%16) + 1
		span := sanitize(seedRaw, 90) + 10
		p := NewPartial(0, span)
		for i := 0; i < n; i++ {
			t1 := span * float64(i) / float64(n)
			t2 := span * float64(i+1) / float64(n)
			p.Add(Interval{T1: t1, T2: t2, D1: 1, D2: 1, Val: Value{Approx: t2 - t1}})
		}
		if !p.Complete() {
			return false
		}
		k := p.Known()
		if math.Abs(k.Approx-span) > 1e-9 {
			return false
		}
		// No gaps: OPT and PES equal the known value exactly.
		return math.Abs(p.OptDissim(5)-span) < 1e-9 && math.Abs(p.PesDissim(5)-span) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
