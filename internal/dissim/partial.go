package dissim

import (
	"math"
	"sort"
)

// Interval is one fully known piece of a candidate trajectory's alignment
// with the query: during [T1, T2] the distance function is known, its
// (approximate) integral is Val.Approx with error bound Val.Err, and the
// endpoint distances are D1 = D(T1), D2 = D(T2). These endpoint distances
// anchor the LDD envelopes that bound the unknown gaps.
type Interval struct {
	T1, T2 float64
	D1, D2 float64
	Val    Value
}

// Partial tracks the state of a candidate trajectory during k-MST search:
// which time intervals of the query period have been retrieved from the
// index, the accumulated approximate DISSIM over them, and the bounding
// metrics OPTDISSIM / PESDISSIM / OPTDISSIMINC over the rest. It is the
// in-memory list the paper's BFMSTSearch keeps per entry of the Valid and
// Completed hash structures.
type Partial struct {
	QStart, QEnd float64
	ivs          []Interval // sorted by T1, non-overlapping
	known        Value      // running sum over ivs
	covered      float64    // total covered duration
	eps          float64    // contiguity tolerance
}

// NewPartial creates an empty partial state for the query period
// [qStart, qEnd].
func NewPartial(qStart, qEnd float64) *Partial {
	return &Partial{
		QStart: qStart,
		QEnd:   qEnd,
		eps:    1e-9 * math.Max(1, qEnd-qStart),
	}
}

// Add records a newly retrieved interval. Intervals are clipped to the
// query period; overlapping duplicates (the same time span delivered
// twice) are ignored rather than double-counted.
func (p *Partial) Add(iv Interval) {
	if iv.T1 < p.QStart {
		iv.T1 = p.QStart
	}
	if iv.T2 > p.QEnd {
		iv.T2 = p.QEnd
	}
	if iv.T2-iv.T1 <= 0 {
		return
	}
	// Locate insertion point.
	i := sort.Search(len(p.ivs), func(i int) bool { return p.ivs[i].T1 >= iv.T1 })
	// Reject overlap with neighbours (tolerating shared endpoints).
	if i > 0 && p.ivs[i-1].T2 > iv.T1+p.eps {
		return
	}
	if i < len(p.ivs) && iv.T2 > p.ivs[i].T1+p.eps {
		return
	}
	p.ivs = append(p.ivs, Interval{})
	copy(p.ivs[i+1:], p.ivs[i:])
	p.ivs[i] = iv
	p.known.Add(iv.Val)
	p.covered += iv.T2 - iv.T1
}

// Complete reports whether the retrieved intervals cover the entire query
// period.
func (p *Partial) Complete() bool {
	return p.covered >= (p.QEnd-p.QStart)-p.eps
}

// Covered returns the covered duration.
func (p *Partial) Covered() float64 { return p.covered }

// Known returns the accumulated approximate DISSIM over the retrieved
// intervals with its error bound. When Complete, this is the (approximate)
// DISSIM of the whole trajectory.
func (p *Partial) Known() Value { return p.known }

// Intervals returns the retrieved intervals in temporal order. The slice
// is owned by the Partial and must not be modified.
func (p *Partial) Intervals() []Interval { return p.ivs }

// gap describes one unretrieved time span and the known distances at its
// boundaries (dStart/dEnd are NaN when the gap touches the query period's
// edge and the distance there is unknown).
type gap struct {
	t1, t2       float64
	dStart, dEnd float64
}

func (p *Partial) gaps() []gap {
	var gs []gap
	nan := math.NaN()
	cur := p.QStart
	curD := nan
	for _, iv := range p.ivs {
		if iv.T1-cur > p.eps {
			gs = append(gs, gap{cur, iv.T1, curD, iv.D1})
		}
		cur, curD = iv.T2, iv.D2
	}
	if p.QEnd-cur > p.eps {
		gs = append(gs, gap{cur, p.QEnd, curD, nan})
	}
	return gs
}

// OptDissim returns OPTDISSIM (Definition 3): a certified lower bound on
// the true DISSIM of the candidate, assuming it approaches the query with
// relative speed at most vmax during unretrieved spans. The Lemma 1 error
// of the known part is subtracted so the bound holds for the exact DISSIM
// (the §4.4 error-management rule folded in).
func (p *Partial) OptDissim(vmax float64) float64 {
	opt := p.known.Lower()
	for _, g := range p.gaps() {
		opt += optGap(g, vmax)
	}
	return opt
}

// optGap lower-bounds the dissimilarity contribution of one gap.
func optGap(g gap, vmax float64) float64 {
	dt := g.t2 - g.t1
	s, e := g.dStart, g.dEnd
	hasS, hasE := !math.IsNaN(s), !math.IsNaN(e)
	switch {
	case !hasS && !hasE:
		return 0 // nothing known: object may sit on the query the whole time
	case vmax <= 0:
		// Distance cannot change: it stays at the known boundary value.
		if hasS {
			return s * dt
		}
		return e * dt
	case !hasS:
		// Leading gap (k = 1 in Definition 3): approach envelope anchored
		// at the gap's end, traversed backwards.
		return LDD(e, -vmax, dt)
	case !hasE:
		// Trailing gap (k = n−1): approach from the last known distance.
		return LDD(s, -vmax, dt)
	default:
		// Interior gap: descend at vmax until t°, then ascend to meet the
		// known end distance (Definition 3, last case).
		to := (g.t1 + g.t2 + (e-s)/vmax) / 2
		to = math.Min(math.Max(to, g.t1), g.t2)
		// Both legs are "approach" envelopes when traversed toward t°.
		return LDD(s, -vmax, to-g.t1) + LDD(e, -vmax, g.t2-to)
	}
}

// PesDissim returns PESDISSIM (Definition 4): a certified upper bound on
// the true DISSIM, assuming the candidate diverges from the query at
// relative speed vmax during unretrieved spans. The known part's error is
// added per §4.4.
func (p *Partial) PesDissim(vmax float64) float64 {
	pes := p.known.Upper()
	for _, g := range p.gaps() {
		pes += pesGap(g, vmax)
		if math.IsInf(pes, 1) {
			break
		}
	}
	return pes
}

// pesGap upper-bounds the dissimilarity contribution of one gap.
func pesGap(g gap, vmax float64) float64 {
	dt := g.t2 - g.t1
	s, e := g.dStart, g.dEnd
	hasS, hasE := !math.IsNaN(s), !math.IsNaN(e)
	switch {
	case !hasS && !hasE:
		return math.Inf(1) // unbounded: no anchor on either side
	case vmax <= 0:
		if hasS {
			return s * dt
		}
		return e * dt
	case !hasS:
		return LDD(e, vmax, dt) // diverge envelope anchored at the end
	case !hasE:
		return LDD(s, vmax, dt)
	default:
		// Interior gap: diverge at vmax until t^p, then return (Def. 4).
		tp := (g.t1 + g.t2 + (s-e)/vmax) / 2
		tp = math.Min(math.Max(tp, g.t1), g.t2)
		return LDD(s, vmax, tp-g.t1) + LDD(e, vmax, g.t2-tp)
	}
}

// OptDissimInc returns OPTDISSIMINC (Definition 5): with index nodes
// visited in increasing MINDIST order, any unretrieved segment of this
// candidate is at spatial distance ≥ mindist from the query, so the gaps
// contribute at least mindist·(uncovered duration). The known part's error
// is subtracted per §4.4.
func (p *Partial) OptDissimInc(mindist float64) float64 {
	uncovered := (p.QEnd - p.QStart) - p.covered
	if uncovered < 0 {
		uncovered = 0
	}
	return p.known.Lower() + mindist*uncovered
}
