package dissim

import (
	"math"
	"math/rand"
	"testing"

	"mstsearch/internal/geom"
	"mstsearch/internal/trajectory"
)

// randTraj builds a random-walk trajectory spanning exactly [t0, t1].
func randTraj(rng *rand.Rand, id trajectory.ID, n int, t0, t1 float64) trajectory.Trajectory {
	tr := trajectory.Trajectory{ID: id, Samples: make([]trajectory.Sample, n)}
	// Random interior timestamps → different sampling rates per trajectory.
	ts := make([]float64, n)
	ts[0], ts[n-1] = t0, t1
	for i := 1; i < n-1; i++ {
		ts[i] = t0 + rng.Float64()*(t1-t0)
	}
	for i := 1; i < n-1; i++ { // insertion sort of interior points
		for j := i; j > 1 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
	// De-duplicate collisions by nudging.
	for i := 1; i < n; i++ {
		if ts[i] <= ts[i-1] {
			ts[i] = ts[i-1] + 1e-6
		}
	}
	x, y := rng.Float64()*100, rng.Float64()*100
	for i := 0; i < n; i++ {
		tr.Samples[i] = trajectory.Sample{X: x, Y: y, T: ts[i]}
		x += rng.NormFloat64() * 2
		y += rng.NormFloat64() * 2
	}
	return tr
}

// simpsonDissim numerically integrates the inter-trajectory distance.
func simpsonDissim(q, t *trajectory.Trajectory, t1, t2 float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (t2 - t1) / float64(n)
	dist := func(tt float64) float64 {
		return q.At(tt).Spatial().Dist(t.At(tt).Spatial())
	}
	sum := dist(t1) + dist(t2)
	for i := 1; i < n; i++ {
		w := 2.0
		if i%2 == 1 {
			w = 4.0
		}
		sum += w * dist(t1+float64(i)*h)
	}
	return sum * h / 3
}

func TestExactConstantOffset(t *testing.T) {
	// Two identical shapes offset by 3 in y: DISSIM = 3 · duration.
	q := trajectory.Trajectory{ID: 1, Samples: []trajectory.Sample{
		{X: 0, Y: 0, T: 0}, {X: 5, Y: 0, T: 5}, {X: 10, Y: 5, T: 10},
	}}
	s := trajectory.Trajectory{ID: 2, Samples: []trajectory.Sample{
		{X: 0, Y: 3, T: 0}, {X: 5, Y: 3, T: 5}, {X: 10, Y: 8, T: 10},
	}}
	got, ok := Exact(&q, &s, 0, 10)
	if !ok || math.Abs(got-30) > 1e-9 {
		t.Fatalf("Exact = %v ok=%v, want 30", got, ok)
	}
}

func TestExactIdenticalTrajectoriesIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := randTraj(rng, 1, 20, 0, 10)
	s := q.Clone()
	s.ID = 2
	got, ok := Exact(&q, &s, 0, 10)
	if !ok || got > 1e-9 {
		t.Fatalf("self-DISSIM = %v ok=%v", got, ok)
	}
}

func TestExactRequiresCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := randTraj(rng, 1, 10, 0, 10)
	s := randTraj(rng, 2, 10, 2, 10) // starts late
	if _, ok := Exact(&q, &s, 0, 10); ok {
		t.Fatal("uncovered window must report ok=false")
	}
	if _, ok := Exact(&q, &s, 2, 10); !ok {
		t.Fatal("covered window must succeed")
	}
}

func TestExactMatchesSimpsonDifferentSamplingRates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		// The paper's Fig. 1 scenario: 4 vs 32 samples over the same span.
		q := randTraj(rng, 1, 4, 0, 10)
		s := randTraj(rng, 2, 32, 0, 10)
		exact, ok := Exact(&q, &s, 0, 10)
		if !ok {
			t.Fatal("coverage expected")
		}
		ref := simpsonDissim(&q, &s, 0, 10, 20000)
		if math.Abs(exact-ref) > 1e-4*math.Max(1, ref) {
			t.Fatalf("iter %d: exact=%v simpson=%v", i, exact, ref)
		}
	}
}

func TestApproxWithinErrorOfExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		q := randTraj(rng, 1, 3+rng.Intn(20), 0, 10)
		s := randTraj(rng, 2, 3+rng.Intn(20), 0, 10)
		exact, _ := Exact(&q, &s, 0, 10)
		for _, refine := range []int{1, 4} {
			v, ok := Approx(&q, &s, 0, 10, refine)
			if !ok {
				t.Fatal("coverage expected")
			}
			if math.IsInf(v.Err, 1) {
				t.Fatal("Approx must degrade to exact on contact, never Inf")
			}
			if exact < v.Lower()-1e-9 || exact > v.Upper()+1e-9 {
				t.Fatalf("iter %d refine %d: exact %v outside [%v, %v]",
					i, refine, exact, v.Lower(), v.Upper())
			}
		}
	}
}

func TestApproxRefinementTightens(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	worse, better := 0, 0
	for i := 0; i < 100; i++ {
		q := randTraj(rng, 1, 6, 0, 10)
		s := randTraj(rng, 2, 6, 0, 10)
		v1, _ := Approx(&q, &s, 0, 10, 1)
		v8, _ := Approx(&q, &s, 0, 10, 8)
		if v8.Err <= v1.Err+1e-12 {
			better++
		} else {
			worse++
		}
	}
	if worse > 0 {
		t.Fatalf("refinement loosened the bound in %d/%d cases", worse, worse+better)
	}
}

func TestLDD(t *testing.T) {
	// Constant distance (v = 0): rectangle area.
	if got := LDD(4, 0, 3); got != 12 {
		t.Fatalf("LDD(4,0,3) = %v", got)
	}
	// Diverging: trapezoid area. d=2, v=1, dt=4: ½·(2+6)·4 = 16.
	if got := LDD(2, 1, 4); got != 16 {
		t.Fatalf("LDD(2,1,4) = %v", got)
	}
	// Approaching but not meeting: d=10, v=-1, dt=4: ½·(10+6)·4 = 32.
	if got := LDD(10, -1, 4); got != 32 {
		t.Fatalf("LDD(10,-1,4) = %v", got)
	}
	// Approaching and meeting: d=2, v=-1, dt=10 → triangle d²/(2|v|) = 2.
	if got := LDD(2, -1, 10); got != 2 {
		t.Fatalf("LDD(2,-1,10) = %v", got)
	}
	// Degenerate inputs.
	if got := LDD(5, 1, 0); got != 0 {
		t.Fatalf("zero duration LDD = %v", got)
	}
	if got := LDD(-3, 1, 2); got != 2 { // negative distance clamped to 0
		t.Fatalf("negative-distance LDD = %v", got)
	}
	// Exactly meeting at the end: boundary between the two branches.
	if got := LDD(4, -1, 4); got != 8 {
		t.Fatalf("LDD(4,-1,4) = %v", got)
	}
}

func TestIntervalOf(t *testing.T) {
	qs := geom.Segment{A: geom.STPoint{X: 0, Y: 0, T: 0}, B: geom.STPoint{X: 10, Y: 0, T: 10}}
	ts := geom.Segment{A: geom.STPoint{X: 0, Y: 5, T: 0}, B: geom.STPoint{X: 10, Y: 5, T: 10}}
	iv := IntervalOf(qs, ts, 1)
	if iv.T1 != 0 || iv.T2 != 10 || iv.D1 != 5 || iv.D2 != 5 {
		t.Fatalf("interval = %+v", iv)
	}
	if math.Abs(iv.Val.Approx-50) > 1e-9 || iv.Val.Err != 0 {
		t.Fatalf("interval value = %+v", iv.Val)
	}
}

func TestPartialCompletion(t *testing.T) {
	p := NewPartial(0, 10)
	if p.Complete() {
		t.Fatal("empty partial cannot be complete")
	}
	p.Add(Interval{T1: 0, T2: 4, D1: 1, D2: 1, Val: Value{Approx: 4}})
	if p.Complete() || p.Covered() != 4 {
		t.Fatalf("covered=%v complete=%v", p.Covered(), p.Complete())
	}
	p.Add(Interval{T1: 6, T2: 10, D1: 1, D2: 1, Val: Value{Approx: 4}})
	if p.Complete() {
		t.Fatal("gap remains")
	}
	p.Add(Interval{T1: 4, T2: 6, D1: 1, D2: 1, Val: Value{Approx: 2}})
	if !p.Complete() {
		t.Fatal("fully covered must be complete")
	}
	if k := p.Known(); math.Abs(k.Approx-10) > 1e-12 {
		t.Fatalf("known = %+v", k)
	}
}

func TestPartialIgnoresDuplicatesAndClips(t *testing.T) {
	p := NewPartial(0, 10)
	p.Add(Interval{T1: 2, T2: 5, Val: Value{Approx: 3}})
	p.Add(Interval{T1: 2, T2: 5, Val: Value{Approx: 3}}) // duplicate
	p.Add(Interval{T1: 3, T2: 4, Val: Value{Approx: 1}}) // contained
	if p.Covered() != 3 {
		t.Fatalf("covered = %v, want 3", p.Covered())
	}
	if p.Known().Approx != 3 {
		t.Fatalf("known = %v, want 3", p.Known().Approx)
	}
	// Clipping to the query period.
	p.Add(Interval{T1: -5, T2: 1, Val: Value{Approx: 6}})
	if p.Covered() != 4 {
		t.Fatalf("covered after clip = %v, want 4", p.Covered())
	}
	// Fully outside: ignored.
	p.Add(Interval{T1: 11, T2: 12, Val: Value{Approx: 1}})
	if p.Covered() != 4 {
		t.Fatal("outside interval must be ignored")
	}
}

func TestPartialBoundsConstantDistance(t *testing.T) {
	// Candidate at constant distance 2; only [0,4] retrieved of [0,10].
	p := NewPartial(0, 10)
	p.Add(Interval{T1: 0, T2: 4, D1: 2, D2: 2, Val: Value{Approx: 8}})
	vmax := 1.0
	// OPT: 8 + approach from d=2 at vmax over 6s → meets after 2s → area 2.
	if got := p.OptDissim(vmax); math.Abs(got-10) > 1e-9 {
		t.Fatalf("OptDissim = %v, want 10", got)
	}
	// PES: 8 + diverge: ½·(2+8)·6 = 30 → 38.
	if got := p.PesDissim(vmax); math.Abs(got-38) > 1e-9 {
		t.Fatalf("PesDissim = %v, want 38", got)
	}
	// Vmax = 0: distance frozen at 2 → both bounds = 8 + 12 = 20.
	if got := p.OptDissim(0); math.Abs(got-20) > 1e-9 {
		t.Fatalf("OptDissim(0) = %v", got)
	}
	if got := p.PesDissim(0); math.Abs(got-20) > 1e-9 {
		t.Fatalf("PesDissim(0) = %v", got)
	}
	// OPTDISSIMINC with mindist 1.5 over 6 uncovered seconds.
	if got := p.OptDissimInc(1.5); math.Abs(got-17) > 1e-9 {
		t.Fatalf("OptDissimInc = %v, want 17", got)
	}
}

func TestPartialInteriorGapTurningPoint(t *testing.T) {
	// Gap [2,8] anchored at d=3 on both sides, vmax=1. t° = 5; each leg:
	// approach 3→0 in 3s: area 4.5 each → gap contributes 9.
	p := NewPartial(0, 10)
	p.Add(Interval{T1: 0, T2: 2, D1: 3, D2: 3, Val: Value{Approx: 6}})
	p.Add(Interval{T1: 8, T2: 10, D1: 3, D2: 3, Val: Value{Approx: 6}})
	if got := p.OptDissim(1); math.Abs(got-(12+9)) > 1e-9 {
		t.Fatalf("OptDissim = %v, want 21", got)
	}
	// PES: diverge to apex: tp=5, legs: ½(3+6)·3 = 13.5 each → 27.
	if got := p.PesDissim(1); math.Abs(got-(12+27)) > 1e-9 {
		t.Fatalf("PesDissim = %v, want 39", got)
	}
	// Asymmetric anchors: d(2)=1, d(8)=5 with vmax=1: t°=(2+8+(5-1))/2=7.
	// Legs: LDD(1,-1,5)=0.5, LDD(5,-1,1)=4.5 → 5.
	p2 := NewPartial(0, 10)
	p2.Add(Interval{T1: 0, T2: 2, D1: 1, D2: 1, Val: Value{Approx: 2}})
	p2.Add(Interval{T1: 8, T2: 10, D1: 5, D2: 5, Val: Value{Approx: 10}})
	if got := p2.OptDissim(1); math.Abs(got-(12+5)) > 1e-9 {
		t.Fatalf("asymmetric OptDissim = %v, want 17", got)
	}
}

func TestPartialLeadingTrailingGaps(t *testing.T) {
	p := NewPartial(0, 10)
	p.Add(Interval{T1: 4, T2: 6, D1: 2, D2: 2, Val: Value{Approx: 4}})
	// Leading gap [0,4] anchored at end d=2, vmax=1: LDD(2,-1,4) = 2.
	// Trailing gap [6,10] anchored at start d=2: LDD(2,-1,4) = 2.
	if got := p.OptDissim(1); math.Abs(got-8) > 1e-9 {
		t.Fatalf("OptDissim = %v, want 8", got)
	}
	// PES: LDD(2,1,4) = ½(2+6)4 = 16 per gap → 4+32 = 36.
	if got := p.PesDissim(1); math.Abs(got-36) > 1e-9 {
		t.Fatalf("PesDissim = %v, want 36", got)
	}
}

func TestPartialEmptyBounds(t *testing.T) {
	p := NewPartial(0, 10)
	if got := p.OptDissim(1); got != 0 {
		t.Fatalf("empty OptDissim = %v", got)
	}
	if got := p.PesDissim(1); !math.IsInf(got, 1) {
		t.Fatalf("empty PesDissim = %v, want +Inf", got)
	}
	if got := p.OptDissimInc(3); math.Abs(got-30) > 1e-9 {
		t.Fatalf("empty OptDissimInc = %v, want 30", got)
	}
}

// The central sandwich property (Lemmas 2 and 3): for any subset of
// retrieved intervals, OPTDISSIM ≤ exact DISSIM ≤ PESDISSIM, and
// OPTDISSIMINC with a valid mindist also lower-bounds the exact DISSIM.
func TestPartialSandwichProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 300; iter++ {
		q := randTraj(rng, 1, 3+rng.Intn(15), 0, 10)
		s := randTraj(rng, 2, 3+rng.Intn(15), 0, 10)
		exact, ok := Exact(&q, &s, 0, 10)
		if !ok {
			t.Fatal("coverage expected")
		}
		vmax := q.MaxSpeed() + s.MaxSpeed()

		// Collect all aligned intervals (and each one's true minimum
		// distance, which can dip below the endpoint distances), then
		// reveal a random subset.
		type piece struct {
			iv      Interval
			minDist float64
		}
		var all []piece
		trajectory.ForEachAligned(&q, &s, 0, 10, func(qs, ts geom.Segment) bool {
			md, _ := geom.MinDistSegments(qs, ts)
			all = append(all, piece{IntervalOf(qs, ts, 1), md})
			return true
		})
		p := NewPartial(0, 10)
		trueMinGapDist := math.Inf(1)
		revealed := 0
		for _, pc := range all {
			if rng.Float64() < 0.5 {
				p.Add(pc.iv)
				revealed++
			} else {
				trueMinGapDist = math.Min(trueMinGapDist, pc.minDist)
			}
		}
		if revealed == 0 {
			continue
		}
		opt := p.OptDissim(vmax)
		pes := p.PesDissim(vmax)
		if opt > exact+1e-6 {
			t.Fatalf("iter %d: OPTDISSIM %v > exact %v", iter, opt, exact)
		}
		if !p.Complete() && math.IsInf(pes, 1) {
			// Acceptable only if a gap has no anchors — cannot happen once
			// at least one interval is revealed unless gaps touch both ends.
		} else if pes < exact-1e-6 {
			t.Fatalf("iter %d: PESDISSIM %v < exact %v", iter, pes, exact)
		}
		// A valid mindist for OPTDISSIMINC never exceeds the true minimum
		// distance during unrevealed intervals.
		md := 0.0
		if !math.IsInf(trueMinGapDist, 1) {
			md = trueMinGapDist * 0.99
		}
		if inc := p.OptDissimInc(md); inc > exact+1e-6 {
			t.Fatalf("iter %d: OPTDISSIMINC %v > exact %v (md=%v)", iter, inc, exact, md)
		}
		if p.Complete() {
			k := p.Known()
			if exact < k.Lower()-1e-9 || exact > k.Upper()+1e-9 {
				t.Fatalf("iter %d: complete DISSIM %v outside [%v,%v]",
					iter, exact, k.Lower(), k.Upper())
			}
		}
	}
}

func BenchmarkExactDissim(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	q := randTraj(rng, 1, 100, 0, 100)
	s := randTraj(rng, 2, 100, 0, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(&q, &s, 0, 100)
	}
}

func BenchmarkApproxDissim(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	q := randTraj(rng, 1, 100, 0, 100)
	s := randTraj(rng, 2, 100, 0, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Approx(&q, &s, 0, 100, 1)
	}
}
