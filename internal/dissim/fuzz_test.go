package dissim

import (
	"math"
	"testing"

	"mstsearch/internal/geom"
)

// FuzzTrapezoidBound fuzzes the Lemma 1 contract the whole pruning
// framework rests on: for any time-aligned segment pair, the exact
// distance integral lies within [approx-errBound, approx+errBound] of the
// trapezoid approximation. A violation here would mean OPTDISSIM/PESDISSIM
// intervals can exclude the true DISSIM and the k-MST search can return
// wrong answers while believing them certified.
func FuzzTrapezoidBound(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 1.0, 2.0, 0.0, 0.0, 3.0, 1.0)
	f.Add(-5.0, 2.0, 5.0, -2.0, 0.0, 0.0, 0.0, 0.0, 10.0)
	f.Add(1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.5) // identical: zero distance
	f.Add(0.0, 0.0, 4.0, 0.0, 2.0, 1.0, 2.0, -1.0, 2.0)
	f.Add(100.0, -3.5, 0.25, 7.0, -80.0, 0.5, 60.0, -0.125, 1e-3)
	f.Fuzz(func(t *testing.T, qax, qay, qbx, qby, tax, tay, tbx, tby, dt float64) {
		coords := []float64{qax, qay, qbx, qby, tax, tay, tbx, tby}
		for _, c := range coords {
			// Keep positions in a physically plausible range; enormous
			// magnitudes only probe catastrophic cancellation in float64,
			// not the lemma.
			if math.IsNaN(c) || math.Abs(c) > 1e6 {
				t.Skip()
			}
		}
		if math.IsNaN(dt) {
			t.Skip()
		}
		dt = math.Abs(dt)
		if dt < 1e-9 || dt > 1e6 {
			t.Skip()
		}
		qs := geom.Segment{
			A: geom.STPoint{X: qax, Y: qay, T: 0},
			B: geom.STPoint{X: qbx, Y: qby, T: dt},
		}
		ts := geom.Segment{
			A: geom.STPoint{X: tax, Y: tay, T: 0},
			B: geom.STPoint{X: tbx, Y: tby, T: dt},
		}
		tri := geom.NewTrinomial(qs, ts)
		exact := tri.Integral()
		for _, refine := range []int{1, 4} {
			approx, errBound := tri.TrapezoidRefined(refine)
			if errBound < 0 {
				t.Fatalf("negative error bound %v (refine=%d, tri=%+v)", errBound, refine, tri)
			}
			if math.IsInf(errBound, 1) {
				// Near-contact pairs have an unbounded Lemma 1 bound; the
				// production path (intervalValue) falls back to the exact
				// integral there, so there is nothing to certify.
				continue
			}
			slack := 1e-7 * (1 + math.Abs(exact))
			if exact < approx-errBound-slack || exact > approx+errBound+slack {
				t.Fatalf("Lemma 1 violated (refine=%d): exact %v outside [%v, %v] (approx %v ± %v, tri=%+v)",
					refine, exact, approx-errBound, approx+errBound, approx, errBound, tri)
			}
		}
	})
}
