// Package dissim implements the spatiotemporal trajectory dissimilarity
// metric of the paper and the bounding metrics built on top of it:
//
//   - DISSIM (Definition 1): the definite integral over time of the
//     Euclidean distance between two trajectories, computed either exactly
//     (closed-form arcsinh integral per merged sampling interval) or via
//     the trapezoid-rule approximation of Lemma 1 with its error bound;
//   - LDD, the Linearly Dependent Dissimilarity (Definition 2);
//   - OPTDISSIM / PESDISSIM (Definitions 3–4, Lemmas 2–3): speed-dependent
//     lower/upper bounds on the DISSIM of a partially retrieved trajectory;
//   - OPTDISSIMINC (Definition 5): the speed-independent lower bound that
//     exploits best-first MINDIST ordering.
//
// MINDISSIMINC (Definition 6) combines OPTDISSIMINC values across the
// candidate set and therefore lives with the search algorithm in package
// mst.
package dissim

import (
	"math"

	"mstsearch/internal/debugassert"
	"mstsearch/internal/geom"
	"mstsearch/internal/trajectory"
)

// Value is an approximate dissimilarity together with its Lemma 1 error
// bound: the true DISSIM lies in [Approx−Err, Approx+Err].
type Value struct {
	Approx float64
	Err    float64
}

// Add accumulates another value.
func (v *Value) Add(o Value) { v.Approx += o.Approx; v.Err += o.Err }

// Lower returns the certified lower bound Approx−Err (clamped at zero:
// DISSIM is non-negative).
func (v Value) Lower() float64 { return math.Max(0, v.Approx-v.Err) }

// Upper returns the certified upper bound Approx+Err.
func (v Value) Upper() float64 { return v.Approx + v.Err }

// Exact computes DISSIM(Q, T) over the window [t1, t2] using the exact
// closed-form integral on every merged sampling interval. ok is false if
// either trajectory does not fully cover the window (the paper defines
// DISSIM only for trajectories valid throughout the period).
func Exact(q, t *trajectory.Trajectory, t1, t2 float64) (float64, bool) {
	if !q.Covers(t1, t2) || !t.Covers(t1, t2) {
		return 0, false
	}
	var sum float64
	trajectory.ForEachAligned(q, t, t1, t2, func(qs, ts geom.Segment) bool {
		sum += geom.NewTrinomial(qs, ts).Integral()
		return true
	})
	return sum, true
}

// Approx computes the Lemma 1 trapezoid approximation of DISSIM(Q, T) over
// [t1, t2], splitting each merged sampling interval into refine ≥ 1 equal
// pieces (refine = 1 is the approximation exactly as stated in the paper).
// Intervals whose error bound is unbounded — the two objects touch — fall
// back to the exact integral, keeping the total error finite. ok is false
// if either trajectory does not cover the window.
func Approx(q, t *trajectory.Trajectory, t1, t2 float64, refine int) (Value, bool) {
	if !q.Covers(t1, t2) || !t.Covers(t1, t2) {
		return Value{}, false
	}
	var total Value
	trajectory.ForEachAligned(q, t, t1, t2, func(qs, ts geom.Segment) bool {
		total.Add(intervalValue(geom.NewTrinomial(qs, ts), refine))
		return true
	})
	return total, true
}

// intervalValue evaluates one trinomial with the trapezoid rule, falling
// back to the exact integral when the error bound is unbounded or larger
// than the approximation itself (near-contact intervals).
func intervalValue(tri geom.Trinomial, refine int) Value {
	a, e := tri.TrapezoidRefined(refine)
	if math.IsInf(e, 1) {
		return Value{Approx: tri.Integral(), Err: 0}
	}
	if debugassert.Enabled {
		// Lemma 1 ordering: the exact integral lies inside the certified
		// band [approx-err, approx+err]. The closed form and the
		// trapezoid sum round differently, hence the relative slack.
		exact := tri.Integral()
		slack := 1e-7 * (1 + math.Abs(exact))
		debugassert.Assertf(e >= 0, "negative trapezoid error bound %v", e)
		debugassert.Assertf(a-e-slack <= exact && exact <= a+e+slack,
			"Lemma 1 violated: exact integral %v outside [%v, %v] (approx %v ± %v)",
			exact, a-e, a+e, a, e)
	}
	return Value{Approx: a, Err: e}
}

// IntervalOf builds the Partial-state interval for one aligned co-temporal
// segment pair: its time span, endpoint distances, and approximate DISSIM
// contribution with error bound (refine as in Approx).
func IntervalOf(qs, ts geom.Segment, refine int) Interval {
	tri := geom.NewTrinomial(qs, ts)
	return Interval{
		T1:  qs.A.T,
		T2:  qs.B.T,
		D1:  tri.DistStart(),
		D2:  tri.DistEnd(),
		Val: intervalValue(tri, refine),
	}
}

// LDD is the Linearly Dependent Dissimilarity of Definition 2: the
// time-integral of the distance between two objects starting at distance
// d ≥ 0 and moving collinearly with relative speed v (negative when
// approaching) for a duration dt ≥ 0. When an approaching pair would meet
// before dt elapses the distance is taken as zero from the meeting instant
// on, giving the triangular area d²/(2|v|).
func LDD(d, v, dt float64) float64 {
	if dt <= 0 {
		return 0
	}
	if d < 0 {
		d = 0
	}
	if d+v*dt >= 0 {
		return dt * (d + v*dt/2)
	}
	return -d * d / (2 * v)
}
