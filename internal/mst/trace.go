package mst

import (
	"mstsearch/internal/geom"
	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

// EventKind discriminates the trace events a search emits through
// Options.Trace.
type EventKind int

// The event taxonomy of one k-MST search, in rough emission order. Every
// event is a flat TraceEvent value — the hook never receives pointers into
// search state, so it may retain events freely.
const (
	// EventNodeEnqueue: a node entered the best-first heap (Page, Level,
	// MBB, MinDist).
	EventNodeEnqueue EventKind = iota
	// EventNodeVisit: a node was popped and read (Page, Level, Leaf, MBB,
	// MinDist). The number of these events equals Stats.NodesAccessed.
	EventNodeVisit
	// EventCandidateAdmit: a trajectory was first seen in a leaf and
	// entered the candidate set (TrajID).
	EventCandidateAdmit
	// EventCandidateComplete: a candidate's interval list covers the whole
	// query period; Lo/Hi carry its certified DISSIM interval.
	EventCandidateComplete
	// EventCandidatePrune: Heuristic 1 evicted a candidate — its certified
	// lower bound Lo exceeded the k-th best upper bound Threshold
	// (Heuristic = 1). The number of these events equals Stats.Rejected.
	EventCandidatePrune
	// EventEarlyTerminate: Heuristic 2 discarded the node at MinDist and
	// every node after it — MINDISSIMINC (Lo) exceeded Threshold
	// (Heuristic = 2) — ending the search.
	EventEarlyTerminate
	// EventBudgetExhausted: a resource budget ran out (Budget names it);
	// the search degrades to best-effort results.
	EventBudgetExhausted
	// EventRefineStart: the §4.4 exact-refinement step begins; Count
	// candidates on Workers workers.
	EventRefineStart
	// EventRefined: one candidate's certified interval collapsed onto its
	// exact DISSIM (TrajID, Exact). The number of these events equals
	// Stats.ExactRefined.
	EventRefined
	// EventRefineDone: the refinement step finished (Count refined).
	EventRefineDone
	// EventShardScatter: a scatter-gather coordinator (internal/shard)
	// dispatched the query to one shard (Shard, MinDist = the shard's
	// certified lower bound). Emitted by the cluster layer, never by a
	// single-tree search.
	EventShardScatter
	// EventShardPrune: the coordinator skipped a shard whose certified
	// lower bound (MinDist) cannot beat the global k-th pessimistic bound
	// (Threshold), or which provably holds no covering trajectory
	// (MinDist = +Inf). Emitted by the cluster layer.
	EventShardPrune
	// EventReplicaFailover: a replicated shard's read handed off to a
	// sibling replica after a replica-attributable error (Shard, Replica
	// = the replica now serving, Count = the replica that failed).
	// Emitted by the cluster layer.
	EventReplicaFailover
	// EventReplicaRepair: the anti-entropy loop re-seeded a quarantined
	// replica from a healthy sibling and re-admitted it to the read
	// rotation (Shard, Replica = the repaired replica, Count = the
	// source replica). Emitted by the cluster layer.
	EventReplicaRepair
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventNodeEnqueue:
		return "node-enqueue"
	case EventNodeVisit:
		return "node-visit"
	case EventCandidateAdmit:
		return "candidate-admit"
	case EventCandidateComplete:
		return "candidate-complete"
	case EventCandidatePrune:
		return "candidate-prune"
	case EventEarlyTerminate:
		return "early-terminate"
	case EventBudgetExhausted:
		return "budget-exhausted"
	case EventRefineStart:
		return "refine-start"
	case EventRefined:
		return "refined"
	case EventRefineDone:
		return "refine-done"
	case EventShardScatter:
		return "shard-scatter"
	case EventShardPrune:
		return "shard-prune"
	case EventReplicaFailover:
		return "replica-failover"
	case EventReplicaRepair:
		return "replica-repair"
	default:
		return "unknown"
	}
}

// TraceEvent is one step of a search, delivered synchronously to the
// Options.Trace hook from the searching goroutine. It is a flat value:
// only the fields relevant to Kind are set. Hooks must be fast — the
// search blocks on them — and when one search object is shared across
// goroutines (a batch), the hook must be safe for concurrent calls.
type TraceEvent struct {
	Kind EventKind

	// Node fields (EventNodeEnqueue, EventNodeVisit, EventEarlyTerminate).
	Page  storage.PageID
	Level int // root = 0
	Leaf  bool
	MBB   geom.MBB
	// MinDist is the node's MINDIST from the query over the period.
	MinDist float64

	// Candidate fields (EventCandidate*, EventRefined).
	TrajID trajectory.ID
	// Lo, Hi bound the candidate's certified DISSIM interval at the time
	// of the event; for EventEarlyTerminate Lo carries MINDISSIMINC.
	Lo, Hi float64
	// Exact is the refined DISSIM (EventRefined).
	Exact float64

	// Decision fields.
	// Heuristic is 1 (OPTDISSIM candidate rejection) or 2 (MINDISSIMINC
	// early termination) on prune events.
	Heuristic int
	// Threshold is τ — the k-th smallest certified upper bound — at the
	// moment of the decision.
	Threshold float64
	// Budget names the exhausted budget on EventBudgetExhausted: "nodes"
	// or "io".
	Budget string

	// Count and Workers size the refinement step (EventRefineStart,
	// EventRefineDone).
	Count   int
	Workers int

	// Shard is the shard index on cluster-level events (EventShardScatter,
	// EventShardPrune, EventReplica*); MinDist then carries the shard's
	// certified lower bound and Threshold the global k-th pessimistic
	// bound at the decision.
	Shard int
	// Replica is the replica index on EventReplicaFailover (the replica
	// now serving) and EventReplicaRepair (the replica re-seeded); Count
	// then carries the other replica of the hand-off.
	Replica int
}

// emit delivers one event to the trace hook when tracing is on. The hook
// is nil for untraced searches, making the disabled path one predictable
// branch with no allocation.
func (s *searcher) emit(ev TraceEvent) {
	if s.opts.Trace != nil {
		s.opts.Trace(ev)
	}
}
