package mst

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"mstsearch/internal/baselines"
	"mstsearch/internal/index"
	"mstsearch/internal/rtree"
	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

// buildRTreeOn is buildRTree against a caller-owned page file, so tests
// can re-open the tree through a buffer pool.
func buildRTreeOn(tb testing.TB, f *storage.File, data *trajectory.Dataset) *rtree.Tree {
	tb.Helper()
	t := rtree.New(f)
	for i := range data.Trajs {
		tr := &data.Trajs[i]
		for s := 0; s < tr.NumSegments(); s++ {
			e := index.LeafEntry{TrajID: tr.ID, SeqNo: uint32(s), Seg: tr.Segment(s)}
			if err := t.Insert(e); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return t
}

// reopenRTree re-opens a built tree read-only through an arbitrary pager.
func reopenRTree(p storage.Pager, rt *rtree.Tree) index.Tree {
	return rtree.Open(p, rt.Meta())
}

// cancelAfterTree wraps a Tree and cancels a context after n ReadNode
// calls — simulating a client that gives up mid-search.
type cancelAfterTree struct {
	index.Tree
	cancel context.CancelFunc
	after  int
	reads  int
}

func (c *cancelAfterTree) ReadNode(id storage.PageID) (*index.Node, error) {
	c.reads++
	if c.reads == c.after {
		c.cancel()
	}
	return c.Tree.ReadNode(id)
}

// A context canceled mid-search must abort promptly with the typed error,
// reading at most one more node past the cancellation point.
func TestSearchCancellationMidSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	data := makeDataset(rng, 40, 80)
	rt := buildRTree(t, data, 1024)
	q := queryFrom(rng, &data.Trajs[3], 10, 60)

	// Baseline: how many nodes does the full search read?
	_, full, err := Search(rt, &q, 10, 60, Options{K: 3, Vmax: 100, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if full.NodesAccessed < 4 {
		t.Skipf("search too small to cancel mid-way (%d nodes)", full.NodesAccessed)
	}

	for _, after := range []int{1, 2, full.NodesAccessed / 2} {
		ctx, cancel := context.WithCancel(context.Background())
		wrapped := &cancelAfterTree{Tree: rt, cancel: cancel, after: after}
		_, st, err := SearchContext(ctx, wrapped, &q, 10, 60, Options{K: 3, Vmax: 100, Data: data})
		cancel()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("cancel after %d reads: got %v, want ErrCanceled", after, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel after %d reads: %v must also wrap context.Canceled", after, err)
		}
		// Cancellation is checked between pops: at most the in-flight node
		// completes after the cancel fires.
		if st.NodesAccessed > after+1 {
			t.Fatalf("cancel after %d reads: search went on to read %d nodes", after, st.NodesAccessed)
		}
	}
}

// An already-expired deadline aborts before any node is read.
func TestSearchDeadlineExpired(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	data := makeDataset(rng, 20, 80)
	rt := buildRTree(t, data, 1024)
	q := queryFrom(rng, &data.Trajs[0], 10, 60)

	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	_, st, err := SearchContext(ctx, rt, &q, 10, 60, Options{K: 2, Vmax: 100})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	if st.NodesAccessed != 0 {
		t.Fatalf("expired deadline still read %d nodes", st.NodesAccessed)
	}
}

// MaxNodeAccesses is a hard budget: the search never exceeds it, reports
// Degraded, and every result it marks Certified really is in the true
// top-k of the exact linear scan.
func TestSearchNodeBudgetDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	data := makeDataset(rng, 60, 100)
	rt := buildRTree(t, data, 1024)

	for iter := 0; iter < 10; iter++ {
		src := &data.Trajs[rng.Intn(data.Len())]
		t1 := rng.Float64() * 40
		t2 := t1 + 20 + rng.Float64()*30
		q := queryFrom(rng, src, t1, t2)
		k := 2 + rng.Intn(3)

		_, full, err := Search(rt, &q, t1, t2, Options{K: k, Vmax: 120, Data: data})
		if err != nil {
			t.Fatal(err)
		}
		if full.NodesAccessed < 3 {
			continue
		}
		budget := 1 + rng.Intn(full.NodesAccessed-1)

		res, st, err := Search(rt, &q, t1, t2, Options{
			K: k, Vmax: 120, Data: data, MaxNodeAccesses: budget,
		})
		if err != nil {
			t.Fatalf("iter %d: budgeted search failed: %v", iter, err)
		}
		if st.NodesAccessed > budget {
			t.Fatalf("iter %d: budget %d exceeded: %d nodes", iter, budget, st.NodesAccessed)
		}
		if !st.Degraded {
			t.Fatalf("iter %d: budget %d < full %d but Degraded not set", iter, budget, full.NodesAccessed)
		}

		want := baselines.LinearScanMST(data, &q, t1, t2, k)
		trueTop := map[int64]bool{}
		for _, w := range want {
			trueTop[int64(w.TrajID)] = true
		}
		for _, r := range res {
			if r.Certified && !trueTop[int64(r.TrajID)] {
				t.Fatalf("iter %d: certified result %d not in true top-%d", iter, r.TrajID, k)
			}
		}
	}
}

// An ample budget must not degrade the search or change its answer.
func TestSearchBudgetNotBindingIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	data := makeDataset(rng, 40, 80)
	rt := buildRTree(t, data, 1024)
	q := queryFrom(rng, &data.Trajs[5], 10, 60)
	k := 3

	res, st, err := Search(rt, &q, 10, 60, Options{
		K: k, Vmax: 120, Data: data, MaxNodeAccesses: rt.NumNodes() + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Degraded {
		t.Fatal("non-binding budget reported Degraded")
	}
	want := baselines.LinearScanMST(data, &q, 10, 60, k)
	if len(res) != len(want) {
		t.Fatalf("got %d results, want %d", len(res), len(want))
	}
	for i := range want {
		if res[i].TrajID != want[i].TrajID {
			t.Fatalf("rank %d: got %d, want %d", i, res[i].TrajID, want[i].TrajID)
		}
		if !res[i].Certified {
			t.Fatalf("complete search left result %d uncertified", res[i].TrajID)
		}
	}
}

// MaxIOReads (driven by an external miss counter) degrades like the node
// budget.
func TestSearchIOBudgetDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	data := makeDataset(rng, 60, 100)
	f := storage.NewFile(1024)
	rt := buildRTreeOn(t, f, data)
	q := queryFrom(rng, &data.Trajs[7], 10, 70)

	bp := storage.NewBufferPool(f, 4)
	view := reopenRTree(bp, rt)
	_, full, err := Search(view, &q, 10, 70, Options{K: 3, Vmax: 120, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	fullReads := bp.Stats().Misses
	if full.NodesAccessed < 3 || fullReads < 3 {
		t.Skip("search too small")
	}

	bp2 := storage.NewBufferPool(f, 4)
	view2 := reopenRTree(bp2, rt)
	budget := fullReads / 2
	_, st, err := Search(view2, &q, 10, 70, Options{
		K: 3, Vmax: 120, Data: data,
		MaxIOReads: budget,
		IOReads:    func() uint64 { return bp2.Stats().Misses },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Degraded {
		t.Fatalf("I/O budget %d of %d reads did not degrade", budget, fullReads)
	}
	// Sampled between pops: one node read may overshoot by at most one page
	// beyond the budget check, bounded by the node size in pages (1 here).
	if got := bp2.Stats().Misses; got > budget+1 {
		t.Fatalf("I/O budget %d exceeded: %d misses", budget, got)
	}
}
