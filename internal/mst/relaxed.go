package mst

import (
	"context"
	"math"
	"sort"

	"mstsearch/internal/dissim"
	"mstsearch/internal/geom"
	"mstsearch/internal/index"
	"mstsearch/internal/trajectory"
)

// This file implements the Time-Relaxed MST query the paper names as
// future work (§6): "the minimum dissimilarity between trajectories
// regardless of the time instance in which the query object starts". The
// query trajectory is slid along the time axis and the best alignment is
// found:
//
//	TRDISSIM(Q, T) = min over τ of DISSIM(Q shifted by τ, T)
//
// where the shifted query's period must lie inside T's lifespan. The
// objective is a piecewise-smooth function of τ (each piece corresponds to
// one interleaving of the two sample grids), so it is minimized by a
// coarse grid scan followed by golden-section refinement of the best
// bracket.

// RelaxedOptions tunes the offset optimization.
type RelaxedOptions struct {
	// GridSteps is the number of coarse offsets probed across the feasible
	// range (default 64).
	GridSteps int
	// Tolerance is the absolute offset tolerance of the refinement stage
	// (default: feasible range / 1e6).
	Tolerance float64
}

func (o *RelaxedOptions) normalize(span float64) {
	if o.GridSteps < 2 {
		o.GridSteps = 64
	}
	if o.Tolerance <= 0 {
		o.Tolerance = span / 1e6
	}
}

// RelaxedResult is one time-relaxed answer.
type RelaxedResult struct {
	TrajID trajectory.ID
	// Dissim is the minimum DISSIM over all feasible time shifts.
	Dissim float64
	// Offset is the time shift achieving it (added to the query's
	// timestamps).
	Offset float64
}

// RelaxedDissim computes TRDISSIM(q, t): the smallest exact DISSIM over
// every feasible time shift of q, together with the best shift. ok is
// false when t's lifespan is shorter than q's (no feasible shift).
func RelaxedDissim(q, t *trajectory.Trajectory, opts RelaxedOptions) (best float64, offset float64, ok bool) {
	qDur := q.Duration()
	lo := t.StartTime() - q.StartTime()
	hi := t.EndTime() - q.EndTime()
	if hi < lo || qDur <= 0 {
		return 0, 0, false
	}
	opts.normalize(math.Max(hi-lo, qDur))

	eval := func(tau float64) float64 {
		d, covered := shiftedDissim(q, t, tau)
		if !covered {
			return math.Inf(1)
		}
		return d
	}

	// Degenerate feasible range: single offset.
	if geom.ExactEq(hi, lo) {
		return eval(lo), lo, true
	}

	// Coarse grid.
	bestTau := lo
	best = math.Inf(1)
	step := (hi - lo) / float64(opts.GridSteps)
	for i := 0; i <= opts.GridSteps; i++ {
		tau := lo + float64(i)*step
		if v := eval(tau); v < best {
			best, bestTau = v, tau
		}
	}

	// Golden-section refinement inside the bracket around the best grid
	// point. The objective is piecewise smooth and typically unimodal near
	// its minimum; refinement inside one bracket can only improve on the
	// grid answer.
	a := math.Max(lo, bestTau-step)
	b := math.Min(hi, bestTau+step)
	const invPhi = 0.6180339887498949
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := eval(x1), eval(x2)
	for b-a > opts.Tolerance {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = eval(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = eval(x2)
		}
	}
	mid := (a + b) / 2
	if v := eval(mid); v < best {
		best, bestTau = v, mid
	}
	if f1 < best {
		best, bestTau = f1, x1
	}
	if f2 < best {
		best, bestTau = f2, x2
	}
	return best, bestTau, true
}

// shiftedDissim evaluates DISSIM between q shifted by tau and t over the
// shifted query period.
func shiftedDissim(q, t *trajectory.Trajectory, tau float64) (float64, bool) {
	sq := ShiftTime(q, tau)
	return dissim.Exact(&sq, t, sq.StartTime(), sq.EndTime())
}

// ShiftTime returns a copy of tr with every timestamp moved by dt.
func ShiftTime(tr *trajectory.Trajectory, dt float64) trajectory.Trajectory {
	out := tr.Clone()
	for i := range out.Samples {
		out.Samples[i].T += dt
	}
	return out
}

// RelaxedScan answers a time-relaxed k-MST query by scanning the dataset
// with RelaxedDissim — the reference implementation of the paper's §6
// research direction. Trajectories shorter than the query are skipped.
func RelaxedScan(data *trajectory.Dataset, q *trajectory.Trajectory, k int, opts RelaxedOptions) []RelaxedResult {
	out, _ := RelaxedScanContext(context.Background(), data, q, k, opts)
	return out
}

// RelaxedScanContext is RelaxedScan under a context: cancellation is
// checked between candidates (each per-candidate optimization is the unit
// of work), so an abandoned scan stops promptly with ErrCanceled.
func RelaxedScanContext(ctx context.Context, data *trajectory.Dataset, q *trajectory.Trajectory, k int, opts RelaxedOptions) ([]RelaxedResult, error) {
	if k < 1 {
		k = 1
	}
	out := make([]RelaxedResult, 0, data.Len())
	for i := range data.Trajs {
		if err := index.Canceled(ctx); err != nil {
			return nil, err
		}
		tr := &data.Trajs[i]
		d, off, ok := RelaxedDissim(q, tr, opts)
		if !ok {
			continue
		}
		out = append(out, RelaxedResult{TrajID: tr.ID, Dissim: d, Offset: off})
	}
	sort.Slice(out, func(i, j int) bool {
		if !geom.ExactEq(out[i].Dissim, out[j].Dissim) {
			return out[i].Dissim < out[j].Dissim
		}
		return out[i].TrajID < out[j].TrajID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
