package mst

import "mstsearch/internal/obs"

// Process-wide search-loop metrics. Handles resolve once at init; the
// search accumulates into its private Stats and flushes the totals here
// with a handful of atomic adds per query, keeping the per-node hot path
// free of shared-cache-line traffic.
var (
	metSearches     = obs.Default.Counter("mst.searches")
	metNodesVisited = obs.Default.Counter("mst.nodes_visited")
	metLeavesRead   = obs.Default.Counter("mst.leaves_visited")
	metHeapPushes   = obs.Default.Counter("mst.heap_pushes")
	metHeapPops     = obs.Default.Counter("mst.heap_pops")
	metPruneH1      = obs.Default.Counter("mst.prune.heuristic1_candidates")
	metPruneH2      = obs.Default.Counter("mst.prune.heuristic2_terminations")
	metTrapEvals    = obs.Default.Counter("mst.dissim.trapezoid_evals")
	metExactEvals   = obs.Default.Counter("mst.dissim.exact_evals")
	metRefineTasks  = obs.Default.Counter("mst.refine.tasks")
	metRefineWork   = obs.Default.Counter("mst.refine.workers")
	metDegraded     = obs.Default.Counter("mst.degraded")
	metNodesPerQ    = obs.Default.Histogram("mst.nodes_per_query", obs.IOBounds)
)

// flushMetrics publishes one finished (or failed) search's counters into
// the process-wide registry. heapPops counts pop operations, which can
// exceed NodesAccessed by the final Heuristic 2 pop.
func (s *searcher) flushMetrics(heapPops int) {
	metSearches.Inc()
	metNodesVisited.Add(uint64(s.stats.NodesAccessed))
	metLeavesRead.Add(uint64(s.stats.LeavesAccessed))
	metHeapPushes.Add(uint64(s.stats.Enqueued))
	metHeapPops.Add(uint64(heapPops))
	metPruneH1.Add(uint64(s.stats.Rejected))
	if s.stats.TerminatedEarly {
		metPruneH2.Inc()
	}
	metTrapEvals.Add(uint64(s.stats.TrapezoidEvals))
	metExactEvals.Add(uint64(s.stats.ExactRefined))
	if s.stats.Degraded {
		metDegraded.Inc()
	}
	metNodesPerQ.Observe(float64(s.stats.NodesAccessed))
}
