package mst

import (
	"errors"
	"math/rand"
	"testing"

	"mstsearch/internal/index"
	"mstsearch/internal/rtree"
	"mstsearch/internal/storage"
	"mstsearch/internal/tbtree"
)

// Every page-read fault during a search must surface as an error, never a
// silent wrong answer or a panic.
func TestSearchPropagatesReadFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	data := makeDataset(rng, 30, 50)
	f := storage.NewFile(1024)
	rt := rtree.New(f)
	for i := range data.Trajs {
		tr := &data.Trajs[i]
		for s := 0; s < tr.NumSegments(); s++ {
			if err := rt.Insert(index.LeafEntry{TrajID: tr.ID, SeqNo: uint32(s), Seg: tr.Segment(s)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	q := queryFrom(rng, &data.Trajs[0], 10, 40)

	// Fault injected at increasing read depths: every failure must come
	// back as ErrInjected.
	for at := uint64(1); at <= 30; at += 3 {
		fp := &storage.FaultyPager{Inner: f, FailReadAt: at}
		view := rtree.Open(fp, rt.Meta())
		_, _, err := Search(view, &q, 10, 40, Options{K: 2, Vmax: 100})
		if err == nil {
			// Search finished before the fault triggered — acceptable once
			// the search reads fewer than `at` pages.
			continue
		}
		if !errors.Is(err, storage.ErrInjected) {
			t.Fatalf("fault at read %d: got %v, want ErrInjected", at, err)
		}
	}
}

// Build-time write faults must propagate from both tree builders.
func TestBuildPropagatesWriteFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	data := makeDataset(rng, 10, 40)

	for at := uint64(1); at <= 20; at += 4 {
		fp := &storage.FaultyPager{Inner: storage.NewFile(1024), FailWriteAt: at}
		rt := rtree.New(fp)
		var err error
		for i := range data.Trajs {
			tr := &data.Trajs[i]
			for s := 0; s < tr.NumSegments() && err == nil; s++ {
				err = rt.Insert(index.LeafEntry{TrajID: tr.ID, SeqNo: uint32(s), Seg: tr.Segment(s)})
			}
			if err != nil {
				break
			}
		}
		if !errors.Is(err, storage.ErrInjected) {
			t.Fatalf("rtree build fault at write %d: got %v", at, err)
		}
	}
	for at := uint64(1); at <= 20; at += 4 {
		fp := &storage.FaultyPager{Inner: storage.NewFile(1024), FailWriteAt: at}
		tb := tbtree.New(fp)
		var err error
		for i := range data.Trajs {
			if err = tb.InsertTrajectory(&data.Trajs[i]); err != nil {
				break
			}
		}
		if !errors.Is(err, storage.ErrInjected) {
			t.Fatalf("tbtree build fault at write %d: got %v", at, err)
		}
	}
}
