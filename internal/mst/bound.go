package mst

import (
	"fmt"
	"math"

	"mstsearch/internal/index"
	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

// LowerBound returns a certified lower bound on the DISSIM between q and
// EVERY trajectory in the tree over [t1, t2], from one root-page read:
// MINDIST(q, rootMBB) · (t2 − t1), the speed-independent OPTDISSIM bound
// of §4.2 applied to the root. +Inf means the tree provably holds no
// trajectory covering the period (empty tree, or the root MBB misses the
// period entirely), so the tree cannot contribute to any top-k.
//
// A scatter-gather coordinator uses this to skip entire shards: a shard
// whose LowerBound exceeds the global k-th pessimistic bound cannot place
// a result, and pruning it cannot change the merged answer.
func LowerBound(tree index.Tree, q *trajectory.Trajectory, t1, t2 float64) (float64, error) {
	if q == nil || !(t1 < t2) || !q.Covers(t1, t2) {
		return 0, fmt.Errorf("%w: query trajectory must cover period [%g, %g]", ErrBadQuery, t1, t2)
	}
	root := tree.Root()
	if root == storage.NilPage {
		return math.Inf(1), nil
	}
	// Same discipline as the search itself: a corrupt or faulted root page
	// must surface as a typed error, never as a fake +Inf bound that would
	// silently prune the shard.
	rootNode, err := tree.ReadNode(root)
	if err != nil {
		return 0, err
	}
	rootMBB := rootNode.MBB()
	if !rootMBB.OverlapsTime(t1, t2) {
		return math.Inf(1), nil
	}
	d, ok := index.MinDistTrajMBB(q, rootMBB, t1, t2)
	if !ok {
		return math.Inf(1), nil
	}
	return d * (t2 - t1), nil
}
