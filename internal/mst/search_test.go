package mst

import (
	"math"
	"math/rand"
	"testing"

	"mstsearch/internal/baselines"
	"mstsearch/internal/index"
	"mstsearch/internal/rtree"
	"mstsearch/internal/storage"
	"mstsearch/internal/strtree"
	"mstsearch/internal/tbtree"
	"mstsearch/internal/trajectory"
)

// makeDataset builds n random-walk trajectories all covering [0, span]
// with heterogeneous sampling rates.
func makeDataset(rng *rand.Rand, n int, span float64) *trajectory.Dataset {
	trajs := make([]trajectory.Trajectory, n)
	for i := range trajs {
		samples := 10 + rng.Intn(60)
		tr := trajectory.Trajectory{ID: trajectory.ID(i + 1)}
		x, y := rng.Float64()*100, rng.Float64()*100
		for j := 0; j <= samples; j++ {
			t := span * float64(j) / float64(samples)
			tr.Samples = append(tr.Samples, trajectory.Sample{X: x, Y: y, T: t})
			x += rng.NormFloat64() * 2
			y += rng.NormFloat64() * 2
		}
		trajs[i] = tr
	}
	d, err := trajectory.NewDataset(trajs)
	if err != nil {
		panic(err)
	}
	return d
}

func buildRTree(tb testing.TB, data *trajectory.Dataset, pageSize int) *rtree.Tree {
	f := storage.NewFile(pageSize)
	t := rtree.New(f)
	for i := range data.Trajs {
		tr := &data.Trajs[i]
		for s := 0; s < tr.NumSegments(); s++ {
			e := index.LeafEntry{TrajID: tr.ID, SeqNo: uint32(s), Seg: tr.Segment(s)}
			if err := t.Insert(e); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return t
}

func buildSTRTree(tb testing.TB, data *trajectory.Dataset, pageSize int) *strtree.Tree {
	f := storage.NewFile(pageSize)
	t := strtree.New(f)
	for i := range data.Trajs {
		if err := t.InsertTrajectory(&data.Trajs[i]); err != nil {
			tb.Fatal(err)
		}
	}
	return t
}

func buildTBTree(tb testing.TB, data *trajectory.Dataset, pageSize int) *tbtree.Tree {
	f := storage.NewFile(pageSize)
	t := tbtree.New(f)
	for i := range data.Trajs {
		if err := t.InsertTrajectory(&data.Trajs[i]); err != nil {
			tb.Fatal(err)
		}
	}
	return t
}

// queryFrom derives a query trajectory as a perturbed copy of a dataset
// trajectory restricted to [t1, t2] and resampled at its own rate — the
// paper's query workload shape (Table 3).
func queryFrom(rng *rand.Rand, src *trajectory.Trajectory, t1, t2 float64) trajectory.Trajectory {
	sl, ok := src.Slice(t1, t2)
	if !ok {
		panic("query window outside source")
	}
	q := sl.Clone()
	q.ID = 0
	for i := range q.Samples {
		q.Samples[i].X += rng.NormFloat64() * 0.5
		q.Samples[i].Y += rng.NormFloat64() * 0.5
	}
	return q
}

// TestSearchMatchesLinearScan is the central integration property: on both
// tree types, BFMSTSearch with exact refinement returns exactly the
// trajectories the exact brute-force scan ranks first.
func TestSearchMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := makeDataset(rng, 60, 100)
	vmax := data.MaxSpeed()
	rt := buildRTree(t, data, 1024)
	tb := buildTBTree(t, data, 1024)
	st := buildSTRTree(t, data, 1024)
	trees := map[string]index.Tree{"rtree": rt, "tbtree": tb, "strtree": st}

	for iter := 0; iter < 25; iter++ {
		src := &data.Trajs[rng.Intn(data.Len())]
		t1 := rng.Float64() * 50
		t2 := t1 + 10 + rng.Float64()*40
		q := queryFrom(rng, src, t1, t2)
		k := 1 + rng.Intn(5)
		want := baselines.LinearScanMST(data, &q, t1, t2, k)

		for name, tree := range trees {
			got, stats, err := Search(tree, &q, t1, t2, Options{
				K:    k,
				Vmax: vmax + q.MaxSpeed(),
				Data: data,
			})
			if err != nil {
				t.Fatalf("%s iter %d: %v", name, iter, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s iter %d: got %d results, want %d", name, iter, len(got), len(want))
			}
			for i := range want {
				if got[i].TrajID != want[i].TrajID {
					t.Fatalf("%s iter %d k=%d: rank %d = traj %d (%.6f), want traj %d (%.6f)",
						name, iter, k, i, got[i].TrajID, got[i].Dissim,
						want[i].TrajID, want[i].Dissim)
				}
				if math.Abs(got[i].Dissim-want[i].Dissim) > 1e-6*math.Max(1, want[i].Dissim)+got[i].Err {
					t.Fatalf("%s iter %d: rank %d dissim %v±%v, want %v",
						name, iter, i, got[i].Dissim, got[i].Err, want[i].Dissim)
				}
			}
			if stats.NodesAccessed == 0 || stats.TotalNodes == 0 {
				t.Fatalf("%s iter %d: missing stats: %+v", name, iter, stats)
			}
		}
	}
}

// Without the dataset (no exact refinement) the certified interval of each
// result must still contain the true DISSIM.
func TestSearchWithoutRefinementBrackets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := makeDataset(rng, 40, 50)
	rt := buildRTree(t, data, 1024)
	for iter := 0; iter < 10; iter++ {
		src := &data.Trajs[rng.Intn(data.Len())]
		q := queryFrom(rng, src, 5, 45)
		got, _, err := Search(rt, &q, 5, 45, Options{K: 3, Vmax: 100})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3 {
			t.Fatalf("got %d results", len(got))
		}
		for _, r := range got {
			tr := data.Get(r.TrajID)
			exact, ok := dissimExact(&q, tr, 5, 45)
			if !ok {
				t.Fatalf("result %d does not cover window", r.TrajID)
			}
			if exact < r.Dissim-r.Err-1e-9 || exact > r.Dissim+r.Err+1e-9 {
				t.Fatalf("exact %v outside certified %v±%v", exact, r.Dissim, r.Err)
			}
		}
	}
}

// Heuristics must never change the result set, only the work performed.
func TestHeuristicsPreserveResults(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := makeDataset(rng, 50, 60)
	rt := buildRTree(t, data, 1024)
	vmax := data.MaxSpeed() + 10
	for iter := 0; iter < 10; iter++ {
		src := &data.Trajs[rng.Intn(data.Len())]
		q := queryFrom(rng, src, 10, 50)
		base, baseStats, err := Search(rt, &q, 10, 50, Options{K: 2, Vmax: vmax, Data: data})
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range []Options{
			{K: 2, Vmax: vmax, Data: data, DisableHeuristic1: true},
			{K: 2, Vmax: vmax, Data: data, DisableHeuristic2: true},
			{K: 2, Vmax: vmax, Data: data, DisableHeuristic1: true, DisableHeuristic2: true},
			{K: 2, Vmax: 0, Data: data},               // speed-independent only
			{K: 2, Vmax: vmax, Data: data, Refine: 8}, // tighter trapezoid bounds
		} {
			got, stats, err := Search(rt, &q, 10, 50, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(base) {
				t.Fatalf("iter %d opts %+v: %d results vs %d", iter, opt, len(got), len(base))
			}
			for i := range base {
				if got[i].TrajID != base[i].TrajID {
					t.Fatalf("iter %d opts %+v: rank %d differs", iter, opt, i)
				}
			}
			// Disabling both heuristics must not access fewer nodes.
			if opt.DisableHeuristic1 && opt.DisableHeuristic2 &&
				stats.NodesAccessed < baseStats.NodesAccessed {
				t.Fatalf("iter %d: heuristics increased node accesses (%d vs %d)",
					iter, baseStats.NodesAccessed, stats.NodesAccessed)
			}
		}
	}
}

func TestHeuristic2Terminates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := makeDataset(rng, 120, 60)
	rt := buildRTree(t, data, 1024)
	src := &data.Trajs[0]
	q := queryFrom(rng, src, 10, 50)
	_, stats, err := Search(rt, &q, 10, 50, Options{K: 1, Vmax: data.MaxSpeed() + 10, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.TerminatedEarly {
		t.Fatalf("expected early termination on a 120-object dataset: %+v", stats)
	}
	if stats.PruningPower <= 0 {
		t.Fatalf("expected positive pruning power: %+v", stats)
	}
}

func TestSearchBadQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	data := makeDataset(rng, 5, 10)
	rt := buildRTree(t, data, 1024)
	q := data.Trajs[0].Clone()
	if _, _, err := Search(rt, nil, 0, 1, Options{}); err == nil {
		t.Fatal("nil query must error")
	}
	if _, _, err := Search(rt, &q, 5, 5, Options{}); err == nil {
		t.Fatal("empty period must error")
	}
	if _, _, err := Search(rt, &q, -10, 5, Options{}); err == nil {
		t.Fatal("period outside query lifespan must error")
	}
}

func TestSearchEmptyTree(t *testing.T) {
	f := storage.NewFile(1024)
	rt := rtree.New(f)
	q := trajectory.Trajectory{ID: 1, Samples: []trajectory.Sample{
		{X: 0, Y: 0, T: 0}, {X: 1, Y: 1, T: 10},
	}}
	got, stats, err := Search(rt, &q, 0, 10, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != nil || stats.NodesAccessed != 0 {
		t.Fatalf("empty tree: %v, %+v", got, stats)
	}
}

// Trajectories that do not cover the whole query period must never be
// returned.
func TestSearchSkipsPartialCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	trajs := []trajectory.Trajectory{
		{ID: 1, Samples: []trajectory.Sample{{X: 0, Y: 0, T: 0}, {X: 1, Y: 0, T: 4}}},      // half period
		{ID: 2, Samples: []trajectory.Sample{{X: 50, Y: 50, T: 0}, {X: 51, Y: 50, T: 10}}}, // full, far
	}
	data, err := trajectory.NewDataset(trajs)
	if err != nil {
		t.Fatal(err)
	}
	rt := buildRTree(t, data, 1024)
	q := trajectory.Trajectory{ID: 0, Samples: []trajectory.Sample{
		{X: 0, Y: 1, T: 0}, {X: 1, Y: 1, T: 10},
	}}
	_ = rng
	got, _, err := Search(rt, &q, 0, 10, Options{K: 2, Vmax: 100, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].TrajID != 2 {
		t.Fatalf("want only trajectory 2, got %+v", got)
	}
}

func TestKLargerThanDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	data := makeDataset(rng, 5, 20)
	rt := buildRTree(t, data, 1024)
	q := queryFrom(rng, &data.Trajs[0], 0, 20)
	got, _, err := Search(rt, &q, 0, 20, Options{K: 50, Vmax: 100, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("want all 5 trajectories, got %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dissim < got[i-1].Dissim {
			t.Fatal("results must be sorted by dissimilarity")
		}
	}
}

// dissimExact avoids an import cycle in test helpers.
func dissimExact(q, tr *trajectory.Trajectory, t1, t2 float64) (float64, bool) {
	res := baselines.LinearScanMST(mustDataset(tr), q, t1, t2, 1)
	if len(res) == 0 {
		return 0, false
	}
	return res[0].Dissim, true
}

func mustDataset(tr *trajectory.Trajectory) *trajectory.Dataset {
	d, err := trajectory.NewDataset([]trajectory.Trajectory{*tr})
	if err != nil {
		panic(err)
	}
	return d
}

func BenchmarkSearchRTree(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := makeDataset(rng, 100, 100)
	rt := buildRTree(b, data, 4096)
	q := queryFrom(rng, &data.Trajs[0], 20, 80)
	opts := Options{K: 1, Vmax: data.MaxSpeed() + 10, Data: data}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Search(rt, &q, 20, 80, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchTBTree(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := makeDataset(rng, 100, 100)
	tb := buildTBTree(b, data, 4096)
	q := queryFrom(rng, &data.Trajs[0], 20, 80)
	opts := Options{K: 1, Vmax: data.MaxSpeed() + 10, Data: data}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Search(tb, &q, 20, 80, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// The search must run identically on a bulk-loaded (STR-packed) R-tree —
// node geometry differs from the dynamically built tree but results may
// not.
func TestSearchOnBulkLoadedTree(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	data := makeDataset(rng, 40, 60)
	var entries []index.LeafEntry
	for i := range data.Trajs {
		tr := &data.Trajs[i]
		for s := 0; s < tr.NumSegments(); s++ {
			entries = append(entries, index.LeafEntry{TrajID: tr.ID, SeqNo: uint32(s), Seg: tr.Segment(s)})
		}
	}
	bulk, err := rtree.BulkLoad(storage.NewFile(1024), entries)
	if err != nil {
		t.Fatal(err)
	}
	vmax := data.MaxSpeed()
	for iter := 0; iter < 10; iter++ {
		src := &data.Trajs[rng.Intn(data.Len())]
		q := queryFrom(rng, src, 10, 50)
		want := baselines.LinearScanMST(data, &q, 10, 50, 3)
		got, stats, err := Search(bulk, &q, 10, 50, Options{K: 3, Vmax: vmax + q.MaxSpeed(), Data: data})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("iter %d: %d results, want %d", iter, len(got), len(want))
		}
		for i := range want {
			if got[i].TrajID != want[i].TrajID {
				t.Fatalf("iter %d rank %d: %d vs %d", iter, i, got[i].TrajID, want[i].TrajID)
			}
		}
		if stats.PruningPower <= 0 {
			t.Fatalf("iter %d: no pruning on bulk tree: %+v", iter, stats)
		}
	}
}

// TestParallelRefinementDeterminism pins the Options.Parallelism contract
// at the algorithm layer: for the same query, a search whose exact
// refinement runs on a worker pool must return results bit-identical to
// the serial search — same IDs, same float bits, same Certified flags —
// and identical admission statistics. Workers only compute DISSIM
// integrals; the admission order stays sequential, so no interleaving can
// change what is accepted.
func TestParallelRefinementDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	data := makeDataset(rng, 60, 100)
	vmax := data.MaxSpeed()
	trees := map[string]index.Tree{
		"rtree":   buildRTree(t, data, 1024),
		"tbtree":  buildTBTree(t, data, 1024),
		"strtree": buildSTRTree(t, data, 1024),
	}
	for iter := 0; iter < 15; iter++ {
		src := &data.Trajs[rng.Intn(data.Len())]
		t1 := rng.Float64() * 50
		t2 := t1 + 10 + rng.Float64()*40
		q := queryFrom(rng, src, t1, t2)
		k := 1 + rng.Intn(6)
		for name, tree := range trees {
			base := Options{K: k, Vmax: vmax + q.MaxSpeed(), Data: data}
			serOpts, parOpts := base, base
			serOpts.Parallelism = 1
			parOpts.Parallelism = 4
			ser, serStats, err := Search(tree, &q, t1, t2, serOpts)
			if err != nil {
				t.Fatalf("%s iter %d serial: %v", name, iter, err)
			}
			par, parStats, err := Search(tree, &q, t1, t2, parOpts)
			if err != nil {
				t.Fatalf("%s iter %d parallel: %v", name, iter, err)
			}
			if len(ser) != len(par) {
				t.Fatalf("%s iter %d: serial %d results, parallel %d", name, iter, len(ser), len(par))
			}
			for i := range ser {
				if ser[i].TrajID != par[i].TrajID ||
					math.Float64bits(ser[i].Dissim) != math.Float64bits(par[i].Dissim) ||
					math.Float64bits(ser[i].Err) != math.Float64bits(par[i].Err) ||
					ser[i].Certified != par[i].Certified {
					t.Fatalf("%s iter %d rank %d: serial %+v != parallel %+v",
						name, iter, i, ser[i], par[i])
				}
			}
			if serStats != parStats {
				t.Fatalf("%s iter %d: stats diverged:\nserial   %+v\nparallel %+v",
					name, iter, serStats, parStats)
			}
			if serStats.ExactRefined == 0 && iter == 0 {
				t.Logf("%s iter %d: no candidate needed refinement", name, iter)
			}
		}
	}
}
