package mst

import (
	"math"
	"math/rand"
	"testing"

	"mstsearch/internal/rtree"
	"mstsearch/internal/trajectory"
)

// collectEvents runs one traced search and returns the events alongside
// the results and stats.
func collectEvents(t *testing.T, opts Options, data *trajectory.Dataset, tr *rtree.Tree, q *trajectory.Trajectory, t1, t2 float64) ([]TraceEvent, []Result, Stats) {
	t.Helper()
	var events []TraceEvent
	opts.Trace = func(ev TraceEvent) { events = append(events, ev) }
	res, st, err := Search(tr, q, t1, t2, opts)
	if err != nil {
		t.Fatal(err)
	}
	return events, res, st
}

// TestTraceContract is the reconciliation gate between the event stream
// and the search statistics: every counter in Stats must be derivable
// from the trace, so the two views of a query can never drift apart.
func TestTraceContract(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	data := makeDataset(rng, 40, 100)
	tr := buildRTree(t, data, 1024)
	q := queryFrom(rng, &data.Trajs[3], 10, 80)

	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"refined", Options{K: 5, Refine: 1, Data: data}},
		{"unrefined", Options{K: 3, Refine: 1}},
		{"no-heuristics", Options{K: 3, Refine: 1, DisableHeuristic1: true, DisableHeuristic2: true}},
		{"budgeted", Options{K: 3, Refine: 1, MaxNodeAccesses: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			events, res, st := collectEvents(t, tc.opts, data, tr, &q, 10, 80)

			count := map[EventKind]int{}
			leaves := 0
			admitted := map[trajectory.ID]bool{}
			for _, ev := range events {
				count[ev.Kind]++
				switch ev.Kind {
				case EventNodeVisit:
					if ev.Leaf {
						leaves++
					}
				case EventCandidateAdmit:
					admitted[ev.TrajID] = true
				case EventCandidatePrune:
					if ev.Heuristic != 1 {
						t.Errorf("prune event blames heuristic %d, want 1", ev.Heuristic)
					}
				case EventEarlyTerminate:
					if ev.Heuristic != 2 {
						t.Errorf("early-terminate event blames heuristic %d, want 2", ev.Heuristic)
					}
				}
			}

			if got := count[EventNodeVisit]; got != st.NodesAccessed {
				t.Errorf("node-visit events %d != NodesAccessed %d", got, st.NodesAccessed)
			}
			if leaves != st.LeavesAccessed {
				t.Errorf("leaf visit events %d != LeavesAccessed %d", leaves, st.LeavesAccessed)
			}
			if got := count[EventNodeEnqueue]; got != st.Enqueued {
				t.Errorf("node-enqueue events %d != Enqueued %d", got, st.Enqueued)
			}
			if got := count[EventCandidatePrune]; got != st.Rejected {
				t.Errorf("candidate-prune events %d != Rejected %d", got, st.Rejected)
			}
			if got := count[EventCandidateComplete]; got != st.Completed {
				t.Errorf("candidate-complete events %d != Completed %d", got, st.Completed)
			}
			if got := count[EventRefined]; got != st.ExactRefined {
				t.Errorf("refined events %d != ExactRefined %d", got, st.ExactRefined)
			}
			if st.TerminatedEarly && count[EventEarlyTerminate] != 1 {
				t.Errorf("early-terminated search emitted %d early-terminate events, want 1", count[EventEarlyTerminate])
			}
			if st.Degraded && count[EventBudgetExhausted] != 1 {
				t.Errorf("degraded search emitted %d budget-exhausted events, want 1", count[EventBudgetExhausted])
			}
			if st.ExactRefined > 0 && (count[EventRefineStart] != 1 || count[EventRefineDone] != 1) {
				t.Errorf("refinement ran but start/done events = %d/%d, want 1/1",
					count[EventRefineStart], count[EventRefineDone])
			}
			for _, r := range res {
				if !admitted[r.TrajID] {
					t.Errorf("result trajectory %d never appeared in a candidate-admit event", r.TrajID)
				}
			}
		})
	}
}

// TestTraceDoesNotChangeResults pins the observer-effect contract: the
// same query traced and untraced returns bit-identical answers and the
// same work profile.
func TestTraceDoesNotChangeResults(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	data := makeDataset(rng, 30, 50)
	tr := buildRTree(t, data, 1024)
	q := queryFrom(rng, &data.Trajs[5], 5, 45)

	opts := Options{K: 4, Refine: 1, Data: data}
	plain, pst, err := Search(tr, &q, 5, 45, opts)
	if err != nil {
		t.Fatal(err)
	}
	events, traced, tst := collectEvents(t, opts, data, tr, &q, 5, 45)
	if len(events) == 0 {
		t.Fatal("traced run delivered no events")
	}
	if len(plain) != len(traced) {
		t.Fatalf("traced run returned %d results, untraced %d", len(traced), len(plain))
	}
	for i := range plain {
		if plain[i].TrajID != traced[i].TrajID ||
			math.Float64bits(plain[i].Dissim) != math.Float64bits(traced[i].Dissim) {
			t.Fatalf("rank %d: untraced %+v != traced %+v", i, plain[i], traced[i])
		}
	}
	if pst != tst {
		t.Fatalf("stats drifted under tracing: untraced %+v, traced %+v", pst, tst)
	}
}

// TestEventKindString pins the taxonomy's names (they appear in EXPLAIN
// transcripts and logs, so renames are breaking).
func TestEventKindString(t *testing.T) {
	want := map[EventKind]string{
		EventNodeEnqueue:       "node-enqueue",
		EventNodeVisit:         "node-visit",
		EventCandidateAdmit:    "candidate-admit",
		EventCandidateComplete: "candidate-complete",
		EventCandidatePrune:    "candidate-prune",
		EventEarlyTerminate:    "early-terminate",
		EventBudgetExhausted:   "budget-exhausted",
		EventRefineStart:       "refine-start",
		EventRefined:           "refined",
		EventRefineDone:        "refine-done",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}
