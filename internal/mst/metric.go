package mst

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"mstsearch/internal/baselines"
	"mstsearch/internal/dissim"
	"mstsearch/internal/geom"
	"mstsearch/internal/index"
	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

// Metric selects the distance function of a kNN query. The zero value is
// the paper's DISSIM, so existing Request literals keep their meaning;
// the other metrics are the baseline distances of the experimental study
// (§5.2), evaluated exactly over the window-sliced trajectories.
type Metric int

const (
	// MetricDISSIM is the paper's dissimilarity: the time integral of the
	// Euclidean distance over the query window (Definition 1).
	MetricDISSIM Metric = iota
	// MetricDTW is Dynamic Time Warping with Euclidean point cost over
	// the window-sliced sample sequences.
	MetricDTW
	// MetricLCSS is the LCSS distance 1 − LCSS/min(n, m) over the
	// window-sliced sample sequences (matching tolerance Eps per axis).
	MetricLCSS
	// MetricEDR is the Edit Distance on Real sequences over the
	// window-sliced sample sequences (matching tolerance Eps per axis).
	MetricEDR
)

// Valid reports whether m is a known metric.
func (m Metric) Valid() bool { return m >= MetricDISSIM && m <= MetricEDR }

// NeedsEps reports whether the metric requires a positive matching
// tolerance.
func (m Metric) NeedsEps() bool { return m == MetricLCSS || m == MetricEDR }

// String returns the canonical metric name.
func (m Metric) String() string {
	switch m {
	case MetricDISSIM:
		return "dissim"
	case MetricDTW:
		return "dtw"
	case MetricLCSS:
		return "lcss"
	case MetricEDR:
		return "edr"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// ErrUnknownMetric reports a metric name ParseMetric does not recognize.
var ErrUnknownMetric = errors.New("mst: unknown metric")

// ErrNoData reports a metric search attempted without a geometry source:
// the metric tree stores no trajectory geometry, so Options.Data must
// resolve member IDs for exact refinement.
var ErrNoData = errors.New("mst: metric search requires Options.Data (the tree stores no geometry)")

// ParseMetric inverts Metric.String (case-insensitively; the empty string
// is the zero-value DISSIM, mirroring the Request field's zero value).
func ParseMetric(s string) (Metric, error) {
	switch strings.ToLower(s) {
	case "", "dissim":
		return MetricDISSIM, nil
	case "dtw":
		return MetricDTW, nil
	case "lcss":
		return MetricLCSS, nil
	case "edr":
		return MetricEDR, nil
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownMetric, s)
}

// EvalMetric evaluates metric m between the query and one stored
// trajectory over the window [t1, t2]: DISSIM integrates exactly, the
// baseline metrics run on the window-sliced sample sequences. ok is false
// when either trajectory does not cover the window — exactly the
// trajectories a k-MST query excludes. Every consumer needing the
// reference value (the tree search, the linear-scan oracle, the sharded
// merge) goes through this one function, so their answers are
// bit-identical by construction.
func EvalMetric(m Metric, eps float64, q, tr *trajectory.Trajectory, t1, t2 float64) (float64, bool) {
	if m == MetricDISSIM {
		return dissim.Exact(q, tr, t1, t2)
	}
	if !q.Covers(t1, t2) || !tr.Covers(t1, t2) {
		return 0, false
	}
	qs, ok := q.Slice(t1, t2)
	if !ok {
		return 0, false
	}
	ts, ok := tr.Slice(t1, t2)
	if !ok {
		return 0, false
	}
	switch m {
	case MetricDTW:
		return baselines.DTW(&qs, &ts), true
	case MetricLCSS:
		return baselines.LCSSDistance(&qs, &ts, eps, -1), true
	case MetricEDR:
		return float64(baselines.EDR(&qs, &ts, eps)), true
	}
	return 0, false
}

// validateMetric rejects unusable metric parameters as ErrBadQuery.
func validateMetric(m Metric, eps float64) error {
	if !m.Valid() {
		return fmt.Errorf("%w: invalid metric %d", ErrBadQuery, int(m))
	}
	if m.NeedsEps() && !(eps > 0) {
		return fmt.Errorf("%w: metric %s requires a positive matching tolerance", ErrBadQuery, m)
	}
	return nil
}

// metricBounder computes sound lower bounds on metric m between the query
// and any trajectory summarized by a subtree aggregate (MBB + sample-count
// range). The bounds only ever apply to trajectories covering the query
// window; aggregates proving no member covers it bound to +Inf.
type metricBounder struct {
	m      Metric
	eps    float64
	q      *trajectory.Trajectory
	qs     trajectory.Trajectory // window-sliced query (non-DISSIM metrics)
	t1, t2 float64
}

func newMetricBounder(m Metric, eps float64, q *trajectory.Trajectory, t1, t2 float64) (*metricBounder, error) {
	b := &metricBounder{m: m, eps: eps, q: q, t1: t1, t2: t2}
	if m != MetricDISSIM {
		qs, ok := q.Slice(t1, t2)
		if !ok {
			return nil, fmt.Errorf("%w: query trajectory must cover period [%g, %g]", ErrBadQuery, t1, t2)
		}
		b.qs = qs
	}
	return b, nil
}

// bound lower-bounds metric m for every covering trajectory inside the
// aggregate. maxSamples caps the members' index-time sample counts
// (0 = unknown, disabling the length-difference bound).
func (b *metricBounder) bound(mbb geom.MBB, maxSamples uint32) float64 {
	if mbb.IsEmpty() || mbb.MinT > b.t1 || mbb.MaxT < b.t2 {
		// MinT aggregates the members' start times, MaxT their end times:
		// a subtree whose earliest start is after t1 (or latest end before
		// t2) holds no trajectory covering the window.
		return math.Inf(1)
	}
	switch b.m {
	case MetricDISSIM:
		d, ok := index.MinDistTrajMBB(b.q, mbb, b.t1, b.t2)
		if !ok {
			return math.Inf(1)
		}
		return d * (b.t2 - b.t1)
	case MetricDTW:
		// Every query sample aligns with at least one candidate sample,
		// each at Euclidean cost at least its distance to the box holding
		// every sliced candidate sample (interior samples lie in the MBB;
		// boundary interpolations do too, by convexity of segments).
		r := mbb.Rect()
		var sum float64
		for _, s := range b.qs.Samples {
			sum += r.DistPoint(geom.Point{X: s.X, Y: s.Y})
		}
		return sum
	case MetricLCSS:
		// No query sample within the per-axis eps expansion of the box ⇒
		// no pair can match ⇒ LCSS 0 ⇒ distance 1. Otherwise nothing.
		if b.anyWithinEps(mbb) {
			return 0
		}
		return 1
	case MetricEDR:
		// Without a possible match every aligned pair costs an edit, so
		// EDR ≥ max(n', m') ≥ n'. With matches possible, the length
		// difference still forces EDR ≥ n' − m', and a member's sliced
		// length is at most its sample count + 2 boundary points.
		n := len(b.qs.Samples)
		if !b.anyWithinEps(mbb) {
			return float64(n)
		}
		if maxSamples > 0 {
			if lb := n - int(maxSamples) - 2; lb > 0 {
				return float64(lb)
			}
		}
		return 0
	}
	return 0
}

// anyWithinEps reports whether any sliced query sample lies within the
// per-axis eps expansion of the aggregate's spatial rectangle — the
// necessary condition for an LCSS/EDR match against a member sample.
func (b *metricBounder) anyWithinEps(mbb geom.MBB) bool {
	for _, s := range b.qs.Samples {
		if s.X >= mbb.MinX-b.eps && s.X <= mbb.MaxX+b.eps &&
			s.Y >= mbb.MinY-b.eps && s.Y <= mbb.MaxY+b.eps {
			return true
		}
	}
	return false
}

// metricSearcher carries one metric kNN query's mutable state.
type metricSearcher struct {
	ctx     context.Context
	tree    index.MetricTree
	q       *trajectory.Trajectory
	t1, t2  float64
	m       Metric
	eps     float64
	opts    Options
	bounder *metricBounder
	stats   Stats

	queue    nodeQueue
	exclude  map[trajectory.ID]bool
	hits     []metricHit               // every exactly evaluated candidate
	dists    []float64                 // their distances, kept sorted for τ
	pivotDW  map[trajectory.ID]float64 // cached d_W(q, pivot); NaN = pivot does not cover the window
	heapPops int

	// unseenBound floors everything the search never evaluated: the queue
	// head at early termination / budget exhaustion, and the smallest
	// lower bound among pruned subtrees and entries.
	unseenBound float64
}

type metricHit struct {
	id trajectory.ID
	d  float64
}

// MetricSearchContext answers an exact kNN query under metric m on a
// metric tree: best-first traversal in ascending lower-bound order,
// triangle-inequality pruning against the stored pivot distances and
// covering radii (DISSIM), MBB-derived bounds for the non-metric
// distances, and exact evaluation of every admitted candidate. Results
// are exact (Err 0) and ordered by (distance, TrajID) — bit-identical to
// a linear scan through EvalMetric over the covering trajectories.
//
// Options carry over from the MBB search: budgets degrade the search with
// Stats.Degraded and per-result certification against Stats.CertFloor,
// ExcludeIDs and Trace behave identically, and Options.Data is REQUIRED —
// the tree stores no geometry, so pivots and candidates are fetched from
// the dataset. Options.Parallelism is accepted but a no-op: candidate
// evaluation is already exact and ordered, so there is no refinement
// stage to parallelize, and results are bit-identical at any setting.
func MetricSearchContext(ctx context.Context, tree index.MetricTree, q *trajectory.Trajectory, t1, t2 float64, m Metric, eps float64, opts Options) ([]Result, Stats, error) {
	opts.normalize()
	if q == nil || !(t1 < t2) || !q.Covers(t1, t2) {
		return nil, Stats{}, fmt.Errorf("%w: query trajectory must cover period [%g, %g]", ErrBadQuery, t1, t2)
	}
	if err := validateMetric(m, eps); err != nil {
		return nil, Stats{}, err
	}
	if opts.Data == nil {
		return nil, Stats{}, ErrNoData
	}
	bounder, err := newMetricBounder(m, eps, q, t1, t2)
	if err != nil {
		return nil, Stats{}, err
	}
	s := &metricSearcher{
		ctx: ctx, tree: tree, q: q, t1: t1, t2: t2, m: m, eps: eps,
		opts: opts, bounder: bounder,
		exclude:     make(map[trajectory.ID]bool, len(opts.ExcludeIDs)),
		pivotDW:     make(map[trajectory.ID]float64),
		unseenBound: math.Inf(1),
	}
	for _, id := range opts.ExcludeIDs {
		s.exclude[id] = true
	}
	s.stats.TotalNodes = tree.NumNodes()
	defer func() { flushMetricSearch(&s.stats, s.heapPops) }()
	if err := s.run(); err != nil {
		return nil, s.stats, err
	}
	res := s.finalize()
	if s.stats.TotalNodes > 0 {
		s.stats.PruningPower = 1 - float64(s.stats.NodesAccessed)/float64(s.stats.TotalNodes)
	}
	return res, s.stats, nil
}

// tau is the current k-th smallest exact distance (+Inf with fewer than k
// evaluated candidates): no subtree or entry whose lower bound strictly
// exceeds it can contribute to the final top-k, because a tied distance
// never displaces a strictly smaller one.
func (s *metricSearcher) tau() float64 {
	if len(s.dists) < s.opts.K {
		return math.Inf(1)
	}
	return s.dists[s.opts.K-1]
}

func (s *metricSearcher) run() error {
	if err := index.Canceled(s.ctx); err != nil {
		return err
	}
	root := s.tree.Root()
	if root == storage.NilPage {
		return nil
	}
	rootNode, err := s.tree.ReadMetricNode(root)
	if err != nil {
		return err
	}
	rootBound := s.bounder.bound(rootNode.MBB(), 0)
	if math.IsInf(rootBound, 1) {
		return nil
	}
	heap.Push(&s.queue, queueItem{page: root, dist: rootBound, level: 0})
	s.stats.Enqueued++
	s.emitMetric(TraceEvent{Kind: EventNodeEnqueue, Page: root, Level: 0, MBB: rootNode.MBB(), MinDist: rootBound})

	for s.queue.Len() > 0 {
		if err := index.Canceled(s.ctx); err != nil {
			return err
		}
		if budget := s.budgetExhausted(); budget != "" {
			s.stats.Degraded = true
			s.noteUnseen(s.queue[0].dist)
			s.emitMetric(TraceEvent{Kind: EventBudgetExhausted, Budget: budget, MinDist: s.queue[0].dist})
			return nil
		}
		it := heap.Pop(&s.queue).(queueItem)
		s.heapPops++
		// Early termination: bounds leave the heap in non-decreasing
		// order (children are clamped to their parent), so once the head
		// cannot beat τ nothing remaining can.
		if !s.opts.DisableHeuristic2 && len(s.dists) >= s.opts.K && it.dist > s.tau() {
			s.stats.TerminatedEarly = true
			s.noteUnseen(it.dist)
			s.emitMetric(TraceEvent{
				Kind: EventEarlyTerminate, Page: it.page, Level: it.level,
				MinDist: it.dist, Lo: it.dist, Heuristic: 2, Threshold: s.tau(),
			})
			return nil
		}
		n, err := s.tree.ReadMetricNode(it.page)
		if err != nil {
			return err
		}
		s.stats.NodesAccessed++
		if s.opts.Trace != nil {
			s.opts.Trace(TraceEvent{
				Kind: EventNodeVisit, Page: it.page, Level: it.level, Leaf: n.Leaf,
				MBB: n.MBB(), MinDist: it.dist,
			})
		}
		if n.Leaf {
			s.stats.LeavesAccessed++
			if err := s.processLeaf(n, it.dist); err != nil {
				return err
			}
			continue
		}
		for _, c := range n.Children {
			lb := s.childBound(c)
			if math.IsInf(lb, 1) {
				continue // provably no covering member below
			}
			if lb < it.dist {
				lb = it.dist // the parent's bound covers the subtree too
			}
			if !s.opts.DisableHeuristic2 && len(s.dists) >= s.opts.K && lb > s.tau() {
				s.noteUnseen(lb)
				s.emitMetric(TraceEvent{
					Kind: EventCandidatePrune, Page: c.Page, Level: it.level + 1,
					Lo: lb, Heuristic: 2, Threshold: s.tau(),
				})
				continue
			}
			heap.Push(&s.queue, queueItem{page: c.Page, dist: lb, level: it.level + 1})
			s.stats.Enqueued++
			s.emitMetric(TraceEvent{
				Kind: EventNodeEnqueue, Page: c.Page, Level: it.level + 1,
				MBB: c.MBB, MinDist: lb,
			})
		}
	}
	return nil
}

// childBound lower-bounds metric m for every covering trajectory in the
// child's subtree: the aggregate MBB bound, tightened for DISSIM by the
// triangle inequality d_W(q, x) ≥ d_W(q, pivot) − Radius. The triangle
// form is sound because members covering the window W share it with the
// pivot, so their window distance to the pivot is at most their base
// distance (non-negative integrand), which the radius covers.
func (s *metricSearcher) childBound(c index.MetricChildEntry) float64 {
	lb := s.bounder.bound(c.MBB, c.MaxSamples)
	if s.m != MetricDISSIM || math.IsInf(lb, 1) || math.IsInf(c.Radius, 1) {
		return lb
	}
	if dqp, ok := s.pivotWindowDist(c.PivotID); ok {
		if tri := dqp - c.Radius; tri > lb {
			lb = tri
		}
	}
	return lb
}

// pivotWindowDist returns DISSIM(q, pivot) over the query window, cached
// per pivot. ok is false when the pivot does not cover the window (the
// triangle bound then does not apply).
func (s *metricSearcher) pivotWindowDist(id trajectory.ID) (float64, bool) {
	if d, ok := s.pivotDW[id]; ok {
		return d, !math.IsNaN(d)
	}
	p := s.opts.Data.Get(id)
	if p == nil {
		s.pivotDW[id] = math.NaN()
		return 0, false
	}
	d, ok := dissim.Exact(s.q, p, s.t1, s.t2)
	if !ok {
		s.pivotDW[id] = math.NaN()
		return 0, false
	}
	s.pivotDW[id] = d
	return d, true
}

// processLeaf admits and exactly evaluates the leaf's covering members,
// pruning entries whose lower bound proves they cannot reach the top-k.
func (s *metricSearcher) processLeaf(n *index.MetricNode, nodeBound float64) error {
	for _, e := range n.Leaves {
		if s.exclude[e.TrajID] {
			continue
		}
		if e.MBB.MinT > s.t1 || e.MBB.MaxT < s.t2 {
			continue // this member provably does not cover the window
		}
		lb := s.entryBound(n.PivotID, e)
		if lb < nodeBound {
			lb = nodeBound
		}
		if !s.opts.DisableHeuristic1 && len(s.dists) >= s.opts.K && lb > s.tau() {
			s.stats.Rejected++
			s.noteUnseen(lb)
			s.emitMetric(TraceEvent{
				Kind: EventCandidatePrune, TrajID: e.TrajID, Lo: lb,
				Heuristic: 1, Threshold: s.tau(),
			})
			continue
		}
		tr := s.opts.Data.Get(e.TrajID)
		if tr == nil {
			// A leaf naming a trajectory the store cannot resolve is
			// index/store inconsistency — the same class as a torn page.
			return fmt.Errorf("%w: metric index references unknown trajectory %d", index.ErrCorruptNode, e.TrajID)
		}
		s.emitMetric(TraceEvent{Kind: EventCandidateAdmit, TrajID: e.TrajID, Lo: lb, Hi: math.Inf(1)})
		d, ok := EvalMetric(s.m, s.eps, s.q, tr, s.t1, s.t2)
		if !ok {
			continue
		}
		s.stats.Completed++
		s.stats.ExactRefined++
		s.hits = append(s.hits, metricHit{id: e.TrajID, d: d})
		i := sort.SearchFloat64s(s.dists, d)
		s.dists = append(s.dists, 0)
		copy(s.dists[i+1:], s.dists[i:])
		s.dists[i] = d
		s.emitMetric(TraceEvent{Kind: EventCandidateComplete, TrajID: e.TrajID, Lo: d, Hi: d, Exact: d})
	}
	return nil
}

// entryBound lower-bounds metric m for one covering leaf member: the
// entry MBB bound, tightened for DISSIM by the leaf-pivot triangle bound
// d_W(q, x) ≥ d_W(q, pivot) − DistToPivot (the stored base distance upper
// bounds the window distance, never the reverse — so only this direction
// of the triangle inequality is sound).
func (s *metricSearcher) entryBound(pivotID trajectory.ID, e index.MetricLeafEntry) float64 {
	lb := s.bounder.bound(e.MBB, e.Samples)
	if s.m != MetricDISSIM || math.IsInf(lb, 1) || math.IsInf(e.DistToPivot, 1) {
		return lb
	}
	if dqp, ok := s.pivotWindowDist(pivotID); ok {
		if tri := dqp - e.DistToPivot; tri > lb {
			lb = tri
		}
	}
	return lb
}

func (s *metricSearcher) budgetExhausted() string {
	if s.opts.MaxNodeAccesses > 0 && s.stats.NodesAccessed >= s.opts.MaxNodeAccesses {
		return "nodes"
	}
	if s.opts.MaxIOReads > 0 && s.opts.IOReads != nil && s.opts.IOReads() >= s.opts.MaxIOReads {
		return "io"
	}
	return ""
}

func (s *metricSearcher) noteUnseen(lb float64) {
	if lb < s.unseenBound {
		s.unseenBound = lb
	}
}

func (s *metricSearcher) emitMetric(ev TraceEvent) {
	if s.opts.Trace != nil {
		s.opts.Trace(ev)
	}
}

// finalize ranks the exactly evaluated candidates by (distance, TrajID),
// truncates to k, and certifies: a completed search proves every result;
// a degraded one certifies a result only when nothing unseen (queued,
// pruned, or merged out) can lie below it.
func (s *metricSearcher) finalize() []Result {
	sort.Slice(s.hits, func(i, j int) bool {
		if !geom.ExactEq(s.hits[i].d, s.hits[j].d) {
			return s.hits[i].d < s.hits[j].d
		}
		return s.hits[i].id < s.hits[j].id
	})
	floor := s.unseenBound
	hits := s.hits
	if len(hits) > s.opts.K {
		for _, h := range hits[s.opts.K:] {
			if h.d < floor {
				floor = h.d
			}
		}
		hits = hits[:s.opts.K]
	}
	s.stats.CertFloor = floor
	out := make([]Result, len(hits))
	for i, h := range hits {
		out[i] = Result{TrajID: h.id, Dissim: h.d, Err: 0, Certified: true}
		if s.stats.Degraded {
			out[i].Certified = h.d <= floor
		}
	}
	return out
}

// flushMetricSearch publishes a metric search's counters into the same
// process-wide registry the MBB search feeds.
func flushMetricSearch(st *Stats, heapPops int) {
	metSearches.Inc()
	metNodesVisited.Add(uint64(st.NodesAccessed))
	metLeavesRead.Add(uint64(st.LeavesAccessed))
	metHeapPushes.Add(uint64(st.Enqueued))
	metHeapPops.Add(uint64(heapPops))
	metPruneH1.Add(uint64(st.Rejected))
	if st.TerminatedEarly {
		metPruneH2.Inc()
	}
	metExactEvals.Add(uint64(st.ExactRefined))
	if st.Degraded {
		metDegraded.Inc()
	}
	metNodesPerQ.Observe(float64(st.NodesAccessed))
}

// MetricLowerBound returns a certified lower bound on metric m between
// the query and every covering trajectory the tree stores, at the cost of
// one root-page read — the metric-tree analogue of LowerBound, and the
// value a scatter-gather coordinator uses for shard pruning. +Inf means
// provably no stored trajectory covers the period.
func MetricLowerBound(tree index.MetricTree, q *trajectory.Trajectory, t1, t2 float64, m Metric, eps float64) (float64, error) {
	if q == nil || !(t1 < t2) || !q.Covers(t1, t2) {
		return 0, fmt.Errorf("%w: query trajectory must cover period [%g, %g]", ErrBadQuery, t1, t2)
	}
	if err := validateMetric(m, eps); err != nil {
		return 0, err
	}
	root := tree.Root()
	if root == storage.NilPage {
		return math.Inf(1), nil
	}
	n, err := tree.ReadMetricNode(root)
	if err != nil {
		return 0, err
	}
	bounder, err := newMetricBounder(m, eps, q, t1, t2)
	if err != nil {
		return 0, err
	}
	var maxSamples uint32
	if n.Leaf {
		for _, e := range n.Leaves {
			if e.Samples > maxSamples {
				maxSamples = e.Samples
			}
		}
	} else {
		for _, c := range n.Children {
			if c.MaxSamples > maxSamples {
				maxSamples = c.MaxSamples
			}
		}
	}
	return bounder.bound(n.MBB(), maxSamples), nil
}
