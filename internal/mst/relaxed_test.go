package mst

import (
	"math"
	"math/rand"
	"testing"

	"mstsearch/internal/dissim"
	"mstsearch/internal/trajectory"
)

func lineAt(id trajectory.ID, t0, dur float64, n int) trajectory.Trajectory {
	tr := trajectory.Trajectory{ID: id, Samples: make([]trajectory.Sample, n)}
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		tr.Samples[i] = trajectory.Sample{X: 100 * f, Y: 0, T: t0 + dur*f}
	}
	return tr
}

func TestShiftTime(t *testing.T) {
	tr := lineAt(1, 0, 10, 5)
	sh := ShiftTime(&tr, 3.5)
	if sh.StartTime() != 3.5 || sh.EndTime() != 13.5 {
		t.Fatalf("shifted span [%v, %v]", sh.StartTime(), sh.EndTime())
	}
	// Original untouched; spatial course unchanged.
	if tr.StartTime() != 0 {
		t.Fatal("ShiftTime must not mutate its input")
	}
	for i := range sh.Samples {
		if sh.Samples[i].X != tr.Samples[i].X {
			t.Fatal("shift must not move positions")
		}
	}
}

func TestRelaxedDissimFindsKnownOffset(t *testing.T) {
	// T drives the same course as Q but 7 time units later. The relaxed
	// dissimilarity must be ~0 at offset ~7.
	q := lineAt(0, 0, 10, 21)
	tr := lineAt(1, 7, 10, 33) // different sampling rate too
	d, off, ok := RelaxedDissim(&q, &tr, RelaxedOptions{})
	if !ok {
		t.Fatal("feasible shift expected")
	}
	if math.Abs(off-7) > 1e-3 {
		t.Fatalf("offset = %v, want ≈7", off)
	}
	if d > 1e-6 {
		t.Fatalf("relaxed dissim = %v, want ≈0", d)
	}
}

func TestRelaxedDissimInfeasible(t *testing.T) {
	q := lineAt(0, 0, 10, 5)
	short := lineAt(1, 0, 5, 5) // lifespan shorter than the query
	if _, _, ok := RelaxedDissim(&q, &short, RelaxedOptions{}); ok {
		t.Fatal("shorter candidate must be infeasible")
	}
}

func TestRelaxedDissimExactFitSingleOffset(t *testing.T) {
	// Candidate exactly as long as the query: only offset lo==hi feasible.
	q := lineAt(0, 3, 10, 11)
	tr := lineAt(1, 20, 10, 11)
	d, off, ok := RelaxedDissim(&q, &tr, RelaxedOptions{})
	if !ok || math.Abs(off-17) > 1e-12 {
		t.Fatalf("off=%v ok=%v, want 17", off, ok)
	}
	if d > 1e-9 {
		t.Fatalf("d = %v", d)
	}
}

// The relaxed dissimilarity can never exceed the fixed-time dissimilarity
// when offset 0 is feasible.
func TestRelaxedNeverWorseThanFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 30; iter++ {
		mk := func(id trajectory.ID, t0, dur float64) trajectory.Trajectory {
			n := 8 + rng.Intn(20)
			tr := trajectory.Trajectory{ID: id, Samples: make([]trajectory.Sample, n)}
			x, y := rng.Float64()*50, rng.Float64()*50
			for i := 0; i < n; i++ {
				tr.Samples[i] = trajectory.Sample{X: x, Y: y, T: t0 + dur*float64(i)/float64(n-1)}
				x += rng.NormFloat64() * 3
				y += rng.NormFloat64() * 3
			}
			return tr
		}
		q := mk(0, 2, 6)
		tr := mk(1, 0, 10)
		fixed, ok := dissim.Exact(&q, &tr, q.StartTime(), q.EndTime())
		if !ok {
			t.Fatal("offset 0 should be feasible")
		}
		relaxed, _, ok := RelaxedDissim(&q, &tr, RelaxedOptions{})
		if !ok {
			t.Fatal("relaxed should be feasible")
		}
		if relaxed > fixed+1e-9 {
			t.Fatalf("iter %d: relaxed %v > fixed %v", iter, relaxed, fixed)
		}
	}
}

func TestRelaxedScanRanking(t *testing.T) {
	// Three candidates: same course shifted by 5 (perfect under relaxed),
	// same course offset spatially by 3 (imperfect at any shift), and a
	// far-away course. The relaxed ranking must order them exactly.
	q := lineAt(0, 0, 10, 15)
	same := lineAt(1, 5, 10, 25)
	shifted := lineAt(2, 5, 10, 25)
	for i := range shifted.Samples {
		shifted.Samples[i].Y = 3
	}
	far := lineAt(3, 0, 20, 25)
	for i := range far.Samples {
		far.Samples[i].Y = 500
	}
	data, err := trajectory.NewDataset([]trajectory.Trajectory{same, shifted, far})
	if err != nil {
		t.Fatal(err)
	}
	res := RelaxedScan(data, &q, 3, RelaxedOptions{})
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].TrajID != 1 || res[1].TrajID != 2 || res[2].TrajID != 3 {
		t.Fatalf("ranking = %+v", res)
	}
	if res[0].Dissim > 1e-6 {
		t.Fatalf("twin dissim = %v", res[0].Dissim)
	}
	// The spatially shifted twin's optimum is the constant-offset area 3·10.
	if math.Abs(res[1].Dissim-30) > 0.5 {
		t.Fatalf("offset twin dissim = %v, want ≈30", res[1].Dissim)
	}
}

func TestRelaxedScanKClamp(t *testing.T) {
	q := lineAt(0, 0, 10, 5)
	tr := lineAt(1, 0, 10, 5)
	data, _ := trajectory.NewDataset([]trajectory.Trajectory{tr})
	if got := RelaxedScan(data, &q, 0, RelaxedOptions{}); len(got) != 1 {
		t.Fatalf("k=0 should clamp to 1, got %d results", len(got))
	}
}
