// Package mst implements BFMSTSearch, the paper's best-first k-Most-
// Similar-Trajectory algorithm (§4) over any index.Tree. The algorithm
// visits tree nodes in increasing MINDIST order, incrementally assembles
// per-candidate dissimilarity state (the Valid / Completed / Rejected
// structures of Fig. 7), and prunes with:
//
//   - Heuristic 1: a candidate whose OPTDISSIM exceeds the current k-th
//     best upper bound can never be an answer → Rejected;
//   - Heuristic 2: once a node's MINDISSIMINC exceeds the k-th best upper
//     bound, that node and — because nodes are reported in MINDIST order —
//     every remaining node can be discarded, terminating the search.
//
// Error management (§4.4) is integrated throughout: every comparison uses
// certified bounds (approximation ± Lemma 1 error), and an optional
// post-processing step recomputes the exact DISSIM of the candidates whose
// error intervals straddle the k-th boundary.
package mst

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"mstsearch/internal/debugassert"
	"mstsearch/internal/dissim"
	"mstsearch/internal/geom"
	"mstsearch/internal/index"
	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

// Options configures a search.
type Options struct {
	// K is the number of most similar trajectories to return (default 1).
	K int
	// Vmax is the maximum relative speed — the sum of the maximum speed of
	// indexed trajectories and the query's maximum speed (Table 1). It
	// powers the speed-dependent OPTDISSIM/PESDISSIM bounds; if ≤ 0 those
	// bounds are disabled and only speed-independent pruning is used.
	Vmax float64
	// Refine is the per-interval trapezoid refinement factor (≥ 1;
	// 1 reproduces Lemma 1 exactly as stated).
	Refine int
	// DisableHeuristic1 turns off OPTDISSIM-based candidate rejection
	// (ablation).
	DisableHeuristic1 bool
	// DisableHeuristic2 turns off MINDISSIMINC-based early termination
	// (ablation).
	DisableHeuristic2 bool
	// Data, when non-nil, enables the §4.4 post-processing step: exact
	// DISSIM recomputation for candidates whose error intervals overlap
	// the k-th boundary.
	Data *trajectory.Dataset
	// ExcludeIDs are trajectories never reported (nor used to tighten
	// bounds) — typically the query's own stored twin when searching "more
	// like this one".
	ExcludeIDs []trajectory.ID
	// MaxNodeAccesses bounds the number of tree nodes the search may read
	// (0 = unlimited). On exhaustion the search degrades gracefully: it
	// returns the best-effort top-k assembled so far with Stats.Degraded
	// set, never exceeding the budget.
	MaxNodeAccesses int
	// MaxIOReads bounds the physical page reads (buffer misses) the search
	// may cause (0 = unlimited). IOReads must be set for the bound to take
	// effect; it is sampled between node pops, so a single node read may
	// overshoot by one page.
	MaxIOReads uint64
	// IOReads reports the physical reads attributed to this search so far —
	// typically a closure over the query's buffer-pool miss counter.
	IOReads func() uint64
	// Parallelism bounds the worker goroutines of the §4.4 exact-refinement
	// step: the independent exact-DISSIM integrals of the candidates
	// selected for refinement are computed concurrently, while candidate
	// selection and admission stay on the main goroutine. Workers only
	// compute pure functions of immutable inputs and their values are
	// applied in the serial order, so results, stats, and Certified flags
	// are bit-identical to the serial search. Values <= 1 mean serial.
	Parallelism int
	// Trace, when non-nil, receives one typed TraceEvent per search step
	// (node visits with MBB and MINDIST, candidate admissions and prunes
	// with certified bounds, refinement progress, budget exhaustion),
	// synchronously from the searching goroutine. A nil hook costs one
	// branch per step and allocates nothing. Tracing never changes what
	// the search computes.
	Trace func(TraceEvent)
}

func (o *Options) normalize() {
	if o.K < 1 {
		o.K = 1
	}
	if o.Refine < 1 {
		o.Refine = 1
	}
}

// Result is one answer of a k-MST query, ordered most similar first.
type Result struct {
	TrajID trajectory.ID
	// Dissim is the trajectory's dissimilarity from the query: exact when
	// the post-processing step ran for it (Err == 0), otherwise the
	// trapezoid approximation with Err its certified bound.
	Dissim float64
	Err    float64
	// Certified reports whether the result is provably a member of the
	// true top-k. Searches that run to completion certify every result;
	// a budget-degraded search certifies a result only when no unexplored
	// or partially-explored trajectory can beat it (its upper bound lies
	// below every unexplored lower bound). Uncertified results are the
	// best effort seen so far and may be displaced by unexplored data.
	Certified bool
}

// Stats reports the work a search performed.
type Stats struct {
	NodesAccessed   int     // tree nodes popped and read
	LeavesAccessed  int     // of which leaves
	TotalNodes      int     // nodes in the tree
	PruningPower    float64 // 1 − NodesAccessed/TotalNodes
	Enqueued        int     // heap insertions
	Completed       int     // candidates fully assembled
	Rejected        int     // candidates pruned by Heuristic 1
	TerminatedEarly bool    // Heuristic 2 fired before queue exhaustion
	ExactRefined    int     // candidates recomputed exactly in post-processing
	TrapezoidEvals  int     // Lemma 1 trapezoid interval evaluations
	// Degraded reports that a budget (MaxNodeAccesses / MaxIOReads) ran out
	// before the search could finish: the results are the best effort
	// assembled so far, with per-result Certified flags separating proven
	// answers from provisional ones.
	Degraded bool
	// CertFloor is a certified lower bound on the DISSIM of every
	// trajectory covering the query period that is NOT among the returned
	// results: unexplored subtrees are floored by the MINDIST of the next
	// unprocessed node, partially assembled and rejected candidates by
	// their certified lo. +Inf when the search can prove nothing was left
	// behind (every covering trajectory was returned). A distributed
	// coordinator merges per-shard answers soundly by comparing a result's
	// pessimistic bound against the other shards' floors. Only meaningful
	// on a nil-error search.
	CertFloor float64
}

// ErrBadQuery reports an unusable query: a trajectory not covering the
// query period, an inverted period, or metric parameters the target
// index cannot serve. Wrap sites append the specific complaint.
var ErrBadQuery = errors.New("mst: bad query")

// ErrCanceled reports a search abandoned because its context was canceled
// or its deadline expired (it also wraps the context's own error).
var ErrCanceled = index.ErrCanceled

// ErrDeadlineExceeded refines ErrCanceled for the deadline case; errors
// wrapping it also wrap ErrCanceled and context.DeadlineExceeded.
var ErrDeadlineExceeded = index.ErrDeadlineExceeded

// queueItem is a tree node awaiting processing, keyed by MINDIST. level is
// the node's depth below the root (root = 0), carried for tracing.
type queueItem struct {
	page  storage.PageID
	dist  float64
	level int
}

type nodeQueue []queueItem

func (q nodeQueue) Len() int           { return len(q) }
func (q nodeQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nodeQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x any)        { *q = append(*q, x.(queueItem)) }
func (q *nodeQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

type candState int

const (
	stateValid candState = iota
	stateCompleted
	stateRejected
)

// candidate is the per-trajectory search state: its Partial interval list
// plus the certified [lo, hi] interval its exact DISSIM must lie in.
type candidate struct {
	id      trajectory.ID
	partial *dissim.Partial
	state   candState
	lo, hi  float64
}

// searcher carries one query's mutable state.
type searcher struct {
	ctx   context.Context
	tree  index.Tree
	q     *trajectory.Trajectory
	t1    float64
	t2    float64
	opts  Options
	stats Stats

	queue nodeQueue
	cands map[trajectory.ID]*candidate

	tau      float64 // cached k-th smallest hi over candidates
	tauDirty bool

	// unseenDist is the MINDIST of the next unprocessed node at the moment
	// the search stopped visiting nodes — set when a budget runs out or
	// Heuristic 2 terminates early, +Inf when the queue drained naturally.
	// No trajectory confined to unexplored subtrees can have DISSIM below
	// unseenDist · (t2 − t1): the speed-independent half of Stats.CertFloor
	// and the certification floor of degraded results.
	unseenDist float64

	segTraj trajectory.Trajectory // reusable 2-sample wrapper

	heapPops int // pop operations (>= NodesAccessed; tracing/metrics only)

	// lastPop tracks the best-first monotonicity invariant under the
	// debugassert build tag: MINDIST values must leave the heap in
	// non-decreasing order (distances are >= 0, so the zero value is a
	// valid floor).
	lastPop float64
}

// Search runs BFMSTSearch on the tree for query trajectory q during
// [t1, t2], returning the k most similar trajectories (most similar first)
// and the search statistics.
func Search(tree index.Tree, q *trajectory.Trajectory, t1, t2 float64, opts Options) ([]Result, Stats, error) {
	return SearchContext(context.Background(), tree, q, t1, t2, opts)
}

// SearchContext is Search under a context: cancellation is checked between
// node pops, so a canceled or expired query returns promptly with an error
// wrapping ErrCanceled (and the context's own error) instead of running to
// completion.
func SearchContext(ctx context.Context, tree index.Tree, q *trajectory.Trajectory, t1, t2 float64, opts Options) ([]Result, Stats, error) {
	opts.normalize()
	if q == nil || !(t1 < t2) || !q.Covers(t1, t2) {
		return nil, Stats{}, fmt.Errorf("%w: query trajectory must cover period [%g, %g]", ErrBadQuery, t1, t2)
	}
	s := &searcher{
		ctx:        ctx,
		tree:       tree,
		q:          q,
		t1:         t1,
		t2:         t2,
		opts:       opts,
		cands:      make(map[trajectory.ID]*candidate),
		tau:        math.Inf(1),
		tauDirty:   false,
		unseenDist: math.Inf(1),
	}
	s.stats.TotalNodes = tree.NumNodes()
	s.segTraj.Samples = make([]trajectory.Sample, 2)
	for _, id := range opts.ExcludeIDs {
		s.cands[id] = &candidate{id: id, state: stateRejected, hi: math.Inf(1)}
	}
	defer func() { s.flushMetrics(s.heapPops) }()
	if err := s.run(); err != nil {
		return nil, s.stats, err
	}
	res := s.finalize()
	if s.stats.TotalNodes > 0 {
		s.stats.PruningPower = 1 - float64(s.stats.NodesAccessed)/float64(s.stats.TotalNodes)
	}
	return res, s.stats, nil
}

func (s *searcher) run() error {
	// A context dead on arrival aborts before the first page is touched.
	if err := index.Canceled(s.ctx); err != nil {
		return err
	}
	root := s.tree.Root()
	if root == storage.NilPage {
		return nil
	}
	// Read the root node directly rather than through RootMBB, which
	// swallows read errors into an empty bound — a corrupt or faulted root
	// page must surface as a typed error, never as an empty result set.
	rootNode, err := s.tree.ReadNode(root)
	if err != nil {
		return err
	}
	rootMBB := rootNode.MBB()
	if !rootMBB.OverlapsTime(s.t1, s.t2) {
		return nil
	}
	d, ok := index.MinDistTrajMBB(s.q, rootMBB, s.t1, s.t2)
	if !ok {
		return nil
	}
	heap.Push(&s.queue, queueItem{page: root, dist: d, level: 0})
	s.stats.Enqueued++
	s.emit(TraceEvent{Kind: EventNodeEnqueue, Page: root, Level: 0, MBB: rootMBB, MinDist: d})

	for s.queue.Len() > 0 {
		// Cancellation and budget checks sit between node pops: the search
		// never starts a node read it is not entitled to, so NodesAccessed
		// can never exceed MaxNodeAccesses.
		if err := index.Canceled(s.ctx); err != nil {
			return err
		}
		if budget := s.budgetExhausted(); budget != "" {
			s.stats.Degraded = true
			s.unseenDist = s.queue[0].dist
			s.emit(TraceEvent{Kind: EventBudgetExhausted, Budget: budget, MinDist: s.unseenDist})
			return nil
		}

		it := heap.Pop(&s.queue).(queueItem)
		s.heapPops++
		if debugassert.Enabled {
			debugassert.Assertf(it.dist >= s.lastPop,
				"best-first order violated: popped MINDIST %v after %v (page %d)",
				it.dist, s.lastPop, it.page)
			s.lastPop = it.dist
		}

		// Heuristic 2: MINDISSIMINC test. Because nodes pop in MINDIST
		// order, a positive test terminates the whole search (paper lines
		// 5-7).
		if !s.opts.DisableHeuristic2 && s.completedCount() >= s.opts.K {
			if m := s.minDissimInc(it.dist); m > s.threshold() {
				s.stats.TerminatedEarly = true
				s.unseenDist = it.dist
				s.emit(TraceEvent{
					Kind: EventEarlyTerminate, Page: it.page, Level: it.level,
					MinDist: it.dist, Lo: m, Heuristic: 2, Threshold: s.threshold(),
				})
				return nil
			}
		}

		n, err := s.tree.ReadNode(it.page)
		if err != nil {
			return err
		}
		s.stats.NodesAccessed++
		if s.opts.Trace != nil { // guard: n.MBB() walks the node's entries
			s.opts.Trace(TraceEvent{
				Kind: EventNodeVisit, Page: it.page, Level: it.level, Leaf: n.Leaf,
				MBB: n.MBB(), MinDist: it.dist,
			})
		}
		if n.Leaf {
			s.stats.LeavesAccessed++
			s.processLeaf(n, it.dist)
			continue
		}
		for _, c := range n.Children {
			if !c.MBB.OverlapsTime(s.t1, s.t2) {
				continue
			}
			d, ok := index.MinDistTrajMBB(s.q, c.MBB, s.t1, s.t2)
			if !ok {
				continue
			}
			if d < it.dist {
				d = it.dist // enforce MINDIST monotonicity under round-off
			}
			heap.Push(&s.queue, queueItem{page: c.Page, dist: d, level: it.level + 1})
			s.stats.Enqueued++
			s.emit(TraceEvent{
				Kind: EventNodeEnqueue, Page: c.Page, Level: it.level + 1,
				MBB: c.MBB, MinDist: d,
			})
		}
	}
	return nil
}

// budgetExhausted names the per-query resource budget that has run out
// ("nodes" or "io"), or "" while the search is still within budget. Both
// budgets degrade the search instead of failing it: partial answers with
// an honest Degraded flag beat an error on a query that already did most
// of its work.
func (s *searcher) budgetExhausted() string {
	if s.opts.MaxNodeAccesses > 0 && s.stats.NodesAccessed >= s.opts.MaxNodeAccesses {
		return "nodes"
	}
	if s.opts.MaxIOReads > 0 && s.opts.IOReads != nil && s.opts.IOReads() >= s.opts.MaxIOReads {
		return "io"
	}
	return ""
}

// processLeaf sweeps the leaf's entries (paper lines 9-30). Entries are
// handled in temporal order; the TB-tree stores them that way already and
// the sort is cheap for R-tree leaves.
func (s *searcher) processLeaf(n *index.Node, nodeDist float64) {
	entries := n.Leaves
	if !sort.SliceIsSorted(entries, func(i, j int) bool { return entries[i].Seg.A.T < entries[j].Seg.A.T }) {
		sorted := make([]index.LeafEntry, len(entries))
		copy(sorted, entries)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seg.A.T < sorted[j].Seg.A.T })
		entries = sorted
	}
	for _, e := range entries {
		if e.Seg.B.T < s.t1 || e.Seg.A.T > s.t2 {
			continue
		}
		cand, rejected := s.candidateFor(e.TrajID)
		if rejected {
			continue
		}
		s.addEntry(cand, e)
		s.updateCandidate(cand, nodeDist)
	}
}

// candidateFor fetches or creates the candidate list for a trajectory,
// reporting whether it is already rejected (paper lines 12-13).
func (s *searcher) candidateFor(id trajectory.ID) (*candidate, bool) {
	c, ok := s.cands[id]
	if !ok {
		c = &candidate{
			id:      id,
			partial: dissim.NewPartial(s.t1, s.t2),
			lo:      0,
			hi:      math.Inf(1),
		}
		s.cands[id] = c
		s.emit(TraceEvent{Kind: EventCandidateAdmit, TrajID: id, Lo: c.lo, Hi: c.hi})
		return c, false
	}
	return c, c.state == stateRejected
}

// addEntry aligns one indexed segment with the query over their common
// window and folds the resulting intervals into the candidate's Partial
// (paper lines 15-18: interpolation + DISSIM/bounds bookkeeping).
func (s *searcher) addEntry(c *candidate, e index.LeafEntry) {
	lo := math.Max(s.t1, e.Seg.A.T)
	hi := math.Min(s.t2, e.Seg.B.T)
	if lo >= hi {
		return
	}
	s.segTraj.ID = e.TrajID
	s.segTraj.Samples[0] = trajectory.Sample{X: e.Seg.A.X, Y: e.Seg.A.Y, T: e.Seg.A.T}
	s.segTraj.Samples[1] = trajectory.Sample{X: e.Seg.B.X, Y: e.Seg.B.Y, T: e.Seg.B.T}
	trajectory.ForEachAligned(s.q, &s.segTraj, lo, hi, func(qs, ts geom.Segment) bool {
		c.partial.Add(dissim.IntervalOf(qs, ts, s.opts.Refine))
		s.stats.TrapezoidEvals++
		return true
	})
}

// updateCandidate refreshes the candidate's certified bounds after new
// intervals arrived, completing or rejecting it (paper lines 19-27).
func (s *searcher) updateCandidate(c *candidate, nodeDist float64) {
	if c.state != stateValid {
		return
	}
	if c.partial.Complete() {
		v := c.partial.Known()
		c.lo, c.hi = v.Lower(), v.Upper()
		if debugassert.Enabled {
			assertBounds(c)
		}
		c.state = stateCompleted
		s.stats.Completed++
		s.tauDirty = true
		s.emit(TraceEvent{Kind: EventCandidateComplete, TrajID: c.id, Lo: c.lo, Hi: c.hi})
		return
	}
	// Lower bound: speed-independent OPTDISSIMINC always applies; the
	// speed-dependent OPTDISSIM tightens it when Vmax is known.
	lo := c.partial.OptDissimInc(nodeDist)
	if s.opts.Vmax > 0 {
		lo = math.Max(lo, c.partial.OptDissim(s.opts.Vmax))
	}
	c.lo = lo
	if s.opts.Vmax > 0 {
		hi := c.partial.PesDissim(s.opts.Vmax)
		if hi < c.hi {
			c.hi = hi
			s.tauDirty = true
		}
	}
	if debugassert.Enabled {
		assertBounds(c)
	}
	if !s.opts.DisableHeuristic1 && c.lo > s.threshold() {
		c.state = stateRejected
		s.stats.Rejected++
		s.emit(TraceEvent{
			Kind: EventCandidatePrune, TrajID: c.id, Lo: c.lo, Hi: c.hi,
			Heuristic: 1, Threshold: s.threshold(),
		})
	}
}

// assertBounds checks the §4.4 certified-interval ordering lo <= hi
// (OPTDISSIM <= PESDISSIM), with relative slack for round-off between
// the independently computed bound formulas.
func assertBounds(c *candidate) {
	slack := 1e-9 * (1 + math.Abs(c.hi))
	debugassert.Assertf(c.lo <= c.hi+slack,
		"candidate %d certified bounds inverted: lo %v > hi %v", c.id, c.lo, c.hi)
}

// threshold returns τ: the k-th smallest certified upper bound over all
// live candidates — no true answer can have DISSIM above it. It is +Inf
// until k candidates have finite upper bounds.
func (s *searcher) threshold() float64 {
	if !s.tauDirty {
		return s.tau
	}
	his := make([]float64, 0, len(s.cands))
	for _, c := range s.cands {
		if c.state == stateRejected {
			continue
		}
		if !math.IsInf(c.hi, 1) {
			his = append(his, c.hi)
		}
	}
	if len(his) < s.opts.K {
		s.tau = math.Inf(1)
	} else {
		sort.Float64s(his)
		s.tau = his[s.opts.K-1]
	}
	s.tauDirty = false
	return s.tau
}

// completedCount returns the number of completed candidates.
func (s *searcher) completedCount() int { return s.stats.Completed }

// minDissimInc evaluates MINDISSIMINC (Definition 6) for the node about to
// be processed: the smaller of MINDIST·period and the best OPTDISSIMINC
// over the still-valid partially retrieved candidates (the set SC). The
// paper's shortcut applies: when MINDIST·period alone cannot exceed the
// threshold, the SC scan is skipped.
func (s *searcher) minDissimInc(nodeDist float64) float64 {
	span := s.t2 - s.t1
	m := nodeDist * span
	if m <= s.threshold() {
		return m
	}
	for _, c := range s.cands {
		if c.state != stateValid {
			continue
		}
		if v := c.partial.OptDissimInc(nodeDist); v < m {
			m = v
			if m <= s.threshold() {
				break
			}
		}
	}
	return m
}

// finalize ranks completed candidates, optionally refines the boundary
// cases exactly (§4.4 post-processing), and returns the k best.
func (s *searcher) finalize() []Result {
	var done []*candidate
	for _, c := range s.cands {
		if c.state == stateCompleted {
			done = append(done, c)
		}
	}
	sort.Slice(done, func(i, j int) bool {
		vi := s.midpoint(done[i])
		vj := s.midpoint(done[j])
		if !geom.ExactEq(vi, vj) {
			return vi < vj
		}
		return done[i].id < done[j].id
	})
	if len(done) == 0 {
		s.stats.CertFloor = s.certificationFloor(nil)
		return nil
	}

	k := s.opts.K
	if s.opts.Data != nil && len(done) > 0 {
		// Exact refinement (§4.4 post-processing) for every candidate that
		// could belong to the top k: anything whose certified lower bound
		// does not exceed the k-th smallest upper bound. This covers both
		// the returned results (their reported values become exact) and
		// the boundary cases whose order the approximation error could
		// scramble.
		bIdx := k - 1
		if bIdx >= len(done) {
			bIdx = len(done) - 1
		}
		boundary := done[bIdx].hi
		var toRefine []*candidate
		for _, c := range done {
			if c.lo <= boundary && c.err() > 0 {
				toRefine = append(toRefine, c)
			}
		}
		s.refineAll(toRefine)
		sort.Slice(done, func(i, j int) bool {
			vi := s.midpoint(done[i])
			vj := s.midpoint(done[j])
			if !geom.ExactEq(vi, vj) {
				return vi < vj
			}
			return done[i].id < done[j].id
		})
	}

	if len(done) > k {
		done = done[:k]
	}
	out := make([]Result, len(done))
	for i, c := range done {
		out[i] = Result{TrajID: c.id, Dissim: s.midpoint(c), Err: c.err(), Certified: true}
	}
	// A completed search proves every returned result (the algorithm's
	// exactness guarantee). A budget-degraded search certifies only the
	// results no unexplored or partially-explored trajectory can displace.
	floor := s.certificationFloor(done)
	s.stats.CertFloor = floor
	if s.stats.Degraded {
		for i, c := range done {
			out[i].Certified = c.hi <= floor
		}
	}
	return out
}

// certificationFloor returns a lower bound on the DISSIM of every
// trajectory NOT among the returned results: nodes still queued pop in
// MINDIST order, so anything unexplored has DISSIM ≥ unseenDist · period
// (speed-independent bound; +Inf when the queue drained); partially
// assembled, completed-but-dropped, and rejected candidates are bounded by
// their certified lo. A returned result whose upper bound lies below this
// floor is provably in the true top-k, and a distributed merge can use the
// floor (Stats.CertFloor) to rule out contributions from this tree.
func (s *searcher) certificationFloor(returned []*candidate) float64 {
	floor := s.unseenDist * (s.t2 - s.t1)
	ret := make(map[trajectory.ID]bool, len(returned))
	for _, c := range returned {
		ret[c.id] = true
	}
	for _, c := range s.cands {
		if ret[c.id] || c.partial == nil { // partial == nil: ExcludeIDs placeholder
			continue
		}
		if c.lo < floor {
			floor = c.lo
		}
	}
	return floor
}

// midpoint is the candidate's point estimate: center of its certified
// interval (equal to the exact value after refinement).
func (s *searcher) midpoint(c *candidate) float64 { return (c.lo + c.hi) / 2 }

func (c *candidate) err() float64 { return (c.hi - c.lo) / 2 }

// refineAll recomputes the exact DISSIM of the selected candidates
// (§4.4 post-processing), serially or on a bounded worker pool
// (Options.Parallelism). The parallel path keeps the serial semantics
// bit-identical: each exact integral is an independent pure function of
// the immutable query, dataset, and period, workers only compute, and the
// main goroutine applies the values in the candidates' serial order — so
// the refined intervals, ExactRefined count, and final ranking cannot
// depend on goroutine scheduling.
func (s *searcher) refineAll(cands []*candidate) {
	if len(cands) == 0 {
		return
	}
	workers := s.opts.Parallelism
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers < 1 {
		workers = 1
	}
	s.emit(TraceEvent{Kind: EventRefineStart, Count: len(cands), Workers: workers})
	metRefineTasks.Add(uint64(len(cands)))
	metRefineWork.Add(uint64(workers))
	defer func() {
		s.emit(TraceEvent{Kind: EventRefineDone, Count: s.stats.ExactRefined, Workers: workers})
	}()
	if workers <= 1 {
		for _, c := range cands {
			s.refineExact(c)
		}
		return
	}
	type exactVal struct {
		v  float64
		ok bool
	}
	vals := make([]exactVal, len(cands))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if tr := s.opts.Data.Get(cands[i].id); tr != nil {
					v, ok := dissim.Exact(s.q, tr, s.t1, s.t2)
					vals[i] = exactVal{v: v, ok: ok}
				}
			}
		}()
	}
	for i := range cands {
		work <- i
	}
	close(work)
	wg.Wait()
	for i, c := range cands {
		if vals[i].ok {
			s.applyExact(c, vals[i].v)
		}
	}
}

// refineExact replaces the candidate's interval with the exact DISSIM.
func (s *searcher) refineExact(c *candidate) {
	tr := s.opts.Data.Get(c.id)
	if tr == nil {
		return
	}
	if v, ok := dissim.Exact(s.q, tr, s.t1, s.t2); ok {
		s.applyExact(c, v)
	}
}

// applyExact collapses the candidate's certified interval onto the exact
// value v — the single admission point of both refinement paths.
func (s *searcher) applyExact(c *candidate, v float64) {
	if debugassert.Enabled {
		// The exact DISSIM must fall inside the interval the search
		// certified for the candidate (lower <= exact <= upper).
		slack := 1e-7 * (1 + math.Abs(v))
		debugassert.Assertf(c.lo-slack <= v && v <= c.hi+slack,
			"exact DISSIM %v of candidate %d outside certified interval [%v, %v]",
			v, c.id, c.lo, c.hi)
	}
	c.lo, c.hi = v, v
	s.stats.ExactRefined++
	s.emit(TraceEvent{Kind: EventRefined, TrajID: c.id, Lo: v, Hi: v, Exact: v})
}
