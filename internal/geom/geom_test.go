package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestLerp(t *testing.T) {
	a := STPoint{0, 0, 0}
	b := STPoint{10, -4, 2}
	mid := Lerp(a, b, 1)
	if mid.X != 5 || mid.Y != -2 || mid.T != 1 {
		t.Fatalf("Lerp midpoint = %+v", mid)
	}
	if got := Lerp(a, b, 0); got != a {
		t.Fatalf("Lerp at start = %+v", got)
	}
	if got := Lerp(a, b, 2); got != (STPoint{10, -4, 2}) {
		t.Fatalf("Lerp at end = %+v", got)
	}
	// Degenerate: simultaneous endpoints keep position of a.
	if got := Lerp(a, STPoint{9, 9, 0}, 0); got.X != 0 || got.Y != 0 {
		t.Fatalf("degenerate Lerp = %+v", got)
	}
}

func TestSegmentClipTime(t *testing.T) {
	s := Segment{STPoint{0, 0, 0}, STPoint{10, 0, 10}}
	c, ok := s.ClipTime(2, 4)
	if !ok || c.A.T != 2 || c.B.T != 4 || c.A.X != 2 || c.B.X != 4 {
		t.Fatalf("clip = %+v ok=%v", c, ok)
	}
	if _, ok := s.ClipTime(11, 12); ok {
		t.Fatal("clip outside extent should fail")
	}
	c, ok = s.ClipTime(-5, 25)
	if !ok || c.A.T != 0 || c.B.T != 10 {
		t.Fatalf("clip superset = %+v ok=%v", c, ok)
	}
	// Touching at a single instant is a valid zero-length clip.
	c, ok = s.ClipTime(10, 15)
	if !ok || c.A.T != 10 || c.B.T != 10 {
		t.Fatalf("instant clip = %+v ok=%v", c, ok)
	}
}

func TestSegmentVelocitySpeed(t *testing.T) {
	s := Segment{STPoint{0, 0, 0}, STPoint{3, 4, 1}}
	if v := s.Velocity(); v.X != 3 || v.Y != 4 {
		t.Fatalf("velocity = %+v", v)
	}
	if sp := s.Speed(); sp != 5 {
		t.Fatalf("speed = %v", sp)
	}
	inst := Segment{STPoint{1, 2, 3}, STPoint{4, 5, 3}}
	if v := inst.Velocity(); v != (Point{}) {
		t.Fatalf("instant segment velocity = %+v", v)
	}
}

func TestMBBBasics(t *testing.T) {
	e := EmptyMBB()
	if !e.IsEmpty() {
		t.Fatal("EmptyMBB not empty")
	}
	a := MBB{0, 0, 0, 1, 1, 1}
	if got := e.Expand(a); got != a {
		t.Fatalf("empty.Expand = %+v", got)
	}
	if got := a.Expand(e); got != a {
		t.Fatalf("Expand(empty) = %+v", got)
	}
	b := MBB{0.5, 0.5, 0.5, 2, 2, 2}
	u := a.Expand(b)
	if !u.Contains(a) || !u.Contains(b) {
		t.Fatal("union must contain operands")
	}
	if u.Volume() != 8 {
		t.Fatalf("union volume = %v", u.Volume())
	}
	if !a.Intersects(b) {
		t.Fatal("a and b intersect")
	}
	c := MBB{5, 5, 5, 6, 6, 6}
	if a.Intersects(c) {
		t.Fatal("a and c are disjoint")
	}
	if !a.OverlapsTime(0.5, 3) || a.OverlapsTime(1.5, 3) {
		t.Fatal("OverlapsTime wrong")
	}
	if a.Enlargement(b) <= 0 {
		t.Fatal("expanding a to cover b must enlarge it")
	}
	if a.Margin() != 3 {
		t.Fatalf("margin = %v", a.Margin())
	}
}

func TestMBBExpandProperties(t *testing.T) {
	f := func(ax, ay, at, bx, by, bt, cx, cy, ct float64) bool {
		mk := func(x, y, tt float64) MBB {
			return MBB{x, y, tt, x + 1, y + 1, tt + 1}
		}
		a, b, c := mk(ax, ay, at), mk(bx, by, bt), mk(cx, cy, ct)
		// Commutative, associative, monotone volume.
		ab := a.Expand(b)
		if ab != b.Expand(a) {
			return false
		}
		if a.Expand(b).Expand(c) != a.Expand(b.Expand(c)) {
			return false
		}
		return ab.Volume() >= a.Volume() && ab.Contains(a) && ab.Contains(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRectDistPoint(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	cases := []struct {
		p Point
		d float64
	}{
		{Point{5, 5}, 0},
		{Point{0, 0}, 0},
		{Point{-3, 5}, 3},
		{Point{13, 14}, 5},
		{Point{5, -2}, 2},
	}
	for _, c := range cases {
		if got := r.DistPoint(c.p); !almostEq(got, c.d, 1e-12) {
			t.Errorf("DistPoint(%+v) = %v, want %v", c.p, got, c.d)
		}
	}
}

func TestDistSegments(t *testing.T) {
	// Crossing segments.
	if d := DistSegments(Point{0, 0}, Point{2, 2}, Point{0, 2}, Point{2, 0}); d != 0 {
		t.Fatalf("crossing distance = %v", d)
	}
	// Parallel.
	if d := DistSegments(Point{0, 0}, Point{2, 0}, Point{0, 1}, Point{2, 1}); d != 1 {
		t.Fatalf("parallel distance = %v", d)
	}
	// Collinear overlapping.
	if d := DistSegments(Point{0, 0}, Point{2, 0}, Point{1, 0}, Point{3, 0}); d != 0 {
		t.Fatalf("collinear distance = %v", d)
	}
	// Endpoint to endpoint.
	if d := DistSegments(Point{0, 0}, Point{1, 0}, Point{4, 4}, Point{9, 9}); !almostEq(d, 5, 1e-12) {
		t.Fatalf("endpoint distance = %v", d)
	}
}

func TestDistSegmentRect(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if d := DistSegmentRect(Point{3, 3}, Point{4, 4}, r); d != 0 {
		t.Fatal("segment inside rect must be distance 0")
	}
	if d := DistSegmentRect(Point{-5, 5}, Point{15, 5}, r); d != 0 {
		t.Fatal("segment through rect must be distance 0")
	}
	if d := DistSegmentRect(Point{-3, 5}, Point{-1, 5}, r); !almostEq(d, 1, 1e-12) {
		t.Fatalf("left-of-rect distance = %v", d)
	}
	if d := DistSegmentRect(Point{12, 12}, Point{20, 20}, r); !almostEq(d, 2*math.Sqrt2, 1e-12) {
		t.Fatalf("corner distance = %v", d)
	}
}

// Property: DistSegmentRect is a lower bound of the distance from any
// sampled point on the segment to the rectangle, and matches the sampled
// minimum closely.
func TestDistSegmentRectVsSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		r := Rect{rng.Float64() * 10, rng.Float64() * 10, 0, 0}
		r.MaxX = r.MinX + rng.Float64()*10
		r.MaxY = r.MinY + rng.Float64()*10
		a := Point{rng.Float64()*40 - 10, rng.Float64()*40 - 10}
		b := Point{rng.Float64()*40 - 10, rng.Float64()*40 - 10}
		got := DistSegmentRect(a, b, r)
		sampled := math.Inf(1)
		const n = 400
		for i := 0; i <= n; i++ {
			f := float64(i) / n
			p := a.Add(b.Sub(a).Scale(f))
			sampled = math.Min(sampled, r.DistPoint(p))
		}
		if got > sampled+1e-9 {
			t.Fatalf("DistSegmentRect=%v exceeds sampled min %v (a=%+v b=%+v r=%+v)",
				got, sampled, a, b, r)
		}
		if sampled-got > 0.05*math.Max(1, sampled) {
			t.Fatalf("DistSegmentRect=%v too far below sampled min %v", got, sampled)
		}
	}
}

func TestMinDistSegmentMBB(t *testing.T) {
	b := MBB{0, 0, 0, 10, 10, 10}
	// No temporal overlap.
	s := Segment{STPoint{0, 0, 20}, STPoint{1, 1, 30}}
	if _, ok := MinDistSegmentMBB(s, b); ok {
		t.Fatal("disjoint time must report ok=false")
	}
	// Moving point passes beside the box; only the clipped part counts.
	s = Segment{STPoint{-10, 5, -10}, STPoint{30, 5, 30}}
	d, ok := MinDistSegmentMBB(s, b)
	if !ok || d != 0 {
		t.Fatalf("through box: d=%v ok=%v", d, ok)
	}
	// Point spatially distant during the overlap window.
	s = Segment{STPoint{20, 5, 0}, STPoint{30, 5, 10}}
	d, ok = MinDistSegmentMBB(s, b)
	if !ok || !almostEq(d, 10, 1e-12) {
		t.Fatalf("beside box: d=%v ok=%v", d, ok)
	}
	// Clipping matters: the segment is near the box only outside the box's
	// time window.
	s = Segment{STPoint{5, 5, 20}, STPoint{100, 5, 40}}
	if _, ok = MinDistSegmentMBB(s, b); ok {
		t.Fatal("after box lifetime must report ok=false")
	}
}

func TestMinDistSegments(t *testing.T) {
	q := Segment{STPoint{0, 0, 0}, STPoint{10, 0, 10}}
	s := Segment{STPoint{0, 4, 0}, STPoint{10, 4, 10}}
	d, ok := MinDistSegments(q, s)
	if !ok || !almostEq(d, 4, 1e-12) {
		t.Fatalf("parallel moving points d=%v ok=%v", d, ok)
	}
	// Crossing trajectories at same time → distance 0.
	s = Segment{STPoint{10, 0, 0}, STPoint{0, 0, 10}}
	d, ok = MinDistSegments(q, s)
	if !ok || !almostEq(d, 0, 1e-9) {
		t.Fatalf("meeting moving points d=%v ok=%v", d, ok)
	}
	// Same path, opposite direction in space but disjoint in time.
	s = Segment{STPoint{0, 0, 11}, STPoint{10, 0, 21}}
	if _, ok = MinDistSegments(q, s); ok {
		t.Fatal("temporally disjoint must report ok=false")
	}
}

// Property: MinDistSegments lower-bounds the distance at every sampled
// common instant.
func TestMinDistSegmentsVsSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 500; iter++ {
		t0 := rng.Float64() * 10
		dur := rng.Float64()*10 + 0.1
		mk := func() Segment {
			return Segment{
				STPoint{rng.Float64() * 20, rng.Float64() * 20, t0},
				STPoint{rng.Float64() * 20, rng.Float64() * 20, t0 + dur},
			}
		}
		q, s := mk(), mk()
		d, ok := MinDistSegments(q, s)
		if !ok {
			t.Fatal("co-temporal segments must overlap")
		}
		minSampled := math.Inf(1)
		const n = 200
		for i := 0; i <= n; i++ {
			tt := t0 + dur*float64(i)/n
			minSampled = math.Min(minSampled, q.At(tt).Spatial().Dist(s.At(tt).Spatial()))
		}
		if d > minSampled+1e-9 {
			t.Fatalf("MinDistSegments=%v exceeds sampled=%v", d, minSampled)
		}
		// D is Lipschitz in t with constant = relative speed, so the sampled
		// minimum can overshoot the true one by at most relSpeed·(grid/2).
		relSpeed := q.Velocity().Sub(s.Velocity()).Norm()
		slack := relSpeed*dur/(2*n) + 1e-9
		if minSampled-d > slack {
			t.Fatalf("MinDistSegments=%v too loose vs sampled=%v (slack %v)", d, minSampled, slack)
		}
	}
}
