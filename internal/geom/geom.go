// Package geom provides the low-level spatiotemporal geometry used by the
// trajectory similarity engine: 2D points and rectangles, 3D (x, y, t)
// points and minimum bounding boxes, line segments representing linearly
// moving points, and the distance computations between them that the
// DISSIM metric and the R-tree MINDIST pruning are built on.
//
// Conventions: the two spatial axes are X and Y; T is time. All values are
// float64 in arbitrary (but consistent) units. A "segment" is the motion of
// an object between two consecutive samples, assumed linear in time.
package geom

import "math"

// Eps is the absolute tolerance used when classifying near-zero
// coefficients (e.g. deciding that a distance trinomial is constant).
const Eps = 1e-12

// Point is a 2D spatial point.
type Point struct {
	X, Y float64
}

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dot returns the dot product of p and q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean norm of p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// STPoint is a spatiotemporal point: a 2D position at a time instant.
type STPoint struct {
	X, Y, T float64
}

// Spatial returns the 2D projection of p.
func (p STPoint) Spatial() Point { return Point{p.X, p.Y} }

// Lerp linearly interpolates between a and b at time t. It extrapolates if
// t lies outside [a.T, b.T]; callers are expected to clip first. If a and b
// are simultaneous the position of a is returned.
func Lerp(a, b STPoint, t float64) STPoint {
	dt := b.T - a.T
	if ExactZero(dt) {
		return STPoint{a.X, a.Y, t}
	}
	f := (t - a.T) / dt
	return STPoint{a.X + f*(b.X-a.X), a.Y + f*(b.Y-a.Y), t}
}

// Segment is the linear motion of an object between two samples. The
// invariant A.T <= B.T is expected everywhere.
type Segment struct {
	A, B STPoint
}

// Duration returns the temporal extent of the segment.
func (s Segment) Duration() float64 { return s.B.T - s.A.T }

// At returns the interpolated position of the moving object at time t.
func (s Segment) At(t float64) STPoint { return Lerp(s.A, s.B, t) }

// Velocity returns the (vx, vy) velocity of the segment, or the zero vector
// for an instantaneous segment.
func (s Segment) Velocity() Point {
	dt := s.Duration()
	if ExactZero(dt) {
		return Point{}
	}
	return Point{(s.B.X - s.A.X) / dt, (s.B.Y - s.A.Y) / dt}
}

// Speed returns the scalar speed of the segment.
func (s Segment) Speed() float64 { return s.Velocity().Norm() }

// ClipTime returns the sub-segment of s restricted to [t1, t2] (clamped to
// the segment's own extent) and reports whether the intersection is
// non-degenerate in the sense of having positive overlap with [t1, t2].
// A shared single instant yields ok == true with a zero-duration segment,
// which contributes nothing to a time integral but is still a valid sample.
func (s Segment) ClipTime(t1, t2 float64) (Segment, bool) {
	lo := math.Max(s.A.T, t1)
	hi := math.Min(s.B.T, t2)
	if lo > hi {
		return Segment{}, false
	}
	return Segment{s.At(lo), s.At(hi)}, true
}

// Rect is a 2D axis-aligned rectangle. An empty rectangle has Min > Max on
// some axis.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether p lies inside (or on the boundary of) r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// DistPoint returns the minimum distance from p to r (zero if inside).
func (r Rect) DistPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// MBB is a 3D (x, y, t) minimum bounding box, the node/entry bound stored
// in the R-tree-like structures.
type MBB struct {
	MinX, MinY, MinT float64
	MaxX, MaxY, MaxT float64
}

// EmptyMBB returns an MBB that acts as the identity for Expand.
func EmptyMBB() MBB {
	inf := math.Inf(1)
	return MBB{inf, inf, inf, -inf, -inf, -inf}
}

// MBBOfSegment returns the tight bound of a segment.
func MBBOfSegment(s Segment) MBB {
	return MBB{
		MinX: math.Min(s.A.X, s.B.X), MinY: math.Min(s.A.Y, s.B.Y), MinT: s.A.T,
		MaxX: math.Max(s.A.X, s.B.X), MaxY: math.Max(s.A.Y, s.B.Y), MaxT: s.B.T,
	}
}

// IsEmpty reports whether b bounds nothing.
func (b MBB) IsEmpty() bool { return b.MinX > b.MaxX || b.MinY > b.MaxY || b.MinT > b.MaxT }

// WellFormed reports min <= max on all three axes with no NaNs — the
// validity invariant every MBB that reaches the index codec must satisfy.
// The Expand identity from EmptyMBB is deliberately not well-formed: an
// empty bound must never be persisted.
func (b MBB) WellFormed() bool {
	return b.MinX <= b.MaxX && b.MinY <= b.MaxY && b.MinT <= b.MaxT
}

// Rect returns the spatial (x, y) projection of b.
func (b MBB) Rect() Rect { return Rect{b.MinX, b.MinY, b.MaxX, b.MaxY} }

// Expand returns the smallest MBB covering both b and o.
func (b MBB) Expand(o MBB) MBB {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return MBB{
		math.Min(b.MinX, o.MinX), math.Min(b.MinY, o.MinY), math.Min(b.MinT, o.MinT),
		math.Max(b.MaxX, o.MaxX), math.Max(b.MaxY, o.MaxY), math.Max(b.MaxT, o.MaxT),
	}
}

// Volume returns the 3D volume of b (zero for empty boxes).
func (b MBB) Volume() float64 {
	if b.IsEmpty() {
		return 0
	}
	return (b.MaxX - b.MinX) * (b.MaxY - b.MinY) * (b.MaxT - b.MinT)
}

// Margin returns the sum of the three edge lengths, used by split
// tie-breaking.
func (b MBB) Margin() float64 {
	if b.IsEmpty() {
		return 0
	}
	return (b.MaxX - b.MinX) + (b.MaxY - b.MinY) + (b.MaxT - b.MinT)
}

// Enlargement returns the volume increase of b when expanded to cover o.
func (b MBB) Enlargement(o MBB) float64 { return b.Expand(o).Volume() - b.Volume() }

// Contains reports whether o lies entirely inside b.
func (b MBB) Contains(o MBB) bool {
	return b.MinX <= o.MinX && b.MinY <= o.MinY && b.MinT <= o.MinT &&
		b.MaxX >= o.MaxX && b.MaxY >= o.MaxY && b.MaxT >= o.MaxT
}

// Intersects reports whether b and o share any point.
func (b MBB) Intersects(o MBB) bool {
	return b.MinX <= o.MaxX && o.MinX <= b.MaxX &&
		b.MinY <= o.MaxY && o.MinY <= b.MaxY &&
		b.MinT <= o.MaxT && o.MinT <= b.MaxT
}

// OverlapsTime reports whether b's temporal extent intersects [t1, t2].
func (b MBB) OverlapsTime(t1, t2 float64) bool { return b.MinT <= t2 && t1 <= b.MaxT }
