package geom

import (
	"fmt"
	"math"
)

// Trinomial represents the squared Euclidean distance between two points
// moving linearly during a common time interval:
//
//	f(τ) = A·τ² + B·τ + C,   τ = t − T0,   D(t) = sqrt(f(τ))
//
// with A ≥ 0 and f(τ) ≥ 0 for every τ (it is a squared distance), which
// implies the discriminant B² − 4AC ≤ 0. Keeping τ relative to the interval
// start T0 preserves numerical precision for large absolute timestamps.
//
// This is the quantity DQ,T(t) of the paper (after Frentzos et al.,
// "Algorithms for Nearest Neighbor Search on Moving Object Trajectories"),
// and everything in the DISSIM metric — the exact integral, the trapezoid
// approximation of Lemma 1 and its error bound — reduces to operations on
// it.
type Trinomial struct {
	A, B, C float64
	T0      float64 // absolute time of τ = 0
	T1      float64 // absolute end of the common interval (T1 >= T0)
}

// NewTrinomial builds the distance trinomial for two segments that must
// share the exact same time interval. It panics if the intervals differ by
// more than a small tolerance relative to their span; callers clip/align
// segments first (see CommonInterval in package trajectory).
func NewTrinomial(q, t Segment) Trinomial {
	span := math.Max(q.Duration(), t.Duration())
	tol := 1e-9 * math.Max(1, span)
	if math.Abs(q.A.T-t.A.T) > tol || math.Abs(q.B.T-t.B.T) > tol {
		panic(fmt.Sprintf("geom: segments not time-aligned: [%g,%g] vs [%g,%g]",
			q.A.T, q.B.T, t.A.T, t.B.T))
	}
	d0 := q.A.Spatial().Sub(t.A.Spatial()) // relative position at τ = 0
	dv := q.Velocity().Sub(t.Velocity())   // relative velocity
	tri := Trinomial{
		A:  dv.Dot(dv),
		B:  2 * d0.Dot(dv),
		C:  d0.Dot(d0),
		T0: q.A.T,
		T1: q.B.T,
	}
	// Guard against tiny negative round-off that would break sqrt.
	if tri.C < 0 {
		tri.C = 0
	}
	return tri
}

// Duration returns the length of the common interval.
func (tr Trinomial) Duration() float64 { return tr.T1 - tr.T0 }

// f evaluates the squared distance at relative time τ, clamped at zero to
// absorb floating-point round-off.
func (tr Trinomial) f(tau float64) float64 {
	v := (tr.A*tau+tr.B)*tau + tr.C
	if v < 0 {
		return 0
	}
	return v
}

// Dist returns the distance D(t) at absolute time t.
func (tr Trinomial) Dist(t float64) float64 { return math.Sqrt(tr.f(t - tr.T0)) }

// DistStart and DistEnd return the distances at the interval endpoints.
func (tr Trinomial) DistStart() float64 { return math.Sqrt(tr.f(0)) }

// DistEnd returns the distance at the end of the interval.
func (tr Trinomial) DistEnd() float64 { return math.Sqrt(tr.f(tr.Duration())) }

// MinDist returns the minimum distance over the interval together with the
// absolute time at which it is attained. For A > 0 the candidate is the
// vertex τ* = −B/(2A) clamped into the interval; otherwise an endpoint.
func (tr Trinomial) MinDist() (d, t float64) {
	tau := 0.0
	if tr.A > Eps {
		tau = clamp(-tr.B/(2*tr.A), 0, tr.Duration())
	} else if tr.B < 0 {
		tau = tr.Duration()
	}
	ds, de := tr.f(0), tr.f(tr.Duration())
	dm := tr.f(tau)
	switch {
	case dm <= ds && dm <= de:
		return math.Sqrt(dm), tr.T0 + tau
	case ds <= de:
		return math.Sqrt(ds), tr.T0
	default:
		return math.Sqrt(de), tr.T1
	}
}

// Integral returns the exact definite integral of D(t) over the whole
// interval — the contribution of this segment pair to DISSIM — using the
// closed form
//
//	∫ sqrt(f) dτ = (2Aτ+B)/(4A)·sqrt(f) + (4AC−B²)/(8A^{3/2})·asinh((2Aτ+B)/sqrt(4AC−B²))
//
// for A > 0, with the degenerate discriminant and constant/linear cases
// handled separately.
func (tr Trinomial) Integral() float64 { return tr.IntegralBetween(tr.T0, tr.T1) }

// IntegralBetween returns the exact integral of D(t) over [ta, tb] ⊆
// [T0, T1] (the bounds are clamped into the interval).
func (tr Trinomial) IntegralBetween(ta, tb float64) float64 {
	lo := clamp(ta-tr.T0, 0, tr.Duration())
	hi := clamp(tb-tr.T0, 0, tr.Duration())
	if hi <= lo {
		return 0
	}
	a, b, c := tr.A, tr.B, tr.C
	if a <= Eps {
		if math.Abs(b) <= Eps {
			// Constant distance. For genuine moving points A = 0 ⟹ B = 0
			// (paper §3), so this is the common constant case.
			return math.Sqrt(math.Max(c, 0)) * (hi - lo)
		}
		// Robustness fallback: f linear (cannot arise from true squared
		// distances but may from rounded inputs).
		prim := func(tau float64) float64 {
			v := math.Max(b*tau+c, 0)
			return 2 / (3 * b) * v * math.Sqrt(v)
		}
		return prim(hi) - prim(lo)
	}
	disc := 4*a*c - b*b // ≥ 0 up to round-off
	if disc <= Eps*math.Max(1, 4*a*c) {
		// f is a perfect square: sqrt(f) = sqrt(A)·|τ − τ*|.
		tau := -b / (2 * a)
		sq := math.Sqrt(a)
		prim := func(u float64) float64 { return sq * u * math.Abs(u) / 2 }
		return prim(hi-tau) - prim(lo-tau)
	}
	sd := math.Sqrt(disc)
	prim := func(tau float64) float64 {
		u := 2*a*tau + b
		return u/(4*a)*math.Sqrt(tr.f(tau)) + disc/(8*a*math.Sqrt(a))*math.Asinh(u/sd)
	}
	return prim(hi) - prim(lo)
}

// Trapezoid returns the trapezoid-rule approximation of the integral over
// the whole interval (Lemma 1 of the paper):
//
//	½ · (D(t0) + D(t1)) · (t1 − t0)
func (tr Trinomial) Trapezoid() float64 {
	return 0.5 * (tr.DistStart() + tr.DistEnd()) * tr.Duration()
}

// TrapezoidError bounds the absolute error of Trapezoid per Lemma 1:
//
//	E ≤ (Δt)³/12 · max |D″| over the interval,
//
// where D″(τ) = (4AC − B²) / (4·f(τ)^{3/2}) for A > 0. |D″| is maximized
// where f is smallest: at the vertex −B/(2A) if inside the interval,
// otherwise at the nearer endpoint — the three cases of Lemma 1. The bound
// is +Inf when the two objects actually meet (f reaches zero), in which
// case callers should use the exact Integral instead.
func (tr Trinomial) TrapezoidError() float64 {
	return tr.pieceError(0, tr.Duration())
}

// TrapezoidRefined approximates the integral by splitting the interval into
// n equal sub-intervals and summing per-piece trapezoids, returning the
// approximation and the summed error bound. n < 1 is treated as 1. Because
// the Lemma 1 bound is cubic in Δt, refining by n shrinks the bound by
// ~n⁻².
func (tr Trinomial) TrapezoidRefined(n int) (approx, errBound float64) {
	if n < 1 {
		n = 1
	}
	dt := tr.Duration()
	if ExactZero(dt) {
		return 0, 0
	}
	h := dt / float64(n)
	prev := tr.DistStart()
	for i := 1; i <= n; i++ {
		tau := float64(i) * h
		cur := math.Sqrt(tr.f(tau))
		approx += 0.5 * (prev + cur) * h
		errBound += tr.pieceError(tau-h, tau)
		prev = cur
	}
	return approx, errBound
}

// pieceError is the Lemma 1 error bound restricted to the relative
// sub-interval [lo, hi]. The perfect-square (zero-discriminant) trinomial
// is special-cased: there D(τ) = sqrt(A)·|τ − τ*| has a kink rather than
// curvature, and the trapezoid error is exactly sqrt(A)·(τ*−lo)·(hi−τ*)
// when the kink τ* is interior, zero otherwise.
func (tr Trinomial) pieceError(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	disc := 4*tr.A*tr.C - tr.B*tr.B
	num := math.Abs(disc)
	if tr.A > Eps && num <= Eps*math.Max(1, 4*tr.A*tr.C) {
		tau := -tr.B / (2 * tr.A)
		if tau <= lo || tau >= hi {
			return 0 // D linear on the whole piece; trapezoid exact.
		}
		return math.Sqrt(tr.A) * (tau - lo) * (hi - tau)
	}
	if num <= Eps {
		return 0 // constant (or effectively constant) distance.
	}
	tau := lo
	if tr.A > Eps {
		tau = clamp(-tr.B/(2*tr.A), lo, hi)
	} else if tr.B < 0 {
		tau = hi
	}
	fmin := math.Min(tr.f(tau), math.Min(tr.f(lo), tr.f(hi)))
	if fmin <= 0 {
		return math.Inf(1)
	}
	h := hi - lo
	return h * h * h / 12 * num / (4 * fmin * math.Sqrt(fmin))
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
