package geom

import "math"

// This file holds the approved floating-point comparison helpers. The
// floatcmp analyzer (internal/analysis/floatcmp) forbids raw ==/!= on
// floats in the numeric kernels; call sites either use the tolerance
// helpers below or make bit-exact intent explicit through ExactEq /
// ExactZero. Functions carrying the "floatcmp:approved" marker in their
// doc comment are the only places raw float equality may appear.

// ExactEq reports whether a and b are bit-for-bit equal floats. Use it
// where exact equality is the intent — degenerate-input guards before a
// division, or deterministic tie-breaking in sort comparators — so the
// intent survives the linter. floatcmp:approved
func ExactEq(a, b float64) bool { return a == b }

// ExactZero reports whether x is exactly ±0. It guards divisions where
// any non-zero denominator, however tiny, is mathematically fine but a
// true zero would poison the result with NaN/Inf. floatcmp:approved
func ExactZero(x float64) bool { return x == 0 }

// Near reports |a-b| <= eps.
func Near(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// IsZero reports |x| <= Eps, the package's default tolerance.
func IsZero(x float64) bool { return math.Abs(x) <= Eps }
