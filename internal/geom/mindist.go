package geom

import "math"

// DistSegmentPoint returns the minimum distance between 2D segment (a, b)
// and point p.
func DistSegmentPoint(a, b, p Point) float64 {
	ab := b.Sub(a)
	den := ab.Dot(ab)
	if ExactZero(den) {
		return p.Dist(a)
	}
	t := clamp(p.Sub(a).Dot(ab)/den, 0, 1)
	return p.Dist(a.Add(ab.Scale(t)))
}

// DistSegments returns the minimum distance between 2D segments (a1, a2)
// and (b1, b2).
func DistSegments(a1, a2, b1, b2 Point) float64 {
	if segmentsIntersect(a1, a2, b1, b2) {
		return 0
	}
	d := DistSegmentPoint(a1, a2, b1)
	d = math.Min(d, DistSegmentPoint(a1, a2, b2))
	d = math.Min(d, DistSegmentPoint(b1, b2, a1))
	return math.Min(d, DistSegmentPoint(b1, b2, a2))
}

func segmentsIntersect(p1, p2, p3, p4 Point) bool {
	d1 := cross(p3, p4, p1)
	d2 := cross(p3, p4, p2)
	d3 := cross(p1, p2, p3)
	d4 := cross(p1, p2, p4)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	return (ExactZero(d1) && onSegment(p3, p4, p1)) ||
		(ExactZero(d2) && onSegment(p3, p4, p2)) ||
		(ExactZero(d3) && onSegment(p1, p2, p3)) ||
		(ExactZero(d4) && onSegment(p1, p2, p4))
}

func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

func onSegment(a, b, p Point) bool {
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}

// DistSegmentRect returns the minimum distance between 2D segment (a, b)
// and rectangle r (zero if they touch or the segment enters r).
func DistSegmentRect(a, b Point, r Rect) float64 {
	if r.Contains(a) || r.Contains(b) {
		return 0
	}
	c1 := Point{r.MinX, r.MinY}
	c2 := Point{r.MaxX, r.MinY}
	c3 := Point{r.MaxX, r.MaxY}
	c4 := Point{r.MinX, r.MaxY}
	d := DistSegments(a, b, c1, c2)
	d = math.Min(d, DistSegments(a, b, c2, c3))
	d = math.Min(d, DistSegments(a, b, c3, c4))
	return math.Min(d, DistSegments(a, b, c4, c1))
}

// MinDistSegmentMBB implements the MINDIST of the paper (after Frentzos et
// al.'s NN algorithms): the minimum spatial distance, over the time
// interval where the moving point s and the box b temporally coexist,
// between the moving point's position and the box's spatial extent. The
// second return value is false when s and b share no time interval, in
// which case the distance is meaningless (+Inf is returned).
func MinDistSegmentMBB(s Segment, b MBB) (float64, bool) {
	clipped, ok := s.ClipTime(b.MinT, b.MaxT)
	if !ok {
		return math.Inf(1), false
	}
	return DistSegmentRect(clipped.A.Spatial(), clipped.B.Spatial(), b.Rect()), true
}

// MinDistSegments returns the minimum Euclidean distance over time between
// two moving points during their common time interval, together with the
// common interval itself. ok is false when the segments do not overlap
// temporally.
func MinDistSegments(q, t Segment) (d float64, ok bool) {
	lo := math.Max(q.A.T, t.A.T)
	hi := math.Min(q.B.T, t.B.T)
	if lo > hi {
		return math.Inf(1), false
	}
	qc, _ := q.ClipTime(lo, hi)
	tc, _ := t.ClipTime(lo, hi)
	tri := NewTrinomial(qc, tc)
	d, _ = tri.MinDist()
	return d, true
}
