package geom

import (
	"math"
	"testing"
)

// Degenerate trinomials exercise the special-cased branches of
// IntegralBetween and MinDist that real sampled data rarely reaches:
// constant distance (a = b = 0), linear-f robustness fallback (a = 0,
// b != 0), perfect-square discriminants, and zero-duration intervals.
func TestTrinomialDegenerateIntegral(t *testing.T) {
	cases := []struct {
		name string
		tri  Trinomial
		want float64
		tol  float64
	}{
		{
			name: "zero distance zero motion",
			tri:  Trinomial{A: 0, B: 0, C: 0, T0: 0, T1: 5},
			want: 0,
			tol:  0,
		},
		{
			name: "constant distance", // D = 3 for 4 time units
			tri:  Trinomial{A: 0, B: 0, C: 9, T0: 1, T1: 5},
			want: 12,
			tol:  1e-12,
		},
		{
			name: "linear f fallback", // ∫₀³ sqrt(1+2τ) dτ = (7^{3/2}−1)/3
			tri:  Trinomial{A: 0, B: 2, C: 1, T0: 0, T1: 3},
			want: (math.Pow(7, 1.5) - 1) / 3,
			tol:  1e-12,
		},
		{
			name: "perfect square through zero", // sqrt(f) = |τ−1| over [0,2]
			tri:  Trinomial{A: 1, B: -2, C: 1, T0: 0, T1: 2},
			want: 1,
			tol:  1e-12,
		},
		{
			name: "zero duration",
			tri:  Trinomial{A: 2, B: 1, C: 7, T0: 3, T1: 3},
			want: 0,
			tol:  0,
		},
		{
			name: "general asinh branch", // ∫₀¹ sqrt(τ²+1) dτ = (√2 + asinh 1)/2
			tri:  Trinomial{A: 1, B: 0, C: 1, T0: 0, T1: 1},
			want: (math.Sqrt2 + math.Asinh(1)) / 2,
			tol:  1e-12,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.tri.Integral()
			if math.Abs(got-tc.want) > tc.tol {
				t.Errorf("Integral() = %v, want %v (±%v)", got, tc.want, tc.tol)
			}
			// The refined trapezoid must agree within its own certified
			// error bound whenever that bound is finite.
			approx, errB := tc.tri.TrapezoidRefined(4)
			if !math.IsInf(errB, 1) {
				if math.Abs(approx-tc.want) > errB+1e-9*(1+math.Abs(tc.want)) {
					t.Errorf("TrapezoidRefined(4) = %v ± %v does not cover %v", approx, errB, tc.want)
				}
			}
		})
	}
}

// TestMinDistDegenerateSegments drives the MINDIST machinery with
// zero-duration and spatially degenerate (point-like) segments: the
// ExactZero guards in Lerp, Velocity and DistSegmentPoint must keep every
// result finite and exact.
func TestMinDistDegenerateSegments(t *testing.T) {
	seg := func(x1, y1, t1, x2, y2, t2 float64) Segment {
		return Segment{A: STPoint{X: x1, Y: y1, T: t1}, B: STPoint{X: x2, Y: y2, T: t2}}
	}
	cases := []struct {
		name   string
		q, t   Segment
		want   float64
		wantOK bool
	}{
		{
			name:   "both zero duration, coincident instant",
			q:      seg(0, 0, 5, 0, 0, 5),
			t:      seg(3, 4, 5, 3, 4, 5),
			want:   5,
			wantOK: true,
		},
		{
			name:   "zero duration against moving point",
			q:      seg(0, 0, 1, 0, 0, 1),
			t:      seg(-1, 2, 0, 3, 2, 2), // at t=1 sits at (1,2)
			want:   math.Sqrt(5),
			wantOK: true,
		},
		{
			name:   "identical segments",
			q:      seg(0, 0, 0, 10, 10, 4),
			t:      seg(0, 0, 0, 10, 10, 4),
			want:   0,
			wantOK: true,
		},
		{
			name:   "stationary points at constant distance",
			q:      seg(0, 0, 0, 0, 0, 10),
			t:      seg(6, 8, 0, 6, 8, 10),
			want:   10,
			wantOK: true,
		},
		{
			name:   "temporally disjoint",
			q:      seg(0, 0, 0, 1, 1, 1),
			t:      seg(0, 0, 2, 1, 1, 3),
			wantOK: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := MinDistSegments(tc.q, tc.t)
			if ok != tc.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tc.wantOK)
			}
			if !ok {
				if !math.IsInf(got, 1) {
					t.Errorf("disjoint distance = %v, want +Inf", got)
				}
				return
			}
			if math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("MinDistSegments = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestDistSegmentPointDegenerate pins the den == 0 branch: a segment whose
// endpoints coincide is a point, and the distance falls back to
// point-to-point.
func TestDistSegmentPointDegenerate(t *testing.T) {
	cases := []struct {
		name    string
		a, b, p Point
		want    float64
	}{
		{"point segment", Point{1, 1}, Point{1, 1}, Point{4, 5}, 5},
		{"point segment zero dist", Point{2, 3}, Point{2, 3}, Point{2, 3}, 0},
		{"projection clamped", Point{0, 0}, Point{1, 0}, Point{5, 0}, 4},
		{"interior projection", Point{0, 0}, Point{10, 0}, Point{5, 2}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := DistSegmentPoint(tc.a, tc.b, tc.p); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("DistSegmentPoint = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestMinDistSegmentMBBZeroDuration covers MINDIST against a box when the
// moving point's segment collapses to an instant inside the box's time
// slab.
func TestMinDistSegmentMBBZeroDuration(t *testing.T) {
	b := MBB{MinX: 0, MinY: 0, MinT: 0, MaxX: 2, MaxY: 2, MaxT: 10}
	inside := Segment{A: STPoint{X: 1, Y: 1, T: 5}, B: STPoint{X: 1, Y: 1, T: 5}}
	if d, ok := MinDistSegmentMBB(inside, b); !ok || d != 0 {
		t.Errorf("instant inside box: got (%v, %v), want (0, true)", d, ok)
	}
	outside := Segment{A: STPoint{X: 5, Y: 2, T: 5}, B: STPoint{X: 5, Y: 2, T: 5}}
	if d, ok := MinDistSegmentMBB(outside, b); !ok || math.Abs(d-3) > 1e-12 {
		t.Errorf("instant outside box: got (%v, %v), want (3, true)", d, ok)
	}
	late := Segment{A: STPoint{X: 1, Y: 1, T: 20}, B: STPoint{X: 1, Y: 1, T: 20}}
	if d, ok := MinDistSegmentMBB(late, b); ok || !math.IsInf(d, 1) {
		t.Errorf("instant after box: got (%v, %v), want (+Inf, false)", d, ok)
	}
}
