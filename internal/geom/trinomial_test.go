package geom

import (
	"math"
	"math/rand"
	"testing"
)

// simpson numerically integrates D(t) as a high-resolution reference.
func simpson(tr Trinomial, n int) float64 {
	if n%2 == 1 {
		n++
	}
	a, b := tr.T0, tr.T1
	if b == a {
		return 0
	}
	h := (b - a) / float64(n)
	sum := tr.Dist(a) + tr.Dist(b)
	for i := 1; i < n; i++ {
		w := 2.0
		if i%2 == 1 {
			w = 4.0
		}
		sum += w * tr.Dist(a+float64(i)*h)
	}
	return sum * h / 3
}

func randSegPair(rng *rand.Rand) (Segment, Segment) {
	t0 := rng.Float64() * 100
	dur := rng.Float64()*20 + 0.05
	mk := func() Segment {
		return Segment{
			STPoint{rng.Float64()*50 - 25, rng.Float64()*50 - 25, t0},
			STPoint{rng.Float64()*50 - 25, rng.Float64()*50 - 25, t0 + dur},
		}
	}
	return mk(), mk()
}

func TestNewTrinomialBasics(t *testing.T) {
	q := Segment{STPoint{0, 0, 0}, STPoint{10, 0, 10}}
	s := Segment{STPoint{0, 3, 0}, STPoint{10, 3, 10}}
	tr := NewTrinomial(q, s)
	if tr.A != 0 || tr.B != 0 || tr.C != 9 {
		t.Fatalf("constant-distance trinomial = %+v", tr)
	}
	if d := tr.Dist(5); d != 3 {
		t.Fatalf("Dist(5) = %v", d)
	}
	if got := tr.Integral(); !almostEq(got, 30, 1e-12) {
		t.Fatalf("Integral = %v, want 30", got)
	}
	if got := tr.Trapezoid(); !almostEq(got, 30, 1e-12) {
		t.Fatalf("Trapezoid = %v, want 30", got)
	}
	if e := tr.TrapezoidError(); e != 0 {
		t.Fatalf("constant distance must have zero error bound, got %v", e)
	}
}

func TestNewTrinomialPanicsOnMisalignedSegments(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for misaligned segments")
		}
	}()
	NewTrinomial(
		Segment{STPoint{0, 0, 0}, STPoint{1, 1, 1}},
		Segment{STPoint{0, 0, 0.5}, STPoint{1, 1, 1.5}},
	)
}

func TestTrinomialMinDist(t *testing.T) {
	// Two objects crossing: q moves right, s moves left along y=0.
	q := Segment{STPoint{0, 0, 0}, STPoint{10, 0, 10}}
	s := Segment{STPoint{10, 0, 0}, STPoint{0, 0, 10}}
	tr := NewTrinomial(q, s)
	d, at := tr.MinDist()
	if !almostEq(d, 0, 1e-9) || !almostEq(at, 5, 1e-9) {
		t.Fatalf("crossing MinDist = %v at %v", d, at)
	}
	// Diverging objects: minimum at interval start.
	s = Segment{STPoint{0, 1, 0}, STPoint{-10, 1, 10}}
	tr = NewTrinomial(q, s)
	d, at = tr.MinDist()
	if !almostEq(d, 1, 1e-12) || at != 0 {
		t.Fatalf("diverging MinDist = %v at %v", d, at)
	}
}

func TestIntegralMatchesSimpson(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		q, s := randSegPair(rng)
		tr := NewTrinomial(q, s)
		exact := tr.Integral()
		ref := simpson(tr, 4000)
		if !almostEq(exact, ref, 1e-6) {
			t.Fatalf("iter %d: exact=%v simpson=%v tri=%+v", i, exact, ref, tr)
		}
	}
}

func TestIntegralDegenerateDiscriminant(t *testing.T) {
	// Objects meeting exactly: distance |t-5|·v → perfect-square trinomial.
	q := Segment{STPoint{0, 0, 0}, STPoint{10, 0, 10}}
	s := Segment{STPoint{10, 0, 0}, STPoint{0, 0, 10}}
	tr := NewTrinomial(q, s)
	// Relative speed 2, distance falls 10→0 over [0,5] then rises 0→10:
	// area = 2·(½·5·10) = 50.
	if got := tr.Integral(); !almostEq(got, 50, 1e-9) {
		t.Fatalf("meeting integral = %v, want 50", got)
	}
	ref := simpson(tr, 4000)
	if !almostEq(tr.Integral(), ref, 1e-5) {
		t.Fatalf("meeting integral %v vs simpson %v", tr.Integral(), ref)
	}
}

func TestIntegralBetweenAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		q, s := randSegPair(rng)
		tr := NewTrinomial(q, s)
		mid := tr.T0 + rng.Float64()*tr.Duration()
		whole := tr.Integral()
		parts := tr.IntegralBetween(tr.T0, mid) + tr.IntegralBetween(mid, tr.T1)
		if !almostEq(whole, parts, 1e-9) {
			t.Fatalf("iter %d: integral not additive: %v vs %v", i, whole, parts)
		}
	}
}

// The core Lemma 1 property: |Trapezoid − exact| ≤ TrapezoidError whenever
// the bound is finite.
func TestTrapezoidErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	finite := 0
	for i := 0; i < 5000; i++ {
		q, s := randSegPair(rng)
		tr := NewTrinomial(q, s)
		exact := tr.Integral()
		approx := tr.Trapezoid()
		bound := tr.TrapezoidError()
		if math.IsInf(bound, 1) {
			continue
		}
		finite++
		if math.Abs(approx-exact) > bound*(1+1e-9)+1e-12 {
			t.Fatalf("iter %d: |%v-%v|=%v exceeds bound %v (tri=%+v)",
				i, approx, exact, math.Abs(approx-exact), bound, tr)
		}
	}
	if finite < 4000 {
		t.Fatalf("too few finite bounds: %d", finite)
	}
}

func TestTrapezoidRefinedConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		q, s := randSegPair(rng)
		tr := NewTrinomial(q, s)
		exact := tr.Integral()
		a1, e1 := tr.TrapezoidRefined(1)
		a8, e8 := tr.TrapezoidRefined(8)
		if !almostEq(a1, tr.Trapezoid(), 1e-12) {
			t.Fatalf("TrapezoidRefined(1) != Trapezoid: %v vs %v", a1, tr.Trapezoid())
		}
		if !math.IsInf(e8, 1) && math.Abs(a8-exact) > e8*(1+1e-9)+1e-12 {
			t.Fatalf("refined bound violated: |%v-%v| > %v", a8, exact, e8)
		}
		if !math.IsInf(e1, 1) && !math.IsInf(e8, 1) && e8 > e1*(1+1e-9) {
			t.Fatalf("refinement did not shrink bound: %v -> %v", e1, e8)
		}
	}
}

func TestTrapezoidErrorInfiniteOnContact(t *testing.T) {
	// Objects that actually meet make f reach zero → unbounded D″.
	q := Segment{STPoint{0, 0, 0}, STPoint{10, 0, 10}}
	s := Segment{STPoint{10, 1e-9, 0}, STPoint{0, -1e-9, 10}}
	tr := NewTrinomial(q, s)
	d, _ := tr.MinDist()
	if d > 1e-6 {
		t.Skip("construction did not produce near-contact")
	}
	// The trapezoid here is badly wrong (≈100 vs exact ≈50); the bound must
	// still cover the gap — infinite, or ≥ the actual error.
	e := tr.TrapezoidError()
	actual := math.Abs(tr.Trapezoid() - tr.Integral())
	if !math.IsInf(e, 1) && e < actual*(1-1e-9) {
		t.Fatalf("near-contact bound %v below actual error %v", e, actual)
	}
	if actual < 10 {
		t.Fatalf("test construction expected a large trapezoid error, got %v", actual)
	}
}

func TestZeroDurationTrinomial(t *testing.T) {
	q := Segment{STPoint{0, 0, 5}, STPoint{0, 0, 5}}
	s := Segment{STPoint{3, 4, 5}, STPoint{3, 4, 5}}
	tr := NewTrinomial(q, s)
	if tr.Integral() != 0 || tr.Trapezoid() != 0 || tr.TrapezoidError() != 0 {
		t.Fatalf("zero-duration must integrate to zero: %+v", tr)
	}
	if d := tr.DistStart(); d != 5 {
		t.Fatalf("DistStart = %v", d)
	}
}

func BenchmarkTrinomialIntegralExact(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	q, s := randSegPair(rng)
	tr := NewTrinomial(q, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Integral()
	}
}

func BenchmarkTrinomialTrapezoid(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	q, s := randSegPair(rng)
	tr := NewTrinomial(q, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Trapezoid()
	}
}
