// Package floatcmp forbids == and != on floating-point operands in the
// numeric core of the library (internal/geom, internal/dissim,
// internal/mst).
//
// The paper's pruning correctness rests on ordered bounds
// (OPTDISSIM ≤ DISSIM ≤ PESDISSIM) computed from floating-point
// geometry; a bit-exact equality slipped into that code usually means an
// unintended tolerance of exactly zero and silently wrong top-k answers
// rather than a crash. Comparisons must go through the approved helpers
// in internal/geom — whose declarations carry a "floatcmp:approved"
// marker in their doc comment — so every exact comparison in the core is
// explicit, named, and auditable. Residual cases can carry a
// //lint:ignore floatcmp <reason> directive.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mstsearch/internal/analysis"
)

// Marker is the doc-comment marker that approves every float comparison
// inside a function (used by the epsilon helpers themselves).
const Marker = "floatcmp:approved"

// Analyzer is the floatcmp invariant check.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "forbid ==/!= on float operands outside approved epsilon helpers " +
		"(functions whose doc comment contains " + Marker + ")",
	Packages: []string{
		"mstsearch/internal/geom",
		"mstsearch/internal/dissim",
		"mstsearch/internal/mst",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Body ranges of approved functions.
		var approved [][2]token.Pos
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			if containsMarker(fd.Doc) {
				approved = append(approved, [2]token.Pos{fd.Body.Pos(), fd.Body.End()})
			}
		}
		inApproved := func(pos token.Pos) bool {
			for _, r := range approved {
				if r[0] <= pos && pos < r[1] {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypesInfo, be.X) && !isFloat(pass.TypesInfo, be.Y) {
				return true
			}
			// Comparisons fully decided at compile time are harmless.
			if isConst(pass.TypesInfo, be.X) && isConst(pass.TypesInfo, be.Y) {
				return true
			}
			if inApproved(be.OpPos) {
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison; use an approved epsilon helper from internal/geom (ExactEq/IsZero for intentional bit-exact guards)",
				be.Op)
			return true
		})
	}
	return nil
}

func containsMarker(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		if strings.Contains(c.Text, Marker) {
			return true
		}
	}
	return false
}

func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
