package floatcmp_test

import (
	"testing"

	"mstsearch/internal/analysis/analysistest"
	"mstsearch/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	diags := analysistest.Run(t, floatcmp.Analyzer, "testdata/floatcmp")
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, want 4", len(diags))
	}
}

func TestAppliesTo(t *testing.T) {
	if !floatcmp.Analyzer.AppliesTo("mstsearch/internal/geom") {
		t.Error("floatcmp should apply to internal/geom")
	}
	if floatcmp.Analyzer.AppliesTo("mstsearch/internal/storage") {
		t.Error("floatcmp should not apply to internal/storage")
	}
}
