package fixture

// Eps is the absolute tolerance used by the epsilon helpers.
const Eps = 1e-12

// ExactEq is a deliberate bit-exact comparison helper.
//
// floatcmp:approved — exact comparison is this helper's whole purpose.
func ExactEq(a, b float64) bool { return a == b }

// Near is an epsilon comparison; no exact comparison inside, so no
// marker needed.
func Near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= Eps
}

func bad(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func badNeq(a, b float32) bool {
	return a != b // want "floating-point != comparison"
}

func badMixed(a float64, n int) bool {
	return a == float64(n) // want "floating-point == comparison"
}

func badThroughHelperCall(a, b float64) bool {
	// Calling the approved helper is the fix; comparing its result is fine,
	// but a second raw comparison is still flagged.
	return ExactEq(a, b) || a != b // want "floating-point != comparison"
}

func constFolded() bool {
	return 1.0 == 2.0 // clean: decided at compile time
}

func ints(a, b int) bool { return a == b } // clean: not floats

func ordered(a, b float64) bool { return a < b } // clean: ordering is fine

func suppressed(a, b float64) bool {
	//lint:ignore floatcmp demonstrating the documented escape hatch
	return a == b
}
