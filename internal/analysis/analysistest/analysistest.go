// Package analysistest runs an analyzer against fixture packages and
// checks its diagnostics against expectations embedded in the fixtures,
// mirroring golang.org/x/tools/go/analysis/analysistest without the
// dependency.
//
// A fixture is a directory of Go files forming one package. Lines
// expected to be flagged carry a trailing comment
//
//	// want "regexp"
//
// whose quoted regular expression must match the diagnostic's message.
// Several expectations may share a line (`// want "a" "b"`). Every
// diagnostic must be matched by an expectation on its line and vice
// versa; clean fixture files simply contain no want comments. lint:ignore
// directives are honoured, so fixtures can also assert the suppression
// machinery.
package analysistest

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mstsearch/internal/analysis"
)

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one want pattern and whether a diagnostic matched it.
type expectation struct {
	re      *regexp.Regexp
	pos     token.Position
	matched bool
}

// Run loads the fixture package in dir, applies the analyzer, and reports
// any mismatch between produced diagnostics and want expectations as test
// errors. It returns the diagnostics for additional assertions.
func Run(t *testing.T, a *analysis.Analyzer, dir string) []analysis.Diagnostic {
	t.Helper()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	// Fixtures are loaded with their in-package _test.go files included,
	// so analyzers that inspect test hygiene (leakcheck) can be exercised
	// the same way as the rest.
	pkg, err := loader.LoadDirTests(dir, "fixture")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	// Collect expectations from // want comments.
	expects := map[string][]*expectation{} // "file:line" → expectations
	key := func(p token.Position) string {
		return p.Filename + ":" + strconv.Itoa(p.Line)
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					expects[key(pos)] = append(expects[key(pos)], &expectation{re: re, pos: pos})
				}
			}
		}
	}

	for _, d := range diags {
		k := key(d.Position)
		matched := false
		for _, e := range expects[k] {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, es := range expects {
		for _, e := range es {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", e.pos, e.re)
			}
		}
	}
	return diags
}
