package fixture

import "sync/atomic"

// pool mirrors the striped buffer pool's stats block: plain uint64
// counters bumped through sync/atomic on the hot path.
type pool struct {
	hits   uint64
	misses uint64
	evict  uint64 // only ever accessed plainly — not an atomic field
}

func (p *pool) hit() {
	atomic.AddUint64(&p.hits, 1)
	atomic.AddUint64(&p.misses, 0)
}

// snapshot reads one counter correctly and one plainly.
func (p *pool) snapshot() (uint64, uint64) {
	h := atomic.LoadUint64(&p.hits)
	m := p.misses // want "plain access to field fixture.misses, which is accessed with sync/atomic"
	return h, m
}

// reset writes an atomic counter plainly.
func (p *pool) reset() {
	p.hits = 0 // want "plain access to field fixture.hits, which is accessed with sync/atomic"
	p.evict = 0
}

// gauges mirrors the obs registry: counters of the sync/atomic wrapper
// types, safe by construction as long as nobody copies them.
type gauges struct {
	depth atomic.Int64
	total atomic.Uint64
}

func (g *gauges) bump() {
	g.depth.Add(1)
	g.total.Store(g.total.Load() + 1)
}

func (g *gauges) export() int64 {
	d := g.depth // want "field fixture.depth of type sync/atomic.Int64 is copied by value"
	return d.Load()
}

// share passes a pointer to the wrapper, which is fine.
func (g *gauges) share() *atomic.Uint64 {
	return &g.total
}
