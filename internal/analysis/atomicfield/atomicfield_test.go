package atomicfield_test

import (
	"testing"

	"mstsearch/internal/analysis/analysistest"
	"mstsearch/internal/analysis/atomicfield"
)

func TestAtomicfield(t *testing.T) {
	diags := analysistest.Run(t, atomicfield.Analyzer, "testdata/atomicfield")
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3", len(diags))
	}
}
