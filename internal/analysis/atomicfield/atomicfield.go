// Package atomicfield enforces atomic access discipline across the whole
// program: a struct field that is accessed through sync/atomic anywhere —
// an obs counter bumped with atomic.AddUint64, a pool stat read with
// atomic.LoadUint64 — may never be read or written plainly anywhere else,
// because one plain access next to one atomic access is a data race the
// race detector only catches when the schedule cooperates. Fields of the
// sync/atomic wrapper types (atomic.Uint64, atomic.Int64, …) are safe by
// construction, but copying one copies the value non-atomically (and
// defeats the wrapper), so value copies of atomic-typed fields are
// flagged too.
//
// The check is whole-program because the mixed accesses that matter are
// the cross-package ones: a counter updated atomically inside
// internal/obs and read plainly from a server gauge is exactly the bug a
// per-file check cannot see.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"mstsearch/internal/analysis"
)

// Analyzer is the atomic-discipline invariant check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "a field accessed via sync/atomic anywhere must never be read or " +
		"written plainly; atomic-typed fields must not be copied by value",
	RunProgram: run,
}

func run(pass *analysis.ProgramPass) error {
	// Pass 1: collect the fields whose address escapes into a sync/atomic
	// call anywhere in the program, remembering one example position per
	// field, plus the selector nodes that form those sanctioned accesses.
	atomicFields := map[*types.Var]token.Pos{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, pkg := range pass.Program.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := un.X.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					fld := fieldOf(pkg.Info, sel)
					if fld == nil {
						continue
					}
					if _, seen := atomicFields[fld]; !seen {
						atomicFields[fld] = call.Pos()
					}
					sanctioned[sel] = true
				}
				return true
			})
		}
	}

	// Pass 2: flag every other access. For plain fields in atomicFields,
	// any selector outside a sanctioned &f-into-atomic argument is a racy
	// mixed access. For fields of sync/atomic wrapper types, a selector
	// is fine as a method-call receiver or under &, and a race as a value
	// copy anywhere else.
	for _, pkg := range pass.Program.Packages {
		for _, f := range pkg.Files {
			walkWithParent(f, func(n ast.Node, parent ast.Node) {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return
				}
				fld := fieldOf(pkg.Info, sel)
				if fld == nil {
					return
				}
				if pos, isAtomic := atomicFields[fld]; isAtomic && !sanctioned[sel] {
					pass.Reportf(sel.Pos(),
						"plain access to field %s, which is accessed with sync/atomic at %s; mixing plain and atomic access is a data race — use the atomic operations everywhere",
						fieldLabel(fld), pass.Fset.Position(pos))
					return
				}
				if isAtomicWrapperType(fld.Type()) && !wrapperUseOK(parent, sel) {
					pass.Reportf(sel.Pos(),
						"field %s of type %s is copied by value; atomic values must be used through their methods (Load/Store/Add), never copied",
						fieldLabel(fld), fld.Type())
				}
			})
		}
	}
	return nil
}

// wrapperUseOK reports whether an atomic-wrapper field selector is in a
// sanctioned position: the receiver of a method selection (c.v.Load())
// or under an address-of (&c.v passed along as a pointer).
func wrapperUseOK(parent ast.Node, sel *ast.SelectorExpr) bool {
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		return p.X == sel // c.v.Load — sel is the receiver part
	case *ast.UnaryExpr:
		return p.Op == token.AND
	}
	return false
}

// fieldOf resolves a selector to the struct field it selects, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// fieldLabel renders a field as pkg.Type.field when the owner is known.
func fieldLabel(fld *types.Var) string {
	label := fld.Name()
	if fld.Pkg() != nil {
		label = fld.Pkg().Name() + "." + label
	}
	return label
}

// isAtomicWrapperType reports whether t is one of the sync/atomic value
// types (atomic.Uint64, atomic.Int64, atomic.Bool, …).
func isAtomicWrapperType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// walkWithParent walks the AST calling fn with each node and its parent.
func walkWithParent(root ast.Node, fn func(n, parent ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		var parent ast.Node
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		fn(n, parent)
		stack = append(stack, n)
		return true
	})
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
