package fixture

import "context"

// Search is the no-ctx compatibility wrapper; minting a Background
// context here is the designed API boundary and stays legal.
func Search() error { return SearchContext(context.Background()) }

// SearchContext is the context-aware implementation.
func SearchContext(ctx context.Context) error {
	return ctx.Err()
}

func badBackground(ctx context.Context) error {
	return SearchContext(context.Background()) // want "context.Background inside badBackground"
}

func badTODO(ctx context.Context) error {
	return SearchContext(context.TODO()) // want "context.TODO inside badTODO"
}

func badSibling(ctx context.Context) error {
	return Search() // want "Search has a context-aware sibling SearchContext"
}

func good(ctx context.Context) error {
	return SearchContext(ctx)
}

// DB exercises the method path.
type DB struct{}

// Query is the no-ctx wrapper (no context parameter: exempt).
func (db *DB) Query() error { return db.QueryContext(context.Background()) }

// QueryContext is the context-aware method.
func (db *DB) QueryContext(ctx context.Context) error { return ctx.Err() }

func badMethod(ctx context.Context, db *DB) error {
	return db.Query() // want "Query has a context-aware sibling QueryContext"
}

func goodMethod(ctx context.Context, db *DB) error {
	return db.QueryContext(ctx)
}

func suppressed(ctx context.Context) error {
	//lint:ignore ctxflow detached audit write must survive request cancellation
	return SearchContext(context.Background())
}
