package fixture

import "context"

// Search is the no-ctx compatibility wrapper; minting a Background
// context here is the designed API boundary and stays legal.
func Search() error { return SearchContext(context.Background()) }

// SearchContext is the context-aware implementation.
func SearchContext(ctx context.Context) error {
	return ctx.Err()
}

func badBackground(ctx context.Context) error {
	return SearchContext(context.Background()) // want "context.Background inside badBackground"
}

func badTODO(ctx context.Context) error {
	return SearchContext(context.TODO()) // want "context.TODO inside badTODO"
}

func badSibling(ctx context.Context) error {
	return Search() // want "Search has a context-aware sibling SearchContext"
}

func good(ctx context.Context) error {
	return SearchContext(ctx)
}

// DB exercises the method path.
type DB struct{}

// Query is the no-ctx wrapper (no context parameter: exempt).
func (db *DB) Query() error { return db.QueryContext(context.Background()) }

// QueryContext is the context-aware method.
func (db *DB) QueryContext(ctx context.Context) error { return ctx.Err() }

func badMethod(ctx context.Context, db *DB) error {
	return db.Query() // want "Query has a context-aware sibling QueryContext"
}

func goodMethod(ctx context.Context, db *DB) error {
	return db.QueryContext(ctx)
}

// Run is the canonical context-first entry point the deprecated wrappers
// below forward to.
func (db *DB) Run(ctx context.Context) error { return ctx.Err() }

// OldQueryContext retains the legacy name for old call sites.
//
// Deprecated: use DB.Run. The wrapper's call to the non-Context canonical
// method must not trip the sibling check.
func (db *DB) OldQueryContext(ctx context.Context) error {
	return db.Query() // exempt: declaration is marked Deprecated
}

// Detached keeps the legacy detach-from-caller semantics.
//
// Deprecated: use DB.Run with the caller's context.
func Detached(ctx context.Context) error {
	return SearchContext(context.Background()) // exempt: declaration is marked Deprecated
}

func suppressed(ctx context.Context) error {
	//lint:ignore ctxflow detached audit write must survive request cancellation
	return SearchContext(context.Background())
}
