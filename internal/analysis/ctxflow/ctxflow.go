// Package ctxflow enforces context propagation through the query stack.
//
// PR 1's hardening contract is that cancellation reaches every node read:
// each query API has a ...Context variant and the context is threaded all
// the way down. Two mistakes silently break that contract without
// breaking any test: a function that already receives a ctx but calls
// context.Background()/context.TODO() (detaching the subtree from the
// caller's deadline), and a function that receives a ctx but calls the
// context-less variant of a callee whose FooContext sibling exists. Both
// are flagged here.
//
// Functions without a context parameter are exempt — they are the
// documented no-ctx compatibility wrappers, whose context.Background()
// call is the designed API boundary. Functions whose doc comment carries
// the standard "Deprecated:" marker are exempt too: a deprecated wrapper
// exists only to forward old call sites to its canonical replacement, and
// that replacement (e.g. DB.Query) is often the method the wrapper's
// FooContext sibling would shadow — the enforced surface is the
// replacement, not the shim kept for compatibility.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"mstsearch/internal/analysis"
)

// Analyzer is the ctxflow invariant check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "functions receiving a context.Context must pass it on: no " +
		"context.Background/TODO, and no calling Foo when FooContext exists",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasCtxParam(pass.TypesInfo, fd) {
				continue
			}
			if isDeprecated(fd) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

// isDeprecated reports whether the function's doc comment carries the
// standard "Deprecated:" marker. Deprecated wrappers are frozen
// compatibility shims — their job is to forward to the canonical
// replacement verbatim, so ctxflow does not police their bodies.
func isDeprecated(fd *ast.FuncDecl) bool {
	return fd.Doc != nil && strings.Contains(fd.Doc.Text(), "Deprecated:")
}

// hasCtxParam reports whether the function declares a context.Context
// parameter.
func hasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isContextType(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		if callee.Pkg() != nil && callee.Pkg().Path() == "context" {
			if callee.Name() == "Background" || callee.Name() == "TODO" {
				pass.Reportf(call.Pos(),
					"context.%s inside %s, which already receives a context; pass the caller's context through",
					callee.Name(), fd.Name.Name)
			}
			return true
		}
		if ctxVariant := contextSibling(callee); ctxVariant != "" {
			pass.Reportf(call.Pos(),
				"%s has a context-aware sibling %s; call it and pass the context (function %s receives one)",
				callee.Name(), ctxVariant, fd.Name.Name)
		}
		return true
	})
}

// calleeFunc resolves the called function or method, or nil for dynamic
// calls, conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// contextSibling returns the name of a FooContext sibling of the callee —
// a function or method in the same scope whose name is the callee's plus
// "Context" and whose first parameter is a context.Context — or "".
func contextSibling(fn *types.Func) string {
	name := fn.Name()
	if len(name) >= len("Context") && name[len(name)-len("Context"):] == "Context" {
		return "" // already the context-aware variant
	}
	want := name + "Context"
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		// Method: look for a sibling method on the receiver's named type.
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if m.Name() == want && takesContextFirst(m) {
				return want
			}
		}
		return ""
	}
	// Package-level function: look in the defining package's scope.
	if fn.Pkg() == nil {
		return ""
	}
	if obj, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok && takesContextFirst(obj) {
		return want
	}
	return ""
}

func takesContextFirst(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}
