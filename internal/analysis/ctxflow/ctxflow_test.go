package ctxflow_test

import (
	"testing"

	"mstsearch/internal/analysis/analysistest"
	"mstsearch/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	diags := analysistest.Run(t, ctxflow.Analyzer, "testdata/ctxflow")
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, want 4", len(diags))
	}
}
