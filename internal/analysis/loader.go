package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files, build-constraint filtered
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks the packages of a single module. Imports
// inside the module are resolved against the module directory; standard
// library imports are type-checked from GOROOT source via the stdlib
// source importer. No export data, go command invocation, or third-party
// loader is involved, so the loader works in a hermetic build environment.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	std      types.Importer
	pkgs     map[string]*Package
	testPkgs map[string]*Package // test-augmented variants, keyed by import path
	loading  map[string]bool
}

// NewLoader creates a loader rooted at the module containing dir (the
// nearest parent directory with a go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir := abs
	for {
		if _, err := os.Stat(filepath.Join(modDir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(modDir)
		if parent == modDir {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		modDir = parent
	}
	modPath, err := modulePath(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  modDir,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Import implements types.Importer: module-local packages are loaded from
// source under the module directory, everything else is delegated to the
// standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the module package with the given import
// path (cached across calls, so shared dependencies are checked once).
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	rel := strings.TrimPrefix(importPath, l.ModulePath)
	rel = strings.TrimPrefix(rel, "/")
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
	p, err := l.LoadDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = p
	return p, nil
}

// LoadTests parses and type-checks the test-augmented variant of a
// module package: its non-test files plus the in-package _test.go files,
// checked together as one package (the go tool's internal-test view).
// External _test packages are not loaded. Returns nil with no error when
// the package has no in-package test files. Results are cached separately
// from the non-test variant, so the two views never alias.
func (l *Loader) LoadTests(importPath string) (*Package, error) {
	if l.testPkgs == nil {
		l.testPkgs = map[string]*Package{}
	}
	if p, ok := l.testPkgs[importPath]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(importPath, l.ModulePath)
	rel = strings.TrimPrefix(rel, "/")
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	if len(bp.TestGoFiles) == 0 {
		l.testPkgs[importPath] = nil
		return nil, nil
	}
	p, err := l.loadDir(dir, importPath, true)
	if err != nil {
		return nil, err
	}
	l.testPkgs[importPath] = p
	return p, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given import path. Test files are excluded; build constraints are
// evaluated under the default build context (so files behind optional
// tags like debugassert are analyzed only when the tag is active).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	return l.loadDir(dir, importPath, false)
}

// LoadDirTests is LoadDir including the directory's in-package _test.go
// files — the fixture-loading path for analyzers that inspect tests.
func (l *Loader) LoadDirTests(dir, importPath string) (*Package, error) {
	return l.loadDir(dir, importPath, true)
}

func (l *Loader) loadDir(dir, importPath string, includeTests bool) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	names := append([]string{}, bp.GoFiles...)
	if includeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// ExpandPatterns resolves package patterns ("./...", "./internal/geom",
// import paths) into the module's import paths, mirroring the go tool's
// pattern syntax closely enough for a lint driver. testdata, hidden and
// underscore-prefixed directories are skipped, as are directories with no
// non-test Go files.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			paths, err := l.walkTree(l.ModuleDir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasPrefix(pat, "./") && strings.HasSuffix(pat, "/..."):
			rel := strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/...")
			paths, err := l.walkTree(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasPrefix(pat, "./"):
			rel := filepath.ToSlash(strings.TrimPrefix(pat, "./"))
			if rel == "" || rel == "." {
				add(l.ModulePath)
			} else {
				add(l.ModulePath + "/" + rel)
			}
		default:
			add(pat)
		}
	}
	return out, nil
}

// walkTree lists every buildable package directory under root (a
// directory inside the module) as an import path.
func (l *Loader) walkTree(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := build.ImportDir(path, 0); err != nil {
			return nil // no buildable Go files here; keep walking
		}
		rel, err := filepath.Rel(l.ModuleDir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.ModulePath)
		} else {
			out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return out, err
}
