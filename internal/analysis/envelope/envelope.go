// Package envelope enforces the error-envelope contract between the
// core packages and the HTTP serving layer: every exported error
// sentinel the index, WAL and storage layers can hand a caller must be
// translated to a stable envelope code in internal/server/envelope.go,
// and sentinel comparisons anywhere in the module must go through
// errors.Is, never ==, because the durability paths wrap errors with
// %w as they cross layers.
//
// The mapping check is a whole-program fact-passing problem: sentinels
// are declared in one package, re-exported through alias vars in the
// root package (var ErrWALCorrupt = wal.ErrWALCorrupt), and consumed by
// the switch in envelope.go. The analyzer builds reference edges from
// package-level initializers and type aliases and takes the closure of
// what envelope.go mentions, so a sentinel mapped through its root
// alias counts as mapped.
package envelope

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"mstsearch/internal/analysis"
)

// Analyzer is the error-envelope conformance check. Packages lists the
// layers whose exported sentinels must be mapped; the == check applies
// to the whole program.
var Analyzer = &analysis.Analyzer{
	Name: "envelope",
	Doc: "every exported error sentinel in the core layers must be mapped " +
		"to an envelope code in internal/server/envelope.go, and sentinel " +
		"comparisons must use errors.Is, never == or !=",
	Packages: []string{
		"mstsearch",
		"mstsearch/internal/index",
		"mstsearch/internal/wal",
		"mstsearch/internal/storage",
	},
	RunProgram: run,
}

// serverPath is the package holding the envelope mapping. Fixtures play
// both roles themselves.
const serverPath = "mstsearch/internal/server"

func run(pass *analysis.ProgramPass) error {
	prog := pass.Program
	checkComparisons(pass)

	envPkg := prog.Package(serverPath)
	if fx := prog.Package("fixture"); fx != nil {
		envPkg = fx
	}
	if envPkg == nil {
		// Subset run without the serving layer: the mapping cannot be
		// judged, so only the comparison check applies.
		return nil
	}

	// Everything envelope.go itself references.
	mapped := map[types.Object]bool{}
	for _, f := range envPkg.Files {
		if filepath.Base(pass.Fset.Position(f.Pos()).Filename) != "envelope.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := envPkg.Info.Uses[id]; obj != nil {
					mapped[obj] = true
				}
			}
			return true
		})
	}

	// Reference edges between package-level declarations: initializer
	// expressions (var ErrWALCorrupt = wal.ErrWALCorrupt, fmt.Errorf
	// wraps) and type aliases. Propagation is bidirectional — mentioning
	// either end of an alias in envelope.go maps both.
	edges := map[types.Object][]types.Object{}
	addEdge := func(a, b types.Object) {
		// Only module-declared package-level vars and type names may form
		// edges: a shared constructor like errors.New would otherwise
		// connect every sentinel to every other through the initializers.
		if a == nil || b == nil || a == b || !linkable(prog, a) || !linkable(prog, b) {
			return
		}
		edges[a] = append(edges[a], b)
		edges[b] = append(edges[b], a)
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					switch sp := spec.(type) {
					case *ast.ValueSpec:
						var defs []types.Object
						for _, name := range sp.Names {
							defs = append(defs, pkg.Info.Defs[name])
						}
						for _, v := range sp.Values {
							ast.Inspect(v, func(n ast.Node) bool {
								if id, ok := n.(*ast.Ident); ok {
									if used := pkg.Info.Uses[id]; used != nil {
										for _, d := range defs {
											addEdge(d, used)
										}
									}
								}
								return true
							})
						}
					case *ast.TypeSpec:
						if !sp.Assign.IsValid() {
							continue
						}
						def := pkg.Info.Defs[sp.Name]
						ast.Inspect(sp.Type, func(n ast.Node) bool {
							if id, ok := n.(*ast.Ident); ok {
								if used := pkg.Info.Uses[id]; used != nil {
									addEdge(def, used)
								}
							}
							return true
						})
					}
				}
			}
		}
	}

	// Closure of the mapped set over the edges.
	queue := make([]types.Object, 0, len(mapped))
	for obj := range mapped {
		queue = append(queue, obj)
	}
	for len(queue) > 0 {
		obj := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, next := range edges[obj] {
			if !mapped[next] {
				mapped[next] = true
				queue = append(queue, next)
			}
		}
	}

	// Every exported sentinel in the scoped layers must be in the closure.
	for _, pkg := range prog.Packages {
		if !pass.Analyzer.InspectPackage(pkg.Path) {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			obj := scope.Lookup(name)
			if !obj.Exported() || !strings.HasPrefix(name, "Err") {
				continue
			}
			switch o := obj.(type) {
			case *types.Var:
				if !implementsError(o.Type()) {
					continue
				}
			case *types.TypeName:
				if o.IsAlias() {
					continue // the aliased type is checked in its own package
				}
				if !implementsError(o.Type()) && !implementsError(types.NewPointer(o.Type())) {
					continue
				}
			default:
				continue
			}
			if !mapped[obj] {
				pass.Reportf(obj.Pos(),
					"exported error sentinel %s.%s is not mapped in envelope.go: every error the core layers export must translate to a stable envelope code",
					pkg.Types.Name(), name)
			}
		}
	}
	return nil
}

// checkComparisons flags == and != against module-declared sentinels
// anywhere in the program.
func checkComparisons(pass *analysis.ProgramPass) {
	for _, pkg := range pass.Program.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				for _, operand := range [2]ast.Expr{be.X, be.Y} {
					v := sentinelVar(pass.Program, pkg.Info, operand)
					if v == nil {
						continue
					}
					pass.Reportf(be.Pos(),
						"comparison against sentinel %s with %s misses wrapped errors; use errors.Is",
						v.Name(), be.Op)
					break
				}
				return true
			})
		}
	}
}

// sentinelVar resolves expr to a package-level Err* error variable
// declared in one of the program's packages, or nil.
func sentinelVar(prog *analysis.Program, info *types.Info, expr ast.Expr) *types.Var {
	var obj types.Object
	switch e := expr.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() || !implementsError(v.Type()) {
		return nil
	}
	if prog.Package(v.Pkg().Path()) == nil {
		return nil // stdlib sentinels like io.EOF follow their own conventions
	}
	return v
}

// linkable reports whether obj can be an endpoint of a reference edge:
// a package-level var or a type name declared inside the program.
func linkable(prog *analysis.Program, obj types.Object) bool {
	if obj.Pkg() == nil || prog.Package(obj.Pkg().Path()) == nil {
		return false
	}
	switch o := obj.(type) {
	case *types.Var:
		return o.Parent() == o.Pkg().Scope()
	case *types.TypeName:
		return true
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return types.Implements(t, errorIface)
}
