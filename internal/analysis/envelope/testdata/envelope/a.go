package fixture

import "errors"

// Sentinels in the style of the wal and storage layers.
var (
	ErrNotDurable = errors.New("not durable")
	ErrWALCorrupt = errors.New("wal corrupt")
	ErrLost       = errors.New("write lost") // want "exported error sentinel fixture.ErrLost is not mapped in envelope.go"
)

// ErrAlias mirrors the root package re-export pattern
// (var ErrWALCorrupt = wal.ErrWALCorrupt): mapping the alias maps the
// underlying sentinel through the reference edge.
var ErrAlias = ErrWALCorrupt

// ErrPageCorrupt mirrors the storage layer's typed sentinel.
type ErrPageCorrupt struct{ Page uint32 }

func (e ErrPageCorrupt) Error() string { return "page corrupt" }

// ErrBadFrame is exported but never translated by the envelope.
type ErrBadFrame struct{} // want "exported error sentinel fixture.ErrBadFrame is not mapped in envelope.go"

func (ErrBadFrame) Error() string { return "bad frame" }

// errInternal is unexported: callers cannot see it, so the envelope
// need not name it.
var errInternal = errors.New("internal")

func classify(err error) string {
	if err == ErrNotDurable { // want "comparison against sentinel ErrNotDurable with == misses wrapped errors"
		return "not-durable"
	}
	if err != ErrWALCorrupt { // want "comparison against sentinel ErrWALCorrupt with != misses wrapped errors"
		return "other"
	}
	if errors.Is(err, ErrLost) { // the right way — not flagged
		return "lost"
	}
	if err == errInternal { // unexported, not a public sentinel
		return "internal"
	}
	return "corrupt"
}
