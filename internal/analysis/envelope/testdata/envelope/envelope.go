package fixture

import "errors"

// envelopeFor mirrors internal/server/envelope.go: the single switch
// that translates core-layer errors to stable codes. Referencing a
// sentinel here (or an alias of one) marks it mapped.
func envelopeFor(err error) int {
	var pc ErrPageCorrupt
	switch {
	case errors.Is(err, ErrNotDurable):
		return 400
	case errors.Is(err, ErrAlias): // maps ErrWALCorrupt through the alias edge
		return 500
	case errors.As(err, &pc):
		return 500
	default:
		return 500
	}
}
