package envelope_test

import (
	"testing"

	"mstsearch/internal/analysis/analysistest"
	"mstsearch/internal/analysis/envelope"
)

func TestEnvelope(t *testing.T) {
	diags := analysistest.Run(t, envelope.Analyzer, "testdata/envelope")
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, want 4", len(diags))
	}
}
