// Package analysis is a small, dependency-free static-analysis framework
// modelled on golang.org/x/tools/go/analysis, built only on the standard
// library's go/ast, go/parser, go/types and go/build packages (this
// repository deliberately carries no third-party dependencies).
//
// It exists to machine-check the invariants the paper's correctness
// arguments rest on — epsilon-safe float comparisons in the geometry and
// bound computations, context propagation through the query stack, typed
// errors across the storage boundary, and lock discipline on shared
// structures — instead of trusting convention. The concrete rules live in
// the analyzer subpackages (floatcmp, ctxflow, typederr, lockcheck) and
// are driven by cmd/mstlint.
//
// # Suppression
//
// A finding can be silenced with a staticcheck-style directive placed on
// the offending line or the line directly above it:
//
//	//lint:ignore <analyzer> <justification>
//
// The justification is mandatory; a bare directive is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Packages restricts which import paths the driver applies the
	// analyzer to (exact match). Empty means every package. Test runners
	// ignore this field and run the analyzer unconditionally.
	Packages []string
	// Run performs the check, reporting findings through the pass.
	Run func(*Pass) error
}

// AppliesTo reports whether the driver should run the analyzer on the
// package with the given import path.
func (a *Analyzer) AppliesTo(path string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if p == path {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

// String formats the diagnostic the way compilers do, so editors can jump
// to it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzer string // analyzer name, or "*" for all
	reason   string
	position token.Position
	used     bool
}

// suppressions indexes lint:ignore directives by file and line. A
// directive covers its own line and the next one, so it works both as a
// trailing comment and on the line above a flagged statement.
type suppressions struct {
	byLine map[string]map[int]*ignoreDirective
	bad    []Diagnostic // malformed directives, reported as findings
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: map[string]map[int]*ignoreDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) < 2 {
					s.bad = append(s.bad, Diagnostic{
						Analyzer: "lintdirective",
						Position: pos,
						Message:  "malformed //lint:ignore directive: need an analyzer name and a justification",
					})
					continue
				}
				d := &ignoreDirective{analyzer: fields[0], reason: strings.Join(fields[1:], " "), position: pos}
				m := s.byLine[pos.Filename]
				if m == nil {
					m = map[int]*ignoreDirective{}
					s.byLine[pos.Filename] = m
				}
				m[pos.Line] = d
			}
		}
	}
	return s
}

// suppressed reports whether d is covered by a directive, marking the
// directive used.
func (s *suppressions) suppressed(d Diagnostic) bool {
	m := s.byLine[d.Position.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{d.Position.Line, d.Position.Line - 1} {
		if dir, ok := m[line]; ok && (dir.analyzer == "*" || dir.analyzer == d.Analyzer) {
			dir.used = true
			return true
		}
	}
	return false
}

// Run applies the analyzers to one loaded package and returns the
// surviving diagnostics sorted by position. lint:ignore directives are
// honoured; malformed ones surface as findings themselves.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.suppressed(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, sup.bad...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Position, kept[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}
