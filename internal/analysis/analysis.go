// Package analysis is a small, dependency-free static-analysis framework
// modelled on golang.org/x/tools/go/analysis, built only on the standard
// library's go/ast, go/parser, go/types and go/build packages (this
// repository deliberately carries no third-party dependencies).
//
// It exists to machine-check the invariants the paper's correctness
// arguments rest on — epsilon-safe float comparisons in the geometry and
// bound computations, context propagation through the query stack, typed
// errors across the storage boundary, and lock discipline on shared
// structures — instead of trusting convention. The concrete rules live in
// the analyzer subpackages (floatcmp, ctxflow, typederr, lockcheck,
// lockorder, fsyncorder, envelope, atomicfield, leakcheck) and are driven
// by cmd/mstlint.
//
// Analyzers come in two shapes. A per-package analyzer (Run) sees one
// type-checked package at a time. A whole-program analyzer (RunProgram)
// sees every loaded package of the module at once and may pass facts
// between them — the shape the cross-cutting invariants need: a lock
// acquisition graph spans the DB facade, the storage pools and the
// serving layer; the error-envelope contract relates sentinels declared
// in one package to a mapping function in another. An analyzer that sets
// NeedTests additionally receives test-augmented package variants
// (_test.go files type-checked into their package), which is how test
// hygiene rules like leakcheck see test functions at all.
//
// # Suppression
//
// A finding can be silenced with a staticcheck-style directive placed on
// the offending line or the line directly above it:
//
//	//lint:ignore <analyzer> <justification>
//
// The justification is mandatory and must carry at least MinJustification
// characters of text; a bare or under-justified directive is itself
// reported, as is a directive that no longer suppresses anything (stale
// suppressions rot into false documentation, so they are findings too).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MinJustification is the minimum length, in characters, of the
// justification text a //lint:ignore directive must carry. Ten characters
// is too short for prose but long enough to rule out placeholder grunts
// ("ok", "fixme", "x") that document nothing.
const MinJustification = 10

// Analyzer is one named invariant check. Exactly one of Run and
// RunProgram must be set.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Packages restricts which import paths the driver applies a
	// per-package analyzer to (exact match). Empty means every package.
	// Test runners ignore this field and run the analyzer
	// unconditionally. Whole-program analyzers scope themselves and
	// ignore this field too.
	Packages []string
	// Run performs a per-package check, reporting findings through the
	// pass.
	Run func(*Pass) error
	// RunProgram performs a whole-program check over every loaded
	// package at once.
	RunProgram func(*ProgramPass) error
	// NeedTests asks the driver to load test-augmented package variants
	// (GoFiles + TestGoFiles type-checked together) into
	// Program.Tests. Only meaningful for whole-program analyzers.
	NeedTests bool
}

// AppliesTo reports whether the driver should run the analyzer on the
// package with the given import path.
func (a *Analyzer) AppliesTo(path string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if p == path {
			return true
		}
	}
	return false
}

// InspectPackage reports whether a whole-program analyzer should inspect
// the package with the given import path: its declared scope, plus the
// analysistest fixture path so fixtures exercise scoped analyzers.
func (a *Analyzer) InspectPackage(path string) bool {
	return a.AppliesTo(path) || path == "fixture"
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Program is the whole-program analysis unit: every package the driver
// loaded, sharing one FileSet, plus test-augmented variants for the
// analyzers that asked for them.
type Program struct {
	// Packages are the non-test packages, in load order.
	Packages []*Package
	// Tests are test-augmented package variants (same import paths as
	// entries of Packages, with _test.go files type-checked in). Only
	// populated when an analyzer in the run sets NeedTests, and only for
	// packages that have in-package test files.
	Tests []*Package
}

// Package returns the non-test package with the given import path, or
// nil when the program does not hold it (whole-program analyzers degrade
// gracefully when run on a subset of the module).
func (prog *Program) Package(path string) *Package {
	for _, p := range prog.Packages {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// ProgramPass carries one whole-program analyzer's view of the program.
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Program  *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

// String formats the diagnostic the way compilers do, so editors can jump
// to it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzer string // analyzer name, or "*" for all
	reason   string
	position token.Position
	used     bool
}

// suppressions indexes lint:ignore directives by file and line. A
// directive covers its own line and the next one, so it works both as a
// trailing comment and on the line above a flagged statement.
type suppressions struct {
	byLine map[string]map[int]*ignoreDirective
	bad    []Diagnostic // malformed directives, reported as findings
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: map[string]map[int]*ignoreDirective{}}
	seenFile := map[string]bool{}
	for _, f := range files {
		// The same source file can appear twice when a test-augmented
		// package variant re-parses the non-test files; collect each
		// file's directives once so the used-marking is not split across
		// duplicate directive objects.
		name := fset.Position(f.Pos()).Filename
		if seenFile[name] {
			continue
		}
		seenFile[name] = true
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) < 2 {
					s.bad = append(s.bad, Diagnostic{
						Analyzer: "lintdirective",
						Position: pos,
						Message:  "malformed //lint:ignore directive: need an analyzer name and a justification",
					})
					continue
				}
				reason := strings.Join(fields[1:], " ")
				if len(reason) < MinJustification {
					s.bad = append(s.bad, Diagnostic{
						Analyzer: "lintdirective",
						Position: pos,
						Message: fmt.Sprintf("//lint:ignore justification %q is too short (%d chars, minimum %d): say why the finding is acceptable",
							reason, len(reason), MinJustification),
					})
					continue
				}
				d := &ignoreDirective{analyzer: fields[0], reason: reason, position: pos}
				m := s.byLine[pos.Filename]
				if m == nil {
					m = map[int]*ignoreDirective{}
					s.byLine[pos.Filename] = m
				}
				m[pos.Line] = d
			}
		}
	}
	return s
}

// unused reports the directives that suppressed nothing, restricted to
// directives naming an analyzer that actually ran (a directive for an
// out-of-scope analyzer is not stale, just out of scope this run).
func (s *suppressions) unused(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, m := range s.byLine {
		for _, d := range m {
			if d.used {
				continue
			}
			if d.analyzer != "*" && !ran[d.analyzer] {
				continue
			}
			out = append(out, Diagnostic{
				Analyzer: "lintdirective",
				Position: d.position,
				Message:  fmt.Sprintf("unused //lint:ignore %s directive: no %s finding on this line any more; delete it", d.analyzer, d.analyzer),
			})
		}
	}
	return out
}

// suppressed reports whether d is covered by a directive, marking the
// directive used.
func (s *suppressions) suppressed(d Diagnostic) bool {
	m := s.byLine[d.Position.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{d.Position.Line, d.Position.Line - 1} {
		if dir, ok := m[line]; ok && (dir.analyzer == "*" || dir.analyzer == d.Analyzer) {
			dir.used = true
			return true
		}
	}
	return false
}

// Run applies the analyzers to one loaded package and returns the
// surviving diagnostics sorted by position. Per-package analyzers run
// unconditionally (the Packages scope is a driver concern); whole-program
// analyzers see a single-package program whose test view is the same
// package. lint:ignore directives are honoured; malformed, under-justified
// and unused ones surface as findings themselves.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog := &Program{Packages: []*Package{pkg}, Tests: []*Package{pkg}}
	return run(prog, analyzers, false)
}

// RunAll applies the analyzers to a loaded program: per-package analyzers
// to each package within their declared scope, whole-program analyzers to
// the program as a whole. Suppressions are resolved across every file of
// the program — including test files — so a directive can silence a
// whole-program finding, and a directive that silences nothing is itself
// reported.
func RunAll(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	return run(prog, analyzers, true)
}

func run(prog *Program, analyzers []*Analyzer, scoped bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	ran := map[string]bool{}
	for _, a := range analyzers {
		switch {
		case a.RunProgram != nil:
			pass := &ProgramPass{
				Analyzer: a,
				Fset:     progFset(prog),
				Program:  prog,
				diags:    &diags,
			}
			if err := a.RunProgram(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			ran[a.Name] = true
		case a.Run != nil:
			for _, pkg := range prog.Packages {
				if scoped && !a.AppliesTo(pkg.Path) {
					continue
				}
				pass := &Pass{
					Analyzer:  a,
					Fset:      pkg.Fset,
					Files:     pkg.Files,
					Pkg:       pkg.Types,
					TypesInfo: pkg.Info,
					diags:     &diags,
				}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
				}
				ran[a.Name] = true
			}
		}
	}

	var files []*ast.File
	for _, pkg := range prog.Packages {
		files = append(files, pkg.Files...)
	}
	for _, pkg := range prog.Tests {
		files = append(files, pkg.Files...)
	}
	sup := collectSuppressions(progFset(prog), files)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.suppressed(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, sup.bad...)
	kept = append(kept, sup.unused(ran)...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Position, kept[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// progFset returns the program's shared FileSet (every package of one
// loader shares one).
func progFset(prog *Program) *token.FileSet {
	if len(prog.Packages) > 0 {
		return prog.Packages[0].Fset
	}
	if len(prog.Tests) > 0 {
		return prog.Tests[0].Fset
	}
	return token.NewFileSet()
}
