package analysis

import (
	"go/token"
	"testing"
)

// TestLoaderModulePackage exercises the module-local import resolution:
// internal/dissim imports internal/geom and internal/trajectory, all of
// which must type-check from source with only stdlib machinery.
func TestLoaderModulePackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if l.ModulePath != "mstsearch" {
		t.Fatalf("module path = %q, want mstsearch", l.ModulePath)
	}
	pkg, err := l.Load("mstsearch/internal/dissim")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkg.Files) == 0 {
		t.Fatal("no files loaded")
	}
	if pkg.Types.Name() != "dissim" {
		t.Fatalf("package name = %q, want dissim", pkg.Types.Name())
	}
	// Cached second load must return the same package.
	again, err := l.Load("mstsearch/internal/dissim")
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if again != pkg {
		t.Error("second Load did not hit the cache")
	}
}

func TestExpandPatterns(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	paths, err := l.ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	want := map[string]bool{
		"mstsearch":                   false,
		"mstsearch/internal/geom":     false,
		"mstsearch/internal/storage":  false,
		"mstsearch/cmd/mstlint":       false,
		"mstsearch/internal/analysis": false,
	}
	for _, p := range paths {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("pattern ./... did not yield %s (got %d paths)", p, len(paths))
		}
	}
}

// TestSuppressions checks directive parsing and coverage rules directly.
func TestSuppressions(t *testing.T) {
	d := Diagnostic{Analyzer: "floatcmp", Position: token.Position{Filename: "f.go", Line: 10}}
	s := &suppressions{byLine: map[string]map[int]*ignoreDirective{
		"f.go": {9: {analyzer: "floatcmp", reason: "r"}},
	}}
	if !s.suppressed(d) {
		t.Error("directive on the previous line should suppress")
	}
	s = &suppressions{byLine: map[string]map[int]*ignoreDirective{
		"f.go": {10: {analyzer: "*", reason: "r"}},
	}}
	if !s.suppressed(d) {
		t.Error("wildcard directive on the same line should suppress")
	}
	s = &suppressions{byLine: map[string]map[int]*ignoreDirective{
		"f.go": {10: {analyzer: "ctxflow", reason: "r"}},
	}}
	if s.suppressed(d) {
		t.Error("directive for another analyzer must not suppress")
	}
}
