package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestLoaderModulePackage exercises the module-local import resolution:
// internal/dissim imports internal/geom and internal/trajectory, all of
// which must type-check from source with only stdlib machinery.
func TestLoaderModulePackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if l.ModulePath != "mstsearch" {
		t.Fatalf("module path = %q, want mstsearch", l.ModulePath)
	}
	pkg, err := l.Load("mstsearch/internal/dissim")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkg.Files) == 0 {
		t.Fatal("no files loaded")
	}
	if pkg.Types.Name() != "dissim" {
		t.Fatalf("package name = %q, want dissim", pkg.Types.Name())
	}
	// Cached second load must return the same package.
	again, err := l.Load("mstsearch/internal/dissim")
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if again != pkg {
		t.Error("second Load did not hit the cache")
	}
}

func TestExpandPatterns(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	paths, err := l.ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	want := map[string]bool{
		"mstsearch":                   false,
		"mstsearch/internal/geom":     false,
		"mstsearch/internal/storage":  false,
		"mstsearch/cmd/mstlint":       false,
		"mstsearch/internal/analysis": false,
	}
	for _, p := range paths {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("pattern ./... did not yield %s (got %d paths)", p, len(paths))
		}
	}
}

// TestSuppressions checks directive parsing and coverage rules directly.
func TestSuppressions(t *testing.T) {
	d := Diagnostic{Analyzer: "floatcmp", Position: token.Position{Filename: "f.go", Line: 10}}
	s := &suppressions{byLine: map[string]map[int]*ignoreDirective{
		"f.go": {9: {analyzer: "floatcmp", reason: "r"}},
	}}
	if !s.suppressed(d) {
		t.Error("directive on the previous line should suppress")
	}
	s = &suppressions{byLine: map[string]map[int]*ignoreDirective{
		"f.go": {10: {analyzer: "*", reason: "r"}},
	}}
	if !s.suppressed(d) {
		t.Error("wildcard directive on the same line should suppress")
	}
	s = &suppressions{byLine: map[string]map[int]*ignoreDirective{
		"f.go": {10: {analyzer: "ctxflow", reason: "r"}},
	}}
	if s.suppressed(d) {
		t.Error("directive for another analyzer must not suppress")
	}
}

// collectFrom parses one source string and gathers its directives.
func collectFrom(t *testing.T, src string) *suppressions {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "sup.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return collectSuppressions(fset, []*ast.File{f})
}

// TestJustificationLength enforces the MinJustification floor: a
// directive with a placeholder-grade justification is itself a finding
// and suppresses nothing.
func TestJustificationLength(t *testing.T) {
	s := collectFrom(t, `package p

func f() {
	//lint:ignore floatcmp ok
	_ = 1.0 == 1.0
	//lint:ignore floatcmp this comparison is bit-exact by construction
	_ = 2.0 == 2.0
	//lint:ignore floatcmp
	_ = 3.0
}
`)
	if len(s.bad) != 2 {
		t.Fatalf("got %d bad directives, want 2 (short justification + missing justification): %v", len(s.bad), s.bad)
	}
	if !strings.Contains(s.bad[0].Message, "too short") {
		t.Errorf("short-justification message = %q", s.bad[0].Message)
	}
	if !strings.Contains(s.bad[1].Message, "malformed") {
		t.Errorf("missing-justification message = %q", s.bad[1].Message)
	}
	// The under-justified directive must not have been indexed: it cannot
	// suppress the finding on the next line.
	d := Diagnostic{Analyzer: "floatcmp", Position: token.Position{Filename: "sup.go", Line: 5}}
	if s.suppressed(d) {
		t.Error("under-justified directive must not suppress")
	}
	// The well-justified one suppresses as usual.
	d.Position.Line = 7
	if !s.suppressed(d) {
		t.Error("justified directive should suppress")
	}
}

// TestUnusedDirectives: a directive that no longer matches any finding
// is reported, but only when its analyzer actually ran.
func TestUnusedDirectives(t *testing.T) {
	s := collectFrom(t, `package p

func f() {
	//lint:ignore floatcmp this line was fixed long ago and the directive rotted
	_ = 1
	//lint:ignore lockorder this analyzer is out of scope for this run
	_ = 2
}
`)
	unused := s.unused(map[string]bool{"floatcmp": true})
	if len(unused) != 1 {
		t.Fatalf("got %d unused diagnostics, want 1 (lockorder did not run): %v", len(unused), unused)
	}
	if !strings.Contains(unused[0].Message, "unused //lint:ignore floatcmp") {
		t.Errorf("message = %q", unused[0].Message)
	}

	// Once the directive suppresses something it is used.
	d := Diagnostic{Analyzer: "floatcmp", Position: token.Position{Filename: "sup.go", Line: 5}}
	if !s.suppressed(d) {
		t.Fatal("directive should suppress")
	}
	if got := s.unused(map[string]bool{"floatcmp": true}); len(got) != 0 {
		t.Errorf("used directive still reported: %v", got)
	}
}

// TestLoadTests exercises the test-augmented package view.
func TestLoadTests(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadTests("mstsearch/internal/obs")
	if err != nil {
		t.Fatalf("LoadTests: %v", err)
	}
	if pkg == nil {
		t.Fatal("internal/obs has test files; got nil")
	}
	hasTestFile := false
	for _, f := range pkg.Files {
		if strings.HasSuffix(l.Fset.Position(f.Pos()).Filename, "_test.go") {
			hasTestFile = true
		}
	}
	if !hasTestFile {
		t.Error("test-augmented view contains no _test.go files")
	}
	again, err := l.LoadTests("mstsearch/internal/obs")
	if err != nil || again != pkg {
		t.Errorf("second LoadTests did not hit the cache (err=%v)", err)
	}
	// A package with no in-package tests loads as nil, nil.
	none, err := l.LoadTests("mstsearch/internal/analysis/analysistest")
	if err != nil || none != nil {
		t.Errorf("test-free package: got (%v, %v), want (nil, nil)", none, err)
	}
}
