package fsyncorder_test

import (
	"testing"

	"mstsearch/internal/analysis/analysistest"
	"mstsearch/internal/analysis/fsyncorder"
)

func TestFsyncorder(t *testing.T) {
	diags := analysistest.Run(t, fsyncorder.Analyzer, "testdata/fsyncorder")
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3", len(diags))
	}
}
