package fixture

import "os"

// SyncDir mirrors wal.SyncDir: fsync a directory so a rename inside it
// becomes durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// saveGood mirrors persist.go saveLocked: temp file, sync, rename,
// directory sync. Clean.
func saveGood(dir, path string) error {
	f, err := os.CreateTemp(dir, "snap-*")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		return err
	}
	return SyncDir(dir)
}

// saveUnsynced renames a file nobody fsynced (the dir sync is there, so
// only the missing file sync fires).
func saveUnsynced(dir, path string) error {
	f, err := os.CreateTemp(dir, "snap-*")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil { // want "os.Rename without a preceding Sync of the renamed file"
		return err
	}
	return SyncDir(dir)
}

// saveNoDirSync fsyncs the file but forgets the directory entry.
func saveNoDirSync(dir, path string) error {
	f, err := os.CreateTemp(dir, "snap-*")
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path) // want "os.Rename without a following parent-directory sync"
}

// syncViaHelper reaches its file sync through a helper call before the
// rename — the summary fixpoint must see through it. Clean.
func syncViaHelper(dir, path string) error {
	f, err := os.CreateTemp(dir, "snap-*")
	if err != nil {
		return err
	}
	if err := flush(f); err != nil {
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		return err
	}
	return SyncDir(dir)
}

func flush(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}
