package fixture

// file mirrors wal.File: the narrowed *os.File slice the log writes
// through, syncable by contract.
type file interface {
	Write(p []byte) (int, error)
	Sync() error
}

type log struct {
	f file
}

// Append mirrors wal.Log.Append: write then reachable fsync. Clean.
func (l *log) Append(p []byte) error {
	if _, err := l.f.Write(p); err != nil {
		return err
	}
	return l.f.Sync()
}

// Stage buffers a write with no fsync anywhere downstream of an
// exported entry point — the acked-write-without-fsync case.
func (l *log) Stage(p []byte) error { // want "exported Stage writes to a syncable file but no Sync or SyncDir is reachable"
	_, err := l.f.Write(p)
	return err
}

// stage is the same shape unexported: internal helpers may defer the
// sync to their callers, so it is not flagged.
func (l *log) stage(p []byte) error {
	_, err := l.f.Write(p)
	return err
}

// Flush reaches the fsync through the unexported helper. Clean.
func (l *log) Flush(p []byte) error {
	if err := l.stage(p); err != nil {
		return err
	}
	return l.f.Sync()
}
