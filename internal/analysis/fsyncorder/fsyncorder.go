// Package fsyncorder checks the durability ordering invariants on the
// snapshot and WAL write paths: a temp file must be fsynced before it
// is renamed into place (or the rename can publish an empty file after
// a crash), the parent directory must be synced after the rename (or
// the rename itself is not durable), and every exported entry point
// that writes through a syncable file must be able to reach a Sync —
// an acked write with no fsync anywhere downstream is data loss waiting
// for a power cut.
//
// The checks are whole-program because the orderings span helpers:
// saveLocked syncs through *os.File directly but makes the rename
// durable via wal.SyncDir, and the WAL's group-commit path reaches its
// fsync two calls down. The analyzer builds per-function summaries
// (writes / can reach Sync / can reach SyncDir) over the static call
// graph — interface calls resolve only through their static method
// sets, so a Write on a value whose type carries Sync counts as a
// syncable write even when the concrete type is injected by tests.
package fsyncorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"mstsearch/internal/analysis"
)

// Analyzer is the fsync-ordering invariant check. Packages lists where
// rename ordering and exported-entry findings are reported; summaries
// are built over the whole program so orderings that span packages
// resolve.
var Analyzer = &analysis.Analyzer{
	Name: "fsyncorder",
	Doc: "temp files must be fsynced before rename, directories synced " +
		"after, and exported writers must be able to reach a Sync",
	Packages: []string{
		"mstsearch",
		"mstsearch/internal/wal",
	},
	RunProgram: run,
}

// event kinds, position-ordered within one function body.
const (
	evRename  = iota // os.Rename
	evSync           // a Sync method call, or a call reaching one
	evDirSync        // a SyncDir call, or a call reaching one
	evCall           // a static call into the module (resolved later)
)

type event struct {
	kind   int
	pos    token.Pos
	callee *types.Func // for evCall
}

type summary struct {
	decl   *ast.FuncDecl
	pkg    *analysis.Package
	events []event
	writes bool // touches Write on a value whose method set has Sync

	canSync    bool
	canDirSync bool
	doesWrite  bool
}

func run(pass *analysis.ProgramPass) error {
	sums := map[*types.Func]*summary{}
	for _, pkg := range pass.Program.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				sums[fn] = collect(pkg, fd)
			}
		}
	}

	// Fixpoint the reachability facts over the call graph.
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			sync, dir, write := s.canSync, s.canDirSync, s.doesWrite
			for _, e := range s.events {
				if e.kind != evCall {
					continue
				}
				if c := sums[e.callee]; c != nil {
					sync = sync || c.canSync
					dir = dir || c.canDirSync
					write = write || c.doesWrite
				}
			}
			if sync != s.canSync || dir != s.canDirSync || write != s.doesWrite {
				s.canSync, s.canDirSync, s.doesWrite = sync, dir, write
				changed = true
			}
		}
	}

	for fn, s := range sums {
		if !pass.Analyzer.InspectPackage(s.pkg.Path) {
			continue
		}
		checkRenames(pass, s, sums)
		if fn.Exported() && s.doesWrite && !s.canSync && !s.canDirSync {
			pass.Reportf(s.decl.Name.Pos(),
				"exported %s writes to a syncable file but no Sync or SyncDir is reachable from it; an acknowledged write that cannot reach stable storage is silent data loss on power failure",
				fn.Name())
		}
	}
	return nil
}

// checkRenames enforces sync-before-rename and dir-sync-after-rename
// over the function's position-ordered events.
func checkRenames(pass *analysis.ProgramPass, s *summary, sums map[*types.Func]*summary) {
	syncAt := func(e event) bool {
		if e.kind == evSync {
			return true
		}
		if e.kind == evCall {
			if c := sums[e.callee]; c != nil {
				return c.canSync
			}
		}
		return false
	}
	dirSyncAt := func(e event) bool {
		if e.kind == evDirSync {
			return true
		}
		if e.kind == evCall {
			if c := sums[e.callee]; c != nil {
				return c.canDirSync
			}
		}
		return false
	}
	for _, e := range s.events {
		if e.kind != evRename {
			continue
		}
		synced, dirSynced := false, false
		for _, o := range s.events {
			if o.pos < e.pos && syncAt(o) {
				synced = true
			}
			if o.pos > e.pos && dirSyncAt(o) {
				dirSynced = true
			}
		}
		if !synced {
			pass.Reportf(e.pos,
				"os.Rename without a preceding Sync of the renamed file; after a crash the new name can hold an empty or torn file")
		}
		if !dirSynced {
			pass.Reportf(e.pos,
				"os.Rename without a following parent-directory sync (SyncDir); the rename itself is not durable until the directory entry reaches disk")
		}
	}
}

// collect builds a function's event list and direct facts. FuncLit
// bodies are included at their source positions: the deferred-cleanup
// closures on these paths close and remove, they do not sync.
func collect(pkg *analysis.Package, fd *ast.FuncDecl) *summary {
	s := &summary{decl: fd, pkg: pkg}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pkg.Info, call); fn != nil {
			switch {
			case fn.Pkg() != nil && fn.Pkg().Path() == "os" && fn.Name() == "Rename":
				s.events = append(s.events, event{kind: evRename, pos: call.Pos()})
				return true
			case fn.Name() == "SyncDir":
				s.events = append(s.events, event{kind: evDirSync, pos: call.Pos()})
				s.canDirSync = true
				return true
			case fn.Name() == "Sync" && isMethodCall(pkg.Info, call):
				s.events = append(s.events, event{kind: evSync, pos: call.Pos()})
				s.canSync = true
				return true
			case fn.Name() == "Write" && isSyncableWrite(pkg.Info, call):
				s.doesWrite = true
				return true
			}
			s.events = append(s.events, event{kind: evCall, pos: call.Pos(), callee: fn})
		}
		return true
	})
	return s
}

// isMethodCall reports whether the call is a method call (x.Sync() on a
// value, as opposed to a package-qualified function).
func isMethodCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	return ok && s.Kind() == types.MethodVal
}

// isSyncableWrite reports whether the call is x.Write(...) where x's
// method set also carries Sync — an *os.File, a wal.File, anything
// whose writes are expected to reach an fsync eventually.
func isSyncableWrite(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	for _, t := range [2]types.Type{recv, types.NewPointer(recv)} {
		ms := types.NewMethodSet(t)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == "Sync" {
				return true
			}
		}
	}
	return false
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
