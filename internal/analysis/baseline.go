package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// The findings baseline: a checked-in, machine-readable inventory of the
// lint findings the tree is allowed to carry. CI diffs the current run
// against it in both directions — a finding not in the baseline is a
// regression, and a baseline entry the run no longer produces is stale
// documentation — so the baseline can only ever shrink deliberately.
//
// Entries are keyed by (analyzer, file, message) with an occurrence
// count, not by line number: unrelated edits move lines constantly, and a
// baseline that churns with them trains people to regenerate it blindly.

// Finding is one diagnostic in machine-readable form. File is
// slash-separated and relative to the module root, so the baseline is
// stable across checkouts.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line,omitempty"`
	Column   int    `json:"column,omitempty"`
	Message  string `json:"message"`
}

// RelFindings converts diagnostics to Findings with paths relative to
// rootDir (falling back to the absolute path outside it).
func RelFindings(diags []Diagnostic, rootDir string) []Finding {
	out := make([]Finding, len(diags))
	for i, d := range diags {
		file := d.Position.Filename
		if rel, err := filepath.Rel(rootDir, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
			file = rel
		}
		out[i] = Finding{
			Analyzer: d.Analyzer,
			File:     filepath.ToSlash(file),
			Line:     d.Position.Line,
			Column:   d.Position.Column,
			Message:  d.Message,
		}
	}
	return out
}

// WriteFindings renders findings as indented JSON (the -json output).
func WriteFindings(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}

// BaselineEntry is one accepted finding class and how many times it may
// occur.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// Baseline is the checked-in findings inventory.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// baselineVersion is the current baseline file format version.
const baselineVersion = 1

// NewBaseline aggregates findings into a baseline (sorted, counted).
func NewBaseline(fs []Finding) Baseline {
	counts := map[baselineKey]int{}
	for _, f := range fs {
		counts[baselineKey{f.Analyzer, f.File, f.Message}]++
	}
	b := Baseline{Version: baselineVersion, Findings: []BaselineEntry{}}
	for k, n := range counts {
		b.Findings = append(b.Findings, BaselineEntry{Analyzer: k.analyzer, File: k.file, Message: k.message, Count: n})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		if a.File != c.File {
			return a.File < c.File
		}
		return a.Message < c.Message
	})
	return b
}

type baselineKey struct{ analyzer, file, message string }

// WriteBaseline renders the baseline as indented JSON.
func WriteBaseline(w io.Writer, b Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBaseline parses a baseline file.
func ReadBaseline(r io.Reader) (Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return Baseline{}, fmt.Errorf("analysis: parsing baseline: %w", err)
	}
	if b.Version != baselineVersion {
		return Baseline{}, fmt.Errorf("analysis: unsupported baseline version %d (want %d)", b.Version, baselineVersion)
	}
	for i, e := range b.Findings {
		if e.Analyzer == "" || e.File == "" || e.Message == "" || e.Count < 1 {
			return Baseline{}, fmt.Errorf("analysis: baseline entry %d is incomplete", i)
		}
	}
	return b, nil
}

// DiffBaseline compares the current findings against the baseline.
// fresh are findings beyond the baseline's allowance (regressions);
// stale are baseline entries the run no longer produces in full (the
// baseline must shrink to match reality). A clean run against a clean
// baseline returns two empty slices.
func DiffBaseline(fs []Finding, b Baseline) (fresh []Finding, stale []BaselineEntry) {
	allowance := map[baselineKey]int{}
	for _, e := range b.Findings {
		allowance[baselineKey{e.Analyzer, e.File, e.Message}] += e.Count
	}
	for _, f := range fs {
		k := baselineKey{f.Analyzer, f.File, f.Message}
		if allowance[k] > 0 {
			allowance[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	for _, e := range b.Findings {
		k := baselineKey{e.Analyzer, e.File, e.Message}
		if left := allowance[k]; left > 0 {
			se := e
			se.Count = left
			stale = append(stale, se)
			allowance[k] = 0
		}
	}
	return fresh, stale
}
