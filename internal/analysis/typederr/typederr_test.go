package typederr_test

import (
	"testing"

	"mstsearch/internal/analysis/analysistest"
	"mstsearch/internal/analysis/typederr"
)

func TestTypederr(t *testing.T) {
	diags := analysistest.Run(t, typederr.Analyzer, "testdata/typederr")
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics, want 2", len(diags))
	}
}
