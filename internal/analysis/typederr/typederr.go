// Package typederr enforces the typed-error contract on the storage and
// search boundaries (internal/storage, internal/mst).
//
// PR 1 built a failure taxonomy callers can program against with
// errors.Is/As: ErrPageCorrupt, ErrCanceled, ErrInjected, budget
// degradation. That taxonomy only survives if every error constructed on
// those paths is either a package-level sentinel or wraps one with %w. A
// bare errors.New or a fmt.Errorf without %w inside a function body
// produces an anonymous error that defeats errors.Is at the DB facade,
// so both are flagged. Package-level sentinel declarations (var Err... =
// errors.New(...)) are the approved pattern and stay legal.
package typederr

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"mstsearch/internal/analysis"
)

// Analyzer is the typederr invariant check.
var Analyzer = &analysis.Analyzer{
	Name: "typederr",
	Doc: "errors leaving the storage and search layers must be typed " +
		"sentinels or wrap one with %w (no bare errors.New / fmt.Errorf in function bodies)",
	Packages: []string{
		"mstsearch/internal/storage",
		"mstsearch/internal/mst",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.TypesInfo, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch {
				case fn.Pkg().Path() == "errors" && fn.Name() == "New":
					pass.Reportf(call.Pos(),
						"bare errors.New inside %s; declare a package-level sentinel (var Err... = errors.New) or wrap one with %%w",
						fd.Name.Name)
				case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
					if lit := formatLiteral(call); lit != "" && !strings.Contains(lit, "%w") {
						pass.Reportf(call.Pos(),
							"fmt.Errorf without %%w inside %s loses the typed error chain; wrap a sentinel with %%w",
							fd.Name.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}

// formatLiteral returns the first argument's string value when it is a
// constant, or "" (dynamic formats are given the benefit of the doubt).
func formatLiteral(call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return ""
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return ""
	}
	return s
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
