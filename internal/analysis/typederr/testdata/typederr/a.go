package fixture

import (
	"errors"
	"fmt"
)

// ErrNotFound is the approved pattern: a package-level typed sentinel.
var ErrNotFound = errors.New("fixture: not found")

// ErrDerived shows package-level fmt.Errorf sentinels are also fine.
var ErrDerived = fmt.Errorf("%w (derived)", ErrNotFound)

func lookup(ok bool) error {
	if !ok {
		return fmt.Errorf("%w: key missing", ErrNotFound) // clean: wraps a sentinel
	}
	return nil
}

func badNew() error {
	return errors.New("oops") // want "bare errors.New inside badNew"
}

func badErrorf(id int) error {
	return fmt.Errorf("thing %d failed", id) // want "fmt.Errorf without %w inside badErrorf"
}

func goodWrapTwice(err error) error {
	return fmt.Errorf("%w: while flushing: %w", ErrNotFound, err) // clean
}

func suppressed() error {
	//lint:ignore typederr diagnostic string for a CLI, never crosses the API boundary
	return errors.New("fixture: bad flag")
}
