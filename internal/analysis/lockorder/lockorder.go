// Package lockorder infers the whole-program lock acquisition graph and
// checks it against the documented hierarchy. Lock classes are mutex
// struct fields (DB.mu, the striped pool's structMu and shard mu, the
// admission gate's mu); an edge A → B means some path acquires B while
// holding A — either directly, through a call whose transitive
// acquisitions include B, or from a function whose doc contract says
// "callers must hold A.<field>" and which then locks B.
//
// Two invariants are enforced. First, the graph must be acyclic: a
// cycle is a deadlock schedule waiting for two goroutines. Second,
// fields annotated with a rank comment
//
//	mu sync.Mutex // lockrank: 30
//
// must be acquired in strictly increasing rank order; an edge from a
// ranked lock to an equal-or-lower-ranked one is a violation even
// before any cycle closes. Unranked classes participate only in the
// cycle check. Recursive acquisition of the same class (directly, or by
// calling a function that acquires a lock the caller already holds) is
// always reported.
//
// Soundness boundary, chosen to keep findings actionable: calls through
// interfaces are not resolved (the striped pool calling inner.Write
// binds to whatever Pager the test injected), and function literals are
// analyzed as separate roots with an empty held-set (a goroutine body
// does not inherit its spawner's locks). Both under-approximate, never
// false-positive.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"mstsearch/internal/analysis"
)

// Analyzer is the lock-ordering invariant check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "the inferred lock acquisition graph must be acyclic and respect " +
		"the lockrank annotations on mutex fields",
	RunProgram: run,
}

// Debug, when set (mstlint -lockgraph), receives the inferred
// acquisition graph, one "A -> B @ position" line per deduped edge.
var Debug io.Writer

// lockClass is one mutex field, the unit of the ordering.
type lockClass struct {
	label string // pkg.Type.field
	rank  int    // -1 when unranked
}

var rankRE = regexp.MustCompile(`lockrank:\s*(\d+)`)

// funcInfo is one function's events and derived facts.
type funcInfo struct {
	decl     *ast.FuncDecl
	pkg      *analysis.Package
	roots    []*ast.BlockStmt // the decl body plus each function literal
	events   [][]lockEvent    // per root, position-ordered
	contract []*types.Var     // classes held on entry per the doc contract

	acquires map[*types.Var]bool // transitive, over static calls
}

type edge struct{ from, to *types.Var }

func run(pass *analysis.ProgramPass) error {
	classes := collectClasses(pass.Program)
	fns := collectFuncs(pass.Program, classes)
	for _, fi := range fns {
		for _, root := range fi.roots {
			fi.events = append(fi.events, events(fi.pkg, root, classes))
		}
	}

	// Fixpoint: the classes a call to fn may acquire. Only the declared
	// body counts — a literal inside fn may run later (goroutine, defer)
	// and its acquisitions are not the caller's.
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			for _, ev := range fi.events[0] {
				switch ev.kind {
				case evAcquire:
					if !fi.acquires[ev.class] {
						fi.acquires[ev.class] = true
						changed = true
					}
				case evCall:
					if callee := fns[ev.callee]; callee != nil {
						for c := range callee.acquires {
							if !fi.acquires[c] {
								fi.acquires[c] = true
								changed = true
							}
						}
					}
				}
			}
		}
	}

	// Walk every root with its held-set, building the edge list and
	// reporting recursive acquisition as it happens.
	edges := map[edge]token.Pos{}
	for _, fi := range fns {
		for i := range fi.roots {
			held := map[*types.Var]int{}
			if i == 0 { // contracts bind the declared body only
				for _, c := range fi.contract {
					held[c]++
				}
			}
			for _, ev := range fi.events[i] {
				switch ev.kind {
				case evAcquire:
					if held[ev.class] > 0 {
						pass.Reportf(ev.pos, "recursive acquisition of %s: it is already held here; this deadlocks (sync mutexes are not reentrant)",
							classes[ev.class].label)
					}
					for l := range held {
						if held[l] > 0 && l != ev.class {
							addEdge(edges, l, ev.class, ev.pos)
						}
					}
					held[ev.class]++
				case evRelease:
					if held[ev.class] > 0 {
						held[ev.class]--
					}
				case evCall:
					callee := fns[ev.callee]
					if callee == nil {
						continue
					}
					for c := range callee.acquires {
						if held[c] > 0 {
							pass.Reportf(ev.pos, "calls %s, which acquires %s while it is already held here; this deadlocks",
								ev.callee.Name(), classes[c].label)
							continue
						}
						for l := range held {
							if held[l] > 0 {
								addEdge(edges, l, c, ev.pos)
							}
						}
					}
				}
			}
		}
	}

	if Debug != nil {
		dumpEdges(pass, classes, edges)
	}

	// Rank violations: every edge must strictly increase.
	for e, pos := range edges {
		from, to := classes[e.from], classes[e.to]
		if from.rank >= 0 && to.rank >= 0 && from.rank >= to.rank {
			pass.Reportf(pos, "acquires %s (lockrank %d) while holding %s (lockrank %d); the documented hierarchy requires strictly increasing ranks",
				to.label, to.rank, from.label, from.rank)
		}
	}

	// Cycles: strongly connected components of size > 1. (Self-loops
	// never enter the edge map; recursion is reported directly above.)
	for _, scc := range stronglyConnected(edges) {
		labels := make([]string, len(scc))
		for i, c := range scc {
			labels[i] = classes[c].label
		}
		sort.Strings(labels)
		pos := token.NoPos
		for e, p := range edges {
			if inSCC(scc, e.from) && inSCC(scc, e.to) && (pos == token.NoPos || p < pos) {
				pos = p
			}
		}
		pass.Reportf(pos, "lock-order cycle between %s: two goroutines interleaving these acquisitions deadlock; pick one order and rank the fields",
			strings.Join(labels, ", "))
	}
	return nil
}

func addEdge(edges map[edge]token.Pos, from, to *types.Var, pos token.Pos) {
	e := edge{from, to}
	if _, ok := edges[e]; !ok {
		edges[e] = pos
	}
}

// collectClasses finds every sync.Mutex / sync.RWMutex struct field in
// the program and its optional lockrank annotation.
func collectClasses(prog *analysis.Program) map[*types.Var]lockClass {
	classes := map[*types.Var]lockClass{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					if !isMutexType(pkg.Info.Types[field.Type].Type) {
						continue
					}
					rank := -1
					for _, cg := range [2]*ast.CommentGroup{field.Doc, field.Comment} {
						if cg == nil {
							continue
						}
						if m := rankRE.FindStringSubmatch(cg.Text()); m != nil {
							rank, _ = strconv.Atoi(m[1])
						}
					}
					for _, name := range field.Names {
						v, _ := pkg.Info.Defs[name].(*types.Var)
						if v == nil {
							continue
						}
						classes[v] = lockClass{
							label: fmt.Sprintf("%s.%s.%s", pkg.Types.Name(), ts.Name.Name, name.Name),
							rank:  rank,
						}
					}
				}
				return true
			})
		}
	}
	return classes
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

var mustHoldRE = regexp.MustCompile(`must hold\s+(?:\w+\.)?(\w+)`)

// collectFuncs gathers every declared function, its literal roots, and
// its "callers must hold" contract resolved against the receiver type.
func collectFuncs(prog *analysis.Program, classes map[*types.Var]lockClass) map[*types.Func]*funcInfo {
	fns := map[*types.Func]*funcInfo{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				fi := &funcInfo{
					decl:     fd,
					pkg:      pkg,
					roots:    []*ast.BlockStmt{fd.Body},
					acquires: map[*types.Var]bool{},
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						fi.roots = append(fi.roots, lit.Body)
					}
					return true
				})
				if fd.Doc != nil {
					doc := strings.ToLower(strings.Join(strings.Fields(fd.Doc.Text()), " "))
					for _, m := range mustHoldRE.FindAllStringSubmatch(doc, -1) {
						if c := receiverLockField(fn, m[1], classes); c != nil {
							fi.contract = append(fi.contract, c)
						}
					}
				}
				fns[fn] = fi
			}
		}
	}
	return fns
}

// receiverLockField resolves a contract field name against the
// receiver's struct fields.
func receiverLockField(fn *types.Func, name string, classes map[*types.Var]lockClass) *types.Var {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if strings.EqualFold(fld.Name(), name) {
			if _, ok := classes[fld]; ok {
				return fld
			}
		}
	}
	return nil
}

// event kinds in source order within one root.
const (
	evAcquire = iota
	evRelease
	evCall
)

type lockEvent struct {
	kind   int
	pos    token.Pos
	class  *types.Var  // acquire/release
	callee *types.Func // call
}

// events lists a root's acquisitions, releases and static calls in
// position order, not descending into nested literals (they are their
// own roots). Deferred releases are dropped — the lock is held to the
// end of the root, which is exactly what leaving it in the held-set
// models.
func events(pkg *analysis.Package, root *ast.BlockStmt, classes map[*types.Var]lockClass) []lockEvent {
	var evs []lockEvent
	deferred := map[*ast.CallExpr]bool{}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n.Body == root // only descend into the root itself
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if ok {
				switch sel.Sel.Name {
				case "Lock", "RLock", "Unlock", "RUnlock":
					if c := lockFieldOf(pkg.Info, sel.X); c != nil {
						if _, isClass := classes[c]; isClass {
							kind := evAcquire
							if strings.Contains(sel.Sel.Name, "Unlock") {
								kind = evRelease
								if deferred[n] {
									return true
								}
							}
							evs = append(evs, lockEvent{kind: kind, pos: n.Pos(), class: c})
							return true
						}
					}
				}
			}
			if fn := calleeFunc(pkg.Info, n); fn != nil {
				evs = append(evs, lockEvent{kind: evCall, pos: n.Pos(), callee: fn})
			}
		}
		return true
	}
	for _, stmt := range root.List {
		ast.Inspect(stmt, walk)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

// lockFieldOf resolves the receiver of a Lock/Unlock call to the mutex
// field being locked (db.mu, sh.mu, p.shards[i].mu).
func lockFieldOf(info *types.Info, x ast.Expr) *types.Var {
	sel, ok := x.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// stronglyConnected returns the SCCs of the edge graph with more than
// one member (Tarjan).
func stronglyConnected(edges map[edge]token.Pos) [][]*types.Var {
	adj := map[*types.Var][]*types.Var{}
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	var (
		index    = map[*types.Var]int{}
		low      = map[*types.Var]int{}
		onStack  = map[*types.Var]bool{}
		stack    []*types.Var
		counter  int
		out      [][]*types.Var
		strongly func(v *types.Var)
	)
	strongly = func(v *types.Var) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongly(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*types.Var
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				out = append(out, scc)
			}
		}
	}
	for v := range adj {
		if _, seen := index[v]; !seen {
			strongly(v)
		}
	}
	return out
}

func inSCC(scc []*types.Var, v *types.Var) bool {
	for _, c := range scc {
		if c == v {
			return true
		}
	}
	return false
}

// dumpEdges writes the inferred graph for mstlint -lockgraph.
func dumpEdges(pass *analysis.ProgramPass, classes map[*types.Var]lockClass, edges map[edge]token.Pos) {
	lines := make([]string, 0, len(edges))
	for e, pos := range edges {
		lines = append(lines, fmt.Sprintf("%s -> %s @ %s", classes[e.from].label, classes[e.to].label, pass.Fset.Position(pos)))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(Debug, l)
	}
}
