package lockorder_test

import (
	"testing"

	"mstsearch/internal/analysis/analysistest"
	"mstsearch/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	diags := analysistest.Run(t, lockorder.Analyzer, "testdata/lockorder")
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, want 4", len(diags))
	}
}
