package fixture

import "sync"

// db mirrors the DB facade sitting above the striped pool: the facade
// lock ranks below the pool's structure lock, which ranks below the
// per-shard locks.
type db struct {
	mu   sync.RWMutex // lockrank: 10
	pool *pool
}

type pool struct {
	structMu sync.RWMutex // lockrank: 20
	shards   []shard
}

type shard struct {
	mu sync.Mutex // lockrank: 30
	n  int
}

type slog struct {
	mu sync.Mutex // lockrank: 5
}

// Query follows the documented order db.mu → structMu → shard.mu, the
// pool acquisitions reached through a call. Clean.
func (d *db) Query() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.pool.read(0)
}

func (p *pool) read(i int) int {
	p.structMu.RLock()
	defer p.structMu.RUnlock()
	sh := &p.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.n
}

// rebalance relies on its contract instead of acquiring the facade
// lock itself. Callers must hold d.mu (write side). Clean: the edge
// db.mu → structMu respects the ranks.
func (d *db) rebalance() {
	d.pool.structMu.Lock()
	defer d.pool.structMu.Unlock()
}

// record writes a slow-log entry from under a shard lock. Callers must
// hold sh.mu.
func (sh *shard) record(s *slog) {
	s.mu.Lock() // want "acquires fixture.slog.mu .lockrank 5. while holding fixture.shard.mu .lockrank 30."
	s.mu.Unlock()
}

// reload re-locks the facade through a helper that acquires it again.
func (d *db) reload() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.flush() // want "calls flush, which acquires fixture.db.mu while it is already held"
}

func (d *db) flush() {
	d.mu.Lock()
	defer d.mu.Unlock()
}

// spawn starts a background reader while holding the facade lock. The
// goroutine body is its own root with an empty held-set, so no edge
// db.mu → structMu/shard.mu is inferred from it. Clean.
func (d *db) spawn(p *pool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	go func() {
		p.read(0)
	}()
}
