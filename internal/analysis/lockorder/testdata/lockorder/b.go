package fixture

import "sync"

// ab carries two unranked locks acquired in opposite orders by two
// paths — the classic ABBA deadlock. The cycle is reported once, at the
// earliest edge.
type ab struct {
	a sync.Mutex
	b sync.Mutex
}

func (x *ab) first() {
	x.a.Lock()
	defer x.a.Unlock()
	x.b.Lock() // want "lock-order cycle between fixture.ab.a, fixture.ab.b"
	defer x.b.Unlock()
}

func (x *ab) second() {
	x.b.Lock()
	defer x.b.Unlock()
	x.a.Lock()
	defer x.a.Unlock()
}

// double re-locks a mutex it already holds.
func (x *ab) double() {
	x.a.Lock()
	defer x.a.Unlock()
	x.a.Lock() // want "recursive acquisition of fixture.ab.a"
	x.a.Unlock()
}

// handoff releases before re-acquiring; not recursive. Clean.
func (x *ab) handoff() {
	x.a.Lock()
	x.a.Unlock()
	x.a.Lock()
	x.a.Unlock()
}
