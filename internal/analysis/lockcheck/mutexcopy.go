// Package lockcheck provides the two lock-discipline analyzers:
//
//   - MutexCopy flags by-value copies of lock-holding structs (receivers,
//     parameters, results, assignments, range values) — a copied mutex
//     guards nothing and deadlocks or races are the usual outcome;
//   - LockGuard checks that methods touching mutex-guarded struct fields
//     either acquire the guarding mutex or document the caller-holds-lock
//     contract in their doc comment ("must hold <mu>").
package lockcheck

import (
	"go/ast"
	"go/types"

	"mstsearch/internal/analysis"
)

// MutexCopy is the by-value lock copy check.
var MutexCopy = &analysis.Analyzer{
	Name: "mutexcopy",
	Doc:  "flag by-value copies of structs that contain sync locks",
	Run:  runMutexCopy,
}

func runMutexCopy(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(pass, n)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// Discards (`_ = v`) don't produce a live copy
					// whose lock could be used; skip them.
					if i < len(n.Lhs) && isBlank(n.Lhs[i]) {
						continue
					}
					checkValueCopy(pass, rhs)
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := pass.TypesInfo.TypeOf(n.Value); t != nil && containsLock(t, nil) {
						pass.Reportf(n.Value.Pos(),
							"range value copies %s, which contains a lock; iterate by index or over pointers", t)
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkFuncSig(pass *analysis.Pass, fd *ast.FuncDecl) {
	report := func(field *ast.Field, role string) {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || isPointerLike(t) || !containsLock(t, nil) {
			return
		}
		pass.Reportf(field.Pos(), "%s of %s passes %s by value, copying its lock; use a pointer",
			role, fd.Name.Name, t)
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			report(field, "receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			report(field, "parameter")
		}
	}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			report(field, "result")
		}
	}
}

// checkValueCopy flags x := y / x = *p where the copied value contains a
// lock. Composite literals construct fresh values and are allowed.
func checkValueCopy(pass *analysis.Pass, rhs ast.Expr) {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := pass.TypesInfo.TypeOf(rhs)
	if t == nil || isPointerLike(t) || !containsLock(t, nil) {
		return
	}
	pass.Reportf(rhs.Pos(), "assignment copies %s, which contains a lock; use a pointer", t)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Chan, *types.Slice, *types.Signature:
		return true
	}
	return false
}

// lockTypes are the sync types whose by-value copy is a bug.
var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "Once": true,
	"WaitGroup": true, "Cond": true, "Map": true, "Pool": true,
}

// isSyncLock reports whether t is one of the sync lock types.
func isSyncLock(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()]
}

// containsLock reports whether t transitively contains a sync lock by
// value. seen guards against recursive types.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if isSyncLock(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}
