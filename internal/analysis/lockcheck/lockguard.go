package lockcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"mstsearch/internal/analysis"
)

// LockGuard is the guarded-field access check.
//
// Convention (the one this codebase already follows): within a struct, a
// sync.Mutex/RWMutex field guards every field declared after it, up to
// the next mutex field. A method that reads or writes a guarded field
// must either call <recv>.<mu>.Lock/RLock somewhere in its body, or
// declare the caller-holds-lock contract in its doc comment with the
// words "must hold" naming the mutex (e.g. "callers must hold db.mu").
// Deliberately latch-free accesses carry //lint:ignore lockguard <why>.
var LockGuard = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "methods touching mutex-guarded struct fields must acquire the " +
		"mutex or document the \"must hold\" contract",
	Run: runLockGuard,
}

// guardInfo maps a struct's field names to the mutex field guarding them.
type guardInfo struct {
	muxes  map[string]bool   // mutex field names
	guards map[string]string // field name → guarding mutex name
}

func runLockGuard(pass *analysis.Pass) error {
	guarded := map[*types.Named]*guardInfo{} // structs with mutex fields
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		if gi := buildGuardInfo(st); gi != nil {
			guarded[named] = gi
		}
	}
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			named := receiverNamed(pass.TypesInfo, fd)
			gi := guarded[named]
			if gi == nil {
				continue
			}
			checkMethod(pass, fd, gi)
		}
	}
	return nil
}

// buildGuardInfo derives the mutex→fields mapping from declaration
// order, or nil when the struct has no mutex fields.
func buildGuardInfo(st *types.Struct) *guardInfo {
	gi := &guardInfo{muxes: map[string]bool{}, guards: map[string]string{}}
	current := ""
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isMutex(f.Type()) {
			gi.muxes[f.Name()] = true
			current = f.Name()
			continue
		}
		if current != "" {
			gi.guards[f.Name()] = current
		}
	}
	if len(gi.muxes) == 0 {
		return nil
	}
	return gi
}

func isMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func receiverNamed(info *types.Info, fd *ast.FuncDecl) *types.Named {
	if len(fd.Recv.List) == 0 {
		return nil
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl, gi *guardInfo) {
	// A documented caller-holds-lock contract exempts the method. The
	// doc text is whitespace-normalized first so a contract wrapped
	// across comment lines ("... must\n// hold db.mu") still counts.
	if fd.Doc != nil {
		doc := strings.Join(strings.Fields(strings.ToLower(fd.Doc.Text())), " ")
		if strings.Contains(doc, "must hold") {
			return
		}
	}
	recvName := ""
	if names := fd.Recv.List[0].Names; len(names) > 0 {
		recvName = names[0].Name
	}
	if recvName == "" || recvName == "_" {
		return // receiver unused; nothing to access
	}

	// Mutexes this method acquires: recv.mu.Lock / recv.mu.RLock calls.
	acquired := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := inner.X.(*ast.Ident)
		if !ok || base.Name != recvName || !gi.muxes[inner.Sel.Name] {
			return true
		}
		acquired[inner.Sel.Name] = true
		return true
	})

	// Guarded-field accesses without the guarding mutex held.
	reported := map[string]bool{} // one report per field keeps the output readable
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || base.Name != recvName {
			return true
		}
		mu, isGuarded := gi.guards[sel.Sel.Name]
		if !isGuarded || acquired[mu] || reported[sel.Sel.Name] {
			return true
		}
		reported[sel.Sel.Name] = true
		pass.Reportf(sel.Pos(),
			"%s accesses %s.%s (guarded by %s.%s) without acquiring the lock; lock it or document the contract (\"callers must hold %s.%s\")",
			fd.Name.Name, recvName, sel.Sel.Name, recvName, mu, recvName, mu)
		return true
	})
}
