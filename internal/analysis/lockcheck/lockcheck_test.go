package lockcheck_test

import (
	"testing"

	"mstsearch/internal/analysis/analysistest"
	"mstsearch/internal/analysis/lockcheck"
)

func TestMutexCopy(t *testing.T) {
	diags := analysistest.Run(t, lockcheck.MutexCopy, "testdata/mutexcopy")
	if len(diags) != 6 {
		t.Errorf("got %d diagnostics, want 6", len(diags))
	}
}

func TestLockGuard(t *testing.T) {
	diags := analysistest.Run(t, lockcheck.LockGuard, "testdata/lockguard")
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics, want 2", len(diags))
	}
}
