package fixture

import "sync"

// Counter follows the convention the analyzer enforces: each mutex field
// guards the fields declared after it up to the next mutex field.
type Counter struct {
	mu sync.Mutex
	n  int

	statsMu sync.RWMutex
	reads   int
}

// Incr acquires the right lock.
func (c *Counter) Incr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Reads takes the read side of the stats lock.
func (c *Counter) Reads() int {
	c.statsMu.RLock()
	defer c.statsMu.RUnlock()
	return c.reads
}

// peek returns the raw count; callers must hold c.mu.
func (c *Counter) peek() int { return c.n }

// wrappedDoc exercises doc normalization: the contract's words must
// hold even when the comment wraps between "must" and "hold".
func (c *Counter) wrappedDoc() int { return c.n }

func (c *Counter) badGet() int {
	return c.n // want "badGet accesses c.n"
}

func (c *Counter) badWrongLock() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reads // want "badWrongLock accesses c.reads"
}

func (c *Counter) suppressed() int {
	//lint:ignore lockguard racy metrics read is acceptable here by design
	return c.n
}

// Plain has no mutex fields; the analyzer leaves it alone.
type Plain struct{ n int }

// Get is unguarded by design.
func (p *Plain) Get() int { return p.n }
