package fixture

import "sync"

// Store holds a lock and must only move by pointer.
type Store struct {
	mu   sync.Mutex
	data map[string]int
}

// newStore constructs via composite literal — not a copy, stays clean.
func newStore() *Store {
	return &Store{data: map[string]int{}}
}

func goodPointer(s *Store) {}

func badParam(s Store) {} // want "parameter of badParam passes fixture.Store by value"

func (s Store) badRecv() {} // want "receiver of badRecv passes fixture.Store by value"

func badAssign(p *Store) {
	v := *p // want "assignment copies fixture.Store"
	_ = v
}

func badIndexCopy(list []Store) {
	v := list[0] // want "assignment copies fixture.Store"
	_ = v
}

func badRange(list []Store) {
	for _, v := range list { // want "range value copies fixture.Store"
		_ = v
	}
}

func goodRangeIndex(list []Store) {
	for i := range list {
		_ = &list[i]
	}
}

// Wrapped embeds a lock transitively.
type Wrapped struct{ inner Store }

func badWrapped(w Wrapped) {} // want "parameter of badWrapped passes fixture.Wrapped by value"

// Flat has no lock; copies are fine.
type Flat struct{ n int }

func goodFlat(f Flat) Flat { return f }
