package fixture

// batchSearch mirrors DB.KMostSimilarBatch: library code that spawns
// and joins its own workers. Tests calling it are not spawning
// test-owned goroutines, so the analyzer must not propagate through
// non-test files.
func batchSearch() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
