package fixture

import (
	"sync"
	"testing"

	"mstsearch/internal/testutil"
)

// TestArmed mirrors the server tests: workers spawned, leak checker
// armed first. Clean.
func TestArmed(t *testing.T) {
	testutil.CheckGoroutines(t)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

// TestLeaky spawns with no leak check armed.
func TestLeaky(t *testing.T) { // want "TestLeaky spawns goroutines but never arms testutil.CheckGoroutines"
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// TestViaHelper spawns through a test-file helper; propagation must see
// through it.
func TestViaHelper(t *testing.T) { // want "TestViaHelper spawns goroutines but never arms testutil.CheckGoroutines"
	startWorker()
}

func startWorker() {
	go func() {}()
}

// TestArmedViaHelper arms the checker through a helper. Clean.
func TestArmedViaHelper(t *testing.T) {
	arm(t)
	go func() {}()
}

func arm(t *testing.T) { testutil.CheckGoroutines(t) }

// TestLibraryCall only calls library code that manages its own workers;
// the spawn inside batchSearch is not the test's. Clean.
func TestLibraryCall(t *testing.T) {
	batchSearch()
}

// TestQuiet spawns nothing. Clean.
func TestQuiet(t *testing.T) {
	if 1+1 != 2 {
		t.Fatal("arithmetic broke")
	}
}
