package leakcheck_test

import (
	"testing"

	"mstsearch/internal/analysis/analysistest"
	"mstsearch/internal/analysis/leakcheck"
)

func TestLeakcheck(t *testing.T) {
	diags := analysistest.Run(t, leakcheck.Analyzer, "testdata/leakcheck")
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics, want 2", len(diags))
	}
}
