// Package leakcheck enforces test goroutine hygiene: a test function
// that spawns goroutines — directly, or through a helper defined in a
// _test.go file — must arm testutil.CheckGoroutines, the repo's leak
// checker. A goroutine leaked by one test poisons the goroutine
// baseline of every later test in the package, which is exactly the
// class of flake the server and batch soak tests exist to prevent.
//
// The analyzer needs the test-augmented package view (NeedTests): test
// functions are invisible in the ordinary package load. Spawning is
// propagated only through helpers defined in test files — library code
// like KMostSimilarBatch spawns and joins its own workers internally,
// and flagging every test that calls it would teach people to ignore
// the check.
package leakcheck

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"

	"mstsearch/internal/analysis"
)

// Analyzer is the test goroutine-hygiene check.
var Analyzer = &analysis.Analyzer{
	Name: "leakcheck",
	Doc: "tests that spawn goroutines (directly or via test-file helpers) " +
		"must arm testutil.CheckGoroutines",
	RunProgram: run,
	NeedTests:  true,
}

type testFunc struct {
	decl       *ast.FuncDecl
	inTestFile bool
	spawns     bool
	arms       bool
	calls      []*types.Func
}

func run(pass *analysis.ProgramPass) error {
	for _, pkg := range pass.Program.Tests {
		if !pass.Analyzer.InspectPackage(pkg.Path) {
			continue
		}
		checkPackage(pass, pkg)
	}
	return nil
}

func checkPackage(pass *analysis.ProgramPass, pkg *analysis.Package) {
	fns := map[*types.Func]*testFunc{}
	for _, f := range pkg.Files {
		inTest := strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			tf := &testFunc{decl: fd, inTestFile: inTest}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					tf.spawns = true
				case *ast.CallExpr:
					callee := calleeFunc(pkg.Info, n)
					if callee == nil {
						break
					}
					if isLeakChecker(callee) {
						tf.arms = true
						break
					}
					tf.calls = append(tf.calls, callee)
				}
				return true
			})
			fns[fn] = tf
		}
	}

	// Propagate spawning and arming through helpers defined in test files.
	for changed := true; changed; {
		changed = false
		for _, tf := range fns {
			spawns, arms := tf.spawns, tf.arms
			for _, callee := range tf.calls {
				c := fns[callee]
				if c == nil || !c.inTestFile {
					continue
				}
				spawns = spawns || c.spawns
				arms = arms || c.arms
			}
			if spawns != tf.spawns || arms != tf.arms {
				tf.spawns, tf.arms = spawns, arms
				changed = true
			}
		}
	}

	for fn, tf := range fns {
		if !tf.inTestFile || !isTestFunc(fn, tf.decl) {
			continue
		}
		if tf.spawns && !tf.arms {
			pass.Reportf(tf.decl.Name.Pos(),
				"%s spawns goroutines but never arms testutil.CheckGoroutines; a leaked goroutine poisons the baseline of every later test — arm the checker at the top",
				fn.Name())
		}
	}
}

// isTestFunc matches go test's notion of a test: TestXxx with a single
// *testing.T parameter.
func isTestFunc(fn *types.Func, decl *ast.FuncDecl) bool {
	name := fn.Name()
	if !strings.HasPrefix(name, "Test") {
		return false
	}
	if rest := name[len("Test"):]; rest != "" && unicode.IsLower(rune(rest[0])) {
		return false
	}
	if decl.Recv != nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 1 {
		return false
	}
	ptr, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "T" && obj.Pkg() != nil && obj.Pkg().Path() == "testing"
}

// isLeakChecker matches testutil.CheckGoroutines.
func isLeakChecker(fn *types.Func) bool {
	return fn.Name() == "CheckGoroutines" &&
		fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/testutil")
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
