package analysis

import (
	"bytes"
	"go/token"
	"strings"
	"testing"
)

func TestRelFindings(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "envelope", Position: token.Position{Filename: "/mod/internal/wal/wal.go", Line: 60, Column: 5}, Message: "m"},
		{Analyzer: "envelope", Position: token.Position{Filename: "/elsewhere/x.go", Line: 1, Column: 1}, Message: "m"},
	}
	fs := RelFindings(diags, "/mod")
	if fs[0].File != "internal/wal/wal.go" {
		t.Errorf("in-module path = %q, want internal/wal/wal.go", fs[0].File)
	}
	if !strings.Contains(fs[1].File, "elsewhere") {
		t.Errorf("out-of-module path %q should stay absolute", fs[1].File)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	fs := []Finding{
		{Analyzer: "leakcheck", File: "a_test.go", Line: 10, Message: "leaky"},
		{Analyzer: "leakcheck", File: "a_test.go", Line: 40, Message: "leaky"},
		{Analyzer: "envelope", File: "wal.go", Line: 3, Message: "unmapped"},
	}
	b := NewBaseline(fs)
	if len(b.Findings) != 2 {
		t.Fatalf("got %d entries, want 2 (line-insensitive aggregation)", len(b.Findings))
	}
	// Sorted by analyzer: envelope first.
	if b.Findings[0].Analyzer != "envelope" || b.Findings[0].Count != 1 {
		t.Errorf("entry 0 = %+v", b.Findings[0])
	}
	if b.Findings[1].Count != 2 {
		t.Errorf("duplicate message count = %d, want 2", b.Findings[1].Count)
	}

	var buf bytes.Buffer
	if err := WriteBaseline(&buf, b); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got.Findings) != 2 || got.Findings[1] != b.Findings[1] {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestReadBaselineRejects(t *testing.T) {
	cases := map[string]string{
		"bad version":   `{"version": 99, "findings": []}`,
		"unknown field": `{"version": 1, "findings": [], "extra": true}`,
		"empty entry":   `{"version": 1, "findings": [{"analyzer": "", "file": "f", "message": "m", "count": 1}]}`,
		"zero count":    `{"version": 1, "findings": [{"analyzer": "a", "file": "f", "message": "m", "count": 0}]}`,
	}
	for name, src := range cases {
		if _, err := ReadBaseline(strings.NewReader(src)); err == nil {
			t.Errorf("%s: ReadBaseline accepted %s", name, src)
		}
	}
}

func TestDiffBaseline(t *testing.T) {
	baseline := NewBaseline([]Finding{
		{Analyzer: "leakcheck", File: "a_test.go", Message: "leaky"},
		{Analyzer: "leakcheck", File: "a_test.go", Message: "leaky"},
		{Analyzer: "envelope", File: "wal.go", Message: "unmapped"},
	})

	// Identical findings (lines moved): clean in both directions.
	fresh, stale := DiffBaseline([]Finding{
		{Analyzer: "envelope", File: "wal.go", Line: 99, Message: "unmapped"},
		{Analyzer: "leakcheck", File: "a_test.go", Line: 1, Message: "leaky"},
		{Analyzer: "leakcheck", File: "a_test.go", Line: 2, Message: "leaky"},
	}, baseline)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("unchanged findings: fresh=%v stale=%v", fresh, stale)
	}

	// A finding beyond the allowance is fresh; an extra occurrence of a
	// baselined message counts too.
	fresh, _ = DiffBaseline([]Finding{
		{Analyzer: "envelope", File: "wal.go", Message: "unmapped"},
		{Analyzer: "envelope", File: "wal.go", Message: "brand new"},
		{Analyzer: "leakcheck", File: "a_test.go", Message: "leaky"},
		{Analyzer: "leakcheck", File: "a_test.go", Message: "leaky"},
		{Analyzer: "leakcheck", File: "a_test.go", Message: "leaky"},
	}, baseline)
	if len(fresh) != 2 {
		t.Errorf("got %d fresh, want 2 (one new message, one over-count): %v", len(fresh), fresh)
	}

	// A fixed finding leaves a stale entry with the remaining allowance.
	_, stale = DiffBaseline([]Finding{
		{Analyzer: "leakcheck", File: "a_test.go", Message: "leaky"},
	}, baseline)
	if len(stale) != 2 {
		t.Fatalf("got %d stale entries, want 2: %v", len(stale), stale)
	}
	for _, e := range stale {
		if e.Count != 1 {
			t.Errorf("stale %s count = %d, want 1", e.Analyzer, e.Count)
		}
	}
}
