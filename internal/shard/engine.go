package shard

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	mstsearch "mstsearch"
)

// Range returns every stored segment intersecting the window during the
// interval, gathered from all shards. Each trajectory's segments live on
// exactly one shard, so the union is duplicate-free; hits come back sorted
// by (trajectory, sequence number) for a deterministic cluster-wide order.
func (c *Cluster) Range(ctx context.Context, w mstsearch.Window, iv mstsearch.Interval) ([]mstsearch.SegmentHit, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := len(c.sets)
	hits := make([][]mstsearch.SegmentHit, n)
	errs := make([]error, n)
	runBounded(n, c.workers(), func(i int) {
		errs[i] = c.sets[i].read(nil, func(db *mstsearch.DB) error {
			var err error
			hits[i], err = db.Range(ctx, w, iv)
			return err
		})
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	var out []mstsearch.SegmentHit
	for _, h := range hits {
		out = append(out, h...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TrajID != out[j].TrajID {
			return out[i].TrajID < out[j].TrajID
		}
		return out[i].SeqNo < out[j].SeqNo
	})
	return out, nil
}

// Nearest returns the k moving objects closest to (x, y) at instant t,
// merged from every shard's local k-NN answer by (distance, trajectory ID).
func (c *Cluster) Nearest(ctx context.Context, x, y, t float64, k int) ([]mstsearch.Neighbor, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := len(c.sets)
	res := make([][]mstsearch.Neighbor, n)
	errs := make([]error, n)
	runBounded(n, c.workers(), func(i int) {
		errs[i] = c.sets[i].read(nil, func(db *mstsearch.DB) error {
			var err error
			res[i], err = db.Nearest(ctx, x, y, t, k)
			return err
		})
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	var all []mstsearch.Neighbor
	for _, r := range res {
		all = append(all, r...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].TrajID < all[j].TrajID
	})
	if k >= 0 && len(all) > k {
		all = all[:k]
	}
	return all, nil
}

// Topology classifies every stored trajectory touching the window during
// the interval, gathered from all shards and sorted by trajectory ID (the
// same order a single DB reports).
func (c *Cluster) Topology(ctx context.Context, w mstsearch.Window, iv mstsearch.Interval) ([]mstsearch.TopologyResult, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := len(c.sets)
	res := make([][]mstsearch.TopologyResult, n)
	errs := make([]error, n)
	runBounded(n, c.workers(), func(i int) {
		errs[i] = c.sets[i].read(nil, func(db *mstsearch.DB) error {
			var err error
			res[i], err = db.Topology(ctx, w, iv)
			return err
		})
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	var out []mstsearch.TopologyResult
	for _, r := range res {
		out = append(out, r...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TrajID < out[j].TrajID })
	return out, nil
}

// KMostSimilarBatch answers many k-MST queries against the cluster as one
// unit of work, with the same contract as mstsearch.DB.KMostSimilarBatch:
// results in input order, per-slot failure isolation, per-slot Ctx/Opts
// overrides, and snapshot semantics — the batch holds the cluster read
// lock for its whole duration, so cluster mutations wait and every slot
// sees the same contents. opts.Parallelism caps concurrent slots; each
// slot runs its own scatter-gather (bounded separately by
// Options.Workers).
func (c *Cluster) KMostSimilarBatch(ctx context.Context, queries []mstsearch.BatchQuery, opts mstsearch.Options) []mstsearch.BatchResult {
	out := make([]mstsearch.BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	c.mu.RLock()
	defer c.mu.RUnlock()

	workers := opts.Parallelism
	if workers <= 0 {
		workers = c.workers()
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	runBounded(len(queries), workers, func(i int) {
		bq := queries[i]
		slotOpts := opts
		if bq.Opts != nil {
			slotOpts = *bq.Opts
		}
		slotCtx, stop := mergeCancel(ctx, bq.Ctx)
		resp, _, err := c.queryLocked(slotCtx, mstsearch.Request{
			Q: bq.Q, Interval: mstsearch.Interval{T1: bq.T1, T2: bq.T2},
			K: bq.K, Options: slotOpts,
		})
		stop()
		out[i] = mstsearch.BatchResult{Results: resp.Results, Stats: resp.Stats, Err: err}
	})
	return out
}

// mergeCancel derives a context from primary that is additionally canceled
// when secondary is done; a nil secondary means primary alone.
func mergeCancel(primary, secondary context.Context) (context.Context, context.CancelFunc) {
	if secondary == nil {
		return primary, func() {}
	}
	ctx, cancel := context.WithCancel(primary)
	unlink := context.AfterFunc(secondary, cancel)
	return ctx, func() {
		unlink()
		cancel()
	}
}

// Explain runs the request across the cluster with tracing on and reports
// the aggregated prediction and actuals: the cost estimate sums each
// shard's selectivity model, the trace and per-level node accesses fold
// every shard's events together, and Results/Stats are exactly what Query
// would return. The report's Kind/Trajectories/Segments describe the whole
// cluster.
func (c *Cluster) Explain(ctx context.Context, req mstsearch.Request) (*mstsearch.ExplainReport, error) {
	start := time.Now()
	c.mu.RLock()
	defer c.mu.RUnlock()

	rep := &mstsearch.ExplainReport{
		Kind:         c.kind,
		K:            req.K,
		Interval:     req.Interval,
		Trajectories: len(c.dir),
	}
	for _, rs := range c.sets {
		if _, db := rs.preferred(); db != nil {
			rep.Segments += db.NumSegments()
		}
	}

	// Aggregate the shards' cost models (each shard's preferred replica
	// speaks for it): workloads add; the corridor radius is the widest
	// any shard predicts; selectivity is weighted by each shard's share
	// of the segments.
	var selWeighted float64
	for i, rs := range c.sets {
		_, db := rs.preferred()
		if db == nil {
			return nil, fmt.Errorf("shard %d: %w", i, mstsearch.ErrUnavailable)
		}
		est, err := db.EstimateQueryCost(req.Q, req.Interval.T1, req.Interval.T2, req.K)
		if err != nil {
			return nil, err
		}
		rep.Estimate.ExpectedSegments += est.ExpectedSegments
		rep.Estimate.ExpectedLeafPages += est.ExpectedLeafPages
		if est.CorridorRadius > rep.Estimate.CorridorRadius {
			rep.Estimate.CorridorRadius = est.CorridorRadius
		}
		selWeighted += est.RangeSelectivity * float64(db.NumSegments())
	}
	if rep.Segments > 0 {
		rep.Estimate.RangeSelectivity = selWeighted / float64(rep.Segments)
	}

	// Count every event — shard searches run concurrently, so the hook
	// locks; user hooks still see each event, per the Explain contract.
	var mu sync.Mutex
	user := req.Options.Trace
	rep.Trace.ByKind = make(map[mstsearch.EventKind]int)
	req.Options.Trace = func(ev mstsearch.TraceEvent) {
		mu.Lock()
		rep.Trace.Events++
		rep.Trace.ByKind[ev.Kind]++
		if ev.Kind == mstsearch.EventNodeVisit {
			for len(rep.Levels) <= ev.Level {
				rep.Levels = append(rep.Levels, mstsearch.LevelAccesses{Level: len(rep.Levels)})
			}
			rep.Levels[ev.Level].Nodes++
			if ev.Leaf {
				rep.Levels[ev.Level].Leaves++
			}
		}
		mu.Unlock()
		if user != nil {
			user(ev)
		}
	}

	resp, _, err := c.queryLocked(ctx, req)
	rep.Duration = time.Since(start)
	if err != nil {
		return nil, err
	}
	rep.Results = resp.Results
	rep.Stats = resp.Stats
	return rep, nil
}

// workers resolves the cluster's scatter width: Options.Workers, or
// GOMAXPROCS when unset, never wider than the shard count.
func (c *Cluster) workers() int {
	w := c.opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(c.sets) {
		w = len(c.sets)
	}
	return w
}

// firstError returns the lowest-index non-nil error, keeping multi-shard
// failure surfacing deterministic.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
