package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	mstsearch "mstsearch"
)

// ErrManifestMismatch reports a durable cluster directory whose manifest
// disagrees with the parameters Open was called with: reopening a cluster
// under a different kind, shard count, or placement would scatter new
// writes inconsistently with the data already on disk.
var ErrManifestMismatch = errors.New("shard: cluster manifest mismatch")

// manifestName is the cluster manifest file inside the cluster root.
const manifestName = "cluster.json"

// manifest pins the partitioning of a durable cluster directory.
type manifest struct {
	Version   int    `json:"version"`
	Kind      int    `json:"kind"`
	KindName  string `json:"kind_name"` // informational; Kind decides
	Shards    int    `json:"shards"`
	Placement string `json:"placement"`
}

const manifestVersion = 1

// checkManifest loads dir's manifest and verifies it against the requested
// parameters, writing a fresh manifest (atomically: temp file, fsync,
// rename, directory fsync) when none exists yet.
func checkManifest(dir string, kind mstsearch.IndexKind, n int, placement string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		m := manifest{
			Version:   manifestVersion,
			Kind:      int(kind),
			KindName:  kind.String(),
			Shards:    n,
			Placement: placement,
		}
		buf, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		return mstsearch.WriteFileAtomic(path, append(buf, '\n'))
	}
	if err != nil {
		return err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("%w: unreadable %s: %v", ErrManifestMismatch, manifestName, err)
	}
	if m.Version != manifestVersion {
		return fmt.Errorf("%w: manifest version %d, supported %d", ErrManifestMismatch, m.Version, manifestVersion)
	}
	if m.Kind != int(kind) || m.Shards != n || m.Placement != placement {
		return fmt.Errorf("%w: directory holds kind=%s shards=%d placement=%s, requested kind=%s shards=%d placement=%s",
			ErrManifestMismatch, mstsearch.IndexKind(m.Kind), m.Shards, m.Placement, kind, n, placement)
	}
	return nil
}

// ReadManifest reports the partitioning a durable cluster directory was
// created with — the `mststore cluster-info` surface.
func ReadManifest(dir string) (kind mstsearch.IndexKind, n int, placement string, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return 0, 0, "", err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, 0, "", fmt.Errorf("%w: unreadable %s: %v", ErrManifestMismatch, manifestName, err)
	}
	return mstsearch.IndexKind(m.Kind), m.Shards, m.Placement, nil
}
