package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	mstsearch "mstsearch"
)

// ErrManifestMismatch reports a durable cluster directory whose manifest
// disagrees with the parameters Open was called with: reopening a cluster
// under a different kind, shard count, or placement would scatter new
// writes inconsistently with the data already on disk.
var ErrManifestMismatch = errors.New("shard: cluster manifest mismatch")

// manifestName is the cluster manifest file inside the cluster root.
const manifestName = "cluster.json"

// manifest pins the partitioning of a durable cluster directory.
type manifest struct {
	Version   int    `json:"version"`
	Kind      int    `json:"kind"`
	KindName  string `json:"kind_name"` // informational; Kind decides
	Shards    int    `json:"shards"`
	Placement string `json:"placement"`
	// Replicas is the replica count per shard; 0 (a pre-replication
	// manifest) reads as 1.
	Replicas int `json:"replicas,omitempty"`
}

const manifestVersion = 1

// checkManifest loads dir's manifest and verifies it against the requested
// parameters, writing a fresh manifest (atomically: temp file, fsync,
// rename, directory fsync) when none exists yet.
func checkManifest(dir string, kind mstsearch.IndexKind, n int, placement string, replicas int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		m := manifest{
			Version:   manifestVersion,
			Kind:      int(kind),
			KindName:  kind.String(),
			Shards:    n,
			Placement: placement,
		}
		if replicas > 1 {
			m.Replicas = replicas
		}
		buf, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		return mstsearch.WriteFileAtomic(path, append(buf, '\n'))
	}
	if err != nil {
		return err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("%w: unreadable %s: %v", ErrManifestMismatch, manifestName, err)
	}
	if m.Version != manifestVersion {
		return fmt.Errorf("%w: manifest version %d, supported %d", ErrManifestMismatch, m.Version, manifestVersion)
	}
	if m.Replicas < 1 {
		m.Replicas = 1
	}
	if m.Kind != int(kind) || m.Shards != n || m.Placement != placement || m.Replicas != replicas {
		return fmt.Errorf("%w: directory holds kind=%s shards=%d placement=%s replicas=%d, requested kind=%s shards=%d placement=%s replicas=%d",
			ErrManifestMismatch, mstsearch.IndexKind(m.Kind), m.Shards, m.Placement, m.Replicas, kind, n, placement, replicas)
	}
	return nil
}

// ReadManifest reports the partitioning a durable cluster directory was
// created with — the `mststore cluster-info` surface. replicas is always
// >= 1 (pre-replication manifests read as 1).
func ReadManifest(dir string) (kind mstsearch.IndexKind, n int, placement string, replicas int, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return 0, 0, "", 0, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, 0, "", 0, fmt.Errorf("%w: unreadable %s: %v", ErrManifestMismatch, manifestName, err)
	}
	if m.Replicas < 1 {
		m.Replicas = 1
	}
	return mstsearch.IndexKind(m.Kind), m.Shards, m.Placement, m.Replicas, nil
}

// StoreDirs lists the leaf store directories of a durable cluster rooted
// at dir — each one an independent OpenDurable directory with its own
// snapshot and WAL — in (shard, replica) order. This is the walk surface
// for offline tools (`mststore verify`) that must scrub every replica,
// not just the one a live cluster would prefer.
func StoreDirs(dir string) ([]string, error) {
	_, n, _, replicas, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, n*replicas)
	for i := 0; i < n; i++ {
		if replicas == 1 {
			out = append(out, filepath.Join(dir, shardDirName(i)))
			continue
		}
		for r := 0; r < replicas; r++ {
			out = append(out, filepath.Join(dir, shardDirName(i), replicaDirName(r)))
		}
	}
	return out, nil
}
