package shard

import "mstsearch/internal/obs"

// Cluster-level metrics, registered on the process-wide obs registry (the
// same one /metrics and MetricsVar export).
var (
	metQueries      = obs.Default.Counter("shard.queries")
	metMutations    = obs.Default.Counter("shard.mutations")
	metFanout       = obs.Default.Histogram("shard.fanout", obs.FanoutBounds)
	metPruned       = obs.Default.Histogram("shard.pruned", obs.FanoutBounds)
	metMergeResults = obs.Default.Histogram("shard.merge.results", obs.FanoutBounds)

	// Replica-set health and failover accounting (replica.go, repair.go).
	metFailovers   = obs.Default.Counter("shard.replica.failovers")
	metHedges      = obs.Default.Counter("shard.replica.hedges")
	metQuarantines = obs.Default.Counter("shard.replica.quarantines")
	metRepairs     = obs.Default.Counter("shard.replica.repairs")
)
