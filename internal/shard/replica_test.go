package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"

	mstsearch "mstsearch"
)

// Unit coverage for the replica-set building blocks: write-concern
// arithmetic, the health state machine's transitions, and the write
// path's quorum/divergence semantics. The end-to-end failover and repair
// properties live in the root package's differential suites.

func TestWriteConcernParseAndRequired(t *testing.T) {
	cases := []struct {
		in   string
		want WriteConcern
	}{
		{"all", WriteAll}, {"", WriteAll}, {"ALL", WriteAll},
		{"quorum", WriteQuorum}, {"one", WriteOne},
	}
	for _, c := range cases {
		got, err := ParseWriteConcern(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseWriteConcern(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if rt, err := ParseWriteConcern(got.String()); err != nil || rt != got {
			t.Fatalf("%v does not round-trip through String: %v, %v", got, rt, err)
		}
	}
	if _, err := ParseWriteConcern("two"); err == nil {
		t.Fatal("unknown concern did not error")
	}
	reqs := []struct {
		w       WriteConcern
		r, want int
	}{
		{WriteAll, 3, 3}, {WriteQuorum, 3, 2}, {WriteQuorum, 2, 2},
		{WriteQuorum, 5, 3}, {WriteOne, 3, 1},
	}
	for _, c := range reqs {
		if got := c.w.required(c.r); got != c.want {
			t.Fatalf("%v.required(%d) = %d, want %d", c.w, c.r, got, c.want)
		}
	}
}

// newTestSet builds an in-memory replica set of r empty DBs.
func newTestSet(t *testing.T, r int) *replicaSet {
	t.Helper()
	dbs := make([]*mstsearch.DB, r)
	for i := range dbs {
		dbs[i] = mstsearch.Open(mstsearch.RTree3D)
	}
	return newReplicaSet(0, dbs, nil)
}

func stateOf(rs *replicaSet, r int) ReplicaState {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.reps[r].state
}

func TestReplicaHealthStateMachine(t *testing.T) {
	rs := newTestSet(t, 2)
	corrupt := fmt.Errorf("read: %w", mstsearch.ErrPageCorrupt{Page: 3})
	transient := fmt.Errorf("read: %w", mstsearch.ErrInjected)
	timeout := fmt.Errorf("search: %w", mstsearch.ErrDeadlineExceeded)

	// A deadline marks suspect but never strikes toward quarantine, no
	// matter how many pile up — a tight caller deadline must not condemn
	// the whole fleet.
	for i := 0; i < 10; i++ {
		rs.observe(0, timeout)
	}
	if got := stateOf(rs, 0); got != ReplicaSuspect {
		t.Fatalf("after timeouts: state %v, want suspect", got)
	}
	// One success heals a suspect.
	rs.observe(0, nil)
	if got := stateOf(rs, 0); got != ReplicaHealthy {
		t.Fatalf("after success: state %v, want healthy", got)
	}
	// Transient faults strike; quarantineStrikes consecutive ones condemn.
	for i := 0; i < quarantineStrikes-1; i++ {
		rs.observe(0, transient)
		if got := stateOf(rs, 0); got != ReplicaSuspect {
			t.Fatalf("strike %d: state %v, want suspect", i+1, got)
		}
	}
	rs.observe(0, transient)
	if got := stateOf(rs, 0); got != ReplicaQuarantined {
		t.Fatalf("after %d strikes: state %v, want quarantined", quarantineStrikes, got)
	}
	// Quarantine is sticky: a straggling success does not re-admit.
	rs.observe(0, nil)
	if got := stateOf(rs, 0); got != ReplicaQuarantined {
		t.Fatalf("success on quarantined replica re-admitted it: %v", got)
	}
	// Corruption condemns in one observation.
	rs.observe(1, corrupt)
	if got := stateOf(rs, 1); got != ReplicaQuarantined {
		t.Fatalf("after corruption: state %v, want quarantined", got)
	}
	// Both replicas out: the rotation is empty and reads are unavailable.
	if err := rs.read(nil, func(*mstsearch.DB) error { return nil }); !errors.Is(err, mstsearch.ErrUnavailable) {
		t.Fatalf("empty rotation read = %v, want ErrUnavailable", err)
	}
	// admit returns a repaired replica to the rotation.
	rs.admit(0, mstsearch.Open(mstsearch.RTree3D))
	if got := stateOf(rs, 0); got != ReplicaHealthy {
		t.Fatalf("after admit: state %v, want healthy", got)
	}
	sts := rs.statuses()
	if sts[0].LastRepair.IsZero() {
		t.Fatal("admit did not stamp LastRepair")
	}
	if sts[1].State != "quarantined" || sts[1].LastError == "" {
		t.Fatalf("status[1] = %+v, want quarantined with LastError", sts[1])
	}
}

func TestReplicaReadFailover(t *testing.T) {
	rs := newTestSet(t, 3)
	db1, db2 := rs.db(1), rs.db(2)
	var prof readProfile
	served := -1
	err := rs.read(&prof, func(db *mstsearch.DB) error {
		switch db {
		case db1:
			served = 1
		case db2:
			served = 2
		default:
			// Preferred replica 0 reports a transient fault; the read
			// must hand off to replica 1.
			return fmt.Errorf("page: %w", mstsearch.ErrInjected)
		}
		return nil
	})
	if err != nil || served != 1 {
		t.Fatalf("failover read: err=%v served=%d, want nil / replica 1", err, served)
	}
	if prof.failovers != 1 || len(prof.events) != 1 {
		t.Fatalf("profile %+v, want exactly one failover event", prof)
	}
	ev := prof.events[0]
	if ev.Kind != mstsearch.EventReplicaFailover || ev.Replica != 1 || ev.Count != 0 {
		t.Fatalf("event %+v, want failover to replica 1 from replica 0", ev)
	}
	// A non-failoverable error (the caller's own deadline) surfaces
	// unchanged without touching a sibling.
	attempts := 0
	err = rs.read(nil, func(db *mstsearch.DB) error {
		attempts++
		return mstsearch.ErrDeadlineExceeded
	})
	if !errors.Is(err, mstsearch.ErrDeadlineExceeded) || attempts != 1 {
		t.Fatalf("deadline read: err=%v attempts=%d, want surfaced after 1 attempt", err, attempts)
	}
}

func TestReplicaWriteQuorumSemantics(t *testing.T) {
	transient := fmt.Errorf("wal: %w", mstsearch.ErrInjected)

	// Partial failure under WriteAll: the write is applied (a sibling
	// holds it), the failed replica is quarantined for divergence, and
	// the quorum miss surfaces as ErrUnavailable.
	rs := newTestSet(t, 2)
	bad := rs.db(1)
	applied, err := rs.write(WriteAll, func(db *mstsearch.DB) error {
		if db == bad {
			return transient
		}
		return nil
	})
	if !applied || !errors.Is(err, mstsearch.ErrUnavailable) {
		t.Fatalf("partial WriteAll: applied=%v err=%v, want applied + ErrUnavailable", applied, err)
	}
	if got := stateOf(rs, 1); got != ReplicaQuarantined {
		t.Fatalf("diverged replica state %v, want quarantined", got)
	}
	if got := stateOf(rs, 0); got != ReplicaHealthy {
		t.Fatalf("acked replica state %v, want healthy", got)
	}

	// Uniform failure: the set stayed consistent, nobody is condemned,
	// and the caller sees the underlying error, not a quorum miss.
	rs = newTestSet(t, 2)
	applied, err = rs.write(WriteAll, func(db *mstsearch.DB) error { return transient })
	if applied || !errors.Is(err, mstsearch.ErrInjected) || errors.Is(err, mstsearch.ErrUnavailable) {
		t.Fatalf("uniform failure: applied=%v err=%v, want not-applied + ErrInjected", applied, err)
	}
	for r := 0; r < 2; r++ {
		if got := stateOf(rs, r); got == ReplicaQuarantined {
			t.Fatalf("uniform failure quarantined replica %d", r)
		}
	}

	// WriteQuorum with the quorum unreachable refuses up front: nothing
	// is applied, so no divergence is ever created.
	rs = newTestSet(t, 3)
	rs.markStale(1, transient)
	rs.markStale(2, transient)
	calls := 0
	applied, err = rs.write(WriteQuorum, func(db *mstsearch.DB) error {
		calls++
		return nil
	})
	if applied || calls != 0 || !errors.Is(err, mstsearch.ErrUnavailable) {
		t.Fatalf("unreachable quorum: applied=%v calls=%d err=%v, want upfront refusal", applied, calls, err)
	}

	// WriteOne succeeds with a single live replica.
	applied, err = rs.write(WriteOne, func(db *mstsearch.DB) error { return nil })
	if !applied || err != nil {
		t.Fatalf("WriteOne on 1 live: applied=%v err=%v", applied, err)
	}

	// WriteAll resolves against the live rotation: with the two
	// quarantined replicas out, one ack is all it takes.
	applied, err = rs.write(WriteAll, func(db *mstsearch.DB) error { return nil })
	if !applied || err != nil {
		t.Fatalf("WriteAll on shrunken rotation: applied=%v err=%v", applied, err)
	}
}

// TestInMemoryRepairReseed pins the in-memory anti-entropy path: a
// quarantined replica of a New cluster is re-seeded by cloning its
// healthy sibling's contents, and re-enters the rotation.
func TestInMemoryRepairReseed(t *testing.T) {
	c, err := New(mstsearch.RTree3D, 2, HashPlacement{}, Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for id := mstsearch.ID(1); id <= 12; id++ {
		tr := mstsearch.Trajectory{ID: id, Samples: []mstsearch.Sample{
			{X: float64(id), Y: 1, T: 0}, {X: float64(id) + 1, Y: 2, T: 1},
		}}
		if err := c.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	var events []mstsearch.TraceEvent
	c.opts.OnRepairEvent = func(ev mstsearch.TraceEvent) { events = append(events, ev) }

	c.sets[0].markStale(0, fmt.Errorf("test quarantine"))
	repaired, err := c.RepairNow(context.Background())
	if err != nil || repaired != 1 {
		t.Fatalf("RepairNow = %d, %v; want 1 repair", repaired, err)
	}
	if len(events) != 1 || events[0].Kind != mstsearch.EventReplicaRepair ||
		events[0].Shard != 0 || events[0].Replica != 0 {
		t.Fatalf("repair events %+v, want one EventReplicaRepair for shard 0 replica 0", events)
	}
	// The re-seeded replica holds exactly its sibling's trajectories.
	a, b := c.Replica(0, 0), c.Replica(0, 1)
	if a.Len() != b.Len() || a.NumSegments() != b.NumSegments() {
		t.Fatalf("re-seeded replica (%d trajs, %d segs) != sibling (%d, %d)",
			a.Len(), a.NumSegments(), b.Len(), b.NumSegments())
	}
	for _, st := range c.ReplicaStatuses() {
		if st.State != "healthy" {
			t.Fatalf("after repair, replica %+v not healthy", st)
		}
	}
	// Nothing left to repair: a second sweep is a no-op.
	if repaired, err := c.RepairNow(context.Background()); err != nil || repaired != 0 {
		t.Fatalf("idle RepairNow = %d, %v; want 0, nil", repaired, err)
	}
}
