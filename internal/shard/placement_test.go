package shard

import (
	"errors"
	"math/rand"
	"testing"

	mstsearch "mstsearch"
)

func oneSample(id mstsearch.ID, x float64) *mstsearch.Trajectory {
	return &mstsearch.Trajectory{ID: id, Samples: []mstsearch.Sample{{X: x, Y: 0.5, T: 0}}}
}

// Placements must be pure functions of (trajectory, n): Open re-derives
// ownership from recovered shards and expects it to match what Add chose.
func TestPlacementDeterministicAndInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, p := range []Placement{HashPlacement{}, SpatialPlacement{}, SpatialPlacement{MinX: -50, MaxX: 50}} {
		for i := 0; i < 200; i++ {
			tr := oneSample(mstsearch.ID(rng.Intn(1000)), rng.Float64()*200-100)
			for _, n := range []int{1, 2, 3, 7, 16} {
				s := p.Shard(tr, n)
				if s < 0 || s >= n {
					t.Fatalf("%s: shard(%d, n=%d) = %d out of range", p.Name(), tr.ID, n, s)
				}
				if again := p.Shard(tr, n); again != s {
					t.Fatalf("%s: shard(%d, n=%d) not deterministic: %d then %d", p.Name(), tr.ID, n, s, again)
				}
			}
		}
	}
}

// HashPlacement must not collapse the fleet onto a few shards: over
// sequential IDs every shard of an 8-way cluster should own a fair share.
func TestHashPlacementSpreads(t *testing.T) {
	const n, ids = 8, 4000
	counts := make([]int, n)
	for id := 1; id <= ids; id++ {
		counts[HashPlacement{}.Shard(oneSample(mstsearch.ID(id), 0), n)]++
	}
	for s, c := range counts {
		if c < ids/n/2 || c > ids/n*2 {
			t.Fatalf("shard %d owns %d of %d trajectories; want near %d", s, c, ids, ids/n)
		}
	}
}

// SpatialPlacement stripes monotonically in X and clamps out-of-range
// trajectories to the edge shards instead of rejecting them.
func TestSpatialPlacementStripesAndClamps(t *testing.T) {
	p := SpatialPlacement{MinX: 0, MaxX: 100}
	prev := 0
	for x := 0.0; x <= 100; x += 0.5 {
		s := p.Shard(oneSample(1, x), 4)
		if s < prev {
			t.Fatalf("stripe not monotone: x=%g maps to %d after %d", x, s, prev)
		}
		prev = s
	}
	if s := p.Shard(oneSample(1, -10), 4); s != 0 {
		t.Fatalf("x below range maps to shard %d, want 0", s)
	}
	if s := p.Shard(oneSample(1, 1e6), 4); s != 3 {
		t.Fatalf("x above range maps to shard %d, want 3", s)
	}
	// Degenerate range: everything lands on shard 0 rather than dividing
	// by zero.
	if s := (SpatialPlacement{MinX: 5, MaxX: 5}).Shard(oneSample(1, 7), 4); s != 0 {
		t.Fatalf("degenerate range maps to shard %d, want 0", s)
	}
}

func TestPlacementByName(t *testing.T) {
	for _, name := range []string{"hash", "spatial"} {
		p, err := PlacementByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("PlacementByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := PlacementByName("round-robin"); err == nil {
		t.Fatal("unknown placement name did not error")
	}
}

func TestManifestRoundTripAndMismatch(t *testing.T) {
	dir := t.TempDir()
	if err := checkManifest(dir, mstsearch.RTree3D, 4, "hash", 1); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := checkManifest(dir, mstsearch.RTree3D, 4, "hash", 1); err != nil {
		t.Fatalf("matching reopen: %v", err)
	}
	kind, n, placement, replicas, err := ReadManifest(dir)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if kind != mstsearch.RTree3D || n != 4 || placement != "hash" || replicas != 1 {
		t.Fatalf("manifest round-trip gave kind=%v n=%d placement=%q replicas=%d", kind, n, placement, replicas)
	}
	for _, bad := range []struct {
		kind      mstsearch.IndexKind
		n         int
		placement string
		replicas  int
	}{
		{mstsearch.TBTree, 4, "hash", 1},
		{mstsearch.RTree3D, 5, "hash", 1},
		{mstsearch.RTree3D, 4, "spatial", 1},
		{mstsearch.RTree3D, 4, "hash", 2},
	} {
		if err := checkManifest(dir, bad.kind, bad.n, bad.placement, bad.replicas); !errors.Is(err, ErrManifestMismatch) {
			t.Fatalf("checkManifest(%v, %d, %q, %d) = %v, want ErrManifestMismatch", bad.kind, bad.n, bad.placement, bad.replicas, err)
		}
	}
}

// Options.Workers resolution: explicit width wins, zero falls back to
// GOMAXPROCS, and the pool is never wider than the shard count.
func TestWorkerResolution(t *testing.T) {
	c, err := New(mstsearch.RTree3D, 3, HashPlacement{}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.workers(); got != 2 {
		t.Fatalf("explicit width: workers() = %d, want 2", got)
	}
	c, err = New(mstsearch.RTree3D, 3, HashPlacement{}, Options{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.workers(); got != 3 {
		t.Fatalf("width capped by shard count: workers() = %d, want 3", got)
	}
	c, err = New(mstsearch.RTree3D, 3, HashPlacement{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.workers(); got < 1 || got > 3 {
		t.Fatalf("default width: workers() = %d, want within [1, 3]", got)
	}
}
