package shard

import (
	"context"
	"fmt"
	"os"
	"time"

	mstsearch "mstsearch"
	"mstsearch/internal/mst"
)

// Anti-entropy repair: a quarantined replica re-enters the read rotation
// by being re-seeded wholesale from a healthy sibling. On a durable
// cluster the re-seed is the PR 5 checkpoint machinery pointed across
// replicas — the sibling writes an atomic snapshot (epoch 1) into the
// quarantined replica's wiped directory and a fresh WAL opens on top —
// so a crash mid-repair leaves a directory the ordinary recovery state
// machine handles: either nothing (still quarantined next open) or a
// complete snapshot plus a possibly-torn log (recovers to a prefix and
// is re-seeded again if stale). Each replica repairs under the cluster
// write lock, so reads never observe a half-seeded replica; the lock is
// released between replicas to let queries interleave.

// RepairNow re-seeds every quarantined replica that has a healthy
// sibling to copy from, returning how many replicas re-entered the
// rotation. Replicas whose whole set is quarantined are skipped (nothing
// authoritative to copy). The context is honored between replicas; the
// first re-seed failure is reported after the sweep finishes (the
// replica stays quarantined and a later sweep retries).
func (c *Cluster) RepairNow(ctx context.Context) (int, error) {
	repaired := 0
	var firstErr error
	for i, rs := range c.sets {
		for _, r := range rs.quarantined() {
			if err := ctx.Err(); err != nil {
				return repaired, err
			}
			src, err := c.repairReplica(i, r)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("shard %d replica %d: %w", i, r, err)
				}
				continue
			}
			if src < 0 { // no healthy sibling: unrepairable for now
				continue
			}
			repaired++
			metRepairs.Inc()
			if c.opts.OnRepairEvent != nil {
				c.opts.OnRepairEvent(mst.TraceEvent{
					Kind: mstsearch.EventReplicaRepair, Shard: i,
					Replica: r, Count: src,
				})
			}
		}
	}
	return repaired, firstErr
}

// repairReplica re-seeds one quarantined replica of shard i under the
// cluster write lock. It returns the source replica index (-1 when no
// healthy sibling exists).
func (c *Cluster) repairReplica(i, r int) (src int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rs := c.sets[i]
	// Re-check under the lock: a concurrent RepairNow may have beaten us.
	stillQuarantined := false
	for _, q := range rs.quarantined() {
		if q == r {
			stillQuarantined = true
		}
	}
	if !stillQuarantined {
		return -1, nil
	}
	src, srcDB := rs.preferred()
	if src < 0 {
		return -1, nil
	}

	old := rs.db(r)
	if c.root == "" {
		// In-memory re-seed: clone the sibling's trajectories into a
		// fresh index of the same kind, in the sibling's storage order.
		fresh := mstsearch.Open(c.kind)
		for _, id := range srcDB.IDs() {
			tr := srcDB.Get(id)
			if tr == nil {
				continue
			}
			if err := fresh.Add(*tr); err != nil {
				return src, err
			}
		}
		rs.admit(r, fresh)
		return src, nil
	}

	// Durable re-seed: wipe the replica's directory and let the sibling
	// seed it with an atomic snapshot + fresh WAL. Close the old handle
	// first; its error is irrelevant (the directory is about to go).
	if old != nil {
		_ = old.Close()
	}
	dir := c.replicaPath(i, r)
	if err := os.RemoveAll(dir); err != nil {
		return src, err
	}
	fresh, err := srcDB.CloneDurable(dir, c.replicaDurable(i, r))
	if err != nil {
		// The replica stays quarantined with a dead handle; a later
		// sweep (or the next Open) retries from whatever the failed
		// clone left behind.
		rs.mu.Lock()
		rs.reps[r].db = nil
		rs.reps[r].lastErr = err
		rs.mu.Unlock()
		return src, err
	}
	rs.admit(r, fresh)
	return src, nil
}

// startRepairLoop launches the background anti-entropy sweep. Close
// stops it.
func (c *Cluster) startRepairLoop(interval time.Duration) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	c.repairCancel = cancel
	c.repairDone = done
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				// Sweep errors stay in the replicas' status (lastErr);
				// the next tick retries.
				_, _ = c.RepairNow(ctx)
			}
		}
	}()
}

// stopRepairLoop stops the background sweep and waits for it to exit.
// Idempotent and safe without the cluster lock (the fields are set once
// before the cluster is shared).
func (c *Cluster) stopRepairLoop() {
	c.stopRepair.Do(func() {
		if c.repairCancel != nil {
			c.repairCancel()
			<-c.repairDone
		}
	})
}
