package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	mstsearch "mstsearch"
	"mstsearch/internal/index"
	"mstsearch/internal/mst"
	"mstsearch/internal/storage"
)

// Each shard of a replicated cluster is a replica set: R independently
// durable DBs holding identical content. Writes apply to every replica in
// the read rotation and ack at a configurable quorum; reads pick the
// preferred (lowest-index healthy) replica and fail over to a sibling on
// replica-attributable errors; a per-replica health state machine
// (healthy → suspect → quarantined) decides who is in the rotation, and
// the anti-entropy loop (repair.go) re-seeds quarantined replicas from a
// healthy sibling.
//
// # Consistency model
//
// The invariant the failover merge relies on is that every replica in the
// read rotation holds the same logical content. It is maintained by
// construction: a mutation is applied to every in-rotation replica, and a
// replica that fails a mutation its sibling applied has diverged and is
// quarantined on the spot — it re-enters the rotation only through a
// repair re-seed, which copies a sibling's snapshot wholesale. A mutation
// that fails on *every* replica left the set consistent (uniformly
// rejected), so nobody is quarantined and the error surfaces to the
// caller. Under that invariant a failover read returns bit-identical
// results from any rotation member, which is what keeps merged cluster
// responses equal to the single-DB oracle even while replicas die
// mid-scatter.

// WriteConcern selects how many replica acknowledgements a mutation needs
// before the cluster acknowledges it to the caller.
type WriteConcern int

const (
	// WriteAll (the default) requires every replica currently in the
	// read rotation to ack. Strongest: a quarantined replica is already
	// out of the rotation, so repair work never blocks writes.
	WriteAll WriteConcern = iota
	// WriteQuorum requires a majority of the configured replica count
	// (R/2 + 1).
	WriteQuorum
	// WriteOne requires a single ack.
	WriteOne
)

// String names the concern (round-trips through ParseWriteConcern).
func (w WriteConcern) String() string {
	switch w {
	case WriteQuorum:
		return "quorum"
	case WriteOne:
		return "one"
	default:
		return "all"
	}
}

// ParseWriteConcern parses a concern name: "all", "quorum", or "one".
func ParseWriteConcern(s string) (WriteConcern, error) {
	switch strings.ToLower(s) {
	case "all", "":
		return WriteAll, nil
	case "quorum":
		return WriteQuorum, nil
	case "one":
		return WriteOne, nil
	}
	return 0, fmt.Errorf("shard: unknown write concern %q (want all, quorum, or one)", s)
}

// required is the ack threshold for a set of r replicas. WriteAll is
// resolved against the live rotation at write time, so it reports r here.
func (w WriteConcern) required(r int) int {
	switch w {
	case WriteQuorum:
		return r/2 + 1
	case WriteOne:
		return 1
	default:
		return r
	}
}

// ReplicaState is one replica's position in the health state machine.
type ReplicaState int

const (
	// ReplicaHealthy: in the read rotation, preferred in index order.
	ReplicaHealthy ReplicaState = iota
	// ReplicaSuspect: still in the rotation, but its last observation was
	// a transient fault or a timeout; repeated transient faults escalate
	// to quarantine, one success returns it to healthy.
	ReplicaSuspect
	// ReplicaQuarantined: out of the rotation — durable-state damage, a
	// missed mutation, or repeated transient faults. Only a repair
	// re-seed re-admits it.
	ReplicaQuarantined
)

// String names the state.
func (s ReplicaState) String() string {
	switch s {
	case ReplicaSuspect:
		return "suspect"
	case ReplicaQuarantined:
		return "quarantined"
	default:
		return "healthy"
	}
}

// quarantineStrikes is how many consecutive transient-fault observations
// move a suspect replica into quarantine.
const quarantineStrikes = 3

// Observation classes of the health state machine, from harmless to
// fatal. classify maps a typed error onto one.
const (
	// obsNone: not attributable to the replica (nil, a validation error,
	// the caller's own cancellation). A nil observation heals a suspect.
	obsNone = iota
	// obsSuspect: a deadline expired while this replica served. A wedged
	// replica looks exactly like this, but so does an aggressive caller
	// deadline hitting every replica equally — so the observation marks
	// suspect without striking toward quarantine, avoiding a cluster-wide
	// death spiral under tight-deadline load.
	obsSuspect
	// obsStrike: a transient storage fault (ErrInjected). Marks suspect
	// and strikes; quarantineStrikes consecutive ones quarantine.
	obsStrike
	// obsFatal: durable-state damage (page/WAL/snapshot corruption).
	// Quarantines immediately — the bytes are wrong, retries cannot help.
	obsFatal
)

// classify maps an error from a replica operation onto its observation
// class.
func classify(err error) int {
	switch {
	case err == nil:
		return obsNone
	case errors.Is(err, mstsearch.ErrPageCorrupt{}) ||
		errors.Is(err, mstsearch.ErrWALCorrupt) ||
		errors.Is(err, mstsearch.ErrBadSnapshot) ||
		errors.Is(err, mstsearch.ErrSnapshotCRC) ||
		errors.Is(err, index.ErrCorruptNode) ||
		errors.Is(err, storage.ErrBadDiskFile):
		return obsFatal
	case errors.Is(err, mstsearch.ErrInjected):
		return obsStrike
	case errors.Is(err, mstsearch.ErrDeadlineExceeded):
		return obsSuspect
	}
	return obsNone
}

// failoverable reports whether a read error is worth retrying on a
// sibling replica: transient and fatal replica faults are; a deadline is
// not (the request's budget is spent — a sibling would time out too),
// and errors that are not the replica's fault surface unchanged.
func failoverable(err error) bool {
	c := classify(err)
	return c == obsStrike || c == obsFatal
}

// replica is one member of a set.
type replica struct {
	// db is nil when the replica failed to open (quarantined until the
	// repair loop re-seeds its directory).
	db         *mstsearch.DB
	state      ReplicaState
	strikes    int
	lastErr    error
	lastRepair time.Time
}

// replicaSet is one shard's replicas plus their health book-keeping. The
// DB pointers and health fields are guarded by mu; mu is a leaf taken
// after the cluster lock and never held across a DB call, so replica
// operations (searches, journaled writes) run outside it.
type replicaSet struct {
	shard int
	n     int // replica count; set once at construction

	mu   sync.Mutex // lockrank: 8 — after Cluster.mu (5), never held across DB.mu (10)
	reps []*replica
}

// newReplicaSet wraps freshly opened replica DBs; a nil DB enters
// quarantined (failed to open) with the given error.
func newReplicaSet(shard int, dbs []*mstsearch.DB, openErrs []error) *replicaSet {
	rs := &replicaSet{shard: shard, n: len(dbs), reps: make([]*replica, len(dbs))}
	for i, db := range dbs {
		rep := &replica{db: db}
		if db == nil {
			rep.state = ReplicaQuarantined
			if openErrs != nil {
				rep.lastErr = openErrs[i]
			}
			metQuarantines.Inc()
		}
		rs.reps[i] = rep
	}
	return rs
}

// quarantineLocked moves replica r out of the rotation. Callers must
// hold rs.mu.
func (rs *replicaSet) quarantineLocked(r int, err error) {
	rep := rs.reps[r]
	if rep.state != ReplicaQuarantined {
		rep.state = ReplicaQuarantined
		metQuarantines.Inc()
	}
	rep.lastErr = err
}

// markStale quarantines replica r as lagging its authoritative sibling —
// the reopen-after-crash path, where a replica that lost an unsynced
// suffix must not serve reads until re-seeded.
func (rs *replicaSet) markStale(r int, err error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.quarantineLocked(r, err)
}

// observe feeds one operation outcome on replica r into the state
// machine.
func (rs *replicaSet) observe(r int, err error) {
	class := classify(err)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rep := rs.reps[r]
	if rep.state == ReplicaQuarantined {
		// Re-admission goes through repair only; a straggling success
		// (or further failure) from an already-condemned replica is moot.
		return
	}
	switch class {
	case obsNone:
		if err == nil && rep.state == ReplicaSuspect {
			rep.state = ReplicaHealthy
			rep.strikes = 0
			rep.lastErr = nil
		}
	case obsSuspect:
		rep.state = ReplicaSuspect
		rep.lastErr = err
	case obsStrike:
		rep.state = ReplicaSuspect
		rep.lastErr = err
		rep.strikes++
		if rep.strikes >= quarantineStrikes {
			rs.quarantineLocked(r, err)
		}
	case obsFatal:
		rs.quarantineLocked(r, err)
	}
}

// pick returns the preferred readable replica — lowest index in the
// rotation, skipping skip — or -1.
func (rs *replicaSet) pick(skip []bool) (int, *mstsearch.DB) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for i, rep := range rs.reps {
		if rep.state != ReplicaQuarantined && rep.db != nil && (skip == nil || !skip[i]) {
			return i, rep.db
		}
	}
	return -1, nil
}

// preferred is pick with no exclusions: the replica reads start on.
func (rs *replicaSet) preferred() (int, *mstsearch.DB) { return rs.pick(nil) }

// live returns the rotation members' indexes.
func (rs *replicaSet) live() []int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var out []int
	for i, rep := range rs.reps {
		if rep.state != ReplicaQuarantined && rep.db != nil {
			out = append(out, i)
		}
	}
	return out
}

// db returns replica r's DB (nil if it failed to open).
func (rs *replicaSet) db(r int) *mstsearch.DB {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.reps[r].db
}

// unavailable is the error for a shard whose whole rotation is empty.
func (rs *replicaSet) unavailable() error {
	return fmt.Errorf("shard %d: %w", rs.shard, mstsearch.ErrUnavailable)
}

// readProfile collects what one failover read did, so the coordinator
// can emit deterministic trace events and stats after a concurrent wave
// joins. It is owned by a single read call — no locking.
type readProfile struct {
	failovers int
	hedges    int
	events    []mst.TraceEvent
}

// read runs fn against the preferred replica, failing over to siblings on
// replica-attributable errors and recording hand-offs in prof (which may
// be nil). The returned error is the last attempt's; when the rotation is
// empty it is ErrUnavailable.
func (rs *replicaSet) read(prof *readProfile, fn func(db *mstsearch.DB) error) error {
	skip := make([]bool, rs.n)
	r, db := rs.pick(skip)
	if r < 0 {
		return rs.unavailable()
	}
	for {
		err := fn(db)
		rs.observe(r, err)
		if err == nil || !failoverable(err) {
			return err
		}
		skip[r] = true
		nr, ndb := rs.pick(skip)
		if nr < 0 {
			return err
		}
		metFailovers.Inc()
		if prof != nil {
			prof.failovers++
			prof.events = append(prof.events, mst.TraceEvent{
				Kind: mstsearch.EventReplicaFailover, Shard: rs.shard,
				Replica: nr, Count: r,
			})
		}
		r, db = nr, ndb
	}
}

// runQuery is read specialized to the k-MST scatter, with optional
// hedging: when hedge > 0 and a sibling is in the rotation, a second
// attempt launches on the sibling once the primary has been running for
// the threshold, and the first answer wins. Because rotation members hold
// identical content, either answer is the answer — hedging trades
// duplicate work for tail latency and never changes results.
func (rs *replicaSet) runQuery(ctx context.Context, req mstsearch.Request, hedge time.Duration, prof *readProfile) (mstsearch.Response, error) {
	p, pdb := rs.preferred()
	if p < 0 {
		return mstsearch.Response{}, rs.unavailable()
	}
	var s int
	var sdb *mstsearch.DB
	if hedge > 0 {
		skip := make([]bool, rs.n)
		skip[p] = true
		s, sdb = rs.pick(skip)
	}
	if hedge <= 0 || sdb == nil {
		var resp mstsearch.Response
		err := rs.read(prof, func(db *mstsearch.DB) error {
			var e error
			resp, e = db.Query(ctx, req)
			return e
		})
		return resp, err
	}

	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type attempt struct {
		r    int
		resp mstsearch.Response
		err  error
	}
	ch := make(chan attempt, 2)
	launch := func(r int, db *mstsearch.DB) {
		go func() {
			resp, err := db.Query(hctx, req)
			ch <- attempt{r: r, resp: resp, err: err}
		}()
	}
	launch(p, pdb)
	timer := time.NewTimer(hedge)
	defer timer.Stop()

	outstanding, hedged := 1, false
	var winner *mstsearch.Response
	var primaryErr, otherErr error
	for outstanding > 0 {
		select {
		case a := <-ch:
			outstanding--
			// A loser canceled by our own cancel() classifies as obsNone,
			// so draining it never dirties the health machine.
			rs.observe(a.r, a.err)
			switch {
			case a.err == nil:
				if winner == nil {
					v := a.resp
					winner = &v
					cancel()
				}
			case a.r == p:
				primaryErr = a.err
			default:
				otherErr = a.err
			}
			if winner == nil && outstanding == 0 && !hedged && failoverable(a.err) {
				// The primary failed before the hedge fired: promote the
				// sibling as an ordinary failover instead of waiting out
				// the timer.
				metFailovers.Inc()
				if prof != nil {
					prof.failovers++
					prof.events = append(prof.events, mst.TraceEvent{
						Kind: mstsearch.EventReplicaFailover, Shard: rs.shard,
						Replica: s, Count: p,
					})
				}
				launch(s, sdb)
				outstanding++
				hedged = true
			}
		case <-timer.C:
			if winner == nil && !hedged {
				metHedges.Inc()
				if prof != nil {
					prof.hedges++
				}
				launch(s, sdb)
				outstanding++
				hedged = true
			}
		}
	}
	if winner != nil {
		return *winner, nil
	}
	// Both attempts failed: surface the primary's error for deterministic
	// reporting (it is what an unreplicated shard would have returned).
	if primaryErr != nil {
		return mstsearch.Response{}, primaryErr
	}
	return mstsearch.Response{}, otherErr
}

// write applies one mutation to every rotation member, acking at the
// given concern. A replica that fails a mutation a sibling applied has
// diverged and is quarantined; a mutation failing uniformly leaves the
// set consistent and nobody condemned. applied reports whether at least
// one replica holds the mutation — the routing table must reflect shard
// contents, so the caller registers the id whenever applied is true, even
// when err reports a missed quorum. Callers hold the cluster write lock,
// which is what serializes writes against the repair loop.
func (rs *replicaSet) write(concern WriteConcern, fn func(db *mstsearch.DB) error) (applied bool, err error) {
	live := rs.live()
	if len(live) == 0 {
		return false, rs.unavailable()
	}
	need := concern.required(len(rs.reps))
	if concern == WriteAll {
		need = len(live)
	}
	if need > len(live) {
		// Refusing up front keeps the set consistent: applying to fewer
		// replicas than the quorum could ever ack would guarantee a
		// divergence error on every such write.
		return false, fmt.Errorf("shard %d: %w: %d replicas in rotation, write concern %s needs %d",
			rs.shard, mstsearch.ErrUnavailable, len(live), concern, need)
	}
	acks := 0
	var firstErr error
	failed := make(map[int]error)
	for _, r := range live {
		db := rs.db(r)
		if werr := fn(db); werr != nil {
			if firstErr == nil {
				firstErr = werr
			}
			failed[r] = werr
		} else {
			acks++
		}
	}
	if acks == 0 {
		return false, firstErr
	}
	if len(failed) > 0 {
		rs.mu.Lock()
		for r, werr := range failed {
			rs.quarantineLocked(r, fmt.Errorf("missed mutation: %w", werr))
		}
		rs.mu.Unlock()
	}
	if acks < need {
		return true, fmt.Errorf("shard %d: %w: %d/%d replicas acked, write concern %s needs %d (first error: %v)",
			rs.shard, mstsearch.ErrUnavailable, acks, len(live), concern, need, firstErr)
	}
	return true, nil
}

// statuses reports every replica's health view.
func (rs *replicaSet) statuses() []mstsearch.ReplicaStatus {
	rs.mu.Lock()
	type view struct {
		db         *mstsearch.DB
		state      ReplicaState
		lastErr    error
		lastRepair time.Time
	}
	views := make([]view, len(rs.reps))
	for i, rep := range rs.reps {
		views[i] = view{db: rep.db, state: rep.state, lastErr: rep.lastErr, lastRepair: rep.lastRepair}
	}
	rs.mu.Unlock()

	out := make([]mstsearch.ReplicaStatus, len(views))
	for i, v := range views {
		st := mstsearch.ReplicaStatus{
			Shard: rs.shard, Replica: i,
			State:      v.state.String(),
			LastRepair: v.lastRepair,
		}
		if v.db != nil {
			st.Trajectories = v.db.Len()
		}
		if v.lastErr != nil {
			st.LastError = v.lastErr.Error()
		}
		out[i] = st
	}
	return out
}

// quarantined returns the indexes awaiting repair.
func (rs *replicaSet) quarantined() []int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var out []int
	for i, rep := range rs.reps {
		if rep.state == ReplicaQuarantined {
			out = append(out, i)
		}
	}
	return out
}

// admit swaps in a freshly re-seeded DB for replica r and returns it to
// the rotation — the final step of a repair.
func (rs *replicaSet) admit(r int, db *mstsearch.DB) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rep := rs.reps[r]
	rep.db = db
	rep.state = ReplicaHealthy
	rep.strikes = 0
	rep.lastErr = nil
	rep.lastRepair = time.Now()
}
