package shard

import (
	"context"
	"math"
	"sort"
	"sync"

	mstsearch "mstsearch"
	"mstsearch/internal/geom"
	"mstsearch/internal/mst"
)

// QueryStats reports the scatter-gather profile of one cluster query, on
// top of the merged SearchStats the Response carries.
type QueryStats struct {
	// Fanout is how many shards actually ran the search; Pruned how many
	// the coordinator skipped because their certified lower bound could
	// not beat the global k-th pessimistic bound (Fanout + Pruned =
	// NumShards).
	Fanout int
	Pruned int
	// Bounds is each shard's certified OPTDISSIM lower bound (indexed by
	// shard; +Inf = provably no covering trajectory).
	Bounds []float64
	// PerShard holds the per-shard search stats, indexed by shard; nil
	// entries are pruned shards.
	PerShard []*mstsearch.SearchStats
	// Failovers counts replica hand-offs during this query (a replica
	// erred mid-scatter and a sibling answered instead); Hedges counts
	// hedged second attempts launched past Options.HedgeAfter. Both are
	// zero on an unreplicated cluster.
	Failovers int
	Hedges    int
}

// Query answers one k-MST request against the whole cluster. Under exact
// refinement (Options.ExactRefine) the merged results, their order, and
// their Certified flags are bit-identical to the same Request on a single
// DB holding every trajectory; shard pruning and gather short-circuiting
// are pure optimizations that never change the answer. A caller-supplied
// Options.Trace hook receives every shard's events plus the cluster-level
// EventShardScatter/EventShardPrune events — shards search concurrently,
// so the hook must be safe for concurrent use (the same contract as
// KMostSimilarBatch).
func (c *Cluster) Query(ctx context.Context, req mstsearch.Request) (mstsearch.Response, error) {
	resp, _, err := c.QueryShards(ctx, req)
	return resp, err
}

// QueryShards is Query plus the scatter-gather profile.
func (c *Cluster) QueryShards(ctx context.Context, req mstsearch.Request) (mstsearch.Response, QueryStats, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.queryLocked(ctx, req)
}

// queryLocked runs the scatter-gather; callers must hold c.mu (shared
// with the batch executor, which holds the read lock across all slots).
func (c *Cluster) queryLocked(ctx context.Context, req mstsearch.Request) (mstsearch.Response, QueryStats, error) {
	n := len(c.sets)
	workers := c.workers()
	k := req.K
	if k < 1 {
		k = 1
	}
	metQueries.Inc()
	var csum *mstsearch.TraceSummary // cluster-level events, folded into Response.Trace
	if req.Options.Trace != nil {
		csum = &mstsearch.TraceSummary{ByKind: make(map[mstsearch.EventKind]int)}
	}
	failovers, hedges := 0, 0

	// Stage 1 — bounds: one root-page read per shard gives a certified
	// lower bound on every trajectory the shard stores, served by the
	// shard's preferred replica with transparent failover. Errors surface
	// deterministically (lowest shard index wins), exactly as a single-DB
	// query would surface its root read error.
	bounds := make([]float64, n)
	errs := make([]error, n)
	boundProfs := make([]readProfile, n)
	runBounded(n, workers, func(i int) {
		errs[i] = c.sets[i].read(&boundProfs[i], func(db *mstsearch.DB) error {
			var err error
			bounds[i], err = db.QueryLowerBound(ctx, req)
			return err
		})
	})
	fo, he := c.emitProfiles(req, csum, boundProfs)
	failovers, hedges = failovers+fo, hedges+he
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return mstsearch.Response{}, QueryStats{}, errs[i]
		}
	}

	// Stage 2 — scatter in waves of ascending bound. Shards whose bound
	// cannot beat the k-th pessimistic bound over already-collected
	// results pop later in this order, so one check between waves prunes
	// every remaining shard at once — the cluster-level analogue of
	// Heuristic 2's MINDIST-order early termination. The schedule is a
	// pure function of (bounds, Workers), keeping the pruned count
	// deterministic and monotone in k.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ba, bb := bounds[order[a]], bounds[order[b]]
		if ba != bb {
			return ba < bb
		}
		return order[a] < order[b]
	})

	resps := make([]*mstsearch.Response, n)
	var pes []float64 // pessimistic bounds (Dissim + Err) of collected results
	queried, pruned := 0, 0
	pos := 0
	for pos < n {
		next := bounds[order[pos]]
		if math.IsInf(next, 1) || (len(pes) >= k && kthSmallest(pes, k) < next) {
			// Every remaining shard has bound >= next: none can place a
			// result among the k already collected (strictly better)
			// ones, and +Inf means provably nothing covers the period.
			tau := math.Inf(1)
			if len(pes) >= k {
				tau = kthSmallest(pes, k)
			}
			for _, i := range order[pos:] {
				pruned++
				c.emit(req, csum, mst.TraceEvent{
					Kind: mstsearch.EventShardPrune, Shard: i,
					MinDist: bounds[i], Threshold: tau,
				})
			}
			break
		}
		end := pos + workers
		if end > n {
			end = n
		}
		wave := order[pos:end]
		for _, i := range wave {
			c.emit(req, csum, mst.TraceEvent{
				Kind: mstsearch.EventShardScatter, Shard: i, MinDist: bounds[i],
			})
		}
		waveErrs := make([]error, len(wave))
		waveProfs := make([]readProfile, len(wave))
		runBounded(len(wave), workers, func(j int) {
			r, err := c.sets[wave[j]].runQuery(ctx, req, c.opts.HedgeAfter, &waveProfs[j])
			if err != nil {
				waveErrs[j] = err
				return
			}
			resps[wave[j]] = &r
		})
		fo, he := c.emitProfiles(req, csum, waveProfs)
		failovers, hedges = failovers+fo, hedges+he
		// Deterministic error surfacing: lowest shard index in the wave.
		errShard, errIdx := n, -1
		for j, err := range waveErrs {
			if err != nil && wave[j] < errShard {
				errShard, errIdx = wave[j], j
			}
		}
		if errIdx >= 0 {
			return mstsearch.Response{}, QueryStats{}, waveErrs[errIdx]
		}
		for _, i := range wave {
			queried++
			for _, r := range resps[i].Results {
				pes = append(pes, r.Dissim+r.Err)
			}
		}
		pos = end
	}

	resp, stats := c.merge(k, bounds, resps, csum, queried, pruned)
	stats.Failovers = failovers
	stats.Hedges = hedges
	metFanout.Observe(float64(queried))
	metPruned.Observe(float64(pruned))
	metMergeResults.Observe(float64(len(resp.Results)))
	return resp, stats, nil
}

// emit delivers a cluster-level trace event to the request's hook and
// counts it into the cluster's own summary (csum), which merge folds into
// Response.Trace alongside the per-shard summaries.
func (c *Cluster) emit(req mstsearch.Request, csum *mstsearch.TraceSummary, ev mst.TraceEvent) {
	if req.Options.Trace != nil {
		req.Options.Trace(ev)
	}
	if csum != nil {
		csum.Events++
		csum.ByKind[ev.Kind]++
	}
}

// kthSmallest returns the k-th smallest value of xs (k <= len(xs)).
func kthSmallest(xs []float64, k int) float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return s[k-1]
}

// merge folds the per-shard responses into the global Response: results
// sorted by the single-DB comparator (Dissim, then TrajID on exact ties)
// and truncated to k, Certified flags re-checked against the floors of the
// shards that did not contribute, and stats aggregated.
func (c *Cluster) merge(k int, bounds []float64, resps []*mstsearch.Response, csum *mstsearch.TraceSummary, queried, pruned int) (mstsearch.Response, QueryStats) {
	qs := QueryStats{
		Fanout:   queried,
		Pruned:   pruned,
		Bounds:   bounds,
		PerShard: make([]*mstsearch.SearchStats, len(resps)),
	}

	var all []mstsearch.Result
	var stats mstsearch.SearchStats
	stats.CertFloor = math.Inf(1)
	traces := make([]*mstsearch.TraceSummary, 0, len(resps)+1)
	if csum != nil {
		traces = append(traces, csum)
	}

	// certFloor is the certified lower bound on every trajectory the
	// gather never saw: pruned shards contribute their root bound;
	// budget-degraded shards contribute their search's floor. Complete
	// (non-degraded) shards contribute nothing — their returned top-k
	// dominates everything they hold back, so the holdbacks can never
	// enter the global top-k.
	certFloor := math.Inf(1)
	for i, r := range resps {
		if r == nil { // pruned
			if bounds[i] < certFloor {
				certFloor = bounds[i]
			}
			if bounds[i] < stats.CertFloor {
				stats.CertFloor = bounds[i]
			}
			continue
		}
		st := r.Stats
		qs.PerShard[i] = &st
		all = append(all, r.Results...)
		if r.Trace != nil {
			traces = append(traces, r.Trace)
		}
		stats.NodesAccessed += st.NodesAccessed
		stats.LeavesAccessed += st.LeavesAccessed
		stats.TotalNodes += st.TotalNodes
		stats.Enqueued += st.Enqueued
		stats.PageReads += st.PageReads
		stats.BufferHits += st.BufferHits
		stats.Retries += st.Retries
		stats.Evictions += st.Evictions
		stats.TrapezoidEvals += st.TrapezoidEvals
		stats.ExactRefined += st.ExactRefined
		stats.TerminatedEarly = stats.TerminatedEarly || st.TerminatedEarly
		stats.Degraded = stats.Degraded || st.Degraded
		if st.Degraded && st.CertFloor < certFloor {
			certFloor = st.CertFloor
		}
		if st.CertFloor < stats.CertFloor {
			stats.CertFloor = st.CertFloor
		}
	}
	if stats.TotalNodes > 0 {
		stats.PruningPower = 1 - float64(stats.NodesAccessed)/float64(stats.TotalNodes)
	}

	sort.SliceStable(all, func(i, j int) bool {
		if !geom.ExactEq(all[i].Dissim, all[j].Dissim) {
			return all[i].Dissim < all[j].Dissim
		}
		return all[i].TrajID < all[j].TrajID
	})
	if len(all) > k {
		// Results merged out still bound the response-level floor: they
		// are stored trajectories the caller does not see.
		for _, r := range all[k:] {
			if lo := r.Dissim - r.Err; lo < stats.CertFloor {
				stats.CertFloor = lo
			}
		}
		all = all[:k]
	}
	// A result stays certified only if its shard certified it AND no
	// unseen trajectory (pruned shard, degraded holdback) can lie below
	// its pessimistic bound — the same `hi <= floor` rule a degraded
	// single-DB search applies. certFloor is +Inf when every shard ran to
	// completion or was pruned strictly, leaving all flags untouched.
	for i := range all {
		all[i].Certified = all[i].Certified && all[i].Dissim+all[i].Err <= certFloor
	}

	resp := mstsearch.Response{Results: all, Stats: stats}
	if len(traces) > 0 {
		sum := &mstsearch.TraceSummary{ByKind: make(map[mstsearch.EventKind]int)}
		for _, t := range traces {
			sum.Events += t.Events
			for kind, cnt := range t.ByKind {
				sum.ByKind[kind] += cnt
			}
		}
		resp.Trace = sum
	}
	return resp, qs
}

// runBounded runs fn(0..n-1) on at most workers goroutines and waits.
func runBounded(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}
