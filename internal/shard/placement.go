package shard

import (
	"fmt"
	"hash/fnv"

	mstsearch "mstsearch"
)

// Placement decides which shard owns a trajectory. Implementations must be
// pure functions of the trajectory and shard count: the cluster re-derives
// ownership from recovered shards on Open, and the differential suite
// replays the same corpus through every placement expecting identical
// query answers.
type Placement interface {
	// Name identifies the policy in the cluster manifest ("hash",
	// "spatial"); Open refuses a directory whose manifest names a
	// different policy.
	Name() string
	// Shard maps a trajectory onto [0, n). n is always >= 1 and the
	// trajectory has at least one sample (the cluster validates before
	// routing).
	Shard(tr *mstsearch.Trajectory, n int) int
}

// HashPlacement spreads trajectories uniformly by FNV-1a of their ID —
// the load-balancing default with no data-dependent skew.
type HashPlacement struct{}

// Name implements Placement.
func (HashPlacement) Name() string { return "hash" }

// Shard implements Placement.
func (HashPlacement) Shard(tr *mstsearch.Trajectory, n int) int {
	h := fnv.New64a()
	var b [8]byte
	id := uint64(tr.ID)
	for i := 0; i < 8; i++ {
		b[i] = byte(id >> (8 * i))
	}
	h.Write(b[:])
	return int(h.Sum64() % uint64(n))
}

// SpatialPlacement stripes trajectories across shards by the X coordinate
// of their first sample over [MinX, MaxX]: co-located trajectories land on
// the same shard, so queries confined to one region let the coordinator's
// bound check prune the other shards entirely. The zero value stripes over
// the unit workspace [0, 1]. Out-of-range trajectories clamp to the edge
// shards.
type SpatialPlacement struct {
	MinX, MaxX float64
}

// Name implements Placement.
func (SpatialPlacement) Name() string { return "spatial" }

// Shard implements Placement.
func (p SpatialPlacement) Shard(tr *mstsearch.Trajectory, n int) int {
	min, max := p.MinX, p.MaxX
	if min == 0 && max == 0 {
		min, max = 0, 1
	}
	if max <= min {
		return 0
	}
	x := tr.Samples[0].X
	i := int(float64(n) * (x - min) / (max - min))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// PlacementByName resolves a manifest / CLI policy name.
func PlacementByName(name string) (Placement, error) {
	switch name {
	case "hash":
		return HashPlacement{}, nil
	case "spatial":
		return SpatialPlacement{}, nil
	default:
		return nil, fmt.Errorf("shard: unknown placement %q (want hash or spatial)", name)
	}
}
