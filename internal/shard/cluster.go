// Package shard partitions a trajectory store horizontally across N
// independent DB shards and answers k-MST queries by scatter-gather: every
// shard runs the paper's best-first search over its own index, and the
// coordinator merges the per-shard k-buffers into a global top-k — pruning
// whole shards with the same certified OPTDISSIM lower bounds the search
// uses inside one tree (Frentzos et al., §4.2, lifted to the root MBB).
//
// # Correctness model
//
// Each trajectory lives on exactly one shard (a pure placement function of
// the trajectory), so the global candidate set is the disjoint union of
// the shards'. A shard's root-MBB lower bound holds for every trajectory
// it stores; a shard is skipped only when that bound strictly exceeds the
// global k-th pessimistic bound over already-collected results (or is
// +Inf — provably no covering trajectory). Under exact refinement
// (Options.ExactRefine, the default), merged results, order, and Certified
// flags are bit-identical to running the same query on one DB holding all
// trajectories — the property the differential suite enforces at every
// shard count and placement.
//
// # Replication
//
// With Options.Replicas = R > 1 every shard is a replica set of R
// independently durable DBs holding identical content (replica.go).
// Mutations apply to every rotation member and ack at Options.
// WriteConcern; reads serve from the preferred healthy replica and fail
// over to a sibling mid-scatter on replica-attributable errors, keeping
// merged responses bit-identical to the single-DB oracle while replicas
// die; a background anti-entropy loop (repair.go) re-seeds quarantined
// replicas from a healthy sibling. R = 1 (the default) is the PR 8
// single-DB-per-shard cluster, bit- and layout-compatible.
//
// # Durability
//
// A durable cluster (Open) gives each shard its own subdirectory with its
// own WAL and checkpoints — shards fail and recover as independent units —
// plus an atomically written cluster manifest pinning (kind, shard count,
// placement, replicas) so a directory cannot silently reopen under a
// different partitioning. With R > 1 each replica journals into its own
// dir/shard-<i>/replica-<r> subdirectory, so replicas fail and recover
// independently too; on reopen the fullest replica of each shard is
// authoritative and lagging siblings are quarantined for re-seeding.
package shard

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	mstsearch "mstsearch"
)

// Options tunes a cluster; the zero value is sensible.
type Options struct {
	// Workers bounds how many shards one Query searches concurrently
	// (<= 0: min(GOMAXPROCS, shard count)). The wave schedule — and with
	// it the exact pruned-shard count — is deterministic for a fixed
	// Workers value.
	Workers int

	// Replicas is the replica count per shard (<= 0 or 1: one DB per
	// shard, the unreplicated PR 8 layout).
	Replicas int
	// WriteConcern is the replica ack threshold for mutations (default
	// WriteAll). Ignored when Replicas <= 1 effectively (a single
	// replica always needs its own ack).
	WriteConcern WriteConcern
	// HedgeAfter, when > 0, launches a k-MST read on a sibling replica
	// once the preferred replica has been searching for this long, and
	// takes the first answer — tail-latency insurance that never changes
	// results (rotation members hold identical content). Off by default.
	HedgeAfter time.Duration
	// RepairInterval, when > 0, runs the background anti-entropy loop at
	// this period, re-seeding quarantined replicas from healthy siblings
	// (see Cluster.RepairNow). Off by default; Close stops it.
	RepairInterval time.Duration
	// OnRepairEvent, when non-nil, observes every EventReplicaRepair the
	// repair loop emits (repairs happen outside any query, so they have
	// no query trace to ride). Called with the cluster lock held; keep it
	// fast.
	OnRepairEvent func(mstsearch.TraceEvent)

	// Durable configures every replica's WAL/checkpoint behaviour on a
	// durable cluster (Open); ignored by New.
	Durable mstsearch.DurableOptions
	// ShardDurable, when non-nil, overrides Durable for every replica of
	// individual shards — the seam the crash tests use to aim a
	// PowercutBudget at one shard's log while its siblings stay healthy.
	ShardDurable func(shard int) mstsearch.DurableOptions
	// ReplicaDurable, when non-nil, overrides both for individual
	// replicas — the finer seam the replica crash tests aim at one
	// replica's log (including the fresh WAL a repair re-seed opens).
	ReplicaDurable func(shard, replica int) mstsearch.DurableOptions
}

// replicas resolves the effective replica count.
func (o Options) replicas() int {
	if o.Replicas < 1 {
		return 1
	}
	return o.Replicas
}

// Cluster is a horizontally sharded trajectory store. Create with New
// (in-memory) or Open (durable); a Cluster is safe for concurrent use with
// the same locking contract as a single DB — queries run in parallel and
// serialize against mutations.
type Cluster struct {
	// Immutable after New/Open: the replica-set slice, placement, and
	// options never change, so reads need no lock — each set carries its
	// own health lock and each replica DB its own DB.mu.
	sets  []*replicaSet
	place Placement
	kind  mstsearch.IndexKind
	opts  Options
	root  string // durable cluster directory ("" = in-memory)

	// Repair-loop plumbing, set once before the cluster is shared.
	repairCancel context.CancelFunc
	repairDone   chan struct{}
	stopRepair   sync.Once

	// mu guards the routing table and gives queries a cluster-wide
	// snapshot against mutations. It orders the cluster above its
	// shards: every path takes it before any replica-set or shard lock,
	// and no shard method ever calls back into the cluster.
	mu  sync.RWMutex         // lockrank: 5 — held before replicaSet.mu (8) and any shard DB.mu (10)
	dir map[mstsearch.ID]int // trajectory → owning shard
}

// New creates an in-memory cluster of n shards under the placement policy.
func New(kind mstsearch.IndexKind, n int, place Placement, opts Options) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: cluster needs at least 1 shard, got %d", n)
	}
	if place == nil {
		place = HashPlacement{}
	}
	c := &Cluster{
		sets:  make([]*replicaSet, n),
		place: place,
		kind:  kind,
		opts:  opts,
		dir:   make(map[mstsearch.ID]int),
	}
	r := opts.replicas()
	for i := range c.sets {
		dbs := make([]*mstsearch.DB, r)
		for j := range dbs {
			dbs[j] = mstsearch.Open(kind)
		}
		c.sets[i] = newReplicaSet(i, dbs, nil)
	}
	if opts.RepairInterval > 0 {
		c.startRepairLoop(opts.RepairInterval)
	}
	return c, nil
}

// Open opens (or creates) a durable cluster in dir: shard i journals into
// dir/shard-<i> with its own WAL and checkpoints (see mstsearch.
// OpenDurable) — each replica into dir/shard-<i>/replica-<r> when
// Options.Replicas > 1 — and dir/cluster.json pins (kind, n, placement,
// replicas) so a later Open with different parameters fails with
// ErrManifestMismatch instead of scattering new writes under a different
// partitioning. Recovery is per-replica — each replays its own log — and
// the routing table is re-derived from each shard's authoritative (most
// complete) replica. A replica whose directory is damaged (torn
// mid-log, corrupt snapshot) opens quarantined instead of failing the
// cluster, as long as one replica of its shard survives; lagging
// replicas are quarantined the same way and both wait for repair.
func Open(dir string, kind mstsearch.IndexKind, n int, place Placement, opts Options) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: cluster needs at least 1 shard, got %d", n)
	}
	if place == nil {
		place = HashPlacement{}
	}
	r := opts.replicas()
	if err := checkManifest(dir, kind, n, place.Name(), r); err != nil {
		return nil, err
	}
	c := &Cluster{
		sets:  make([]*replicaSet, n),
		place: place,
		kind:  kind,
		opts:  opts,
		root:  dir,
		dir:   make(map[mstsearch.ID]int),
	}
	fail := func(err error) (*Cluster, error) {
		for _, rs := range c.sets {
			if rs == nil {
				continue
			}
			for _, rep := range rs.reps {
				if rep.db != nil {
					rep.db.Close()
				}
			}
		}
		return nil, err
	}
	for i := range c.sets {
		dbs := make([]*mstsearch.DB, r)
		openErrs := make([]error, r)
		opened := 0
		for j := 0; j < r; j++ {
			db, err := mstsearch.OpenDurable(c.replicaPath(i, j), kind, c.replicaDurable(i, j))
			if err != nil {
				// Damage or a storage fault in one replica's directory
				// quarantines the replica (repair re-seeds it); anything
				// not replica-attributable (a config mismatch, a plain
				// I/O failure) fails the open — as does any error when
				// this is the only copy, checked below.
				if r > 1 && classify(err) >= obsStrike {
					openErrs[j] = err
					continue
				}
				return fail(fmt.Errorf("shard %d replica %d: %w", i, j, err))
			}
			dbs[j] = db
			opened++
		}
		if opened == 0 {
			return fail(fmt.Errorf("shard %d: every replica failed to open, first: %w", i, firstError(openErrs)))
		}
		c.sets[i] = newReplicaSet(i, dbs, openErrs)

		// Authoritative replica: under the prefix-loss crash model every
		// surviving replica holds a prefix of the acknowledged mutations,
		// so the fullest one is authoritative. Lagging siblings leave the
		// rotation until the repair loop re-seeds them.
		auth, authTrajs, authSegs := -1, -1, -1
		for j, db := range dbs {
			if db == nil {
				continue
			}
			trajs, segs := db.Len(), db.NumSegments()
			if trajs > authTrajs || (trajs == authTrajs && segs > authSegs) {
				auth, authTrajs, authSegs = j, trajs, segs
			}
		}
		for j, db := range dbs {
			if db == nil || j == auth {
				continue
			}
			if db.Len() != authTrajs || db.NumSegments() != authSegs {
				c.sets[i].markStale(j, fmt.Errorf("mstsearch: replica lags authoritative sibling %d (%d/%d trajectories, %d/%d segments)",
					auth, db.Len(), authTrajs, db.NumSegments(), authSegs))
			}
		}
		// Quarantine ordering matters for the rotation: auth must end up
		// preferred. markStale above removes every non-matching lower
		// index, so pick() now lands on auth (or an identical twin, which
		// is just as good).
		for _, id := range dbs[auth].IDs() {
			if prev, dup := c.dir[id]; dup {
				return fail(fmt.Errorf("%w: trajectory %d recovered on shards %d and %d", mstsearch.ErrDuplicateID, id, prev, i))
			}
			c.dir[id] = i
		}
	}
	if opts.RepairInterval > 0 {
		c.startRepairLoop(opts.RepairInterval)
	}
	return c, nil
}

// shardDirName is shard i's subdirectory under the cluster root.
func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// replicaDirName is replica r's subdirectory under its shard (replicated
// layouts only).
func replicaDirName(r int) string { return fmt.Sprintf("replica-%d", r) }

// replicaPath is the durable directory of (shard i, replica r). An
// unreplicated cluster keeps the flat PR 8 layout, so existing
// directories reopen unchanged.
func (c *Cluster) replicaPath(i, r int) string {
	if c.opts.replicas() == 1 {
		return filepath.Join(c.root, shardDirName(i))
	}
	return filepath.Join(c.root, shardDirName(i), replicaDirName(r))
}

// replicaDurable resolves the durable options for (shard i, replica r):
// ReplicaDurable wins over ShardDurable wins over Durable.
func (c *Cluster) replicaDurable(i, r int) mstsearch.DurableOptions {
	if c.opts.ReplicaDurable != nil {
		return c.opts.ReplicaDurable(i, r)
	}
	if c.opts.ShardDurable != nil {
		return c.opts.ShardDurable(i)
	}
	return c.opts.Durable
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.sets) }

// NumReplicas returns the configured replicas per shard.
func (c *Cluster) NumReplicas() int { return c.opts.replicas() }

// Shard exposes one shard's preferred (serving) replica DB — the seam
// tests use to aim fault injection (SetPagerWrapper) or direct inspection
// at a single shard. Routing through the returned DB directly bypasses
// the cluster's routing table; mutate through the Cluster instead. Nil
// only when the whole replica set is quarantined.
func (c *Cluster) Shard(i int) *mstsearch.DB {
	_, db := c.sets[i].preferred()
	return db
}

// Replica exposes one specific replica's DB (nil when the replica failed
// to open and awaits repair) — the finer seam replica tests aim faults
// with.
func (c *Cluster) Replica(i, r int) *mstsearch.DB { return c.sets[i].db(r) }

// ReplicaStatuses reports every replica's health, shard-major — the
// /healthz and `mststore cluster-info` surface.
func (c *Cluster) ReplicaStatuses() []mstsearch.ReplicaStatus {
	var out []mstsearch.ReplicaStatus
	for _, rs := range c.sets {
		out = append(out, rs.statuses()...)
	}
	return out
}

// Placement returns the cluster's placement policy.
func (c *Cluster) Placement() Placement { return c.place }

// Kind returns the index structure backing every shard.
func (c *Cluster) Kind() mstsearch.IndexKind { return c.kind }

// Add validates and stores one trajectory on its placement-assigned shard.
// On a durable cluster every rotation replica journals (and, under
// SyncAlways, fsyncs) the trajectory before applying it; the write acks at
// Options.WriteConcern. Duplicate IDs are refused cluster-wide, not just
// per shard.
func (c *Cluster) Add(tr mstsearch.Trajectory) error {
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("mstsearch: %w", err)
	}
	target := c.place.Shard(&tr, len(c.sets))
	if target < 0 || target >= len(c.sets) {
		return fmt.Errorf("shard: placement %s routed trajectory %d to shard %d of %d", c.place.Name(), tr.ID, target, len(c.sets))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, dup := c.dir[tr.ID]; dup {
		return fmt.Errorf("%w: %d (on shard %d)", mstsearch.ErrDuplicateID, tr.ID, prev)
	}
	applied, err := c.sets[target].write(c.opts.WriteConcern, func(db *mstsearch.DB) error {
		return db.Add(tr)
	})
	if applied {
		// The rotation holds the trajectory even when the quorum was
		// missed (the failed replicas are quarantined, the acked ones
		// serve) — the routing table mirrors shard contents, always.
		c.dir[tr.ID] = target
		metMutations.Inc()
	}
	return err
}

// AppendSample extends a stored trajectory on its owning shard (the
// online maintenance path, journaled on a durable cluster), acking at
// Options.WriteConcern.
func (c *Cluster) AppendSample(id mstsearch.ID, s mstsearch.Sample) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.dir[id]
	if !ok {
		return fmt.Errorf("mstsearch: unknown trajectory %d", id)
	}
	applied, err := c.sets[i].write(c.opts.WriteConcern, func(db *mstsearch.DB) error {
		return db.AppendSample(id, s)
	})
	if applied {
		metMutations.Inc()
	}
	return err
}

// Get returns a snapshot of a stored trajectory, or nil.
func (c *Cluster) Get(id mstsearch.ID) *mstsearch.Trajectory {
	c.mu.RLock()
	i, ok := c.dir[id]
	c.mu.RUnlock()
	if !ok {
		return nil
	}
	_, db := c.sets[i].preferred()
	if db == nil {
		return nil
	}
	return db.Get(id)
}

// Owner returns the shard holding id, or -1.
func (c *Cluster) Owner(id mstsearch.ID) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	i, ok := c.dir[id]
	if !ok {
		return -1
	}
	return i
}

// Len returns the number of stored trajectories across all shards.
func (c *Cluster) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.dir)
}

// NumSegments returns the total indexed segment count across all shards
// (each shard counted once, via its preferred replica).
func (c *Cluster) NumSegments() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, rs := range c.sets {
		if _, db := rs.preferred(); db != nil {
			n += db.NumSegments()
		}
	}
	return n
}

// EnableWarmBuffer switches every replica to a shared warm buffer pool
// (see mstsearch.DB.EnableWarmBuffer).
func (c *Cluster) EnableWarmBuffer() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, rs := range c.sets {
		for r := range rs.reps {
			if db := rs.db(r); db != nil {
				db.EnableWarmBuffer()
			}
		}
	}
}

// Checkpoint folds every replica's WAL into a fresh snapshot (durable
// clusters only; see mstsearch.DB.Checkpoint).
func (c *Cluster) Checkpoint() error {
	return c.CheckpointContext(context.Background())
}

// CheckpointContext checkpoints every rotation replica under the context,
// stopping at the first failure. Replicas checkpoint independently: a
// failure leaves the earlier ones checkpointed and the later ones
// recoverable from their old snapshot + log, exactly as a single DB's
// aborted checkpoint does. Quarantined replicas are skipped — the repair
// re-seed rewrites their directory wholesale anyway.
func (c *Cluster) CheckpointContext(ctx context.Context) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, rs := range c.sets {
		for _, r := range rs.live() {
			db := rs.db(r)
			if db == nil {
				continue
			}
			if err := db.CheckpointContext(ctx); err != nil {
				return fmt.Errorf("shard %d replica %d: %w", i, r, err)
			}
		}
	}
	return nil
}

// Close stops the repair loop, then flushes and releases every replica's
// log; the first error wins but every replica is closed. Safe on an
// in-memory cluster (no-op logs) and idempotent.
func (c *Cluster) Close() error {
	c.stopRepairLoop()
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for i, rs := range c.sets {
		for r := range rs.reps {
			db := rs.db(r)
			if db == nil {
				continue
			}
			if err := db.Close(); err != nil && first == nil {
				first = fmt.Errorf("shard %d replica %d: %w", i, r, err)
			}
		}
	}
	return first
}

// emitProfiles folds the failover/hedge profiles of one concurrent stage
// into the trace (in deterministic shard order) and returns the totals.
func (c *Cluster) emitProfiles(req mstsearch.Request, csum *mstsearch.TraceSummary, profs []readProfile) (failovers, hedges int) {
	for i := range profs {
		for _, ev := range profs[i].events {
			c.emit(req, csum, ev)
		}
		failovers += profs[i].failovers
		hedges += profs[i].hedges
	}
	return failovers, hedges
}
