// Package shard partitions a trajectory store horizontally across N
// independent DB shards and answers k-MST queries by scatter-gather: every
// shard runs the paper's best-first search over its own index, and the
// coordinator merges the per-shard k-buffers into a global top-k — pruning
// whole shards with the same certified OPTDISSIM lower bounds the search
// uses inside one tree (Frentzos et al., §4.2, lifted to the root MBB).
//
// # Correctness model
//
// Each trajectory lives on exactly one shard (a pure placement function of
// the trajectory), so the global candidate set is the disjoint union of
// the shards'. A shard's root-MBB lower bound holds for every trajectory
// it stores; a shard is skipped only when that bound strictly exceeds the
// global k-th pessimistic bound over already-collected results (or is
// +Inf — provably no covering trajectory). Under exact refinement
// (Options.ExactRefine, the default), merged results, order, and Certified
// flags are bit-identical to running the same query on one DB holding all
// trajectories — the property the differential suite enforces at every
// shard count and placement.
//
// # Durability
//
// A durable cluster (Open) gives each shard its own subdirectory with its
// own WAL and checkpoints — shards fail and recover as independent units —
// plus an atomically written cluster manifest pinning (kind, shard count,
// placement) so a directory cannot silently reopen under a different
// partitioning.
package shard

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"

	mstsearch "mstsearch"
)

// Options tunes a cluster; the zero value is sensible.
type Options struct {
	// Workers bounds how many shards one Query searches concurrently
	// (<= 0: min(GOMAXPROCS, shard count)). The wave schedule — and with
	// it the exact pruned-shard count — is deterministic for a fixed
	// Workers value.
	Workers int
	// Durable configures every shard's WAL/checkpoint behaviour on a
	// durable cluster (Open); ignored by New.
	Durable mstsearch.DurableOptions
	// ShardDurable, when non-nil, overrides Durable for individual shards
	// — the seam the crash tests use to aim a PowercutBudget at one
	// shard's log while its siblings stay healthy.
	ShardDurable func(shard int) mstsearch.DurableOptions
}

// Cluster is a horizontally sharded trajectory store. Create with New
// (in-memory) or Open (durable); a Cluster is safe for concurrent use with
// the same locking contract as a single DB — queries run in parallel and
// serialize against mutations.
type Cluster struct {
	// Immutable after New/Open: the shard set, placement, and options
	// never change, so reads need no lock — each shard's own DB.mu
	// protects its contents.
	shards []*mstsearch.DB
	place  Placement
	kind   mstsearch.IndexKind
	opts   Options

	// mu guards the routing table and gives queries a cluster-wide
	// snapshot against mutations. It orders the cluster above its
	// shards: every path takes it before any shard's own lock, and no
	// shard method ever calls back into the cluster.
	mu  sync.RWMutex         // lockrank: 5 — held before any shard DB.mu (rank 10)
	dir map[mstsearch.ID]int // trajectory → owning shard
}

// New creates an in-memory cluster of n shards under the placement policy.
func New(kind mstsearch.IndexKind, n int, place Placement, opts Options) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: cluster needs at least 1 shard, got %d", n)
	}
	if place == nil {
		place = HashPlacement{}
	}
	c := &Cluster{
		shards: make([]*mstsearch.DB, n),
		place:  place,
		kind:   kind,
		opts:   opts,
		dir:    make(map[mstsearch.ID]int),
	}
	for i := range c.shards {
		c.shards[i] = mstsearch.Open(kind)
	}
	return c, nil
}

// Open opens (or creates) a durable cluster in dir: shard i journals into
// dir/shard-<i> with its own WAL and checkpoints (see mstsearch.
// OpenDurable), and dir/cluster.json pins (kind, n, placement) so a later
// Open with different parameters fails with ErrManifestMismatch instead of
// scattering new writes under a different partitioning. Recovery is
// per-shard — each shard replays its own log — and the routing table is
// re-derived from the recovered shards' contents.
func Open(dir string, kind mstsearch.IndexKind, n int, place Placement, opts Options) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: cluster needs at least 1 shard, got %d", n)
	}
	if place == nil {
		place = HashPlacement{}
	}
	if err := checkManifest(dir, kind, n, place.Name()); err != nil {
		return nil, err
	}
	c := &Cluster{
		shards: make([]*mstsearch.DB, n),
		place:  place,
		kind:   kind,
		opts:   opts,
		dir:    make(map[mstsearch.ID]int),
	}
	for i := range c.shards {
		do := opts.Durable
		if opts.ShardDurable != nil {
			do = opts.ShardDurable(i)
		}
		db, err := mstsearch.OpenDurable(filepath.Join(dir, shardDirName(i)), kind, do)
		if err != nil {
			for j := 0; j < i; j++ {
				c.shards[j].Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		c.shards[i] = db
		for _, id := range db.IDs() {
			if prev, dup := c.dir[id]; dup {
				for j := 0; j <= i; j++ {
					c.shards[j].Close()
				}
				return nil, fmt.Errorf("%w: trajectory %d recovered on shards %d and %d", mstsearch.ErrDuplicateID, id, prev, i)
			}
			c.dir[id] = i
		}
	}
	return c, nil
}

// shardDirName is shard i's subdirectory under the cluster root.
func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// Shard exposes one shard's DB — the seam tests use to aim fault injection
// (SetPagerWrapper) or direct inspection at a single shard. Routing
// through the returned DB directly bypasses the cluster's routing table;
// mutate through the Cluster instead.
func (c *Cluster) Shard(i int) *mstsearch.DB { return c.shards[i] }

// Placement returns the cluster's placement policy.
func (c *Cluster) Placement() Placement { return c.place }

// Kind returns the index structure backing every shard.
func (c *Cluster) Kind() mstsearch.IndexKind { return c.kind }

// Add validates and stores one trajectory on its placement-assigned shard.
// On a durable cluster the shard journals (and, under SyncAlways, fsyncs)
// the trajectory before applying it. Duplicate IDs are refused cluster-
// wide, not just per shard.
func (c *Cluster) Add(tr mstsearch.Trajectory) error {
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("mstsearch: %w", err)
	}
	target := c.place.Shard(&tr, len(c.shards))
	if target < 0 || target >= len(c.shards) {
		return fmt.Errorf("shard: placement %s routed trajectory %d to shard %d of %d", c.place.Name(), tr.ID, target, len(c.shards))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, dup := c.dir[tr.ID]; dup {
		return fmt.Errorf("%w: %d (on shard %d)", mstsearch.ErrDuplicateID, tr.ID, prev)
	}
	if err := c.shards[target].Add(tr); err != nil {
		return err
	}
	c.dir[tr.ID] = target
	metMutations.Inc()
	return nil
}

// AppendSample extends a stored trajectory on its owning shard (the
// online maintenance path, journaled on a durable cluster).
func (c *Cluster) AppendSample(id mstsearch.ID, s mstsearch.Sample) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.dir[id]
	if !ok {
		return fmt.Errorf("mstsearch: unknown trajectory %d", id)
	}
	if err := c.shards[i].AppendSample(id, s); err != nil {
		return err
	}
	metMutations.Inc()
	return nil
}

// Get returns a snapshot of a stored trajectory, or nil.
func (c *Cluster) Get(id mstsearch.ID) *mstsearch.Trajectory {
	c.mu.RLock()
	i, ok := c.dir[id]
	c.mu.RUnlock()
	if !ok {
		return nil
	}
	return c.shards[i].Get(id)
}

// Owner returns the shard holding id, or -1.
func (c *Cluster) Owner(id mstsearch.ID) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	i, ok := c.dir[id]
	if !ok {
		return -1
	}
	return i
}

// Len returns the number of stored trajectories across all shards.
func (c *Cluster) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.dir)
}

// NumSegments returns the total indexed segment count across all shards.
func (c *Cluster) NumSegments() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, db := range c.shards {
		n += db.NumSegments()
	}
	return n
}

// EnableWarmBuffer switches every shard to a shared warm buffer pool (see
// mstsearch.DB.EnableWarmBuffer).
func (c *Cluster) EnableWarmBuffer() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, db := range c.shards {
		db.EnableWarmBuffer()
	}
}

// Checkpoint folds every shard's WAL into a fresh snapshot (durable
// clusters only; see mstsearch.DB.Checkpoint).
func (c *Cluster) Checkpoint() error {
	return c.CheckpointContext(context.Background())
}

// CheckpointContext checkpoints every shard under the context, stopping at
// the first failure. Shards checkpoint independently: a failure on shard i
// leaves shards < i checkpointed and shards >= i recoverable from their
// old snapshot + log, exactly as a single DB's aborted checkpoint does.
func (c *Cluster) CheckpointContext(ctx context.Context) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, db := range c.shards {
		if err := db.CheckpointContext(ctx); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Close flushes and releases every shard's log; the first error wins but
// every shard is closed. Safe on an in-memory cluster (no-op) and
// idempotent.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for i, db := range c.shards {
		if err := db.Close(); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return first
}
