// Package topology implements topological queries of trajectories against
// a spatial region over a time window — the third query class the paper's
// introduction requires the shared index to keep supporting ("classical
// range, topological and similarity based queries", §1). The predicates
// follow the usual spatiotemporal developments (enter / leave / cross /
// stay) of the moving-objects literature.
//
// The classification is exact: each trajectory segment is clipped against
// the region with the Liang–Barsky algorithm, producing the precise
// sequence of inside/outside episodes during the window.
package topology

import (
	"math"

	"mstsearch/internal/geom"
	"mstsearch/internal/trajectory"
)

// Relation is the topological relation of a trajectory to a region during
// a time window.
type Relation int

// The supported relations. Boundary contact counts as inside.
const (
	// Disjoint: the object never enters the region during the window.
	Disjoint Relation = iota
	// Inside: the object stays in the region for the whole window.
	Inside
	// Enter: starts outside, ends inside (entered once, never left again).
	Enter
	// Leave: starts inside, ends outside (left and never returned).
	Leave
	// Cross: starts and ends outside but passes through in between.
	Cross
	// Detour: starts and ends inside but leaves in between.
	Detour
	// Weave: multiple enter/leave alternations not covered above.
	Weave
)

// String names the relation.
func (r Relation) String() string {
	switch r {
	case Inside:
		return "inside"
	case Enter:
		return "enter"
	case Leave:
		return "leave"
	case Cross:
		return "cross"
	case Detour:
		return "detour"
	case Weave:
		return "weave"
	default:
		return "disjoint"
	}
}

// Episode is one maximal time span the object spends inside the region.
type Episode struct {
	T1, T2 float64
}

// Classify determines the relation of tr to region during [t1, t2], along
// with the inside episodes. ok is false when the trajectory does not cover
// any positive part of the window.
func Classify(tr *trajectory.Trajectory, region geom.Rect, t1, t2 float64) (Relation, []Episode, bool) {
	lo := math.Max(t1, tr.StartTime())
	hi := math.Min(t2, tr.EndTime())
	if !(lo < hi) {
		return Disjoint, nil, false
	}
	eps := 1e-12 * math.Max(1, hi-lo)

	var episodes []Episode
	add := func(a, b float64) {
		if b-a < 0 {
			return
		}
		if n := len(episodes); n > 0 && a-episodes[n-1].T2 <= eps {
			if b > episodes[n-1].T2 {
				episodes[n-1].T2 = b
			}
			return
		}
		episodes = append(episodes, Episode{a, b})
	}
	for i := 0; i < tr.NumSegments(); i++ {
		seg := tr.Segment(i)
		c, okc := seg.ClipTime(lo, hi)
		if !okc || c.Duration() < 0 {
			continue
		}
		if in, a, b := clipSegmentRect(c, region); in {
			add(a, b)
		}
	}
	if len(episodes) == 0 {
		return Disjoint, nil, true
	}

	startIn := episodes[0].T1 <= lo+eps
	endIn := episodes[len(episodes)-1].T2 >= hi-eps
	whole := startIn && endIn && len(episodes) == 1
	transitions := len(episodes)

	switch {
	case whole:
		return Inside, episodes, true
	case startIn && endIn:
		if transitions == 2 {
			return Detour, episodes, true
		}
		return Weave, episodes, true
	case startIn && !endIn:
		if transitions == 1 {
			return Leave, episodes, true
		}
		return Weave, episodes, true
	case !startIn && endIn:
		if transitions == 1 {
			return Enter, episodes, true
		}
		return Weave, episodes, true
	default: // outside at both ends
		if transitions == 1 {
			return Cross, episodes, true
		}
		return Weave, episodes, true
	}
}

// clipSegmentRect intersects the moving point's path with the rectangle
// using Liang–Barsky, returning whether any part lies inside and the
// absolute time span of the inside part.
func clipSegmentRect(s geom.Segment, r geom.Rect) (bool, float64, float64) {
	dur := s.Duration()
	if dur == 0 {
		if r.Contains(s.A.Spatial()) {
			return true, s.A.T, s.A.T
		}
		return false, 0, 0
	}
	dx := s.B.X - s.A.X
	dy := s.B.Y - s.A.Y
	u1, u2 := 0.0, 1.0
	clip := func(p, q float64) bool {
		if p == 0 {
			return q >= 0 // parallel: inside iff q >= 0
		}
		t := q / p
		if p < 0 {
			if t > u2 {
				return false
			}
			if t > u1 {
				u1 = t
			}
		} else {
			if t < u1 {
				return false
			}
			if t < u2 {
				u2 = t
			}
		}
		return true
	}
	if !clip(-dx, s.A.X-r.MinX) || !clip(dx, r.MaxX-s.A.X) ||
		!clip(-dy, s.A.Y-r.MinY) || !clip(dy, r.MaxY-s.A.Y) {
		return false, 0, 0
	}
	if u1 > u2 {
		return false, 0, 0
	}
	return true, s.A.T + u1*dur, s.A.T + u2*dur
}

// InsideDuration sums the episode lengths.
func InsideDuration(eps []Episode) float64 {
	var d float64
	for _, e := range eps {
		d += e.T2 - e.T1
	}
	return d
}
