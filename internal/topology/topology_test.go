package topology

import (
	"math"
	"math/rand"
	"testing"

	"mstsearch/internal/geom"
	"mstsearch/internal/trajectory"
)

var region = geom.Rect{MinX: 10, MinY: 10, MaxX: 20, MaxY: 20}

func path(pts ...[3]float64) trajectory.Trajectory {
	tr := trajectory.Trajectory{ID: 1}
	for _, p := range pts {
		tr.Samples = append(tr.Samples, trajectory.Sample{X: p[0], Y: p[1], T: p[2]})
	}
	return tr
}

func classify(t *testing.T, tr trajectory.Trajectory) (Relation, []Episode) {
	t.Helper()
	rel, eps, ok := Classify(&tr, region, tr.StartTime(), tr.EndTime())
	if !ok {
		t.Fatal("classification must succeed inside lifespan")
	}
	return rel, eps
}

func TestClassifyBasicRelations(t *testing.T) {
	cases := []struct {
		name string
		tr   trajectory.Trajectory
		want Relation
	}{
		{"inside", path([3]float64{12, 12, 0}, [3]float64{18, 18, 10}), Inside},
		{"disjoint", path([3]float64{0, 0, 0}, [3]float64{5, 5, 10}), Disjoint},
		{"enter", path([3]float64{0, 15, 0}, [3]float64{15, 15, 10}), Enter},
		{"leave", path([3]float64{15, 15, 0}, [3]float64{40, 15, 10}), Leave},
		{"cross", path([3]float64{0, 15, 0}, [3]float64{40, 15, 10}), Cross},
		{"detour", path(
			[3]float64{12, 15, 0}, [3]float64{40, 15, 5}, [3]float64{12, 15, 10}), Detour},
		{"weave", path(
			[3]float64{0, 15, 0}, [3]float64{15, 15, 2}, [3]float64{40, 15, 4},
			[3]float64{15, 15, 6}, [3]float64{40, 15, 8}), Weave},
	}
	for _, c := range cases {
		if got, _ := classify(t, c.tr); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassifyEpisodes(t *testing.T) {
	// Cross at constant speed 4 units/s along y=15: inside for x in
	// [10, 20] → t in [2.5, 5].
	tr := path([3]float64{0, 15, 0}, [3]float64{40, 15, 10})
	rel, eps := classify(t, tr)
	if rel != Cross || len(eps) != 1 {
		t.Fatalf("rel=%v eps=%v", rel, eps)
	}
	if math.Abs(eps[0].T1-2.5) > 1e-9 || math.Abs(eps[0].T2-5) > 1e-9 {
		t.Fatalf("episode = %+v, want [2.5, 5]", eps[0])
	}
	if d := InsideDuration(eps); math.Abs(d-2.5) > 1e-9 {
		t.Fatalf("inside duration = %v", d)
	}
}

func TestClassifyWindowRestriction(t *testing.T) {
	// The full trajectory crosses, but a window covering only the inside
	// part sees Inside.
	tr := path([3]float64{0, 15, 0}, [3]float64{40, 15, 10})
	rel, _, ok := Classify(&tr, region, 3, 4.5)
	if !ok || rel != Inside {
		t.Fatalf("windowed relation = %v ok=%v, want Inside", rel, ok)
	}
	// A window before the crossing sees Disjoint.
	rel, _, ok = Classify(&tr, region, 0, 2)
	if !ok || rel != Disjoint {
		t.Fatalf("pre-crossing relation = %v", rel)
	}
	// A window straddling the entry sees Enter.
	rel, _, ok = Classify(&tr, region, 0, 4)
	if !ok || rel != Enter {
		t.Fatalf("entry window relation = %v", rel)
	}
	// Window outside the lifespan fails.
	if _, _, ok = Classify(&tr, region, 20, 30); ok {
		t.Fatal("window beyond lifespan must fail")
	}
}

func TestClassifyTouchingBoundary(t *testing.T) {
	// Skimming along the region edge (y = 10) counts as inside contact.
	tr := path([3]float64{0, 10, 0}, [3]float64{40, 10, 10})
	rel, _ := classify(t, tr)
	if rel != Cross {
		t.Fatalf("boundary skim = %v, want Cross", rel)
	}
	// A single-instant touch at a corner.
	tr = path([3]float64{0, 0, 0}, [3]float64{20, 20, 10}, [3]float64{40, 40, 20})
	rel, eps := classify(t, tr)
	if rel == Disjoint {
		t.Fatalf("corner touch lost: %v %v", rel, eps)
	}
}

// Property: episodes must agree with dense sampling of the interpolated
// position.
func TestClassifyMatchesSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		tr := trajectory.Trajectory{ID: 1}
		x, y := rng.Float64()*30, rng.Float64()*30
		tt := 0.0
		for i := 0; i < 12; i++ {
			tr.Samples = append(tr.Samples, trajectory.Sample{X: x, Y: y, T: tt})
			x += rng.NormFloat64() * 8
			y += rng.NormFloat64() * 8
			tt += 0.5 + rng.Float64()
		}
		_, eps, ok := Classify(&tr, region, tr.StartTime(), tr.EndTime())
		if !ok {
			t.Fatal("must classify")
		}
		insideAt := func(q float64) bool {
			for _, e := range eps {
				if q >= e.T1-1e-9 && q <= e.T2+1e-9 {
					return true
				}
			}
			return false
		}
		const n = 800
		for i := 0; i <= n; i++ {
			q := tr.StartTime() + tr.Duration()*float64(i)/n
			p := tr.At(q).Spatial()
			in := region.Contains(p)
			// Skip points within a hair of the boundary (sampling noise).
			margin := math.Min(
				math.Min(math.Abs(p.X-region.MinX), math.Abs(p.X-region.MaxX)),
				math.Min(math.Abs(p.Y-region.MinY), math.Abs(p.Y-region.MaxY)))
			if margin < 1e-6 {
				continue
			}
			if in != insideAt(q) {
				t.Fatalf("iter %d: t=%v inside=%v but episodes say %v (eps=%v)",
					iter, q, in, insideAt(q), eps)
			}
		}
	}
}
