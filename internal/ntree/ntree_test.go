package ntree

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

// makeFleet builds n seeded random-walk trajectories in the unit
// workspace over [0, 1], returning them plus a Lookup over the slice.
func makeFleet(n, samples int, seed int64) ([]trajectory.Trajectory, Lookup) {
	rng := rand.New(rand.NewSource(seed))
	trajs := make([]trajectory.Trajectory, n)
	for i := range trajs {
		tr := trajectory.Trajectory{ID: trajectory.ID(i + 1), Samples: make([]trajectory.Sample, samples)}
		x, y := rng.Float64(), rng.Float64()
		for j := 0; j < samples; j++ {
			tr.Samples[j] = trajectory.Sample{X: x, Y: y, T: float64(j) / float64(samples-1)}
			x += rng.NormFloat64() * 0.02
			y += rng.NormFloat64() * 0.02
		}
		trajs[i] = tr
	}
	byID := make(map[trajectory.ID]*trajectory.Trajectory, n)
	for i := range trajs {
		byID[trajs[i].ID] = &trajs[i]
	}
	return trajs, func(id trajectory.ID) *trajectory.Trajectory { return byID[id] }
}

// TestBuildInvariants grows trees through every split regime — single
// root leaf, one split, multi-level — and checks the full structural
// invariant set (stored pivot distances exact, covering radii cover,
// MBB/sample aggregates contain) after each growth stage.
func TestBuildInvariants(t *testing.T) {
	for _, n := range []int{1, 5, 40, 150, 400} {
		trajs, lookup := makeFleet(n, 17, int64(n))
		tr := New(storage.NewFile(512), lookup)
		for i := range trajs {
			if err := tr.InsertTrajectory(&trajs[i]); err != nil {
				t.Fatalf("n=%d: insert %d: %v", n, trajs[i].ID, err)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n >= 150 && tr.Height() < 2 {
			t.Fatalf("n=%d on 512 B pages stayed flat (height %d); splits untested", n, tr.Height())
		}
	}
}

// TestOpenReadOnly: a reopened tree serves reads over the same pages but
// rejects inserts with ErrReadOnly.
func TestOpenReadOnly(t *testing.T) {
	trajs, lookup := makeFleet(60, 9, 3)
	file := storage.NewFile(512)
	tr := New(file, lookup)
	for i := range trajs {
		if err := tr.InsertTrajectory(&trajs[i]); err != nil {
			t.Fatal(err)
		}
	}
	ro := Open(file, tr.Meta(), lookup)
	if !ro.ReadOnly() {
		t.Fatal("Open returned a writable tree")
	}
	if ro.Meta() != tr.Meta() {
		t.Fatalf("meta drifted across reopen: %+v vs %+v", ro.Meta(), tr.Meta())
	}
	if err := ro.CheckInvariants(); err != nil {
		t.Fatalf("reopened tree fails invariants: %v", err)
	}
	if err := ro.InsertTrajectory(&trajs[0]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("insert on reopened tree: %v, want ErrReadOnly", err)
	}
}

// TestBaseDist pins the base distance's contract: exact zero on self,
// symmetric, and +Inf exactly when the time spans are disjoint.
func TestBaseDist(t *testing.T) {
	trajs, _ := makeFleet(6, 11, 5)
	for i := range trajs {
		if d := BaseDist(&trajs[i], &trajs[i]); d > 1e-12 {
			t.Fatalf("self distance %g, want ~0", d)
		}
		for j := range trajs {
			a, b := BaseDist(&trajs[i], &trajs[j]), BaseDist(&trajs[j], &trajs[i])
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("asymmetric base distance: %v vs %v", a, b)
			}
		}
	}
	late := trajectory.Trajectory{ID: 99, Samples: []trajectory.Sample{{X: 0, Y: 0, T: 5}, {X: 1, Y: 1, T: 6}}}
	if d := BaseDist(&trajs[0], &late); !math.IsInf(d, 1) {
		t.Fatalf("disjoint spans: %v, want +Inf", d)
	}
}
